// Quickstart: train a GCN on a synthetic graph with GraphTensor's NAPA
// engine in a dozen lines. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"graphtensor/internal/datasets"
	"graphtensor/internal/frameworks"
)

func main() {
	// Generate a small citation-style graph (scaled down for a laptop).
	ds, err := datasets.Generate("products", datasets.DefaultScale())
	if err != nil {
		panic(err)
	}
	fmt.Printf("dataset: %d vertices, %d edges, %d-dim features\n",
		ds.NumVertices(), ds.NumEdges(), ds.FeatureDim)

	// Build a GraphTensor trainer: NAPA kernels, dynamic kernel placement,
	// pipelined preprocessing (the full Prepro-GT build).
	opt := frameworks.DefaultOptions()
	opt.Model = "gcn"
	tr, err := frameworks.New(frameworks.PreproGT, ds, opt)
	if err != nil {
		panic(err)
	}

	// Train ten batches and watch the loss descend.
	for i := 0; i < 10; i++ {
		st, err := tr.TrainBatch()
		if err != nil {
			panic(err)
		}
		fmt.Printf("batch %2d  loss %.4f  prep %v  compute %v\n",
			i, st.Loss, st.Prep.Round(1000), st.Compute.Round(1000))
	}
}
