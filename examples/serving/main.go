// Serving: train a GCN, then serve inference traffic through the
// concurrent serving engine — sharded admission with request coalescing
// under a size/deadline policy, replicated FWP-only inference with
// batch-granularity work stealing, and a PaGraph-style embedding cache —
// and report throughput, the per-shard breakdown, the latency histogram
// and accuracy.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"time"

	"graphtensor/internal/cache"
	"graphtensor/internal/datasets"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/graph"
	"graphtensor/internal/serve"
)

func main() {
	ds, err := datasets.Generate("products", datasets.DefaultScale())
	if err != nil {
		panic(err)
	}
	opt := frameworks.DefaultOptions()
	opt.Model = "gcn"
	tr, err := frameworks.New(frameworks.PreproGT, ds, opt)
	if err != nil {
		panic(err)
	}

	// Train for a few epochs.
	fmt.Println("training...")
	for e := 0; e < 5; e++ {
		_, loss, err := tr.TrainEpoch(20)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  epoch %d mean loss %.4f\n", e, loss)
	}

	// Serve inference: 2 replicas drain coalesced micro-batches (≤256 dsts
	// or 2ms) routed over 4 admission shards, with the top-degree 10% of
	// vertices cache-resident.
	cfg := serve.DefaultConfig()
	cfg.MaxBatch = 256
	cfg.Replicas = 2
	cfg.Shards = 4
	cfg.Cache = cache.New(ds.NumVertices()/10, cache.Degree, ds.Graph)
	srv, err := serve.NewServer(tr, cfg)
	if err != nil {
		panic(err)
	}

	const queries, querySize = 200, 20
	fmt.Printf("\nserving %d queries of %d vertices (%d replicas, %d shards, cache %d vertices):\n",
		queries, querySize, cfg.Replicas, cfg.Shards, cfg.Cache.Capacity())
	outs := make([][]float32, queries)
	tickets := make([]*serve.Ticket, queries)
	dsts := make([][]graph.VID, queries)
	for q := 0; q < queries; q++ {
		dsts[q] = ds.BatchDsts(querySize, uint64(10_000+q))
		outs[q] = make([]float32, querySize*srv.OutDim())
	}
	// Bulk submission: tickets chain per admission shard, one channel hop
	// per shard instead of one per query.
	if err := srv.SubmitMany(dsts, outs, tickets); err != nil {
		panic(err)
	}
	for _, tk := range tickets {
		if err := tk.Wait(); err != nil {
			panic(err)
		}
	}

	st := srv.Stats()
	lat := srv.Latencies()
	srv.Close()

	// Accuracy from the scattered logits.
	correct, total := 0, 0
	od := srv.OutDim()
	for q := range outs {
		for i, d := range dsts[q] {
			row := outs[q][i*od : (i+1)*od]
			best := 0
			for j := 1; j < od; j++ {
				if row[j] > row[best] {
					best = j
				}
			}
			if int32(best) == ds.Labels[d] {
				correct++
			}
			total++
		}
	}

	fmt.Printf("  %d queries in %d coalesced batches (mean %.1f dsts/batch)\n",
		st.Queries, st.Batches, st.MeanBatch)
	for i, ss := range st.PerShard {
		fmt.Printf("    shard %d: %3d queries in %2d batches (mean %5.1f dsts/batch), %d stolen\n",
			i, ss.Queries, ss.Batches, ss.MeanBatch, ss.Stolen)
	}
	for li, pc := range st.Placements {
		fmt.Printf("    layer %d placement: %s (%d batches aggr-first, %d comb-first)\n",
			li, map[bool]string{true: "combination-first", false: "aggregation-first"}[pc.CombFirst > pc.AggrFirst],
			pc.AggrFirst, pc.CombFirst)
	}
	fmt.Printf("  throughput %.0f queries/s, cache hit rate %.1f%%, accuracy %.3f\n",
		st.Throughput, 100*st.CacheHitRate, float64(correct)/float64(total))
	fmt.Printf("  latency p50 %v  p90 %v  p99 %v  max %v\n",
		st.Latency.P50.Round(time.Microsecond), st.Latency.P90.Round(time.Microsecond),
		st.Latency.P99.Round(time.Microsecond), st.Latency.Max.Round(time.Microsecond))

	// Latency histogram: power-of-two buckets up to the max.
	fmt.Println("\nlatency histogram:")
	bucket := 500 * time.Microsecond
	for bucket < st.Latency.Max {
		bucket *= 2
	}
	buckets := make([]int, 8)
	for _, l := range lat {
		i := int(int64(l) * int64(len(buckets)) / int64(bucket+1))
		buckets[i]++
	}
	for i, n := range buckets {
		lo := time.Duration(int64(bucket) * int64(i) / int64(len(buckets)))
		hi := time.Duration(int64(bucket) * int64(i+1) / int64(len(buckets)))
		bar := ""
		for j := 0; j < n*50/len(lat)+min(n, 1); j++ {
			bar += "#"
		}
		fmt.Printf("  %8v – %8v %5d %s\n", lo.Round(time.Microsecond), hi.Round(time.Microsecond), n, bar)
	}
}
