// Serving: train a GCN, then serve inference on fresh query batches and
// report per-query latency and accuracy — the inference path (FWP only,
// no gradients) a deployed GNN service runs.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"time"

	"graphtensor/internal/datasets"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/graph"
)

func main() {
	ds, err := datasets.Generate("products", datasets.DefaultScale())
	if err != nil {
		panic(err)
	}
	opt := frameworks.DefaultOptions()
	opt.Model = "gcn"
	tr, err := frameworks.New(frameworks.PreproGT, ds, opt)
	if err != nil {
		panic(err)
	}

	// Train for a few epochs.
	fmt.Println("training...")
	for e := 0; e < 5; e++ {
		_, loss, err := tr.TrainEpoch(20)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  epoch %d mean loss %.4f\n", e, loss)
	}

	// Serve inference on fresh query batches.
	fmt.Println("\nserving queries (inference only):")
	var totalLatency time.Duration
	var accSum float64
	const queries = 10
	for q := 0; q < queries; q++ {
		batch := ds.BatchDsts(100, uint64(10_000+q))
		t0 := time.Now()
		prepared, err := tr.Prepare(batch, nil)
		if err != nil {
			panic(err)
		}
		acc, err := tr.Evaluate(prepared)
		if err != nil {
			panic(err)
		}
		lat := time.Since(t0)
		prepared.Release()
		totalLatency += lat
		accSum += acc
		_ = graph.VID(0)
	}
	fmt.Printf("served %d queries: mean latency %v, mean accuracy %.3f\n",
		queries, (totalLatency / queries).Round(time.Microsecond), accSum/queries)
}
