// Recommendation: train the NGCF model the paper motivates for
// recommender systems (§VI), directly on GraphTensor's NAPA primitives so
// the example shows the programming model of Fig 10 end to end.
//
//	go run ./examples/recommendation
//
// NGCF weights each user-item edge by the similarity of the endpoints'
// embeddings (element-wise product g, sum-based accumulation h) on top of a
// mean aggregation, highlighting high-affinity neighbors.
package main

import (
	"fmt"

	"graphtensor/internal/core"
	"graphtensor/internal/datasets"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/kernels"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
)

func main() {
	// A dense social graph stands in for a user-item interaction graph.
	ds, err := datasets.Generate("gowalla", datasets.DefaultScale())
	if err != nil {
		panic(err)
	}
	fmt.Printf("interaction graph: %d nodes, %d edges, %d-dim embeddings\n",
		ds.NumVertices(), ds.NumEdges(), ds.FeatureDim)

	engine := core.NewEngine(gpusim.DefaultConfig())

	// Sample a batch of target nodes and prepare its two-hop subgraph.
	sampler := sampling.New(ds.Graph, sampling.DefaultConfig())
	batch := sampler.Sample(ds.BatchDsts(200, 1))
	layer1 := batch.ForLayer(1)
	coo, err := prep.ReindexCOO(layer1, batch.Table)
	if err != nil {
		panic(err)
	}
	ld := prep.BuildLayer(coo, prep.FormatCSRCSC)
	embed := prep.Lookup(ds.Features, batch.Table)

	x, err := engine.Upload(embed.Data, "embeddings")
	if err != nil {
		panic(err)
	}

	// Express one NGCF layer with the NAPA primitives directly (Fig 10):
	//   edge = NeighborApply(CSR, embed, g)
	//   aggr = Pull(CSR, embed, edge, h, f)
	//   out  = Apply(aggr, W, b)
	modes := kernels.NGCFModes()
	edge, err := engine.NeighborApply(ld.CSR, x, modes)
	if err != nil {
		panic(err)
	}
	aggr, err := engine.Pull(ld.CSR, x, edge, modes)
	if err != nil {
		panic(err)
	}
	fmt.Printf("aggregated %d destination embeddings of width %d\n",
		aggr.M.Rows, aggr.M.Cols)

	counters := engine.Dev.Snapshot()
	fmt.Printf("NAPA kernel work: %d FLOPs, %d global loads, %.1f KiB into caches\n",
		counters.FLOPs, counters.GlobalLoads, float64(counters.CacheBytes)/1024)
	fmt.Println("phase breakdown:")
	fmt.Print(engine.Phases())
}
