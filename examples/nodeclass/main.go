// Node classification: train a GCN for node classification and compare the
// end-to-end latency of the serialized baseline against GraphTensor's
// pipelined preprocessing — the §V-B result — on the same graph.
//
//	go run ./examples/nodeclass
package main

import (
	"fmt"

	"graphtensor/internal/datasets"
	"graphtensor/internal/frameworks"
)

func main() {
	ds, err := datasets.Generate("reddit2", datasets.DefaultScale())
	if err != nil {
		panic(err)
	}
	fmt.Printf("graph: %d nodes, %d edges, %d classes\n\n",
		ds.NumVertices(), ds.NumEdges(), ds.Spec.OutDim)

	const epochBatches = 20
	compare := []frameworks.Kind{frameworks.DGL, frameworks.SALIENT, frameworks.PreproGT}
	fmt.Printf("%-12s %16s\n", "framework", "sim. latency/batch")
	var baseline float64
	for _, k := range compare {
		opt := frameworks.DefaultOptions()
		opt.Model = "gcn"
		tr, err := frameworks.New(k, ds, opt)
		if err != nil {
			panic(err)
		}
		if k == frameworks.PreproGT {
			if err := tr.Warmup(2); err != nil {
				panic(err)
			}
		}
		d, err := tr.SimulatedEpoch(epochBatches)
		if err != nil {
			panic(err)
		}
		per := d / epochBatches
		if baseline == 0 {
			baseline = float64(per)
		}
		fmt.Printf("%-12s %16v  (%.2fx)\n", k, per.Round(1000), baseline/float64(per))
	}

	fmt.Println("\nTraining PreproGT for a few epochs (loss should descend):")
	opt := frameworks.DefaultOptions()
	opt.Model = "gcn"
	tr, _ := frameworks.New(frameworks.PreproGT, ds, opt)
	for e := 0; e < 5; e++ {
		_, loss, err := tr.TrainEpoch(10)
		if err != nil {
			panic(err)
		}
		fmt.Printf("epoch %d  mean loss %.4f\n", e, loss)
	}
}
