// Multi-GPU data-parallel training
// ================================
//
// This example trains a GCN end to end on a group of simulated GPUs and
// demonstrates the three properties of the data-parallel engine:
//
//  1. Exactness. Every batch is carved into a fixed number of edge-balanced
//     gradient shards (ROC's balanced-SpMM partitioning, §VII [19]); the
//     per-shard gradients are folded in a fixed order during the modeled
//     all-reduce, so the per-epoch losses printed for the 1-device,
//     4-device and hierarchical 16-device runs are BITWISE IDENTICAL — not
//     merely close. Node assignment on the hierarchical fabric steers
//     modeled scheduling and communication only.
//  2. Scaling. The busiest device's kernel work falls ~linearly with the
//     device count, at the price of a communication term (the gradient
//     all-reduce plus the sub-batch scatter). Past one box the fabric goes
//     hierarchical: NVLink-class links inside each 4-device node, a modeled
//     network between nodes, and a two-tier collective whose slow-tier step
//     count grows with nodes, not devices — the per-tier split is reported
//     below from the gpusim interconnect model.
//  3. Hygiene. Each device owns a batch-scoped arena; after every batch —
//     and after the run — every device reports MemInUse() == 0.
//
// Run it with:
//
//	go run ./examples/multigpu
package main

import (
	"fmt"
	"time"

	"graphtensor/internal/datasets"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/train"
)

// gradShards fixes the partition for every run: trajectories are bitwise
// comparable across device counts and fabrics only at an identical shard
// count, and the largest group below is 16 devices.
const gradShards = 16

func trainRun(ds *datasets.Dataset, numDevices, devsPerNode, epochs int) (*train.History, *frameworks.Trainer, error) {
	opt := frameworks.DefaultOptions()
	opt.NumDevices = numDevices
	opt.GradShards = gradShards
	// devsPerNode > 0 swaps the flat fabric for the two-tier hierarchical
	// interconnect (NVLink intra-node, modeled network inter-node) and
	// makes the group node-aware end to end.
	opt.DevicesPerNode = devsPerNode
	// Dynamic-GT: the fitted placement policy is live on every device —
	// decisions are a pure function of the fitted cost profile and each
	// gradient shard's shape, so they cannot differ between runs.
	tr, err := frameworks.New(frameworks.DynamicGT, ds, opt)
	if err != nil {
		return nil, nil, err
	}
	cfg := train.Config{Epochs: epochs, BatchesPerEpoch: 10, LearningRate: 0.05, ValEvery: 2}
	h, err := train.NewDriver(tr, cfg, ds.BatchDsts(300, 999)).Run()
	return h, tr, err
}

func main() {
	ds, err := datasets.Generate("reddit2", datasets.DefaultScale())
	if err != nil {
		panic(err)
	}
	const epochs = 4

	one, oneTr, err := trainRun(ds, 1, 0, epochs)
	if err != nil {
		panic(err)
	}
	four, fourTr, err := trainRun(ds, 4, 0, epochs)
	if err != nil {
		panic(err)
	}
	// 16 devices as 4 nodes of 4 over the hierarchical fabric.
	hier, hierTr, err := trainRun(ds, 16, 4, epochs)
	if err != nil {
		panic(err)
	}

	fmt.Println("epoch   loss (1 device)       loss (4 dev, flat)    loss (16 dev, 4/node)  bitwise")
	for e := 0; e < epochs; e++ {
		l1, l4, l16 := one.Epochs[e].MeanLoss, four.Epochs[e].MeanLoss, hier.Epochs[e].MeanLoss
		match := "==" // the whole point
		if l1 != l4 || l1 != l16 {
			match = "DIFFER"
		}
		fmt.Printf("%5d   %-20.17f  %-20.17f  %-20.17f   %s\n", e, l1, l4, l16, match)
	}

	st1, st4, st16 := oneTr.Group().LastStats(), fourTr.Group().LastStats(), hierTr.Group().LastStats()
	fmt.Printf("\n%-22s %14s %14s %16s\n", "last-batch stats", "1 device", "4 dev flat", "16 dev 4/node")
	fmt.Printf("%-22s %13.2fx %13.2fx %15.2fx\n", "shard imbalance", st1.Imbalance, st4.Imbalance, st16.Imbalance)
	fmt.Printf("%-22s %13.2fx %13.2fx %15.2fx\n", "node imbalance", st1.NodeImbalance, st4.NodeImbalance, st16.NodeImbalance)
	fmt.Printf("%-22s %14d %14d %16d\n", "peak device FLOPs", st1.PeakDeviceFLOPs, st4.PeakDeviceFLOPs, st16.PeakDeviceFLOPs)
	us := func(d time.Duration) string { return d.Round(time.Microsecond).String() }
	fmt.Printf("%-22s %14s %14s %16s\n", "modeled compute", us(st1.MaxDeviceCompute), us(st4.MaxDeviceCompute), us(st16.MaxDeviceCompute))
	fmt.Printf("%-22s %14s %14s %16s\n", "modeled scatter", us(st1.ScatterTime), us(st4.ScatterTime), us(st16.ScatterTime))
	fmt.Printf("%-22s %14s %14s %16s\n", "modeled all-reduce", us(st1.AllReduceTime), us(st4.AllReduceTime), us(st16.AllReduceTime))
	fmt.Printf("%-22s %14s %14s %16s\n", "intra-node comm", us(st1.IntraNodeTime), us(st4.IntraNodeTime), us(st16.IntraNodeTime))
	fmt.Printf("%-22s %14s %14s %16s\n", "inter-node comm", us(st1.InterNodeTime), us(st4.InterNodeTime), us(st16.InterNodeTime))
	fmt.Printf("%-22s %11.2f MB %11.2f MB %13.2f MB\n", "cross-node payload",
		float64(st1.CrossNodeBytes)/(1<<20), float64(st4.CrossNodeBytes)/(1<<20), float64(st16.CrossNodeBytes)/(1<<20))
	fmt.Printf("%-22s %13.0f%% %13.0f%% %15.0f%%\n", "overlap efficiency", st1.OverlapEfficiency*100, st4.OverlapEfficiency*100, st16.OverlapEfficiency*100)
	fmt.Printf("%-22s %14s %14s %16s\n", "modeled step (serial)", us(st1.StepTimeSerial), us(st4.StepTimeSerial), us(st16.StepTimeSerial))
	fmt.Printf("%-22s %14s %14s %16s\n", "modeled step (overlap)", us(st1.StepTime), us(st4.StepTime), us(st16.StepTime))
	fmt.Printf("%-22s %14s %13.2fx %15.2fx\n", "step speedup", "1.00x",
		float64(st1.StepTime)/float64(st4.StepTime), float64(st1.StepTime)/float64(st16.StepTime))

	fmt.Println("\nhierarchical 16-device step (GroupStats.String):")
	fmt.Printf("  %s\n", st16)

	fmt.Println("\nper-layer kernel placements over the last batch's gradient shards")
	fmt.Println("(decided by the fitted cost profile; identical at any device count):")
	for li := range st16.Placements {
		fmt.Printf("  layer %d: 1 device  %2d aggr-first / %2d comb-first   16 devices  %2d aggr-first / %2d comb-first\n",
			li, st1.Placements[li].AggrFirst, st1.Placements[li].CombFirst,
			st16.Placements[li].AggrFirst, st16.Placements[li].CombFirst)
	}

	fmt.Println("\nper-device memory after training (device-arena discipline):")
	for _, tr := range []*frameworks.Trainer{oneTr, fourTr, hierTr} {
		inUse := int64(0)
		for _, d := range tr.Group().Devices() {
			inUse += d.Dev.MemInUse()
		}
		fmt.Printf("  group(%d devices): total MemInUse = %d bytes\n", tr.Group().NumDevices(), inUse)
	}
}
