// Multi-GPU: partition a sampled subgraph across several simulated GPUs
// with ROC-style edge balancing and watch per-device work fall as devices
// are added, while the aggregated result stays identical to single-device.
//
//	go run ./examples/multigpu
package main

import (
	"fmt"

	"graphtensor/internal/datasets"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/kernels"
	"graphtensor/internal/multigpu"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
	"graphtensor/internal/tensor"
)

func main() {
	ds, err := datasets.Generate("reddit2", datasets.DefaultScale())
	if err != nil {
		panic(err)
	}
	res := sampling.New(ds.Graph, sampling.DefaultConfig()).Sample(ds.BatchDsts(300, 1))
	coo, err := prep.ReindexCOO(res.ForLayer(1), res.Table)
	if err != nil {
		panic(err)
	}
	csr, _ := graph.BCOOToBCSR(coo)
	x := tensor.Random(csr.NumSrc, ds.FeatureDim, 1, tensor.NewRNG(1))
	fmt.Printf("subgraph: %d dsts, %d srcs, %d edges\n\n", csr.NumDst, csr.NumSrc, csr.NumEdges())

	fmt.Printf("%6s %12s %16s %10s\n", "nGPU", "imbalance", "peak dev FLOPs", "speedup")
	var base int64
	for _, n := range []int{1, 2, 4, 8} {
		plan := multigpu.BalanceByEdges(csr, n, gpusim.DefaultConfig())
		fwd, err := plan.Forward(x, kernels.GCNModes())
		if err != nil {
			panic(err)
		}
		var peak int64
		for _, f := range fwd.PerDeviceFLOPs {
			if f > peak {
				peak = f
			}
		}
		if n == 1 {
			base = peak
		}
		fmt.Printf("%6d %11.2fx %16d %9.2fx\n", n, plan.Imbalance, peak, float64(base)/float64(peak))
	}
}
