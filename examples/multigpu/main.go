// Multi-GPU data-parallel training
// ================================
//
// This example trains a GCN end to end on a group of simulated GPUs and
// demonstrates the three properties of the data-parallel engine:
//
//  1. Exactness. Every batch is carved into a fixed number of edge-balanced
//     gradient shards (ROC's balanced-SpMM partitioning, §VII [19]); the
//     per-shard gradients are folded in a fixed order during the
//     PCIe-modeled all-reduce, so the per-epoch losses printed for the
//     1-device and 4-device runs are BITWISE IDENTICAL — not merely close.
//  2. Scaling. The busiest device's kernel work falls ~linearly with the
//     device count, at the price of a communication term (the gradient
//     all-reduce plus the sub-batch scatter), both reported below from the
//     gpusim/pcie model.
//  3. Hygiene. Each device owns a batch-scoped arena; after every batch —
//     and after the run — every device reports MemInUse() == 0.
//
// Run it with:
//
//	go run ./examples/multigpu
package main

import (
	"fmt"
	"time"

	"graphtensor/internal/datasets"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/train"
)

func trainRun(ds *datasets.Dataset, numDevices, epochs int) (*train.History, *frameworks.Trainer, error) {
	opt := frameworks.DefaultOptions()
	opt.NumDevices = numDevices
	// Dynamic-GT: the fitted placement policy is live on every device —
	// decisions are a pure function of the fitted cost profile and each
	// gradient shard's shape, so they cannot differ between the 1-device
	// and 4-device runs.
	tr, err := frameworks.New(frameworks.DynamicGT, ds, opt)
	if err != nil {
		return nil, nil, err
	}
	cfg := train.Config{Epochs: epochs, BatchesPerEpoch: 10, LearningRate: 0.05, ValEvery: 2}
	h, err := train.NewDriver(tr, cfg, ds.BatchDsts(300, 999)).Run()
	return h, tr, err
}

func main() {
	ds, err := datasets.Generate("reddit2", datasets.DefaultScale())
	if err != nil {
		panic(err)
	}
	const epochs = 4

	one, oneTr, err := trainRun(ds, 1, epochs)
	if err != nil {
		panic(err)
	}
	four, fourTr, err := trainRun(ds, 4, epochs)
	if err != nil {
		panic(err)
	}

	fmt.Println("epoch   loss (1 device)       loss (4 devices)      bitwise")
	for e := 0; e < epochs; e++ {
		l1, l4 := one.Epochs[e].MeanLoss, four.Epochs[e].MeanLoss
		match := "==" // the whole point
		if l1 != l4 {
			match = "DIFFER"
		}
		fmt.Printf("%5d   %-20.17f  %-20.17f  %s\n", e, l1, l4, match)
	}

	st1, st4 := oneTr.Group().LastStats(), fourTr.Group().LastStats()
	fmt.Printf("\n%-22s %14s %14s\n", "last-batch stats", "1 device", "4 devices")
	fmt.Printf("%-22s %13.2fx %13.2fx\n", "shard imbalance", st1.Imbalance, st4.Imbalance)
	fmt.Printf("%-22s %14d %14d\n", "peak device FLOPs", st1.PeakDeviceFLOPs, st4.PeakDeviceFLOPs)
	fmt.Printf("%-22s %14s %14s\n", "modeled compute", st1.MaxDeviceCompute.Round(time.Microsecond), st4.MaxDeviceCompute.Round(time.Microsecond))
	fmt.Printf("%-22s %14s %14s\n", "modeled scatter", st1.ScatterTime.Round(time.Microsecond), st4.ScatterTime.Round(time.Microsecond))
	fmt.Printf("%-22s %14s %14s\n", "modeled all-reduce", st1.AllReduceTime.Round(time.Microsecond), st4.AllReduceTime.Round(time.Microsecond))
	fmt.Printf("%-22s %13.0f%% %13.0f%%\n", "overlap efficiency", st1.OverlapEfficiency*100, st4.OverlapEfficiency*100)
	fmt.Printf("%-22s %14s %14s\n", "modeled step (serial)", st1.StepTimeSerial.Round(time.Microsecond), st4.StepTimeSerial.Round(time.Microsecond))
	fmt.Printf("%-22s %14s %14s\n", "modeled step (overlap)", st1.StepTime.Round(time.Microsecond), st4.StepTime.Round(time.Microsecond))
	fmt.Printf("%-22s %14s %13.2fx\n", "step speedup", "1.00x", float64(st1.StepTime)/float64(st4.StepTime))

	fmt.Println("\nper-layer kernel placements over the last batch's gradient shards")
	fmt.Println("(decided by the fitted cost profile; identical at any device count):")
	for li := range st4.Placements {
		fmt.Printf("  layer %d: 1 device  %2d aggr-first / %2d comb-first   4 devices  %2d aggr-first / %2d comb-first\n",
			li, st1.Placements[li].AggrFirst, st1.Placements[li].CombFirst,
			st4.Placements[li].AggrFirst, st4.Placements[li].CombFirst)
	}

	fmt.Println("\nper-device memory after training (device-arena discipline):")
	for _, tr := range []*frameworks.Trainer{oneTr, fourTr} {
		for gi, d := range tr.Group().Devices() {
			fmt.Printf("  group(%d) device %d: MemInUse = %d bytes\n", tr.Group().NumDevices(), gi, d.Dev.MemInUse())
		}
	}
}
