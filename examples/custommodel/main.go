// Custom model: build a GAT-flavoured attention GNN from NAPA modes,
// showing how reconfiguring f/g/h (the paper's claim that the primitives
// express 315K+ GNN designs) yields a different architecture without
// touching the engine.
//
//	go run ./examples/custommodel
package main

import (
	"fmt"

	"graphtensor/internal/core"
	"graphtensor/internal/datasets"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/kernels"
	"graphtensor/internal/models"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
)

func main() {
	ds, err := datasets.Generate("citation2", datasets.DefaultScale())
	if err != nil {
		panic(err)
	}

	// Three mode sets, three architectures, one engine.
	archs := []struct {
		name  string
		modes kernels.Modes
	}{
		{"GCN (mean, no weighting)", kernels.GCNModes()},
		{"NGCF (elem-product + sum)", kernels.NGCFModes()},
		{"GAT-style (dot attention)", kernels.AttentionModes()},
	}
	for _, a := range archs {
		fmt.Printf("%-28s f=%v g=%v h=%v  edge-weighted=%v\n",
			a.name, a.modes.F, a.modes.G, a.modes.H, a.modes.HasEdgeWeight())
	}

	fmt.Println("\nTraining the attention variant:")
	p := models.Params{
		InDim: ds.FeatureDim, Hidden: 16, OutDim: 3, Layers: 2, Seed: 7,
		Strategy: kernels.NAPA{}, EnableDKP: true,
	}
	model, err := models.GAT(p)
	if err != nil {
		panic(err)
	}

	engine := core.NewEngine(gpusim.DefaultConfig())
	in := buildInput(engine, ds)
	for i := 0; i < 8; i++ {
		loss, err := model.TrainStep(engine.Ctx, in, 0.05)
		if err != nil {
			panic(err)
		}
		fmt.Printf("step %d  loss %.4f\n", i, loss)
	}
}

// buildInput samples a batch and prepares its two-hop subgraph and
// embeddings as a model input.
func buildInput(engine *core.Engine, ds *datasets.Dataset) *core.Input {
	sampler := sampling.New(ds.Graph, sampling.DefaultConfig())
	res := sampler.Sample(ds.BatchDsts(200, 1))
	graphs := make([]*kernels.Graphs, len(res.Hops))
	for l := 1; l <= len(res.Hops); l++ {
		coo, err := prep.ReindexCOO(res.ForLayer(l), res.Table)
		if err != nil {
			panic(err)
		}
		ld := prep.BuildLayer(coo, prep.FormatCSRCSC)
		graphs[l-1] = &kernels.Graphs{CSR: ld.CSR, CSC: ld.CSC}
	}
	embed := prep.Lookup(ds.Features, res.Table)
	x, err := engine.Upload(embed.Data, "x")
	if err != nil {
		panic(err)
	}
	labels := make([]int32, len(res.Batch))
	for i, orig := range res.Batch {
		labels[i] = ds.Labels[orig]
	}
	return &core.Input{Graphs: graphs, X: x, Labels: labels}
}
