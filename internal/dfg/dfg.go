// Package dfg models the dataflow graph of a GNN layer that GraphTensor's
// kernel orchestrator manipulates (§V-A, Fig 11c). Since delegated kernels
// cannot be reordered GPU-side, the orchestrator rewrites the DFG at the
// host before execution: it locates NAPA's Pull node and the subsequent
// MatMul of the MLP and replaces the pair with a single Cost-DKP node that
// decides the execution order at runtime from the input tensor's
// dimensionality.
package dfg

import (
	"fmt"
	"strings"
)

// OpKind identifies a DFG node's operation.
type OpKind int

const (
	// OpInput is the layer's input embedding tensor.
	OpInput OpKind = iota
	// OpNeighborApply computes per-edge weights (SDDMM / g).
	OpNeighborApply
	// OpPull aggregates neighbor messages (SpMM / h then f).
	OpPull
	// OpMatMul is the combination's linear transformation.
	OpMatMul
	// OpBiasReLU is the combination's bias + non-linearity (σ(·+b)).
	OpBiasReLU
	// OpCostDKP is the fused placement node installed by the rewrite: it
	// runs {Pull, MatMul} in whichever order the cost model picks.
	OpCostDKP
	// OpOutput marks the layer output.
	OpOutput
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpInput:
		return "Input"
	case OpNeighborApply:
		return "NeighborApply"
	case OpPull:
		return "Pull"
	case OpMatMul:
		return "MatMul"
	case OpBiasReLU:
		return "BiasReLU"
	case OpCostDKP:
		return "Cost-DKP"
	case OpOutput:
		return "Output"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Node is one operation in the layer DFG.
type Node struct {
	ID     int
	Kind   OpKind
	Inputs []*Node
}

// Graph is a small DAG of layer operations with a single output node.
type Graph struct {
	nodes  []*Node
	output *Node
}

// NewNode appends a node with the given inputs.
func (g *Graph) NewNode(kind OpKind, inputs ...*Node) *Node {
	n := &Node{ID: len(g.nodes), Kind: kind, Inputs: inputs}
	g.nodes = append(g.nodes, n)
	return n
}

// SetOutput marks the graph's output node.
func (g *Graph) SetOutput(n *Node) { g.output = n }

// Output returns the output node.
func (g *Graph) Output() *Node { return g.output }

// Nodes returns all live nodes reachable from the output in topological
// order (inputs before users).
func (g *Graph) Topo() []*Node {
	seen := map[*Node]bool{}
	var order []*Node
	var visit func(n *Node)
	visit = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.Inputs {
			visit(in)
		}
		order = append(order, n)
	}
	visit(g.output)
	return order
}

// Find returns the first reachable node of the given kind, or nil.
func (g *Graph) Find(kind OpKind) *Node {
	for _, n := range g.Topo() {
		if n.Kind == kind {
			return n
		}
	}
	return nil
}

// BuildLayer constructs the standard (static, aggregation-first) DFG of
// one GNN layer: Input → [NeighborApply →] Pull → MatMul → BiasReLU →
// Output.
func BuildLayer(weighted bool) *Graph {
	g := &Graph{}
	in := g.NewNode(OpInput)
	pullInputs := []*Node{in}
	if weighted {
		na := g.NewNode(OpNeighborApply, in)
		pullInputs = append(pullInputs, na)
	}
	pull := g.NewNode(OpPull, pullInputs...)
	mm := g.NewNode(OpMatMul, pull)
	act := g.NewNode(OpBiasReLU, mm)
	out := g.NewNode(OpOutput, act)
	g.SetOutput(out)
	return g
}

// RewriteDKP performs the host-side rewrite of Fig 11c: it searches for a
// Pull node whose (sole) consumer is a MatMul, disconnects the pair, and
// installs a Cost-DKP node wired to Pull's inputs and MatMul's consumers.
// It returns true if the rewrite applied.
func (g *Graph) RewriteDKP() bool {
	nodes := g.Topo()
	// Build consumer lists.
	consumers := map[*Node][]*Node{}
	for _, n := range nodes {
		for _, in := range n.Inputs {
			consumers[in] = append(consumers[in], n)
		}
	}
	for _, pull := range nodes {
		if pull.Kind != OpPull {
			continue
		}
		cs := consumers[pull]
		if len(cs) != 1 || cs[0].Kind != OpMatMul {
			continue
		}
		mm := cs[0]
		dkpNode := g.NewNode(OpCostDKP, pull.Inputs...)
		for _, user := range consumers[mm] {
			for i, in := range user.Inputs {
				if in == mm {
					user.Inputs[i] = dkpNode
				}
			}
		}
		if g.output == mm {
			g.output = dkpNode
		}
		return true
	}
	return false
}

// String renders the reachable graph, one node per line.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, n := range g.Topo() {
		fmt.Fprintf(&sb, "n%d %s(", n.ID, n.Kind)
		for i, in := range n.Inputs {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "n%d", in.ID)
		}
		sb.WriteString(")\n")
	}
	return sb.String()
}
