package dfg

import "testing"

func TestBuildLayerUnweighted(t *testing.T) {
	g := BuildLayer(false)
	if g.Find(OpNeighborApply) != nil {
		t.Error("unweighted layer should not have NeighborApply")
	}
	if g.Find(OpPull) == nil || g.Find(OpMatMul) == nil {
		t.Error("missing Pull or MatMul")
	}
}

func TestBuildLayerWeighted(t *testing.T) {
	g := BuildLayer(true)
	if g.Find(OpNeighborApply) == nil {
		t.Error("weighted layer must have NeighborApply")
	}
}

func TestTopoOrder(t *testing.T) {
	g := BuildLayer(true)
	order := g.Topo()
	pos := map[*Node]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, n := range order {
		for _, in := range n.Inputs {
			if pos[in] > pos[n] {
				t.Errorf("%s appears after its user %s", in.Kind, n.Kind)
			}
		}
	}
}

func TestRewriteDKPReplacesPullMatMul(t *testing.T) {
	g := BuildLayer(false)
	if !g.RewriteDKP() {
		t.Fatal("rewrite did not apply")
	}
	if g.Find(OpCostDKP) == nil {
		t.Error("Cost-DKP node missing")
	}
	if g.Find(OpPull) != nil {
		t.Error("Pull should be gone after rewrite")
	}
	if g.Find(OpMatMul) != nil {
		t.Error("MatMul should be gone after rewrite")
	}
	// Output must still be reachable and downstream of Cost-DKP.
	if g.Output() == nil {
		t.Error("no output after rewrite")
	}
}

func TestRewriteDKPWeighted(t *testing.T) {
	g := BuildLayer(true)
	if !g.RewriteDKP() {
		t.Fatal("rewrite did not apply for weighted layer")
	}
	// NeighborApply feeds Cost-DKP and must survive.
	if g.Find(OpNeighborApply) == nil {
		t.Error("NeighborApply should survive the rewrite")
	}
	dkp := g.Find(OpCostDKP)
	if dkp == nil {
		t.Fatal("Cost-DKP missing")
	}
	hasNA := false
	for _, in := range dkp.Inputs {
		if in.Kind == OpNeighborApply {
			hasNA = true
		}
	}
	if !hasNA {
		t.Error("Cost-DKP should take NeighborApply as input")
	}
}

func TestRewriteIdempotentNoPull(t *testing.T) {
	g := BuildLayer(false)
	g.RewriteDKP()
	if g.RewriteDKP() {
		t.Error("second rewrite should find nothing to do")
	}
}
