package prep

import (
	"fmt"

	"graphtensor/internal/graph"
	"graphtensor/internal/sampling"
	"graphtensor/internal/vidmap"
)

// Structs is the producer-side structure pool of one prefetch-ring slot —
// the companion of the slot's tensor.Arena. The arena recycles the batch's
// dense host buffers (the embedding table); Structs recycles everything
// else the producer builds per batch: the sampler result (hash table + hop
// edge arrays), the per-layer graph structures (reindexed COO and its
// CSR/CSC translations) and, via the Recycler hook, the data-parallel
// sub-batch plan.
//
// Lifetime discipline mirrors the arena rotation exactly: a slot's Structs
// is handed to at most one in-flight batch; the structures it retains are
// only reused after that batch's Release returns the slot to the rotation.
// Reuse is shape-derived — every retained buffer is fully rewritten for the
// new batch's shape before anything reads it — so pooling cannot change a
// single bit of any output (guarded by the pipeline producer tests).
//
// All methods are nil-receiver safe: a nil *Structs degrades every call to
// the plain allocating path, which is how the serial baselines and direct
// Prepare calls keep their original behavior.
type Structs struct {
	sample *sampling.Result
	layers []*layerBuf
	data   []LayerData
	labels []int32
	batch  *Batch
	plan   Recycler
}

// Recycler is implemented by producer-built structures attached to a batch
// (today: the data-parallel sub-batch plan) that support slot-scoped reuse.
// Recycle is called when the owning batch is released; the implementation
// must drop any references into the released batch while retaining its own
// storage for the slot's next checkout.
type Recycler interface{ Recycle() }

// layerBuf is the retained graph storage of one GNN layer: the reindexed
// COO (also the Graph-approach's shipped format) plus its CSR/CSC
// translations, reused in place across the slot's batches.
type layerBuf struct {
	coo graph.BCOO
	csr graph.BCSR
	csc graph.BCSC
}

// NewStructs returns an empty structure pool.
func NewStructs() *Structs { return &Structs{} }

// EnsureLayers grows the retained per-layer buffer chain to L entries. It
// must be called from the (single) goroutine driving the batch before any
// concurrent layer construction starts: afterwards layer(li) is a read-only
// index and distinct layers may build concurrently.
func (s *Structs) EnsureLayers(L int) {
	if s == nil {
		return
	}
	for len(s.layers) < L {
		s.layers = append(s.layers, &layerBuf{})
	}
}

// layerAt returns layer li's retained buffer (nil on a nil pool).
func (s *Structs) layerAt(li int) *layerBuf {
	if s == nil {
		return nil
	}
	return s.layers[li]
}

// LayerInto reindexes a sampled hop and emits layer li in the requested
// format from the pool's retained storage (nil-safe: a nil pool allocates
// fresh structures). EnsureLayers must cover li before concurrent layer
// construction begins; distinct layers may then build concurrently.
func (s *Structs) LayerInto(li int, hop *sampling.Hop, table *vidmap.Table, format Format) (LayerData, error) {
	return buildLayerReuse(hop, table, format, s.layerAt(li))
}

// TakeSample hands the recycled sampler result to the next batch (nil when
// the slot has none yet); ownership moves to the batch until its release.
func (s *Structs) TakeSample() *sampling.Result {
	if s == nil {
		return nil
	}
	r := s.sample
	s.sample = nil
	return r
}

// TakeLayerData returns the retained Batch.Layers backing resized to L.
func (s *Structs) TakeLayerData(L int) []LayerData {
	if s == nil {
		return make([]LayerData, L)
	}
	d := s.data
	s.data = nil
	if cap(d) < L {
		return make([]LayerData, L)
	}
	d = d[:L]
	for i := range d {
		d[i] = LayerData{}
	}
	return d
}

// TakeLabels returns the retained label buffer resized to n.
func (s *Structs) TakeLabels(n int) []int32 {
	if s == nil {
		return make([]int32, n)
	}
	l := s.labels
	s.labels = nil
	if cap(l) < n {
		return make([]int32, n)
	}
	return l[:n]
}

// TakeBatch returns the retained batch header, reset.
func (s *Structs) TakeBatch() *Batch {
	if s == nil || s.batch == nil {
		return &Batch{}
	}
	b := s.batch
	s.batch = nil
	*b = Batch{}
	return b
}

// TakePlan hands the recycled sub-batch plan (a Recycler the slot reclaimed
// from its previous batch) to the producer, or nil. The caller type-asserts
// it back to its concrete plan type and rebuilds it in place.
func (s *Structs) TakePlan() any {
	if s == nil {
		return nil
	}
	p := s.plan
	s.plan = nil
	if p == nil {
		return nil
	}
	return p
}

// ReleaseBatch reclaims a released batch's producer structures into the
// pool: the sampler result, the label buffer, the layer-data backing, the
// batch header and (via Recycle) the sub-batch plan. The per-layer graph
// structures need no reclaiming — they are retained in the pool itself and
// were only lent to the batch. Must only be called once the batch is dead:
// its storage is rewritten by the slot's next checkout.
func (s *Structs) ReleaseBatch(b *Batch) {
	if s == nil || b == nil {
		return
	}
	if b.Sample != nil {
		s.sample = b.Sample
		b.Sample = nil
	}
	if b.Labels != nil {
		s.labels = b.Labels[:0]
		b.Labels = nil
	}
	if b.Layers != nil {
		s.data = b.Layers[:0]
		b.Layers = nil
	}
	if r, ok := b.SubBatches.(Recycler); ok {
		r.Recycle()
		s.plan = r
	}
	b.SubBatches = nil
	b.Embed = nil
	s.batch = b
}

// buildLayerReuse reindexes one sampled hop into new-VID space and emits it
// in the requested device format, drawing all structure storage from lb
// (nil falls back to fresh allocations — the behavior of ReindexCOO +
// BuildLayer). The emitted structures are bitwise identical to the
// allocating path.
func buildLayerReuse(hop *sampling.Hop, table *vidmap.Table, format Format, lb *layerBuf) (LayerData, error) {
	var coo *graph.BCOO
	if lb != nil {
		coo = &lb.coo
	} else {
		coo = &graph.BCOO{}
	}
	coo.NumDst, coo.NumSrc = hop.NumDst, hop.NumSrc
	coo.Src = graph.GrowVIDs(coo.Src, len(hop.SrcOrig))
	coo.Dst = graph.GrowVIDs(coo.Dst, len(hop.DstOrig))
	table.LookupBatch(hop.SrcOrig, coo.Src)
	table.LookupBatch(hop.DstOrig, coo.Dst)
	for i, v := range coo.Src {
		if v < 0 {
			return LayerData{}, fmt.Errorf("prep: src VID %d not in hash table", hop.SrcOrig[i])
		}
	}
	for i, v := range coo.Dst {
		if v < 0 {
			return LayerData{}, fmt.Errorf("prep: dst VID %d not in hash table", hop.DstOrig[i])
		}
	}
	switch format {
	case FormatCOO:
		return LayerData{COO: coo}, nil
	case FormatCSR:
		csr := &graph.BCSR{}
		if lb != nil {
			csr = &lb.csr
		}
		graph.BCOOToBCSRInto(coo, csr)
		return LayerData{CSR: csr}, nil
	case FormatCSRCSC:
		csr, csc := &graph.BCSR{}, &graph.BCSC{}
		if lb != nil {
			csr, csc = &lb.csr, &lb.csc
		}
		graph.BCOOToBCSRInto(coo, csr)
		graph.BCSRToBCSCInto(csr, csc)
		return LayerData{CSR: csr, CSC: csc}, nil
	}
	panic(fmt.Sprintf("prep: unknown format %d", int(format)))
}
