package prep

import (
	"testing"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/sampling"
)

func ring(n, deg int) *graph.CSR {
	coo := &graph.COO{NumVertices: n}
	for d := 0; d < n; d++ {
		for k := 1; k <= deg; k++ {
			coo.Src = append(coo.Src, graph.VID((d+k)%n))
			coo.Dst = append(coo.Dst, graph.VID(d))
		}
	}
	csr, _ := graph.COOToCSR(coo)
	return csr
}

func TestReindexWithinBounds(t *testing.T) {
	full := ring(100, 5)
	res := sampling.New(full, sampling.DefaultConfig()).Sample([]graph.VID{3, 6, 9})
	for li := 1; li <= 2; li++ {
		hop := res.ForLayer(li)
		coo, err := ReindexCOO(hop, res.Table)
		if err != nil {
			t.Fatal(err)
		}
		if err := coo.Validate(); err != nil {
			t.Errorf("layer %d reindexed coo invalid: %v", li, err)
		}
	}
}

func TestBuildLayerFormats(t *testing.T) {
	full := ring(80, 4)
	res := sampling.New(full, sampling.DefaultConfig()).Sample([]graph.VID{1, 2})
	coo, _ := ReindexCOO(res.ForLayer(1), res.Table)

	if ld := BuildLayer(coo, FormatCOO); ld.COO == nil || ld.CSR != nil {
		t.Error("FormatCOO should populate only COO")
	}
	if ld := BuildLayer(coo, FormatCSR); ld.CSR == nil || ld.CSC != nil {
		t.Error("FormatCSR should populate only CSR")
	}
	if ld := BuildLayer(coo, FormatCSRCSC); ld.CSR == nil || ld.CSC == nil {
		t.Error("FormatCSRCSC should populate both CSR and CSC")
	}
}

func TestSerialPreparesCompleteBatch(t *testing.T) {
	full := ring(120, 5)
	feats := graph.RandomEmbeddingTableForTest(120, 8)
	dev := gpusim.NewDevice(gpusim.DefaultConfig())
	sampler := sampling.New(full, sampling.DefaultConfig())
	labels := make([]int32, 120)
	b, err := Serial(sampler, feats, labels, dev, []graph.VID{4, 8, 12}, Config{Format: FormatCSRCSC, Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	if b.Embed.NumVertices() != b.Sample.NumVertices() {
		t.Errorf("embedding rows %d != sampled vertices %d", b.Embed.NumVertices(), b.Sample.NumVertices())
	}
	if len(b.Layers) != 2 {
		t.Errorf("expected 2 layers, got %d", len(b.Layers))
	}
	if len(b.Labels) != 3 {
		t.Errorf("expected 3 batch labels, got %d", len(b.Labels))
	}
	// Breakdown should record all four tasks.
	for _, task := range []string{"sample", "reindex", "lookup", "transfer"} {
		if b.Breakdown.Get(task) == 0 {
			// transfer may round to zero on fast links; only require S/R/K.
			if task != "transfer" {
				t.Errorf("task %q not recorded", task)
			}
		}
	}
}

func TestSerialOOM(t *testing.T) {
	full := ring(120, 5)
	feats := graph.RandomEmbeddingTableForTest(120, 64)
	cfg := gpusim.DefaultConfig()
	cfg.MemoryBytes = 32
	dev := gpusim.NewDevice(cfg)
	sampler := sampling.New(full, sampling.DefaultConfig())
	_, err := Serial(sampler, feats, nil, dev, []graph.VID{1, 2, 3}, Config{Format: FormatCSR})
	if _, ok := err.(*gpusim.OOMError); !ok {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestLinkThrottleAccumulates(t *testing.T) {
	var l LinkThrottle
	// Small pays below the quantum should not block; Flush settles them.
	l.Pay(100)
	l.Pay(200)
	l.Flush() // must not panic; debt cleared
}
