// Package prep implements GNN data preparation (§II-B, Fig 4b): graph
// reindexing (R), embedding lookup (K) and host→device transfer (T). The
// functions here are the building blocks both the serial baseline
// preprocessors and GraphTensor's pipelined service-wide tensor scheduler
// (internal/pipeline) compose.
package prep

import (
	"fmt"
	"sync"
	"time"

	"graphtensor/internal/cache"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/metrics"
	"graphtensor/internal/sampling"
	"graphtensor/internal/tensor"
	"graphtensor/internal/vidmap"
)

// Format selects the graph storage format(s) a framework wants on device.
type Format int

const (
	// FormatCOO ships the edge list; Graph-approach frameworks (DGL-like)
	// start from COO and translate at kernel time (Fig 5c).
	FormatCOO Format = iota
	// FormatCSR ships the dst-indexed layout (DL-approach, GNNAdvisor).
	FormatCSR
	// FormatCSRCSC ships both FWP and BWP layouts, GraphTensor's choice:
	// the translation happens once during preprocessing instead of on the
	// training critical path.
	FormatCSRCSC
)

// String names the format.
func (f Format) String() string {
	switch f {
	case FormatCOO:
		return "COO"
	case FormatCSR:
		return "CSR"
	case FormatCSRCSC:
		return "CSR+CSC"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// LayerData is the device-resident graph structure of one GNN layer; which
// fields are populated depends on the requested Format.
type LayerData struct {
	COO *graph.BCOO
	CSR *graph.BCSR
	CSC *graph.BCSC
}

// Batch is a fully prepared training batch: per-layer device graphs plus
// the gathered per-batch embedding table.
type Batch struct {
	Sample *sampling.Result
	// Layers[ℓ-1] is the graph GNN layer ℓ processes (layer 1 first).
	Layers []LayerData
	// Embed is the device embedding table indexed by new VID.
	Embed *graph.EmbeddingTable
	// Labels[i] is the class of batch dst i (new VID i).
	Labels []int32

	DeviceBuffers []*gpusim.Buffer
	Breakdown     *metrics.Breakdown

	// CacheHits/CacheMisses count the batch's sampled vertices that were
	// resident / absent in the embedding cache consulted during
	// preprocessing (both zero without a cache). Residency only discounts
	// modeled K/T cost — the gathered embedding table is bit-for-bit the
	// same with and without a cache.
	CacheHits, CacheMisses int

	// SubBatches optionally carries the batch's data-parallel decomposition
	// (a *multigpu.BatchPlan; opaque here to avoid an import cycle). The
	// prefetch-ring producer attaches it so per-device sub-batch
	// construction overlaps the previous batch's compute, and the
	// DeviceGroup consumes it.
	SubBatches any

	// OnRelease, when set, runs once after the device buffers are freed.
	// The prefetch ring uses it to recycle the batch's arena-backed host
	// buffers; after it fires, the batch's Embed storage is invalid.
	OnRelease func()
}

// Release frees all device buffers the batch holds, then fires OnRelease.
func (b *Batch) Release() {
	for _, buf := range b.DeviceBuffers {
		buf.Free()
	}
	b.DeviceBuffers = nil
	if b.OnRelease != nil {
		hook := b.OnRelease
		b.OnRelease = nil
		hook()
	}
}

// ReindexCOO renumbers a sampled hop's edges into new-VID space using the
// hash table (the R task). The table must already contain every vertex the
// hop references.
func ReindexCOO(hop *sampling.Hop, table *vidmap.Table) (*graph.BCOO, error) {
	out := &graph.BCOO{
		NumDst: hop.NumDst,
		NumSrc: hop.NumSrc,
		Src:    make([]graph.VID, len(hop.SrcOrig)),
		Dst:    make([]graph.VID, len(hop.DstOrig)),
	}
	table.LookupBatch(hop.SrcOrig, out.Src)
	table.LookupBatch(hop.DstOrig, out.Dst)
	for i, v := range out.Src {
		if v < 0 {
			return nil, fmt.Errorf("prep: src VID %d not in hash table", hop.SrcOrig[i])
		}
	}
	for i, v := range out.Dst {
		if v < 0 {
			return nil, fmt.Errorf("prep: dst VID %d not in hash table", hop.DstOrig[i])
		}
	}
	return out, nil
}

// ReindexRange renumbers the edge subrange [lo,hi) of a hop into the
// preallocated dst arrays — the chunk primitive the pipelined scheduler
// uses to parallelize R across threads.
func ReindexRange(hop *sampling.Hop, table *vidmap.Table, dst *graph.BCOO, lo, hi int) {
	table.LookupBatch(hop.SrcOrig[lo:hi], dst.Src[lo:hi])
	table.LookupBatch(hop.DstOrig[lo:hi], dst.Dst[lo:hi])
}

// BuildLayer converts a reindexed COO hop into the requested device format.
// The translation cost is real work performed here (counting sort), exactly
// the work the Graph-approach defers to kernel time.
func BuildLayer(coo *graph.BCOO, format Format) LayerData {
	switch format {
	case FormatCOO:
		return LayerData{COO: coo}
	case FormatCSR:
		csr, _ := graph.BCOOToBCSR(coo)
		return LayerData{CSR: csr}
	case FormatCSRCSC:
		csr, _ := graph.BCOOToBCSR(coo)
		return LayerData{CSR: csr, CSC: graph.BCSRToBCSC(csr)}
	}
	panic(fmt.Sprintf("prep: unknown format %d", int(format)))
}

// Lookup gathers the embeddings of every sampled vertex into a new table
// indexed by new VID (the K task).
func Lookup(features *graph.EmbeddingTable, table *vidmap.Table) *graph.EmbeddingTable {
	return LookupArena(nil, features, table)
}

// LookupArena is Lookup with the output table drawn from a batch-scoped
// arena (nil falls back to a plain allocation).
func LookupArena(a *tensor.Arena, features *graph.EmbeddingTable, table *vidmap.Table) *graph.EmbeddingTable {
	vids := table.OrigSlice(0, table.Len())
	out := graph.NewEmbeddingTableArena(a, len(vids), features.Dim)
	features.GatherInto(out, vids, 0, len(vids))
	return out
}

// GraphBytes returns the device bytes layer structures occupy.
func GraphBytes(layers []LayerData) int64 {
	var n int64
	for _, l := range layers {
		if l.COO != nil {
			n += l.COO.Bytes()
		}
		if l.CSR != nil {
			n += l.CSR.Bytes()
		}
		if l.CSC != nil {
			n += l.CSC.Bytes()
		}
	}
	return n
}

// Config parameterizes a serial preprocessor.
type Config struct {
	Format Format
	Pinned bool // page-locked staging buffers for the T task
	// Arena, when non-nil, supplies the batch's host-side embedding
	// storage; the prefetch ring recycles it across batches through
	// Batch.OnRelease.
	Arena *tensor.Arena
	// Structs, when non-nil, is the slot's producer structure pool: the
	// sampler result, per-layer graph structures and label buffer are
	// checked out from it and reclaimed when the batch is released (see
	// Structs.ReleaseBatch). Reuse is shape-derived only, so the prepared
	// batch is bitwise identical to the allocating path.
	Structs *Structs
	// HostOnly skips the T task: the batch stays in host (pinned staging)
	// memory and owns no device buffers. The data-parallel DeviceGroup
	// prepares batches this way — each device then pays the PCIe scatter
	// for exactly its shards, so the input transfer is not double-counted
	// against an idle staging device.
	HostOnly bool
	// Cache, when non-nil, is the PaGraph-style embedding cache the K and T
	// tasks consult: resident vertices' embeddings are already device-held,
	// so the batch skips their modeled host→device transfer (the gather into
	// the staging table the simulator computes on still happens — residency
	// changes modeled cost only, never batch contents). Hit/miss counts are
	// recorded on the batch and in the cache's own statistics.
	Cache *cache.Cache
}

// Serial runs the classic serialized preprocessing chain
// S → R → K → T, one task after another (the discipline of the existing
// frameworks in Fig 12a whose latency GraphTensor attacks). It returns the
// prepared batch and records per-task durations in the breakdown.
func Serial(sampler *sampling.Sampler, features *graph.EmbeddingTable,
	labels []int32, dev *gpusim.Device, batchDsts []graph.VID, cfg Config) (*Batch, error) {

	bd := metrics.NewBreakdown()
	st := cfg.Structs

	t0 := time.Now()
	res := sampler.SampleReuse(batchDsts, st.TakeSample())
	bd.Add("sample", time.Since(t0))

	t0 = time.Now()
	st.EnsureLayers(len(res.Hops))
	layers := st.TakeLayerData(len(res.Hops))
	for l := 1; l <= len(res.Hops); l++ {
		ld, err := buildLayerReuse(res.ForLayer(l), res.Table, cfg.Format, st.layerAt(l-1))
		if err != nil {
			return nil, err
		}
		layers[l-1] = ld
	}
	bd.Add("reindex", time.Since(t0))

	t0 = time.Now()
	embed := LookupArena(cfg.Arena, features, res.Table)
	var hits, missed int
	if cfg.Cache != nil {
		hits, missed = cfg.Cache.CountResident(res.Table.OrigSlice(0, res.Table.Len()))
	}
	bd.Add("lookup", time.Since(t0))

	t0 = time.Now()
	batch := st.TakeBatch()
	batch.Sample, batch.Layers, batch.Embed, batch.Breakdown = res, layers, embed, bd
	batch.CacheHits, batch.CacheMisses = hits, missed
	if labels != nil {
		batch.Labels = st.TakeLabels(len(res.Batch))
		for i, orig := range res.Batch {
			batch.Labels[i] = labels[orig]
		}
	}
	if !cfg.HostOnly {
		if err := TransferArena(batch, dev, cfg.Pinned, cfg.Arena); err != nil {
			return nil, err
		}
	}
	bd.Add("transfer", time.Since(t0))
	return batch, nil
}

// Transfer allocates device memory for the batch's graphs and embedding
// table and copies them over the modeled PCIe link (the T task). The
// modeled link time is paid to the wall clock through a LinkThrottle so
// pipeline overlap experiments observe realistic transfer occupancy.
func Transfer(b *Batch, dev *gpusim.Device, pinned bool) error {
	return TransferArena(b, dev, pinned, nil)
}

// TransferArena is Transfer with the device-side host mirror drawn from a
// batch-scoped arena (nil falls back to a plain allocation). Cache-resident
// embedding rows (b.CacheHits of them) are already device-held and cross
// the link for free; the host mirror is still fully populated, so batch
// contents never depend on residency.
func TransferArena(b *Batch, dev *gpusim.Device, pinned bool, a *tensor.Arena) error {
	pcie := dev.PCIe()
	gBytes := GraphBytes(b.Layers)
	gbuf, err := dev.Alloc(gBytes, "batch-graphs")
	if err != nil {
		return err
	}
	b.DeviceBuffers = append(b.DeviceBuffers, gbuf)
	d := pcie.TransferBytes(gBytes, pinned)

	ebuf, err := dev.Alloc(b.Embed.Bytes(), "batch-embeddings")
	if err != nil {
		return err
	}
	b.DeviceBuffers = append(b.DeviceBuffers, ebuf)
	deviceCopy := graph.NewEmbeddingTableArena(a, b.Embed.NumVertices(), b.Embed.Dim)
	copy(deviceCopy.Data.Data, b.Embed.Data.Data)
	d += pcie.TransferStaged(b.Embed.Data.Data, MissBytes(b), pinned)
	b.Embed = deviceCopy
	var link LinkThrottle
	link.Pay(d)
	link.Flush()
	return nil
}

// MissBytes returns the host→device embedding payload of the batch: every
// sampled vertex's row minus the cache-resident ones. Without a cache it is
// simply the whole table.
func MissBytes(b *Batch) int64 {
	rows := b.Embed.NumVertices() - b.CacheHits
	if rows < 0 {
		rows = 0
	}
	return int64(rows) * int64(b.Embed.Dim) * 4
}

// LinkThrottle converts modeled PCIe transfer time into wall-clock delay.
// DMA engines move data without occupying a CPU core, so the delay is a
// sleep — concurrent preprocessing subtasks keep running during the
// transfer, exactly the overlap the service-wide tensor scheduler
// exploits. Because the host's sleep granularity is coarse (≈1 ms on small
// VMs), the throttle accumulates debt and sleeps in large quanta; Flush
// pays whatever remains.
type LinkThrottle struct {
	mu   sync.Mutex
	debt time.Duration
}

// Quantum is the minimum sleep the throttle issues before Flush.
const throttleQuantum = 2 * time.Millisecond

// Pay accrues modeled transfer time, sleeping when enough debt gathered.
func (l *LinkThrottle) Pay(d time.Duration) {
	if d <= 0 {
		return
	}
	l.mu.Lock()
	l.debt += d
	due := l.debt
	if due < throttleQuantum {
		l.mu.Unlock()
		return
	}
	l.debt = 0
	l.mu.Unlock()
	sleepAccurate(due)
}

// Flush pays any remaining debt.
func (l *LinkThrottle) Flush() {
	l.mu.Lock()
	due := l.debt
	l.debt = 0
	l.mu.Unlock()
	sleepAccurate(due)
}

// sleepAccurate sleeps for d; overshoot from coarse host timers is
// accepted — it affects every preprocessing discipline equally because all
// of them pay the link through the same throttle quanta.
func sleepAccurate(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d)
}
