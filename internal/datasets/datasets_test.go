package datasets

import (
	"testing"

	"graphtensor/internal/graph"
)

func TestAllDatasetsGenerate(t *testing.T) {
	for _, name := range Names() {
		ds, err := Generate(name, TestScale())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ds.Graph.Validate(); err != nil {
			t.Errorf("%s: invalid graph: %v", name, err)
		}
		if ds.NumVertices() < 64 {
			t.Errorf("%s: only %d vertices", name, ds.NumVertices())
		}
		if ds.Features.NumVertices() != ds.NumVertices() {
			t.Errorf("%s: feature rows %d != vertices %d", name, ds.Features.NumVertices(), ds.NumVertices())
		}
		if len(ds.Labels) != ds.NumVertices() {
			t.Errorf("%s: labels %d != vertices %d", name, len(ds.Labels), ds.NumVertices())
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, _ := Generate("products", TestScale())
	b, _ := Generate("products", TestScale())
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("nondeterministic edge count")
	}
	if a.Features.Data.MaxAbsDiff(b.Features.Data) != 0 {
		t.Error("nondeterministic features")
	}
}

func TestPowerLawIsSkewed(t *testing.T) {
	ds, _ := Generate("products", DefaultScale())
	stats := graph.ComputeDegreeStats(ds.Graph.Degrees())
	// Power-law graphs have stddev well above the mean (heavy tail).
	if stats.StdDev < stats.Mean {
		t.Errorf("power-law stddev %g not > mean %g", stats.StdDev, stats.Mean)
	}
}

func TestNearRegularIsEven(t *testing.T) {
	ds, _ := Generate("roadnet-ca", DefaultScale())
	stats := graph.ComputeDegreeStats(ds.Graph.Degrees())
	// Road networks have low degree variance relative to the mean.
	if stats.StdDev > stats.Mean {
		t.Errorf("near-regular stddev %g should be <= mean %g", stats.StdDev, stats.Mean)
	}
}

func TestHeavyFeatureFlag(t *testing.T) {
	light, _ := SpecByName("products")
	heavy, _ := SpecByName("wiki-talk")
	if light.Heavy {
		t.Error("products should be light-feature")
	}
	if !heavy.Heavy {
		t.Error("wiki-talk should be heavy-feature")
	}
}

func TestBatchDstsUnique(t *testing.T) {
	ds, _ := Generate("products", TestScale())
	batch := ds.BatchDsts(50, 1)
	if len(batch) != 50 {
		t.Fatalf("batch size %d", len(batch))
	}
	seen := map[graph.VID]bool{}
	for _, v := range batch {
		if seen[v] {
			t.Fatalf("duplicate batch vertex %d", v)
		}
		seen[v] = true
	}
}

func TestEdgeRatioPreserved(t *testing.T) {
	// The scaled graph should keep roughly the paper's edges-per-vertex.
	for _, name := range []string{"products", "amazon", "roadnet-ca"} {
		spec, _ := SpecByName(name)
		ds, _ := Generate(name, DefaultScale())
		fullRatio := float64(spec.Edges) / float64(spec.Vertices)
		gotRatio := float64(ds.NumEdges()) / float64(ds.NumVertices())
		// Within a factor of 2 (caps may clamp edges).
		if gotRatio > fullRatio*2+1 || gotRatio < fullRatio/2 {
			t.Errorf("%s: scaled e/v %.1f far from full %.1f", name, gotRatio, fullRatio)
		}
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := Generate("nonexistent", TestScale()); err == nil {
		t.Error("expected error for unknown dataset")
	}
}
