// Package datasets synthesizes the ten evaluation graphs of the paper's
// Table II. The real datasets (OGB, GraphSAINT, SNAP) are not available
// offline, and at full size they need a 24 GB GPU; we therefore generate
// deterministic graphs that match each dataset's *relevant* characteristics
// — vertex/edge ratio, degree distribution shape (power-law for social and
// web graphs, near-regular for roadnet-ca), feature dimensionality class
// (light vs heavy), and output dimension — scaled down by a documented
// divisor so every experiment runs on a laptop.
//
// The paper's evaluation depends on the graphs only through these shape
// parameters (§VI, Table II), so the substitution preserves which framework
// wins, by roughly what factor, and where the light/heavy crossovers fall.
package datasets

import (
	"fmt"
	"math"
	"sort"

	"graphtensor/internal/graph"
	"graphtensor/internal/tensor"
)

// Kind selects the degree-distribution generator.
type Kind int

const (
	// PowerLaw graphs (social networks, citation graphs, web graphs):
	// heavy-tailed in-degree, the regime where edge-wise scheduling is at
	// its best on full graphs and at its worst after sampling (Fig 8).
	PowerLaw Kind = iota
	// NearRegular graphs (road networks): degree concentrated around the
	// mean with tiny variance.
	NearRegular
)

// Spec describes one Table II dataset.
type Spec struct {
	Name       string
	Vertices   int // full-graph vertices (paper scale)
	Edges      int // full-graph edges (paper scale)
	FeatureDim int // input embedding dimension (paper scale)
	OutDim     int // classifier output dimension
	Kind       Kind
	Skew       float64 // power-law skew (higher → heavier tail)
	Heavy      bool    // paper's heavy-feature class (dim > 4K)
	// Paper-reported sampled-subgraph shape, for EXPERIMENTS.md comparison.
	PaperSampledVertices int
	PaperSampledEdges    int
	PaperDstVertices     int
	PaperEdgesPerVertex  float64
}

// Table2 lists the ten datasets with the paper's Table II characteristics.
var Table2 = []Spec{
	{Name: "products", Vertices: 2_000_000, Edges: 124_000_000, FeatureDim: 100, OutDim: 47, Kind: PowerLaw, Skew: 2.2, PaperSampledVertices: 351_000, PaperSampledEdges: 767_000, PaperDstVertices: 50_000, PaperEdgesPerVertex: 2.2},
	{Name: "citation2", Vertices: 3_000_000, Edges: 61_000_000, FeatureDim: 128, OutDim: 2, Kind: PowerLaw, Skew: 2.0, PaperSampledVertices: 322_000, PaperSampledEdges: 592_000, PaperDstVertices: 41_000, PaperEdgesPerVertex: 1.8},
	{Name: "papers", Vertices: 111_000_000, Edges: 2_000_000_000, FeatureDim: 128, OutDim: 172, Kind: PowerLaw, Skew: 2.1, PaperSampledVertices: 564_000, PaperSampledEdges: 751_000, PaperDstVertices: 50_000, PaperEdgesPerVertex: 1.3},
	{Name: "amazon", Vertices: 2_000_000, Edges: 264_000_000, FeatureDim: 200, OutDim: 2, Kind: PowerLaw, Skew: 2.4, PaperSampledVertices: 154_000, PaperSampledEdges: 425_000, PaperDstVertices: 28_000, PaperEdgesPerVertex: 2.8},
	{Name: "reddit2", Vertices: 233_000, Edges: 23_000_000, FeatureDim: 602, OutDim: 41, Kind: PowerLaw, Skew: 2.3, PaperSampledVertices: 185_000, PaperSampledEdges: 912_000, PaperDstVertices: 57_000, PaperEdgesPerVertex: 4.9},
	{Name: "gowalla", Vertices: 197_000, Edges: 2_000_000, FeatureDim: 4353, OutDim: 2, Kind: PowerLaw, Skew: 2.2, Heavy: true, PaperSampledVertices: 54_000, PaperSampledEdges: 183_000, PaperDstVertices: 15_000, PaperEdgesPerVertex: 3.4},
	{Name: "google", Vertices: 916_000, Edges: 5_000_000, FeatureDim: 4353, OutDim: 2, Kind: PowerLaw, Skew: 2.1, Heavy: true, PaperSampledVertices: 54_000, PaperSampledEdges: 177_000, PaperDstVertices: 16_000, PaperEdgesPerVertex: 3.3},
	{Name: "roadnet-ca", Vertices: 2_000_000, Edges: 6_000_000, FeatureDim: 4353, OutDim: 2, Kind: NearRegular, PaperSampledVertices: 5_000, PaperSampledEdges: 17_000, PaperDstVertices: 4_000, PaperEdgesPerVertex: 3.3, Heavy: true},
	{Name: "wiki-talk", Vertices: 2_000_000, Edges: 5_000_000, FeatureDim: 4353, OutDim: 2, Kind: PowerLaw, Skew: 2.6, Heavy: true, PaperSampledVertices: 29_000, PaperSampledEdges: 60_000, PaperDstVertices: 8_000, PaperEdgesPerVertex: 2.1},
	{Name: "livejournal", Vertices: 5_000_000, Edges: 96_000_000, FeatureDim: 4353, OutDim: 2, Kind: PowerLaw, Skew: 2.2, Heavy: true, PaperSampledVertices: 233_000, PaperSampledEdges: 393_000, PaperDstVertices: 28_000, PaperEdgesPerVertex: 1.7},
}

// SpecByName returns the Table II spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Table2 {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// Names returns the dataset names in Table II order (light features first).
func Names() []string {
	out := make([]string, len(Table2))
	for i, s := range Table2 {
		out[i] = s.Name
	}
	return out
}

// Scale controls how far the generators shrink the paper-scale graphs.
type Scale struct {
	VertexDivisor  int // full-graph vertices divided by this
	FeatureDivisor int // feature dimension divided by this
	MaxVertices    int // hard cap after division
	MaxEdges       int // hard cap after division (edge/vertex ratio kept)
}

// DefaultScale keeps every dataset under ~100 MB and every experiment under
// a second per batch while preserving Table II's shape parameters.
func DefaultScale() Scale {
	return Scale{VertexDivisor: 256, FeatureDivisor: 8, MaxVertices: 40_000, MaxEdges: 1 << 20}
}

// TestScale is a much smaller scale for unit tests.
func TestScale() Scale {
	return Scale{VertexDivisor: 4096, FeatureDivisor: 64, MaxVertices: 2_000, MaxEdges: 1 << 14}
}

// Dataset is a generated graph plus its embeddings and labels, ready for
// sampling-based GNN training.
type Dataset struct {
	Spec  Spec
	Scale Scale

	// Graph holds in-neighbors per vertex (CSR indexed by dst VID): the
	// layout neighbor sampling traverses.
	Graph    *graph.CSR
	Features *graph.EmbeddingTable
	Labels   []int32 // class per vertex in [0, Spec.OutDim)

	FeatureDim int // scaled input dimension
}

// NumVertices returns the scaled vertex count.
func (d *Dataset) NumVertices() int { return d.Graph.NumVertices }

// NumEdges returns the scaled edge count.
func (d *Dataset) NumEdges() int { return d.Graph.NumEdges() }

// Generate builds the named dataset at the given scale. Generation is
// deterministic: the same name and scale always produce the same graph.
func Generate(name string, sc Scale) (*Dataset, error) {
	spec, err := SpecByName(name)
	if err != nil {
		return nil, err
	}
	return FromSpec(spec, sc), nil
}

// FromSpec builds a dataset from an explicit spec (exported so tests can
// construct edge cases).
func FromSpec(spec Spec, sc Scale) *Dataset {
	v := spec.Vertices / sc.VertexDivisor
	// Floor small graphs so sampling does not saturate the whole graph,
	// then honor the caps.
	if v < 4000 {
		v = 4000
	}
	if v > spec.Vertices {
		v = spec.Vertices
	}
	if v > sc.MaxVertices {
		v = sc.MaxVertices
	}
	if v < 64 {
		v = 64
	}
	// Preserve the full graph's edges-per-vertex ratio under the cap.
	ratio := float64(spec.Edges) / float64(spec.Vertices)
	e := int(ratio * float64(v))
	if e > sc.MaxEdges {
		e = sc.MaxEdges
	}
	if e < v {
		e = v
	}
	dim := spec.FeatureDim / sc.FeatureDivisor
	if dim < 4 {
		dim = 4
	}
	rng := tensor.NewRNG(seedFor(spec.Name))
	classes := maxInt(spec.OutDim, 2)

	// Assign each vertex a community (its ground-truth class) and build
	// homophilous structure: features are the community centroid plus
	// noise, and edges are biased toward same-community endpoints. This
	// makes the task learnable — GNNs exploit exactly this homophily — so
	// training actually descends, unlike i.i.d. random labels.
	labels := make([]int32, v)
	for i := range labels {
		labels[i] = int32(rng.Intn(classes))
	}
	centroids := tensor.New(classes, dim)
	for i := range centroids.Data {
		centroids.Data[i] = rng.Normal()
	}

	var csr *graph.CSR
	switch spec.Kind {
	case NearRegular:
		csr = genNearRegular(v, e, rng)
	default:
		csr = genHomophilousPowerLaw(v, e, spec.Skew, labels, rng)
	}

	feats := graph.NewEmbeddingTable(v, dim)
	for u := 0; u < v; u++ {
		row := feats.Data.Row(u)
		c := centroids.Row(int(labels[u]))
		for j := range row {
			row[j] = c[j] + 0.6*rng.Normal() // centroid + noise
		}
	}
	return &Dataset{Spec: spec, Scale: sc, Graph: csr, Features: feats, Labels: labels, FeatureDim: dim}
}

// seedFor derives a stable per-dataset seed from the name.
func seedFor(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// genPowerLaw builds a graph with heavy-tailed in-degrees: dst vertices are
// drawn with probability ∝ rank^(−1/skew) (hub vertices collect many
// edges), srcs nearly uniformly. Self loops are rewired; duplicate edges
// are allowed, as in the raw SNAP graphs.
func genPowerLaw(v, e int, skew float64, rng *tensor.RNG) *graph.CSR {
	if skew <= 1 {
		skew = 2
	}
	return genHomophilousPowerLaw(v, e, skew, nil, rng)
}

// genHomophilousPowerLaw builds a power-law graph with community homophily:
// dst is strongly power-law (authority hubs), src is mildly power-law
// (preferential attachment on both endpoints, so hubs recur as sampled
// neighbors). When labels is non-nil, ~70% of edges connect same-community
// endpoints, the homophily real GNN benchmarks exhibit. labels==nil falls
// back to the unlabeled structure (used by NearRegular callers / tests).
func genHomophilousPowerLaw(v, e int, skew float64, labels []int32, rng *tensor.RNG) *graph.CSR {
	if skew <= 1 {
		skew = 2
	}
	coo := &graph.COO{NumVertices: v, Src: make([]graph.VID, e), Dst: make([]graph.VID, e)}
	srcSkew := 1 + (skew-1)*0.5
	// Community membership lists, for homophilous src selection.
	var byComm [][]graph.VID
	if labels != nil {
		classes := 0
		for _, l := range labels {
			if int(l)+1 > classes {
				classes = int(l) + 1
			}
		}
		byComm = make([][]graph.VID, classes)
		for u, l := range labels {
			byComm[l] = append(byComm[l], graph.VID(u))
		}
	}
	for i := 0; i < e; i++ {
		d := powerIndex(v, skew, rng)
		var s graph.VID
		if labels != nil && len(byComm[labels[d]]) > 1 && rng.Float64() < 0.7 {
			// Same-community neighbor (homophily).
			peers := byComm[labels[d]]
			s = peers[rng.Intn(len(peers))]
		} else {
			s = powerIndex(v, srcSkew, rng)
		}
		for s == d {
			s = powerIndex(v, srcSkew, rng)
		}
		coo.Src[i] = s
		coo.Dst[i] = d
	}
	csr, _ := graph.COOToCSR(coo)
	return csr
}

// powerIndex draws an index in [0, v) with frequency falling off as a power
// of the index: index 0 is the hottest hub. Drawing idx = ⌊v·u^e⌋ gives a
// density ∝ idx^(1/e − 1), i.e. a heavy head whose weight grows with e.
func powerIndex(v int, exp float64, rng *tensor.RNG) graph.VID {
	u := rng.Float64()
	idx := int(float64(v) * math.Pow(u, exp))
	if idx >= v {
		idx = v - 1
	}
	return graph.VID(idx)
}

// genNearRegular builds a road-network-like graph: vertices on a ring with
// short-range links, so every in-degree is within ±1 of the mean.
func genNearRegular(v, e int, rng *tensor.RNG) *graph.CSR {
	deg := e / v
	if deg < 2 {
		deg = 2
	}
	coo := &graph.COO{NumVertices: v}
	for d := 0; d < v; d++ {
		for k := 1; k <= deg; k++ {
			// Neighbors at small ring offsets, with a little jitter so the
			// graph is not perfectly symmetric.
			off := k
			if rng.Intn(4) == 0 {
				off++
			}
			s := (d + off) % v
			coo.Src = append(coo.Src, graph.VID(s))
			coo.Dst = append(coo.Dst, graph.VID(d))
		}
	}
	csr, _ := graph.COOToCSR(coo)
	return csr
}

// BatchDsts deterministically selects a training batch of n dst vertices
// (the paper uses batches of 300 vertices). Vertices are drawn without
// replacement.
func (d *Dataset) BatchDsts(n int, seed uint64) []graph.VID {
	if n > d.NumVertices() {
		n = d.NumVertices()
	}
	rng := tensor.NewRNG(seed ^ seedFor(d.Spec.Name))
	seen := make(map[graph.VID]struct{}, n)
	out := make([]graph.VID, 0, n)
	for len(out) < n {
		v := graph.VID(rng.Intn(d.NumVertices()))
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
