// Package fault is GraphTensor's deterministic fault-injection layer: the
// chaos source the serving and training engines are hardened against. A
// Plan decides, for every (unit, step) pair, whether that unit fails,
// recovers or degrades at that step — and the decision is a pure function
// of the plan's seed, the event kind and those two integers. Wall time
// never enters: two runs with the same plan see byte-for-byte the same
// fault schedule, so a chaos run replays bitwise and a failover bug
// reproduces on the first try.
//
// The event vocabulary covers fault domains and elastic membership, not
// just single devices: DeviceDies/StallFor (PR 7's originals), NodeDies
// (a whole fault domain — every device on the node — lost in one batch
// boundary), LinkDegraded (the inter-node network tier running slow for a
// window of steps; modeled time only, never numerics), and
// DeviceRejoins/ReplicaRejoins (a dead unit re-entering at a batch
// boundary, the recovery half of elastic membership).
//
// Plans compose an explicit schedule (Kill/KillNode/StallAt/Rejoin/
// RejoinReplica/DegradeLink — the form tests use, one event at one step)
// with hash-derived probabilistic events (Config rates — the form soak
// runs use). Both are deterministic; the probabilistic form derives each
// verdict from splitmix64(seed, kind, id, step), so it is stable under any
// interleaving and any GOMAXPROCS. Describe dumps the full resolved
// schedule for a (steps, units) window, so any chaos failure is
// reproducible from one printed line.
//
// The package is pure policy: it never touches a device. Integrations
// (serve replicas, the multigpu DeviceGroup) query the plan at batch
// boundaries — the only places the engines' determinism disciplines allow
// behaviour to change — and drive the gpusim mechanisms (Device.Kill,
// Device.Revive, Device.InjectStall, Interconnect.SetLinkDegradation)
// themselves.
package fault

import (
	"fmt"
	"strings"
	"time"
)

// Kind labels an injected event.
type Kind uint8

const (
	// DeviceDeath permanently kills the device: every subsequent
	// allocation fails with gpusim's device-lost error. Batch-granularity
	// failover (serving) or group shrink (training) takes over.
	DeviceDeath Kind = iota + 1
	// KernelStall charges the device a transient modeled delay — a
	// straggling kernel — without harming correctness.
	KernelStall
	// SlowReplica marks the device slow for one step: a longer modeled
	// delay, the knob that makes work stealing visible in chaos runs.
	SlowReplica
	// NodeDeath kills a whole fault domain: every device on the node dies
	// at the same batch boundary (a host crash, a PSU trip — the
	// correlated loss single-device kills cannot express).
	NodeDeath
	// LinkDegrade marks the inter-node network tier degraded for a window
	// of steps: modeled bandwidth scales down and per-hop latency grows.
	// Degradation touches modeled time only — never the fold order or any
	// numeric result.
	LinkDegrade
	// DeviceRejoin re-admits a dead training device at a batch boundary:
	// the group revives it, reinstalls the survivors' weight snapshot
	// (paid as a modeled broadcast) and resumes sharding onto it.
	DeviceRejoin
	// ReplicaRejoin re-admits a dead serving replica: a fresh weight
	// snapshot plus policy placements, home/steal queues reattached.
	ReplicaRejoin
)

// Config sets the probabilistic event rates. All rates are per (device,
// step) and independent; zero rates (the zero value) yield a plan that
// injects only its explicit schedule.
type Config struct {
	// DeathProb is the per-step probability a device permanently dies.
	DeathProb float64
	// StallProb and StallTime shape transient kernel stalls.
	StallProb float64
	StallTime time.Duration
	// SlowProb and SlowTime shape slow-replica events (a longer stall).
	SlowProb float64
	SlowTime time.Duration
	// NodeDeathProb is the per-(node, step) probability a whole node dies
	// (every device on it, one batch boundary).
	NodeDeathProb float64
	// RejoinProb is the per-(unit, step) probability a dead device or
	// replica rejoins. Engines consult it only for units that are actually
	// dead, so a high rate means fast re-provisioning, not churn.
	RejoinProb float64
	// LinkDegradeProb is the per-step probability a link-degradation
	// window *starts*; each window lasts LinkDegradeSteps steps (min 1),
	// scales the modeled network bandwidth by LinkDegradeFactor (clamped
	// to (0, 1]; 0 defaults to 0.25) and adds LinkDegradeLatency to every
	// network hop. Overlapping windows take the worst factor and latency.
	LinkDegradeProb    float64
	LinkDegradeFactor  float64
	LinkDegradeSteps   int
	LinkDegradeLatency time.Duration
}

// Plan is a deterministic fault schedule. The zero value is unusable; use
// NewPlan or Schedule. A Plan is immutable after construction (Kill and
// StallAt return before any engine consults it), so concurrent queries
// from replicas and device workers need no synchronization.
type Plan struct {
	seed       uint64
	cfg        Config
	kills      map[devStep]bool
	stalls     map[devStep]time.Duration
	nodeKills  map[devStep]bool
	rejoins    map[devStep]bool
	repRejoins map[devStep]bool
	degrades   []linkWindow
}

type devStep struct {
	dev, step int
}

// linkWindow is one explicit link-degradation window: steps [start,
// start+steps) run the network tier at factor × bandwidth with extra
// per-hop latency.
type linkWindow struct {
	start, steps int
	factor       float64
	extra        time.Duration
}

// NewPlan builds a plan from a seed and probabilistic rates. Explicit
// events may be layered on with Kill/StallAt before use.
func NewPlan(seed uint64, cfg Config) *Plan {
	return &Plan{
		seed:       seed,
		cfg:        cfg,
		kills:      map[devStep]bool{},
		stalls:     map[devStep]time.Duration{},
		nodeKills:  map[devStep]bool{},
		rejoins:    map[devStep]bool{},
		repRejoins: map[devStep]bool{},
	}
}

// Schedule builds a plan with no probabilistic events — the explicit form
// chaos tests use: exactly the events added via Kill/KillNode/StallAt/
// Rejoin/RejoinReplica/DegradeLink.
func Schedule() *Plan { return NewPlan(0, Config{}) }

// Kill schedules device dev to die at step (its step-th batch, counted
// from 0). Returns the plan for chaining.
func (p *Plan) Kill(dev, step int) *Plan {
	p.kills[devStep{dev, step}] = true
	return p
}

// StallAt schedules a modeled stall of d on device dev at step. Returns
// the plan for chaining.
func (p *Plan) StallAt(dev, step int, d time.Duration) *Plan {
	p.stalls[devStep{dev, step}] = d
	return p
}

// KillNode schedules the whole node to die at step: the engine kills every
// device on it at that batch boundary. Returns the plan for chaining.
func (p *Plan) KillNode(node, step int) *Plan {
	p.nodeKills[devStep{node, step}] = true
	return p
}

// Rejoin schedules dead device dev to re-enter the group at step (a batch
// boundary; the engine ignores rejoins for devices that are alive).
// Returns the plan for chaining.
func (p *Plan) Rejoin(dev, step int) *Plan {
	p.rejoins[devStep{dev, step}] = true
	return p
}

// RejoinReplica schedules dead serving replica r to respawn at step (the
// server-wide served-batch sequence; ignored while the replica is alive).
// Returns the plan for chaining.
func (p *Plan) RejoinReplica(r, step int) *Plan {
	p.repRejoins[devStep{r, step}] = true
	return p
}

// DegradeLink schedules a link-degradation window: the inter-node network
// tier runs at factor × bandwidth (clamped to (0, 1]) with extra added to
// every hop for `steps` steps starting at `start`. Returns the plan for
// chaining.
func (p *Plan) DegradeLink(start, steps int, factor float64, extra time.Duration) *Plan {
	if steps < 1 {
		steps = 1
	}
	p.degrades = append(p.degrades, linkWindow{start: start, steps: steps,
		factor: clampFactor(factor), extra: extra})
	return p
}

// clampFactor normalizes a bandwidth-scale factor into (0, 1]: a degraded
// link is slower, never faster, and never fully dark (a zero-bandwidth
// link is a partition, which the membership events model instead).
func clampFactor(f float64) float64 {
	if f <= 0 {
		return 0.25
	}
	if f > 1 {
		return 1
	}
	return f
}

// DeviceDies reports whether device dev dies at step. Pure: the same
// (plan, dev, step) always answers the same.
func (p *Plan) DeviceDies(dev, step int) bool {
	if p.kills[devStep{dev, step}] {
		return true
	}
	return p.cfg.DeathProb > 0 && p.roll(uint64(DeviceDeath), dev, step) < p.cfg.DeathProb
}

// StallFor returns the modeled stall injected on device dev at step (0
// for none). Explicit stalls win; otherwise kernel-stall and slow-replica
// rolls are combined (a step can draw both). Pure like DeviceDies.
func (p *Plan) StallFor(dev, step int) time.Duration {
	if d, ok := p.stalls[devStep{dev, step}]; ok {
		return d
	}
	var d time.Duration
	if p.cfg.StallProb > 0 && p.roll(uint64(KernelStall), dev, step) < p.cfg.StallProb {
		d += p.cfg.StallTime
	}
	if p.cfg.SlowProb > 0 && p.roll(uint64(SlowReplica), dev, step) < p.cfg.SlowProb {
		d += p.cfg.SlowTime
	}
	return d
}

// NodeDies reports whether node (a fault domain: every device on it) dies
// at step. Pure like DeviceDies.
func (p *Plan) NodeDies(node, step int) bool {
	if p.nodeKills[devStep{node, step}] {
		return true
	}
	return p.cfg.NodeDeathProb > 0 && p.roll(uint64(NodeDeath), node, step) < p.cfg.NodeDeathProb
}

// DeviceRejoins reports whether dead device dev rejoins the group at step.
// Engines consult it only for devices that are currently dead; the answer
// for an alive device is meaningless but still deterministic.
func (p *Plan) DeviceRejoins(dev, step int) bool {
	if p.rejoins[devStep{dev, step}] {
		return true
	}
	return p.cfg.RejoinProb > 0 && p.roll(uint64(DeviceRejoin), dev, step) < p.cfg.RejoinProb
}

// ReplicaRejoins reports whether dead serving replica r respawns at step.
// Same contract as DeviceRejoins: consulted only while dead.
func (p *Plan) ReplicaRejoins(r, step int) bool {
	if p.repRejoins[devStep{r, step}] {
		return true
	}
	return p.cfg.RejoinProb > 0 && p.roll(uint64(ReplicaRejoin), r, step) < p.cfg.RejoinProb
}

// LinkDegraded returns the network-tier degradation in force at step: a
// bandwidth scale factor in (0, 1] (1 = healthy) and extra per-hop
// latency. Overlapping windows combine worst-case — minimum factor,
// maximum extra. Pure: explicit windows from DegradeLink plus
// probabilistic window starts derived from (seed, step).
func (p *Plan) LinkDegraded(step int) (factor float64, extra time.Duration) {
	factor = 1
	for _, w := range p.degrades {
		if step >= w.start && step < w.start+w.steps {
			if w.factor < factor {
				factor = w.factor
			}
			if w.extra > extra {
				extra = w.extra
			}
		}
	}
	if p.cfg.LinkDegradeProb > 0 {
		steps := p.cfg.LinkDegradeSteps
		if steps < 1 {
			steps = 1
		}
		f := clampFactor(p.cfg.LinkDegradeFactor)
		// A window covering step must have started in
		// [step-steps+1, step]; scan those starts.
		for s := step - steps + 1; s <= step; s++ {
			if s < 0 {
				continue
			}
			if p.roll(uint64(LinkDegrade), 0, s) < p.cfg.LinkDegradeProb {
				if f < factor {
					factor = f
				}
				if p.cfg.LinkDegradeLatency > extra {
					extra = p.cfg.LinkDegradeLatency
				}
				break
			}
		}
	}
	return factor, extra
}

// Describe resolves every event the plan injects over steps [0, steps) for
// unit ids [0, units) — units bounds devices, nodes and replicas alike —
// and renders them as one compact line per step. The dump is the
// reproduction recipe for a chaos divergence: feed the same seed, config
// and explicit schedule back in and the identical events replay.
func (p *Plan) Describe(steps, units int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault.Plan seed=%d steps=%d units=%d\n", p.seed, steps, units)
	n := 0
	for step := 0; step < steps; step++ {
		var evs []string
		for u := 0; u < units; u++ {
			if p.DeviceDies(u, step) {
				evs = append(evs, fmt.Sprintf("kill(dev=%d)", u))
			}
			if d := p.StallFor(u, step); d > 0 {
				evs = append(evs, fmt.Sprintf("stall(dev=%d,%v)", u, d))
			}
			if p.NodeDies(u, step) {
				evs = append(evs, fmt.Sprintf("killnode(node=%d)", u))
			}
			if p.DeviceRejoins(u, step) {
				evs = append(evs, fmt.Sprintf("rejoin(dev=%d)", u))
			}
			if p.ReplicaRejoins(u, step) {
				evs = append(evs, fmt.Sprintf("rejoin(replica=%d)", u))
			}
		}
		if f, extra := p.LinkDegraded(step); f < 1 || extra > 0 {
			evs = append(evs, fmt.Sprintf("degrade(link,factor=%.2f,extra=%v)", f, extra))
		}
		if len(evs) > 0 {
			fmt.Fprintf(&b, "  step %d: %s\n", step, strings.Join(evs, " "))
			n += len(evs)
		}
	}
	fmt.Fprintf(&b, "  total %d events\n", n)
	return b.String()
}

// roll maps (seed, kind, dev, step) to a uniform [0,1) value via a
// splitmix64 finalizer — the same hash-not-state construction the
// samplers use, so verdicts are independent of query order.
func (p *Plan) roll(kind uint64, dev, step int) float64 {
	x := p.seed ^ kind*0x9e3779b97f4a7c15 ^ uint64(dev+1)*0xbf58476d1ce4e5b9 ^ uint64(step+1)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
