// Package fault is GraphTensor's deterministic fault-injection layer: the
// chaos source the serving and training engines are hardened against. A
// Plan decides, for every (device, step) pair, whether the device dies at
// that step and how long its kernels stall — and the decision is a pure
// function of the plan's seed and those two integers. Wall time never
// enters: two runs with the same plan see byte-for-byte the same fault
// schedule, so a chaos run replays bitwise and a failover bug reproduces
// on the first try.
//
// Plans compose an explicit schedule (Kill/StallAt — the form tests use,
// one kill at one step) with hash-derived probabilistic events (Config
// rates — the form soak runs use). Both are deterministic; the
// probabilistic form derives each verdict from splitmix64(seed, device,
// step), so it is stable under any interleaving and any GOMAXPROCS.
//
// The package is pure policy: it never touches a device. Integrations
// (serve replicas, the multigpu DeviceGroup) query the plan at batch
// boundaries — the only places the engines' determinism disciplines allow
// behaviour to change — and drive the gpusim mechanisms (Device.Kill,
// Device.InjectStall) themselves.
package fault

import "time"

// Kind labels an injected event.
type Kind uint8

const (
	// DeviceDeath permanently kills the device: every subsequent
	// allocation fails with gpusim's device-lost error. Batch-granularity
	// failover (serving) or group shrink (training) takes over.
	DeviceDeath Kind = iota + 1
	// KernelStall charges the device a transient modeled delay — a
	// straggling kernel — without harming correctness.
	KernelStall
	// SlowReplica marks the device slow for one step: a longer modeled
	// delay, the knob that makes work stealing visible in chaos runs.
	SlowReplica
)

// Config sets the probabilistic event rates. All rates are per (device,
// step) and independent; zero rates (the zero value) yield a plan that
// injects only its explicit schedule.
type Config struct {
	// DeathProb is the per-step probability a device permanently dies.
	DeathProb float64
	// StallProb and StallTime shape transient kernel stalls.
	StallProb float64
	StallTime time.Duration
	// SlowProb and SlowTime shape slow-replica events (a longer stall).
	SlowProb float64
	SlowTime time.Duration
}

// Plan is a deterministic fault schedule. The zero value is unusable; use
// NewPlan or Schedule. A Plan is immutable after construction (Kill and
// StallAt return before any engine consults it), so concurrent queries
// from replicas and device workers need no synchronization.
type Plan struct {
	seed   uint64
	cfg    Config
	kills  map[devStep]bool
	stalls map[devStep]time.Duration
}

type devStep struct {
	dev, step int
}

// NewPlan builds a plan from a seed and probabilistic rates. Explicit
// events may be layered on with Kill/StallAt before use.
func NewPlan(seed uint64, cfg Config) *Plan {
	return &Plan{
		seed:   seed,
		cfg:    cfg,
		kills:  map[devStep]bool{},
		stalls: map[devStep]time.Duration{},
	}
}

// Schedule builds a plan with no probabilistic events — the explicit form
// chaos tests use: exactly the kills and stalls added via Kill/StallAt.
func Schedule() *Plan { return NewPlan(0, Config{}) }

// Kill schedules device dev to die at step (its step-th batch, counted
// from 0). Returns the plan for chaining.
func (p *Plan) Kill(dev, step int) *Plan {
	p.kills[devStep{dev, step}] = true
	return p
}

// StallAt schedules a modeled stall of d on device dev at step. Returns
// the plan for chaining.
func (p *Plan) StallAt(dev, step int, d time.Duration) *Plan {
	p.stalls[devStep{dev, step}] = d
	return p
}

// DeviceDies reports whether device dev dies at step. Pure: the same
// (plan, dev, step) always answers the same.
func (p *Plan) DeviceDies(dev, step int) bool {
	if p.kills[devStep{dev, step}] {
		return true
	}
	return p.cfg.DeathProb > 0 && p.roll(uint64(DeviceDeath), dev, step) < p.cfg.DeathProb
}

// StallFor returns the modeled stall injected on device dev at step (0
// for none). Explicit stalls win; otherwise kernel-stall and slow-replica
// rolls are combined (a step can draw both). Pure like DeviceDies.
func (p *Plan) StallFor(dev, step int) time.Duration {
	if d, ok := p.stalls[devStep{dev, step}]; ok {
		return d
	}
	var d time.Duration
	if p.cfg.StallProb > 0 && p.roll(uint64(KernelStall), dev, step) < p.cfg.StallProb {
		d += p.cfg.StallTime
	}
	if p.cfg.SlowProb > 0 && p.roll(uint64(SlowReplica), dev, step) < p.cfg.SlowProb {
		d += p.cfg.SlowTime
	}
	return d
}

// roll maps (seed, kind, dev, step) to a uniform [0,1) value via a
// splitmix64 finalizer — the same hash-not-state construction the
// samplers use, so verdicts are independent of query order.
func (p *Plan) roll(kind uint64, dev, step int) float64 {
	x := p.seed ^ kind*0x9e3779b97f4a7c15 ^ uint64(dev+1)*0xbf58476d1ce4e5b9 ^ uint64(step+1)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
