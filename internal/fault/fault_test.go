package fault

import (
	"strings"
	"testing"
	"time"
)

// TestPlanDeterministic: verdicts are a pure function of (seed, dev,
// step) — two plans with the same seed agree everywhere, query order and
// repetition never matter.
func TestFaultPlanDeterministic(t *testing.T) {
	cfg := Config{
		DeathProb: 0.05,
		StallProb: 0.2, StallTime: 3 * time.Millisecond,
		SlowProb: 0.1, SlowTime: 20 * time.Millisecond,
	}
	a, b := NewPlan(42, cfg), NewPlan(42, cfg)
	// Query b in reverse order to prove order-independence.
	type verdict struct {
		dies  bool
		stall time.Duration
	}
	var av, bv []verdict
	for dev := 0; dev < 4; dev++ {
		for step := 0; step < 256; step++ {
			av = append(av, verdict{a.DeviceDies(dev, step), a.StallFor(dev, step)})
		}
	}
	for dev := 3; dev >= 0; dev-- {
		for step := 255; step >= 0; step-- {
			bv = append(bv, verdict{b.DeviceDies(dev, step), b.StallFor(dev, step)})
		}
	}
	n := len(av)
	for i := range av {
		j := n - 1 - i // bv was filled in reverse
		if av[i] != bv[j] {
			t.Fatalf("verdict %d diverged between identical plans: %+v vs %+v", i, av[i], bv[j])
		}
	}
	// Re-query a: verdicts are stable, not consumed.
	if got := a.DeviceDies(0, 0); got != av[0].dies {
		t.Fatalf("re-query changed DeviceDies(0,0): %v then %v", av[0].dies, got)
	}
}

// TestPlanSeedsDiffer: different seeds give different schedules (the
// probabilistic rates actually fire and actually depend on the seed).
func TestFaultPlanSeedsDiffer(t *testing.T) {
	cfg := Config{StallProb: 0.5, StallTime: time.Millisecond}
	a, b := NewPlan(1, cfg), NewPlan(2, cfg)
	fired, differ := 0, false
	for step := 0; step < 512; step++ {
		sa, sb := a.StallFor(0, step), b.StallFor(0, step)
		if sa > 0 {
			fired++
		}
		if (sa > 0) != (sb > 0) {
			differ = true
		}
	}
	if fired == 0 || fired == 512 {
		t.Fatalf("StallProb=0.5 fired %d/512 times; rate is not being applied", fired)
	}
	if !differ {
		t.Fatal("seeds 1 and 2 produced identical 512-step stall schedules")
	}
}

// TestExplicitSchedule: Schedule() injects exactly the programmed events
// and nothing else.
func TestFaultExplicitSchedule(t *testing.T) {
	p := Schedule().Kill(1, 3).StallAt(0, 2, 5*time.Millisecond)
	for dev := 0; dev < 3; dev++ {
		for step := 0; step < 8; step++ {
			wantDie := dev == 1 && step == 3
			if got := p.DeviceDies(dev, step); got != wantDie {
				t.Fatalf("DeviceDies(%d,%d) = %v, want %v", dev, step, got, wantDie)
			}
			var wantStall time.Duration
			if dev == 0 && step == 2 {
				wantStall = 5 * time.Millisecond
			}
			if got := p.StallFor(dev, step); got != wantStall {
				t.Fatalf("StallFor(%d,%d) = %v, want %v", dev, step, got, wantStall)
			}
		}
	}
}

// TestFaultNodeAndRejoinSchedule: the fault-domain and membership events
// from the explicit schedule fire exactly where programmed and nowhere
// else, and device/replica rejoins are independent event streams.
func TestFaultNodeAndRejoinSchedule(t *testing.T) {
	p := Schedule().KillNode(1, 2).Rejoin(3, 5).RejoinReplica(0, 4)
	for u := 0; u < 4; u++ {
		for step := 0; step < 8; step++ {
			if got, want := p.NodeDies(u, step), u == 1 && step == 2; got != want {
				t.Fatalf("NodeDies(%d,%d) = %v, want %v", u, step, got, want)
			}
			if got, want := p.DeviceRejoins(u, step), u == 3 && step == 5; got != want {
				t.Fatalf("DeviceRejoins(%d,%d) = %v, want %v", u, step, got, want)
			}
			if got, want := p.ReplicaRejoins(u, step), u == 0 && step == 4; got != want {
				t.Fatalf("ReplicaRejoins(%d,%d) = %v, want %v", u, step, got, want)
			}
		}
	}
}

// TestFaultLinkDegradeWindows: explicit windows cover exactly their steps,
// overlaps combine worst-case, and the factor clamps into (0, 1].
func TestFaultLinkDegradeWindows(t *testing.T) {
	p := Schedule().
		DegradeLink(2, 3, 0.5, time.Millisecond).
		DegradeLink(4, 2, 0.25, 0)
	want := []struct {
		factor float64
		extra  time.Duration
	}{
		{1, 0},                   // 0
		{1, 0},                   // 1
		{0.5, time.Millisecond},  // 2
		{0.5, time.Millisecond},  // 3
		{0.25, time.Millisecond}, // 4: overlap takes min factor, max extra
		{0.25, 0},                // 5
		{1, 0},                   // 6
	}
	for step, w := range want {
		f, e := p.LinkDegraded(step)
		if f != w.factor || e != w.extra {
			t.Fatalf("LinkDegraded(%d) = (%v, %v), want (%v, %v)", step, f, e, w.factor, w.extra)
		}
	}
	// Factor clamps: <=0 defaults to 0.25, >1 clamps to healthy.
	if f, _ := Schedule().DegradeLink(0, 1, 0, 0).LinkDegraded(0); f != 0.25 {
		t.Fatalf("factor 0 should default to 0.25, got %v", f)
	}
	if f, _ := Schedule().DegradeLink(0, 1, 7, 0).LinkDegraded(0); f != 1 {
		t.Fatalf("factor 7 should clamp to 1, got %v", f)
	}
}

// TestFaultLinkDegradeProbabilisticWindows: probabilistic windows span
// LinkDegradeSteps consecutive steps from their start and are pure
// functions of (seed, step).
func TestFaultLinkDegradeProbabilisticWindows(t *testing.T) {
	cfg := Config{LinkDegradeProb: 0.05, LinkDegradeFactor: 0.5,
		LinkDegradeSteps: 4, LinkDegradeLatency: time.Millisecond}
	a, b := NewPlan(9, cfg), NewPlan(9, cfg)
	degraded := 0
	for step := 0; step < 1024; step++ {
		fa, ea := a.LinkDegraded(step)
		fb, eb := b.LinkDegraded(step)
		if fa != fb || ea != eb {
			t.Fatalf("LinkDegraded(%d) diverged between identical plans", step)
		}
		if fa < 1 {
			degraded++
			if fa != 0.5 || ea != time.Millisecond {
				t.Fatalf("degraded step %d = (%v, %v), want (0.5, 1ms)", step, fa, ea)
			}
		}
	}
	// 5% start rate with 4-step windows should degrade roughly 18% of
	// steps (1 - 0.95^4); accept a wide band.
	if degraded < 60 || degraded > 400 {
		t.Fatalf("degraded %d/1024 steps; window expansion looks wrong", degraded)
	}
	// A window must be contiguous: every degraded step's predecessor or
	// successor inside the window length is degraded or it is a start.
	for step := 1; step < 1024; step++ {
		f, _ := a.LinkDegraded(step)
		if f >= 1 {
			continue
		}
		prev, _ := a.LinkDegraded(step - 1)
		started := a.roll(uint64(LinkDegrade), 0, step) < cfg.LinkDegradeProb
		if prev >= 1 && !started {
			t.Fatalf("step %d degraded without a start and without a degraded predecessor", step)
		}
	}
}

// TestFaultDescribeSchedule: Describe dumps every resolved event for the
// window — the one-line reproduction recipe chaos divergences print.
func TestFaultDescribeSchedule(t *testing.T) {
	p := Schedule().Kill(0, 1).KillNode(1, 2).Rejoin(0, 3).
		RejoinReplica(2, 4).DegradeLink(1, 2, 0.5, time.Millisecond)
	out := p.Describe(6, 4)
	for _, want := range []string{
		"kill(dev=0)", "killnode(node=1)", "rejoin(dev=0)",
		"rejoin(replica=2)", "degrade(link,factor=0.50,extra=1ms)",
		"step 1:", "step 4:", "total 6 events",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe output missing %q:\n%s", want, out)
		}
	}
	// An empty plan dumps no events.
	if out := Schedule().Describe(4, 4); !strings.Contains(out, "total 0 events") {
		t.Fatalf("empty plan Describe should report 0 events:\n%s", out)
	}
}

// TestRollUniform: the hash behind the probabilistic verdicts is roughly
// uniform — a 25% rate fires near 25% of the time over many steps.
func TestFaultRollUniform(t *testing.T) {
	p := NewPlan(7, Config{StallProb: 0.25, StallTime: time.Millisecond})
	fired := 0
	const n = 4096
	for step := 0; step < n; step++ {
		if p.StallFor(0, step) > 0 {
			fired++
		}
	}
	rate := float64(fired) / n
	if rate < 0.20 || rate > 0.30 {
		t.Fatalf("25%% stall rate fired at %.1f%% over %d steps", 100*rate, n)
	}
}
