package fault

import (
	"testing"
	"time"
)

// TestPlanDeterministic: verdicts are a pure function of (seed, dev,
// step) — two plans with the same seed agree everywhere, query order and
// repetition never matter.
func TestFaultPlanDeterministic(t *testing.T) {
	cfg := Config{
		DeathProb: 0.05,
		StallProb: 0.2, StallTime: 3 * time.Millisecond,
		SlowProb: 0.1, SlowTime: 20 * time.Millisecond,
	}
	a, b := NewPlan(42, cfg), NewPlan(42, cfg)
	// Query b in reverse order to prove order-independence.
	type verdict struct {
		dies  bool
		stall time.Duration
	}
	var av, bv []verdict
	for dev := 0; dev < 4; dev++ {
		for step := 0; step < 256; step++ {
			av = append(av, verdict{a.DeviceDies(dev, step), a.StallFor(dev, step)})
		}
	}
	for dev := 3; dev >= 0; dev-- {
		for step := 255; step >= 0; step-- {
			bv = append(bv, verdict{b.DeviceDies(dev, step), b.StallFor(dev, step)})
		}
	}
	n := len(av)
	for i := range av {
		j := n - 1 - i // bv was filled in reverse
		if av[i] != bv[j] {
			t.Fatalf("verdict %d diverged between identical plans: %+v vs %+v", i, av[i], bv[j])
		}
	}
	// Re-query a: verdicts are stable, not consumed.
	if got := a.DeviceDies(0, 0); got != av[0].dies {
		t.Fatalf("re-query changed DeviceDies(0,0): %v then %v", av[0].dies, got)
	}
}

// TestPlanSeedsDiffer: different seeds give different schedules (the
// probabilistic rates actually fire and actually depend on the seed).
func TestFaultPlanSeedsDiffer(t *testing.T) {
	cfg := Config{StallProb: 0.5, StallTime: time.Millisecond}
	a, b := NewPlan(1, cfg), NewPlan(2, cfg)
	fired, differ := 0, false
	for step := 0; step < 512; step++ {
		sa, sb := a.StallFor(0, step), b.StallFor(0, step)
		if sa > 0 {
			fired++
		}
		if (sa > 0) != (sb > 0) {
			differ = true
		}
	}
	if fired == 0 || fired == 512 {
		t.Fatalf("StallProb=0.5 fired %d/512 times; rate is not being applied", fired)
	}
	if !differ {
		t.Fatal("seeds 1 and 2 produced identical 512-step stall schedules")
	}
}

// TestExplicitSchedule: Schedule() injects exactly the programmed events
// and nothing else.
func TestFaultExplicitSchedule(t *testing.T) {
	p := Schedule().Kill(1, 3).StallAt(0, 2, 5*time.Millisecond)
	for dev := 0; dev < 3; dev++ {
		for step := 0; step < 8; step++ {
			wantDie := dev == 1 && step == 3
			if got := p.DeviceDies(dev, step); got != wantDie {
				t.Fatalf("DeviceDies(%d,%d) = %v, want %v", dev, step, got, wantDie)
			}
			var wantStall time.Duration
			if dev == 0 && step == 2 {
				wantStall = 5 * time.Millisecond
			}
			if got := p.StallFor(dev, step); got != wantStall {
				t.Fatalf("StallFor(%d,%d) = %v, want %v", dev, step, got, wantStall)
			}
		}
	}
}

// TestRollUniform: the hash behind the probabilistic verdicts is roughly
// uniform — a 25% rate fires near 25% of the time over many steps.
func TestFaultRollUniform(t *testing.T) {
	p := NewPlan(7, Config{StallProb: 0.25, StallTime: time.Millisecond})
	fired := 0
	const n = 4096
	for step := 0; step < n; step++ {
		if p.StallFor(0, step) > 0 {
			fired++
		}
	}
	rate := float64(fired) / n
	if rate < 0.20 || rate > 0.30 {
		t.Fatalf("25%% stall rate fired at %.1f%% over %d steps", 100*rate, n)
	}
}
