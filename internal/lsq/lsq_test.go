package lsq

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactFit(t *testing.T) {
	// y = 2*x0 + 3*x1, exactly solvable.
	a := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	b := []float64{2, 3, 5, 7}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("got %v want [2 3]", x)
	}
}

func TestOverdeterminedLeastSquares(t *testing.T) {
	// Fit y = m*x through noisy points; slope should be ~2.
	a := [][]float64{{1}, {2}, {3}, {4}}
	b := []float64{2.1, 3.9, 6.1, 7.9}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 0.1 {
		t.Errorf("slope %g not near 2", x[0])
	}
	if e := MeanAbsErr(a, b, x); e > 0.05 {
		t.Errorf("fit error %g too high", e)
	}
}

func TestSingularDetected(t *testing.T) {
	// Two identical columns -> singular normal equations.
	a := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	b := []float64{1, 2, 3}
	_, err := Solve(a, b)
	if err != ErrSingular {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestDimensionMismatch(t *testing.T) {
	_, err := Solve([][]float64{{1}}, []float64{1, 2})
	if err == nil {
		t.Error("expected dimension error")
	}
}

// TestSquareExactSystem: m == n (as many samples as unknowns) with a
// consistent, well-conditioned system must be recovered exactly — the
// normal equations reduce to the original system.
func TestSquareExactSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{7, 11} // x = [2, 3]
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("got %v want [2 3]", x)
	}
	if e := MeanAbsErr(a, b, x); e > 1e-9 {
		t.Errorf("exact system should have ~0 fit error, got %g", e)
	}
}

// TestIllConditionedColumns: nearly (but not perfectly) collinear columns —
// the regime DKP's calibration designs can approach when a sweep barely
// varies one dimension. The solver must either recover coefficients that
// reproduce b, or report ErrSingular — never return garbage silently.
func TestIllConditionedColumns(t *testing.T) {
	const eps = 1e-9
	a := [][]float64{
		{1, 1 + eps},
		{2, 2 + 2*eps},
		{3, 3 + 3*eps},
		{4, 4 + 4*eps},
	}
	b := []float64{3, 6, 9, 12} // consistent with x0 + 2*x1 ≈ 3 along the shared direction
	x, err := Solve(a, b)
	if err == ErrSingular {
		return // acceptable: detected as numerically singular
	}
	if err != nil {
		t.Fatal(err)
	}
	if e := MeanAbsErr(a, b, x); e > 1e-3 {
		t.Errorf("ill-conditioned solve returned garbage: coeffs %v, rel err %g", x, e)
	}
}

// TestNearSingularScaled: wildly different column scales (edge-count terms
// ~1e6 against per-row terms ~1e0, as in the calibration designs) must not
// trip the singularity pivot threshold.
func TestNearSingularScaled(t *testing.T) {
	a := [][]float64{
		{1e6, 1}, {2e6, 3}, {4e6, 2}, {8e6, 5},
	}
	want := []float64{3e-5, 0.25}
	b := make([]float64, len(a))
	for i, row := range a {
		b[i] = row[0]*want[0] + row[1]*want[1]
	}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-want[0]) > 1e-9 || math.Abs(x[1]-want[1]) > 1e-6 {
		t.Errorf("got %v want %v", x, want)
	}
}

// Property: for an exactly-determined consistent system, Solve recovers the
// coefficients.
func TestQuickExactRecovery(t *testing.T) {
	f := func(c0i, c1i int16) bool {
		c0, c1 := float64(c0i)/100, float64(c1i)/100
		a := [][]float64{{1, 0}, {0, 1}, {1, 1}}
		b := []float64{c0, c1, c0 + c1}
		x, err := Solve(a, b)
		if err != nil {
			return true // singular edge cases acceptable
		}
		return math.Abs(x[0]-c0) < 1e-6 && math.Abs(x[1]-c1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
