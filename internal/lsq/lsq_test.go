package lsq

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactFit(t *testing.T) {
	// y = 2*x0 + 3*x1, exactly solvable.
	a := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	b := []float64{2, 3, 5, 7}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("got %v want [2 3]", x)
	}
}

func TestOverdeterminedLeastSquares(t *testing.T) {
	// Fit y = m*x through noisy points; slope should be ~2.
	a := [][]float64{{1}, {2}, {3}, {4}}
	b := []float64{2.1, 3.9, 6.1, 7.9}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 0.1 {
		t.Errorf("slope %g not near 2", x[0])
	}
	if e := MeanAbsErr(a, b, x); e > 0.05 {
		t.Errorf("fit error %g too high", e)
	}
}

func TestSingularDetected(t *testing.T) {
	// Two identical columns -> singular normal equations.
	a := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	b := []float64{1, 2, 3}
	_, err := Solve(a, b)
	if err != ErrSingular {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestDimensionMismatch(t *testing.T) {
	_, err := Solve([][]float64{{1}}, []float64{1, 2})
	if err == nil {
		t.Error("expected dimension error")
	}
}

// Property: for an exactly-determined consistent system, Solve recovers the
// coefficients.
func TestQuickExactRecovery(t *testing.T) {
	f := func(c0i, c1i int16) bool {
		c0, c1 := float64(c0i)/100, float64(c1i)/100
		a := [][]float64{{1, 0}, {0, 1}, {1, 1}}
		b := []float64{c0, c1, c0 + c1}
		x, err := Solve(a, b)
		if err != nil {
			return true // singular edge cases acceptable
		}
		return math.Abs(x[0]-c0) < 1e-6 && math.Abs(x[1]-c1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
