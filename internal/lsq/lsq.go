// Package lsq provides the least-squares estimation the DKP cost model
// uses to fit its coefficient parameters from measured kernel execution
// times (§V-A, [26]): solve min ‖A·x − b‖₂ via the normal equations.
package lsq

import (
	"errors"
	"math"
)

// ErrSingular is returned when the normal equations are (numerically)
// singular — e.g. when all samples are identical.
var ErrSingular = errors.New("lsq: singular system")

// Solve returns x minimizing ‖A·x − b‖₂ for an m×n design matrix A (m ≥ n,
// rows = samples, cols = features) and observation vector b of length m.
func Solve(a [][]float64, b []float64) ([]float64, error) {
	m := len(a)
	if m == 0 || len(b) != m {
		return nil, errors.New("lsq: dimension mismatch")
	}
	n := len(a[0])
	for _, row := range a {
		if len(row) != n {
			return nil, errors.New("lsq: ragged design matrix")
		}
	}
	// Normal equations: (AᵀA)·x = Aᵀb.
	ata := make([][]float64, n)
	atb := make([]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	for r := 0; r < m; r++ {
		for i := 0; i < n; i++ {
			atb[i] += a[r][i] * b[r]
			for j := i; j < n; j++ {
				ata[i][j] += a[r][i] * a[r][j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	return solveDense(ata, atb)
}

// solveDense solves the square system M·x = v by Gaussian elimination with
// partial pivoting.
func solveDense(m [][]float64, v []float64) ([]float64, error) {
	n := len(m)
	x := append([]float64(nil), v...)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-300 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		for c := col + 1; c < n; c++ {
			x[col] -= m[col][c] * x[c]
		}
		x[col] /= m[col][col]
	}
	return x, nil
}

// MeanAbsErr returns the mean |A·x − b| / |b| relative error of a fit, the
// figure the paper reports as its 12.5% cost model accuracy.
func MeanAbsErr(a [][]float64, b, x []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	var total float64
	n := 0
	for r := range a {
		var pred float64
		for i, v := range a[r] {
			pred += v * x[i]
		}
		if b[r] != 0 {
			total += math.Abs(pred-b[r]) / math.Abs(b[r])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
