package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestRunCoversEveryIndexOnce: every index in [0, n) is processed exactly
// once, for a spread of sizes, chunk widths and worker counts.
func TestRunCoversEveryIndexOnce(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	for _, n := range []int{1, 7, 8, 64, 257, 4096} {
		for _, workers := range []int{1, 2, 8, 64} {
			hits := make([]int32, n)
			Run(n, workers, &hits, func(ctx any, lo, hi int) {
				h := *ctx.(*[]int32)
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&h[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d processed %d times", n, workers, i, h)
				}
			}
		}
	}
}

// TestRunChunkBoundaries: chunk boundaries are fixed by (n, chunk) alone —
// each invocation of fn sees exactly one [c·chunk, min((c+1)·chunk, n))
// range, regardless of who claims it.
func TestRunChunkBoundaries(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	n, chunk := 103, 10
	var bad atomic.Int32
	RunChunk(n, chunk, 8, nil, func(_ any, lo, hi int) {
		if lo%chunk != 0 {
			bad.Add(1)
		}
		want := lo + chunk
		if want > n {
			want = n
		}
		if hi != want {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("observed chunk range not aligned to the fixed boundaries")
	}
}

// TestNestedRunDoesNotDeadlock: dispatch from inside a pool worker must
// degrade to local execution rather than deadlock.
func TestNestedRunDoesNotDeadlock(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	var total atomic.Int64
	Run(64, 4, nil, func(_ any, lo, hi int) {
		for i := lo; i < hi; i++ {
			Run(32, 4, nil, func(_ any, l, h int) {
				total.Add(int64(h - l))
			})
		}
	})
	if got := total.Load(); got != 64*32 {
		t.Fatalf("nested dispatch processed %d units, want %d", got, 64*32)
	}
}

// TestRunSerialFallback: workers<=1 (or tiny n) must run inline on the
// calling goroutine.
func TestRunSerialFallback(t *testing.T) {
	calls := 0
	Run(10, 1, nil, func(_ any, lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("serial fallback got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial fallback made %d calls", calls)
	}
}

// TestRunZeroAlloc guards the dispatch discipline: with a pooled context
// pointer and a top-level worker function, a steady-state dispatch performs
// no heap allocation on the calling goroutine.
func TestRunZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates per dispatch; alloc counts are meaningless")
	}
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	sink := make([]int32, 1024)
	ctx := &sink
	fn := func(c any, lo, hi int) {
		s := *c.(*[]int32)
		for i := lo; i < hi; i++ {
			s[i]++
		}
	}
	// Warm the pool (job structs, workers).
	for i := 0; i < 4; i++ {
		Run(len(sink), 8, ctx, fn)
	}
	allocs := testing.AllocsPerRun(50, func() {
		Run(len(sink), 8, ctx, fn)
	})
	if allocs != 0 {
		t.Errorf("Run allocates %.1f times per dispatch, want 0", allocs)
	}
}
