//go:build !race

package sched

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count assertions are meaningless under it: the instrumentation
// itself allocates per dispatch.
const raceEnabled = false
