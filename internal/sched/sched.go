// Package sched is the substrate's persistent worker pool: the steady-state
// execution engine every parallel region in the repository dispatches onto.
//
// Before this package existed, each parallel kernel invocation spawned fresh
// goroutines and allocated a sync.WaitGroup — cheap individually, but a
// structural tax paid on every GEMM and every simulated kernel launch of
// every training batch. The pool replaces that with a fixed set of
// long-lived workers fed through one channel: dispatching a region costs a
// pooled job checkout, a few atomic operations and one channel receive, and
// performs no heap allocation on the steady-state path when the caller
// passes a pooled context object and a top-level function (see Run).
//
// Determinism contract: every index in [0, n) is processed by exactly one
// participant, so any kernel whose per-index work is independent of the
// chunk split (all kernels in this repository accumulate per output element
// in a fixed order) produces bitwise identical results at any worker count,
// including the serial path. Note the boundary guarantees differ by entry
// point: RunChunk's boundaries are fixed by (n, chunk) alone — callers like
// the parallel counting sort may key per-chunk state off them — while Run
// derives its chunk width from the worker count, so code that makes
// per-chunk state observable (partial reductions merged in chunk order,
// chunk-indexed scratch) must use RunChunk with a shape-derived width, not
// Run.
//
// Deadlock freedom: the dispatching goroutine always participates in its own
// region, and handing work to the pool is non-blocking — if every worker is
// busy (including nested dispatch from inside a worker), the caller simply
// executes all chunks itself. The pool can therefore never deadlock, only
// degrade to the serial path under saturation.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the pool size. It is far above any realistic GOMAXPROCS
// and exists only to keep a pathological caller from spawning unbounded
// goroutines through ensure.
const maxWorkers = 256

// job is one dispatched parallel region. Jobs are pooled and recycled; the
// refs counter tracks every participant that holds the pointer (the caller
// plus one per successful handoff), and the last release returns the job to
// the pool, so a worker still draining a finished job can never observe a
// reused one.
type job struct {
	fn      func(ctx any, lo, hi int)
	ctx     any
	n       int64 // total indices
	chunk   int64 // fixed chunk width
	nChunks int64
	next    atomic.Int64  // next chunk to claim
	filled  atomic.Int64  // chunks completed
	refs    atomic.Int64  // participants holding the job
	wake    chan struct{} // buffered 1; signaled when filled reaches nChunks
}

var jobPool = sync.Pool{New: func() any { return &job{wake: make(chan struct{}, 1)} }}

// work is the shared dispatch channel. Its capacity only bounds how many
// handoffs can be queued ahead of worker pickup; Run never blocks on it.
var work = make(chan *job, maxWorkers)

var (
	spawnMu sync.Mutex
	spawned atomic.Int64
)

// ensure makes sure at least n workers are running.
func ensure(n int) {
	if n > maxWorkers {
		n = maxWorkers
	}
	if spawned.Load() >= int64(n) {
		return
	}
	spawnMu.Lock()
	for spawned.Load() < int64(n) {
		go worker()
		spawned.Add(1)
	}
	spawnMu.Unlock()
}

func worker() {
	for j := range work {
		j.run()
		j.release()
	}
}

// run claims and executes chunks until none remain. The participant that
// completes the final chunk signals the dispatcher.
func (j *job) run() {
	n, chunk, nChunks := j.n, j.chunk, j.nChunks
	for {
		c := j.next.Add(1) - 1
		if c >= nChunks {
			return
		}
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		j.fn(j.ctx, int(lo), int(hi))
		if j.filled.Add(1) == nChunks {
			j.wake <- struct{}{}
		}
	}
}

// release drops one participant reference; the last one recycles the job.
func (j *job) release() {
	if j.refs.Add(-1) == 0 {
		j.fn, j.ctx = nil, nil
		jobPool.Put(j)
	}
}

// Workers returns the parallelism a caller should request for a region of n
// independent units: GOMAXPROCS capped at n. A return of 1 means the caller
// should run its serial path (and skip building a dispatch context).
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn over [0, n) split into chunks of width ~n/(4·workers),
// claimed dynamically by the caller and up to workers−1 pool workers. It
// returns when every index has been processed. ctx is passed through to fn
// verbatim: pass a pooled pointer and a top-level function to keep the
// dispatch allocation-free. fn must be safe to call concurrently on
// disjoint ranges.
func Run(n, workers int, ctx any, fn func(ctx any, lo, hi int)) {
	chunk := n / (4 * workers)
	if chunk < 8 {
		chunk = 8
	}
	RunChunk(n, chunk, workers, ctx, fn)
}

// RunChunk is Run with an explicit chunk width, for regions whose units are
// heavy enough (e.g. one simulated SM each) that the caller wants maximum
// balance rather than amortized claim overhead. Chunk boundaries are fixed
// by (n, chunk) alone, so which participant claims a chunk never affects
// which indices land in it.
func RunChunk(n, chunk, workers int, ctx any, fn func(ctx any, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	nChunks := (n + chunk - 1) / chunk
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		fn(ctx, 0, n)
		return
	}
	j := jobPool.Get().(*job)
	j.fn, j.ctx = fn, ctx
	j.n, j.chunk, j.nChunks = int64(n), int64(chunk), int64(nChunks)
	j.next.Store(0)
	j.filled.Store(0)
	j.refs.Store(1)

	helpers := workers - 1
	ensure(helpers)
	for i := 0; i < helpers; i++ {
		// The reference is taken before the handoff: a worker may finish and
		// release before the loop continues.
		j.refs.Add(1)
		select {
		case work <- j:
		default:
			// Pool saturated (or nested dispatch): keep the work local.
			j.refs.Add(-1)
			i = helpers // nothing more to hand off; run the rest here
		}
	}

	j.run()
	<-j.wake
	j.release()
}
