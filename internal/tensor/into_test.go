package tensor

import (
	"runtime"
	"testing"
)

// Reference implementations: straightforward triple loops with the same
// per-element accumulation order (ascending k) the blocked kernels use, so
// agreement must be bitwise, not just within an epsilon.

func refMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.At(i, k)
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

func refMatMulT(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var acc float32
			for k := 0; k < a.Cols; k++ {
				acc += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, acc)
		}
	}
	return out
}

func refTMatMul(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for k := 0; k < a.Rows; k++ {
			av := a.At(k, i)
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += av * b.At(k, j)
			}
		}
	}
	return out
}

// mixed returns a rows×cols matrix with positives, negatives and exact
// zeros (the zeros exercise the sparse-skip paths).
func mixed(rows, cols int, seed uint64) *Matrix {
	rng := NewRNG(seed)
	m := New(rows, cols)
	for i := range m.Data {
		v := rng.Float32()*2 - 1
		if v < -0.5 {
			v = 0
		}
		m.Data[i] = v
	}
	return m
}

func requireBitwise(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (bitwise)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// gemmShapes cover the unroll tails (dims not multiples of 4), the
// parallel threshold (≥64 rows) and the k-block boundary (>128 inner dim).
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 0, 5}, // zero inner dim: Into forms must still clear dst
	{7, 13, 9},
	{65, 130, 33},
	{128, 200, 47},
}

func TestMatMulFamilyBitwise(t *testing.T) {
	for _, sh := range gemmShapes {
		a := mixed(sh.m, sh.k, 11)
		b := mixed(sh.k, sh.n, 22)
		bt := mixed(sh.n, sh.k, 33) // for a×bᵀ: b with rows=n
		requireBitwise(t, "MatMul", MatMul(a, b), refMatMul(a, b))
		requireBitwise(t, "MatMulT", MatMulT(a, bt), refMatMulT(a, bt))
		at := mixed(sh.k, sh.m, 44) // for aᵀ×b: a with rows=k
		bb := mixed(sh.k, sh.n, 55)
		requireBitwise(t, "TMatMul", TMatMul(at, bb), refTMatMul(at, bb))

		// Into forms write into dirty pooled storage and must still match.
		dst := Get(sh.m, sh.n)
		dst.Fill(99)
		requireBitwise(t, "MatMulInto", MatMulInto(dst, a, b), refMatMul(a, b))
		Put(dst)
	}
}

func TestElementwiseIntoBitwise(t *testing.T) {
	a := mixed(33, 17, 1)
	b := mixed(33, 17, 2)
	requireBitwise(t, "AddInto", AddInto(Get(33, 17), a, b), Add(a, b))
	requireBitwise(t, "SubInto", SubInto(Get(33, 17), a, b), Sub(a, b))
	requireBitwise(t, "HadamardInto", HadamardInto(Get(33, 17), a, b), Hadamard(a, b))
	requireBitwise(t, "ScaleInto", ScaleInto(Get(33, 17), a, 1.5), Scale(a, 1.5))
	requireBitwise(t, "ReLUInto", ReLUInto(Get(33, 17), a), ReLU(a))
	requireBitwise(t, "ReLUGradInto", ReLUGradInto(Get(33, 17), a, b), ReLUGrad(a, b))
	requireBitwise(t, "TransposeInto", TransposeInto(Get(17, 33), a), Transpose(a))

	sum := SumRowsInto(make([]float32, a.Cols), a)
	want := SumRows(a)
	for j := range want {
		if sum[j] != want[j] {
			t.Fatalf("SumRowsInto[%d] = %v, want %v", j, sum[j], want[j])
		}
	}

	// In-place aliasing forms.
	c := a.Clone()
	AddInto(c, c, b)
	requireBitwise(t, "AddInto aliased", c, Add(a, b))
}

// TestDeterminismAcrossWorkerCounts checks the paper-critical property:
// kernel results are bitwise identical under GOMAXPROCS=1 and =8.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	a := mixed(257, 190, 5)
	b := mixed(190, 61, 6)
	bt := mixed(61, 190, 7)  // for a×btᵀ
	at := mixed(190, 257, 8) // for atᵀ×b

	prev := runtime.GOMAXPROCS(1)
	serialMM := MatMul(a, b)
	serialMMT := MatMulT(a, bt)
	serialTMM := TMatMul(at, b)
	serialSum := SumRows(a)
	runtime.GOMAXPROCS(8)
	parMM := MatMul(a, b)
	parMMT := MatMulT(a, bt)
	parTMM := TMatMul(at, b)
	parSum := SumRows(a)
	runtime.GOMAXPROCS(prev)

	requireBitwise(t, "MatMul workers", parMM, serialMM)
	requireBitwise(t, "MatMulT workers", parMMT, serialMMT)
	requireBitwise(t, "TMatMul workers", parTMM, serialTMM)
	for j := range serialSum {
		if serialSum[j] != parSum[j] {
			t.Fatalf("SumRows[%d] differs across worker counts", j)
		}
	}
}

// TestMatMulIntoZeroAllocs guards the arena discipline: the steady-state
// destination-passing GEMM performs no heap allocation on the serial path.
func TestMatMulIntoZeroAllocs(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	a := mixed(128, 96, 8)
	b := mixed(96, 64, 9)
	dst := Get(128, 64)
	defer Put(dst)
	allocs := testing.AllocsPerRun(20, func() {
		MatMulInto(dst, a, b)
	})
	if allocs != 0 {
		t.Errorf("MatMulInto allocates %.1f times per op, want 0", allocs)
	}
}

// TestParallelMatMulIntoZeroAllocs extends the guard to the pooled parallel
// path: dispatching row chunks onto the persistent worker pool must not
// allocate either — no goroutine spawns, no WaitGroups, no closures; just a
// pooled args struct and a pooled job.
func TestParallelMatMulIntoZeroAllocs(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	a := mixed(256, 96, 8)
	b := mixed(96, 64, 9)
	dst := Get(256, 64)
	defer Put(dst)
	want := MatMul(a, b)
	// Warm the worker pool and the job/args pools.
	for i := 0; i < 4; i++ {
		MatMulInto(dst, a, b)
	}
	allocs := testing.AllocsPerRun(30, func() {
		MatMulInto(dst, a, b)
	})
	if allocs != 0 {
		t.Errorf("parallel MatMulInto allocates %.1f times per op, want 0", allocs)
	}
	requireBitwise(t, "parallel MatMulInto", dst, want)
}
