package tensor

import "math"

// RNG is a small deterministic SplitMix64-based generator used for weight
// initialization and synthetic data. We avoid math/rand so that results are
// stable across Go releases and identical in tests and benchmarks.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. Different seeds produce independent streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns an approximately standard-normal value using the sum of
// uniforms (Irwin–Hall with 12 terms), which is plenty for weight init.
func (r *RNG) Normal() float32 {
	var s float32
	for i := 0; i < 12; i++ {
		s += r.Float32()
	}
	return s - 6
}

// Random returns a rows×cols matrix with entries drawn uniformly from
// [-scale, scale).
func Random(rows, cols int, scale float32, rng *RNG) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	return m
}

// GlorotUniform returns a rows×cols matrix initialized with the Glorot
// (Xavier) uniform scheme, the default for GCN/NGCF weights.
func GlorotUniform(rows, cols int, rng *RNG) *Matrix {
	limit := float32(math.Sqrt(6 / float64(rows+cols)))
	return Random(rows, cols, limit, rng)
}
