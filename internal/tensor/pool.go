// Pooled matrix storage: the allocation-discipline layer of the substrate.
//
// The GraphTensor paper is fundamentally about eliminating memory bloat and
// redundant data movement on the device; this file applies the same
// discipline to the host substrate. Every hot path that used to call
// tensor.New (fresh garbage per op) can instead draw storage from a
// size-bucketed sync.Pool-backed arena and return it when the batch is
// done, so steady-state training performs no heap allocation for
// intermediate matrices.
//
// Two usage styles are supported:
//
//   - Get / Put (and GetSlice / PutSlice): explicit checkout/return of a
//     single matrix or float32 slice. A Get without a matching Put is
//     always safe — the storage is simply garbage collected.
//   - Arena: a batch-scoped handle that records every checkout and returns
//     all of them in one Release() call at batch end, so kernel code can
//     allocate freely without tracking individual lifetimes.
//
// Storage is bucketed by capacity rounded up to the next power of two, so
// a matrix of any shape whose element count falls in the same bucket can
// reuse the same backing array. Buffers returned by Get/GetSlice are
// always zeroed, matching the semantics of New.
package tensor

import (
	"fmt"
	"math/bits"
	"sync"
)

const (
	// minBucketBits is the smallest pooled capacity (1<<minBucketBits
	// float32s); requests below it share the smallest bucket.
	minBucketBits = 6
	// maxBucketBits caps pooling at 1<<maxBucketBits float32s (256 MiB);
	// larger requests fall through to plain make and are never pooled.
	maxBucketBits = 26
)

// slicePools[b] holds *[]float32 whose capacity is exactly 1<<b.
var slicePools [maxBucketBits + 1]sync.Pool

// matrixHeaders recycles Matrix structs so Get/Put round-trips reuse the
// header as well as the storage.
var matrixHeaders = sync.Pool{New: func() any { return new(Matrix) }}

// bucketFor returns the bucket index for a request of n float32s, or -1
// when n is too large to pool.
func bucketFor(n int) int {
	if n <= 1<<minBucketBits {
		return minBucketBits
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b > maxBucketBits {
		return -1
	}
	return b
}

// GetSlice returns a zeroed []float32 of length n drawn from the pool.
// Return it with PutSlice when done; dropping it instead is safe.
func GetSlice(n int) []float32 {
	if n < 0 {
		panic(fmt.Sprintf("tensor: GetSlice(%d)", n))
	}
	if n == 0 {
		return nil
	}
	b := bucketFor(n)
	if b < 0 {
		return make([]float32, n)
	}
	if v := slicePools[b].Get(); v != nil {
		s := (*v.(*[]float32))[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]float32, n, 1<<b)
}

// PutSlice returns s's backing array to the pool. The caller must not use
// s (or any alias of it) afterwards. Slices whose capacity is not an exact
// pool bucket (e.g. subslices or storage not from GetSlice) are dropped.
func PutSlice(s []float32) {
	c := cap(s)
	if c == 0 {
		return
	}
	b := bits.Len(uint(c - 1))
	if c != 1<<b || b < minBucketBits || b > maxBucketBits {
		return
	}
	full := s[:c]
	slicePools[b].Put(&full)
}

// Get returns a zeroed rows×cols matrix whose storage (and header) come
// from the pool. Return it with Put; dropping it instead is safe.
func Get(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	m := matrixHeaders.Get().(*Matrix)
	m.Rows, m.Cols = rows, cols
	m.Data = GetSlice(rows * cols)
	return m
}

// Put returns m's storage and header to the pool. The caller must not use
// m or m.Data afterwards. Put(nil) is a no-op.
func Put(m *Matrix) {
	if m == nil {
		return
	}
	PutSlice(m.Data)
	m.Rows, m.Cols, m.Data = 0, 0, nil
	matrixHeaders.Put(m)
}

// Arena is a batch-scoped allocation handle: every Get/GetSlice checkout is
// recorded, and Release returns all of them to the pool at once. An Arena
// is not safe for concurrent use; give each worker its own, or confine one
// arena to the (single) goroutine that drives a training batch.
type Arena struct {
	mats   []*Matrix
	slices [][]float32
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Get returns a zeroed rows×cols pooled matrix owned by the arena.
func (a *Arena) Get(rows, cols int) *Matrix {
	m := Get(rows, cols)
	a.mats = append(a.mats, m)
	return m
}

// GetSlice returns a zeroed pooled []float32 of length n owned by the arena.
func (a *Arena) GetSlice(n int) []float32 {
	s := GetSlice(n)
	a.slices = append(a.slices, s)
	return s
}

// Release returns every checkout to the pool. All matrices and slices
// obtained from the arena are invalid afterwards; the arena itself is
// empty and reusable.
func (a *Arena) Release() {
	for i, m := range a.mats {
		Put(m)
		a.mats[i] = nil
	}
	a.mats = a.mats[:0]
	for i, s := range a.slices {
		PutSlice(s)
		a.slices[i] = nil
	}
	a.slices = a.slices[:0]
}

// Len reports the number of outstanding checkouts (for tests).
func (a *Arena) Len() int { return len(a.mats) + len(a.slices) }
