// Package tensor provides float32 dense matrices and the parallel linear
// algebra the GraphTensor combination stage (MLP forward and backward)
// needs. It is the stand-in for the TensorFlow dense primitives
// (tf.matmul, tf.nn.bias_add, tf.nn.relu) the paper's Apply uses.
//
// All operations are deterministic; parallel kernels split work by rows so
// results are bitwise identical regardless of worker count.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (row-major) as a rows×cols matrix without copying.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Bytes reports the storage size of the matrix payload in bytes.
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 4 }

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether m and o have identical shape and elements within eps.
func (m *Matrix) Equal(o *Matrix, eps float32) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between m
// and o. The shapes must match.
func (m *Matrix) MaxAbsDiff(o *Matrix) float32 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	var worst float32
	for i, v := range m.Data {
		d := v - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// String renders small matrices for debugging; large ones are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.3g", m.At(i, j))
		}
	}
	return s + "]"
}

// parallelRows runs fn over row ranges [lo,hi) split across workers. Results
// are deterministic because each row is written by exactly one worker.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || rows < 64 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul returns a×b. Panics on inner-dimension mismatch.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatMulT returns a×bᵀ.
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT %dx%d × (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var acc float32
				for k, av := range arow {
					acc += av * brow[k]
				}
				orow[j] = acc
			}
		}
	})
	return out
}

// TMatMul returns aᵀ×b.
func TMatMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: tmatmul (%dx%d)ᵀ × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	// Accumulate per worker into private buffers to stay deterministic-safe
	// would cost memory; instead split by output rows (a's columns).
	parallelRows(a.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Row(i)
			for k := 0; k < a.Rows; k++ {
				av := a.At(k, i)
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// Transpose returns mᵀ as a new matrix.
func Transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	mustSameShape("add", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a−b elementwise.
func Sub(a, b *Matrix) *Matrix {
	mustSameShape("sub", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// Hadamard returns a⊙b (elementwise product).
func Hadamard(a, b *Matrix) *Matrix {
	mustSameShape("hadamard", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// Scale returns s·m.
func Scale(m *Matrix, s float32) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v * s
	}
	return out
}

// AddBias adds bias (1×Cols or len Cols) to every row of m in place and
// returns m.
func AddBias(m *Matrix, bias []float32) *Matrix {
	if len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: bias length %d != cols %d", len(bias), m.Cols))
	}
	parallelRows(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j := range row {
				row[j] += bias[j]
			}
		}
	})
	return m
}

// ReLU returns max(0, m) elementwise.
func ReLU(m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// ReLUGrad returns grad⊙(pre > 0): the backward pass of ReLU given the
// pre-activation values.
func ReLUGrad(grad, pre *Matrix) *Matrix {
	mustSameShape("relugrad", grad, pre)
	out := New(grad.Rows, grad.Cols)
	for i, v := range pre.Data {
		if v > 0 {
			out.Data[i] = grad.Data[i]
		}
	}
	return out
}

// SumRows returns the column-wise sum of m as a length-Cols slice (the
// bias gradient of an MLP layer).
func SumRows(m *Matrix) []float32 {
	out := make([]float32, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// FrobeniusNorm returns sqrt(Σ m_ij²).
func FrobeniusNorm(m *Matrix) float64 {
	var acc float64
	for _, v := range m.Data {
		acc += float64(v) * float64(v)
	}
	return math.Sqrt(acc)
}

func mustSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
