// Package tensor provides float32 dense matrices and the parallel linear
// algebra the GraphTensor combination stage (MLP forward and backward)
// needs. It is the stand-in for the TensorFlow dense primitives
// (tf.matmul, tf.nn.bias_add, tf.nn.relu) the paper's Apply uses.
//
// All operations are deterministic; parallel kernels split work by rows so
// results are bitwise identical regardless of worker count. Every kernel
// exists in two forms: an allocating form (MatMul, Add, ...) kept for
// convenience, and a destination-passing form (MatMulInto, AddInto, ...)
// that writes into caller-owned storage — typically drawn from the pool in
// pool.go — and performs no heap allocation on the serial path. The
// allocating forms are thin wrappers over the Into forms, so the two are
// always bitwise identical.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"graphtensor/internal/sched"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (row-major) as a rows×cols matrix without copying.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Bytes reports the storage size of the matrix payload in bytes.
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 4 }

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether m and o have identical shape and elements within eps.
func (m *Matrix) Equal(o *Matrix, eps float32) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between m
// and o. The shapes must match.
func (m *Matrix) MaxAbsDiff(o *Matrix) float32 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	var worst float32
	for i, v := range m.Data {
		d := v - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// String renders small matrices for debugging; large ones are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.3g", m.At(i, j))
		}
	}
	return s + "]"
}

// rowWorkers returns how many workers a rows-sized parallel region uses.
// 1 means the caller should run the serial path (which lets kernels avoid
// building a dispatch context entirely).
func rowWorkers(rows int) int {
	if rows < 64 {
		return 1
	}
	return sched.Workers(rows)
}

// pArgs carries the operands of one parallel kernel dispatch onto the
// worker pool. Instances are pooled so a steady-state parallel kernel
// performs no heap allocation; the top-level task functions below unpack
// them, keeping the dispatch closure-free.
type pArgs struct {
	dst, a, b *Matrix
	s         float32
	vec       []float32
}

var pArgsPool = sync.Pool{New: func() any { return new(pArgs) }}

// runRows dispatches a row-range kernel onto the shared worker pool and
// returns the pooled args. Each row is written by exactly one participant,
// so results are bitwise independent of the worker count.
func runRows(rows, workers int, p *pArgs, fn func(ctx any, lo, hi int)) {
	sched.Run(rows, workers, p, fn)
	p.dst, p.a, p.b, p.s, p.vec = nil, nil, nil, 0, nil
	pArgsPool.Put(p)
}

func getPArgs(dst, a, b *Matrix) *pArgs {
	p := pArgsPool.Get().(*pArgs)
	p.dst, p.a, p.b = dst, a, b
	return p
}

func matMulTask(ctx any, lo, hi int) {
	p := ctx.(*pArgs)
	matMulRange(p.dst, p.a, p.b, lo, hi)
}

func matMulTTask(ctx any, lo, hi int) {
	p := ctx.(*pArgs)
	matMulTRange(p.dst, p.a, p.b, lo, hi)
}

func tMatMulTask(ctx any, lo, hi int) {
	p := ctx.(*pArgs)
	tMatMulRange(p.dst, p.a, p.b, lo, hi)
}

func transposeTask(ctx any, lo, hi int) {
	p := ctx.(*pArgs)
	transposeRange(p.dst, p.a, lo, hi)
}

func addBiasTask(ctx any, lo, hi int) {
	p := ctx.(*pArgs)
	bias := p.vec
	for i := lo; i < hi; i++ {
		row := p.dst.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
}

func sumRowsTask(ctx any, lo, hi int) {
	p := ctx.(*pArgs)
	m, dst := p.a, p.vec
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := lo; j < hi; j++ {
			dst[j] += row[j]
		}
	}
}

// gemmKBlock is the inner-dimension tile of the blocked GEMM kernels: a
// tile of that many B rows (gemmKBlock × Cols floats) is streamed once and
// reused across every output row a worker owns, keeping it cache-resident.
const gemmKBlock = 128

// MatMul returns a×b. Panics on inner-dimension mismatch.
func MatMul(a, b *Matrix) *Matrix {
	return MatMulInto(New(a.Rows, b.Cols), a, b)
}

// MatMulInto computes dst = a×b into caller-owned storage and returns dst.
// dst must be a.Rows×b.Cols and must not alias a or b; its prior contents
// are overwritten. The kernel is cache-blocked over the inner dimension
// and accumulates each output element strictly in ascending-k order, so
// results are bitwise identical to the naive triple loop regardless of
// worker count. The serial path performs no heap allocation.
func MatMulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if workers := rowWorkers(a.Rows); workers > 1 {
		runRows(a.Rows, workers, getPArgs(dst, a, b), matMulTask)
		return dst
	}
	matMulRange(dst, a, b, 0, a.Rows)
	return dst
}

// matMulRange computes dst rows [lo,hi) of a×b with k-blocking and a
// 4-wide unrolled axpy. The unrolled sum o + a0·b0 + a1·b1 + a2·b2 + a3·b3
// associates left-to-right, i.e. exactly like four sequential updates, so
// blocking and unrolling do not change the result bitwise.
func matMulRange(dst, a, b *Matrix, lo, hi int) {
	n := a.Cols
	if n == 0 {
		// Zero inner dimension: the product is all zeros; the k-block loop
		// below would not run, so clear explicitly.
		for i := lo; i < hi; i++ {
			clear(dst.Row(i))
		}
		return
	}
	for k0 := 0; k0 < n; k0 += gemmKBlock {
		k1 := k0 + gemmKBlock
		if k1 > n {
			k1 = n
		}
		for i := lo; i < hi; i++ {
			orow := dst.Row(i)
			if k0 == 0 {
				clear(orow)
			}
			arow := a.Row(i)
			k := k0
			for ; k+3 < k1; k += 4 {
				a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				b0 := b.Row(k)[:len(orow)]
				b1 := b.Row(k + 1)[:len(orow)]
				b2 := b.Row(k + 2)[:len(orow)]
				b3 := b.Row(k + 3)[:len(orow)]
				for j := range orow {
					// Written as one left-associated chain: identical
					// association to four sequential += updates.
					orow[j] = orow[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; k < k1; k++ {
				av := arow[k]
				brow := b.Row(k)[:len(orow)]
				for j := range orow {
					orow[j] += av * brow[j]
				}
			}
		}
	}
}

// MatMulT returns a×bᵀ.
func MatMulT(a, b *Matrix) *Matrix {
	return MatMulTInto(New(a.Rows, b.Rows), a, b)
}

// MatMulTInto computes dst = a×bᵀ into caller-owned storage and returns
// dst. dst must be a.Rows×b.Rows and must not alias a or b. Each output
// element is one dot product accumulated in ascending-k order; four b rows
// are processed per pass so one a-row read feeds four independent
// accumulator chains.
func MatMulTInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT %dx%d × (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulT dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if workers := rowWorkers(a.Rows); workers > 1 {
		runRows(a.Rows, workers, getPArgs(dst, a, b), matMulTTask)
		return dst
	}
	matMulTRange(dst, a, b, 0, a.Rows)
	return dst
}

func matMulTRange(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		j := 0
		for ; j+3 < b.Rows; j += 4 {
			b0 := b.Row(j)[:len(arow)]
			b1 := b.Row(j + 1)[:len(arow)]
			b2 := b.Row(j + 2)[:len(arow)]
			b3 := b.Row(j + 3)[:len(arow)]
			var acc0, acc1, acc2, acc3 float32
			for k, av := range arow {
				acc0 += av * b0[k]
				acc1 += av * b1[k]
				acc2 += av * b2[k]
				acc3 += av * b3[k]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = acc0, acc1, acc2, acc3
		}
		for ; j < b.Rows; j++ {
			brow := b.Row(j)[:len(arow)]
			var acc float32
			for k, av := range arow {
				acc += av * brow[k]
			}
			orow[j] = acc
		}
	}
}

// TMatMul returns aᵀ×b.
func TMatMul(a, b *Matrix) *Matrix {
	return TMatMulInto(New(a.Cols, b.Cols), a, b)
}

// TMatMulInto computes dst = aᵀ×b into caller-owned storage and returns
// dst. dst must be a.Cols×b.Cols and must not alias a or b. Work splits by
// output rows (a's columns) so accumulation stays deterministic; the inner
// dimension is k-blocked so the touched B tile stays cache-resident across
// the worker's output rows.
func TMatMulInto(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: tmatmul (%dx%d)ᵀ × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: tmatmul dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	if workers := rowWorkers(a.Cols); workers > 1 {
		runRows(a.Cols, workers, getPArgs(dst, a, b), tMatMulTask)
		return dst
	}
	tMatMulRange(dst, a, b, 0, a.Cols)
	return dst
}

func tMatMulRange(dst, a, b *Matrix, lo, hi int) {
	n := a.Rows
	if n == 0 {
		for i := lo; i < hi; i++ {
			clear(dst.Row(i))
		}
		return
	}
	for k0 := 0; k0 < n; k0 += gemmKBlock {
		k1 := k0 + gemmKBlock
		if k1 > n {
			k1 = n
		}
		for i := lo; i < hi; i++ {
			orow := dst.Row(i)
			if k0 == 0 {
				clear(orow)
			}
			for k := k0; k < k1; k++ {
				av := a.At(k, i)
				brow := b.Row(k)[:len(orow)]
				for j := range orow {
					orow[j] += av * brow[j]
				}
			}
		}
	}
}

// transposeTile is the square tile edge of the blocked transpose.
const transposeTile = 32

// Transpose returns mᵀ as a new matrix.
func Transpose(m *Matrix) *Matrix {
	return TransposeInto(New(m.Cols, m.Rows), m)
}

// TransposeInto computes dst = mᵀ into caller-owned storage and returns
// dst. dst must be m.Cols×m.Rows and must not alias m. The kernel is
// tiled so both the read and write sides stay within cache lines, and
// parallel across source-row bands (each band writes a disjoint element
// set, so the result is independent of worker count).
func TransposeInto(dst, m *Matrix) *Matrix {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic(fmt.Sprintf("tensor: transpose dst %dx%d != %dx%d", dst.Rows, dst.Cols, m.Cols, m.Rows))
	}
	if workers := rowWorkers(m.Rows); workers > 1 {
		runRows(m.Rows, workers, getPArgs(dst, m, nil), transposeTask)
		return dst
	}
	transposeRange(dst, m, 0, m.Rows)
	return dst
}

func transposeRange(dst, m *Matrix, lo, hi int) {
	for i0 := lo; i0 < hi; i0 += transposeTile {
		i1 := i0 + transposeTile
		if i1 > hi {
			i1 = hi
		}
		for j0 := 0; j0 < m.Cols; j0 += transposeTile {
			j1 := j0 + transposeTile
			if j1 > m.Cols {
				j1 = m.Cols
			}
			for i := i0; i < i1; i++ {
				row := m.Row(i)
				for j := j0; j < j1; j++ {
					dst.Data[j*m.Rows+i] = row[j]
				}
			}
		}
	}
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	return AddInto(New(a.Rows, a.Cols), a, b)
}

// AddInto computes dst = a+b elementwise and returns dst. dst must match
// the operand shape; it may alias a or b.
func AddInto(dst, a, b *Matrix) *Matrix {
	mustSameShape("add", a, b)
	mustSameShape("add dst", dst, a)
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v + bd[i]
	}
	return dst
}

// Sub returns a−b elementwise.
func Sub(a, b *Matrix) *Matrix {
	return SubInto(New(a.Rows, a.Cols), a, b)
}

// SubInto computes dst = a−b elementwise and returns dst. dst must match
// the operand shape; it may alias a or b.
func SubInto(dst, a, b *Matrix) *Matrix {
	mustSameShape("sub", a, b)
	mustSameShape("sub dst", dst, a)
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v - bd[i]
	}
	return dst
}

// Hadamard returns a⊙b (elementwise product).
func Hadamard(a, b *Matrix) *Matrix {
	return HadamardInto(New(a.Rows, a.Cols), a, b)
}

// HadamardInto computes dst = a⊙b elementwise and returns dst. dst must
// match the operand shape; it may alias a or b.
func HadamardInto(dst, a, b *Matrix) *Matrix {
	mustSameShape("hadamard", a, b)
	mustSameShape("hadamard dst", dst, a)
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v * bd[i]
	}
	return dst
}

// Scale returns s·m.
func Scale(m *Matrix, s float32) *Matrix {
	return ScaleInto(New(m.Rows, m.Cols), m, s)
}

// ScaleInto computes dst = s·m and returns dst. dst must match m's shape;
// it may alias m.
func ScaleInto(dst, m *Matrix, s float32) *Matrix {
	mustSameShape("scale dst", dst, m)
	for i, v := range m.Data {
		dst.Data[i] = v * s
	}
	return dst
}

// AddBias adds bias (1×Cols or len Cols) to every row of m in place and
// returns m.
func AddBias(m *Matrix, bias []float32) *Matrix {
	if len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: bias length %d != cols %d", len(bias), m.Cols))
	}
	if workers := rowWorkers(m.Rows); workers > 1 {
		p := getPArgs(m, nil, nil)
		p.vec = bias
		runRows(m.Rows, workers, p, addBiasTask)
		return m
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
	return m
}

// ReLU returns max(0, m) elementwise.
func ReLU(m *Matrix) *Matrix {
	return ReLUInto(New(m.Rows, m.Cols), m)
}

// ReLUInto computes dst = max(0, m) elementwise and returns dst. dst must
// match m's shape; it may alias m.
func ReLUInto(dst, m *Matrix) *Matrix {
	mustSameShape("relu dst", dst, m)
	for i, v := range m.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
	return dst
}

// ReLUGrad returns grad⊙(pre > 0): the backward pass of ReLU given the
// pre-activation values.
func ReLUGrad(grad, pre *Matrix) *Matrix {
	return ReLUGradInto(New(grad.Rows, grad.Cols), grad, pre)
}

// ReLUGradInto computes dst = grad⊙(pre > 0) and returns dst. dst must
// match the operand shape; it may alias grad.
func ReLUGradInto(dst, grad, pre *Matrix) *Matrix {
	mustSameShape("relugrad", grad, pre)
	mustSameShape("relugrad dst", dst, grad)
	gd := grad.Data
	for i, v := range pre.Data {
		if v > 0 {
			dst.Data[i] = gd[i]
		} else {
			dst.Data[i] = 0
		}
	}
	return dst
}

// SumRows returns the column-wise sum of m as a length-Cols slice (the
// bias gradient of an MLP layer).
func SumRows(m *Matrix) []float32 {
	return SumRowsInto(make([]float32, m.Cols), m)
}

// SumRowsInto accumulates the column-wise sum of m into dst (len m.Cols,
// overwritten) and returns dst. Rows are added in ascending order per
// column; the parallel split is by columns, so the result is bitwise
// independent of worker count.
func SumRowsInto(dst []float32, m *Matrix) []float32 {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: sumrows dst length %d != cols %d", len(dst), m.Cols))
	}
	clear(dst)
	// The parallel split is by columns, so gate on a column floor (matching
	// the 64-row kernel threshold) plus enough rows to amortize dispatch.
	if m.Rows >= 256 && m.Cols >= 64 && runtime.GOMAXPROCS(0) > 1 {
		p := getPArgs(nil, m, nil)
		p.vec = dst
		runRows(m.Cols, sched.Workers(m.Cols), p, sumRowsTask)
		return dst
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
	return dst
}

// FrobeniusNorm returns sqrt(Σ m_ij²).
func FrobeniusNorm(m *Matrix) float64 {
	var acc float64
	for _, v := range m.Data {
		acc += float64(v) * float64(v)
	}
	return math.Sqrt(acc)
}

func mustSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
