package tensor

import "testing"

func TestGetSliceZeroedAndBucketed(t *testing.T) {
	s := GetSlice(100)
	if len(s) != 100 {
		t.Fatalf("len = %d, want 100", len(s))
	}
	if cap(s) != 128 {
		t.Fatalf("cap = %d, want bucket 128", cap(s))
	}
	for i := range s {
		if s[i] != 0 {
			t.Fatalf("fresh slice not zeroed at %d", i)
		}
		s[i] = float32(i)
	}
	PutSlice(s)
	// A recycled buffer must come back zeroed even though we dirtied it.
	s2 := GetSlice(100)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("recycled slice not zeroed at %d: %v", i, v)
		}
	}
	PutSlice(s2)
}

func TestGetSliceEdgeCases(t *testing.T) {
	if s := GetSlice(0); s != nil {
		t.Errorf("GetSlice(0) = %v, want nil", s)
	}
	PutSlice(nil) // must not panic
	// Odd-capacity storage (not from the pool) is silently dropped.
	PutSlice(make([]float32, 100))
	// Tiny requests share the smallest bucket.
	s := GetSlice(1)
	if cap(s) != 1<<minBucketBits {
		t.Errorf("cap = %d, want %d", cap(s), 1<<minBucketBits)
	}
	PutSlice(s)
}

func TestPoolNoAliasingBetweenCheckouts(t *testing.T) {
	// After a Put, a subsequent Get may legitimately reuse the storage —
	// but two live checkouts must never alias each other.
	m1 := Get(16, 16)
	Put(m1)
	m2 := Get(16, 16)
	m3 := Get(16, 16)
	m2.Fill(1)
	m3.Fill(2)
	for i, v := range m2.Data {
		if v != 1 {
			t.Fatalf("m2 corrupted at %d: %v (aliases m3)", i, v)
		}
	}
	Put(m2)
	Put(m3)
}

func TestPutClearsHeader(t *testing.T) {
	m := Get(4, 8)
	Put(m)
	if m.Rows != 0 || m.Cols != 0 || m.Data != nil {
		t.Errorf("Put left header populated: %+v", m)
	}
}

func TestArenaRelease(t *testing.T) {
	a := NewArena()
	m := a.Get(8, 8)
	s := a.GetSlice(50)
	m.Fill(3)
	for i := range s {
		s[i] = 7
	}
	if a.Len() != 2 {
		t.Fatalf("arena len = %d, want 2", a.Len())
	}
	a.Release()
	if a.Len() != 0 {
		t.Fatalf("arena len after release = %d, want 0", a.Len())
	}
	// The arena is reusable and hands out zeroed storage again.
	m2 := a.Get(8, 8)
	for i, v := range m2.Data {
		if v != 0 {
			t.Fatalf("post-release checkout not zeroed at %d: %v", i, v)
		}
	}
	a.Release()
}

func TestGetMatchesNewSemantics(t *testing.T) {
	m := Get(5, 9)
	n := New(5, 9)
	if m.Rows != n.Rows || m.Cols != n.Cols || len(m.Data) != len(n.Data) {
		t.Errorf("Get(5,9) shape %dx%d/%d != New %dx%d/%d",
			m.Rows, m.Cols, len(m.Data), n.Rows, n.Cols, len(n.Data))
	}
	Put(m)
}
