package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := Random(8, 5, 1, rng)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	got := MatMul(a, id)
	if !got.Equal(a, 1e-6) {
		t.Error("A·I != A")
	}
}

func TestMatMulAssociativeShape(t *testing.T) {
	rng := NewRNG(2)
	a := Random(4, 6, 1, rng)
	b := Random(6, 3, 1, rng)
	c := Random(3, 7, 1, rng)
	ab_c := MatMul(MatMul(a, b), c)
	a_bc := MatMul(a, MatMul(b, c))
	if diff := ab_c.MaxAbsDiff(a_bc); diff > 1e-4 {
		t.Errorf("(AB)C != A(BC): %g", diff)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := NewRNG(3)
	a := Random(5, 9, 1, rng)
	if !Transpose(Transpose(a)).Equal(a, 0) {
		t.Error("Tᵀᵀ != T")
	}
}

func TestMatMulTEqualsMatMulTranspose(t *testing.T) {
	rng := NewRNG(4)
	a := Random(5, 7, 1, rng)
	b := Random(4, 7, 1, rng)
	got := MatMulT(a, b)
	want := MatMul(a, Transpose(b))
	if diff := got.MaxAbsDiff(want); diff > 1e-4 {
		t.Errorf("MatMulT != MatMul∘Transpose: %g", diff)
	}
}

func TestTMatMulEqualsTransposeMatMul(t *testing.T) {
	rng := NewRNG(5)
	a := Random(7, 5, 1, rng)
	b := Random(7, 4, 1, rng)
	got := TMatMul(a, b)
	want := MatMul(Transpose(a), b)
	if diff := got.MaxAbsDiff(want); diff > 1e-4 {
		t.Errorf("TMatMul != Transpose∘MatMul: %g", diff)
	}
}

func TestAddSubInverse(t *testing.T) {
	rng := NewRNG(6)
	a := Random(6, 6, 1, rng)
	b := Random(6, 6, 1, rng)
	if diff := Sub(Add(a, b), b).MaxAbsDiff(a); diff > 1e-6 {
		t.Errorf("(A+B)-B != A: %g", diff)
	}
}

func TestReLUAndGrad(t *testing.T) {
	m := FromSlice(1, 4, []float32{-2, -0.1, 0.1, 3})
	r := ReLU(m)
	want := []float32{0, 0, 0.1, 3}
	for i, v := range r.Data {
		if math.Abs(float64(v-want[i])) > 1e-6 {
			t.Errorf("relu[%d]=%g want %g", i, v, want[i])
		}
	}
	grad := FromSlice(1, 4, []float32{1, 1, 1, 1})
	g := ReLUGrad(grad, m)
	wantG := []float32{0, 0, 1, 1}
	for i, v := range g.Data {
		if v != wantG[i] {
			t.Errorf("relugrad[%d]=%g want %g", i, v, wantG[i])
		}
	}
}

func TestAddBias(t *testing.T) {
	m := New(3, 2)
	AddBias(m, []float32{1, 2})
	for i := 0; i < 3; i++ {
		if m.At(i, 0) != 1 || m.At(i, 1) != 2 {
			t.Errorf("row %d not biased", i)
		}
	}
}

func TestSumRows(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	got := SumRows(m)
	want := []float32{5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sum[%d]=%g want %g", i, got[i], want[i])
		}
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}

// Property: MatMul result dimensions and a single-entry dot check.
func TestQuickMatMulColumn(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		a := Random(n, k, 1, rng)
		b := Random(k, m, 1, rng)
		c := MatMul(a, b)
		if c.Rows != n || c.Cols != m {
			return false
		}
		// Verify one random entry by explicit dot product.
		i, j := rng.Intn(n), rng.Intn(m)
		var acc float32
		for kk := 0; kk < k; kk++ {
			acc += a.At(i, kk) * b.At(kk, j)
		}
		return math.Abs(float64(acc-c.At(i, j))) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	rng := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := rng.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10)=%d out of range", v)
		}
	}
}

func TestRNGFloat32Range(t *testing.T) {
	rng := NewRNG(8)
	for i := 0; i < 1000; i++ {
		v := rng.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32()=%g out of [0,1)", v)
		}
	}
}

func TestGlorotUniformScale(t *testing.T) {
	rng := NewRNG(9)
	m := GlorotUniform(100, 100, rng)
	limit := float32(math.Sqrt(6.0 / 200))
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("glorot value %g outside ±%g", v, limit)
		}
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromSlice(1, 2, []float32{3, 4})
	if n := FrobeniusNorm(m); math.Abs(n-5) > 1e-6 {
		t.Errorf("norm=%g want 5", n)
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := NewRNG(10)
	a := Random(3, 3, 1, rng)
	c := a.Clone()
	c.Data[0] = 999
	if a.Data[0] == 999 {
		t.Error("clone aliases original")
	}
}
