package kernels

import (
	"errors"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
)

// DLApproach is the PyG/NeuGraph-style strategy (§III, Fig 5a): every
// sparse GNN stage is lowered onto existing deep-learning operations, which
// requires a sparse→dense conversion — gathering the scattered embeddings
// into per-edge dense matrices before any arithmetic can run. The
// conversion is the memory bloat of Fig 6a: the per-edge src (and, for edge
// weighting, dst) matrices replicate each embedding once per incident edge,
// inflating the device footprint by ~5.8× on the paper's workloads.
//
// The initial graph format is CSR (Table III), so unlike the
// Graph-approach there is no format translation; the scatter/gather DL
// kernels walk the CSR edge order directly.
type DLApproach struct{}

// Name implements Strategy.
func (DLApproach) Name() string { return "DL-approach" }

// Forward implements Strategy: gather (sparse2dense) → dense g/h kernels →
// scatter_sum/scatter_mean.
func (DLApproach) Forward(ctx *Ctx, g *Graphs, x *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	csr, err := ctx.ensureCSR(g)
	if err != nil {
		return nil, err
	}
	dim := x.M.Cols
	nEdges := csr.NumEdges()

	// Sparse2Dense: materialize the per-edge dense message matrix. With
	// edge weighting this gathers both endpoint matrices and runs the
	// dense g/h kernels (dlEdgeMessages); without it, only the src matrix
	// is gathered — either way the embeddings are replicated once per
	// incident edge.
	var msgMat *DeviceMatrix
	if m.HasEdgeWeight() {
		msgMat, err = dlEdgeMessages(ctx, csr, x, m)
		if err != nil {
			return nil, err
		}
	} else {
		err = ctx.track(PhaseSparse2Dense, func() error {
			var err error
			msgMat, err = AllocDeviceMatrix(ctx.Dev, nEdges, dim, "dl-gathered-src")
			if err != nil {
				return err
			}
			k := ctx.Dev.StartKernel("dl-gather")
			runSMsChunked(k, csr.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
				for d := lo; d < hi; d++ {
					base := int(csr.Ptr[d])
					for i, s := range csr.Neighbors(graph.VID(d)) {
						e := base + i
						sm.Read(x.RowAddr(int(s)), x.RowBytes())
						copy(msgMat.M.Row(e), x.M.Row(int(s)))
						sm.Write(msgMat.RowAddr(e), msgMat.RowBytes())
					}
				}
			})
			k.Finish()
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// scatter_mean / scatter_sum over the dense message matrix.
	var out *DeviceMatrix
	err = ctx.track(PhaseAggregation, func() error {
		var err error
		out, err = AllocDeviceMatrix(ctx.Dev, csr.NumDst, dim, "dl-aggr-out")
		if err != nil {
			return err
		}
		invDeg := ctx.InvDeg(csr)
		k := ctx.Dev.StartKernel("dl-scatter")
		runSMsChunked(k, csr.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
			for d := lo; d < hi; d++ {
				orow := out.M.Row(d)
				scale := aggrScale(m, invDeg, graph.VID(d))
				base := int(csr.Ptr[d])
				for i := 0; i < csr.Degree(graph.VID(d)); i++ {
					e := base + i
					sm.Read(msgMat.RowAddr(e), msgMat.RowBytes())
					mrow := msgMat.M.Row(e)
					for j := range orow {
						orow[j] += mrow[j] * scale
					}
					sm.AddFLOPs(int64(2 * dim))
				}
				sm.Write(out.RowAddr(d), out.RowBytes())
			}
		})
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}
	msgMat.Free()
	return out, nil
}

// Backward implements Strategy: the gradient is first expanded to a dense
// per-edge gradient matrix (memory bloat again), then per-edge gradients
// are computed densely and scattered back to src (and dst) vertices.
func (DLApproach) Backward(ctx *Ctx, g *Graphs, x, dOut *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	csr, err := ctx.ensureCSR(g)
	if err != nil {
		return nil, err
	}
	if dOut.M.Rows != csr.NumDst {
		return nil, errors.New("kernels: backward gradient rows != NumDst")
	}
	dim := x.M.Cols
	nEdges := csr.NumEdges()
	invDeg := ctx.InvDeg(csr)

	// Expand dOut to a dense per-edge gradient matrix (gather by dst).
	var dMsgMat *DeviceMatrix
	err = ctx.track(PhaseSparse2Dense, func() error {
		var err error
		dMsgMat, err = AllocDeviceMatrix(ctx.Dev, nEdges, dim, "dl-bwp-dmsg")
		if err != nil {
			return err
		}
		k := ctx.Dev.StartKernel("dl-bwp-gather")
		runSMsChunked(k, csr.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
			for d := lo; d < hi; d++ {
				scale := aggrScale(m, invDeg, graph.VID(d))
				dORow := dOut.M.Row(d)
				base := int(csr.Ptr[d])
				sm.Read(dOut.RowAddr(d), dOut.RowBytes())
				for i := 0; i < csr.Degree(graph.VID(d)); i++ {
					e := base + i
					drow := dMsgMat.M.Row(e)
					for j := range drow {
						drow[j] = dORow[j] * scale
					}
					sm.AddFLOPs(int64(dim))
					sm.Write(dMsgMat.RowAddr(e), dMsgMat.RowBytes())
				}
			}
		})
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Scatter-add per-edge gradients to srcs (and dsts for weighted modes).
	// The scatter runs over the src-indexed view; PyG realizes this with
	// atomics inside scatter_add, we realize it with a race-free per-src
	// traversal whose cost is charged to the aggregation phase.
	csc, bwpErr := func() (*graph.BCSC, error) {
		if g.CSC != nil {
			return g.CSC, nil
		}
		return graph.BCSRToBCSC(csr), nil
	}()
	if bwpErr != nil {
		return nil, bwpErr
	}
	// Edge id mapping from CSC traversal: per-src edge ids in CSR order,
	// memoized on the Ctx so repeated backward passes reuse the mapping.
	edgeOfCSC := ctx.cscEdgeIDs(csr, csc)

	var dx *DeviceMatrix
	err = ctx.track(PhaseAggregation, func() error {
		var err error
		dx, err = AllocDeviceMatrix(ctx.Dev, csr.NumSrc, dim, "dl-bwp-dx")
		if err != nil {
			return err
		}
		k := ctx.Dev.StartKernel("dl-bwp-scatter")
		runSMsChunked(k, csc.NumSrc, func(sm *gpusim.SMContext, lo, hi int) {
			for s := lo; s < hi; s++ {
				srcRow := x.M.Row(s)
				sm.Read(x.RowAddr(s), x.RowBytes())
				dxRow := dx.M.Row(s)
				base := int(csc.Ptr[s])
				for i, d := range csc.Neighbors(graph.VID(s)) {
					e := edgeOfCSC[base+i]
					sm.Read(dMsgMat.RowAddr(int(e)), dMsgMat.RowBytes())
					sm.Read(x.RowAddr(int(d)), x.RowBytes())
					sm.AddFLOPs(m.msgBackwardSrc(srcRow, x.M.Row(int(d)), dMsgMat.M.Row(int(e)), dxRow))
				}
				sm.Write(dx.RowAddr(s), dx.RowBytes())
			}
		})
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}

	if m.HasDstGrad() {
		err = ctx.track(PhaseEdgeWeight, func() error {
			k := ctx.Dev.StartKernel("dl-bwp-dstgrad")
			runSMsChunked(k, csr.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
				for d := lo; d < hi; d++ {
					dstRow := x.M.Row(d)
					sm.Read(x.RowAddr(d), x.RowBytes())
					dxRow := dx.M.Row(d)
					base := int(csr.Ptr[d])
					for i, s := range csr.Neighbors(graph.VID(d)) {
						e := base + i
						sm.Read(dMsgMat.RowAddr(e), dMsgMat.RowBytes())
						sm.Read(x.RowAddr(int(s)), x.RowBytes())
						sm.AddFLOPs(m.msgBackwardDst(x.M.Row(int(s)), dstRow, dMsgMat.M.Row(e), dxRow))
					}
					sm.Write(dx.RowAddr(d), dx.RowBytes())
				}
			})
			k.Finish()
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dMsgMat.Free()
	return dx, nil
}

// edgeIDsForCSC returns, for each position in the CSC adjacency array, the
// edge id of the same (src,dst) pair in CSR order. Parallel edges are
// matched by occurrence order, which is consistent because both layouts
// are built by stable counting sorts.
func edgeIDsForCSC(csr *graph.BCSR, csc *graph.BCSC) []int32 {
	out := make([]int32, csc.NumEdges())
	// cursor[s] walks src s's slots in CSC as we scan CSR in edge order.
	cursor := make([]int32, csc.NumSrc)
	copy(cursor, csc.Ptr[:csc.NumSrc])
	for d := 0; d < csr.NumDst; d++ {
		base := int(csr.Ptr[d])
		for i, s := range csr.Neighbors(graph.VID(d)) {
			e := int32(base + i)
			out[cursor[s]] = e
			cursor[s]++
		}
	}
	return out
}
