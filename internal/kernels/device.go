// Package kernels implements the GNN compute kernels — edge weighting
// (SDDMM), aggregation (SpMM) and combination (dense MLP) — under the four
// scheduling strategies the paper compares:
//
//   - DL-approach (PyG/NeuGraph-like, §III Fig 5a): sparse→dense conversion
//     followed by dense DL operations; pays memory bloat.
//   - Graph-approach (DGL/FeatGraph-like, §III Fig 5b/5c): edge-wise thread
//     scheduling over COO with on-the-fly COO→CSR/CSC translation; pays
//     cache bloat and format translation.
//   - GNNAdvisor-like (§VI-A): neighbor-group scheduling over CSR with
//     cross-SM synchronization on shared dst outputs.
//   - NAPA (GraphTensor, §IV-B Fig 9): destination-centric, feature-wise
//     scheduling over CSR (FWP) / CSC (BWP); no translation, no bloats.
//
// All four produce bitwise-comparable results for the same semantic modes,
// which the test suite exploits; they differ only in the access pattern
// they replay into the gpusim device, and in the real host-side work
// (copies, sorts) each strategy genuinely performs.
package kernels

import (
	"sync"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/sched"
	"graphtensor/internal/tensor"
)

// DeviceMatrix pairs a host-resident matrix (the real data our kernels
// compute on) with its simulated device allocation (the addresses the cache
// model sees).
type DeviceMatrix struct {
	M   *tensor.Matrix
	Buf *gpusim.Buffer
}

// NewDeviceMatrix allocates a rows×cols device matrix. It panics on OOM;
// use AllocDeviceMatrix where OOM is a legitimate outcome.
func NewDeviceMatrix(dev *gpusim.Device, rows, cols int, label string) *DeviceMatrix {
	dm, err := AllocDeviceMatrix(dev, rows, cols, label)
	if err != nil {
		panic(err)
	}
	return dm
}

// AllocDeviceMatrix allocates a rows×cols device matrix, propagating OOM.
func AllocDeviceMatrix(dev *gpusim.Device, rows, cols int, label string) (*DeviceMatrix, error) {
	m := tensor.New(rows, cols)
	buf, err := dev.Alloc(m.Bytes(), label)
	if err != nil {
		return nil, err
	}
	return &DeviceMatrix{M: m, Buf: buf}, nil
}

// WrapDeviceMatrix registers an existing host matrix as device-resident.
func WrapDeviceMatrix(dev *gpusim.Device, m *tensor.Matrix, label string) (*DeviceMatrix, error) {
	buf, err := dev.Alloc(m.Bytes(), label)
	if err != nil {
		return nil, err
	}
	return &DeviceMatrix{M: m, Buf: buf}, nil
}

// RowAddr returns the device address of row i.
func (dm *DeviceMatrix) RowAddr(i int) int64 {
	return dm.Buf.Addr(int64(i) * int64(dm.M.Cols) * 4)
}

// RowBytes returns the byte length of one row.
func (dm *DeviceMatrix) RowBytes() int64 { return int64(dm.M.Cols) * 4 }

// Free releases the device allocation.
func (dm *DeviceMatrix) Free() {
	if dm != nil && dm.Buf != nil {
		dm.Buf.Free()
	}
}

// smRun carries one simulated kernel launch onto the shared worker pool.
// The dispatch unit is the SM index: each claimed SM is processed start to
// finish by exactly one participant, so per-SM access streams — and with
// them the modeled counters — are deterministic at any worker count.
// Instances are pooled so steady-state launches allocate only the kernel
// body's own closure.
type smRun struct {
	k      *gpusim.Kernel
	n      int
	numSMs int
	chunk  int
	fn     func(sm *gpusim.SMContext, unit int)
	fnIdx  func(sm *gpusim.SMContext, smID, lo, hi int)
}

var smRunPool = sync.Pool{New: func() any { return new(smRun) }}

func getSMRun(k *gpusim.Kernel, n int) *smRun {
	r := smRunPool.Get().(*smRun)
	r.k, r.n, r.numSMs = k, n, k.NumSMs()
	return r
}

func putSMRun(r *smRun) {
	*r = smRun{}
	smRunPool.Put(r)
}

// smStripeTask replays units u ≡ smID (mod numSMs) on each claimed SM, in
// ascending unit order — the same per-SM stream the serial path produces.
func smStripeTask(ctx any, lo, hi int) {
	r := ctx.(*smRun)
	for smID := lo; smID < hi; smID++ {
		sm := r.k.SM(smID)
		for u := smID; u < r.n; u += r.numSMs {
			r.fn(sm, u)
		}
	}
}

// smChunkTask hands each claimed SM its contiguous [lo,hi) unit range.
func smChunkTask(ctx any, lo, hi int) {
	r := ctx.(*smRun)
	for smID := lo; smID < hi; smID++ {
		cLo, cHi := smID*r.chunk, (smID+1)*r.chunk
		if cLo >= r.n {
			return
		}
		if cHi > r.n {
			cHi = r.n
		}
		r.fnIdx(r.k.SM(smID), smID, cLo, cHi)
	}
}

// runSMs executes a kernel across the simulated SMs: work unit u of n is
// processed on SM (u mod NumSMs) in per-SM submission order. Real
// parallelism dispatches SM indices onto the shared worker pool; each SM
// context is claimed by exactly one participant, so access recording is
// race-free and the per-SM access streams are deterministic.
func runSMs(k *gpusim.Kernel, n int, fn func(sm *gpusim.SMContext, unit int)) {
	numSMs := k.NumSMs()
	workers := sched.Workers(numSMs)
	if n == 0 {
		return
	}
	if workers <= 1 {
		for u := 0; u < n; u++ {
			fn(k.SM(u%numSMs), u)
		}
		return
	}
	r := getSMRun(k, n)
	r.fn = fn
	sched.RunChunk(numSMs, 1, workers, r, smStripeTask)
	putSMRun(r)
}

// runSMsChunked partitions n work units into NumSMs contiguous chunks, one
// per SM (the scheduling NAPA uses: all features of one dst stay on one
// SM, and consecutive dsts map to the same SM run).
func runSMsChunked(k *gpusim.Kernel, n int, fn func(sm *gpusim.SMContext, lo, hi int)) {
	runSMsChunkedIdx(k, n, func(sm *gpusim.SMContext, _, lo, hi int) { fn(sm, lo, hi) })
}

// runSMsChunkedIdx is runSMsChunked but also hands fn the SM index, which
// kernels use to pick their per-SM scratch rows from the Ctx workspace.
func runSMsChunkedIdx(k *gpusim.Kernel, n int, fn func(sm *gpusim.SMContext, smID, lo, hi int)) {
	numSMs := k.NumSMs()
	workers := sched.Workers(numSMs)
	if n == 0 {
		return
	}
	chunk := (n + numSMs - 1) / numSMs
	if workers <= 1 {
		for smID := 0; smID < numSMs; smID++ {
			lo, hi := smID*chunk, (smID+1)*chunk
			if lo >= n {
				break
			}
			if hi > n {
				hi = n
			}
			fn(k.SM(smID), smID, lo, hi)
		}
		return
	}
	r := getSMRun(k, n)
	r.chunk, r.fnIdx = chunk, fn
	sched.RunChunk(numSMs, 1, workers, r, smChunkTask)
	putSMRun(r)
}
