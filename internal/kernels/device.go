// Package kernels implements the GNN compute kernels — edge weighting
// (SDDMM), aggregation (SpMM) and combination (dense MLP) — under the four
// scheduling strategies the paper compares:
//
//   - DL-approach (PyG/NeuGraph-like, §III Fig 5a): sparse→dense conversion
//     followed by dense DL operations; pays memory bloat.
//   - Graph-approach (DGL/FeatGraph-like, §III Fig 5b/5c): edge-wise thread
//     scheduling over COO with on-the-fly COO→CSR/CSC translation; pays
//     cache bloat and format translation.
//   - GNNAdvisor-like (§VI-A): neighbor-group scheduling over CSR with
//     cross-SM synchronization on shared dst outputs.
//   - NAPA (GraphTensor, §IV-B Fig 9): destination-centric, feature-wise
//     scheduling over CSR (FWP) / CSC (BWP); no translation, no bloats.
//
// All four produce bitwise-comparable results for the same semantic modes,
// which the test suite exploits; they differ only in the access pattern
// they replay into the gpusim device, and in the real host-side work
// (copies, sorts) each strategy genuinely performs.
package kernels

import (
	"runtime"
	"sync"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/tensor"
)

// DeviceMatrix pairs a host-resident matrix (the real data our kernels
// compute on) with its simulated device allocation (the addresses the cache
// model sees).
type DeviceMatrix struct {
	M   *tensor.Matrix
	Buf *gpusim.Buffer
}

// NewDeviceMatrix allocates a rows×cols device matrix. It panics on OOM;
// use AllocDeviceMatrix where OOM is a legitimate outcome.
func NewDeviceMatrix(dev *gpusim.Device, rows, cols int, label string) *DeviceMatrix {
	dm, err := AllocDeviceMatrix(dev, rows, cols, label)
	if err != nil {
		panic(err)
	}
	return dm
}

// AllocDeviceMatrix allocates a rows×cols device matrix, propagating OOM.
func AllocDeviceMatrix(dev *gpusim.Device, rows, cols int, label string) (*DeviceMatrix, error) {
	m := tensor.New(rows, cols)
	buf, err := dev.Alloc(m.Bytes(), label)
	if err != nil {
		return nil, err
	}
	return &DeviceMatrix{M: m, Buf: buf}, nil
}

// WrapDeviceMatrix registers an existing host matrix as device-resident.
func WrapDeviceMatrix(dev *gpusim.Device, m *tensor.Matrix, label string) (*DeviceMatrix, error) {
	buf, err := dev.Alloc(m.Bytes(), label)
	if err != nil {
		return nil, err
	}
	return &DeviceMatrix{M: m, Buf: buf}, nil
}

// RowAddr returns the device address of row i.
func (dm *DeviceMatrix) RowAddr(i int) int64 {
	return dm.Buf.Addr(int64(i) * int64(dm.M.Cols) * 4)
}

// RowBytes returns the byte length of one row.
func (dm *DeviceMatrix) RowBytes() int64 { return int64(dm.M.Cols) * 4 }

// Free releases the device allocation.
func (dm *DeviceMatrix) Free() {
	if dm != nil && dm.Buf != nil {
		dm.Buf.Free()
	}
}

// runSMs executes a kernel across the simulated SMs: work unit u of n is
// processed on SM (u mod NumSMs) in per-SM submission order. Real
// parallelism uses up to GOMAXPROCS goroutines, each owning a disjoint set
// of SM contexts, so access recording is race-free and the per-SM access
// streams are deterministic.
func runSMs(k *gpusim.Kernel, n int, fn func(sm *gpusim.SMContext, unit int)) {
	numSMs := k.NumSMs()
	workers := runtime.GOMAXPROCS(0)
	if workers > numSMs {
		workers = numSMs
	}
	if n == 0 {
		return
	}
	if workers <= 1 {
		for u := 0; u < n; u++ {
			fn(k.SM(u%numSMs), u)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Goroutine w owns SMs w, w+workers, w+2*workers, ...
			for smID := w; smID < numSMs; smID += workers {
				sm := k.SM(smID)
				for u := smID; u < n; u += numSMs {
					fn(sm, u)
				}
			}
		}(w)
	}
	wg.Wait()
}

// runSMsChunked partitions n work units into NumSMs contiguous chunks, one
// per SM (the scheduling NAPA uses: all features of one dst stay on one
// SM, and consecutive dsts map to the same SM run).
func runSMsChunked(k *gpusim.Kernel, n int, fn func(sm *gpusim.SMContext, lo, hi int)) {
	runSMsChunkedIdx(k, n, func(sm *gpusim.SMContext, _, lo, hi int) { fn(sm, lo, hi) })
}

// runSMsChunkedIdx is runSMsChunked but also hands fn the SM index, which
// kernels use to pick their per-SM scratch rows from the Ctx workspace.
func runSMsChunkedIdx(k *gpusim.Kernel, n int, fn func(sm *gpusim.SMContext, smID, lo, hi int)) {
	numSMs := k.NumSMs()
	workers := runtime.GOMAXPROCS(0)
	if workers > numSMs {
		workers = numSMs
	}
	if n == 0 {
		return
	}
	chunk := (n + numSMs - 1) / numSMs
	if workers <= 1 {
		for smID := 0; smID < numSMs; smID++ {
			lo, hi := smID*chunk, (smID+1)*chunk
			if lo >= n {
				break
			}
			if hi > n {
				hi = n
			}
			fn(k.SM(smID), smID, lo, hi)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for smID := w; smID < numSMs; smID += workers {
				lo, hi := smID*chunk, (smID+1)*chunk
				if lo >= n {
					continue
				}
				if hi > n {
					hi = n
				}
				fn(k.SM(smID), smID, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}
