package kernels

import (
	"fmt"

	"graphtensor/internal/graph"
)

// flatAccum is the flat-indexed replacement for the Graph-approach's per-SM
// partial maps (the named ROADMAP open item). The modeled synchronization
// cost of edge-parallel SpMM — per-SM partial dst rows merged in a second
// pass — is preserved exactly: the same (SM, dst) pairs accumulate and
// merge in the same order. Only the host-side bookkeeping changes, from
// map[int32][]float32 per SM (≈1.8k allocations per kernel launch) to three
// flat arrays owned by the Ctx and reused across launches:
//
//   - idx/genStamp: numSMs×rows slot directory; an entry is live only when
//     its generation stamp (the low 32 bits of genStamp) matches the
//     current launch, so invalidating the whole directory between launches
//     is a counter bump, not an O(SMs×dsts) fill. The high 32 bits record
//     the dispatch-unit index of the slot's first claim (see rowStamped),
//     packed into the same word so stamping costs no extra array. Each SM
//     owns a disjoint stripe, so claiming is race-free under the
//     SM-confined dispatch of runSMs.
//   - count: claimed slots per SM.
//   - data:  numSMs×perSM compact row slabs; a row is cleared lazily when
//     claimed, so the slab itself is never bulk-zeroed.
//
// perSM bounds the distinct dsts one SM can touch (its unit share), keeping
// the slab far smaller than a dense numSMs×rows×dim block.
type flatAccum struct {
	numSMs, rows, dim, perSM int
	idx                      []int32
	genStamp                 []uint64
	cur                      uint32
	count                    []int32
	data                     []float32
}

// reset prepares the accumulator for a launch shape, growing the backing
// arrays when needed. Advancing the generation invalidates every directory
// entry in O(1); stale entries from earlier shapes can never validate
// because their stamps are strictly older.
func (fa *flatAccum) reset(numSMs, rows, dim, perSM int) {
	if perSM > rows {
		perSM = rows
	}
	fa.numSMs, fa.rows, fa.dim, fa.perSM = numSMs, rows, dim, perSM
	if need := numSMs * rows; cap(fa.idx) < need {
		fa.idx = make([]int32, need)
		fa.genStamp = make([]uint64, need) // zeroed: older than any cur >= 1
	} else {
		fa.idx = fa.idx[:need]
		fa.genStamp = fa.genStamp[:need]
	}
	fa.cur++
	if fa.cur == 0 { // wraparound: stamps from 2^32 launches ago resurface
		clear(fa.genStamp[:cap(fa.genStamp)]) // the capacity tail holds stamps too
		fa.cur = 1
	}
	if cap(fa.count) < numSMs {
		fa.count = make([]int32, numSMs)
	} else {
		fa.count = fa.count[:numSMs]
		clear(fa.count)
	}
	if need := numSMs * perSM * dim; cap(fa.data) < need {
		fa.data = make([]float32, need)
	} else {
		fa.data = fa.data[:need]
	}
}

// claim returns (slot row, live-before) for (smID, d), claiming and zeroing
// a slot stamped with unit u on first touch. Each smID must be confined to
// one goroutine (the runSMs dispatch guarantees this); distinct SMs touch
// disjoint array stripes.
func (fa *flatAccum) claim(smID int, d graph.VID, u int32) ([]float32, bool) {
	p := smID*fa.rows + int(d)
	if uint32(fa.genStamp[p]) != fa.cur {
		slot := fa.count[smID]
		if int(slot) >= fa.perSM {
			panic(fmt.Sprintf("kernels: flatAccum SM %d exceeded its %d-slot bound", smID, fa.perSM))
		}
		fa.count[smID] = slot + 1
		fa.genStamp[p] = uint64(fa.cur) | uint64(uint32(u))<<32
		fa.idx[p] = slot
		r := fa.slot(smID, slot)
		clear(r)
		return r, false
	}
	return fa.slot(smID, fa.idx[p]), true
}

// row returns SM smID's partial row for dst d, claiming and zeroing a slot
// on first touch.
func (fa *flatAccum) row(smID int, d graph.VID) []float32 {
	r, _ := fa.claim(smID, d, 0)
	return r
}

// rowStamped is row, additionally recording dispatch-unit index u on the
// slot's first claim. Per-SM unit processing ascends, so the stamp is the
// smallest unit of this SM that touched d.
func (fa *flatAccum) rowStamped(smID int, d graph.VID, u int32) []float32 {
	r, _ := fa.claim(smID, d, u)
	return r
}

// stampAt returns the first-claim unit stamp for (smID, d) and whether the
// slot is live in this launch.
func (fa *flatAccum) stampAt(smID, d int) (int32, bool) {
	p := smID*fa.rows + d
	gs := fa.genStamp[p]
	if uint32(gs) != fa.cur {
		return 0, false
	}
	return int32(gs >> 32), true
}

// get returns the accumulated partial row for (smID, d), or nil when the SM
// never touched the dst — the merge pass's analogue of the map lookup.
func (fa *flatAccum) get(smID, d int) []float32 {
	p := smID*fa.rows + d
	if uint32(fa.genStamp[p]) != fa.cur {
		return nil
	}
	return fa.slot(smID, fa.idx[p])
}

func (fa *flatAccum) slot(smID int, slot int32) []float32 {
	base := (smID*fa.perSM + int(slot)) * fa.dim
	return fa.data[base : base+fa.dim : base+fa.dim]
}
