package kernels

import "graphtensor/internal/graph"

// Strategy is one kernel scheduling discipline for the sparse GNN stages
// (edge weighting + aggregation). All strategies compute identical results
// for identical inputs and modes; they differ in traversal order, thread
// scheduling, intermediate materialization and therefore in the device
// traffic they generate.
type Strategy interface {
	// Name identifies the strategy in reports ("NAPA", "Graph-approach"...).
	Name() string
	// Forward computes out[d] = f_{s∈N(d)} h(x_s, g(x_s, x_d)) for one
	// layer; out has NumDst rows.
	Forward(ctx *Ctx, g *Graphs, x *DeviceMatrix, m Modes) (*DeviceMatrix, error)
	// Backward computes dX (NumSrc rows) from the upstream gradient dOut
	// (NumDst rows), given the forward input x.
	Backward(ctx *Ctx, g *Graphs, x, dOut *DeviceMatrix, m Modes) (*DeviceMatrix, error)
}

// invDegFromCSR returns 1/deg per dst (0 for isolated dsts) for mean
// aggregation scaling.
func invDegFromCSR(csr *graph.BCSR) []float32 {
	out := make([]float32, csr.NumDst)
	for d := 0; d < csr.NumDst; d++ {
		if deg := csr.Degree(graph.VID(d)); deg > 0 {
			out[d] = 1 / float32(deg)
		}
	}
	return out
}

// invDegFromCOO returns 1/deg per dst computed from an edge list.
func invDegFromCOO(coo *graph.BCOO) []float32 {
	deg := make([]int32, coo.NumDst)
	for _, d := range coo.Dst {
		deg[d]++
	}
	out := make([]float32, coo.NumDst)
	for i, c := range deg {
		if c > 0 {
			out[i] = 1 / float32(c)
		}
	}
	return out
}

// aggrScale returns the per-dst message scale for the aggregation mode:
// 1/deg for mean, 1 for sum.
func aggrScale(m Modes, invDeg []float32, d graph.VID) float32 {
	if m.F == AggrMean {
		return invDeg[d]
	}
	return 1
}
