package kernels

import (
	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
)

// Max-pooling aggregation (GraphSAGE [7]) as a NAPA extension. The paper
// evaluates mean (GCN) and sum-weighted (NGCF) aggregation; max-pooling
// exercises a non-linear reduction where out[d][j] = max over neighbors of
// message[s][j], and the gradient of out[d][j] flows only to the source
// that attained the maximum. The message function h is identity (SAGE pools
// the raw neighbor features); edge weighting is not combined with max here.

// SAGEPoolForward computes the elementwise max over each dst's neighbor
// messages on the NAPA dst-centric, feature-wise schedule, returning the
// output and the per-(dst,feature) arg-max source index for the backward
// pass.
func SAGEPoolForward(ctx *Ctx, g *Graphs, x *DeviceMatrix) (*DeviceMatrix, []int32, error) {
	csr, err := ctx.ensureCSR(g)
	if err != nil {
		return nil, nil, err
	}
	dim := x.M.Cols
	var out *DeviceMatrix
	argmax := make([]int32, csr.NumDst*dim)
	err = ctx.track(PhaseAggregation, func() error {
		var err error
		out, err = AllocDeviceMatrix(ctx.Dev, csr.NumDst, dim, "sage-pool-out")
		if err != nil {
			return err
		}
		k := ctx.Dev.StartKernel("napa-sage-pool")
		runSMsChunked(k, csr.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
			for d := lo; d < hi; d++ {
				orow := out.M.Row(d)
				arow := argmax[d*dim : (d+1)*dim]
				first := true
				for _, s := range csr.Neighbors(graph.VID(d)) {
					sm.Read(x.RowAddr(int(s)), x.RowBytes())
					srow := x.M.Row(int(s))
					for j := range orow {
						if first || srow[j] > orow[j] {
							orow[j] = srow[j]
							arow[j] = s
						}
					}
					first = false
				}
				sm.AddFLOPs(int64(csr.Degree(graph.VID(d)) * dim))
				sm.Write(out.RowAddr(d), out.RowBytes())
			}
		})
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, argmax, nil
}

// SAGEPoolBackward routes each output-feature gradient to the source that
// attained the maximum in the forward pass (the subgradient of max).
func SAGEPoolBackward(ctx *Ctx, g *Graphs, x, dOut *DeviceMatrix, argmax []int32) (*DeviceMatrix, error) {
	csr, err := ctx.ensureCSR(g)
	if err != nil {
		return nil, err
	}
	dim := x.M.Cols
	var dx *DeviceMatrix
	err = ctx.track(PhaseAggregation, func() error {
		var err error
		dx, err = AllocDeviceMatrix(ctx.Dev, csr.NumSrc, dim, "sage-pool-dx")
		if err != nil {
			return err
		}
		// Accumulate per dst; each dst owns distinct (src,feature) slots of
		// the gradient, but different dsts can target the same src, so we
		// run single-threaded over dsts to stay race-free (the max reduction
		// is cheap relative to the rest of the step).
		k := ctx.Dev.StartKernel("napa-sage-pool-bwp")
		sm := k.SM(0)
		for d := 0; d < csr.NumDst; d++ {
			sm.Read(dOut.RowAddr(d), dOut.RowBytes())
			dorow := dOut.M.Row(d)
			arow := argmax[d*dim : (d+1)*dim]
			for j := 0; j < dim; j++ {
				s := arow[j]
				dx.M.Row(int(s))[j] += dorow[j]
			}
			sm.AddFLOPs(int64(dim))
		}
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dx, nil
}
