package kernels

import (
	"testing"

	"graphtensor/internal/graph"
	"graphtensor/internal/tensor"
)

func refMaxPool(csr *graph.BCSR, x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(csr.NumDst, x.Cols)
	for d := 0; d < csr.NumDst; d++ {
		orow := out.Row(d)
		first := true
		for _, s := range csr.Neighbors(graph.VID(d)) {
			srow := x.Row(int(s))
			for j := range orow {
				if first || srow[j] > orow[j] {
					orow[j] = srow[j]
				}
			}
			first = false
		}
	}
	return out
}

func TestSAGEPoolForwardMatchesReference(t *testing.T) {
	rng := tensor.NewRNG(1)
	csr := randomBipartite(15, 25, 4, rng)
	x := tensor.Random(25, 6, 1, rng)
	want := refMaxPool(csr, x)
	dev := testDevice()
	ctx := NewCtx(dev)
	xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
	got, argmax, err := SAGEPoolForward(ctx, &Graphs{CSR: csr}, xd)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got.M.MaxAbsDiff(want); diff > 1e-6 {
		t.Errorf("max-pool forward diff %g", diff)
	}
	// argmax entries must be valid neighbors and actually attain the max.
	for d := 0; d < csr.NumDst; d++ {
		for j := 0; j < x.Cols; j++ {
			s := argmax[d*x.Cols+j]
			if x.At(int(s), j) != got.M.At(d, j) {
				t.Errorf("argmax[%d][%d]=%d does not attain the max", d, j, s)
			}
		}
	}
}

func TestSAGEPoolBackwardFiniteDifference(t *testing.T) {
	rng := tensor.NewRNG(2)
	csr := randomBipartite(8, 14, 3, rng)
	x := tensor.Random(14, 4, 1, rng)

	// Analytic gradient of 0.5‖pool(x)‖².
	dev := testDevice()
	ctx := NewCtx(dev)
	xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
	out, argmax, _ := SAGEPoolForward(ctx, &Graphs{CSR: csr}, xd)
	dOut, _ := WrapDeviceMatrix(dev, out.M.Clone(), "d")
	dx, err := SAGEPoolBackward(ctx, &Graphs{CSR: csr}, xd, dOut, argmax)
	if err != nil {
		t.Fatal(err)
	}

	loss := func() float64 {
		d := testDevice()
		c := NewCtx(d)
		xv, _ := WrapDeviceMatrix(d, x.Clone(), "x")
		o, _, _ := SAGEPoolForward(c, &Graphs{CSR: csr}, xv)
		var s float64
		for _, v := range o.M.Data {
			s += 0.5 * float64(v) * float64(v)
		}
		return s
	}
	const eps = 1e-3
	maxErr := 0.0
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			orig := x.At(i, j)
			x.Set(i, j, orig+eps)
			lp := loss()
			x.Set(i, j, orig-eps)
			lm := loss()
			x.Set(i, j, orig)
			numeric := (lp - lm) / (2 * eps)
			d := numeric - float64(dx.M.At(i, j))
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}
	}
	// Max is piecewise-linear; away from ties the gradient is exact.
	if maxErr > 5e-2 {
		t.Errorf("max-pool grad check max err %g", maxErr)
	}
}

func TestMaxModeString(t *testing.T) {
	if AggrMax.String() != "max" || !AggrMax.IsMax() {
		t.Error("AggrMax mode metadata wrong")
	}
	if AggrMean.IsMax() {
		t.Error("mean should not report IsMax")
	}
}
