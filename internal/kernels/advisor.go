package kernels

import (
	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
)

// Advisor is the GNNAdvisor-like strategy (§VI-A): CSR input (no format
// translation), with each dst's neighbor list partitioned into fixed-size
// neighbor groups that are scheduled on different SMs to balance load.
// Because several SMs then update the same dst output row, every group
// writes a partial result that a synchronization pass must merge — the
// overhead that costs GNNAdvisor ~11% against Base-GT on sampled graphs,
// where the degree distribution is already balanced and grouping buys
// nothing (Fig 8).
//
// GNNAdvisor has no edge weighting mechanism (Table III), so NGCF-style
// models fall back to DL operations for g/h — inheriting the DL-approach's
// sparse→dense memory bloat for that stage.
type Advisor struct {
	// GroupSize is the neighbor-group width; the GNNAdvisor default is 16.
	GroupSize int
}

// Name implements Strategy.
func (Advisor) Name() string { return "GNNAdvisor" }

func (a Advisor) groupSize() int {
	if a.GroupSize > 0 {
		return a.GroupSize
	}
	return 16
}

// Forward implements Strategy.
func (a Advisor) Forward(ctx *Ctx, g *Graphs, x *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	csr, err := ctx.ensureCSR(g)
	if err != nil {
		return nil, err
	}
	dim := x.M.Cols

	// Edge weighting is not supported natively: lower g/h onto DL ops
	// (sparse2dense gather + dense kernels), exactly like the DL-approach.
	perEdge := false
	var msgMat *DeviceMatrix
	if m.HasEdgeWeight() {
		msgMat, err = dlEdgeMessages(ctx, csr, x, m)
		if err != nil {
			return nil, err
		}
		perEdge = true
	}

	// Neighbor-group aggregation with a partial-sum merge.
	gs := a.groupSize()
	type group struct {
		dst    int32
		lo, hi int32 // edge id range within CSR order
	}
	var groups []group
	for d := 0; d < csr.NumDst; d++ {
		lo, hi := csr.Ptr[d], csr.Ptr[d+1]
		for g0 := lo; g0 < hi; g0 += int32(gs) {
			g1 := g0 + int32(gs)
			if g1 > hi {
				g1 = hi
			}
			groups = append(groups, group{dst: int32(d), lo: g0, hi: g1})
		}
	}

	var out *DeviceMatrix
	err = ctx.track(PhaseAggregation, func() error {
		partials, err := AllocDeviceMatrix(ctx.Dev, len(groups), dim, "advisor-partials")
		if err != nil {
			return err
		}
		out, err = AllocDeviceMatrix(ctx.Dev, csr.NumDst, dim, "advisor-aggr-out")
		if err != nil {
			return err
		}
		invDeg := ctx.InvDeg(csr)
		k := ctx.Dev.StartKernel("advisor-aggr")
		numSMs := k.NumSMs()
		scratch := ctx.msgScratch(numSMs, dim)
		runSMs(k, len(groups), func(sm *gpusim.SMContext, u int) {
			gr := groups[u]
			prow := partials.M.Row(u)
			scale := aggrScale(m, invDeg, graph.VID(gr.dst))
			msg := scratch[u%numSMs]
			for e := gr.lo; e < gr.hi; e++ {
				if perEdge {
					sm.Read(msgMat.RowAddr(int(e)), msgMat.RowBytes())
					copy(msg, msgMat.M.Row(int(e)))
				} else {
					s := csr.Srcs[e]
					sm.Read(x.RowAddr(int(s)), x.RowBytes())
					sm.AddFLOPs(m.message(x.M.Row(int(s)), nil, msg))
				}
				for j := range prow {
					prow[j] += msg[j] * scale
				}
				sm.AddFLOPs(int64(2 * dim))
			}
			// The partial row spills to global memory: this store plus the
			// merge below is the cross-SM synchronization GNNAdvisor pays.
			sm.Write(partials.RowAddr(u), partials.RowBytes())
		})
		// Merge partials per dst (groups are dst-contiguous).
		runSMsChunked(k, csr.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
			gi := 0
			// Binary-search-free scan: find the first group of dst lo.
			for gi < len(groups) && int(groups[gi].dst) < lo {
				gi++
			}
			for d := lo; d < hi; d++ {
				orow := out.M.Row(d)
				for gi < len(groups) && int(groups[gi].dst) == d {
					sm.Read(partials.RowAddr(gi), partials.RowBytes())
					prow := partials.M.Row(gi)
					for j := range orow {
						orow[j] += prow[j]
					}
					sm.AddFLOPs(int64(dim))
					gi++
				}
				sm.Write(out.RowAddr(d), out.RowBytes())
			}
		})
		k.Finish()
		partials.Free()
		return nil
	})
	if err != nil {
		return nil, err
	}
	msgMat.Free()
	return out, nil
}

// Backward implements Strategy. GNNAdvisor's backward reuses the same
// neighbor-group machinery on the transposed graph; for edge-weighted
// modes the dst-side gradient again falls back to DL-style dense edge
// gradients. We reuse the DL-approach backward, which models exactly that
// lowering, plus the group-partial merge cost on the src side.
func (a Advisor) Backward(ctx *Ctx, g *Graphs, x, dOut *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	return DLApproach{}.Backward(ctx, g, x, dOut, m)
}

// dlEdgeMessages materializes per-edge dense messages h(x_s, g(x_s, x_d))
// via sparse2dense gather + dense kernels — the DL lowering GNNAdvisor
// (and the DL-approach) use for edge weighting.
func dlEdgeMessages(ctx *Ctx, csr *graph.BCSR, x *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	dim := x.M.Cols
	nEdges := csr.NumEdges()
	var srcMat, dstMat, msgMat *DeviceMatrix
	err := ctx.track(PhaseSparse2Dense, func() error {
		var err error
		srcMat, err = AllocDeviceMatrix(ctx.Dev, nEdges, dim, "dl-gathered-src")
		if err != nil {
			return err
		}
		dstMat, err = AllocDeviceMatrix(ctx.Dev, nEdges, dim, "dl-gathered-dst")
		if err != nil {
			return err
		}
		k := ctx.Dev.StartKernel("dl-gather")
		runSMsChunked(k, csr.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
			for d := lo; d < hi; d++ {
				base := int(csr.Ptr[d])
				for i, s := range csr.Neighbors(graph.VID(d)) {
					e := base + i
					sm.Read(x.RowAddr(int(s)), x.RowBytes())
					copy(srcMat.M.Row(e), x.M.Row(int(s)))
					sm.Write(srcMat.RowAddr(e), srcMat.RowBytes())
					sm.Read(x.RowAddr(d), x.RowBytes())
					copy(dstMat.M.Row(e), x.M.Row(d))
					sm.Write(dstMat.RowAddr(e), dstMat.RowBytes())
				}
			}
		})
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}
	err = ctx.track(PhaseEdgeWeight, func() error {
		wMat, err := AllocDeviceMatrix(ctx.Dev, nEdges, m.WeightCols(dim), "dl-edge-weights")
		if err != nil {
			return err
		}
		k := ctx.Dev.StartKernel("dl-edgeweight")
		// The message kernel overwrites the gathered src matrix in place
		// (the framework reuses the gather output buffer), so the peak
		// holds three per-edge matrices: src gather, dst gather, weights.
		runSMsChunked(k, nEdges, func(sm *gpusim.SMContext, lo, hi int) {
			for e := lo; e < hi; e++ {
				sm.Read(srcMat.RowAddr(e), srcMat.RowBytes())
				sm.Read(dstMat.RowAddr(e), dstMat.RowBytes())
				sm.AddFLOPs(m.edgeWeight(srcMat.M.Row(e), dstMat.M.Row(e), wMat.M.Row(e)))
				sm.AddFLOPs(m.message(srcMat.M.Row(e), wMat.M.Row(e), srcMat.M.Row(e)))
				sm.Write(srcMat.RowAddr(e), srcMat.RowBytes())
			}
		})
		k.Finish()
		wMat.Free()
		msgMat = srcMat
		return nil
	})
	if err != nil {
		return nil, err
	}
	dstMat.Free()
	return msgMat, nil
}
