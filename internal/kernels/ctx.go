package kernels

import (
	"time"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/metrics"
)

// Phase names used in the kernel-time breakdown (Fig 16).
const (
	PhaseAggregation  = "aggregation"
	PhaseEdgeWeight   = "edge-weight"
	PhaseCombination  = "combination"
	PhaseSparse2Dense = "sparse2dense"
	PhaseTranslation  = "translation"
)

// Ctx carries the simulated device, the per-phase time breakdown and the
// per-phase device work counters every kernel records into. A Ctx is used
// by one training loop at a time (not concurrently).
//
// The Ctx is also the batch-scoped workspace of the kernel layer: per-SM
// scratch rows (message and edge-weight buffers) are owned by the Ctx and
// reused across every kernel launch, and derived per-graph quantities
// (inverse degrees, CSC-order edge ids) are memoized so strategies and
// passes that share a graph within a batch never recompute them.
type Ctx struct {
	Dev    *gpusim.Device
	Phases *metrics.Breakdown
	work   map[string]gpusim.Counters

	// Reusable per-SM scratch: msgBuf/wBuf back the row views handed to
	// kernel chunks. Kernel launches within a Ctx are sequential, and
	// within a launch each goroutine owns disjoint SM ids, so a single set
	// of rows per role is race-free.
	msgBuf   []float32
	msgViews [][]float32
	wBuf     []float32
	wViews   [][]float32

	// acc is the reusable flat-indexed partial accumulator the
	// Graph-approach kernels use in place of per-SM partial maps. Launches
	// within a Ctx are sequential, so one instance serves every kernel.
	acc flatAccum

	// Memoized per-graph derivations, keyed by the storage object identity.
	invDegCSR map[*graph.BCSR][]float32
	invDegCOO map[*graph.BCOO][]float32
	cscEdges  map[*graph.BCSR][]int32

	// blockBuf backs edgeBlocks' run-aligned block boundaries; recomputed
	// per launch (an O(E) walk, noise next to the per-edge kernel work) so
	// the steady state retains one buffer instead of a per-graph memo.
	blockBuf []int32
}

// NewCtx builds a kernel context on the device.
func NewCtx(dev *gpusim.Device) *Ctx {
	return &Ctx{Dev: dev, Phases: metrics.NewBreakdown(), work: map[string]gpusim.Counters{}}
}

// memoCap is the backstop bound on the per-Ctx memo maps for callers that
// never signal batch boundaries: when full, a memo map is cleared before
// the next insert. The proper discipline is EndBatch, which releases the
// memos (and the graph storage they pin) as soon as a batch completes.
const memoCap = 8

// EndBatch drops the per-graph memos so the batch's graph storage (which
// the memo keys pin) becomes collectible. The per-SM scratch buffers are
// retained — they are shape-dependent, not graph-dependent. Call it when
// a training/inference batch's graphs are released.
func (c *Ctx) EndBatch() {
	clear(c.invDegCSR)
	clear(c.invDegCOO)
	clear(c.cscEdges)
}

// InvDeg returns 1/deg per dst (0 for isolated dsts) for csr, memoized on
// the Ctx so every strategy, pass and layer sharing the graph within a
// batch computes it once.
func (c *Ctx) InvDeg(csr *graph.BCSR) []float32 {
	if v, ok := c.invDegCSR[csr]; ok {
		return v
	}
	if c.invDegCSR == nil {
		c.invDegCSR = make(map[*graph.BCSR][]float32)
	} else if len(c.invDegCSR) >= memoCap {
		clear(c.invDegCSR)
	}
	v := invDegFromCSR(csr)
	c.invDegCSR[csr] = v
	return v
}

// InvDegCOO is InvDeg for edge-list storage.
func (c *Ctx) InvDegCOO(coo *graph.BCOO) []float32 {
	if v, ok := c.invDegCOO[coo]; ok {
		return v
	}
	if c.invDegCOO == nil {
		c.invDegCOO = make(map[*graph.BCOO][]float32)
	} else if len(c.invDegCOO) >= memoCap {
		clear(c.invDegCOO)
	}
	v := invDegFromCOO(coo)
	c.invDegCOO[coo] = v
	return v
}

// cscEdgeIDs returns edgeIDsForCSC(csr, csc) memoized by the CSR identity
// (the CSC of a layer graph is derived from exactly one CSR).
func (c *Ctx) cscEdgeIDs(csr *graph.BCSR, csc *graph.BCSC) []int32 {
	if v, ok := c.cscEdges[csr]; ok {
		return v
	}
	if c.cscEdges == nil {
		c.cscEdges = make(map[*graph.BCSR][]int32)
	} else if len(c.cscEdges) >= memoCap {
		clear(c.cscEdges)
	}
	v := edgeIDsForCSC(csr, csc)
	c.cscEdges[csr] = v
	return v
}

// edgeBlocks returns the run-aligned thread-block boundaries of a COO edge
// list: blocks cover at most edgeBlock consecutive edges and never span a
// dst boundary, so a block's contribution to its dst depends only on that
// dst's own edge run — the alignment that makes the Graph-approach's
// partial merge independent of what else shares the batch (the serving
// engine coalesces and de-coalesces queries freely on top of this).
// blocks[b] is block b's first edge; blocks[len-1] == NumEdges. The view is
// valid until the next edgeBlocks call (one retained buffer, no per-graph
// allocation).
func (c *Ctx) edgeBlocks(coo *graph.BCOO) []int32 {
	n := coo.NumEdges()
	v := c.blockBuf[:0]
	if cap(v) == 0 {
		// Worst case for contiguous runs: one short block per dst plus the
		// full-block count (split-run COOs may still grow once; the buffer
		// is retained, so growth is one-time per Ctx either way).
		v = make([]int32, 0, coo.NumDst+n/edgeBlock+2)
	}
	v = append(v, 0)
	for e := 0; e < n; {
		d := coo.Dst[e]
		hi := e + edgeBlock
		if hi > n {
			hi = n
		}
		end := e + 1
		for end < hi && coo.Dst[end] == d {
			end++
		}
		v = append(v, int32(end))
		e = end
	}
	c.blockBuf = v
	return v
}

// msgScratch returns numSMs reusable message-scratch rows of length dim
// (contents undefined; kernels fully overwrite them per edge).
func (c *Ctx) msgScratch(numSMs, dim int) [][]float32 {
	return growScratch(&c.msgBuf, &c.msgViews, numSMs, dim)
}

// partials returns the Ctx's flat accumulator reset for a launch of numSMs
// SMs over rows dsts of width dim, where one SM touches at most perSM
// distinct dsts (its share of the edges).
func (c *Ctx) partials(numSMs, rows, dim, perSM int) *flatAccum {
	c.acc.reset(numSMs, rows, dim, perSM)
	return &c.acc
}

// wScratch returns numSMs reusable edge-weight-scratch rows of length
// cols. Distinct from msgScratch so one kernel may hold both.
func (c *Ctx) wScratch(numSMs, cols int) [][]float32 {
	return growScratch(&c.wBuf, &c.wViews, numSMs, cols)
}

func growScratch(buf *[]float32, views *[][]float32, n, dim int) [][]float32 {
	need := n * dim
	if cap(*buf) < need {
		*buf = make([]float32, need)
	}
	*buf = (*buf)[:need]
	if cap(*views) < n {
		*views = make([][]float32, n)
	}
	*views = (*views)[:n]
	for i := 0; i < n; i++ {
		(*views)[i] = (*buf)[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return *views
}

// PhaseWork returns the device work accumulated under the named phase.
func (c *Ctx) PhaseWork(phase string) gpusim.Counters { return c.work[phase] }

// ResetPhaseWork clears the per-phase work counters.
func (c *Ctx) ResetPhaseWork() { c.work = map[string]gpusim.Counters{} }

// track runs fn and accrues its wall time and device work under phase.
func (c *Ctx) track(phase string, fn func() error) error {
	t0 := time.Now()
	before := c.Dev.Snapshot()
	err := fn()
	c.Phases.Add(phase, time.Since(t0))
	c.work[phase] = c.work[phase].Add(c.Dev.Snapshot().Sub(before))
	return err
}

// Graphs bundles whichever storage formats of one GNN layer are resident
// on device. Strategies consume the format they are built around and
// translate — at a real, recorded cost — when their format is missing.
type Graphs struct {
	COO *graph.BCOO
	CSR *graph.BCSR
	CSC *graph.BCSC
}

// Shape returns (numDst, numSrc, numEdges) from whichever format is present.
func (g *Graphs) Shape() (numDst, numSrc, numEdges int) {
	switch {
	case g.CSR != nil:
		return g.CSR.NumDst, g.CSR.NumSrc, g.CSR.NumEdges()
	case g.COO != nil:
		return g.COO.NumDst, g.COO.NumSrc, g.COO.NumEdges()
	case g.CSC != nil:
		return g.CSC.NumDst, g.CSC.NumSrc, g.CSC.NumEdges()
	}
	return 0, 0, 0
}

// ensureCSR returns a CSR view, translating from COO on demand and charging
// the work to PhaseTranslation (the Graph-approach's recurring cost,
// Fig 5c). The translation allocates — and frees — real scratch device
// memory, so memory footprint measurements see it.
func (c *Ctx) ensureCSR(g *Graphs) (*graph.BCSR, error) {
	if g.CSR != nil {
		return g.CSR, nil
	}
	var out *graph.BCSR
	err := c.track(PhaseTranslation, func() error {
		csr, stats := graph.BCOOToBCSR(g.COO)
		scratch, err := c.Dev.Alloc(stats.BufferBytes, "format-translation-scratch")
		if err != nil {
			return err
		}
		buf, err := c.Dev.Alloc(csr.Bytes(), "translated-csr")
		if err != nil {
			scratch.Free()
			return err
		}
		_ = buf // retained for the batch lifetime, like the real framework
		scratch.Free()
		out = csr
		return nil
	})
	if err != nil {
		return nil, err
	}
	g.CSR = out
	return out, nil
}

// ensureCSC returns a CSC view, translating on demand (BWP path).
func (c *Ctx) ensureCSC(g *Graphs) (*graph.BCSC, error) {
	if g.CSC != nil {
		return g.CSC, nil
	}
	var out *graph.BCSC
	err := c.track(PhaseTranslation, func() error {
		if g.COO != nil {
			csc, stats := graph.BCOOToBCSC(g.COO)
			scratch, err := c.Dev.Alloc(stats.BufferBytes, "format-translation-scratch")
			if err != nil {
				return err
			}
			scratch.Free()
			out = csc
			return nil
		}
		out = graph.BCSRToBCSC(g.CSR)
		return nil
	})
	if err != nil {
		return nil, err
	}
	g.CSC = out
	return out, nil
}

// ensureCOO returns a COO view, expanding from CSR on demand.
func (c *Ctx) ensureCOO(g *Graphs) (*graph.BCOO, error) {
	if g.COO != nil {
		return g.COO, nil
	}
	var out *graph.BCOO
	err := c.track(PhaseTranslation, func() error {
		out = graph.BCSRToBCOO(g.CSR)
		return nil
	})
	if err != nil {
		return nil, err
	}
	g.COO = out
	return out, nil
}
