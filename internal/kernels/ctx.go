package kernels

import (
	"time"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/metrics"
)

// Phase names used in the kernel-time breakdown (Fig 16).
const (
	PhaseAggregation  = "aggregation"
	PhaseEdgeWeight   = "edge-weight"
	PhaseCombination  = "combination"
	PhaseSparse2Dense = "sparse2dense"
	PhaseTranslation  = "translation"
)

// Ctx carries the simulated device, the per-phase time breakdown and the
// per-phase device work counters every kernel records into. A Ctx is used
// by one training loop at a time (not concurrently).
type Ctx struct {
	Dev    *gpusim.Device
	Phases *metrics.Breakdown
	work   map[string]gpusim.Counters
}

// NewCtx builds a kernel context on the device.
func NewCtx(dev *gpusim.Device) *Ctx {
	return &Ctx{Dev: dev, Phases: metrics.NewBreakdown(), work: map[string]gpusim.Counters{}}
}

// PhaseWork returns the device work accumulated under the named phase.
func (c *Ctx) PhaseWork(phase string) gpusim.Counters { return c.work[phase] }

// ResetPhaseWork clears the per-phase work counters.
func (c *Ctx) ResetPhaseWork() { c.work = map[string]gpusim.Counters{} }

// track runs fn and accrues its wall time and device work under phase.
func (c *Ctx) track(phase string, fn func() error) error {
	t0 := time.Now()
	before := c.Dev.Snapshot()
	err := fn()
	c.Phases.Add(phase, time.Since(t0))
	c.work[phase] = c.work[phase].Add(c.Dev.Snapshot().Sub(before))
	return err
}

// Graphs bundles whichever storage formats of one GNN layer are resident
// on device. Strategies consume the format they are built around and
// translate — at a real, recorded cost — when their format is missing.
type Graphs struct {
	COO *graph.BCOO
	CSR *graph.BCSR
	CSC *graph.BCSC
}

// Shape returns (numDst, numSrc, numEdges) from whichever format is present.
func (g *Graphs) Shape() (numDst, numSrc, numEdges int) {
	switch {
	case g.CSR != nil:
		return g.CSR.NumDst, g.CSR.NumSrc, g.CSR.NumEdges()
	case g.COO != nil:
		return g.COO.NumDst, g.COO.NumSrc, g.COO.NumEdges()
	case g.CSC != nil:
		return g.CSC.NumDst, g.CSC.NumSrc, g.CSC.NumEdges()
	}
	return 0, 0, 0
}

// ensureCSR returns a CSR view, translating from COO on demand and charging
// the work to PhaseTranslation (the Graph-approach's recurring cost,
// Fig 5c). The translation allocates — and frees — real scratch device
// memory, so memory footprint measurements see it.
func (c *Ctx) ensureCSR(g *Graphs) (*graph.BCSR, error) {
	if g.CSR != nil {
		return g.CSR, nil
	}
	var out *graph.BCSR
	err := c.track(PhaseTranslation, func() error {
		csr, stats := graph.BCOOToBCSR(g.COO)
		scratch, err := c.Dev.Alloc(stats.BufferBytes, "format-translation-scratch")
		if err != nil {
			return err
		}
		buf, err := c.Dev.Alloc(csr.Bytes(), "translated-csr")
		if err != nil {
			scratch.Free()
			return err
		}
		_ = buf // retained for the batch lifetime, like the real framework
		scratch.Free()
		out = csr
		return nil
	})
	if err != nil {
		return nil, err
	}
	g.CSR = out
	return out, nil
}

// ensureCSC returns a CSC view, translating on demand (BWP path).
func (c *Ctx) ensureCSC(g *Graphs) (*graph.BCSC, error) {
	if g.CSC != nil {
		return g.CSC, nil
	}
	var out *graph.BCSC
	err := c.track(PhaseTranslation, func() error {
		if g.COO != nil {
			csc, stats := graph.BCOOToBCSC(g.COO)
			scratch, err := c.Dev.Alloc(stats.BufferBytes, "format-translation-scratch")
			if err != nil {
				return err
			}
			scratch.Free()
			out = csc
			return nil
		}
		out = graph.BCSRToBCSC(g.CSR)
		return nil
	})
	if err != nil {
		return nil, err
	}
	g.CSC = out
	return out, nil
}

// ensureCOO returns a COO view, expanding from CSR on demand.
func (c *Ctx) ensureCOO(g *Graphs) (*graph.BCOO, error) {
	if g.COO != nil {
		return g.COO, nil
	}
	var out *graph.BCOO
	err := c.track(PhaseTranslation, func() error {
		out = graph.BCSRToBCOO(g.CSR)
		return nil
	})
	if err != nil {
		return nil, err
	}
	g.COO = out
	return out, nil
}
