package kernels

import (
	"errors"
	"time"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
)

// NAPA is GraphTensor's pure vertex-centric strategy (§IV-B): the graph is
// traversed destination-centrically over CSR (FWP) and CSC (BWP), and SM
// threads are scheduled feature-wise — all features of a dst stay within
// one SM, so the dst embedding and the per-edge weights are loaded once
// per SM and reused across that dst's edges. There is no sparse→dense
// conversion and no COO anywhere, hence no memory bloat, no cache bloat
// and no format translation.
type NAPA struct{}

// Name implements Strategy.
func (NAPA) Name() string { return "NAPA" }

// Forward implements Strategy: NeighborApply (edge weighting) fused with
// Pull (aggregation), dst-chunked across SMs. Because both primitives
// visit the same dst and schedule feature-wise on the same SM, the weight
// vector h just produced is recycled in-register ("the target SM can
// recycle the output of h", §IV-B) — the per-edge weight matrix is never
// materialized in global memory, which is where the DL-approach's memory
// bloat comes from.
func (NAPA) Forward(ctx *Ctx, g *Graphs, x *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	csr, err := ctx.ensureCSR(g)
	if err != nil {
		return nil, err
	}
	dim := x.M.Cols
	var out *DeviceMatrix
	start := time.Now()
	beforeWork := ctx.Dev.Snapshot()
	err = func() error {
		var err error
		out, err = AllocDeviceMatrix(ctx.Dev, csr.NumDst, dim, "napa-aggr-out")
		if err != nil {
			return err
		}
		invDeg := ctx.InvDeg(csr)
		k := ctx.Dev.StartKernel("napa-fused")
		wCols := m.WeightCols(dim)
		msgS := ctx.msgScratch(k.NumSMs(), dim)
		wS := ctx.wScratch(k.NumSMs(), maxIntK(wCols, 1))
		runSMsChunkedIdx(k, csr.NumDst, func(sm *gpusim.SMContext, smID, lo, hi int) {
			msg, w := msgS[smID], wS[smID]
			for d := lo; d < hi; d++ {
				var dstRow []float32
				if m.HasEdgeWeight() {
					sm.Read(x.RowAddr(d), x.RowBytes())
					dstRow = x.M.Row(d)
				}
				orow := out.M.Row(d)
				scale := aggrScale(m, invDeg, graph.VID(d))
				for _, s := range csr.Neighbors(graph.VID(d)) {
					sm.Read(x.RowAddr(int(s)), x.RowBytes())
					srcRow := x.M.Row(int(s))
					var wv []float32
					if m.HasEdgeWeight() {
						sm.AddFLOPs(m.edgeWeight(srcRow, dstRow, w))
						wv = w[:wCols]
					}
					sm.AddFLOPs(m.message(srcRow, wv, msg))
					for j := range orow {
						orow[j] += msg[j] * scale
					}
					sm.AddFLOPs(int64(2 * dim))
				}
				// Output row stays resident in the SM until the dst is done.
				sm.Write(out.RowAddr(d), out.RowBytes())
			}
		})
		k.Finish()
		return nil
	}()
	if err != nil {
		return nil, err
	}
	// The fused kernel covers both primitives; apportion its time between
	// the edge-weighting and aggregation phases by their per-edge FLOP
	// shares so the Fig 16 breakdown stays meaningful. The device work all
	// lands under the aggregation phase.
	elapsed := time.Since(start)
	ctx.work[PhaseAggregation] = ctx.work[PhaseAggregation].Add(ctx.Dev.Snapshot().Sub(beforeWork))
	if m.HasEdgeWeight() {
		wShare := 0.5
		if m.G == WeightDot {
			wShare = 0.6
		}
		ctx.Phases.Add(PhaseEdgeWeight, time.Duration(float64(elapsed)*wShare))
		ctx.Phases.Add(PhaseAggregation, time.Duration(float64(elapsed)*(1-wShare)))
	} else {
		ctx.Phases.Add(PhaseAggregation, elapsed)
	}
	return out, nil
}

func maxIntK(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NeighborApplyKernel is the NAPA NeighborApply primitive (§IV-B Fig 9b):
// it computes the per-edge weight matrix g(x_src, x_dst) over CSR with
// dst-chunked, feature-wise scheduling — each dst row is read once per SM
// and reused for all of the dst's edges. It returns nil (and does nothing)
// when the mode has no edge weighting.
func NeighborApplyKernel(ctx *Ctx, csr *graph.BCSR, x *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	if !m.HasEdgeWeight() {
		return nil, nil
	}
	dim := x.M.Cols
	var wMat *DeviceMatrix
	err := ctx.track(PhaseEdgeWeight, func() error {
		var err error
		wMat, err = AllocDeviceMatrix(ctx.Dev, csr.NumEdges(), m.WeightCols(dim), "napa-edge-weights")
		if err != nil {
			return err
		}
		k := ctx.Dev.StartKernel("napa-neighborapply")
		runSMsChunked(k, csr.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
			for d := lo; d < hi; d++ {
				sm.Read(x.RowAddr(d), x.RowBytes())
				dstRow := x.M.Row(d)
				base := int(csr.Ptr[d])
				for i, s := range csr.Neighbors(graph.VID(d)) {
					e := base + i
					sm.Read(x.RowAddr(int(s)), x.RowBytes())
					sm.AddFLOPs(m.edgeWeight(x.M.Row(int(s)), dstRow, wMat.M.Row(e)))
					sm.Write(wMat.RowAddr(e), wMat.RowBytes())
				}
			}
		})
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return wMat, nil
}

// PullKernel is the NAPA Pull primitive (§IV-B Fig 9c): it aggregates
// h(x_src, w_e) into each dst with f, reusing the SM-resident output row
// across the dst's edges. wMat may be nil for unweighted modes.
func PullKernel(ctx *Ctx, csr *graph.BCSR, x, wMat *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	dim := x.M.Cols
	var out *DeviceMatrix
	err := ctx.track(PhaseAggregation, func() error {
		var err error
		out, err = AllocDeviceMatrix(ctx.Dev, csr.NumDst, dim, "napa-aggr-out")
		if err != nil {
			return err
		}
		invDeg := ctx.InvDeg(csr)
		k := ctx.Dev.StartKernel("napa-pull")
		msgS := ctx.msgScratch(k.NumSMs(), dim)
		runSMsChunkedIdx(k, csr.NumDst, func(sm *gpusim.SMContext, smID, lo, hi int) {
			msg := msgS[smID]
			for d := lo; d < hi; d++ {
				orow := out.M.Row(d)
				scale := aggrScale(m, invDeg, graph.VID(d))
				base := int(csr.Ptr[d])
				for i, s := range csr.Neighbors(graph.VID(d)) {
					e := base + i
					sm.Read(x.RowAddr(int(s)), x.RowBytes())
					var w []float32
					if wMat != nil {
						sm.Read(wMat.RowAddr(e), wMat.RowBytes())
						w = wMat.M.Row(e)
					}
					sm.AddFLOPs(m.message(x.M.Row(int(s)), w, msg))
					for j := range orow {
						orow[j] += msg[j] * scale
					}
					sm.AddFLOPs(int64(2 * dim))
				}
				// Output row stays resident in the SM until the dst is done.
				sm.Write(out.RowAddr(d), out.RowBytes())
			}
		})
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Backward implements Strategy. The src-side gradient (f′, h′ of Fig 3b)
// traverses CSC — each src is owned by exactly one work unit, so the
// accumulation is race-free — and the dst-side gradient of edge-weighted
// modes (g′, Fig 3c) traverses CSR, dst-chunked. Both passes stay
// feature-wise within an SM.
func (NAPA) Backward(ctx *Ctx, g *Graphs, x, dOut *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	csr, err := ctx.ensureCSR(g)
	if err != nil {
		return nil, err
	}
	csc, err := ctx.ensureCSC(g)
	if err != nil {
		return nil, err
	}
	if dOut.M.Rows != csr.NumDst {
		return nil, errors.New("kernels: backward gradient rows != NumDst")
	}
	dim := x.M.Cols
	invDeg := ctx.InvDeg(csr)

	var dx *DeviceMatrix
	err = ctx.track(PhaseAggregation, func() error {
		var err error
		dx, err = AllocDeviceMatrix(ctx.Dev, csr.NumSrc, dim, "napa-bwp-dx")
		if err != nil {
			return err
		}
		k := ctx.Dev.StartKernel("napa-pull-bwp")
		msgS := ctx.msgScratch(k.NumSMs(), dim)
		runSMsChunkedIdx(k, csc.NumSrc, func(sm *gpusim.SMContext, smID, lo, hi int) {
			dMsg := msgS[smID]
			for s := lo; s < hi; s++ {
				srcRow := x.M.Row(s)
				sm.Read(x.RowAddr(s), x.RowBytes())
				dxRow := dx.M.Row(s)
				for _, d := range csc.Neighbors(graph.VID(s)) {
					sm.Read(dOut.RowAddr(int(d)), dOut.RowBytes())
					sm.Read(x.RowAddr(int(d)), x.RowBytes())
					scale := aggrScale(m, invDeg, d)
					dORow := dOut.M.Row(int(d))
					for j := range dMsg {
						dMsg[j] = dORow[j] * scale
					}
					sm.AddFLOPs(int64(dim))
					sm.AddFLOPs(m.msgBackwardSrc(srcRow, x.M.Row(int(d)), dMsg, dxRow))
				}
				sm.Write(dx.RowAddr(s), dx.RowBytes())
			}
		})
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}

	if m.HasDstGrad() {
		err = ctx.track(PhaseEdgeWeight, func() error {
			k := ctx.Dev.StartKernel("napa-neighborapply-bwp")
			msgS := ctx.msgScratch(k.NumSMs(), dim)
			runSMsChunkedIdx(k, csr.NumDst, func(sm *gpusim.SMContext, smID, lo, hi int) {
				dMsg := msgS[smID]
				for d := lo; d < hi; d++ {
					sm.Read(dOut.RowAddr(d), dOut.RowBytes())
					sm.Read(x.RowAddr(d), x.RowBytes())
					scale := aggrScale(m, invDeg, graph.VID(d))
					dORow := dOut.M.Row(d)
					for j := range dMsg {
						dMsg[j] = dORow[j] * scale
					}
					sm.AddFLOPs(int64(dim))
					dstRow := x.M.Row(d)
					// dst d is also a src-space vertex (F_{t-1} ⊆ F_t), so
					// its gradient accumulates into dx row d, which this
					// work unit exclusively owns in this pass.
					dxRow := dx.M.Row(d)
					for _, s := range csr.Neighbors(graph.VID(d)) {
						sm.Read(x.RowAddr(int(s)), x.RowBytes())
						sm.AddFLOPs(m.msgBackwardDst(x.M.Row(int(s)), dstRow, dMsg, dxRow))
					}
					sm.Write(dx.RowAddr(d), dx.RowBytes())
				}
			})
			k.Finish()
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dx, nil
}
