package kernels

import (
	"runtime"
	"testing"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/tensor"
)

func workspaceGraph(t *testing.T) (*Graphs, *tensor.Matrix) {
	t.Helper()
	rng := tensor.NewRNG(7)
	coo := &graph.BCOO{NumDst: 60, NumSrc: 110}
	for d := 0; d < 60; d++ {
		coo.Src = append(coo.Src, graph.VID(d))
		coo.Dst = append(coo.Dst, graph.VID(d))
		for i := 0; i < 5; i++ {
			coo.Src = append(coo.Src, graph.VID(rng.Intn(110)))
			coo.Dst = append(coo.Dst, graph.VID(d))
		}
	}
	csr, _ := graph.BCOOToBCSR(coo)
	return &Graphs{CSR: csr, CSC: graph.BCSRToBCSC(csr)}, tensor.Random(110, 24, 1, rng)
}

// TestCtxWorkspaceReuseDeterministic checks that reusing one Ctx (whose
// per-SM scratch rows and invDeg memo are then warm) across repeated
// forward/backward passes — and across strategies — changes nothing about
// the results, under both serial and parallel execution.
func TestCtxWorkspaceReuseDeterministic(t *testing.T) {
	g, x := workspaceGraph(t)
	for _, modes := range []Modes{GCNModes(), NGCFModes()} {
		dev := gpusim.NewDevice(gpusim.DefaultConfig())
		ctx := NewCtx(dev)
		var ref *tensor.Matrix
		for pass := 0; pass < 3; pass++ {
			prev := runtime.GOMAXPROCS(1 + pass*3) // 1, 4, 7 workers
			for _, s := range []Strategy{NAPA{}, Unfused{}, DLApproach{}, GraphApproach{}} {
				gg := &Graphs{CSR: g.CSR, CSC: g.CSC}
				xd, err := WrapDeviceMatrix(dev, x.Clone(), "x")
				if err != nil {
					t.Fatal(err)
				}
				out, err := s.Forward(ctx, gg, xd, modes)
				if err != nil {
					t.Fatalf("%s forward: %v", s.Name(), err)
				}
				if ref == nil {
					ref = out.M.Clone()
				} else if d := out.M.MaxAbsDiff(ref); d > 2e-5 {
					t.Fatalf("%s pass %d diverges from first result by %v", s.Name(), pass, d)
				}
				out.Free()
				xd.Free()
			}
			runtime.GOMAXPROCS(prev)
		}
	}
}

// TestInvDegMemo checks the memoization contract: one computation per CSR
// identity, shared across calls.
func TestInvDegMemo(t *testing.T) {
	g, _ := workspaceGraph(t)
	ctx := NewCtx(gpusim.NewDevice(gpusim.DefaultConfig()))
	a := ctx.InvDeg(g.CSR)
	b := ctx.InvDeg(g.CSR)
	if &a[0] != &b[0] {
		t.Error("InvDeg recomputed for the same CSR")
	}
	want := invDegFromCSR(g.CSR)
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("memoized invDeg[%d] = %v, want %v", i, a[i], want[i])
		}
	}
	// A different CSR gets its own entry.
	csr2, _ := graph.BCOOToBCSR(&graph.BCOO{NumDst: 3, NumSrc: 3,
		Src: []graph.VID{0, 1, 2}, Dst: []graph.VID{0, 0, 2}})
	c := ctx.InvDeg(csr2)
	if len(c) != 3 || c[0] != 0.5 || c[1] != 0 || c[2] != 1 {
		t.Fatalf("invDeg for second CSR = %v", c)
	}
	// EndBatch releases the memos: the next call recomputes.
	ctx.EndBatch()
	d := ctx.InvDeg(g.CSR)
	if &d[0] == &a[0] {
		t.Error("InvDeg still memoized after EndBatch")
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("recomputed invDeg[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

// TestScratchRowsDisjoint guards the workspace layout: per-SM scratch rows
// must never overlap (a worker writing its row cannot corrupt another's).
func TestScratchRowsDisjoint(t *testing.T) {
	ctx := NewCtx(gpusim.NewDevice(gpusim.DefaultConfig()))
	rows := ctx.msgScratch(8, 16)
	for i := range rows {
		for j := range rows[i] {
			rows[i][j] = float32(i)
		}
	}
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != float32(i) {
				t.Fatalf("scratch row %d corrupted at %d", i, j)
			}
		}
	}
	// Growing re-slices but keeps rows disjoint.
	rows = ctx.msgScratch(12, 40)
	if len(rows) != 12 || len(rows[0]) != 40 {
		t.Fatalf("grown scratch shape %dx%d", len(rows), len(rows[0]))
	}
	// msg and w scratch must be independent buffers.
	msg := ctx.msgScratch(4, 8)
	w := ctx.wScratch(4, 8)
	msg[0][0] = 1
	w[0][0] = 2
	if msg[0][0] != 1 {
		t.Error("msgScratch aliases wScratch")
	}
}
