package kernels

import (
	"testing"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/tensor"
)

func TestUnfusedMatchesNAPA(t *testing.T) {
	rng := tensor.NewRNG(303)
	for _, m := range allModes {
		csr := randomBipartite(14, 24, 4, rng)
		x := tensor.Random(24, 8, 1, rng)
		dev := testDevice()
		ctx := NewCtx(dev)
		xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
		fused, err := NAPA{}.Forward(ctx, &Graphs{CSR: csr}, xd, m)
		if err != nil {
			t.Fatal(err)
		}
		dev2 := testDevice()
		ctx2 := NewCtx(dev2)
		xd2, _ := WrapDeviceMatrix(dev2, x.Clone(), "x")
		unfused, err := Unfused{}.Forward(ctx2, &Graphs{CSR: csr}, xd2, m)
		if err != nil {
			t.Fatal(err)
		}
		if diff := fused.M.MaxAbsDiff(unfused.M); diff > 1e-6 {
			t.Errorf("modes %v: fused vs unfused differ by %g", m, diff)
		}
	}
}

func TestFusedReducesGlobalStores(t *testing.T) {
	rng := tensor.NewRNG(404)
	csr := randomBipartite(40, 70, 6, rng)
	x := tensor.Random(70, 16, 1, rng)
	m := NGCFModes()

	stores := func(s Strategy) int64 {
		dev := gpusim.NewDevice(gpusim.DefaultConfig())
		ctx := NewCtx(dev)
		xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
		before := dev.Snapshot()
		out, _ := s.Forward(ctx, &Graphs{CSR: csr}, xd, m)
		out.Free()
		return dev.Snapshot().Sub(before).GlobalStores
	}
	if stores(NAPA{}) >= stores(Unfused{}) {
		t.Error("fused NAPA should store fewer bytes than unfused")
	}
}

func TestFusedCPUMatchesReference(t *testing.T) {
	rng := tensor.NewRNG(505)
	for _, m := range allModes {
		csr := randomBipartite(10, 18, 4, rng)
		x := tensor.Random(18, 6, 1, rng)
		want := refForward(csr, x, m)
		view := ViewFromMatrix(x.Rows, x.Cols, x.Data)
		got, flops := FusedCPU(csr, view, m)
		if flops <= 0 {
			t.Error("FusedCPU reported no FLOPs")
		}
		for i := 0; i < want.Rows; i++ {
			for j := 0; j < want.Cols; j++ {
				d := got.Row(i)[j] - want.At(i, j)
				if d < 0 {
					d = -d
				}
				if d > 2e-5 {
					t.Fatalf("modes %v: FusedCPU[%d][%d] off by %g", m, i, j, d)
				}
			}
		}
	}
}
