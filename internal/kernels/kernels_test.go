package kernels

import (
	"testing"
	"testing/quick"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/tensor"
)

// refForward is the obviously-correct reference: out[d] = f over neighbors
// of h(x_s, g(x_s, x_d)).
func refForward(csr *graph.BCSR, x *tensor.Matrix, m Modes) *tensor.Matrix {
	dim := x.Cols
	out := tensor.New(csr.NumDst, dim)
	w := make([]float32, dim)
	msg := make([]float32, dim)
	for d := 0; d < csr.NumDst; d++ {
		nbrs := csr.Neighbors(graph.VID(d))
		scale := float32(1)
		if m.F == AggrMean && len(nbrs) > 0 {
			scale = 1 / float32(len(nbrs))
		}
		orow := out.Row(d)
		for _, s := range nbrs {
			var wv []float32
			if m.HasEdgeWeight() {
				m.edgeWeight(x.Row(int(s)), x.Row(d), w)
				wv = w[:m.WeightCols(dim)]
			}
			m.message(x.Row(int(s)), wv, msg)
			for j := range orow {
				orow[j] += msg[j] * scale
			}
		}
	}
	return out
}

// refBackward computes dX numerically-exactly by accumulating the analytic
// per-edge gradients (same math as msgBackward*, but in one serial loop).
func refBackward(csr *graph.BCSR, x, dOut *tensor.Matrix, m Modes) *tensor.Matrix {
	dim := x.Cols
	dx := tensor.New(csr.NumSrc, dim)
	dMsg := make([]float32, dim)
	for d := 0; d < csr.NumDst; d++ {
		nbrs := csr.Neighbors(graph.VID(d))
		scale := float32(1)
		if m.F == AggrMean && len(nbrs) > 0 {
			scale = 1 / float32(len(nbrs))
		}
		dORow := dOut.Row(d)
		for _, s := range nbrs {
			for j := range dMsg {
				dMsg[j] = dORow[j] * scale
			}
			m.msgBackwardSrc(x.Row(int(s)), x.Row(d), dMsg, dx.Row(int(s)))
			m.msgBackwardDst(x.Row(int(s)), x.Row(d), dMsg, dx.Row(d))
		}
	}
	return dx
}

// randomBipartite builds a random sampled-subgraph-shaped BCSR: dsts are a
// prefix of the src space, as the sampler guarantees.
func randomBipartite(nDst, nSrc, fanout int, rng *tensor.RNG) *graph.BCSR {
	coo := &graph.BCOO{NumDst: nDst, NumSrc: nSrc}
	for d := 0; d < nDst; d++ {
		deg := 1 + rng.Intn(fanout)
		for i := 0; i < deg; i++ {
			coo.Src = append(coo.Src, graph.VID(rng.Intn(nSrc)))
			coo.Dst = append(coo.Dst, graph.VID(d))
		}
	}
	csr, _ := graph.BCOOToBCSR(coo)
	return csr
}

func testDevice() *gpusim.Device {
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 8 // keep simulated SM fan-out small in tests
	return gpusim.NewDevice(cfg)
}

var allStrategies = []Strategy{NAPA{}, GraphApproach{}, DLApproach{}, Advisor{GroupSize: 4}}

var allModes = []Modes{GCNModes(), NGCFModes(), AttentionModes()}

func TestForwardMatchesReference(t *testing.T) {
	rng := tensor.NewRNG(7)
	for _, m := range allModes {
		csr := randomBipartite(23, 41, 5, rng)
		x := tensor.Random(41, 9, 1, rng)
		want := refForward(csr, x, m)
		for _, s := range allStrategies {
			dev := testDevice()
			ctx := NewCtx(dev)
			xd, err := WrapDeviceMatrix(dev, x.Clone(), "x")
			if err != nil {
				t.Fatal(err)
			}
			g := &Graphs{CSR: csr}
			got, err := s.Forward(ctx, g, xd, m)
			if err != nil {
				t.Fatalf("%s/%v: %v", s.Name(), m, err)
			}
			if diff := got.M.MaxAbsDiff(want); diff > 2e-5 {
				t.Errorf("%s modes f=%v g=%v h=%v: forward diff %g", s.Name(), m.F, m.G, m.H, diff)
			}
		}
	}
}

func TestBackwardMatchesReference(t *testing.T) {
	rng := tensor.NewRNG(11)
	for _, m := range allModes {
		csr := randomBipartite(17, 31, 4, rng)
		x := tensor.Random(31, 7, 1, rng)
		dOut := tensor.Random(17, 7, 1, rng)
		want := refBackward(csr, x, dOut, m)
		for _, s := range allStrategies {
			dev := testDevice()
			ctx := NewCtx(dev)
			xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
			dOutD, _ := WrapDeviceMatrix(dev, dOut.Clone(), "dout")
			g := &Graphs{CSR: csr}
			got, err := s.Backward(ctx, g, xd, dOutD, m)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if diff := got.M.MaxAbsDiff(want); diff > 2e-5 {
				t.Errorf("%s modes f=%v g=%v h=%v: backward diff %g", s.Name(), m.F, m.G, m.H, diff)
			}
		}
	}
}

func TestForwardFromCOOOnly(t *testing.T) {
	// Strategies that need CSR must translate from COO and still agree.
	rng := tensor.NewRNG(13)
	csr := randomBipartite(12, 20, 3, rng)
	coo := BCSRToBCOOShuffled(csr, rng)
	x := tensor.Random(20, 5, 1, rng)
	m := NGCFModes()
	want := refForward(csr, x, m)
	for _, s := range allStrategies {
		dev := testDevice()
		ctx := NewCtx(dev)
		xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
		g := &Graphs{COO: &graph.BCOO{
			NumDst: coo.NumDst, NumSrc: coo.NumSrc,
			Src: append([]graph.VID(nil), coo.Src...),
			Dst: append([]graph.VID(nil), coo.Dst...),
		}}
		got, err := s.Forward(ctx, g, xd, m)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if diff := got.M.MaxAbsDiff(want); diff > 2e-5 {
			t.Errorf("%s from COO: forward diff %g", s.Name(), diff)
		}
		if s.Name() == "Graph-approach" && ctx.Phases.Get(PhaseTranslation) == 0 {
			t.Errorf("Graph-approach from COO should charge format translation")
		}
	}
}

// BCSRToBCOOShuffled expands to COO in a scrambled edge order, as a real
// edge-centric loader would produce.
func BCSRToBCOOShuffled(csr *graph.BCSR, rng *tensor.RNG) *graph.BCOO {
	coo := graph.BCSRToBCOO(csr)
	for i := len(coo.Src) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		coo.Src[i], coo.Src[j] = coo.Src[j], coo.Src[i]
		coo.Dst[i], coo.Dst[j] = coo.Dst[j], coo.Dst[i]
	}
	return coo
}

func TestDLApproachBloatsMemory(t *testing.T) {
	rng := tensor.NewRNG(17)
	csr := randomBipartite(50, 80, 6, rng)
	x := tensor.Random(80, 16, 1, rng)
	m := NGCFModes()

	peak := func(s Strategy) int64 {
		dev := testDevice()
		ctx := NewCtx(dev)
		xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
		dev.ResetPeak()
		base := dev.MemInUse()
		if _, err := s.Forward(ctx, &Graphs{CSR: csr}, xd, m); err != nil {
			t.Fatal(err)
		}
		return dev.MemPeak() - base
	}
	dl := peak(DLApproach{})
	napa := peak(NAPA{})
	if dl <= napa {
		t.Errorf("DL-approach peak %d should exceed NAPA peak %d (memory bloat)", dl, napa)
	}
}

func TestGraphApproachBloatsCache(t *testing.T) {
	rng := tensor.NewRNG(19)
	csr := randomBipartite(60, 100, 6, rng)
	x := tensor.Random(100, 32, 1, rng)
	m := NGCFModes()

	cacheBytes := func(s Strategy) int64 {
		dev := testDevice()
		ctx := NewCtx(dev)
		xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
		if _, err := s.Forward(ctx, &Graphs{CSR: csr}, xd, m); err != nil {
			t.Fatal(err)
		}
		return dev.Snapshot().CacheBytes
	}
	ga := cacheBytes(GraphApproach{})
	napa := cacheBytes(NAPA{})
	if ga <= napa {
		t.Errorf("Graph-approach cache bytes %d should exceed NAPA %d (cache bloat)", ga, napa)
	}
}

func TestLinearMatchesMatMul(t *testing.T) {
	rng := tensor.NewRNG(23)
	x := tensor.Random(37, 13, 1, rng)
	w := tensor.Random(13, 8, 1, rng)
	want := tensor.MatMul(x, w)
	dev := testDevice()
	ctx := NewCtx(dev)
	xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
	got, err := Linear(ctx, xd, w, "y")
	if err != nil {
		t.Fatal(err)
	}
	if diff := got.M.MaxAbsDiff(want); diff > 1e-5 {
		t.Errorf("Linear diff %g", diff)
	}
}

func TestLinearBackward(t *testing.T) {
	rng := tensor.NewRNG(29)
	x := tensor.Random(19, 11, 1, rng)
	w := tensor.Random(11, 6, 1, rng)
	dy := tensor.Random(19, 6, 1, rng)
	wantDX := tensor.MatMul(dy, tensor.Transpose(w)) // dY·Wᵀ
	wantDW := tensor.TMatMul(x, dy)

	dev := testDevice()
	ctx := NewCtx(dev)
	xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
	dyd, _ := WrapDeviceMatrix(dev, dy.Clone(), "dy")
	dw := tensor.New(w.Rows, w.Cols)
	dx, err := LinearBackward(ctx, xd, dyd, w, dw, "dx")
	if err != nil {
		t.Fatal(err)
	}
	if diff := dx.M.MaxAbsDiff(wantDX); diff > 1e-4 {
		t.Errorf("dX diff %g", diff)
	}
	if diff := dw.MaxAbsDiff(wantDW); diff > 1e-4 {
		t.Errorf("dW diff %g", diff)
	}
}

func TestBiasReLURoundTrip(t *testing.T) {
	rng := tensor.NewRNG(31)
	x := tensor.Random(9, 5, 1, rng)
	bias := []float32{0.1, -0.2, 0.3, -0.4, 0.5}
	dev := testDevice()
	ctx := NewCtx(dev)
	xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
	pre, err := BiasReLU(ctx, xd, bias)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			wantPre := x.At(i, j) + bias[j]
			if pre.At(i, j) != wantPre {
				t.Fatalf("pre[%d][%d] = %g want %g", i, j, pre.At(i, j), wantPre)
			}
			want := wantPre
			if want < 0 {
				want = 0
			}
			if xd.M.At(i, j) != want {
				t.Fatalf("relu[%d][%d] = %g want %g", i, j, xd.M.At(i, j), want)
			}
		}
	}
}

func TestModesValidate(t *testing.T) {
	bad := Modes{F: AggrMean, G: WeightDot, H: CombineAdd}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for dot+add combination")
	}
	for _, m := range allModes {
		if err := m.Validate(); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

// Property: strategies agree pairwise on random graphs (testing/quick over
// graph shape parameters).
func TestQuickStrategyEquivalence(t *testing.T) {
	f := func(seed uint64, nDstRaw, nSrcExtraRaw, fanoutRaw, dimRaw uint8) bool {
		nDst := 1 + int(nDstRaw)%30
		nSrc := nDst + int(nSrcExtraRaw)%30
		fanout := 1 + int(fanoutRaw)%6
		dim := 1 + int(dimRaw)%12
		rng := tensor.NewRNG(seed)
		csr := randomBipartite(nDst, nSrc, fanout, rng)
		x := tensor.Random(nSrc, dim, 1, rng)
		m := NGCFModes()
		want := refForward(csr, x, m)
		for _, s := range allStrategies {
			dev := testDevice()
			ctx := NewCtx(dev)
			xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
			got, err := s.Forward(ctx, &Graphs{CSR: csr}, xd, m)
			if err != nil {
				return false
			}
			if got.M.MaxAbsDiff(want) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
