package kernels

import (
	"graphtensor/internal/gpusim"
	"graphtensor/internal/tensor"
)

// Dense (combination) kernels: the MLP pieces of §II-A. The combination is
// deliberately split into Linear (the MatMul the kernel orchestrator
// rearranges, §V-A Fig 11c) and BiasReLU (σ(·+b), which always runs after
// aggregation in both placements).

// Linear computes Y = X·W on device, modeling the access pattern of a tiled
// GEMM: output rows are chunked across SMs; each SM streams its X rows and
// reuses W out of cache. Weights are model parameters resident on device
// for the whole training run, so they are not allocated per call.
func Linear(ctx *Ctx, x *DeviceMatrix, w *tensor.Matrix, label string) (*DeviceMatrix, error) {
	var out *DeviceMatrix
	err := ctx.track(PhaseCombination, func() error {
		var err error
		out, err = AllocDeviceMatrix(ctx.Dev, x.M.Rows, w.Cols, label)
		if err != nil {
			return err
		}
		k := ctx.Dev.StartKernel("linear")
		rowFLOPs := int64(2 * x.M.Cols * w.Cols)
		wBytes := int64(w.Rows) * int64(w.Cols) * 4
		runSMsChunked(k, x.M.Rows, func(sm *gpusim.SMContext, lo, hi int) {
			// Each SM pulls the weight tile once; it stays cached.
			sm.Read(0x7f000000, wBytes) // weights live in a reserved region
			for i := lo; i < hi; i++ {
				sm.Read(x.RowAddr(i), x.RowBytes())
				xrow := x.M.Row(i)
				orow := out.M.Row(i)
				for kk, xv := range xrow {
					if xv == 0 {
						continue
					}
					wrow := w.Row(kk)
					for j, wv := range wrow {
						orow[j] += xv * wv
					}
				}
				sm.AddFLOPs(rowFLOPs)
				sm.Write(out.RowAddr(i), out.RowBytes())
			}
		})
		k.Finish()
		return nil
	})
	return out, err
}

// LinearBackward computes dX = dY·Wᵀ and accumulates dW += Xᵀ·dY. It
// returns dX; dW is written into the caller-owned gradient matrix.
func LinearBackward(ctx *Ctx, x, dy *DeviceMatrix, w, dw *tensor.Matrix, label string) (*DeviceMatrix, error) {
	var dx *DeviceMatrix
	err := ctx.track(PhaseCombination, func() error {
		var err error
		dx, err = AllocDeviceMatrix(ctx.Dev, x.M.Rows, w.Rows, label)
		if err != nil {
			return err
		}
		k := ctx.Dev.StartKernel("linear-bwp-dx")
		rowFLOPs := int64(2 * w.Rows * w.Cols)
		wBytes := int64(w.Rows) * int64(w.Cols) * 4
		runSMsChunked(k, dy.M.Rows, func(sm *gpusim.SMContext, lo, hi int) {
			sm.Read(0x7f000000, wBytes)
			for i := lo; i < hi; i++ {
				sm.Read(dy.RowAddr(i), dy.RowBytes())
				dyrow := dy.M.Row(i)
				dxrow := dx.M.Row(i)
				for r := 0; r < w.Rows; r++ {
					wrow := w.Row(r)
					var acc float32
					for j, dv := range dyrow {
						acc += dv * wrow[j]
					}
					dxrow[r] = acc
				}
				sm.AddFLOPs(rowFLOPs)
				sm.Write(dx.RowAddr(i), dx.RowBytes())
			}
		})
		k.Finish()

		// dW = Xᵀ·dY; accumulate serially per output row of dW to stay
		// deterministic (the real framework uses a reduction tree).
		k2 := ctx.Dev.StartKernel("linear-bwp-dw")
		runSMsChunked(k2, w.Rows, func(sm *gpusim.SMContext, lo, hi int) {
			for r := lo; r < hi; r++ {
				dwrow := dw.Row(r)
				for i := 0; i < x.M.Rows; i++ {
					xv := x.M.At(i, r)
					if xv == 0 {
						continue
					}
					sm.Read(dy.RowAddr(i), dy.RowBytes())
					dyrow := dy.M.Row(i)
					for j, dv := range dyrow {
						dwrow[j] += xv * dv
					}
				}
				sm.AddFLOPs(int64(2 * x.M.Rows * w.Cols))
			}
		})
		k2.Finish()
		return nil
	})
	return dx, err
}

// BiasReLU applies y = max(0, x + b) in place on device and returns the
// pre-activation copy needed by the backward pass. The copy is drawn from
// the tensor pool; the consumer (the model's backward or inference path)
// returns it with tensor.Put once the gradient no longer needs it.
func BiasReLU(ctx *Ctx, x *DeviceMatrix, bias []float32) (pre *tensor.Matrix, err error) {
	err = ctx.track(PhaseCombination, func() error {
		k := ctx.Dev.StartKernel("bias-relu")
		pre = tensor.Get(x.M.Rows, x.M.Cols)
		runSMsChunked(k, x.M.Rows, func(sm *gpusim.SMContext, lo, hi int) {
			for i := lo; i < hi; i++ {
				sm.Read(x.RowAddr(i), x.RowBytes())
				row := x.M.Row(i)
				prow := pre.Row(i)
				for j := range row {
					v := row[j] + bias[j]
					prow[j] = v
					if v < 0 {
						v = 0
					}
					row[j] = v
				}
				sm.AddFLOPs(int64(2 * len(row)))
				sm.Write(x.RowAddr(i), x.RowBytes())
			}
		})
		k.Finish()
		return nil
	})
	return pre, err
}

// BiasReLUBackward turns the upstream gradient dY into the pre-activation
// gradient (dY ⊙ 1[pre>0]) in place and accumulates the bias gradient.
func BiasReLUBackward(ctx *Ctx, dy *DeviceMatrix, pre *tensor.Matrix, dBias []float32) error {
	return ctx.track(PhaseCombination, func() error {
		k := ctx.Dev.StartKernel("bias-relu-bwp")
		// Bias gradient reduction is serialized per column chunk.
		runSMsChunked(k, dy.M.Rows, func(sm *gpusim.SMContext, lo, hi int) {
			for i := lo; i < hi; i++ {
				sm.Read(dy.RowAddr(i), dy.RowBytes())
				row := dy.M.Row(i)
				prow := pre.Row(i)
				for j := range row {
					if prow[j] <= 0 {
						row[j] = 0
					}
				}
				sm.AddFLOPs(int64(len(row)))
				sm.Write(dy.RowAddr(i), dy.RowBytes())
			}
		})
		k.Finish()
		for i := 0; i < dy.M.Rows; i++ {
			row := dy.M.Row(i)
			for j, v := range row {
				dBias[j] += v
			}
		}
		return nil
	})
}
