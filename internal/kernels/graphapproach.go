package kernels

import (
	"errors"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
)

// GraphApproach is the DGL/FeatGraph-style strategy (§III, Fig 5b/5c):
// kernels simulate SpMM/SDDMM over sparse structures with *edge-wise*
// thread scheduling — a thread block per edge, blocks spread round-robin
// across SMs. Consequences the paper measures and this implementation
// reproduces:
//
//   - Cache bloat: edges sharing a dst land on different SMs, so the dst
//     embedding is fetched into many SM caches (Fig 6b).
//   - Format translation: the initial format is COO (SDDMM needs edge
//     pairs); SpMM needs CSR and BWP needs CSC, so every training step
//     pays COO→CSR/CSC translation (Fig 5c, 64.5% of DGL's GCN time on
//     light graphs).
//   - Synchronization: edge-parallel accumulation into shared dst rows
//     needs per-SM partial results merged in a second pass.
type GraphApproach struct{}

// Name implements Strategy.
func (GraphApproach) Name() string { return "Graph-approach" }

// Forward implements Strategy.
func (GraphApproach) Forward(ctx *Ctx, g *Graphs, x *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	coo, err := ctx.ensureCOO(g)
	if err != nil {
		return nil, err
	}
	dim := x.M.Cols
	invDeg := ctx.InvDegCOO(coo)

	// SDDMM: edge-wise edge weighting straight off the COO arrays.
	var wMat *DeviceMatrix
	if m.HasEdgeWeight() {
		var err error
		wMat, err = GraphApproach{}.SDDMM(ctx, g, x, m)
		if err != nil {
			return nil, err
		}
	}

	// SpMM needs src-per-dst: translate COO→CSR first (charged).
	csr, err := ctx.ensureCSR(g)
	if err != nil {
		return nil, err
	}

	var out *DeviceMatrix
	err = ctx.track(PhaseAggregation, func() error {
		var err error
		out, err = AllocDeviceMatrix(ctx.Dev, coo.NumDst, dim, "ga-aggr-out")
		if err != nil {
			return err
		}
		// Edge-wise SpMM with per-SM partial accumulation plus a merge
		// pass — the synchronization cost of updating shared dst rows
		// from many SMs. Partials live in the Ctx's flat accumulator: one
		// SM owns blocks b ≡ smID (mod numSMs), so it touches at most its
		// block share of distinct dsts. Blocks are run-aligned (never
		// spanning a dst boundary) and the merge folds each dst's partials
		// in ascending block order, so the accumulation order of a dst's
		// edges is fixed by its own edge run alone — coalescing the dst
		// into a bigger batch (or serving it alone) cannot change a bit of
		// its output row.
		k := ctx.Dev.StartKernel("ga-spmm")
		numSMs := k.NumSMs()
		scratch := ctx.msgScratch(numSMs, dim)
		blocks := ctx.edgeBlocks(coo)
		nBlocks := len(blocks) - 1
		fa := ctx.partials(numSMs, coo.NumDst, dim, (nBlocks+numSMs-1)/numSMs)
		runSMs(k, nBlocks, func(sm *gpusim.SMContext, b int) {
			smID := b % numSMs
			lo, hi := int(blocks[b]), int(blocks[b+1])
			d := coo.Dst[lo] // run-aligned: one dst per block
			row := fa.rowStamped(smID, d, int32(b))
			scale := aggrScale(m, invDeg, d)
			for e := lo; e < hi; e++ {
				s := coo.Src[e]
				sm.Read(x.RowAddr(int(s)), x.RowBytes())
				var w []float32
				if wMat != nil {
					sm.Read(wMat.RowAddr(e), wMat.RowBytes())
					w = wMat.M.Row(e)
				}
				msg := scratch[smID]
				sm.AddFLOPs(m.message(x.M.Row(int(s)), w, msg))
				for j := range row {
					row[j] += msg[j] * scale
				}
				sm.AddFLOPs(int64(2 * dim))
				// Partial rows spill to global memory between blocks.
				sm.Write(out.RowAddr(int(d)), out.RowBytes())
			}
		})
		// Merge pass: each dst gathers the partial rows the SMs produced,
		// in ascending block order. A dst's blocks are consecutive block
		// ids, hence consecutive SMs mod numSMs — walking the SM ring from
		// the minimal stamp visits them exactly in block order, and when a
		// dst spans more blocks than SMs, the residue classes that share an
		// SM are fixed by the run's own ordinals. Either way the fold is a
		// pure function of the dst's edge run.
		runSMsChunked(k, coo.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
			for d := lo; d < hi; d++ {
				orow := out.M.Row(d)
				s0, best, found := 0, int32(0), false
				for smID := 0; smID < numSMs; smID++ {
					if st, ok := fa.stampAt(smID, d); ok && (!found || st < best) {
						s0, best, found = smID, st, true
					}
				}
				if found {
					for i := 0; i < numSMs; i++ {
						smID := (s0 + i) % numSMs
						if prow := fa.get(smID, d); prow != nil {
							sm.Read(out.RowAddr(d), out.RowBytes())
							for j := range orow {
								orow[j] += prow[j]
							}
							sm.AddFLOPs(int64(dim))
						}
					}
				}
				sm.Write(out.RowAddr(d), out.RowBytes())
			}
		})
		k.Finish()
		_ = csr // CSR was required (and paid for); the merge ran dst-major
		return nil
	})
	if err != nil {
		return nil, err
	}
	wMat.Free()
	return out, nil
}

// SDDMM runs only the Graph-approach's edge-weighting kernel: a thread
// block per edge, spread round-robin across SMs. Exposed separately so the
// cache bloat measurement of Fig 6b can isolate it, exactly as the paper
// measures "cache data loaded from Graph-approach's SDDMM".
func (GraphApproach) SDDMM(ctx *Ctx, g *Graphs, x *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	coo, err := ctx.ensureCOO(g)
	if err != nil {
		return nil, err
	}
	var wMat *DeviceMatrix
	err = ctx.track(PhaseEdgeWeight, func() error {
		var err error
		wMat, err = AllocDeviceMatrix(ctx.Dev, coo.NumEdges(), m.WeightCols(x.M.Cols), "ga-edge-weights")
		if err != nil {
			return err
		}
		k := ctx.Dev.StartKernel("ga-sddmm")
		// A thread block covers a small contiguous edge range; blocks are
		// spread round-robin across SMs, so edges of one dst still scatter
		// across SMs (the cache bloat), with only intra-block reuse.
		nBlocks := (coo.NumEdges() + edgeBlock - 1) / edgeBlock
		runSMs(k, nBlocks, func(sm *gpusim.SMContext, b int) {
			lo, hi := b*edgeBlock, (b+1)*edgeBlock
			if hi > coo.NumEdges() {
				hi = coo.NumEdges()
			}
			for e := lo; e < hi; e++ {
				s, d := coo.Src[e], coo.Dst[e]
				sm.Read(x.RowAddr(int(s)), x.RowBytes())
				sm.Read(x.RowAddr(int(d)), x.RowBytes()) // dst row re-fetched per block: cache bloat
				sm.AddFLOPs(m.edgeWeight(x.M.Row(int(s)), x.M.Row(int(d)), wMat.M.Row(e)))
				sm.Write(wMat.RowAddr(e), wMat.RowBytes())
			}
		})
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return wMat, nil
}

// edgeBlock is the number of edges one Graph-approach thread block covers.
const edgeBlock = 4

// Backward implements Strategy: COO→CSC translation (charged), a src-side
// gradient pass scheduled vertex-by-vertex round-robin (no dst-chunk
// locality), and — for edge-weighted modes — an edge-wise dst-side pass
// with per-SM partials.
func (GraphApproach) Backward(ctx *Ctx, g *Graphs, x, dOut *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	coo, err := ctx.ensureCOO(g)
	if err != nil {
		return nil, err
	}
	csc, err := ctx.ensureCSC(g)
	if err != nil {
		return nil, err
	}
	if dOut.M.Rows != coo.NumDst {
		return nil, errors.New("kernels: backward gradient rows != NumDst")
	}
	dim := x.M.Cols
	invDeg := ctx.InvDegCOO(coo)

	var dx *DeviceMatrix
	err = ctx.track(PhaseAggregation, func() error {
		var err error
		dx, err = AllocDeviceMatrix(ctx.Dev, coo.NumSrc, dim, "ga-bwp-dx")
		if err != nil {
			return err
		}
		k := ctx.Dev.StartKernel("ga-spmm-bwp")
		numSMs := k.NumSMs()
		scratch := ctx.msgScratch(numSMs, dim)
		runSMs(k, csc.NumSrc, func(sm *gpusim.SMContext, s int) {
			dMsg := scratch[s%numSMs]
			sm.Read(x.RowAddr(s), x.RowBytes())
			srcRow := x.M.Row(s)
			dxRow := dx.M.Row(s)
			for _, d := range csc.Neighbors(graph.VID(s)) {
				sm.Read(dOut.RowAddr(int(d)), dOut.RowBytes()) // dOut rows re-fetched per src
				sm.Read(x.RowAddr(int(d)), x.RowBytes())
				scale := aggrScale(m, invDeg, d)
				dORow := dOut.M.Row(int(d))
				for j := range dMsg {
					dMsg[j] = dORow[j] * scale
				}
				sm.AddFLOPs(int64(dim))
				sm.AddFLOPs(m.msgBackwardSrc(srcRow, x.M.Row(int(d)), dMsg, dxRow))
			}
			sm.Write(dx.RowAddr(s), dx.RowBytes())
		})
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}

	if m.HasDstGrad() {
		err = ctx.track(PhaseEdgeWeight, func() error {
			k := ctx.Dev.StartKernel("ga-sddmm-bwp")
			numSMs := k.NumSMs()
			scratch := ctx.msgScratch(numSMs, dim)
			// Edges are scheduled per-edge round-robin (e ≡ smID mod
			// numSMs), so one SM touches at most its edge share of dsts.
			fa := ctx.partials(numSMs, coo.NumDst, dim, (coo.NumEdges()+numSMs-1)/numSMs)
			runSMs(k, coo.NumEdges(), func(sm *gpusim.SMContext, e int) {
				smID := e % numSMs
				s, d := coo.Src[e], coo.Dst[e]
				sm.Read(x.RowAddr(int(s)), x.RowBytes())
				sm.Read(x.RowAddr(int(d)), x.RowBytes())
				sm.Read(dOut.RowAddr(int(d)), dOut.RowBytes())
				dMsg := scratch[smID]
				scale := aggrScale(m, invDeg, d)
				dORow := dOut.M.Row(int(d))
				for j := range dMsg {
					dMsg[j] = dORow[j] * scale
				}
				sm.AddFLOPs(int64(dim))
				row := fa.row(smID, d)
				sm.AddFLOPs(m.msgBackwardDst(x.M.Row(int(s)), x.M.Row(int(d)), dMsg, row))
				sm.Write(dx.RowAddr(int(d)), dx.RowBytes())
			})
			runSMsChunked(k, coo.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
				for d := lo; d < hi; d++ {
					dxRow := dx.M.Row(d)
					for smID := 0; smID < numSMs; smID++ {
						if prow := fa.get(smID, d); prow != nil {
							sm.Read(dx.RowAddr(d), dx.RowBytes())
							for j := range dxRow {
								dxRow[j] += prow[j]
							}
							sm.AddFLOPs(int64(dim))
						}
					}
					sm.Write(dx.RowAddr(d), dx.RowBytes())
				}
			})
			k.Finish()
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dx, nil
}
