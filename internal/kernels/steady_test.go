package kernels

import (
	"runtime"
	"testing"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/tensor"
)

// TestGraphApproachForwardSteadyAllocs guards the flat-accumulator rework:
// with a warm Ctx (scratch, flat partials and per-graph memos established)
// the Graph-approach forward must stay within a small constant allocation
// budget per launch — the per-SM partial maps it replaced cost ~1.8k
// allocations per launch on this shape. What remains is the out/weight
// device matrices, the kernel launch bookkeeping and the tracking closures.
func TestGraphApproachForwardSteadyAllocs(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	g, x := workspaceGraph(t)
	dev := testDevice()
	ctx := NewCtx(dev)
	xd, err := WrapDeviceMatrix(dev, x.Clone(), "x")
	if err != nil {
		t.Fatal(err)
	}
	modes := NGCFModes()
	run := func() {
		out, err := GraphApproach{}.Forward(ctx, g, xd, modes)
		if err != nil {
			t.Fatal(err)
		}
		out.Free()
	}
	// Warm the Ctx workspace, the graph memos (COO expansion, invDeg) and
	// the tensor pool.
	for i := 0; i < 3; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(20, run)
	if allocs > 48 {
		t.Errorf("GraphApproach.Forward steady state allocates %.1f times per launch, want <= 48", allocs)
	}
}

// TestGraphApproachDeterminismAcrossWorkerCounts is the kernel-level
// analogue of the tensor package's worker-count test: the pooled runSMs
// dispatch and the flat accumulator must produce bitwise identical outputs
// and identical device counters at GOMAXPROCS 1 and 8.
func TestGraphApproachDeterminismAcrossWorkerCounts(t *testing.T) {
	g, x := workspaceGraph(t)
	modes := NGCFModes()

	type result struct {
		fwd, bwd *tensor.Matrix
		counters gpusim.Counters
	}
	runAt := func(workers int) result {
		prev := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
		dev := testDevice()
		ctx := NewCtx(dev)
		gg := &Graphs{CSR: g.CSR, CSC: g.CSC}
		xd, err := WrapDeviceMatrix(dev, x.Clone(), "x")
		if err != nil {
			t.Fatal(err)
		}
		out, err := GraphApproach{}.Forward(ctx, gg, xd, modes)
		if err != nil {
			t.Fatal(err)
		}
		dOut, err := WrapDeviceMatrix(dev, out.M.Clone(), "dout")
		if err != nil {
			t.Fatal(err)
		}
		dx, err := GraphApproach{}.Backward(ctx, gg, xd, dOut, modes)
		if err != nil {
			t.Fatal(err)
		}
		return result{fwd: out.M.Clone(), bwd: dx.M.Clone(), counters: dev.Snapshot()}
	}

	serial := runAt(1)
	parallel := runAt(8)
	for i, v := range serial.fwd.Data {
		if parallel.fwd.Data[i] != v {
			t.Fatalf("forward element %d differs across worker counts: %v vs %v", i, parallel.fwd.Data[i], v)
		}
	}
	for i, v := range serial.bwd.Data {
		if parallel.bwd.Data[i] != v {
			t.Fatalf("backward element %d differs across worker counts: %v vs %v", i, parallel.bwd.Data[i], v)
		}
	}
	if serial.counters != parallel.counters {
		t.Errorf("device counters differ across worker counts:\n  serial   %+v\n  parallel %+v", serial.counters, parallel.counters)
	}
}
