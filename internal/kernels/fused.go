package kernels

import "graphtensor/internal/graph"

// FusedMM reproduces the FusedMM idea (§VII [23]): a single kernel that
// fuses the SDDMM (edge weighting) and SpMM (aggregation) so per-edge
// weights are consumed the instant they are produced, never written to
// global memory. FusedMM targets CPUs; NAPA already fuses the two on the
// GPU schedule (see NAPA.Forward). This strategy exists to let the
// benchmark harness measure the global-memory traffic a *non-fused* NAPA
// (materializing the weight matrix) would pay versus the fused one — the
// design-space point the paper's related-work discussion raises.
//
// Unlike NAPA.Forward (which fuses), Unfused materializes the edge-weight
// matrix between NeighborApply and Pull, so its global stores/loads include
// the weight traffic. Both produce identical results.
type Unfused struct{}

// Name implements Strategy.
func (Unfused) Name() string { return "NAPA-unfused" }

// Forward implements Strategy: NeighborApply writes the weight matrix to
// global memory, then Pull reads it back (the non-fused schedule).
func (Unfused) Forward(ctx *Ctx, g *Graphs, x *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	csr, err := ctx.ensureCSR(g)
	if err != nil {
		return nil, err
	}
	wMat, err := NeighborApplyKernel(ctx, csr, x, m)
	if err != nil {
		return nil, err
	}
	out, err := PullKernel(ctx, csr, x, wMat, m)
	if err != nil {
		return nil, err
	}
	wMat.Free()
	return out, nil
}

// Backward implements Strategy by delegating to NAPA (the backward pass is
// identical; only the forward differs in whether weights are materialized).
func (Unfused) Backward(ctx *Ctx, g *Graphs, x, dOut *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	return NAPA{}.Backward(ctx, g, x, dOut, m)
}

// FusedCPU runs the SDDMM+SpMM fusion on a single core with no SM
// simulation — the CPU execution model FusedMM actually targets. It serves
// as the CPU baseline point; it returns the same result as NAPA.Forward but
// performs no parallel SM scheduling and records no cache traffic (a CPU
// has a very different memory hierarchy). Returns the result and the FLOPs.
func FusedCPU(csr *graph.BCSR, x *MatrixView, m Modes) (out *MatrixView, flops int64) {
	dim := x.Cols
	out = newMatrixView(csr.NumDst, dim)
	w := make([]float32, maxIntK(m.WeightCols(dim), 1))
	msg := make([]float32, dim)
	invDeg := make([]float32, csr.NumDst)
	for d := 0; d < csr.NumDst; d++ {
		if deg := csr.Degree(graph.VID(d)); deg > 0 {
			invDeg[d] = 1 / float32(deg)
		}
	}
	for d := 0; d < csr.NumDst; d++ {
		orow := out.Row(d)
		scale := float32(1)
		if m.F == AggrMean {
			scale = invDeg[d]
		}
		dstRow := x.Row(d)
		for _, s := range csr.Neighbors(graph.VID(d)) {
			srcRow := x.Row(int(s))
			var wv []float32
			if m.HasEdgeWeight() {
				flops += m.edgeWeight(srcRow, dstRow, w)
				wv = w[:m.WeightCols(dim)]
			}
			flops += m.message(srcRow, wv, msg)
			for j := range orow {
				orow[j] += msg[j] * scale
			}
			flops += int64(2 * dim)
		}
	}
	return out, flops
}

// MatrixView is a thin host matrix for the CPU fused path (no device).
type MatrixView struct {
	Rows, Cols int
	Data       []float32
}

func newMatrixView(rows, cols int) *MatrixView {
	return &MatrixView{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i.
func (m *MatrixView) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// ViewFromMatrix wraps an existing host matrix's storage as a MatrixView.
func ViewFromMatrix(rows, cols int, data []float32) *MatrixView {
	return &MatrixView{Rows: rows, Cols: cols, Data: data}
}
