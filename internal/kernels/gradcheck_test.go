package kernels

import (
	"testing"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/tensor"
)

// TestBackwardMatchesFiniteDifference verifies dX from each strategy's
// Backward against a central finite-difference estimate of d(0.5‖fwd‖²)/dX.
func TestBackwardMatchesFiniteDifference(t *testing.T) {
	rng := tensor.NewRNG(101)
	for _, m := range []Modes{GCNModes(), NGCFModes(), AttentionModes()} {
		csr := randomBipartite(6, 11, 3, rng)
		x := tensor.Random(11, 4, 0.5, rng)

		// Analytic gradient: backward with dOut = forward output.
		dev := gpusim.NewDevice(func() gpusim.Config { c := gpusim.DefaultConfig(); c.NumSMs = 4; return c }())
		ctx := NewCtx(dev)
		xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
		g := &Graphs{CSR: csr}
		out, err := NAPA{}.Forward(ctx, g, xd, m)
		if err != nil {
			t.Fatal(err)
		}
		dOut, _ := WrapDeviceMatrix(dev, out.M.Clone(), "dout")
		dx, err := NAPA{}.Backward(ctx, g, xd, dOut, m)
		if err != nil {
			t.Fatal(err)
		}

		// Numeric gradient by central differences on each x entry.
		const eps = 1e-3
		maxErr := 0.0
		for i := 0; i < x.Rows; i++ {
			for j := 0; j < x.Cols; j++ {
				orig := x.At(i, j)
				x.Set(i, j, orig+eps)
				lp := napaLoss(g, x, m)
				x.Set(i, j, orig-eps)
				lm := napaLoss(g, x, m)
				x.Set(i, j, orig)
				numeric := (lp - lm) / (2 * eps)
				analytic := float64(dx.M.At(i, j))
				d := numeric - analytic
				if d < 0 {
					d = -d
				}
				if d > maxErr {
					maxErr = d
				}
			}
		}
		if maxErr > 5e-2 {
			t.Errorf("modes f=%v g=%v h=%v: grad check max err %g", m.F, m.G, m.H, maxErr)
		}
	}
}

// napaLoss returns 0.5·‖NAPA.Forward(x)‖².
func napaLoss(g *Graphs, x *tensor.Matrix, m Modes) float64 {
	dev := gpusim.NewDevice(func() gpusim.Config { c := gpusim.DefaultConfig(); c.NumSMs = 4; return c }())
	ctx := NewCtx(dev)
	xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
	out, err := NAPA{}.Forward(ctx, &Graphs{CSR: g.CSR}, xd, m)
	if err != nil {
		panic(err)
	}
	var loss float64
	for _, v := range out.M.Data {
		loss += 0.5 * float64(v) * float64(v)
	}
	return loss
}

// TestAllStrategiesBackwardAgree checks that every strategy's Backward
// produces the same dX (they implement the same math, different schedules).
func TestAllStrategiesBackwardAgree(t *testing.T) {
	rng := tensor.NewRNG(202)
	for _, m := range allModes {
		csr := randomBipartite(9, 16, 4, rng)
		x := tensor.Random(16, 5, 1, rng)
		dOut := tensor.Random(9, 5, 1, rng)
		var ref *tensor.Matrix
		for _, s := range allStrategies {
			dev := gpusim.NewDevice(func() gpusim.Config { c := gpusim.DefaultConfig(); c.NumSMs = 4; return c }())
			ctx := NewCtx(dev)
			xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
			dod, _ := WrapDeviceMatrix(dev, dOut.Clone(), "dout")
			dx, err := s.Backward(ctx, &Graphs{CSR: csr}, xd, dod, m)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if ref == nil {
				ref = dx.M.Clone()
				continue
			}
			if diff := dx.M.MaxAbsDiff(ref); diff > 2e-5 {
				t.Errorf("%s backward diverges from NAPA by %g (modes %v)", s.Name(), diff, m)
			}
		}
	}
}
