package kernels

import (
	"errors"
	"fmt"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/tensor"
)

// Combination-first kernels (§V-A, Fig 11c bottom): the dynamic kernel
// placement rewrite MLP(f(h(X))) = σ(W·f(h(X)) + b) = σ(f(h(W·X)) + b),
// valid because the MatMul commutes with any aggregation that is linear in
// the transformed operand. Three exact cases are supported:
//
//   - GCN (no edge weighting): aggregate W·X directly.
//   - Scalar weights (WeightDot+CombineScale): the weights are computed
//     from the ORIGINAL embeddings and then scale the transformed rows —
//     Σ α_e·(W·x_s) = W·Σ α_e·x_s.
//   - NGCF (WeightElemProduct+CombineAdd): the message x_s + x_s⊙x_d
//     splits into a linear branch (aggregate W·x_s) and a weight branch
//     whose per-edge vectors w_e = x_s⊙x_d are aggregated untransformed
//     and multiplied by W once per dst: W·Σ w_e.
//
// ErrNotRearrangeable is returned for mode combinations where no exact
// rewrite exists; the orchestrator then keeps the aggregation-first order.
var ErrNotRearrangeable = errors.New("kernels: layer is not exactly rearrangeable")

// CombFirstResult carries the forward products the backward pass needs.
type CombFirstResult struct {
	// Out is the pre-bias combined output (NumDst × nHidden).
	Out *DeviceMatrix
	// T is the transformed input (NumSrc × nHidden).
	T *DeviceMatrix
	// WAgg is the aggregated edge-weight matrix (NumDst × dim), only for
	// vector-weight modes.
	WAgg *DeviceMatrix
}

// CombFirstSupported reports whether the modes admit an exact
// combination-first placement.
func CombFirstSupported(m Modes) bool {
	switch {
	case m.G == WeightNone && m.H == CombineIdentity:
		return true
	case m.G == WeightElemProduct && m.H == CombineAdd:
		return true
	case m.G == WeightDot && m.H == CombineScale:
		return true
	}
	return false
}

// CombFirstForward executes one layer in combination-first order on the
// NAPA (dst-centric, feature-wise) schedule. x is the original input
// (NumSrc × nFeat); w is the MLP weight (nFeat × nHidden). The returned
// Out is the pre-bias output, ready for BiasReLU.
func CombFirstForward(ctx *Ctx, g *Graphs, x *DeviceMatrix, w *tensor.Matrix, m Modes) (*CombFirstResult, error) {
	if !CombFirstSupported(m) {
		return nil, ErrNotRearrangeable
	}
	csr, err := ctx.ensureCSR(g)
	if err != nil {
		return nil, err
	}
	res := &CombFirstResult{}

	// Combination's MatMul runs first, on the untransformed input.
	res.T, err = Linear(ctx, x, w, "combfirst-t")
	if err != nil {
		return nil, err
	}

	switch {
	case m.G == WeightNone:
		// Pull over the transformed rows.
		res.Out, err = NAPA{}.Forward(ctx, g, res.T, m)
		if err != nil {
			return nil, err
		}
	case m.G == WeightDot:
		// NeighborApply on original x, Pull scales transformed rows.
		res.Out, err = napaScaledPull(ctx, csr, x, res.T, m)
		if err != nil {
			return nil, err
		}
	default: // NGCF split form
		// Branch 1: Pull-identity over transformed rows.
		idModes := Modes{F: m.F, G: WeightNone, H: CombineIdentity}
		branch1, err := NAPA{}.Forward(ctx, g, res.T, idModes)
		if err != nil {
			return nil, err
		}
		// Branch 2: aggregate untransformed edge weights, then one MatMul.
		res.WAgg, err = napaWeightPull(ctx, csr, x, m)
		if err != nil {
			return nil, err
		}
		branch2, err := Linear(ctx, res.WAgg, w, "combfirst-waggW")
		if err != nil {
			return nil, err
		}
		err = ctx.track(PhaseCombination, func() error {
			k := ctx.Dev.StartKernel("combfirst-sum")
			runSMsChunked(k, branch1.M.Rows, func(sm *gpusim.SMContext, lo, hi int) {
				for i := lo; i < hi; i++ {
					sm.Read(branch1.RowAddr(i), branch1.RowBytes())
					sm.Read(branch2.RowAddr(i), branch2.RowBytes())
					r1, r2 := branch1.M.Row(i), branch2.M.Row(i)
					for j := range r1 {
						r1[j] += r2[j]
					}
					sm.AddFLOPs(int64(len(r1)))
					sm.Write(branch1.RowAddr(i), branch1.RowBytes())
				}
			})
			k.Finish()
			return nil
		})
		if err != nil {
			return nil, err
		}
		branch2.Free()
		res.Out = branch1
	}
	return res, nil
}

// CombFirstBackward propagates dPre (NumDst × nHidden, already through the
// ReLU/bias backward) to dX (NumSrc × nFeat), accumulating dW.
func CombFirstBackward(ctx *Ctx, g *Graphs, x *DeviceMatrix, res *CombFirstResult,
	dPre *DeviceMatrix, w, dw *tensor.Matrix, m Modes) (*DeviceMatrix, error) {
	if !CombFirstSupported(m) {
		return nil, ErrNotRearrangeable
	}
	csr, err := ctx.ensureCSR(g)
	if err != nil {
		return nil, err
	}
	switch {
	case m.G == WeightNone:
		// dT = Pullᵀ(dPre); then dX, dW through the Linear.
		dT, err := NAPA{}.Backward(ctx, g, res.T, dPre, m)
		if err != nil {
			return nil, err
		}
		return LinearBackward(ctx, x, dT, w, dw, "combfirst-dx")
	case m.G == WeightDot:
		return napaScaledPullBackward(ctx, g, csr, x, res, dPre, w, dw, m)
	default: // NGCF split form
		// Branch 1: identity pull over T.
		idModes := Modes{F: m.F, G: WeightNone, H: CombineIdentity}
		dT, err := NAPA{}.Backward(ctx, g, res.T, dPre, idModes)
		if err != nil {
			return nil, err
		}
		dx, err := LinearBackward(ctx, x, dT, w, dw, "combfirst-dx")
		if err != nil {
			return nil, err
		}
		// Branch 2: dWAgg = dPre·Wᵀ and dW += WAggᵀ·dPre...
		dWAgg, err := LinearBackward(ctx, res.WAgg, dPre, w, dw, "combfirst-dwagg")
		if err != nil {
			return nil, err
		}
		// ...then push the aggregated-weight gradient through g.
		if err := napaWeightPullBackward(ctx, g, csr, x, dWAgg, dx, m); err != nil {
			return nil, err
		}
		dWAgg.Free()
		return dx, nil
	}
}

// napaScaledPull aggregates α_e·t_s where the scalar weights α_e come from
// the original embeddings (NeighborApply on x) and t is the transformed
// input.
func napaScaledPull(ctx *Ctx, csr *graph.BCSR, x, t *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	var wMat *DeviceMatrix
	err := ctx.track(PhaseEdgeWeight, func() error {
		var err error
		wMat, err = AllocDeviceMatrix(ctx.Dev, csr.NumEdges(), 1, "combfirst-alphas")
		if err != nil {
			return err
		}
		k := ctx.Dev.StartKernel("napa-neighborapply")
		runSMsChunked(k, csr.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
			for d := lo; d < hi; d++ {
				sm.Read(x.RowAddr(d), x.RowBytes())
				base := int(csr.Ptr[d])
				for i, s := range csr.Neighbors(graph.VID(d)) {
					e := base + i
					sm.Read(x.RowAddr(int(s)), x.RowBytes())
					sm.AddFLOPs(m.edgeWeight(x.M.Row(int(s)), x.M.Row(d), wMat.M.Row(e)))
					sm.Write(wMat.RowAddr(e), wMat.RowBytes())
				}
			}
		})
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out *DeviceMatrix
	err = ctx.track(PhaseAggregation, func() error {
		var err error
		out, err = AllocDeviceMatrix(ctx.Dev, csr.NumDst, t.M.Cols, "combfirst-out")
		if err != nil {
			return err
		}
		invDeg := ctx.InvDeg(csr)
		k := ctx.Dev.StartKernel("napa-pull")
		runSMsChunked(k, csr.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
			for d := lo; d < hi; d++ {
				orow := out.M.Row(d)
				scale := aggrScale(m, invDeg, graph.VID(d))
				base := int(csr.Ptr[d])
				for i, s := range csr.Neighbors(graph.VID(d)) {
					e := base + i
					sm.Read(t.RowAddr(int(s)), t.RowBytes())
					sm.Read(wMat.RowAddr(e), wMat.RowBytes())
					alpha := wMat.M.At(e, 0) * scale
					trow := t.M.Row(int(s))
					for j := range orow {
						orow[j] += alpha * trow[j]
					}
					sm.AddFLOPs(int64(2 * len(orow)))
				}
				sm.Write(out.RowAddr(d), out.RowBytes())
			}
		})
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}
	wMat.Free()
	return out, nil
}

// napaScaledPullBackward is the backward of napaScaledPull: gradients flow
// to t (then through the Linear to x and w) and to x through the scalar
// weights.
func napaScaledPullBackward(ctx *Ctx, g *Graphs, csr *graph.BCSR, x *DeviceMatrix,
	res *CombFirstResult, dPre *DeviceMatrix, w, dw *tensor.Matrix, m Modes) (*DeviceMatrix, error) {

	csc, err := ctx.ensureCSC(g)
	if err != nil {
		return nil, err
	}
	invDeg := ctx.InvDeg(csr)
	dim := x.M.Cols
	hid := res.T.M.Cols

	// dT and the weight-path gradient to x, per src over CSC.
	dT, err := AllocDeviceMatrix(ctx.Dev, csr.NumSrc, hid, "combfirst-dt")
	if err != nil {
		return nil, err
	}
	dxW := tensor.Get(csr.NumSrc, dim) // weight-path gradient (host staging, pooled)
	err = ctx.track(PhaseAggregation, func() error {
		k := ctx.Dev.StartKernel("napa-pull-bwp")
		runSMsChunked(k, csc.NumSrc, func(sm *gpusim.SMContext, lo, hi int) {
			for s := lo; s < hi; s++ {
				sm.Read(x.RowAddr(s), x.RowBytes())
				sm.Read(res.T.RowAddr(s), res.T.RowBytes())
				srcX := x.M.Row(s)
				srcT := res.T.M.Row(s)
				dTRow := dT.M.Row(s)
				dxRow := dxW.Row(s)
				for _, d := range csc.Neighbors(graph.VID(s)) {
					sm.Read(dPre.RowAddr(int(d)), dPre.RowBytes())
					sm.Read(x.RowAddr(int(d)), x.RowBytes())
					scale := aggrScale(m, invDeg, d)
					dPreRow := dPre.M.Row(int(d))
					dstX := x.M.Row(int(d))
					// α and dα for this edge.
					var alpha float32
					for j := 0; j < dim; j++ {
						alpha += srcX[j] * dstX[j]
					}
					alpha /= float32(dim)
					var dAlpha float32
					for j := 0; j < hid; j++ {
						dTRow[j] += scale * alpha * dPreRow[j]
						dAlpha += scale * dPreRow[j] * srcT[j]
					}
					invDim := 1 / float32(dim)
					for j := 0; j < dim; j++ {
						dxRow[j] += dAlpha * dstX[j] * invDim
					}
					sm.AddFLOPs(int64(2*dim + 4*hid))
				}
				sm.Write(dT.RowAddr(s), dT.RowBytes())
			}
		})
		// dst side of dα: dX_d += Σ_s dα·x_s/dim, per dst over CSR.
		runSMsChunked(k, csr.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
			for d := lo; d < hi; d++ {
				sm.Read(dPre.RowAddr(d), dPre.RowBytes())
				sm.Read(x.RowAddr(d), x.RowBytes())
				scale := aggrScale(m, invDeg, graph.VID(d))
				dPreRow := dPre.M.Row(d)
				dxRow := dxW.Row(d)
				for _, s := range csr.Neighbors(graph.VID(d)) {
					sm.Read(x.RowAddr(int(s)), x.RowBytes())
					sm.Read(res.T.RowAddr(int(s)), res.T.RowBytes())
					srcX := x.M.Row(int(s))
					srcT := res.T.M.Row(int(s))
					var dAlpha float32
					for j := 0; j < hid; j++ {
						dAlpha += scale * dPreRow[j] * srcT[j]
					}
					invDim := 1 / float32(dim)
					for j := 0; j < dim; j++ {
						dxRow[j] += dAlpha * srcX[j] * invDim
					}
					sm.AddFLOPs(int64(2*hid + 2*dim))
				}
			}
		})
		k.Finish()
		return nil
	})
	if err != nil {
		return nil, err
	}

	dx, err := LinearBackward(ctx, x, dT, w, dw, "combfirst-dx")
	if err != nil {
		return nil, err
	}
	for i := range dx.M.Data {
		dx.M.Data[i] += dxW.Data[i]
	}
	tensor.Put(dxW)
	dT.Free()
	return dx, nil
}

// napaWeightPull aggregates the raw edge-weight vectors per dst:
// WAgg[d] = f_{s∈N(d)} g(x_s, x_d) — the NGCF weight branch.
func napaWeightPull(ctx *Ctx, csr *graph.BCSR, x *DeviceMatrix, m Modes) (*DeviceMatrix, error) {
	var out *DeviceMatrix
	err := ctx.track(PhaseEdgeWeight, func() error {
		var err error
		out, err = AllocDeviceMatrix(ctx.Dev, csr.NumDst, x.M.Cols, "combfirst-wagg")
		if err != nil {
			return err
		}
		invDeg := ctx.InvDeg(csr)
		k := ctx.Dev.StartKernel("napa-weightpull")
		wS := ctx.wScratch(k.NumSMs(), x.M.Cols)
		runSMsChunkedIdx(k, csr.NumDst, func(sm *gpusim.SMContext, smID, lo, hi int) {
			w := wS[smID]
			for d := lo; d < hi; d++ {
				sm.Read(x.RowAddr(d), x.RowBytes())
				dstRow := x.M.Row(d)
				orow := out.M.Row(d)
				scale := aggrScale(m, invDeg, graph.VID(d))
				for _, s := range csr.Neighbors(graph.VID(d)) {
					sm.Read(x.RowAddr(int(s)), x.RowBytes())
					sm.AddFLOPs(m.edgeWeight(x.M.Row(int(s)), dstRow, w))
					for j := range orow {
						orow[j] += w[j] * scale
					}
					sm.AddFLOPs(int64(2 * len(orow)))
				}
				sm.Write(out.RowAddr(d), out.RowBytes())
			}
		})
		k.Finish()
		return nil
	})
	return out, err
}

// napaWeightPullBackward pushes dWAgg (NumDst × dim) through the edge
// weight function g into dx, accumulating both endpoint gradients.
func napaWeightPullBackward(ctx *Ctx, g *Graphs, csr *graph.BCSR, x, dWAgg, dx *DeviceMatrix, m Modes) error {
	if m.G != WeightElemProduct {
		return fmt.Errorf("kernels: weight-pull backward supports elem-product only, got %v", m.G)
	}
	csc, err := ctx.ensureCSC(g)
	if err != nil {
		return err
	}
	invDeg := ctx.InvDeg(csr)
	return ctx.track(PhaseEdgeWeight, func() error {
		k := ctx.Dev.StartKernel("napa-weightpull-bwp")
		// src side: d(w_e)/d(x_s) = x_d.
		runSMsChunked(k, csc.NumSrc, func(sm *gpusim.SMContext, lo, hi int) {
			for s := lo; s < hi; s++ {
				sm.Read(x.RowAddr(s), x.RowBytes())
				dxRow := dx.M.Row(s)
				for _, d := range csc.Neighbors(graph.VID(s)) {
					sm.Read(dWAgg.RowAddr(int(d)), dWAgg.RowBytes())
					sm.Read(x.RowAddr(int(d)), x.RowBytes())
					scale := aggrScale(m, invDeg, d)
					dRow := dWAgg.M.Row(int(d))
					dstX := x.M.Row(int(d))
					for j := range dxRow {
						dxRow[j] += scale * dRow[j] * dstX[j]
					}
					sm.AddFLOPs(int64(3 * len(dxRow)))
				}
				sm.Write(dx.RowAddr(s), dx.RowBytes())
			}
		})
		// dst side: d(w_e)/d(x_d) = x_s.
		runSMsChunked(k, csr.NumDst, func(sm *gpusim.SMContext, lo, hi int) {
			for d := lo; d < hi; d++ {
				sm.Read(dWAgg.RowAddr(d), dWAgg.RowBytes())
				scale := aggrScale(m, invDeg, graph.VID(d))
				dRow := dWAgg.M.Row(d)
				dxRow := dx.M.Row(d)
				for _, s := range csr.Neighbors(graph.VID(d)) {
					sm.Read(x.RowAddr(int(s)), x.RowBytes())
					srcX := x.M.Row(int(s))
					for j := range dxRow {
						dxRow[j] += scale * dRow[j] * srcX[j]
					}
					sm.AddFLOPs(int64(3 * len(dxRow)))
				}
				sm.Write(dx.RowAddr(d), dx.RowBytes())
			}
		})
		k.Finish()
		return nil
	})
}
