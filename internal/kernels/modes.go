package kernels

import "fmt"

// AggrMode is the aggregation function f of §II-A: how neighbor messages
// accumulate into the dst embedding.
type AggrMode int

const (
	// AggrSum accumulates messages.
	AggrSum AggrMode = iota
	// AggrMean divides the sum by the dst's sampled degree (GCN default).
	AggrMean
	// AggrMax takes the elementwise maximum over the dst's messages
	// (GraphSAGE's max-pooling aggregator). It is an extension beyond the
	// paper's evaluated GCN/NGCF, exercising a non-linear reduction whose
	// gradient flows only to the arg-max source per feature.
	AggrMax
)

// String names the mode.
func (m AggrMode) String() string {
	switch m {
	case AggrSum:
		return "sum"
	case AggrMean:
		return "mean"
	case AggrMax:
		return "max"
	}
	return fmt.Sprintf("AggrMode(%d)", int(m))
}

// Reduction reports whether the aggregation is the non-linear max pooling
// (which needs arg-max tracking) rather than a linear sum/mean.
func (m AggrMode) IsMax() bool { return m == AggrMax }

// WeightMode is the edge weight function g of §II-A: computed from the src
// and dst embeddings of each edge.
type WeightMode int

const (
	// WeightNone disables edge weighting (GCN).
	WeightNone WeightMode = iota
	// WeightElemProduct sets w_e = x_src ⊙ x_dst (NGCF similarity).
	WeightElemProduct
	// WeightDot sets the scalar w_e = ⟨x_src, x_dst⟩ / dim (attention-like
	// similarity, the GAT-flavoured mode).
	WeightDot
)

// String names the mode.
func (m WeightMode) String() string {
	switch m {
	case WeightNone:
		return "none"
	case WeightElemProduct:
		return "elem-product"
	case WeightDot:
		return "dot"
	}
	return fmt.Sprintf("WeightMode(%d)", int(m))
}

// CombineMode is the function h of §II-A: how the edge weight transforms
// the src embedding into the message.
type CombineMode int

const (
	// CombineIdentity passes the src embedding through (no weighting).
	CombineIdentity CombineMode = iota
	// CombineAdd sets msg = x_src + w_e (NGCF's sum-based accumulation).
	CombineAdd
	// CombineScale sets msg = w_e · x_src for a scalar weight.
	CombineScale
)

// String names the mode.
func (m CombineMode) String() string {
	switch m {
	case CombineIdentity:
		return "identity"
	case CombineAdd:
		return "add"
	case CombineScale:
		return "scale"
	}
	return fmt.Sprintf("CombineMode(%d)", int(m))
}

// Modes bundles the three per-layer function choices (the paper's mode
// variables, Fig 10 lines 2-3).
type Modes struct {
	F AggrMode
	G WeightMode
	H CombineMode
}

// GCNModes returns the mode set of a GCN layer: mean aggregation, no edge
// weighting.
func GCNModes() Modes { return Modes{F: AggrMean, G: WeightNone, H: CombineIdentity} }

// NGCFModes returns the mode set of an NGCF layer: mean aggregation with
// element-wise-product edge weights accumulated by sum.
func NGCFModes() Modes { return Modes{F: AggrMean, G: WeightElemProduct, H: CombineAdd} }

// AttentionModes returns a GAT-flavoured mode set: scalar dot-similarity
// edge weights scaling the src embedding.
func AttentionModes() Modes { return Modes{F: AggrSum, G: WeightDot, H: CombineScale} }

// HasEdgeWeight reports whether the mode set computes edge weights (i.e.
// needs the SDDMM stage).
func (m Modes) HasEdgeWeight() bool { return m.G != WeightNone }

// Validate rejects unsupported (G, H) combinations.
func (m Modes) Validate() error {
	switch {
	case m.G == WeightNone && m.H == CombineIdentity,
		m.G == WeightElemProduct && m.H == CombineAdd,
		m.G == WeightElemProduct && m.H == CombineScale,
		m.G == WeightDot && m.H == CombineScale:
		return nil
	}
	return fmt.Errorf("kernels: unsupported mode combination g=%v h=%v", m.G, m.H)
}

// WeightCols returns the width of the per-edge weight vector g produces.
func (m Modes) WeightCols(dim int) int {
	switch m.G {
	case WeightDot:
		return 1
	case WeightNone:
		return 0
	default:
		return dim
	}
}

// edgeWeight computes w_e = g(x_src, x_dst) into out (len WeightCols) and
// returns the FLOPs spent.
func (m Modes) edgeWeight(src, dst, out []float32) int64 {
	switch m.G {
	case WeightElemProduct:
		for i := range src {
			out[i] = src[i] * dst[i]
		}
		return int64(len(src))
	case WeightDot:
		var acc float32
		for i := range src {
			acc += src[i] * dst[i]
		}
		out[0] = acc / float32(len(src))
		return int64(2*len(src) + 1)
	}
	return 0
}

// message computes msg = h(x_src, w) into out (len dim) and returns FLOPs.
// w may be nil when G == WeightNone.
func (m Modes) message(src, w, out []float32) int64 {
	switch m.H {
	case CombineIdentity:
		copy(out, src)
		return 0
	case CombineAdd:
		for i := range src {
			out[i] = src[i] + w[i]
		}
		return int64(len(src))
	case CombineScale:
		s := w[0]
		if len(w) == len(src) {
			// vector weight: elementwise scale
			for i := range src {
				out[i] = src[i] * w[i]
			}
			return int64(len(src))
		}
		for i := range src {
			out[i] = src[i] * s
		}
		return int64(len(src))
	}
	return 0
}

// msgBackwardSrc accumulates one edge's message gradient into the src
// vertex gradient dSrc. dMsg already carries the aggregation scale (1/deg
// for mean). Returns FLOPs. The paper's f′/h′ (Fig 3b): outputs are vectors
// for src vertices, traversed via CSC in BWP.
func (m Modes) msgBackwardSrc(src, dst, dMsg, dSrc []float32) int64 {
	switch {
	case m.G == WeightNone && m.H == CombineIdentity:
		for i := range dMsg {
			dSrc[i] += dMsg[i]
		}
		return int64(len(dMsg))
	case m.G == WeightElemProduct && m.H == CombineAdd:
		// msg = x_s + x_s⊙x_d
		for i := range dMsg {
			dSrc[i] += dMsg[i] * (1 + dst[i])
		}
		return int64(3 * len(dMsg))
	case m.G == WeightElemProduct && m.H == CombineScale:
		// msg = x_s⊙(x_s⊙x_d) = x_s²⊙x_d
		for i := range dMsg {
			dSrc[i] += dMsg[i] * 2 * src[i] * dst[i]
		}
		return int64(4 * len(dMsg))
	case m.G == WeightDot && m.H == CombineScale:
		// msg = α·x_s with α = ⟨x_s,x_d⟩/dim
		alpha, dAlpha, invDim := dotParts(src, dst, dMsg)
		for i := range dMsg {
			dSrc[i] += alpha*dMsg[i] + dAlpha*dst[i]*invDim
		}
		return int64(8 * len(dMsg))
	}
	panic(fmt.Sprintf("kernels: msgBackwardSrc on unsupported modes g=%v h=%v", m.G, m.H))
}

// msgBackwardDst accumulates one edge's message gradient into the dst
// vertex gradient dDst. Only edge-weighted modes have a dst-side gradient
// (the paper's g′, Fig 3c, applied for both dst and src nodes). Returns
// FLOPs; zero when the mode has no dst gradient.
func (m Modes) msgBackwardDst(src, dst, dMsg, dDst []float32) int64 {
	switch {
	case m.G == WeightNone && m.H == CombineIdentity:
		return 0
	case m.G == WeightElemProduct && m.H == CombineAdd:
		for i := range dMsg {
			dDst[i] += dMsg[i] * src[i]
		}
		return int64(2 * len(dMsg))
	case m.G == WeightElemProduct && m.H == CombineScale:
		for i := range dMsg {
			dDst[i] += dMsg[i] * src[i] * src[i]
		}
		return int64(3 * len(dMsg))
	case m.G == WeightDot && m.H == CombineScale:
		_, dAlpha, invDim := dotParts(src, dst, dMsg)
		for i := range dMsg {
			dDst[i] += dAlpha * src[i] * invDim
		}
		return int64(6 * len(dMsg))
	}
	panic(fmt.Sprintf("kernels: msgBackwardDst on unsupported modes g=%v h=%v", m.G, m.H))
}

// dotParts computes the shared quantities of the dot-attention backward:
// α = ⟨src,dst⟩/dim and dα = ⟨dMsg,src⟩.
func dotParts(src, dst, dMsg []float32) (alpha, dAlpha, invDim float32) {
	invDim = 1 / float32(len(src))
	for i := range src {
		alpha += src[i] * dst[i]
		dAlpha += dMsg[i] * src[i]
	}
	alpha *= invDim
	return alpha, dAlpha, invDim
}

// HasDstGrad reports whether BWP must compute gradients for dst embeddings
// (true only for edge-weighted modes).
func (m Modes) HasDstGrad() bool { return m.G != WeightNone }
