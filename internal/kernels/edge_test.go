package kernels

import (
	"testing"

	"graphtensor/internal/graph"
	"graphtensor/internal/tensor"
)

// TestIsolatedDstProducesZero: a dst with no neighbors aggregates to zero.
func TestIsolatedDstProducesZero(t *testing.T) {
	// dst 0 has a neighbor, dst 1 has none.
	coo := &graph.BCOO{NumDst: 2, NumSrc: 3, Src: []graph.VID{2}, Dst: []graph.VID{0}}
	csr, _ := graph.BCOOToBCSR(coo)
	x := tensor.Random(3, 4, 1, tensor.NewRNG(1))
	for _, s := range allStrategies {
		dev := testDevice()
		ctx := NewCtx(dev)
		xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
		out, err := s.Forward(ctx, &Graphs{CSR: csr}, xd, GCNModes())
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for j := 0; j < out.M.Cols; j++ {
			if out.M.At(1, j) != 0 {
				t.Errorf("%s: isolated dst 1 col %d = %g, want 0", s.Name(), j, out.M.At(1, j))
			}
		}
	}
}

// TestSingleVertexSelfLoop: a one-vertex graph with a self edge under mean
// aggregation returns the vertex's own embedding.
func TestSingleVertexSelfLoop(t *testing.T) {
	coo := &graph.BCOO{NumDst: 1, NumSrc: 1, Src: []graph.VID{0}, Dst: []graph.VID{0}}
	csr, _ := graph.BCOOToBCSR(coo)
	x := tensor.FromSlice(1, 3, []float32{1, 2, 3})
	dev := testDevice()
	ctx := NewCtx(dev)
	xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
	out, err := NAPA{}.Forward(ctx, &Graphs{CSR: csr}, xd, GCNModes())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if out.M.At(0, j) != x.At(0, j) {
			t.Errorf("self-loop mean col %d = %g want %g", j, out.M.At(0, j), x.At(0, j))
		}
	}
}

// TestHighFanoutManyNeighbors exercises a dst with many neighbors to catch
// accumulation bugs.
func TestHighFanoutManyNeighbors(t *testing.T) {
	const n = 200
	coo := &graph.BCOO{NumDst: 1, NumSrc: n}
	for s := 0; s < n; s++ {
		coo.Src = append(coo.Src, graph.VID(s))
		coo.Dst = append(coo.Dst, 0)
	}
	csr, _ := graph.BCOOToBCSR(coo)
	x := tensor.New(n, 2)
	for s := 0; s < n; s++ {
		x.Set(s, 0, 1) // every src contributes 1 in column 0
	}
	dev := testDevice()
	ctx := NewCtx(dev)
	xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
	out, _ := NAPA{}.Forward(ctx, &Graphs{CSR: csr}, xd, GCNModes())
	// Mean of n ones is 1.
	if d := out.M.At(0, 0) - 1; d > 1e-4 || d < -1e-4 {
		t.Errorf("mean of %d ones = %g, want 1", n, out.M.At(0, 0))
	}
}

// TestSingleFeatureDim works with width-1 embeddings.
func TestSingleFeatureDim(t *testing.T) {
	rng := tensor.NewRNG(2)
	csr := randomBipartite(8, 14, 3, rng)
	x := tensor.Random(14, 1, 1, rng)
	want := refForward(csr, x, NGCFModes())
	for _, s := range allStrategies {
		dev := testDevice()
		ctx := NewCtx(dev)
		xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
		out, err := s.Forward(ctx, &Graphs{CSR: csr}, xd, NGCFModes())
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if diff := out.M.MaxAbsDiff(want); diff > 1e-5 {
			t.Errorf("%s width-1: diff %g", s.Name(), diff)
		}
	}
}

// TestForwardDeterministic: repeated forward passes give identical output
// regardless of goroutine scheduling.
func TestForwardDeterministic(t *testing.T) {
	rng := tensor.NewRNG(3)
	csr := randomBipartite(40, 70, 6, rng)
	x := tensor.Random(70, 16, 1, rng)
	var first *tensor.Matrix
	for i := 0; i < 5; i++ {
		dev := testDevice()
		ctx := NewCtx(dev)
		xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
		out, _ := NAPA{}.Forward(ctx, &Graphs{CSR: csr}, xd, NGCFModes())
		if first == nil {
			first = out.M.Clone()
			continue
		}
		if out.M.MaxAbsDiff(first) != 0 {
			t.Fatal("forward is nondeterministic")
		}
	}
}

// TestGraphApproachChargesTranslationFromCOO confirms the Graph-approach
// pays translation when starting from COO but not when given CSR.
func TestTranslationOnlyFromCOO(t *testing.T) {
	rng := tensor.NewRNG(4)
	csr := randomBipartite(10, 18, 3, rng)
	x := tensor.Random(18, 4, 1, rng)
	// From CSR: NAPA charges no translation.
	dev := testDevice()
	ctx := NewCtx(dev)
	xd, _ := WrapDeviceMatrix(dev, x.Clone(), "x")
	_, _ = NAPA{}.Forward(ctx, &Graphs{CSR: csr}, xd, GCNModes())
	if ctx.Phases.Get(PhaseTranslation) != 0 {
		t.Error("NAPA from CSR should not translate")
	}
}
