package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"strings"
	"time"

	"graphtensor/internal/datasets"
	"graphtensor/internal/fault"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/graph"
	"graphtensor/internal/serve"
	"graphtensor/internal/train"
)

func init() {
	register("chaos", "Fault injection: replica failover, device death, crash/restore — all bitwise", runChaos)
}

// runChaos is the chaos-engineering acceptance run: seeded fault plans kill
// serving replicas mid-batch, kill training devices mid-run and crash a
// training job between checkpoints, and every row must end bitwise
// identical to its fault-free reference. A DIFF is returned as an error so
// CI fails loudly — fault tolerance that changes numerics is a silent
// correctness bug, not a degraded mode.
func runChaos(cfg Config) (*Result, error) {
	var sb strings.Builder
	ds, err := loadDataset(cfg, "products")
	if err != nil {
		return nil, err
	}

	// --- Serving: replica failover under a seeded kill schedule. ---
	tr, err := newTrainer(cfg, frameworks.PreproGT, ds, "gcn")
	if err != nil {
		return nil, err
	}
	if _, _, err := tr.TrainEpoch(cfg.batches(6)); err != nil {
		return nil, err
	}
	nQueries := 48
	if cfg.Quick {
		nQueries = 24
	}
	const querySize = 16
	queries := make([][]graph.VID, nQueries)
	for q := range queries {
		queries[q] = ds.BatchDsts(querySize, uint64(70_000+q))
	}

	fmt.Fprintf(&sb, "%-26s %5s %6s %9s %8s %7s %7s\n",
		"serving config", "nrep", "dead", "failovers", "rejoins", "p99", "logits")
	type kill struct {
		label    string
		replicas int
		plan     *fault.Plan
	}
	kills := []kill{
		{"fault-free reference", 2, nil},
		{"kill replica 0 @ batch 0", 2, fault.Schedule().Kill(0, 0)},
		{"kill 2 of 4 replicas", 4, fault.Schedule().Kill(0, 0).Kill(2, 1)},
		{"kill replica 0 + rejoin", 2, fault.NewPlan(1, fault.Config{RejoinProb: 1}).Kill(0, 0)},
	}
	if cfg.Quick {
		// The quick sweep keeps one plain kill and the kill+rejoin row.
		kills = []kill{kills[0], kills[1], kills[3]}
	}
	var refSums []uint64
	for _, k := range kills {
		scfg := serve.DefaultConfig()
		scfg.Replicas = k.replicas
		scfg.FaultPlan = k.plan
		sums, res, _, err := serveAll(tr, scfg, queries, true)
		if err != nil {
			return nil, err
		}
		verdict := "ref"
		if k.plan == nil {
			refSums = sums
		} else {
			verdict = "exact"
			for q := range sums {
				if sums[q] != refSums[q] {
					verdict = "DIFF"
				}
			}
		}
		fmt.Fprintf(&sb, "%-26s %5d %6d %9d %8d %7s %7s\n",
			k.label, k.replicas, res.st.DeadReplicas, res.st.FailedOver, res.st.Rejoined,
			res.st.Latency.P99.Round(10_000), verdict)
		if verdict == "DIFF" {
			return nil, fmt.Errorf("chaos: serving logits diverged under failover (%s)\nresolved fault schedule:\n%s",
				k.label, k.plan.Describe(nQueries, k.replicas))
		}
	}
	sb.WriteByte('\n')

	// --- Training: device death mid-run shrinks the group bitwise. ---
	nBatches := cfg.batches(6)
	refW, _, err := chaosTrainRun(cfg, ds, 1, 0, nBatches, nil)
	if err != nil {
		return nil, err
	}
	killW, killTr, err := chaosTrainRun(cfg, ds, 2, 0, nBatches, fault.Schedule().Kill(1, 1))
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "%-26s %8s %6s %8s %8s %8s\n", "training config", "devices", "dead", "retries", "rejoins", "weights")
	fmt.Fprintf(&sb, "%-26s %8d %6d %8s %8s %8s\n", "fault-free reference", 1, 0, "-", "-", "ref")
	verdict := "exact"
	if killW != refW {
		verdict = "DIFF"
	}
	g := killTr.Group()
	fmt.Fprintf(&sb, "%-26s %8d %6d %8d %8d %8s\n",
		"kill device 1 @ batch 1", 2, g.DeadDevices(), g.Retries(), g.Rejoined(), verdict)
	if verdict == "DIFF" {
		return nil, fmt.Errorf("chaos: training trajectory diverged after device death")
	}

	// --- Training: fault domains on the hierarchical fabric — a whole node
	// dies at one boundary, a degradation window slows the modeled network,
	// and the dead node's devices rejoin (weight snapshot reinstalled over a
	// modeled cross-node broadcast). Still bitwise vs the 1-device run.
	rejoinStep := 3 // after one re-noded batch; earlier when the run is short
	if rejoinStep >= nBatches {
		rejoinStep = nBatches - 1
	}
	nodePlan := fault.Schedule().
		KillNode(1, 1).
		Rejoin(2, rejoinStep).Rejoin(3, rejoinStep).
		DegradeLink(rejoinStep-1, 1, 0.5, time.Millisecond)
	nodeW, nodeTr, err := chaosTrainRun(cfg, ds, 4, 2, nBatches, nodePlan)
	if err != nil {
		return nil, err
	}
	verdict = "exact"
	if nodeW != refW {
		verdict = "DIFF"
	}
	g = nodeTr.Group()
	fmt.Fprintf(&sb, "%-26s %8s %6d %8d %8d %8s\n",
		"kill node 1 + rejoin both", "4(2/nd)", g.DeadDevices(), g.Retries(), g.Rejoined(), verdict)
	if verdict == "DIFF" {
		return nil, fmt.Errorf("chaos: trajectory diverged under node kill + link degrade + rejoin\nresolved fault schedule:\n%s",
			nodePlan.Describe(nBatches, 4))
	}

	// --- Training: crash after a checkpoint, resume on fewer devices. ---
	dir, err := os.MkdirTemp("", "gt-chaos-ckpt")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	half := (nBatches + 1) / 2
	crashed, err := chaosTrainer(cfg, ds, 2, 0, nil)
	if err != nil {
		return nil, err
	}
	dcfg := train.Config{Epochs: 1, BatchesPerEpoch: half, LearningRate: 0.05,
		CheckpointDir: dir, CheckpointEvery: half}
	if _, err := train.NewDriver(crashed, dcfg, nil).Run(); err != nil {
		return nil, err
	}
	resumed, err := chaosTrainer(cfg, ds, 1, 0, nil)
	if err != nil {
		return nil, err
	}
	dcfg = train.Config{Epochs: 1, BatchesPerEpoch: nBatches, LearningRate: 0.05,
		CheckpointDir: dir, CheckpointEvery: nBatches, Resume: true}
	if _, err := train.NewDriver(resumed, dcfg, nil).Run(); err != nil {
		return nil, err
	}
	verdict = "exact"
	if weightSum(resumed) != refW {
		verdict = "DIFF"
	}
	fmt.Fprintf(&sb, "%-26s %8s %6s %8s %8s %8s\n",
		fmt.Sprintf("crash@%d, resume on 1 dev", half), "2->1", "-", "-", "-", verdict)
	if verdict == "DIFF" {
		return nil, fmt.Errorf("chaos: crash-resumed trajectory diverged from uninterrupted run")
	}

	sb.WriteString("\nEvery fault is drawn from a seeded plan — a pure function of\n" +
		"(seed, kind, id, step), never wall time — so each chaos run replays\n" +
		"bitwise. Failover re-enqueues whole micro-batches, the device group\n" +
		"replays whole batches on the survivors (re-noding the plan after a\n" +
		"whole-node loss), rejoins re-enter at batch boundaries by reinstalling\n" +
		"the survivors' weight snapshot over a modeled broadcast, and link\n" +
		"degradation scales modeled network time only — so the logits and the\n" +
		"training trajectory must equal the fault-free reference bit for bit; a\n" +
		"DIFF fails the experiment and prints the plan's resolved schedule.\n")
	return &Result{Text: sb.String()}, nil
}

// chaosTrainer builds the data-parallel trainer the chaos training rows
// share: BaseGT (the DKP-free build, so placement is deterministic at every
// device count), optionally on a hierarchical fabric (devsPerNode > 0) and
// optionally carrying a fault plan into the device group.
func chaosTrainer(cfg Config, ds *datasets.Dataset, nDev, devsPerNode int, plan *fault.Plan) (*frameworks.Trainer, error) {
	opt := frameworks.DefaultOptions()
	opt.Device = cfg.device()
	opt.NumDevices = nDev
	opt.DevicesPerNode = devsPerNode
	opt.FaultPlan = plan
	if cfg.Quick {
		opt.BatchSize = 100
	}
	return frameworks.New(frameworks.BaseGT, ds, opt)
}

// chaosTrainRun trains nBatches on an nDev-device group under the plan and
// returns the final weight checksum plus the trainer (for group stats).
func chaosTrainRun(cfg Config, ds *datasets.Dataset, nDev, devsPerNode, nBatches int, plan *fault.Plan) (uint64, *frameworks.Trainer, error) {
	tr, err := chaosTrainer(cfg, ds, nDev, devsPerNode, plan)
	if err != nil {
		return 0, nil, err
	}
	if _, _, err := tr.TrainEpoch(nBatches); err != nil {
		return 0, nil, err
	}
	return weightSum(tr), tr, nil
}

// weightSum checksums the trainer's canonical weights.
func weightSum(tr *frameworks.Trainer) uint64 {
	h := fnv.New64a()
	for _, l := range tr.Model.Layers {
		for _, v := range l.W.Data {
			bits := math.Float32bits(v)
			h.Write([]byte{byte(bits), byte(bits >> 8), byte(bits >> 16), byte(bits >> 24)})
		}
		for _, v := range l.B {
			bits := math.Float32bits(v)
			h.Write([]byte{byte(bits), byte(bits >> 8), byte(bits >> 16), byte(bits >> 24)})
		}
	}
	return h.Sum64()
}
