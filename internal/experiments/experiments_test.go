package experiments

import (
	"strings"
	"testing"
)

// quickCfg runs experiments on the smallest scale and batch count.
func quickCfg() Config {
	c := DefaultConfig()
	c.Quick = true
	c.Batches = 2
	return c
}

// TestAllExperimentsRun smoke-tests every registered experiment at quick
// scale: each must produce non-empty output without error.
func TestAllExperimentsRun(t *testing.T) {
	cfg := quickCfg()
	for _, id := range IDs() {
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if strings.TrimSpace(res.Text) == "" {
				t.Errorf("%s produced empty output", id)
			}
			if res.ID != id {
				t.Errorf("result id %q != %q", res.ID, id)
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig999", quickCfg()); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestFig6aReportsBloat(t *testing.T) {
	res, err := Run("fig6a", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The DL-approach footprint must exceed the input table (>1x).
	if !strings.Contains(res.Text, "average memory bloat") {
		t.Error("fig6a missing average line")
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Value <= 1 {
				t.Errorf("fig6a footprint %g not > 1x", p.Value)
			}
		}
	}
}

func TestFig8DegreeRatioAboveOne(t *testing.T) {
	res, err := Run("fig8", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Power-law datasets must show original degree >> preprocessed.
	if !strings.Contains(res.Text, "mean degree ratio") {
		t.Error("fig8 missing ratio summary")
	}
}

func TestIDsStable(t *testing.T) {
	a := IDs()
	b := IDs()
	for i := range a {
		if a[i] != b[i] {
			t.Error("IDs() not stable")
		}
	}
	if len(a) < 10 {
		t.Errorf("only %d experiments registered", len(a))
	}
}
