// Package experiments regenerates every table and figure of the paper's
// evaluation (§III motivation and §VI): each experiment is a named,
// self-contained function that builds its workloads, runs the relevant
// frameworks on the simulated device and formats the same rows/series the
// paper reports, with the paper's own numbers printed alongside for
// comparison. cmd/gtbench and the repo-level benchmarks both dispatch
// through Run.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"graphtensor/internal/datasets"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/metrics"
)

// Config shapes an experiment run.
type Config struct {
	// Scale is the dataset scale; DefaultScale reproduces the documented
	// laptop-scale setup.
	Scale datasets.Scale
	// Quick restricts dataset lists and batch counts for smoke runs.
	Quick bool
	// Device is the simulated GPU; zero value means gpusim.DefaultConfig.
	Device gpusim.Config
	// Batches is the per-measurement batch count (0 = experiment default).
	Batches int
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{Scale: datasets.DefaultScale(), Device: gpusim.DefaultConfig()}
}

func (c Config) device() gpusim.Config {
	if c.Device.NumSMs == 0 {
		return gpusim.DefaultConfig()
	}
	return c.Device
}

// Result is one regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Text   string
	Series []metrics.Series
}

// runner is an experiment entry point.
type runner struct {
	title string
	fn    func(Config) (*Result, error)
}

var registry = map[string]runner{}

func register(id, title string, fn func(Config) (*Result, error)) {
	registry[id] = runner{title: title, fn: fn}
}

// IDs lists all experiment identifiers in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's title.
func Title(id string) string { return registry[id].title }

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	res, err := r.fn(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Title = r.title
	return res, nil
}

// lightSets and heavySets follow the paper's light/heavy feature split.
func lightSets(cfg Config) []string {
	if cfg.Quick {
		return []string{"products", "reddit2"}
	}
	return []string{"products", "citation2", "papers", "amazon", "reddit2"}
}

func heavySets(cfg Config) []string {
	if cfg.Quick {
		return []string{"wiki-talk", "roadnet-ca"}
	}
	return []string{"gowalla", "google", "roadnet-ca", "wiki-talk", "livejournal"}
}

func allSets(cfg Config) []string { return append(lightSets(cfg), heavySets(cfg)...) }

func (c Config) batches(def int) int {
	if c.Batches > 0 {
		return c.Batches
	}
	if c.Quick {
		return 3
	}
	return def
}

// loadDataset generates a dataset at the config scale.
func loadDataset(cfg Config, name string) (*datasets.Dataset, error) {
	sc := cfg.Scale
	if sc.VertexDivisor == 0 {
		sc = datasets.DefaultScale()
	}
	return datasets.Generate(name, sc)
}

// newTrainer builds a framework trainer with the experiment defaults.
func newTrainer(cfg Config, kind frameworks.Kind, ds *datasets.Dataset, model string) (*frameworks.Trainer, error) {
	opt := frameworks.DefaultOptions()
	opt.Model = model
	opt.Device = cfg.device()
	if cfg.Quick {
		opt.BatchSize = 100
	}
	return frameworks.New(kind, ds, opt)
}

// fmtRatio prints "measured (paper: X)" rows.
func fmtRatio(measured, paper float64) string {
	if paper == 0 {
		return fmt.Sprintf("%8.2f", measured)
	}
	return fmt.Sprintf("%8.2f  (paper: %.2f)", measured, paper)
}
