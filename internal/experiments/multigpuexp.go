package experiments

import (
	"fmt"
	"strings"
	"time"

	"graphtensor/internal/frameworks"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/multigpu"
)

func init() {
	register("multigpu", "Data-parallel training scaling: balance + per-device work + comm overlap (§VII)", runMultiGPU)
}

// runMultiGPU measures the data-parallel training engine built on ROC's
// balanced-edge partitioning (§VII [19]): each batch is carved into
// shape-fixed gradient shards with BalanceByEdges, devices train their
// shards (forward + backward), and weight gradients are all-reduced over
// the group's interconnect. For 1/2/4/8 devices — on the flat PCIe ring and
// on the NVLink-style topology — it reports the shard imbalance, the
// busiest device's work (which should fall ~linearly), the modeled
// communication cost, the overlap efficiency of the steady-state schedule
// (the next batch's shard scatter hiding under the previous all-reduce
// drain) and the resulting modeled step speedup. The loss column is the
// proof of exactness: it is bitwise identical at every device count and on
// every topology.
func runMultiGPU(cfg Config) (*Result, error) {
	datasets := []string{"products", "reddit2"}
	if cfg.Quick {
		datasets = datasets[:1]
	}
	batches := cfg.Batches
	if batches <= 0 {
		batches = 3
	}
	topologies := []struct {
		name string
		ic   gpusim.InterconnectConfig
	}{
		{"pcie-ring", gpusim.DefaultInterconnect()},
		{"nvlink", gpusim.NVLinkInterconnect()},
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-10s %5s %10s %16s %10s %10s %8s %10s %8s %10s\n",
		"dataset", "fabric", "nGPU", "imbalance", "peak dev FLOPs", "compute", "comm", "overlap", "step", "speedup", "loss")
	for _, name := range datasets {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		for _, topo := range topologies {
			var baseStep time.Duration
			for _, nGPU := range []int{1, 2, 4, 8} {
				opt := frameworks.DefaultOptions()
				opt.Device = cfg.device()
				opt.Device.Interconnect = topo.ic
				opt.NumDevices = nGPU
				opt.GradShards = multigpu.DefaultShards
				tr, err := frameworks.New(frameworks.BaseGT, ds, opt)
				if err != nil {
					return nil, err
				}
				var loss float64
				var st multigpu.GroupStats
				for i := 0; i < batches; i++ {
					bs, err := tr.TrainBatch()
					if err != nil {
						return nil, err
					}
					loss = bs.Loss
					st = tr.Group().LastStats()
				}
				if nGPU == 1 {
					baseStep = st.StepTime
				}
				fmt.Fprintf(&sb, "%-12s %-10s %5d %9.2fx %16d %10s %10s %7.0f%% %10s %7.2fx %10.6f\n",
					name, topo.name, nGPU, st.Imbalance, st.PeakDeviceFLOPs,
					st.MaxDeviceCompute.Round(time.Microsecond),
					st.CommTime.Round(time.Microsecond),
					st.OverlapEfficiency*100,
					st.StepTime.Round(time.Microsecond),
					float64(baseStep)/float64(st.StepTime), loss)
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("Edge-balanced gradient shards keep imbalance near 1.0, so the busiest\n" +
		"device's work falls ~linearly with device count (ROC's balanced-SpMM\n" +
		"result, §VII) while the all-reduce adds a device-count-dependent\n" +
		"communication term. The overlapped schedule issues the next batch's\n" +
		"shard scatter while the previous all-reduce drains: on the flat PCIe\n" +
		"ring the shared fabric contends (partial overlap), on the NVLink-style\n" +
		"topology the collective leaves PCIe free and the scatter hides\n" +
		"entirely. The loss column is bitwise identical across device counts\n" +
		"and fabrics: the shard partition and the gradient fold order are fixed\n" +
		"by the batch shape alone, and comm modeling never touches numerics.\n")
	return &Result{Text: sb.String()}, nil
}
