package experiments

import (
	"fmt"
	"strings"

	"graphtensor/internal/graph"
	"graphtensor/internal/kernels"
	"graphtensor/internal/multigpu"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
	"graphtensor/internal/tensor"
)

func init() {
	register("multigpu", "ROC-style multi-GPU SpMM: load balance + per-device work (§VII)", runMultiGPU)
}

// runMultiGPU reproduces ROC's balanced multi-GPU SpMM: it partitions a
// sampled subgraph's dst vertices across 1/2/4/8 devices balancing edges,
// and reports the load imbalance and the peak per-device FLOPs (which
// should fall roughly linearly with device count for a well-balanced
// partition).
func runMultiGPU(cfg Config) (*Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %6s %12s %16s %12s\n", "dataset", "nGPU", "imbalance", "peak dev FLOPs", "speedup")
	for _, name := range []string{"products", "reddit2", "wiki-talk"} {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		res := sampling.New(ds.Graph, samplerFor(ds)).Sample(ds.BatchDsts(300, 1))
		coo, err := prep.ReindexCOO(res.ForLayer(1), res.Table)
		if err != nil {
			return nil, err
		}
		csr, _ := graph.BCOOToBCSR(coo)
		x := tensor.Random(csr.NumSrc, ds.FeatureDim, 1, tensor.NewRNG(1))
		var basePeak int64
		for _, nGPU := range []int{1, 2, 4, 8} {
			plan := multigpu.BalanceByEdges(csr, nGPU, cfg.device())
			fwd, err := plan.Forward(x, kernels.GCNModes())
			if err != nil {
				return nil, err
			}
			var peak int64
			for _, f := range fwd.PerDeviceFLOPs {
				if f > peak {
					peak = f
				}
			}
			if nGPU == 1 {
				basePeak = peak
			}
			sp := float64(basePeak) / float64(peak)
			fmt.Fprintf(&sb, "%-12s %6d %11.2fx %16d %11.2fx\n", name, nGPU, plan.Imbalance, peak, sp)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("Balancing by edge count keeps imbalance near 1.0; peak per-device work\nfalls ~linearly with GPU count — ROC's balanced-SpMM result (§VII). ROC\nstill pays format translation per device, which NAPA avoids.\n")
	return &Result{Text: sb.String()}, nil
}
