package experiments

import (
	"fmt"
	"strings"
	"time"

	"graphtensor/internal/frameworks"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/multigpu"
)

func init() {
	register("multigpu", "Data-parallel training scaling to 64 modeled devices: flat vs hierarchical fabrics, per-tier comm (§VII)", runMultiGPU)
}

// multiGPUShards fixes the gradient-shard count of the scale-out sweep:
// trajectories are comparable across device counts only at an identical
// shard count, and the sweep's largest group is 64 devices.
const multiGPUShards = 64

// runMultiGPU measures the data-parallel training engine built on ROC's
// balanced-edge partitioning (§VII [19]) as it scales past a single box:
// 1 (baseline) and 16/32/64 devices on the flat PCIe ring, the NVLink-style
// switched fabric, and the hierarchical two-tier fabric at 4 and 8 devices
// per node. Each batch is carved into 64 shape-fixed gradient shards;
// hierarchical groups assign shards to nodes first (LPT), pay the scatter
// and the hierarchical all-reduce on the matching tier, and overlap each
// tier's drain independently. The table reports the busiest device's work,
// the per-tier communication split (intra-node vs network, plus the
// deduplicated cross-node scatter bytes), the overlap efficiency and the
// modeled step speedup. The loss column is the proof of exactness: bitwise
// identical at every device count, node count and fabric.
func runMultiGPU(cfg Config) (*Result, error) {
	datasets := []string{"products", "reddit2"}
	if cfg.Quick {
		datasets = datasets[:1]
	}
	batches := cfg.Batches
	if batches <= 0 {
		batches = 3
	}
	type fabric struct {
		name string
		ic   gpusim.InterconnectConfig
		dpn  int
		nGPU []int
	}
	fabrics := []fabric{
		{"pcie-ring", gpusim.DefaultInterconnect(), 0, []int{1, 16, 32, 64}},
		{"nvlink", gpusim.NVLinkInterconnect(), 0, []int{16, 32, 64}},
		{"hier-4/node", gpusim.InterconnectConfig{}, 4, []int{16, 32, 64}},
		{"hier-8/node", gpusim.InterconnectConfig{}, 8, []int{16, 32, 64}},
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-12s %5s %6s %8s %10s %10s %10s %10s %9s %8s %10s %8s %10s\n",
		"dataset", "fabric", "nGPU", "nodes", "nodeimb", "compute", "comm", "intra", "inter", "xnode MB", "overlap", "step", "speedup", "loss")
	for _, name := range datasets {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		var baseStep time.Duration
		var refLoss float64
		haveRef := false
		var pcie64, hier64 time.Duration
		for _, fb := range fabrics {
			for _, nGPU := range fb.nGPU {
				opt := frameworks.DefaultOptions()
				opt.Device = cfg.device()
				opt.NumDevices = nGPU
				opt.GradShards = multiGPUShards
				if fb.dpn > 0 {
					opt.DevicesPerNode = fb.dpn
				} else {
					opt.Device.Interconnect = fb.ic
				}
				tr, err := frameworks.New(frameworks.BaseGT, ds, opt)
				if err != nil {
					return nil, err
				}
				var loss float64
				var st multigpu.GroupStats
				for i := 0; i < batches; i++ {
					bs, err := tr.TrainBatch()
					if err != nil {
						return nil, err
					}
					loss = bs.Loss
					st = tr.Group().LastStats()
				}
				if !haveRef {
					refLoss, haveRef = loss, true
				} else if loss != refLoss {
					return nil, fmt.Errorf("multigpu: %s loss diverged on %s at %d devices: %v != %v (exactness rule violated)",
						name, fb.name, nGPU, loss, refLoss)
				}
				if nGPU == 1 {
					baseStep = st.StepTime
				}
				if nGPU == 64 {
					switch fb.name {
					case "pcie-ring":
						pcie64 = st.StepTime
					case "hier-8/node":
						hier64 = st.StepTime
					}
				}
				speedup := 0.0
				if baseStep > 0 && st.StepTime > 0 {
					speedup = float64(baseStep) / float64(st.StepTime)
				}
				fmt.Fprintf(&sb, "%-12s %-12s %5d %6d %7.2fx %10s %10s %10s %10s %9.2f %7.0f%% %10s %7.2fx %10.6f\n",
					name, fb.name, nGPU, st.Nodes, st.NodeImbalance,
					st.MaxDeviceCompute.Round(time.Microsecond),
					st.CommTime.Round(time.Microsecond),
					st.IntraNodeTime.Round(time.Microsecond),
					st.InterNodeTime.Round(time.Microsecond),
					float64(st.CrossNodeBytes)/(1<<20),
					st.OverlapEfficiency*100,
					st.StepTime.Round(time.Microsecond), speedup, loss)
			}
		}
		if pcie64 > 0 && hier64 > 0 && hier64 >= pcie64 {
			return nil, fmt.Errorf("multigpu: %s hierarchical step %v did not beat flat PCIe %v at 64 devices",
				name, hier64, pcie64)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("Scaling past one box: the flat PCIe ring's all-reduce pays 2(n-1)\n" +
		"latency-bound steps, so its comm term explodes at 64 devices. The\n" +
		"hierarchical fabric runs the reduce-scatter and broadcast phases on\n" +
		"NVLink-class links inside each node and only a ring of one\n" +
		"representative per node on the network, so the slow-tier step count\n" +
		"grows with nodes, not devices. Node-aware shard assignment (LPT over\n" +
		"nodes, then over each node's devices) concentrates halo overlap inside\n" +
		"a node: embedding rows shared by a node's shards cross the network\n" +
		"once (the xnode column is the deduplicated payload). Each tier's\n" +
		"scatter overlaps the previous step's drain on the same tier at that\n" +
		"tier's contention. The loss column is bitwise identical across device\n" +
		"counts, node counts and fabrics: the dst->shard partition and the\n" +
		"ascending-shard fold order are fixed by the batch shape and the shard\n" +
		"count alone; node assignment steers modeled scheduling and\n" +
		"communication only.\n")
	return &Result{Text: sb.String()}, nil
}
