package experiments

import (
	"fmt"
	"strings"
	"time"

	"graphtensor/internal/dkp"
	"graphtensor/internal/metrics"
)

func init() {
	register("dkpfit", "DKP v2: offline cost-model fit + placement policy vs pinned orders", runDKPFit)
}

// runDKPFit exercises the offline DKP calibration end to end: fit the cost
// model from modeled kernel times over the calibration sweep, then replay
// the same sweep under three placement regimes — pinned aggregation-first,
// pinned combination-first, and the fitted policy — and compare modeled
// epoch time (the sum over swept shapes). The policy must never lose to the
// better pinned order on any shape and must strictly beat pinned
// aggregation-first somewhere; a violation is an error so regressions in
// the fit or the decision rule fail loudly.
func runDKPFit(cfg Config) (*Result, error) {
	dev := cfg.device()
	prof, err := dkp.Calibrate(dev)
	if err != nil {
		return nil, err
	}
	pol := dkp.NewPolicy(prof)
	costs, err := dkp.MeasurePlacements(dev, dkp.DefaultSweep())
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "device class %s, fitted=%v, fit error %.1f%%\n\n", prof.Class, prof.Fitted, 100*prof.FitErr)
	fmt.Fprintf(&sb, "%6s %6s %8s %6s %6s %12s %12s %12s %10s\n",
		"nSrc", "nDst", "nEdge", "nFeat", "nHid", "aggr-first", "comb-first", "policy", "choice")
	var totAggr, totComb, totPol time.Duration
	beatsAggr := false
	var violations []string
	series := metrics.Series{Label: "policy/min-pinned ratio"}
	for _, sc := range costs {
		choice := pol.Decide(sc.Dims, false, 0)
		tPol := sc.AggrFirst
		if choice == dkp.CombFirst {
			tPol = sc.CombFirst
		}
		best := sc.AggrFirst
		if sc.CombFirst < best {
			best = sc.CombFirst
		}
		totAggr += sc.AggrFirst
		totComb += sc.CombFirst
		totPol += tPol
		if tPol < sc.AggrFirst {
			beatsAggr = true
		}
		if tPol > best {
			violations = append(violations,
				fmt.Sprintf("shape %+v: policy chose %s (%v) but %v was available", sc.Dims, choice, tPol, best))
		}
		shape := fmt.Sprintf("%dx%dx%d/%dx%d", sc.NSrc, sc.NDst, sc.NEdge, sc.NFeat, sc.NHid)
		series.Points = append(series.Points, metrics.Point{X: shape, Value: float64(tPol) / float64(best)})
		fmt.Fprintf(&sb, "%6d %6d %8d %6d %6d %12v %12v %12v %10s\n",
			sc.NSrc, sc.NDst, sc.NEdge, sc.NFeat, sc.NHid, sc.AggrFirst, sc.CombFirst, tPol, choice)
	}
	fmt.Fprintf(&sb, "\nmodeled epoch time over sweep: pinned aggr-first %v, pinned comb-first %v, policy %v\n",
		totAggr, totComb, totPol)
	rec := prof.Recommend()
	fmt.Fprintf(&sb, "derived defaults: serving MaxBatch=%d MaxDelay=%v, group GradShards=%d\n",
		rec.MaxBatch, rec.MaxDelay, rec.GradShards)
	if len(violations) > 0 {
		return nil, fmt.Errorf("dkpfit: policy worse than best pinned order on %d shape(s):\n  %s",
			len(violations), strings.Join(violations, "\n  "))
	}
	if !beatsAggr {
		return nil, fmt.Errorf("dkpfit: policy never strictly beat pinned aggregation-first over the sweep")
	}
	sb.WriteString("policy matched the better pinned order on every shape and strictly beat aggr-first on at least one.\n")
	return &Result{Text: sb.String(), Series: []metrics.Series{series}}, nil
}
