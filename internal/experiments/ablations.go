package experiments

import (
	"fmt"
	"strings"
	"time"

	"graphtensor/internal/dkp"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/kernels"
	"graphtensor/internal/pipeline"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
)

// allSets, loadDataset, samplerFor, layerGraphs, prepareKernelBatch are
// defined in sibling files of this package.

// The ablations quantify the individual design choices DESIGN.md §5 calls
// out. Each isolates one mechanism and measures the quantity it targets.

func init() {
	register("abl-scheduling", "Ablation: feature-wise (NAPA) vs edge-wise (Graph) scheduling", ablScheduling)
	register("abl-translation", "Ablation: CSR-only NAPA vs COO + format translation cost", ablTranslation)
	register("abl-dkp-sweep", "Ablation: DKP crossover as nFeature/nHidden sweeps", ablDKPSweep)
	register("abl-contention", "Ablation: A/H split vs shared hash table lock wait", ablContention)
	register("abl-pinned", "Ablation: pinned vs pageable transfer buffers", ablPinned)
	register("abl-bwp-shortcut", "Ablation: first-layer aggregation-first BWP shortcut", ablBWPShortcut)
	register("abl-fusion", "Ablation: fused vs unfused NAPA (FusedMM idea, §VII)", ablFusion)
}

// ablFusion compares the global-memory traffic of the fused NAPA forward
// (weights consumed in-register) against the unfused schedule that
// materializes the per-edge weight matrix — the FusedMM design point.
func ablFusion(cfg Config) (*Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %16s %16s %10s\n", "dataset", "unfused stores", "fused stores", "reduction")
	for _, name := range allSets(cfg) {
		dev, g, x, _, err := prepOneLayer(cfg, name)
		if err != nil {
			return nil, err
		}
		csr, _ := graph.BCOOToBCSR(g.COO)
		stores := func(s kernels.Strategy) int64 {
			ctx := kernels.NewCtx(dev)
			xd, _ := kernels.WrapDeviceMatrix(dev, x.M.Clone(), "x")
			before := dev.Snapshot()
			out, err := s.Forward(ctx, &kernels.Graphs{CSR: csr}, xd, kernels.NGCFModes())
			if err != nil {
				return 0
			}
			out.Free()
			xd.Free()
			return dev.Snapshot().Sub(before).GlobalStores
		}
		unfused := stores(kernels.Unfused{})
		fused := stores(kernels.NAPA{})
		red := 0.0
		if unfused > 0 {
			red = 100 * (1 - float64(fused)/float64(unfused))
		}
		fmt.Fprintf(&sb, "%-12s %16d %16d %9.1f%%\n", name, unfused, fused, red)
	}
	sb.WriteString("\nFusing NeighborApply and Pull keeps each edge's weight in registers,\nnever storing the E×F weight matrix to global memory (the FusedMM idea,\nwhich NAPA applies on the GPU schedule, §VII).\n")
	return &Result{Text: sb.String()}, nil
}

// prepOneLayer samples a batch and returns the outermost layer's CSR graph
// and uploaded embeddings on a fresh device.
func prepOneLayer(cfg Config, name string) (*gpusim.Device, *kernels.Graphs, *kernels.DeviceMatrix, int64, error) {
	ds, err := loadDataset(cfg, name)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	devCfg := cfg.device()
	devCfg.MemoryBytes = 0
	dev := gpusim.NewDevice(devCfg)
	b, x, err := prepareKernelBatch(cfg, ds, dev, prep.FormatCOO)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return dev, layerGraphs(b)[0], x, b.Embed.Bytes(), nil
}

// ablScheduling compares the cache traffic of feature-wise (NAPA) vs
// edge-wise (Graph-approach) scheduling on the same edge-weighting kernel.
func ablScheduling(cfg Config) (*Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %16s %16s %10s\n", "dataset", "edge-wise cache", "feature-wise cache", "ratio")
	for _, name := range allSets(cfg) {
		dev, g, x, _, err := prepOneLayer(cfg, name)
		if err != nil {
			return nil, err
		}
		edgeWise := func() int64 {
			ctx := kernels.NewCtx(dev)
			before := dev.Snapshot()
			w, _ := kernels.GraphApproach{}.SDDMM(ctx, &kernels.Graphs{COO: g.COO}, x, kernels.NGCFModes())
			w.Free()
			return dev.Snapshot().Sub(before).CacheBytes
		}()
		featureWise := func() int64 {
			ctx := kernels.NewCtx(dev)
			csr, _ := graph.BCOOToBCSR(g.COO)
			before := dev.Snapshot()
			w, _ := kernels.NeighborApplyKernel(ctx, csr, x, kernels.NGCFModes())
			w.Free()
			return dev.Snapshot().Sub(before).CacheBytes
		}()
		ratio := float64(edgeWise) / float64(featureWise)
		fmt.Fprintf(&sb, "%-12s %16d %16d %9.2fx\n", name, edgeWise, featureWise, ratio)
	}
	sb.WriteString("\nFeature-wise scheduling loads each dst embedding once per SM; edge-wise\nreloads it per edge, inflating cache traffic (the Fig 6b mechanism).\n")
	return &Result{Text: sb.String()}, nil
}

// ablTranslation isolates the COO→CSR translation cost the Graph-approach
// pays every batch and NAPA avoids by consuming CSR directly.
func ablTranslation(cfg Config) (*Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %14s %16s\n", "dataset", "edges", "translation (ns)")
	for _, name := range allSets(cfg) {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		res := sampling.New(ds.Graph, samplerFor(ds)).Sample(ds.BatchDsts(300, 1))
		coo, err := prep.ReindexCOO(res.ForLayer(1), res.Table)
		if err != nil {
			return nil, err
		}
		// Time the counting-sort translation the Graph-approach repeats.
		start := time.Now()
		for i := 0; i < 50; i++ {
			_, _ = graph.BCOOToBCSR(coo)
		}
		perTranslate := time.Since(start).Nanoseconds() / 50
		fmt.Fprintf(&sb, "%-12s %14d %16d\n", name, coo.NumEdges(), perTranslate)
	}
	sb.WriteString("\nNAPA consumes CSR built once during preprocessing, paying this cost zero\ntimes per training step; the Graph-approach pays it every step (Fig 5c).\n")
	return &Result{Text: sb.String()}, nil
}

// ablDKPSweep shows the cost model's crossover point as the feature width
// sweeps against a fixed hidden width: comb-first wins once features are
// wide enough.
func ablDKPSweep(Config) (*Result, error) {
	c := pipelineCoeffs()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %8s %14s %14s %14s\n", "nFeat", "nHid", "aggr benefit", "comb benefit", "placement")
	d := dkpDims()
	for _, nFeat := range []int{8, 16, 32, 64, 128, 256, 512, 1024, 4096} {
		d.NFeat = nFeat
		af, ab := c.AggrFirstBenefit(d, false)
		cf, cb := c.CombFirstBenefit(d, 0)
		place := "aggr-first"
		if cf+cb > af+ab {
			place = "comb-first"
		}
		fmt.Fprintf(&sb, "%8d %8d %14.1f %14.1f %14s\n", nFeat, d.NHid, af+ab, cf+cb, place)
	}
	sb.WriteString("\nAs features widen past the hidden width, transforming first (comb-first)\nshrinks the aggregation's moving width and wins — the DKP decision (Fig 11).\n")
	return &Result{Text: sb.String()}, nil
}

// ablContention measures lock wait under the shared vs A/H-split
// disciplines across datasets.
func ablContention(cfg Config) (*Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %16s %16s %10s\n", "dataset", "shared wait", "split wait", "reduction")
	for _, name := range allSets(cfg) {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		wait := func(relax bool) (dur int64) {
			dev := gpusim.NewDevice(cfg.device())
			pc := pipeline.DefaultConfig()
			pc.Sampler = samplerFor(ds)
			pc.RelaxContention = relax
			b, err := pipeline.NewScheduler(ds.Graph, ds.Features, ds.Labels, dev, pc).Prepare(ds.BatchDsts(300, 1), nil)
			if err != nil {
				return 0
			}
			defer b.Release()
			return int64(b.Sample.Table.LockWait())
		}
		shared := wait(false)
		split := wait(true)
		red := 0.0
		if shared > 0 {
			red = 100 * (1 - float64(split)/float64(shared))
		}
		fmt.Fprintf(&sb, "%-12s %16d %16d %9.1f%%\n", name, shared, split, red)
	}
	sb.WriteString("\nThe A/H split serializes hash updates so the algorithm part runs\ncontention-free, cutting the lock wait (Fig 14).\n")
	return &Result{Text: sb.String()}, nil
}

// ablPinned compares the modeled transfer time of pinned vs pageable
// buffers, the SALIENT/GraphTensor fast path.
func ablPinned(cfg Config) (*Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %16s %16s %10s\n", "dataset", "pageable (ns)", "pinned (ns)", "speedup")
	for _, name := range allSets(cfg) {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		dev := gpusim.NewDevice(cfg.device())
		bytes := int64(ds.FeatureDim) * 4 * 300
		pageable := int64(dev.PCIe().TransferBytes(bytes, false))
		pinned := int64(dev.PCIe().TransferBytes(bytes, true))
		sp := float64(pageable) / float64(pinned)
		fmt.Fprintf(&sb, "%-12s %16d %16d %9.2fx\n", name, pageable, pinned, sp)
	}
	sb.WriteString("\nPinned (page-locked) buffers skip the driver staging copy, the transfer\nspeedup SALIENT and GraphTensor rely on (§V-B).\n")
	return &Result{Text: sb.String()}, nil
}

// ablBWPShortcut shows the extra benefit the first GNN layer's
// aggregation-first BWP gets from skipping the aggregation gradient
// (reduction factor nSrc instead of nSrc-nDst, §V-A).
func ablBWPShortcut(Config) (*Result, error) {
	c := pipelineCoeffs()
	d := dkpDims()
	var sb strings.Builder
	_, firstBWP := c.AggrFirstBenefit(d, true)
	_, midBWP := c.AggrFirstBenefit(d, false)
	fmt.Fprintf(&sb, "dims: nSrc=%d nDst=%d nFeat=%d nHid=%d\n", d.NSrc, d.NDst, d.NFeat, d.NHid)
	fmt.Fprintf(&sb, "first-layer aggr-first BWP benefit: %.1f\n", firstBWP)
	fmt.Fprintf(&sb, "mid-layer   aggr-first BWP benefit: %.1f\n", midBWP)
	fmt.Fprintf(&sb, "ratio: %.2fx\n", firstBWP/midBWP)
	sb.WriteString("\nThe first GNN layer (last executed in BWP) need not compute the\naggregation's gradient — only MLP parameters need gradients — so its\nreduction factor is nSrc, making aggregation-first more attractive (§V-A).\n")
	return &Result{Text: sb.String()}, nil
}

// --- small shared helpers for the ablations ---

// pipelineCoeffs returns the DKP cost-model coefficients used in the
// sweep/shortcut ablations (the paper's Table I defaults).
func pipelineCoeffs() dkp.Coeffs { return dkp.PaperCoeffs() }

// dkpDims returns a representative mid-layer dimension set for the DKP
// ablations: a heavy-feature sampled layer with modest row reduction.
func dkpDims() dkp.Dims {
	return dkp.Dims{NSrc: 600, NDst: 500, NEdge: 3000, NFeat: 512, NHid: 64}
}
