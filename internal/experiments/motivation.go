package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"graphtensor/internal/datasets"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/kernels"
	"graphtensor/internal/metrics"
	"graphtensor/internal/pipeline"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
)

func init() {
	register("fig6a", "Fig 6a: DL-approach memory bloat (normalized footprint)", runFig6a)
	register("fig6b", "Fig 6b: Graph-approach SDDMM cache bloat (normalized cache load)", runFig6b)
	register("fig8", "Fig 8: degree distribution, original vs preprocessed graphs", runFig8)
	register("fig12a", "Fig 12a: end-to-end latency breakdown (S/R/K/T vs FWP+BWP)", runFig12a)
	register("fig12b", "Fig 12b: system resource utilization per preprocessing task", runFig12b)
	register("fig14", "Fig 14a: hash-table lock contention in parallel preprocessing", runFig14)
}

// prepareKernelBatch samples and prepares one batch of a dataset with the
// given format, returning the batch plus the uploaded embedding matrix.
func prepareKernelBatch(cfg Config, ds *datasets.Dataset, dev *gpusim.Device,
	format prep.Format) (*prep.Batch, *kernels.DeviceMatrix, error) {
	scfg := samplerFor(ds)
	b, err := pipeline.Serial(ds.Graph, ds.Features, ds.Labels, dev, ds.BatchDsts(300, 1), scfg, format, true)
	if err != nil {
		return nil, nil, err
	}
	x, err := kernels.WrapDeviceMatrix(dev, b.Embed.Data, "batch-x")
	if err != nil {
		return nil, nil, err
	}
	return b, x, nil
}

// layerGraphs converts a prepared batch's layers for the kernel API.
func layerGraphs(b *prep.Batch) []*kernels.Graphs {
	out := make([]*kernels.Graphs, len(b.Layers))
	for i, l := range b.Layers {
		out[i] = &kernels.Graphs{COO: l.COO, CSR: l.CSR, CSC: l.CSC}
	}
	return out
}

// runFig6a measures the device memory footprint of the DL-approach's
// NGCF-style aggregation + edge weighting, normalized by the input
// embedding table size (the paper reports 5.8× average bloat).
func runFig6a(cfg Config) (*Result, error) {
	var sb strings.Builder
	series := metrics.Series{Label: "DL-approach"}
	fmt.Fprintf(&sb, "%-12s %s\n", "dataset", "normalized memory footprint")
	var ratios []float64
	for _, name := range allSets(cfg) {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		devCfg := cfg.device()
		devCfg.MemoryBytes = 0 // unlimited: we are measuring, not gating
		dev := gpusim.NewDevice(devCfg)
		b, x, err := prepareKernelBatch(cfg, ds, dev, prep.FormatCSR)
		if err != nil {
			return nil, err
		}
		embedBytes := b.Embed.Bytes()
		ctx := kernels.NewCtx(dev)
		dev.ResetPeak()
		base := dev.MemInUse()
		g := layerGraphs(b)[0] // the outermost (largest) layer dominates
		out, err := kernels.DLApproach{}.Forward(ctx, g, x, kernels.NGCFModes())
		if err != nil {
			return nil, err
		}
		out.Free()
		footprint := float64(dev.MemPeak()-base+embedBytes) / float64(embedBytes)
		ratios = append(ratios, footprint)
		series.Points = append(series.Points, metrics.Point{X: name, Value: footprint})
		fmt.Fprintf(&sb, "%-12s %s\n", name, fmtRatio(footprint, 0))
		b.Release()
	}
	fmt.Fprintf(&sb, "\naverage memory bloat: %.2fx   (paper: 5.8x)\n", metrics.Mean(ratios))
	return &Result{Text: sb.String(), Series: []metrics.Series{series}}, nil
}

// runFig6b measures the bytes the Graph-approach's edge-wise SDDMM loads
// into SM caches, normalized by the embedding table size (paper: 1.8×,
// i.e. 81.9% more data than the table holds).
func runFig6b(cfg Config) (*Result, error) {
	var sb strings.Builder
	series := metrics.Series{Label: "Graph-approach"}
	fmt.Fprintf(&sb, "%-12s %s\n", "dataset", "normalized cache load (SDDMM)")
	var ratios []float64
	for _, name := range allSets(cfg) {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		dev := gpusim.NewDevice(cfg.device())
		b, x, err := prepareKernelBatch(cfg, ds, dev, prep.FormatCOO)
		if err != nil {
			return nil, err
		}
		ctx := kernels.NewCtx(dev)
		before := dev.Snapshot()
		w, err := kernels.GraphApproach{}.SDDMM(ctx, layerGraphs(b)[0], x, kernels.NGCFModes())
		if err != nil {
			return nil, err
		}
		w.Free()
		cacheBytes := dev.Snapshot().Sub(before).CacheBytes
		ratio := float64(cacheBytes) / float64(b.Embed.Bytes())
		ratios = append(ratios, ratio)
		series.Points = append(series.Points, metrics.Point{X: name, Value: ratio})
		fmt.Fprintf(&sb, "%-12s %8.2f\n", name, ratio)
		b.Release()
	}
	fmt.Fprintf(&sb, "\naverage cache load vs embedding table: %.2fx   (paper: 1.8x)\n", metrics.Mean(ratios))
	return &Result{Text: sb.String(), Series: []metrics.Series{series}}, nil
}

// runFig8 compares degree statistics of the original graphs against their
// sampled (preprocessed) subgraphs: the sampled graphs have much lower and
// much more even degrees (paper: 3.4× lower mean, 3.3 vs 150 stddev),
// which is why edge-wise scheduling loses its advantage on GNN inputs.
func runFig8(cfg Config) (*Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %10s %10s %10s %10s %7s\n",
		"dataset", "orig mean", "orig std", "samp mean", "samp std", "ratio")
	var ratios, origStds, sampStds []float64
	for _, name := range allSets(cfg) {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		full := ds.Graph.Degrees()
		smp := sampling.New(ds.Graph, samplerFor(ds))
		res := smp.Sample(ds.BatchDsts(300, 1))
		hop := res.ForLayer(1)
		// Per-vertex in-degree across the whole sampled subgraph, leaves
		// included (this matches Table II's edges/vertices column).
		sampDeg := make([]int, hop.NumSrc)
		b, err := prep.ReindexCOO(hop, res.Table)
		if err != nil {
			return nil, err
		}
		for _, d := range b.Dst {
			sampDeg[d]++
		}
		fullStats := computeStats(full)
		sampStats := computeStats(sampDeg)
		ratio := fullStats.Mean / nonZero(sampStats.Mean)
		ratios = append(ratios, ratio)
		origStds = append(origStds, fullStats.StdDev)
		sampStds = append(sampStds, sampStats.StdDev)
		fmt.Fprintf(&sb, "%-12s %10.2f %10.2f %10.2f %10.2f %7.2f\n",
			name, fullStats.Mean, fullStats.StdDev, sampStats.Mean, sampStats.StdDev, ratio)
	}
	fmt.Fprintf(&sb, "\nmean degree ratio original/preprocessed: %.2fx   (paper: 3.4x)\n", metrics.Mean(ratios))
	fmt.Fprintf(&sb, "stddev original %.1f vs preprocessed %.1f   (paper: ~150 vs 3.3)\n",
		metrics.Mean(origStds), metrics.Mean(sampStds))
	return &Result{Text: sb.String()}, nil
}

// runFig12a decomposes the end-to-end batch latency of a conventional
// (serialized-preprocessing) framework into sampling, reindexing, lookup,
// transfer and GPU compute. The paper observes preprocessing at 84.2% of
// the total on average.
func runFig12a(cfg Config) (*Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %7s %7s %7s %7s %9s\n", "dataset", "S%", "R%", "K%", "T%", "FWP+BWP%")
	var prepShares []float64
	for _, name := range allSets(cfg) {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		tr, err := newTrainer(cfg, frameworks.BaseGT, ds, "gcn")
		if err != nil {
			return nil, err
		}
		b, err := tr.Prepare(ds.BatchDsts(300, 1), nil)
		if err != nil {
			return nil, err
		}
		st, err := tr.TrainBatch()
		if err != nil {
			return nil, err
		}
		// Both preprocessing and GPU compute are modeled (the simulator's
		// kernels and goroutine overlap run on the host CPU; see
		// gpusim.KernelTimeModel and pipeline.PrepCostModel).
		tt := tr.ModeledTaskTimes(b)
		b.Release()
		compute := tr.ModeledCompute(st)
		prep := tt.Sample + tt.Reindex + tt.Lookup + tt.Transfer
		total := float64(prep + compute)
		pct := func(d time.Duration) float64 { return 100 * float64(d) / total }
		fmt.Fprintf(&sb, "%-12s %7.1f %7.1f %7.1f %7.1f %9.1f\n", name,
			pct(tt.Sample), pct(tt.Reindex), pct(tt.Lookup), pct(tt.Transfer), pct(compute))
		prepShares = append(prepShares, 100*float64(prep)/total)
	}
	fmt.Fprintf(&sb, "\naverage preprocessing share: %.1f%%   (paper: 84.2%%)\n", metrics.Mean(prepShares))
	return &Result{Text: sb.String()}, nil
}

// runFig12b reports per-task system resource utilization on wiki-talk:
// CPU cores busy and DMA (PCIe) bandwidth. S/R/K tasks never touch PCIe;
// T uses one core and the link — the imbalance the tensor scheduler
// exploits.
func runFig12b(cfg Config) (*Result, error) {
	ds, err := loadDataset(cfg, "wiki-talk")
	if err != nil {
		return nil, err
	}
	dev := gpusim.NewDevice(cfg.device())
	scfg := samplerFor(ds)
	b, err := pipeline.Serial(ds.Graph, ds.Features, ds.Labels, dev, ds.BatchDsts(300, 1), scfg, prep.FormatCSRCSC, false)
	if err != nil {
		return nil, err
	}
	defer b.Release()
	cores := runtime.GOMAXPROCS(0)
	tT := b.Breakdown.Get("transfer")
	dma := 0.0
	if tT > 0 {
		dma = float64(dev.PCIe().BytesMoved()) // bytes
		dma = dma / tT.Seconds() / 1e9         // GB/s
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %12s %10s %10s\n", "task", "time", "CPU cores", "DMA GB/s")
	fmt.Fprintf(&sb, "%-10s %12v %10d %10.2f\n", "sample", b.Breakdown.Get("sample").Round(time.Microsecond), cores, 0.0)
	fmt.Fprintf(&sb, "%-10s %12v %10d %10.2f\n", "reindex", b.Breakdown.Get("reindex").Round(time.Microsecond), 1, 0.0)
	fmt.Fprintf(&sb, "%-10s %12v %10d %10.2f\n", "lookup", b.Breakdown.Get("lookup").Round(time.Microsecond), 1, 0.0)
	fmt.Fprintf(&sb, "%-10s %12v %10d %10.2f\n", "transfer", tT.Round(time.Microsecond), 1, dma)
	sb.WriteString("\nS/R/K leave the PCIe link idle; T leaves all but one core idle (Fig 12b).\n")
	return &Result{Text: sb.String()}, nil
}

// runFig14 measures hash-table lock contention: the share of preprocessing
// time spent waiting on the shared VID table under the naive fully-shared
// discipline, versus the A/H-split relaxed discipline (paper: 47.4% +
// 39.0% of preprocessing time lost before relaxing).
func runFig14(cfg Config) (*Result, error) {
	ds, err := loadDataset(cfg, "products")
	if err != nil {
		return nil, err
	}
	measure := func(relax bool) (time.Duration, time.Duration, error) {
		dev := gpusim.NewDevice(cfg.device())
		pcfg := pipeline.DefaultConfig()
		pcfg.Sampler = samplerFor(ds)
		pcfg.RelaxContention = relax
		sched := pipeline.NewScheduler(ds.Graph, ds.Features, ds.Labels, dev, pcfg)
		t0 := time.Now()
		b, err := sched.Prepare(ds.BatchDsts(300, 1), nil)
		if err != nil {
			return 0, 0, err
		}
		defer b.Release()
		return time.Since(t0), b.Sample.Table.LockWait(), nil
	}
	sharedWall, sharedWait, err := measure(false)
	if err != nil {
		return nil, err
	}
	relaxedWall, relaxedWait, err := measure(true)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %14s %14s %10s\n", "discipline", "prep wall", "lock wait", "wait share")
	share := func(wait, wall time.Duration) float64 {
		if wall == 0 {
			return 0
		}
		return 100 * float64(wait) / float64(wall)
	}
	fmt.Fprintf(&sb, "%-22s %14v %14v %9.1f%%\n", "shared (contended)",
		sharedWall.Round(time.Microsecond), sharedWait.Round(time.Microsecond), share(sharedWait, sharedWall))
	fmt.Fprintf(&sb, "%-22s %14v %14v %9.1f%%\n", "A/H split (relaxed)",
		relaxedWall.Round(time.Microsecond), relaxedWait.Round(time.Microsecond), share(relaxedWait, relaxedWall))
	sb.WriteString("\nPaper Fig 14a: contention costs 47.4% (S subtasks) + 39.0% (S vs R) of\npreprocessing before the A (algorithm) / H (hash update) split serializes\ntable updates.\n")
	return &Result{Text: sb.String()}, nil
}

type stats struct{ Mean, StdDev float64 }

func computeStats(deg []int) stats {
	if len(deg) == 0 {
		return stats{}
	}
	var sum, sq float64
	for _, d := range deg {
		sum += float64(d)
		sq += float64(d) * float64(d)
	}
	n := float64(len(deg))
	mean := sum / n
	v := sq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return stats{Mean: mean, StdDev: math.Sqrt(v)}
}

func nonZero(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}
