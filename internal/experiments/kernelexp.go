package experiments

import (
	"fmt"
	"strings"
	"time"

	"graphtensor/internal/datasets"
	"graphtensor/internal/dkp"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/kernels"
	"graphtensor/internal/metrics"
)

func init() {
	register("fig11b", "Fig 11b: per-layer computation reduction, aggr-first vs comb-first", runFig11b)
	register("table1", "Table I: DKP cost model coefficient fitting", runTable1)
	register("fig15", "Fig 15: training latency (GPU kernels) across frameworks", runFig15)
	register("fig16", "Fig 16: GPU kernel execution breakdown (products, wiki-talk)", runFig16)
	register("fig17", "Fig 17: NAPA GPU resource usage (memory + cache reduction)", runFig17)
	register("fig18", "Fig 18: DKP impact on FLOPs and global memory accesses", runFig18)
}

// kernelFrameworks are the GPU-kernel comparison set of Fig 15/16.
var kernelFrameworks = []frameworks.Kind{
	frameworks.DGL, frameworks.PyG, frameworks.GNNAdvisor, frameworks.BaseGT, frameworks.DynamicGT,
}

// computeLatency measures the GPU-kernel (compute-only) latency of one
// framework on one dataset and model: batches are prepared outside the
// timed section, as the paper measures with Nsight (excluding
// framework-specific overhead and preprocessing).
func computeLatency(cfg Config, kind frameworks.Kind, ds *datasets.Dataset, model string, batches int) (time.Duration, *frameworks.Trainer, error) {
	tr, err := newTrainer(cfg, kind, ds, model)
	if err != nil {
		return 0, nil, err
	}
	// Report the minimum over batches: the paper measures isolated kernel
	// times with Nsight; the minimum is the standard noise-robust proxy.
	var best time.Duration
	for i := 0; i < batches; i++ {
		st, err := tr.TrainBatch()
		if err != nil {
			return 0, nil, err
		}
		if best == 0 || st.Compute < best {
			best = st.Compute
		}
	}
	return best, tr, nil
}

// runFig15 reproduces the training latency comparison: per dataset and
// model, the GPU kernel latency of each framework normalized to Base-GT
// (smaller is better; the paper's y-axis is also normalized to Base-GT).
func runFig15(cfg Config) (*Result, error) {
	var sb strings.Builder
	var series []metrics.Series
	for _, model := range []string{"gcn", "ngcf"} {
		fmt.Fprintf(&sb, "--- %s (normalized GPU kernel latency, Base-GT = 100) ---\n", strings.ToUpper(model))
		fmt.Fprintf(&sb, "%-12s", "dataset")
		for _, k := range kernelFrameworks {
			fmt.Fprintf(&sb, "%12s", k)
		}
		sb.WriteByte('\n')
		perFw := map[frameworks.Kind]*metrics.Series{}
		for _, k := range kernelFrameworks {
			perFw[k] = &metrics.Series{Label: fmt.Sprintf("%s/%s", k, model)}
		}
		for _, name := range allSets(cfg) {
			ds, err := loadDataset(cfg, name)
			if err != nil {
				return nil, err
			}
			batches := cfg.batches(3)
			lat := map[frameworks.Kind]time.Duration{}
			oom := map[frameworks.Kind]bool{}
			for _, k := range kernelFrameworks {
				d, _, err := computeLatency(cfg, k, ds, model, batches)
				if err != nil {
					if _, isOOM := err.(*gpusim.OOMError); isOOM {
						oom[k] = true
						continue
					}
					if oomErr, ok := unwrapOOM(err); ok {
						_ = oomErr
						oom[k] = true
						continue
					}
					return nil, fmt.Errorf("%s/%s/%s: %w", name, model, k, err)
				}
				lat[k] = d
			}
			base := lat[frameworks.BaseGT]
			fmt.Fprintf(&sb, "%-12s", name)
			for _, k := range kernelFrameworks {
				if oom[k] {
					fmt.Fprintf(&sb, "%12s", "OOM")
					perFw[k].Points = append(perFw[k].Points, metrics.Point{X: name, Value: -1})
					continue
				}
				norm := 100 * float64(lat[k]) / float64(base)
				perFw[k].Points = append(perFw[k].Points, metrics.Point{X: name, Value: norm})
				fmt.Fprintf(&sb, "%12.1f", norm)
			}
			sb.WriteByte('\n')
		}
		for _, k := range kernelFrameworks {
			series = append(series, *perFw[k])
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("Paper: Base-GT is 1.5x/1.3x faster than DGL/PyG on light graphs,\n")
	sb.WriteString("1.3x on heavy graphs; Dynamic-GT improves Base-GT further (47.7% GCN,\n")
	sb.WriteString("74.2% NGCF light; 31.0% GCN, 11.4% NGCF heavy). livejournal NGCF OOMs\n")
	sb.WriteString("on PyG/GNNAdvisor (Sparse2Dense).\n")
	return &Result{Text: sb.String(), Series: series}, nil
}

func unwrapOOM(err error) (*gpusim.OOMError, bool) {
	for e := err; e != nil; {
		if oom, ok := e.(*gpusim.OOMError); ok {
			return oom, true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		e = u.Unwrap()
	}
	return nil, false
}

// runFig16 decomposes GPU kernel time into aggregation, edge weighting,
// combination, sparse2dense and format translation for the two
// representative workloads.
func runFig16(cfg Config) (*Result, error) {
	phases := []string{
		kernels.PhaseAggregation, kernels.PhaseEdgeWeight, kernels.PhaseCombination,
		kernels.PhaseSparse2Dense, kernels.PhaseTranslation,
	}
	var sb strings.Builder
	for _, name := range []string{"products", "wiki-talk"} {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		for _, model := range []string{"gcn", "ngcf"} {
			fmt.Fprintf(&sb, "--- %s / %s (%% of framework kernel time) ---\n", name, strings.ToUpper(model))
			fmt.Fprintf(&sb, "%-12s", "framework")
			for _, p := range phases {
				fmt.Fprintf(&sb, "%14s", p)
			}
			sb.WriteByte('\n')
			for _, k := range kernelFrameworks {
				_, tr, err := computeLatency(cfg, k, ds, model, cfg.batches(2))
				if err != nil {
					if _, isOOM := unwrapOOM(err); isOOM {
						fmt.Fprintf(&sb, "%-12s %s\n", k, "OOM")
						continue
					}
					return nil, err
				}
				bd := tr.Engine.Phases()
				total := float64(bd.Total())
				fmt.Fprintf(&sb, "%-12s", k)
				for _, p := range phases {
					pct := 0.0
					if total > 0 {
						pct = 100 * float64(bd.Get(p)) / total
					}
					fmt.Fprintf(&sb, "%13.1f%%", pct)
				}
				sb.WriteByte('\n')
			}
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("Paper: format translation is 64.5% of DGL's GCN time on products;\n")
	sb.WriteString("Sparse2Dense is 32.3% of PyG's NGCF time on heavy graphs; GraphTensor\n")
	sb.WriteString("has neither phase.\n")
	return &Result{Text: sb.String()}, nil
}

// runFig17 measures NAPA's device resource usage against the baselines:
// memory footprint reduction vs the DL-approach (paper: 81.8% average) and
// cache load reduction vs the Graph-approach (paper: 44.8% average), over
// a full FWP+BWP training batch.
func runFig17(cfg Config) (*Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %16s %16s\n", "dataset", "mem reduction", "cache reduction")
	var memRed, cacheRed []float64
	for _, name := range allSets(cfg) {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		type usage struct {
			peak  int64
			cache int64
		}
		measure := func(kind frameworks.Kind) (usage, error) {
			devCfg := cfg.device()
			devCfg.MemoryBytes = 0
			optCfg := cfg
			optCfg.Device = devCfg
			tr, err := newTrainer(optCfg, kind, ds, "ngcf")
			if err != nil {
				return usage{}, err
			}
			tr.Engine.Dev.ResetPeak()
			st, err := tr.TrainBatch()
			if err != nil {
				return usage{}, err
			}
			return usage{peak: tr.Engine.Dev.MemPeak(), cache: st.Counters.CacheBytes}, nil
		}
		napa, err := measure(frameworks.BaseGT)
		if err != nil {
			return nil, err
		}
		dl, err := measure(frameworks.PyG)
		if err != nil {
			return nil, err
		}
		ga, err := measure(frameworks.DGL)
		if err != nil {
			return nil, err
		}
		mr := 100 * (1 - float64(napa.peak)/float64(dl.peak))
		cr := 100 * (1 - float64(napa.cache)/float64(ga.cache))
		memRed = append(memRed, mr)
		cacheRed = append(cacheRed, cr)
		fmt.Fprintf(&sb, "%-12s %15.1f%% %15.1f%%\n", name, mr, cr)
	}
	fmt.Fprintf(&sb, "\naverage: memory footprint -%.1f%% (paper: -81.8%%), cache loads -%.1f%% (paper: -44.8%%)\n",
		metrics.Mean(memRed), metrics.Mean(cacheRed))
	return &Result{Text: sb.String()}, nil
}

// runFig18 compares Base-GT and Dynamic-GT on the FLOPs and global memory
// accesses of the kernels DKP rearranges — the sparse aggregation and edge
// weighting stages (paper: DKP cuts FLOPs by 5.4× and global accesses by
// 1.4× on average). Dynamic-GT places kernels from the profile fitted for
// the simulated device class at construction; the work counters themselves
// are hardware-independent.
func runFig18(cfg Config) (*Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-6s %14s %14s %12s %12s\n",
		"dataset", "model", "Base FLOPs", "Dyn FLOPs", "Base mem", "Dyn mem")
	var flopRatios, memRatios []float64
	for _, name := range []string{"products", "wiki-talk"} {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		for _, model := range []string{"gcn", "ngcf"} {
			counters := func(kind frameworks.Kind) (gpusim.Counters, error) {
				tr, err := newTrainer(cfg, kind, ds, model)
				if err != nil {
					return gpusim.Counters{}, err
				}
				tr.Engine.Ctx.ResetPhaseWork()
				if _, err := tr.TrainBatch(); err != nil {
					return gpusim.Counters{}, err
				}
				sparse := tr.Engine.Ctx.PhaseWork(kernels.PhaseAggregation).
					Add(tr.Engine.Ctx.PhaseWork(kernels.PhaseEdgeWeight))
				return sparse, nil
			}
			base, err := counters(frameworks.BaseGT)
			if err != nil {
				return nil, err
			}
			dyn, err := counters(frameworks.DynamicGT)
			if err != nil {
				return nil, err
			}
			baseMem := base.GlobalLoads + base.GlobalStores
			dynMem := dyn.GlobalLoads + dyn.GlobalStores
			fmt.Fprintf(&sb, "%-12s %-6s %14d %14d %12d %12d\n",
				name, model, base.FLOPs, dyn.FLOPs, baseMem, dynMem)
			if dyn.FLOPs > 0 {
				flopRatios = append(flopRatios, float64(base.FLOPs)/float64(dyn.FLOPs))
			}
			if dynMem > 0 {
				memRatios = append(memRatios, float64(baseMem)/float64(dynMem))
			}
		}
	}
	fmt.Fprintf(&sb, "\naverage: FLOPs %.2fx lower with DKP (paper: 5.4x), global accesses %.2fx lower (paper: 1.4x)\n",
		metrics.GeoMean(flopRatios), metrics.GeoMean(memRatios))
	return &Result{Text: sb.String()}, nil
}

// runFig11b analyzes per-layer input-tensor reduction under each placement
// for representative light and heavy workloads, the motivation for DKP.
func runFig11b(cfg Config) (*Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %6s %12s %12s %14s\n", "dataset", "layer", "aggr-first", "comb-first", "better")
	for _, name := range []string{"products", "amazon", "wiki-talk"} {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		tr, err := newTrainer(cfg, frameworks.BaseGT, ds, "gcn")
		if err != nil {
			return nil, err
		}
		b, err := tr.Prepare(ds.BatchDsts(300, 1), nil)
		if err != nil {
			return nil, err
		}
		inDim := ds.FeatureDim
		for li, l := range b.Layers {
			outDim := tr.Opt.Hidden
			if li == len(b.Layers)-1 {
				outDim = 2
			}
			d := dkp.Dims{
				NSrc: l.CSR.NumSrc, NDst: l.CSR.NumDst, NEdge: l.CSR.NumEdges(),
				NFeat: inDim, NHid: outDim,
			}
			af, cf := dkp.ReductionRate(d)
			better := "aggr-first"
			if cf > af {
				better = "comb-first"
			}
			fmt.Fprintf(&sb, "%-12s %6d %11.2fx %11.2fx %14s\n", name, li+1, af, cf, better)
			inDim = outDim
		}
		b.Release()
	}
	sb.WriteString("\nPaper Fig 11b: comb-first reduces wiki-talk's layer inputs by 31.7% on\naverage; light-feature layers keep the conventional order.\n")
	return &Result{Text: sb.String()}, nil
}

// runTable1 fits the DKP cost model coefficients offline (least-squares
// over modeled kernel times on a calibration sweep, §V-A) and reports the
// fit error (paper: 12.5%). This is the same fit every Dynamic-GT trainer
// runs at construction via dkp.ProfileFor.
func runTable1(cfg Config) (*Result, error) {
	prof, err := dkp.Calibrate(cfg.device())
	if err != nil {
		return nil, err
	}
	c := prof.Coeffs
	var sb strings.Builder
	fmt.Fprintf(&sb, "device class %s, fitted=%v\n", prof.Class, prof.Fitted)
	sb.WriteString("fitted cost model coefficients (µs units, this device class):\n")
	fmt.Fprintf(&sb, "  FWP aggr-first:  α=%.3g β=%.3g   (paper: α=6e-5, β=1e-5)\n", c.AlphaFWP, c.BetaFWP)
	fmt.Fprintf(&sb, "  BWP aggr-first:  α=%.3g β=%.3g   (paper: α=1e-7, β=4e-6)\n", c.AlphaBWP, c.BetaBWP)
	fmt.Fprintf(&sb, "  FWP comb-first:  γ=%.3g δ=%.3g   (paper: γ=1e-3, δ=1e-12)\n", c.GammaFWP, c.DeltaFWP)
	fmt.Fprintf(&sb, "  BWP comb-first:  γ=%.3g δ=%.3g   (paper: γ=1e-6, δ=1e-8)\n", c.GammaBWP, c.DeltaBWP)
	fmt.Fprintf(&sb, "\nmean relative fit error: %.1f%%   (paper: 12.5%%)\n", 100*prof.FitErr)
	rec := prof.Recommend()
	fmt.Fprintf(&sb, "derived defaults: serving MaxBatch=%d MaxDelay=%v, group GradShards=%d\n",
		rec.MaxBatch, rec.MaxDelay, rec.GradShards)
	return &Result{Text: sb.String()}, nil
}
