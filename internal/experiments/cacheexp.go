package experiments

import (
	"fmt"
	"strings"

	"graphtensor/internal/cache"
	"graphtensor/internal/sampling"
)

func init() {
	register("cache", "PaGraph-style embedding cache: hit rate vs locality (§VII)", runCacheExp)
}

// runCacheExp measures how much of each batch's embedding lookup a
// degree-based GPU cache can serve, across datasets with different sampling
// locality. The paper notes caching's effectiveness "varies on the input
// datasets and user behaviours" — this experiment shows exactly that
// variation: hub-heavy power-law graphs cache well, near-uniform road
// networks do not.
func runCacheExp(cfg Config) (*Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %12s %12s %12s\n", "dataset", "cache cap", "hit rate", "avoided K+T")
	for _, name := range allSets(cfg) {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		capacity := ds.NumVertices() / 10 // cache 10% of vertices
		c := cache.New(capacity, cache.Degree, ds.Graph)
		sampler := sampling.New(ds.Graph, samplerFor(ds))
		batches := cfg.batches(8)
		for i := 0; i < batches; i++ {
			res := sampler.Sample(ds.BatchDsts(300, uint64(i+1)))
			c.Partition(res.Table.OrigVIDs())
		}
		hr := c.HitRate()
		fmt.Fprintf(&sb, "%-12s %12d %11.1f%% %11.1f%%\n", name, capacity, 100*hr, 100*hr)
	}
	sb.WriteString("\nAvoided K+T is the fraction of embedding lookups and transfers the\ncache serves from device memory. Power-law graphs (products, reddit2)\ncache well; near-uniform roadnet-ca gains little — matching the paper's\ncaveat that PaGraph's benefit is locality-dependent (§VII).\n")
	return &Result{Text: sb.String()}, nil
}
