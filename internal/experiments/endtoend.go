package experiments

import (
	"fmt"
	"strings"
	"time"

	"graphtensor/internal/frameworks"
	"graphtensor/internal/metrics"
	"graphtensor/internal/pipeline"
)

func init() {
	register("fig19", "Fig 19: end-to-end latency across frameworks (incl. preprocessing)", runFig19)
	register("fig20", "Fig 20: preprocessing timeline, Prepro-GT vs prior scheduling", runFig20)
}

// e2eFrameworks is the comparison set of Fig 19.
var e2eFrameworks = []frameworks.Kind{
	frameworks.DGL, frameworks.PyGMT, frameworks.SALIENT, frameworks.DynamicGT, frameworks.PreproGT,
}

// runFig19 measures end-to-end training latency — preprocessing included,
// with each framework's own overlap discipline — normalized to Dynamic-GT
// as in the paper.
func runFig19(cfg Config) (*Result, error) {
	var sb strings.Builder
	var series []metrics.Series
	for _, model := range []string{"gcn", "ngcf"} {
		fmt.Fprintf(&sb, "--- %s (normalized end-to-end latency, Dynamic-GT = 100) ---\n", strings.ToUpper(model))
		fmt.Fprintf(&sb, "%-12s", "dataset")
		for _, k := range e2eFrameworks {
			fmt.Fprintf(&sb, "%12s", k)
		}
		sb.WriteByte('\n')
		perFw := map[frameworks.Kind]*metrics.Series{}
		for _, k := range e2eFrameworks {
			perFw[k] = &metrics.Series{Label: fmt.Sprintf("%s/%s", k, model)}
		}
		for _, name := range allSets(cfg) {
			ds, err := loadDataset(cfg, name)
			if err != nil {
				return nil, err
			}
			n := cfg.batches(4)
			wall := map[frameworks.Kind]time.Duration{}
			oom := map[frameworks.Kind]bool{}
			for _, k := range e2eFrameworks {
				tr, err := newTrainer(cfg, k, ds, model)
				if err != nil {
					return nil, err
				}
				if k == frameworks.DynamicGT || k == frameworks.PreproGT {
					if err := tr.Warmup(1); err != nil {
						if _, isOOM := unwrapOOM(err); isOOM {
							oom[k] = true
							continue
						}
						return nil, err
					}
				}
				d, err := tr.SimulatedEpoch(n)
				if err != nil {
					if _, isOOM := unwrapOOM(err); isOOM {
						oom[k] = true
						continue
					}
					return nil, fmt.Errorf("%s/%s/%s: %w", name, model, k, err)
				}
				wall[k] = d / time.Duration(n)
			}
			base := wall[frameworks.DynamicGT]
			fmt.Fprintf(&sb, "%-12s", name)
			for _, k := range e2eFrameworks {
				if oom[k] {
					fmt.Fprintf(&sb, "%12s", "OOM")
					perFw[k].Points = append(perFw[k].Points, metrics.Point{X: name, Value: -1})
					continue
				}
				norm := 100 * float64(wall[k]) / float64(base)
				perFw[k].Points = append(perFw[k].Points, metrics.Point{X: name, Value: norm})
				fmt.Fprintf(&sb, "%12.1f", norm)
			}
			sb.WriteByte('\n')
		}
		for _, k := range e2eFrameworks {
			series = append(series, *perFw[k])
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("Paper: SALIENT cuts end-to-end latency 19.7% (light) / 51.1% (heavy)\n")
	sb.WriteString("below DGL/PyG-MT; Prepro-GT is a further 1.7x below Dynamic-GT on\n")
	sb.WriteString("average (2.4x vs the multi-threaded baselines overall).\n")
	return &Result{Text: sb.String(), Series: series}, nil
}

// runFig20 traces the modeled preprocessing timeline (per-task completion)
// for the two representative workloads under the serialized discipline
// (prior) and the service-wide tensor scheduler (Prepro-GT). Completion
// times come from the pipeline cost model's schedule, which places K
// overlapping the tail of S and T streaming behind K on pinned buffers.
func runFig20(cfg Config) (*Result, error) {
	var sb strings.Builder
	tasks := []string{"sample", "reindex", "lookup", "transfer"}
	var shortenings []float64
	cm := pipeline.DefaultPrepCostModel()
	for _, name := range []string{"products", "wiki-talk"} {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		tr, err := newTrainer(cfg, frameworks.PreproGT, ds, "gcn")
		if err != nil {
			return nil, err
		}
		b, err := tr.Prepare(ds.BatchDsts(tr.Opt.BatchSize, 1), nil)
		if err != nil {
			return nil, err
		}
		// Task times are shared; the completion schedule differs.
		ttPinned := cm.Model(b.Sample, ds.FeatureDim, true)
		ttSerial := cm.Model(b.Sample, ds.FeatureDim, false)
		b.Release()

		// Prior: serial chain with hash contention, pageable transfer.
		cont := time.Duration(float64(ttSerial.Sample+ttSerial.Reindex) * cm.HashContention)
		priorDone := map[string]time.Duration{}
		priorDone["sample"] = ttSerial.Sample + cont/2
		priorDone["reindex"] = priorDone["sample"] + ttSerial.Reindex + cont/2
		priorDone["lookup"] = priorDone["reindex"] + ttSerial.Lookup
		priorDone["transfer"] = priorDone["lookup"] + ttSerial.Transfer

		// Prepro-GT: A/H split removes contention; K overlaps S's tail, T
		// streams behind K on pinned buffers.
		oursDone := map[string]time.Duration{}
		oursDone["sample"] = ttPinned.Sample
		oursDone["reindex"] = ttPinned.Sample + ttPinned.Reindex
		kStart := ttPinned.Sample / 2
		oursDone["lookup"] = kStart + ttPinned.Lookup
		tEnd := kStart + ttPinned.Transfer
		if oursDone["lookup"] > tEnd {
			tEnd = oursDone["lookup"]
		}
		oursDone["transfer"] = tEnd

		fmt.Fprintf(&sb, "--- %s (modeled per-task completion time) ---\n", name)
		fmt.Fprintf(&sb, "%-10s %16s %16s\n", "task", "prior (serial)", "Prepro-GT")
		for _, task := range tasks {
			fmt.Fprintf(&sb, "%-10s %16v %16v\n", task,
				priorDone[task].Round(time.Microsecond), oursDone[task].Round(time.Microsecond))
		}
		priorTotal := priorDone["transfer"]
		oursTotal := oursDone["transfer"]
		shorten := 100 * (1 - float64(oursTotal)/float64(priorTotal))
		shortenings = append(shortenings, shorten)
		fmt.Fprintf(&sb, "%-10s %16v %16v   (shortened %.1f%%)\n\n", "TOTAL",
			priorTotal.Round(time.Microsecond), oursTotal.Round(time.Microsecond), shorten)
	}
	fmt.Fprintf(&sb, "average preprocessing shortening: %.1f%%   (paper: 48.5%%)\n", metrics.Mean(shortenings))
	sb.WriteString("Paper: Prepro-GT's sampling/reindexing complete later (cores shared)\n")
	sb.WriteString("but lookup and transfer finish 14.9%/48.5% earlier; light graphs gain\n")
	sb.WriteString("less because sampling bounds their pipeline.\n")
	return &Result{Text: sb.String()}, nil
}
