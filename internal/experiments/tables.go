package experiments

import (
	"fmt"
	"strings"

	"graphtensor/internal/datasets"
	"graphtensor/internal/graph"
	"graphtensor/internal/sampling"
)

func init() {
	register("table2", "Table II: important characteristics of graphs", runTable2)
	register("table3", "Table III: comparison across various GNN frameworks", runTable3)
}

// runTable2 generates every dataset, samples one batch, and reports the
// full-graph and sampled-graph characteristics next to the paper's values.
func runTable2(cfg Config) (*Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %9s %9s %6s | %9s %9s %8s %7s %7s\n",
		"dataset", "vertices", "edges", "dim", "s.vert", "s.edges", "s.dst", "e/v", "paper")
	for _, name := range allSets(cfg) {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		smp := sampling.New(ds.Graph, samplerFor(ds))
		res := smp.Sample(ds.BatchDsts(300, 1))
		hop := res.ForLayer(1) // outermost hop = largest subgraph
		ev := 0.0
		if hop.NumSrc > 0 {
			ev = float64(len(hop.SrcOrig)) / float64(hop.NumSrc)
		}
		fmt.Fprintf(&sb, "%-12s %9d %9d %6d | %9d %9d %8d %7.2f %7.2f\n",
			name, ds.NumVertices(), ds.NumEdges(), ds.FeatureDim,
			res.NumVertices(), len(hop.SrcOrig), hop.NumDst, ev, ds.Spec.PaperEdgesPerVertex)
	}
	sb.WriteString("\nFull-graph columns are scaled by the documented divisors (see DESIGN.md);\n")
	sb.WriteString("sampled columns come from one batch of 300 dst vertices, as in the paper.\n")
	return &Result{Text: sb.String()}, nil
}

// samplerFor picks a fanout that keeps the sampled edges-per-vertex ratio
// near the paper's Table II value for the dataset.
func samplerFor(ds *datasets.Dataset) sampling.Config {
	c := sampling.DefaultConfig()
	target := ds.Spec.PaperEdgesPerVertex
	switch {
	case target >= 4:
		c.Fanout = 8
	case target >= 3:
		c.Fanout = 6
	case target >= 2:
		c.Fanout = 4
	default:
		c.Fanout = 3
	}
	return c
}

// runTable3 prints the qualitative capability matrix of Table III; the
// per-problem columns are properties of each framework's data path that
// the other experiments measure quantitatively.
func runTable3(Config) (*Result, error) {
	type row struct {
		name, class, format                    string
		memBloat, translation, cacheBloat, pre bool // true = suffers
	}
	rows := []row{
		{"PyG", "DL", "CSR", true, false, false, true},
		{"NeuGraph", "DL", "CSR", true, false, false, true},
		{"GNNAdvisor", "DL", "CSR", true, false, false, true},
		{"FlexGraph", "DL", "CSR", true, false, false, true},
		{"DGL", "Graph", "COO", false, true, true, true},
		{"FeatGraph", "Graph", "COO", false, true, true, true},
		{"ROC", "Graph", "CSR", false, true, true, true},
		{"G3", "Graph", "COO", false, true, true, true},
		{"GraphTensor", "ours", "CSR", false, false, false, false},
	}
	mark := func(b bool) string {
		if b {
			return "✗"
		}
		return "✓"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-6s %-7s %10s %12s %11s %12s\n",
		"framework", "class", "format", "mem bloat", "translation", "cache bloat", "prepro cost")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-6s %-7s %10s %12s %11s %12s\n",
			r.name, r.class, r.format, mark(r.memBloat), mark(r.translation), mark(r.cacheBloat), mark(r.pre))
	}
	sb.WriteString("\n✓ = free of the problem, ✗ = suffers from it (Table III).\n")
	sb.WriteString("The measured counterparts: fig6a (memory bloat), fig16 (translation),\n")
	sb.WriteString("fig6b (cache bloat), fig12a/fig19 (preprocessing overhead).\n")
	return &Result{Text: sb.String()}, nil
}

// degreeRatio is shared by fig8; kept here for reuse in tests.
func degreeRatio(full *graph.CSR, sampledDeg []int) (origMean, sampMean float64) {
	fullStats := graph.ComputeDegreeStats(full.Degrees())
	sampStats := graph.ComputeDegreeStats(sampledDeg)
	return fullStats.Mean, sampStats.Mean
}
