package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"time"

	"graphtensor/internal/cache"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/graph"
	"graphtensor/internal/serve"
)

func init() {
	register("serving", "Inference serving: request coalescing x replicas x embedding cache", runServing)
}

// runServing measures the concurrent inference engine against the serial
// per-query loop the old serving example ran. The baseline serves every
// query in its own micro-batch (MaxBatch=1: full per-query fixed costs —
// sampler setup, layer-chain translation, kernel launches, one link flush
// per query); the coalesced configurations sweep replica count × embedding
// cache capacity. Logits are checksummed per query: coalescing, replication
// and caching are pure perf, so every configuration's column must equal the
// serial baseline's bit for bit.
func runServing(cfg Config) (*Result, error) {
	dsNames := []string{"products"}
	if !cfg.Quick {
		dsNames = append(dsNames, "reddit2")
	}
	nQueries := 96
	if cfg.Quick {
		nQueries = 48
	}
	const querySize = 16

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-22s %5s %9s %9s %8s %9s %9s %6s %8s %7s\n",
		"dataset", "config", "nrep", "batch", "qps", "speedup", "p50", "p99", "hit%", "acc", "logits")
	for _, name := range dsNames {
		ds, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		tr, err := newTrainer(cfg, frameworks.PreproGT, ds, "gcn")
		if err != nil {
			return nil, err
		}
		if _, _, err := tr.TrainEpoch(cfg.batches(6)); err != nil {
			return nil, err
		}

		queries := make([][]graph.VID, nQueries)
		for q := range queries {
			queries[q] = ds.BatchDsts(querySize, uint64(50_000+q))
		}

		// Serial per-query loop: one micro-batch per query, blocking.
		serialSums, serialStats, serialWall, err := serveAll(tr, serve.Config{MaxBatch: 1}, queries, false)
		if err != nil {
			return nil, err
		}
		serialQPS := float64(nQueries) / serialWall.Seconds()
		acc := servingAccuracy(tr, ds.Labels, queries, serialStats.outs)
		fmt.Fprintf(&sb, "%-10s %-22s %5d %9.1f %9.1f %7.2fx %9s %9s %6s %8.3f %7s\n",
			name, "serial per-query", 1, serialStats.st.MeanBatch, serialQPS, 1.0,
			serialStats.st.Latency.P50.Round(time.Microsecond), serialStats.st.Latency.P99.Round(time.Microsecond),
			"-", acc, "ref")

		type sweep struct {
			label    string
			replicas int
			cachePct int
		}
		sweeps := []sweep{
			{"coalesced", 1, 0},
			{"coalesced+cache10", 1, 10},
			{"coalesced", 2, 0},
			{"coalesced+cache10", 2, 10},
			{"coalesced+cache25", 4, 25},
		}
		if cfg.Quick {
			sweeps = sweeps[:3]
		}
		for _, sw := range sweeps {
			scfg := serve.DefaultConfig()
			scfg.Replicas = sw.replicas
			if sw.cachePct > 0 {
				scfg.Cache = cache.New(ds.NumVertices()*sw.cachePct/100, cache.Degree, ds.Graph)
			}
			sums, res, wall, err := serveAll(tr, scfg, queries, true)
			if err != nil {
				return nil, err
			}
			qps := float64(nQueries) / wall.Seconds()
			exact := "exact"
			for q := range sums {
				if sums[q] != serialSums[q] {
					exact = "DIFF"
				}
			}
			hit := "-"
			if scfg.Cache != nil {
				hit = fmt.Sprintf("%.0f", 100*res.st.CacheHitRate)
			}
			fmt.Fprintf(&sb, "%-10s %-22s %5d %9.1f %9.1f %7.2fx %9s %9s %6s %8.3f %7s\n",
				name, sw.label, sw.replicas, res.st.MeanBatch, qps, qps/serialQPS,
				res.st.Latency.P50.Round(time.Microsecond), res.st.Latency.P99.Round(time.Microsecond),
				hit, servingAccuracy(tr, ds.Labels, queries, res.outs), exact)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("The serial row pays every query's fixed costs alone; coalescing\n" +
		"amortizes them across up to MaxBatch dsts per micro-batch, replicas\n" +
		"drain micro-batches concurrently, and the degree cache lets resident\n" +
		"vertices skip the modeled embedding transfer. The logits column proves\n" +
		"all of it is pure perf: per-query logits are checksummed and must be\n" +
		"bitwise identical to the serial reference in every configuration.\n")
	return &Result{Text: sb.String()}, nil
}

// servingRun carries one configuration's outputs and server stats.
type servingRun struct {
	outs [][]float32
	st   serve.Stats
}

// serveAll runs every query through a fresh server built from cfg. With
// async=false queries are submitted one at a time (the serial loop); with
// async=true all queries are submitted up front and awaited together (the
// coalescing load pattern). It returns one FNV checksum per query's logit
// buffer, the run's outputs/stats and the wall time.
func serveAll(tr *frameworks.Trainer, cfg serve.Config, queries [][]graph.VID, async bool) ([]uint64, *servingRun, time.Duration, error) {
	s, err := serve.NewServer(tr, cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	defer s.Close()
	outs := make([][]float32, len(queries))
	for q := range queries {
		outs[q] = make([]float32, len(queries[q])*s.OutDim())
	}
	start := time.Now()
	if async {
		// Bulk submission: one channel hop per admission shard instead of
		// one per query.
		tks := make([]*serve.Ticket, len(queries))
		if err := s.SubmitMany(queries, outs, tks); err != nil {
			return nil, nil, 0, err
		}
		for _, tk := range tks {
			if err := tk.Wait(); err != nil {
				return nil, nil, 0, err
			}
		}
	} else {
		for q := range queries {
			if err := s.Query(queries[q], outs[q]); err != nil {
				return nil, nil, 0, err
			}
		}
	}
	wall := time.Since(start)
	sums := make([]uint64, len(queries))
	for q, out := range outs {
		h := fnv.New64a()
		for _, v := range out {
			bits := math.Float32bits(v)
			h.Write([]byte{byte(bits), byte(bits >> 8), byte(bits >> 16), byte(bits >> 24)})
		}
		sums[q] = h.Sum64()
	}
	return sums, &servingRun{outs: outs, st: s.Stats()}, wall, nil
}

// servingAccuracy scores argmax(logits) against the dataset labels over all
// queries.
func servingAccuracy(tr *frameworks.Trainer, labels []int32, queries [][]graph.VID, outs [][]float32) float64 {
	od := tr.OutDim()
	correct, total := 0, 0
	for q, dsts := range queries {
		for i, d := range dsts {
			row := outs[q][i*od : (i+1)*od]
			best := 0
			for j := 1; j < od; j++ {
				if row[j] > row[best] {
					best = j
				}
			}
			if int32(best) == labels[d] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
