package train

import (
	"testing"

	"graphtensor/internal/datasets"
	"graphtensor/internal/fault"
	"graphtensor/internal/frameworks"
)

func newTrainer(t *testing.T, kind frameworks.Kind) (*frameworks.Trainer, *datasets.Dataset) {
	t.Helper()
	ds, err := datasets.Generate("products", datasets.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	opt := frameworks.DefaultOptions()
	opt.BatchSize = 50
	tr, err := frameworks.New(kind, ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tr, ds
}

func TestDriverRunsEpochs(t *testing.T) {
	tr, ds := newTrainer(t, frameworks.BaseGT)
	cfg := Config{Epochs: 4, BatchesPerEpoch: 3, LearningRate: 0.1, ValEvery: 2}
	d := NewDriver(tr, cfg, ds.BatchDsts(50, 999))
	h, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Epochs) != 4 {
		t.Fatalf("ran %d epochs, want 4", len(h.Epochs))
	}
	evaluated := 0
	for _, e := range h.Epochs {
		if e.Evaluated {
			evaluated++
			if e.ValAcc < 0 || e.ValAcc > 1 {
				t.Errorf("val acc %g out of range", e.ValAcc)
			}
		}
	}
	if evaluated == 0 {
		t.Error("no epochs evaluated despite ValEvery=2")
	}
}

func TestDriverEarlyStop(t *testing.T) {
	tr, ds := newTrainer(t, frameworks.BaseGT)
	cfg := Config{Epochs: 50, BatchesPerEpoch: 2, LearningRate: -1, ValEvery: 1, EarlyStopPatience: 3}
	// LearningRate -1 freezes the weights, so accuracy never improves and
	// early stop must fire.
	d := NewDriver(tr, cfg, ds.BatchDsts(50, 7))
	h, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !h.StoppedEarly {
		t.Error("expected early stop with frozen weights")
	}
	if len(h.Epochs) >= 50 {
		t.Error("early stop did not cut the run short")
	}
}

// TestDriverEarlyStopDrainsRing: when early stopping abandons the rest of
// the schedule, the deferred ring.Stop must release every device buffer of
// the batches the ring had prepared ahead — zero live batch allocations is
// the observable proof the drain ran.
func TestDriverEarlyStopDrainsRing(t *testing.T) {
	tr, ds := newTrainer(t, frameworks.PreproGT)
	cfg := Config{Epochs: 40, BatchesPerEpoch: 2, LearningRate: -1, ValEvery: 1, EarlyStopPatience: 2}
	d := NewDriver(tr, cfg, ds.BatchDsts(50, 11))
	h, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !h.StoppedEarly {
		t.Fatal("expected early stop with frozen weights")
	}
	for _, label := range []string{"batch-embeddings", "batch-graphs"} {
		if n := tr.Engine.Dev.BuffersInUse(label); n != 0 {
			t.Errorf("%d %q buffers still allocated after early stop (prefetched batches not drained)", n, label)
		}
	}
}

// TestDriverMultiDevice trains real epochs through the data-parallel device
// group: the driver's single prefetch ring feeds sub-batch plans to the
// group, the trajectory matches a 1-device run bitwise, and every group
// device ends the run with zero bytes allocated (the device-arena
// discipline), including when early stopping abandons prefetched batches.
func TestDriverMultiDevice(t *testing.T) {
	run := func(numDevices int) *History {
		ds, err := datasets.Generate("products", datasets.TestScale())
		if err != nil {
			t.Fatal(err)
		}
		opt := frameworks.DefaultOptions()
		opt.BatchSize = 50
		opt.NumDevices = numDevices
		tr, err := frameworks.New(frameworks.PreproGT, ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Epochs: 30, BatchesPerEpoch: 2, LearningRate: -1, ValEvery: 1, EarlyStopPatience: 2}
		d := NewDriver(tr, cfg, ds.BatchDsts(50, 11))
		h, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		for gi, gd := range tr.Group().Devices() {
			if m := gd.Dev.MemInUse(); m != 0 {
				t.Errorf("numDevices=%d: group device %d holds %d bytes after run, want 0", numDevices, gi, m)
			}
		}
		return h
	}
	one, four := run(1), run(4)
	if !one.StoppedEarly || !four.StoppedEarly {
		t.Fatal("expected early stop with frozen weights")
	}
	if len(one.Epochs) != len(four.Epochs) {
		t.Fatalf("1-device ran %d epochs, 4-device %d", len(one.Epochs), len(four.Epochs))
	}
	for e := range one.Epochs {
		if one.Epochs[e].MeanLoss != four.Epochs[e].MeanLoss {
			t.Errorf("epoch %d: 4-device loss %v != 1-device %v", e, four.Epochs[e].MeanLoss, one.Epochs[e].MeanLoss)
		}
	}
}

func TestDriverWithoutValidation(t *testing.T) {
	tr, _ := newTrainer(t, frameworks.PreproGT)
	cfg := Config{Epochs: 3, BatchesPerEpoch: 2, LearningRate: 0.05}
	d := NewDriver(tr, cfg, nil)
	h, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range h.Epochs {
		if e.Evaluated {
			t.Error("unexpected validation without valDsts")
		}
	}
}

// TestDriverRejoinEventsSurfaced: the driver attributes the group's
// membership events — fault-injected device deaths and rejoins — to the
// epoch they happened in, and the loss trajectory is untouched by either.
func TestDriverRejoinEventsSurfaced(t *testing.T) {
	run := func(numDevices int, plan *fault.Plan) *History {
		ds, err := datasets.Generate("products", datasets.TestScale())
		if err != nil {
			t.Fatal(err)
		}
		opt := frameworks.DefaultOptions()
		opt.BatchSize = 50
		opt.NumDevices = numDevices
		opt.FaultPlan = plan
		tr, err := frameworks.New(frameworks.PreproGT, ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDriver(tr, Config{Epochs: 2, BatchesPerEpoch: 2, LearningRate: 0.05}, nil)
		h, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	// Device 1 dies at batch 0 (epoch 0) and re-enters at batch 2 (epoch 1).
	ref := run(1, nil)
	h := run(2, fault.Schedule().Kill(1, 0).Rejoin(1, 2))
	for e := range h.Epochs {
		if h.Epochs[e].MeanLoss != ref.Epochs[e].MeanLoss {
			t.Errorf("epoch %d: loss %v under death+rejoin != fault-free %v",
				e, h.Epochs[e].MeanLoss, ref.Epochs[e].MeanLoss)
		}
	}
	if got := h.Epochs[0]; got.DeadDevices != 1 || got.Rejoined != 0 {
		t.Errorf("epoch 0 recorded dead=%d rejoined=%d, want 1/0", got.DeadDevices, got.Rejoined)
	}
	if got := h.Epochs[1]; got.DeadDevices != 0 || got.Rejoined != 1 {
		t.Errorf("epoch 1 recorded dead=%d rejoined=%d, want 0/1", got.DeadDevices, got.Rejoined)
	}
	for e := range ref.Epochs {
		if ref.Epochs[e].DeadDevices != 0 || ref.Epochs[e].Rejoined != 0 {
			t.Errorf("fault-free epoch %d shows membership events", e)
		}
	}
}
