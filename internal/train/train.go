// Package train is a reusable epoch-level training driver over the
// framework trainers: it runs multiple epochs with a train/validation
// split, tracks loss and accuracy, supports early stopping, and overlaps
// preprocessing with compute through the framework's prefetcher. It is the
// harness a downstream adopter would build a training job on.
package train

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"graphtensor/internal/frameworks"
	"graphtensor/internal/graph"
)

// Config parameterizes a training run.
type Config struct {
	Epochs          int
	BatchesPerEpoch int
	// LearningRate > 0 overrides the trainer's SGD learning rate for the
	// run; 0 (the zero value) keeps the trainer's configured rate; < 0
	// freezes the weights (no updates — useful for evaluation-only runs
	// and early-stop tests).
	LearningRate float32
	// ValEvery evaluates on the validation batch every N epochs (0 = never).
	ValEvery int
	// EarlyStopPatience stops if validation accuracy does not improve for
	// this many evaluations (0 = disabled).
	EarlyStopPatience int
	// Verbose prints per-epoch progress.
	Verbose bool
	// CheckpointDir enables fault-tolerant training: every CheckpointEvery
	// consumed batches the driver snapshots the trainer there (rename-on-
	// write, CRC-sealed, newest two kept). Empty disables checkpointing.
	CheckpointDir string
	// CheckpointEvery is the snapshot cadence in global batches (<= 0 with
	// CheckpointDir set defaults to BatchesPerEpoch).
	CheckpointEvery int
	// Resume restores the newest readable snapshot in CheckpointDir before
	// training and continues the schedule from its cursor — a run killed at
	// batch B resumes mid-epoch, even on a different device count, with a
	// trajectory bitwise identical to an uninterrupted run. Corrupt
	// snapshots are skipped in favor of the previous good one; a directory
	// holding only corrupt snapshots is an error, never a silent
	// zero-weight restart.
	Resume bool
}

// DefaultConfig returns a reasonable training schedule.
func DefaultConfig() Config {
	return Config{Epochs: 10, BatchesPerEpoch: 20, LearningRate: 0.05, ValEvery: 2}
}

// EpochResult records one epoch's outcome.
type EpochResult struct {
	Epoch     int
	MeanLoss  float64
	ValAcc    float64
	Evaluated bool
	Wall      time.Duration
	// DeadDevices and Rejoined count the data-parallel group's membership
	// events during this epoch — devices lost to fault injection and
	// devices re-admitted by rejoin events (both 0 on single-device
	// trainers and fault-free runs; neither affects the loss trajectory).
	DeadDevices int
	Rejoined    int
}

// History is the sequence of epoch results.
type History struct {
	Epochs       []EpochResult
	BestValAcc   float64
	BestEpoch    int
	StoppedEarly bool
}

// Driver trains a framework trainer over epochs.
type Driver struct {
	tr      *frameworks.Trainer
	cfg     Config
	valDsts []graph.VID
}

// NewDriver builds a driver. valDsts is a fixed validation batch (drawn once
// so accuracy is comparable across epochs); pass nil to skip validation.
func NewDriver(tr *frameworks.Trainer, cfg Config, valDsts []graph.VID) *Driver {
	if cfg.BatchesPerEpoch <= 0 {
		cfg.BatchesPerEpoch = 20
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	return &Driver{tr: tr, cfg: cfg, valDsts: valDsts}
}

// Run executes the training schedule and returns the history.
//
// The whole schedule is fed through one prefetch ring, so for
// overlap-capable frameworks the preprocessing of epoch e+1 overlaps the
// compute tail of epoch e and continues through validation pauses. On early
// stopping the deferred Stop abandons and drains whatever the ring prepared
// ahead. Peak device residency is correspondingly higher than the old
// epoch-bounded prefetcher: up to PrefetchDepth+2 training batches plus the
// validation batch can hold device buffers at once (see
// frameworks.Options.PrefetchDepth).
func (d *Driver) Run() (*History, error) {
	// Apply the run's learning-rate override for the duration of the run
	// only; the trainer's configured rate is restored on return.
	if d.cfg.LearningRate != 0 {
		prev := d.tr.Opt.LearningRate
		defer func() { d.tr.Opt.LearningRate = prev }()
		if d.cfg.LearningRate > 0 {
			d.tr.Opt.LearningRate = d.cfg.LearningRate
		} else {
			d.tr.Opt.LearningRate = 0
		}
	}
	h := &History{}
	sinceImprove := 0
	// A resumed run picks up at the restored snapshot's global batch
	// cursor: the first epoch trains only its remaining tail, and the ring
	// is sized to the remaining schedule.
	var start uint64
	if d.cfg.Resume && d.cfg.CheckpointDir != "" {
		var err error
		if start, err = d.restoreLatest(); err != nil {
			return nil, err
		}
	}
	total := d.cfg.Epochs * d.cfg.BatchesPerEpoch
	if int(start) >= total {
		return h, nil
	}
	every := d.cfg.CheckpointEvery
	if d.cfg.CheckpointDir != "" && every <= 0 {
		every = d.cfg.BatchesPerEpoch
	}
	g := start
	var after func(int, float64) error
	if d.cfg.CheckpointDir != "" {
		after = func(int, float64) error {
			g++
			if g%uint64(every) == 0 {
				return d.checkpoint(g)
			}
			return nil
		}
	}
	// Dst lists are drawn lazily on the ring's producer as each batch's
	// preparation starts — the schedule-length sequence is never
	// materialized, and early stopping wastes no generation.
	ring := d.tr.NewRingN(total-int(start), func(int) []graph.VID { return d.tr.NextDsts() })
	defer ring.Stop()
	for e := int(start) / d.cfg.BatchesPerEpoch; e < d.cfg.Epochs; e++ {
		nb := d.cfg.BatchesPerEpoch
		if rem := int(start) - e*d.cfg.BatchesPerEpoch; rem > 0 {
			nb -= rem // resumed mid-epoch: train only the tail
		}
		t0 := time.Now()
		var dead0, rejoin0 int
		if g := d.tr.Group(); g != nil {
			dead0, rejoin0 = g.DeadDevices(), g.Rejoined()
		}
		loss, err := d.tr.TrainStreamHook(ring, nb, after)
		if err != nil {
			return nil, err
		}
		// After the first epoch, fit the DKP cost model (paper's schedule).
		if e == 0 {
			_ = d.tr.Warmup(0) // fit from observations if DKP is enabled
		}
		res := EpochResult{Epoch: e, MeanLoss: loss, Wall: time.Since(t0)}
		if g := d.tr.Group(); g != nil {
			res.DeadDevices = g.DeadDevices() - dead0
			res.Rejoined = g.Rejoined() - rejoin0
		}
		if d.valDsts != nil && d.cfg.ValEvery > 0 && e%d.cfg.ValEvery == 0 {
			acc, err := d.validate()
			if err != nil {
				return nil, err
			}
			res.ValAcc = acc
			res.Evaluated = true
			if acc > h.BestValAcc {
				h.BestValAcc = acc
				h.BestEpoch = e
				sinceImprove = 0
			} else {
				sinceImprove++
			}
		}
		res.Wall = time.Since(t0)
		h.Epochs = append(h.Epochs, res)
		if d.cfg.Verbose {
			mem := ""
			if res.DeadDevices > 0 || res.Rejoined > 0 {
				mem = fmt.Sprintf("  dead %d  rejoined %d", res.DeadDevices, res.Rejoined)
			}
			if res.Evaluated {
				fmt.Printf("epoch %2d  loss %.4f  val-acc %.3f  %v%s\n", e, res.MeanLoss, res.ValAcc, res.Wall.Round(time.Millisecond), mem)
			} else {
				fmt.Printf("epoch %2d  loss %.4f  %v%s\n", e, res.MeanLoss, res.Wall.Round(time.Millisecond), mem)
			}
		}
		if d.cfg.EarlyStopPatience > 0 && sinceImprove >= d.cfg.EarlyStopPatience {
			h.StoppedEarly = true
			break
		}
	}
	return h, nil
}

// validate prepares the fixed validation batch and evaluates accuracy.
func (d *Driver) validate() (float64, error) {
	b, err := d.tr.Prepare(d.valDsts, nil)
	if err != nil {
		return 0, err
	}
	defer b.Release()
	return d.tr.Evaluate(b)
}

// ckptPrefix names snapshot files; the zero-padded global batch cursor
// makes lexicographic order the recovery order.
const ckptPrefix = "ckpt-"

// checkpoint snapshots the trainer at global batch g and prunes old
// snapshots down to the newest two (the fallback pair: newest plus one
// spare in case the newest is later found damaged).
func (d *Driver) checkpoint(g uint64) error {
	path := filepath.Join(d.cfg.CheckpointDir, fmt.Sprintf("%s%010d", ckptPrefix, g))
	if err := d.tr.Checkpoint(path, g); err != nil {
		return err
	}
	names, err := d.snapshots()
	if err != nil {
		return err
	}
	for _, old := range names[:max(0, len(names)-2)] {
		if err := os.Remove(filepath.Join(d.cfg.CheckpointDir, old)); err != nil {
			return err
		}
	}
	return nil
}

// snapshots lists the checkpoint files in CheckpointDir, oldest first.
func (d *Driver) snapshots() ([]string, error) {
	entries, err := os.ReadDir(d.cfg.CheckpointDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), ckptPrefix) && !strings.Contains(e.Name(), ".tmp") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// restoreLatest restores the newest readable snapshot, scanning past
// corrupt files to the previous good one. An empty (or absent) directory
// starts fresh at batch 0; a directory holding only corrupt snapshots is an
// error — training must never silently restart from zero weights when
// checkpoints were expected to exist.
func (d *Driver) restoreLatest() (uint64, error) {
	names, err := d.snapshots()
	if err != nil {
		return 0, err
	}
	if len(names) == 0 {
		return 0, nil
	}
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(d.cfg.CheckpointDir, names[i])
		step, err := d.tr.Restore(path)
		switch {
		case err == nil:
			return step, nil
		case errors.Is(err, frameworks.ErrCheckpointCorrupt):
			continue // fall back to the previous snapshot
		default:
			return 0, err // mismatched run — refusing beats clobbering
		}
	}
	return 0, fmt.Errorf("train: every checkpoint in %s is corrupt: %w",
		d.cfg.CheckpointDir, frameworks.ErrCheckpointCorrupt)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
