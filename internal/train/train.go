// Package train is a reusable epoch-level training driver over the
// framework trainers: it runs multiple epochs with a train/validation
// split, tracks loss and accuracy, supports early stopping, and overlaps
// preprocessing with compute through the framework's prefetcher. It is the
// harness a downstream adopter would build a training job on.
package train

import (
	"fmt"
	"time"

	"graphtensor/internal/frameworks"
	"graphtensor/internal/graph"
)

// Config parameterizes a training run.
type Config struct {
	Epochs          int
	BatchesPerEpoch int
	// LearningRate > 0 overrides the trainer's SGD learning rate for the
	// run; 0 (the zero value) keeps the trainer's configured rate; < 0
	// freezes the weights (no updates — useful for evaluation-only runs
	// and early-stop tests).
	LearningRate float32
	// ValEvery evaluates on the validation batch every N epochs (0 = never).
	ValEvery int
	// EarlyStopPatience stops if validation accuracy does not improve for
	// this many evaluations (0 = disabled).
	EarlyStopPatience int
	// Verbose prints per-epoch progress.
	Verbose bool
}

// DefaultConfig returns a reasonable training schedule.
func DefaultConfig() Config {
	return Config{Epochs: 10, BatchesPerEpoch: 20, LearningRate: 0.05, ValEvery: 2}
}

// EpochResult records one epoch's outcome.
type EpochResult struct {
	Epoch     int
	MeanLoss  float64
	ValAcc    float64
	Evaluated bool
	Wall      time.Duration
}

// History is the sequence of epoch results.
type History struct {
	Epochs       []EpochResult
	BestValAcc   float64
	BestEpoch    int
	StoppedEarly bool
}

// Driver trains a framework trainer over epochs.
type Driver struct {
	tr      *frameworks.Trainer
	cfg     Config
	valDsts []graph.VID
}

// NewDriver builds a driver. valDsts is a fixed validation batch (drawn once
// so accuracy is comparable across epochs); pass nil to skip validation.
func NewDriver(tr *frameworks.Trainer, cfg Config, valDsts []graph.VID) *Driver {
	if cfg.BatchesPerEpoch <= 0 {
		cfg.BatchesPerEpoch = 20
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	return &Driver{tr: tr, cfg: cfg, valDsts: valDsts}
}

// Run executes the training schedule and returns the history.
//
// The whole schedule is fed through one prefetch ring, so for
// overlap-capable frameworks the preprocessing of epoch e+1 overlaps the
// compute tail of epoch e and continues through validation pauses. On early
// stopping the deferred Stop abandons and drains whatever the ring prepared
// ahead. Peak device residency is correspondingly higher than the old
// epoch-bounded prefetcher: up to PrefetchDepth+2 training batches plus the
// validation batch can hold device buffers at once (see
// frameworks.Options.PrefetchDepth).
func (d *Driver) Run() (*History, error) {
	// Apply the run's learning-rate override for the duration of the run
	// only; the trainer's configured rate is restored on return.
	if d.cfg.LearningRate != 0 {
		prev := d.tr.Opt.LearningRate
		defer func() { d.tr.Opt.LearningRate = prev }()
		if d.cfg.LearningRate > 0 {
			d.tr.Opt.LearningRate = d.cfg.LearningRate
		} else {
			d.tr.Opt.LearningRate = 0
		}
	}
	h := &History{}
	sinceImprove := 0
	// Dst lists are drawn lazily on the ring's producer as each batch's
	// preparation starts — the schedule-length sequence is never
	// materialized, and early stopping wastes no generation.
	total := d.cfg.Epochs * d.cfg.BatchesPerEpoch
	ring := d.tr.NewRingN(total, func(int) []graph.VID { return d.tr.NextDsts() })
	defer ring.Stop()
	for e := 0; e < d.cfg.Epochs; e++ {
		t0 := time.Now()
		wall, loss, err := d.tr.TrainStream(ring, d.cfg.BatchesPerEpoch)
		if err != nil {
			return nil, err
		}
		// After the first epoch, fit the DKP cost model (paper's schedule).
		if e == 0 {
			_ = d.tr.Warmup(0) // fit from observations if DKP is enabled
		}
		res := EpochResult{Epoch: e, MeanLoss: loss, Wall: wall}
		if d.valDsts != nil && d.cfg.ValEvery > 0 && e%d.cfg.ValEvery == 0 {
			acc, err := d.validate()
			if err != nil {
				return nil, err
			}
			res.ValAcc = acc
			res.Evaluated = true
			if acc > h.BestValAcc {
				h.BestValAcc = acc
				h.BestEpoch = e
				sinceImprove = 0
			} else {
				sinceImprove++
			}
		}
		res.Wall = time.Since(t0)
		h.Epochs = append(h.Epochs, res)
		if d.cfg.Verbose {
			if res.Evaluated {
				fmt.Printf("epoch %2d  loss %.4f  val-acc %.3f  %v\n", e, res.MeanLoss, res.ValAcc, res.Wall.Round(time.Millisecond))
			} else {
				fmt.Printf("epoch %2d  loss %.4f  %v\n", e, res.MeanLoss, res.Wall.Round(time.Millisecond))
			}
		}
		if d.cfg.EarlyStopPatience > 0 && sinceImprove >= d.cfg.EarlyStopPatience {
			h.StoppedEarly = true
			break
		}
	}
	return h, nil
}

// validate prepares the fixed validation batch and evaluates accuracy.
func (d *Driver) validate() (float64, error) {
	b, err := d.tr.Prepare(d.valDsts, nil)
	if err != nil {
		return 0, err
	}
	defer b.Release()
	return d.tr.Evaluate(b)
}
