package train

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"graphtensor/internal/datasets"
	"graphtensor/internal/frameworks"
)

func groupTrainer(t *testing.T, nDev int) *frameworks.Trainer {
	t.Helper()
	ds, err := datasets.Generate("products", datasets.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	opt := frameworks.DefaultOptions()
	opt.BatchSize = 50
	opt.NumDevices = nDev
	tr, err := frameworks.New(frameworks.BaseGT, ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func flatWeights(tr *frameworks.Trainer) []float32 {
	var w []float32
	for _, l := range tr.Model.Layers {
		w = append(w, l.W.Data...)
		w = append(w, l.B...)
	}
	return w
}

// TestDriverCrashRestoreBitwise is the end-to-end crash-resume guarantee:
// a run killed after 5 of 12 batches (simulated as a driver whose schedule
// ends at batch 5, checkpointing there) resumes from the snapshot on a
// DIFFERENT device count, picks up mid-epoch, and finishes with weights
// bitwise identical to an uninterrupted 12-batch run.
func TestDriverCrashRestoreBitwise(t *testing.T) {
	ref := groupTrainer(t, 1)
	if _, err := NewDriver(ref, Config{Epochs: 3, BatchesPerEpoch: 4, LearningRate: 0.1}, nil).Run(); err != nil {
		t.Fatal(err)
	}
	refW := flatWeights(ref)

	dir := t.TempDir()
	// The "crashed" run: 2 devices, dies right after checkpointing batch 5.
	crashed := groupTrainer(t, 2)
	cfg := Config{Epochs: 1, BatchesPerEpoch: 5, LearningRate: 0.1,
		CheckpointDir: dir, CheckpointEvery: 5}
	if _, err := NewDriver(crashed, cfg, nil).Run(); err != nil {
		t.Fatal(err)
	}

	// Resume on 1 device with the real 3x4 schedule: restores cursor 5,
	// trains the 3-batch tail of epoch 1 plus epoch 2.
	resumed := groupTrainer(t, 1)
	cfg = Config{Epochs: 3, BatchesPerEpoch: 4, LearningRate: 0.1,
		CheckpointDir: dir, CheckpointEvery: 4, Resume: true}
	h, err := NewDriver(resumed, cfg, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Epochs) != 2 {
		t.Fatalf("resumed run trained %d epochs, want the remaining 2", len(h.Epochs))
	}
	if h.Epochs[0].Epoch != 1 {
		t.Fatalf("resumed run restarted at epoch %d, want mid-schedule epoch 1", h.Epochs[0].Epoch)
	}
	for i, w := range flatWeights(resumed) {
		if w != refW[i] {
			t.Fatalf("crash-resumed weight[%d] = %v, uninterrupted run %v", i, w, refW[i])
		}
	}
}

// TestDriverRestoreFallsBackPastCorrupt: when the newest snapshot is
// damaged, Resume restores the previous good one and the finished run still
// matches an uninterrupted reference bitwise. When every snapshot is
// damaged, Run fails with ErrCheckpointCorrupt — never a silent zero-weight
// restart.
func TestDriverRestoreFallsBackPastCorrupt(t *testing.T) {
	ref := groupTrainer(t, 1)
	if _, err := NewDriver(ref, Config{Epochs: 3, BatchesPerEpoch: 3, LearningRate: 0.1}, nil).Run(); err != nil {
		t.Fatal(err)
	}
	refW := flatWeights(ref)

	dir := t.TempDir()
	first := groupTrainer(t, 1)
	cfg := Config{Epochs: 2, BatchesPerEpoch: 3, LearningRate: 0.1,
		CheckpointDir: dir, CheckpointEvery: 3}
	if _, err := NewDriver(first, cfg, nil).Run(); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("checkpoint dir holds %d snapshots, want the pruned pair", len(names))
	}

	// Truncate the newest snapshot (batch 6); the good batch-3 one remains.
	newest := filepath.Join(dir, names[len(names)-1].Name())
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := groupTrainer(t, 1)
	cfg = Config{Epochs: 3, BatchesPerEpoch: 3, LearningRate: 0.1,
		CheckpointDir: dir, CheckpointEvery: 3, Resume: true}
	h, err := NewDriver(resumed, cfg, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Epochs) != 2 {
		t.Fatalf("fallback resume trained %d epochs, want 2 (from batch 3)", len(h.Epochs))
	}
	for i, w := range flatWeights(resumed) {
		if w != refW[i] {
			t.Fatalf("fallback-resumed weight[%d] = %v, uninterrupted run %v", i, w, refW[i])
		}
	}

	// Damage every snapshot: resume must refuse, not restart from zero.
	names, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range names {
		p := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x10
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	dead := groupTrainer(t, 1)
	if _, err := NewDriver(dead, cfg, nil).Run(); !errors.Is(err, frameworks.ErrCheckpointCorrupt) {
		t.Fatalf("all-corrupt resume returned %v, want ErrCheckpointCorrupt", err)
	}
}
