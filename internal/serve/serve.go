// Package serve is GraphTensor's concurrent inference serving engine: the
// steady-state counterpart of the training pipeline for a deployed GNN
// service. A served query is almost all preprocessing — sample → reindex →
// lookup → transfer, with a single FWP at the end — so the package applies
// the paper's pipelined-preprocessing insight (§V-B) plus the repository's
// arena/slot/worker-pool disciplines to the request path:
//
//   - Admission + coalescing: individual node-inference requests enter a
//     lock-light queue (one channel hop) and are coalesced into micro-
//     batches under a size/deadline policy (≤ MaxBatch dsts or MaxDelay),
//     amortizing the per-query fixed costs — sampler setup, layer-chain
//     translation, kernel launch — across every query in the batch.
//     Per-request logit rows are scattered back from the batched logits.
//   - Inference fast path: replicas prepare through a shared host-only
//     pipeline.Scheduler (persistent subtask engine, warm pipeline.Slot per
//     replica) and run FWP only — no gradient shards, no backward
//     workspaces — so a warm served batch allocates a small constant.
//   - Cache-aware prep: an optional PaGraph-style embedding cache
//     (internal/cache) lets resident vertices skip the modeled host→device
//     transfer; each replica pays the miss-only scatter on its own PCIe
//     engine, exactly like the data-parallel group's shard discipline.
//   - Replica scaling: N replicas — one simulated device, kernels.Ctx,
//     device arena and weight snapshot each, the multigpu replica
//     machinery — drain the micro-batch queue concurrently; their kernel
//     launches and prep subtasks ride the shared sched worker pool.
//
// Coalescing is pure perf: neighbor choice is a deterministic function of
// (seed, dst), every kernel accumulates per dst row in an order fixed by
// that dst's own edge list, and replicas pin aggregation-first placement —
// so a query's logits are bitwise identical whether it is served alone or
// coalesced with any other queries, at any GOMAXPROCS and replica count
// (guarded by TestCoalescedLogitsBitwise).
package serve

import (
	"errors"
	"sync"
	"time"

	"graphtensor/internal/cache"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/graph"
	"graphtensor/internal/metrics"
	"graphtensor/internal/pipeline"
)

// Config parameterizes the serving engine.
type Config struct {
	// MaxBatch caps the coalesced micro-batch size in distinct dst vertices
	// (default 512): the admission loop cuts a batch as soon as it fills.
	MaxBatch int
	// MaxDelay is the admission deadline (default 2ms): a non-empty batch
	// is cut at most this long after its first query arrived, bounding the
	// latency cost of coalescing under light load.
	MaxDelay time.Duration
	// Replicas is the number of serving replicas (default 1), each a
	// simulated device with its own kernel context and weight snapshot.
	Replicas int
	// QueueCap bounds the admission queue (default 4096 in-flight queries);
	// a full queue applies backpressure to Submit.
	QueueCap int
	// Cache, when non-nil, is the embedding cache the preprocessing K/T
	// subtasks consult; resident vertices skip the modeled miss-only
	// scatter every replica pays for its batches.
	Cache *cache.Cache
}

// DefaultConfig returns the serving defaults (≤512 dsts or 2ms).
func DefaultConfig() Config {
	return Config{MaxBatch: 512, MaxDelay: 2 * time.Millisecond, Replicas: 1, QueueCap: 4096}
}

// ErrClosed is returned for queries submitted to (or pending in) a closed
// server.
var ErrClosed = errors.New("serve: server closed")

// Ticket is one in-flight query. Tickets are pooled: Wait recycles the
// ticket, so it must not be used afterwards.
type Ticket struct {
	srv  *Server
	dsts []graph.VID // retained copy of the query's dst vertices
	out  []float32   // caller's logit buffer: len(dsts) × OutDim rows
	enq  time.Time
	done chan error // buffered 1, retained across checkouts
}

// Wait blocks until the query's logits have been scattered into the buffer
// passed to Submit, then recycles the ticket.
func (tk *Ticket) Wait() error {
	err := <-tk.done
	srv := tk.srv
	tk.srv, tk.out = nil, nil
	tk.dsts = tk.dsts[:0]
	srv.tickets.Put(tk)
	return err
}

// microBatch is one coalesced unit of work: the deduplicated union of its
// tickets' dst vertices plus the dst→row directory the scatter uses.
// Micro-batches are pooled; every field is rebuilt per checkout.
type microBatch struct {
	dsts    []graph.VID
	index   map[graph.VID]int32
	tickets []*Ticket
}

// Server coalesces inference requests and drains them over its replicas.
type Server struct {
	tr     *frameworks.Trainer
	cfg    Config
	outDim int

	// sched is the replicas' shared host-only preprocessing engine: its
	// persistent sampler and subtask workers serve concurrent PrepareSlot
	// calls, one per replica draining a batch.
	sched    *pipeline.Scheduler
	replicas []*replica

	in          chan *Ticket
	batches     chan *microBatch
	stop        chan struct{}
	closed      sync.Once
	schedClosed sync.Once
	wg          sync.WaitGroup

	// closeMu fences admission against Close: Submit holds the read side
	// across its queue send, so once Close flips closing (under the write
	// side) and signals stop, no new ticket can slip into the queue — the
	// admission loop's final drain serves everything that made it in, and
	// nothing is ever stranded.
	closeMu sync.RWMutex
	closing bool

	tickets sync.Pool
	mbs     sync.Pool

	mu       sync.Mutex
	lat      []time.Duration // ring of the latWindow most recent latencies
	latPos   int             // next overwrite index once the ring is full
	queries  int
	served   int // batches completed
	dsts     int // coalesced dsts over all served batches
	firstEnq time.Time
	lastDone time.Time
}

// latWindow bounds the retained latency history: Stats and Latencies
// report over the most recent latWindow completed queries, so a long-lived
// server's memory (and its Stats sort) stays constant under sustained
// traffic.
const latWindow = 1 << 16

// NewServer builds a serving engine over a trainer's dataset and trained
// weights and starts its admission loop and replicas. The trainer is only
// read (weight snapshots, sampler/format configuration); it can keep
// training between servers, but not concurrently with one.
func NewServer(tr *frameworks.Trainer, cfg Config) (*Server, error) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 512
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	s := &Server{
		tr:      tr,
		cfg:     cfg,
		outDim:  tr.OutDim(),
		in:      make(chan *Ticket, cfg.QueueCap),
		batches: make(chan *microBatch, 2*cfg.Replicas),
		stop:    make(chan struct{}),
	}

	pcfg := pipeline.DefaultConfig()
	pcfg.Sampler = tr.SamplerConfig()
	pcfg.Format = tr.Format()
	pcfg.Pinned = tr.Pinned()
	pcfg.HostOnly = true // each replica pays its own miss-only scatter
	pcfg.Cache = cfg.Cache
	s.sched = pipeline.NewScheduler(tr.Dataset.Graph, tr.Dataset.Features, tr.Dataset.Labels,
		nil, pcfg)

	for i := 0; i < cfg.Replicas; i++ {
		r, err := newReplica(s, i)
		if err != nil {
			close(s.stop)
			return nil, err
		}
		s.replicas = append(s.replicas, r)
	}

	s.wg.Add(1 + len(s.replicas))
	go s.coalesce()
	for _, r := range s.replicas {
		go r.drain()
	}
	return s, nil
}

// OutDim returns the logit row width a query scatters back per dst.
func (s *Server) OutDim() int { return s.outDim }

// Replicas returns the replica count.
func (s *Server) Replicas() int { return len(s.replicas) }

// Submit enqueues one query — a set of dst vertices — and returns its
// ticket. out receives the per-dst logit rows (len(dsts)·OutDim values,
// row i belonging to dsts[i]) before the ticket completes; dsts is copied
// and may be reused immediately. A full admission queue blocks (that is the
// engine's backpressure).
func (s *Server) Submit(dsts []graph.VID, out []float32) (*Ticket, error) {
	if len(out) < len(dsts)*s.outDim {
		return nil, errors.New("serve: logit buffer smaller than len(dsts) x OutDim")
	}
	tk, _ := s.tickets.Get().(*Ticket)
	if tk == nil {
		tk = &Ticket{done: make(chan error, 1)}
	}
	tk.srv = s
	tk.dsts = append(tk.dsts[:0], dsts...)
	tk.out = out
	tk.enq = time.Now()
	s.closeMu.RLock()
	if s.closing {
		s.closeMu.RUnlock()
		tk.srv, tk.out = nil, nil
		s.tickets.Put(tk)
		return nil, ErrClosed
	}
	s.in <- tk
	s.closeMu.RUnlock()
	return tk, nil
}

// Query is a blocking Submit + Wait.
func (s *Server) Query(dsts []graph.VID, out []float32) error {
	tk, err := s.Submit(dsts, out)
	if err != nil {
		return err
	}
	return tk.Wait()
}

// coalesce is the admission loop: it accumulates queries into the current
// micro-batch and cuts it when the batch reaches MaxBatch distinct dsts or
// MaxDelay after its first query, whichever comes first.
func (s *Server) coalesce() {
	defer s.wg.Done()
	defer close(s.batches)
	timer := time.NewTimer(time.Hour)
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	stopTimer()
	var cur *microBatch
	flush := func() {
		if cur == nil {
			return
		}
		s.batches <- cur
		cur = nil
	}
	for {
		if cur == nil {
			select {
			case tk := <-s.in:
				cur = s.admit(cur, tk)
				if len(cur.dsts) >= s.cfg.MaxBatch {
					flush()
				} else {
					timer.Reset(s.cfg.MaxDelay)
				}
			case <-s.stop:
				s.drainClosing(&cur, flush)
				return
			}
			continue
		}
		select {
		case tk := <-s.in:
			cur = s.admit(cur, tk)
			if len(cur.dsts) >= s.cfg.MaxBatch {
				stopTimer()
				flush()
			}
		case <-timer.C:
			flush()
		case <-s.stop:
			stopTimer()
			s.drainClosing(&cur, flush)
			return
		}
	}
}

// admit folds one ticket into the current micro-batch, deduplicating dsts
// across queries (two queries asking for the same vertex share its row).
func (s *Server) admit(cur *microBatch, tk *Ticket) *microBatch {
	if cur == nil {
		cur, _ = s.mbs.Get().(*microBatch)
		if cur == nil {
			cur = &microBatch{index: make(map[graph.VID]int32)}
		}
	}
	s.mu.Lock()
	if s.firstEnq.IsZero() {
		s.firstEnq = tk.enq
	}
	s.mu.Unlock()
	for _, d := range tk.dsts {
		if _, ok := cur.index[d]; !ok {
			cur.index[d] = int32(len(cur.dsts))
			cur.dsts = append(cur.dsts, d)
		}
	}
	cur.tickets = append(cur.tickets, tk)
	return cur
}

// drainClosing serves every query that made it into the queue before Close
// flipped admission off (no ticket is ever stranded — Close is a graceful
// drain), cutting at MaxBatch as usual.
func (s *Server) drainClosing(cur **microBatch, flush func()) {
	for {
		select {
		case tk := <-s.in:
			*cur = s.admit(*cur, tk)
			if len((*cur).dsts) >= s.cfg.MaxBatch {
				flush()
			}
		default:
			flush()
			return
		}
	}
}

// putBatch resets a served micro-batch into the pool.
func (s *Server) putBatch(mb *microBatch) {
	for _, d := range mb.dsts {
		delete(mb.index, d)
	}
	mb.dsts = mb.dsts[:0]
	for i := range mb.tickets {
		mb.tickets[i] = nil
	}
	mb.tickets = mb.tickets[:0]
	s.mbs.Put(mb)
}

// complete records a served batch's latencies and signals its tickets.
// Tickets are not touched after their done send — Wait recycles them.
func (s *Server) complete(mb *microBatch, now time.Time, err error) {
	s.mu.Lock()
	for _, tk := range mb.tickets {
		if len(s.lat) < latWindow {
			s.lat = append(s.lat, now.Sub(tk.enq))
		} else {
			s.lat[s.latPos] = now.Sub(tk.enq)
			s.latPos = (s.latPos + 1) % latWindow
		}
	}
	s.queries += len(mb.tickets)
	s.served++
	s.dsts += len(mb.dsts)
	if now.After(s.lastDone) {
		s.lastDone = now
	}
	s.mu.Unlock()
	for _, tk := range mb.tickets {
		tk.done <- err
	}
	s.putBatch(mb)
}

// Close stops admission (subsequent Submits fail with ErrClosed), serves
// everything already queued, waits for the admission loop and replicas to
// exit, and retires the preprocessing scheduler's worker set (a process
// cycling servers leaks nothing). Idempotent.
func (s *Server) Close() {
	s.closed.Do(func() {
		s.closeMu.Lock()
		s.closing = true
		s.closeMu.Unlock()
		close(s.stop)
	})
	s.wg.Wait()
	s.schedClosed.Do(s.sched.Close)
}

// Stats is the serving engine's throughput/latency report, in the
// GroupStats style of the data-parallel engine.
type Stats struct {
	Replicas int
	// Queries and Batches count completed work; CoalescedDsts/Batches is
	// the mean micro-batch size the admission policy achieved.
	Queries, Batches int
	MeanBatch        float64
	// Throughput is completed queries per second of wall time between the
	// first admission and the last completion.
	Throughput float64
	// Latency summarizes end-to-end query latencies (admission → scatter)
	// over the most recent latWindow queries.
	Latency metrics.LatencySummary
	// CacheHitRate is the embedding cache's cumulative hit rate (0 without
	// a cache).
	CacheHitRate float64
}

// Stats snapshots the server's cumulative report.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{Replicas: len(s.replicas), Queries: s.queries, Batches: s.served}
	if s.served > 0 {
		st.MeanBatch = float64(s.dsts) / float64(s.served)
	}
	if wall := s.lastDone.Sub(s.firstEnq); wall > 0 {
		st.Throughput = float64(s.queries) / wall.Seconds()
	}
	lat := append([]time.Duration(nil), s.lat...)
	s.mu.Unlock()
	st.Latency = metrics.SummarizeLatencies(lat)
	st.CacheHitRate = s.cfg.Cache.HitRate()
	return st
}

// Latencies returns a copy of the most recent latWindow completed queries'
// end-to-end latencies (for histograms beyond the Stats quantiles).
func (s *Server) Latencies() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.lat...)
}
