// Package serve is GraphTensor's concurrent inference serving engine: the
// steady-state counterpart of the training pipeline for a deployed GNN
// service. A served query is almost all preprocessing — sample → reindex →
// lookup → transfer, with a single FWP at the end — so the package applies
// the paper's pipelined-preprocessing insight (§V-B) plus the repository's
// arena/slot/worker-pool disciplines to the request path:
//
//   - Sharded admission + coalescing: queries route to an admission shard
//     by a deterministic hash of their dst set (sticky — the path is a pure
//     function of the query's contents, never of load), so no single
//     admission goroutine or global lock serializes the front end. Each
//     shard coalesces its queries into micro-batches under its own
//     size/deadline policy (≤ MaxBatch dsts or MaxDelay), amortizing the
//     per-query fixed costs — sampler setup, layer-chain translation,
//     kernel launch — across every query in the batch. Per-request logit
//     rows are scattered back from the batched logits.
//   - Work stealing at batch granularity: each shard feeds its own replica,
//     and an idle replica steals whole micro-batches from other shards'
//     queues — batch composition is fixed at admission, so stealing moves
//     work without ever changing what any query computes.
//   - Lock-free stats: the hot completion path touches only per-shard
//     atomic counters and a per-shard lock-free latency ring; the one-shot
//     first-admission stamp is a CAS. Rings and counters merge only inside
//     Stats/Latencies.
//   - Inference fast path: replicas prepare through a shared host-only
//     pipeline.Scheduler (persistent subtask engine, warm pipeline.Slot per
//     replica) and run FWP only — no gradient shards, no backward
//     workspaces — so a warm served batch allocates a small constant.
//   - Cache-aware prep: an optional PaGraph-style embedding cache
//     (internal/cache) lets resident vertices skip the modeled host→device
//     transfer; residency reads ride the cache's lock-free epoch snapshot,
//     and each replica pays the miss-only scatter on its own PCIe engine.
//   - Replica scaling: N replicas — one simulated device, kernels.Ctx,
//     device arena and weight snapshot each, the multigpu replica
//     machinery — drain the micro-batch queues concurrently; their kernel
//     launches and prep subtasks ride the shared sched worker pool.
//
// Coalescing is pure perf: neighbor choice is a deterministic function of
// (seed, dst), every kernel accumulates per dst row in an order fixed by
// that dst's own edge list, and every replica's kernel placements are fixed
// per layer at snapshot time — a pure function of the trainer's fitted cost
// profile and expected serving shape, never of serve.Config or batch size —
// so a query's logits are bitwise identical whether it is served alone or
// coalesced with any other queries, at any GOMAXPROCS, shard count and
// replica count (guarded by TestCoalescedLogitsBitwise).
package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"graphtensor/internal/cache"
	"graphtensor/internal/dkp"
	"graphtensor/internal/fault"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/graph"
	"graphtensor/internal/metrics"
	"graphtensor/internal/pipeline"
)

// Config parameterizes the serving engine.
type Config struct {
	// MaxBatch caps the coalesced micro-batch size in distinct dst vertices:
	// an admission shard cuts a batch as soon as it fills. Zero derives the
	// cap from the trainer's device class via dkp.Recommend (512 for the
	// default class); an explicit value overrides.
	MaxBatch int
	// MaxDelay is the admission deadline: a non-empty batch is cut at most
	// this long after its first query arrived, bounding the latency cost of
	// coalescing under light load. Zero derives the deadline from the
	// fitted cost model via dkp.Recommend (2ms for the default class); an
	// explicit value overrides.
	MaxDelay time.Duration
	// Replicas is the number of serving replicas (default 1), each a
	// simulated device with its own kernel context and weight snapshot.
	Replicas int
	// Shards is the number of admission shards (default: one per replica).
	// A query routes to shards[hash(dsts) % Shards] — sticky by contents —
	// and each shard cuts micro-batches independently, so admission scales
	// with the replica count instead of funneling through one goroutine.
	Shards int
	// QueueCap bounds the total admission queue (default 4096 in-flight
	// queries, split evenly across shards); a full shard queue applies
	// backpressure to Submit.
	QueueCap int
	// Cache, when non-nil, is the embedding cache the preprocessing K/T
	// subtasks consult; resident vertices skip the modeled miss-only
	// scatter every replica pays for its batches.
	Cache *cache.Cache
	// FaultPlan, when non-nil, injects the plan's deterministic device
	// deaths and stalls into the replicas' devices at batch boundaries
	// (device = replica id, step = that replica's served-batch count) and
	// enables elastic membership: a replica whose device died parks instead
	// of exiting, and ReplicaRejoins — consulted at a server-wide
	// served-batch boundary sequence — respawns it (device revived under
	// its old identity, fresh weight snapshot installed, same home and
	// steal queues). Nil — the production configuration — costs one
	// predicted branch per batch.
	FaultPlan *fault.Plan
}

// DefaultConfig returns the serving defaults. MaxBatch and MaxDelay are
// left zero so NewServer derives them from the trainer's fitted cost
// profile via dkp.Recommend (512 dsts / 2ms for the default device class).
func DefaultConfig() Config {
	return Config{Replicas: 1, QueueCap: 4096}
}

// ErrClosed is returned for queries submitted to (or pending in) a closed
// server.
var ErrClosed = errors.New("serve: server closed")

// ErrDeadlineExceeded is returned for queries whose deadline lapsed before
// their logits were served. An expired query always completes with this
// error — never silently dropped — and is counted in the per-shard Expired
// stat.
var ErrDeadlineExceeded = errors.New("serve: query deadline exceeded")

// ErrReplicasLost is returned for queries caught in the queues after fault
// injection has killed every replica's device: with no surviving device the
// server fails the work rather than strand its callers.
var ErrReplicasLost = errors.New("serve: every replica's device was lost")

// testHookServeBatch, when set (before the server starts — tests only),
// runs at the head of every replica's serveBatch. The backpressure tests
// use it to stall the drain deterministically so admission queues fill.
var testHookServeBatch func()

// Ticket is one in-flight query. Tickets are pooled: Wait recycles the
// ticket, so it must not be used afterwards.
type Ticket struct {
	srv  *Server
	dsts []graph.VID // retained copy of the query's dst vertices
	out  []float32   // caller's logit buffer: len(dsts) × OutDim rows
	enq  time.Time
	next *Ticket    // SubmitMany chain link: one channel hop per shard
	done chan error // buffered 1, retained across checkouts

	// deadline and ctx carry the query's QoS bound (SubmitDeadline /
	// SubmitCtx). Both zero — the plain Submit path — means the lapse
	// checks reduce to two nil/zero tests and never read the clock.
	deadline time.Time
	ctx      context.Context
}

// Wait blocks until the query's logits have been scattered into the buffer
// passed to Submit, then recycles the ticket.
func (tk *Ticket) Wait() error {
	err := <-tk.done
	srv := tk.srv
	tk.srv, tk.out, tk.next, tk.ctx = nil, nil, nil, nil
	tk.deadline = time.Time{}
	tk.dsts = tk.dsts[:0]
	srv.tickets.Put(tk)
	return err
}

// lapsedErr classifies a query's QoS state at now: nil while live,
// ErrDeadlineExceeded once the deadline (explicit or the context's) has
// passed, the context's own error for a cancellation.
func lapsedErr(ctx context.Context, deadline, now time.Time) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return ErrDeadlineExceeded
			}
			return err
		}
	}
	if !deadline.IsZero() && !now.Before(deadline) {
		return ErrDeadlineExceeded
	}
	return nil
}

// lapsed is the admission-time check: it reads the clock only when the
// ticket actually carries a bound, so unbounded queries pay nothing.
func (tk *Ticket) lapsed() error {
	if tk.ctx == nil && tk.deadline.IsZero() {
		return nil
	}
	return lapsedErr(tk.ctx, tk.deadline, time.Now())
}

// lapsedAt is the completion-time check against an already-taken stamp.
func (tk *Ticket) lapsedAt(now time.Time) error {
	if tk.ctx == nil && tk.deadline.IsZero() {
		return nil
	}
	return lapsedErr(tk.ctx, tk.deadline, now)
}

// microBatch is one coalesced unit of work: the deduplicated union of its
// tickets' dst vertices plus the dst→row directory the scatter uses, tagged
// with the admission shard that cut it (stats attribution survives work
// stealing). Micro-batches are pooled; every field is rebuilt per checkout.
type microBatch struct {
	sh      *shard
	dsts    []graph.VID
	index   map[graph.VID]int32
	tickets []*Ticket
	// firstEnq is the admission stamp of the batch's first ticket; the
	// admission→serve-start age it yields is the shard's backlog signal
	// (a requeued batch keeps its stamp, so failover retries age too).
	firstEnq time.Time
}

// latWindow bounds the retained latency history: Stats and Latencies
// report over the most recent ~latWindow completed queries (split across
// the per-shard rings), so a long-lived server's memory (and its Stats
// sort) stays constant under sustained traffic.
const latWindow = 1 << 16

// shard is one admission domain: its own bounded ticket queue, its own
// coalescing goroutine cutting micro-batches under the size/deadline
// policy, its own batch queue (drained by its replica first, stolen from
// by idle ones), and its own lock-free statistics. Queries are routed to
// shards by a content hash, so two servers given the same queries build
// the same batches per shard regardless of load or timing.
type shard struct {
	id      int
	in      chan *Ticket
	batches chan *microBatch

	// Lock-free hot-path stats: counters bumped on completion (possibly by
	// a stealing replica), latencies in a lock-free ring, merged only by
	// Stats/Latencies.
	queries atomic.Int64
	served  atomic.Int64
	dsts    atomic.Int64
	stolen  atomic.Int64
	expired atomic.Int64
	// backlog is the admission→serve-start age (nanos) of the shard's most
	// recently started batch — the degraded-mode queue-age signal Stats
	// surfaces as BacklogAge. One atomic store per batch, never per query.
	backlog atomic.Int64
	lat     *metrics.LatencyRing

	// plAggr/plComb count, per model layer, how many of this shard's
	// successfully served batches ran that layer aggregation-first vs
	// combination-first (the snapshot-fixed placements, observed rather
	// than re-derived). Per-shard atomics, merged only in Stats.
	plAggr []atomic.Int64
	plComb []atomic.Int64
}

// Server coalesces inference requests over sharded admission queues and
// drains them over its replicas.
type Server struct {
	tr     *frameworks.Trainer
	cfg    Config
	outDim int
	// placements is the per-layer kernel placement every replica's snapshot
	// model pinned at construction (replicas agree by construction — the
	// placements are a pure function of the trainer's profile and shape).
	placements []dkp.Placement

	// sched is the replicas' shared host-only preprocessing engine: its
	// persistent sampler and subtask workers serve concurrent PrepareSlot
	// calls, one per replica draining a batch.
	sched    *pipeline.Scheduler
	replicas []*replica
	shards   []*shard

	// workReady carries one wake token: a shard flushing a batch sets it,
	// an idle replica consumes it, re-polls every shard and — if more work
	// remains — passes the baton so the other idle replicas wake too.
	workReady chan struct{}
	stop      chan struct{}
	// admDone closes once every admission shard has drained and exited;
	// replicas then sweep the batch queues one final time and exit.
	admDone     chan struct{}
	closed      sync.Once
	schedClosed sync.Once
	admWG       sync.WaitGroup
	wg          sync.WaitGroup

	// closeMu fences admission against Close: Submit holds the read side
	// across its queue send, so once Close flips closing (under the write
	// side) and signals stop, no new ticket can slip into a queue — the
	// admission shards' final drains serve everything that made it in, and
	// nothing is ever stranded.
	closeMu sync.RWMutex
	closing bool

	// Failover state. alive counts replicas whose device has not been
	// killed; serving counts replicas inside serveBatch — a requeue
	// strictly precedes the dying replica's serving decrement, so once a
	// drained replica reads serving==0 after admission shutdown, a final
	// queue sweep is conclusive and it can exit without stranding a
	// failover handoff. overflow holds re-enqueued micro-batches when a
	// shard's bounded batch queue is full (mutex-guarded, but touched
	// only on the cold failover path; the hot path reads overflowN).
	alive      atomic.Int64
	serving    atomic.Int64
	failovers  atomic.Int64
	overflowMu sync.Mutex
	overflow   []*microBatch
	overflowN  atomic.Int64

	// Elastic membership (cold path — touched only with a fault plan
	// installed). boundarySeq numbers served-batch boundaries server-wide;
	// it is the step index ReplicaRejoins is consulted at. parked holds
	// replicas whose device died and who now block awaiting a rejoin event
	// (parkedN keeps the per-batch check at one atomic load). The degraded
	// clock accumulates wall time with at least one replica dead.
	boundarySeq atomic.Int64
	rejoined    atomic.Int64
	parkedN     atomic.Int64
	parkMu      sync.Mutex
	parked      []*replica
	degMu       sync.Mutex
	degSince    time.Time
	degradedNs  time.Duration

	tickets sync.Pool
	mbs     sync.Pool
	scratch sync.Pool // SubmitMany per-shard chain scratch

	// firstEnq is the one-shot first-admission stamp (unix nanos, CAS from
	// zero); lastDone the CAS-max completion stamp. Together they bound the
	// wall interval Stats derives throughput from — no lock on either path.
	firstEnq atomic.Int64
	lastDone atomic.Int64
}

// NewServer builds a serving engine over a trainer's dataset and trained
// weights and starts its admission shards and replicas. The trainer is only
// read (weight snapshots, sampler/format configuration); it can keep
// training between servers, but not concurrently with one.
func NewServer(tr *frameworks.Trainer, cfg Config) (*Server, error) {
	if cfg.MaxBatch <= 0 || cfg.MaxDelay <= 0 {
		// Unset coalescing knobs derive from the device class's fitted cost
		// model: the batch size that amortizes per-batch fixed costs to a
		// few percent, and a deadline ~2× one batch's modeled service time.
		rec := dkp.ProfileFor(tr.Opt.Device).Recommend()
		if cfg.MaxBatch <= 0 {
			cfg.MaxBatch = rec.MaxBatch
		}
		if cfg.MaxDelay <= 0 {
			cfg.MaxDelay = rec.MaxDelay
		}
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = cfg.Replicas
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	s := &Server{
		tr:        tr,
		cfg:       cfg,
		outDim:    tr.OutDim(),
		workReady: make(chan struct{}, 1),
		stop:      make(chan struct{}),
		admDone:   make(chan struct{}),
	}
	s.alive.Store(int64(cfg.Replicas))

	pcfg := pipeline.DefaultConfig()
	pcfg.Sampler = tr.SamplerConfig()
	pcfg.Format = tr.Format()
	pcfg.Pinned = tr.Pinned()
	pcfg.HostOnly = true // each replica pays its own miss-only scatter
	pcfg.Cache = cfg.Cache
	s.sched = pipeline.NewScheduler(tr.Dataset.Graph, tr.Dataset.Features, tr.Dataset.Labels,
		nil, pcfg)

	for i := 0; i < cfg.Replicas; i++ {
		r, err := newReplica(s, i)
		if err != nil {
			s.schedClosed.Do(s.sched.Close)
			return nil, err
		}
		s.replicas = append(s.replicas, r)
	}
	if pl := s.replicas[0].model.LayerPlacements(); pl != nil {
		s.placements = pl
	} else {
		s.placements = make([]dkp.Placement, len(s.replicas[0].model.Layers))
	}

	queueCap := cfg.QueueCap / cfg.Shards
	if queueCap < 1 {
		queueCap = 1
	}
	ringCap := latWindow / cfg.Shards
	if ringCap < 1024 {
		ringCap = 1024
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &shard{
			id:      i,
			in:      make(chan *Ticket, queueCap),
			batches: make(chan *microBatch, 2),
			lat:     metrics.NewLatencyRing(ringCap),
			plAggr:  make([]atomic.Int64, len(s.placements)),
			plComb:  make([]atomic.Int64, len(s.placements)),
		})
	}
	for _, r := range s.replicas {
		r.home = s.shards[r.id%len(s.shards)]
	}

	// Nothing starts until every component exists, so a constructor error
	// never leaves goroutines behind.
	s.admWG.Add(len(s.shards))
	for _, sh := range s.shards {
		go s.coalesce(sh)
	}
	go func() {
		s.admWG.Wait()
		close(s.admDone)
	}()
	s.wg.Add(len(s.replicas))
	for _, r := range s.replicas {
		go r.drain()
	}
	return s, nil
}

// OutDim returns the logit row width a query scatters back per dst.
func (s *Server) OutDim() int { return s.outDim }

// Replicas returns the replica count.
func (s *Server) Replicas() int { return len(s.replicas) }

// Shards returns the admission shard count.
func (s *Server) Shards() int { return len(s.shards) }

// shardFor routes a query to its admission shard: an FNV-1a hash of the
// dst list, so the route is sticky — a pure function of the query's
// contents, never of load, timing or shard occupancy.
func (s *Server) shardFor(dsts []graph.VID) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := uint64(14695981039346656037)
	for _, d := range dsts {
		v := uint32(d)
		h = (h ^ uint64(v&0xff)) * 1099511628211
		h = (h ^ uint64((v>>8)&0xff)) * 1099511628211
		h = (h ^ uint64((v>>16)&0xff)) * 1099511628211
		h = (h ^ uint64(v>>24)) * 1099511628211
	}
	return s.shards[h%uint64(len(s.shards))]
}

// getTicket checks a pooled ticket out for one query.
func (s *Server) getTicket(dsts []graph.VID, out []float32) *Ticket {
	tk, _ := s.tickets.Get().(*Ticket)
	if tk == nil {
		tk = &Ticket{done: make(chan error, 1)}
	}
	tk.srv = s
	tk.dsts = append(tk.dsts[:0], dsts...)
	tk.out = out
	tk.next = nil
	tk.ctx = nil
	tk.deadline = time.Time{}
	tk.enq = time.Now()
	return tk
}

// putTicket returns an unsubmitted ticket to the pool.
func (s *Server) putTicket(tk *Ticket) {
	tk.srv, tk.out, tk.next, tk.ctx = nil, nil, nil, nil
	tk.deadline = time.Time{}
	tk.dsts = tk.dsts[:0]
	s.tickets.Put(tk)
}

// Submit enqueues one query — a set of dst vertices — and returns its
// ticket. out receives the per-dst logit rows (len(dsts)·OutDim values,
// row i belonging to dsts[i]) before the ticket completes; dsts is copied
// and may be reused immediately. A full admission shard blocks (that is the
// engine's backpressure — queries are never dropped).
func (s *Server) Submit(dsts []graph.VID, out []float32) (*Ticket, error) {
	return s.submit(nil, time.Time{}, dsts, out)
}

// SubmitDeadline is Submit with a per-query deadline: a query not served
// by then completes with ErrDeadlineExceeded (counted in the per-shard
// Expired stat). A deadline already in the past fails immediately — the
// ticketless fast path never touches a shard queue.
func (s *Server) SubmitDeadline(dsts []graph.VID, out []float32, deadline time.Time) (*Ticket, error) {
	return s.submit(nil, deadline, dsts, out)
}

// SubmitCtx is Submit bound to a context: the context's deadline becomes
// the query's deadline (lapsing completes the ticket with
// ErrDeadlineExceeded) and a cancellation completes it with the context's
// error. The batch still computes — composition was fixed at admission —
// so neither ever changes another query's logits.
func (s *Server) SubmitCtx(ctx context.Context, dsts []graph.VID, out []float32) (*Ticket, error) {
	deadline, _ := ctx.Deadline()
	return s.submit(ctx, deadline, dsts, out)
}

func (s *Server) submit(ctx context.Context, deadline time.Time, dsts []graph.VID, out []float32) (*Ticket, error) {
	if len(out) < len(dsts)*s.outDim {
		return nil, errors.New("serve: logit buffer smaller than len(dsts) x OutDim")
	}
	// Fast-path short-circuit: a query whose bound has already lapsed is
	// refused before a ticket is even checked out — no shard queue, no
	// coalescing goroutine, no channel hop. It is still counted, on the
	// shard it would have routed to.
	if ctx != nil || !deadline.IsZero() {
		if err := lapsedErr(ctx, deadline, time.Now()); err != nil {
			if errors.Is(err, ErrDeadlineExceeded) {
				s.shardFor(dsts).expired.Add(1)
			}
			return nil, err
		}
	}
	tk := s.getTicket(dsts, out)
	tk.ctx, tk.deadline = ctx, deadline
	sh := s.shardFor(tk.dsts)
	s.closeMu.RLock()
	if s.closing {
		s.closeMu.RUnlock()
		s.putTicket(tk)
		return nil, ErrClosed
	}
	sh.in <- tk
	s.closeMu.RUnlock()
	return tk, nil
}

// submitScratch is SubmitMany's pooled per-shard chain state.
type submitScratch struct {
	heads, tails []*Ticket
}

// SubmitMany enqueues a slice of queries in bulk: tickets are chained per
// admission shard and each shard receives its whole chain in one channel
// hop, so a bulk caller pays O(shards) hops instead of O(queries). tks must
// have len(queries) slots; it receives one ticket per query (same order).
// Routing, coalescing and results are identical to len(queries) Submit
// calls — SubmitMany is pure submission-side perf.
func (s *Server) SubmitMany(queries [][]graph.VID, outs [][]float32, tks []*Ticket) error {
	if len(outs) != len(queries) || len(tks) != len(queries) {
		return errors.New("serve: SubmitMany needs one out buffer and one ticket slot per query")
	}
	for q := range queries {
		if len(outs[q]) < len(queries[q])*s.outDim {
			return errors.New("serve: logit buffer smaller than len(dsts) x OutDim")
		}
	}
	sc, _ := s.scratch.Get().(*submitScratch)
	if sc == nil || len(sc.heads) < len(s.shards) {
		sc = &submitScratch{
			heads: make([]*Ticket, len(s.shards)),
			tails: make([]*Ticket, len(s.shards)),
		}
	}
	release := func() {
		for i := range sc.heads {
			sc.heads[i], sc.tails[i] = nil, nil
		}
		s.scratch.Put(sc)
	}
	for q := range queries {
		tk := s.getTicket(queries[q], outs[q])
		tks[q] = tk
		sh := s.shardFor(tk.dsts)
		if sc.tails[sh.id] == nil {
			sc.heads[sh.id] = tk
		} else {
			sc.tails[sh.id].next = tk
		}
		sc.tails[sh.id] = tk
	}
	s.closeMu.RLock()
	if s.closing {
		s.closeMu.RUnlock()
		for q, tk := range tks[:len(queries)] {
			if tk != nil {
				s.putTicket(tk)
				tks[q] = nil
			}
		}
		release()
		return ErrClosed
	}
	for i, head := range sc.heads {
		if head != nil {
			s.shards[i].in <- head
		}
	}
	s.closeMu.RUnlock()
	release()
	return nil
}

// Query is a blocking Submit + Wait.
func (s *Server) Query(dsts []graph.VID, out []float32) error {
	tk, err := s.Submit(dsts, out)
	if err != nil {
		return err
	}
	return tk.Wait()
}

// notifyWork sets the single wake token idle replicas block on.
func (s *Server) notifyWork() {
	select {
	case s.workReady <- struct{}{}:
	default:
	}
}

// coalesce is one shard's admission loop: it accumulates the shard's
// queries into the current micro-batch and cuts it when the batch reaches
// MaxBatch distinct dsts or MaxDelay after its first query, whichever comes
// first. Shards run independently — the only cross-shard interaction is
// batch-granularity work stealing on the drain side.
func (s *Server) coalesce(sh *shard) {
	defer s.admWG.Done()
	timer := time.NewTimer(time.Hour)
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	stopTimer()
	var cur *microBatch
	flush := func() {
		if cur == nil {
			return
		}
		sh.batches <- cur
		cur = nil
		s.notifyWork()
	}
	// admitChain folds a ticket chain (one for Submit, many for
	// SubmitMany) into the current batch, cutting at MaxBatch as it goes.
	admitChain := func(tk *Ticket) {
		for tk != nil {
			nx := tk.next
			tk.next = nil
			// admit may leave cur nil: an expired ticket is completed
			// instead of admitted and opens no batch.
			cur = s.admit(sh, cur, tk)
			if cur != nil && len(cur.dsts) >= s.cfg.MaxBatch {
				flush()
			}
			tk = nx
		}
	}
	for {
		if cur == nil {
			select {
			case tk := <-sh.in:
				admitChain(tk)
				if cur != nil {
					timer.Reset(s.cfg.MaxDelay)
				}
			case <-s.stop:
				s.drainClosing(sh, admitChain, flush)
				return
			}
			continue
		}
		prev := cur
		select {
		case tk := <-sh.in:
			admitChain(tk)
			if cur == nil {
				stopTimer()
			} else if cur != prev {
				// The chain cut prev and started a new batch: its deadline
				// runs from its own first query, i.e. from now.
				stopTimer()
				timer.Reset(s.cfg.MaxDelay)
			}
		case <-timer.C:
			flush()
		case <-s.stop:
			stopTimer()
			s.drainClosing(sh, admitChain, flush)
			return
		}
	}
}

// admit folds one ticket into the shard's current micro-batch,
// deduplicating dsts across queries (two queries asking for the same vertex
// share its row).
func (s *Server) admit(sh *shard, cur *microBatch, tk *Ticket) *microBatch {
	// A ticket whose bound lapsed while it sat in the admission queue is
	// completed here with its error instead of joining a batch: expired
	// queries are never silently dropped, and never cost a batch slot.
	// The guard inside lapsed keeps unbounded tickets off the clock.
	if err := tk.lapsed(); err != nil {
		if errors.Is(err, ErrDeadlineExceeded) {
			sh.expired.Add(1)
		}
		tk.done <- err
		return cur
	}
	if cur == nil {
		cur, _ = s.mbs.Get().(*microBatch)
		if cur == nil {
			cur = &microBatch{index: make(map[graph.VID]int32)}
		}
		cur.sh = sh
		cur.firstEnq = tk.enq
	}
	if s.firstEnq.Load() == 0 {
		s.firstEnq.CompareAndSwap(0, tk.enq.UnixNano())
	}
	for _, d := range tk.dsts {
		if _, ok := cur.index[d]; !ok {
			cur.index[d] = int32(len(cur.dsts))
			cur.dsts = append(cur.dsts, d)
		}
	}
	cur.tickets = append(cur.tickets, tk)
	return cur
}

// drainClosing serves every query that made it into the shard's queue
// before Close flipped admission off (no ticket is ever stranded — Close is
// a graceful drain), cutting at MaxBatch as usual.
func (s *Server) drainClosing(sh *shard, admitChain func(*Ticket), flush func()) {
	for {
		select {
		case tk := <-sh.in:
			admitChain(tk)
		default:
			flush()
			return
		}
	}
}

// putBatch resets a served micro-batch into the pool.
func (s *Server) putBatch(mb *microBatch) {
	for _, d := range mb.dsts {
		delete(mb.index, d)
	}
	mb.sh = nil
	mb.firstEnq = time.Time{}
	mb.dsts = mb.dsts[:0]
	for i := range mb.tickets {
		mb.tickets[i] = nil
	}
	mb.tickets = mb.tickets[:0]
	s.mbs.Put(mb)
}

// complete records a served batch's latencies and counters on its admission
// shard — atomics and a lock-free ring only, no lock anywhere on the
// completion path — and signals its tickets. Tickets are not touched after
// their done send — Wait recycles them.
func (s *Server) complete(mb *microBatch, now time.Time, err error) {
	sh := mb.sh
	for _, tk := range mb.tickets {
		sh.lat.Record(now.Sub(tk.enq))
	}
	sh.queries.Add(int64(len(mb.tickets)))
	sh.served.Add(1)
	sh.dsts.Add(int64(len(mb.dsts)))
	if err == nil {
		// Placement observability: a successfully served batch ran every
		// layer under the snapshot-fixed placement vector.
		for li, p := range s.placements {
			if p == dkp.CombFirst {
				sh.plComb[li].Add(1)
			} else {
				sh.plAggr[li].Add(1)
			}
		}
	}
	n := now.UnixNano()
	for {
		old := s.lastDone.Load()
		if n <= old || s.lastDone.CompareAndSwap(old, n) {
			break
		}
	}
	for _, tk := range mb.tickets {
		final := err
		if final == nil {
			// Per-ticket deadline resolution: the batch computed (its
			// composition was fixed at admission, so an expiring member
			// can't perturb anyone else's logits), but a lapsed ticket
			// reports ErrDeadlineExceeded rather than pretending it met
			// its bound. Unbounded tickets skip the check entirely.
			if e := tk.lapsedAt(now); e != nil {
				final = e
				if errors.Is(e, ErrDeadlineExceeded) {
					sh.expired.Add(1)
				}
			}
		}
		tk.done <- final
	}
	s.putBatch(mb)
}

// requeue hands a dying replica's whole micro-batch to the surviving
// replicas. The batch goes to the overflow list rather than back to its
// shard's bounded queue (which may be full — blocking here would wedge the
// dying replica), and the wake token makes an idle survivor sweep it up.
// Batch granularity is the point: composition was fixed at admission, so
// failover re-serves identical work and cannot change a logit bit.
func (s *Server) requeue(mb *microBatch) {
	s.overflowMu.Lock()
	s.overflow = append(s.overflow, mb)
	s.overflowN.Add(1)
	s.overflowMu.Unlock()
	s.notifyWork()
}

// popOverflow takes the oldest re-enqueued batch, if any. The counter
// check keeps the no-fault poll path lock-free.
func (s *Server) popOverflow() *microBatch {
	if s.overflowN.Load() == 0 {
		return nil
	}
	s.overflowMu.Lock()
	defer s.overflowMu.Unlock()
	if len(s.overflow) == 0 {
		return nil
	}
	mb := s.overflow[0]
	s.overflow[0] = nil
	s.overflow = s.overflow[1:]
	s.overflowN.Add(-1)
	return mb
}

// checkRespawns runs at every served-batch boundary when a fault plan is
// installed: parked replicas whose ReplicaRejoins event fires at this
// boundary sequence are signaled to respawn. The parkedN fast path keeps
// the death-free case at one atomic load.
func (s *Server) checkRespawns(p *fault.Plan, seq int) {
	if s.parkedN.Load() == 0 {
		return
	}
	s.parkMu.Lock()
	kept := s.parked[:0]
	for _, r := range s.parked {
		if p.ReplicaRejoins(r.id, seq) {
			s.parkedN.Add(-1)
			select {
			case r.revive <- struct{}{}:
			default:
			}
		} else {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(s.parked); i++ {
		s.parked[i] = nil
	}
	s.parked = kept
	s.parkMu.Unlock()
}

// noteDeath opens the degraded clock on the first replica death; nested
// deaths keep the original window.
func (s *Server) noteDeath() {
	s.degMu.Lock()
	if s.degSince.IsZero() {
		s.degSince = time.Now()
	}
	s.degMu.Unlock()
}

// noteRecovery closes the degraded clock once every replica is alive again.
func (s *Server) noteRecovery() {
	s.degMu.Lock()
	if !s.degSince.IsZero() && int(s.alive.Load()) == len(s.replicas) {
		s.degradedNs += time.Since(s.degSince)
		s.degSince = time.Time{}
	}
	s.degMu.Unlock()
}

// timeDegraded reports cumulative wall time with at least one replica
// dead, including a still-open window.
func (s *Server) timeDegraded() time.Duration {
	s.degMu.Lock()
	defer s.degMu.Unlock()
	d := s.degradedNs
	if !s.degSince.IsZero() {
		d += time.Since(s.degSince)
	}
	return d
}

// Close stops admission (subsequent Submits fail with ErrClosed), serves
// everything already queued, waits for the admission shards and replicas to
// exit, and retires the preprocessing scheduler's worker set (a process
// cycling servers leaks nothing). Idempotent.
func (s *Server) Close() {
	s.closed.Do(func() {
		s.closeMu.Lock()
		s.closing = true
		s.closeMu.Unlock()
		close(s.stop)
	})
	s.wg.Wait()
	s.schedClosed.Do(s.sched.Close)
}

// ShardStats is one admission shard's completed-work report.
type ShardStats struct {
	// Queries and Batches count completed work admitted by this shard;
	// MeanBatch is the mean micro-batch size its policy achieved.
	Queries, Batches int
	MeanBatch        float64
	// Stolen counts this shard's batches that were served by a replica
	// other than the shard's own (work-stealing at batch granularity).
	Stolen int
	// Expired counts this shard's queries that completed with
	// ErrDeadlineExceeded (at submit, in the admission queue, or at
	// completion).
	Expired int
	// BacklogAge is the admission→serve-start age of the shard's most
	// recently started batch — the degraded-mode queue-age signal (it
	// spikes while the replica set is shrunken and decays after rejoin).
	BacklogAge time.Duration
}

// Stats is the serving engine's throughput/latency report, in the
// GroupStats style of the data-parallel engine.
type Stats struct {
	Replicas int
	Shards   int
	// Queries and Batches count completed work; CoalescedDsts/Batches is
	// the mean micro-batch size the admission policy achieved.
	Queries, Batches int
	MeanBatch        float64
	// Throughput is completed queries per second of wall time between the
	// first admission and the last completion.
	Throughput float64
	// Latency summarizes end-to-end query latencies (admission → scatter)
	// over the most recent ~latWindow queries, merged across shards.
	Latency metrics.LatencySummary
	// CacheHitRate is the embedding cache's cumulative hit rate (0 without
	// a cache).
	CacheHitRate float64
	// Expired counts queries that completed with ErrDeadlineExceeded;
	// FailedOver counts whole micro-batches re-enqueued after a replica's
	// device died; DeadReplicas is how many replicas fault injection has
	// killed.
	Expired      int
	FailedOver   int
	DeadReplicas int
	// Rejoined counts replicas respawned by the fault plan's rejoin events
	// (device revived, fresh weight snapshot reinstalled, queues
	// reattached); TimeDegraded is the cumulative wall time the server
	// spent with at least one replica dead.
	Rejoined     int
	TimeDegraded time.Duration
	// PerShard breaks the completed work down by admission shard.
	PerShard []ShardStats
	// Placements reports, per model layer, how many successfully served
	// batches ran aggregation-first vs combination-first — the placements
	// the trainer's fitted cost profile pinned at snapshot time, merged
	// from the per-shard counters.
	Placements []PlacementCount
}

// PlacementCount tallies served batches by kernel placement for one layer.
type PlacementCount struct {
	AggrFirst, CombFirst int
}

// Stats snapshots the server's cumulative report by merging the per-shard
// counters and latency rings (the only place they are ever combined).
func (s *Server) Stats() Stats {
	st := Stats{Replicas: len(s.replicas), Shards: len(s.shards),
		Placements: make([]PlacementCount, len(s.placements))}
	var lat []time.Duration
	var dsts int64
	for _, sh := range s.shards {
		for li := range st.Placements {
			st.Placements[li].AggrFirst += int(sh.plAggr[li].Load())
			st.Placements[li].CombFirst += int(sh.plComb[li].Load())
		}
		q, b, d := sh.queries.Load(), sh.served.Load(), sh.dsts.Load()
		ss := ShardStats{Queries: int(q), Batches: int(b), Stolen: int(sh.stolen.Load()),
			Expired: int(sh.expired.Load()), BacklogAge: time.Duration(sh.backlog.Load())}
		if b > 0 {
			ss.MeanBatch = float64(d) / float64(b)
		}
		st.PerShard = append(st.PerShard, ss)
		st.Queries += int(q)
		st.Batches += int(b)
		st.Expired += ss.Expired
		dsts += d
		lat = sh.lat.AppendTo(lat)
	}
	st.FailedOver = int(s.failovers.Load())
	st.DeadReplicas = len(s.replicas) - int(s.alive.Load())
	st.Rejoined = int(s.rejoined.Load())
	st.TimeDegraded = s.timeDegraded()
	if st.Batches > 0 {
		st.MeanBatch = float64(dsts) / float64(st.Batches)
	}
	first, last := s.firstEnq.Load(), s.lastDone.Load()
	if first > 0 && last > first {
		st.Throughput = float64(st.Queries) / (time.Duration(last - first)).Seconds()
	}
	st.Latency = metrics.SummarizeLatencies(lat)
	st.CacheHitRate = s.cfg.Cache.HitRate()
	return st
}

// Latencies returns the most recent ~latWindow completed queries'
// end-to-end latencies, merged across the per-shard rings (for histograms
// beyond the Stats quantiles).
func (s *Server) Latencies() []time.Duration {
	var lat []time.Duration
	for _, sh := range s.shards {
		lat = sh.lat.AppendTo(lat)
	}
	return lat
}
