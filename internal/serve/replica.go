package serve

import (
	"time"

	"graphtensor/internal/core"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/kernels"
	"graphtensor/internal/pipeline"
	"graphtensor/internal/prep"
)

// replica is one serving replica: the multigpu per-device machinery — a
// persistent simulated device, its kernel context, a batch-scoped device
// arena and a weight snapshot — bound to a warm prefetch slot and the
// retained FWP dispatch state. Replicas drain the server's micro-batch
// queue concurrently; the kernels they launch and the prep subtasks they
// trigger all ride the shared sched worker pool, so a replica adds no
// per-batch goroutines of its own.
type replica struct {
	srv   *Server
	id    int
	dev   *gpusim.Device
	ctx   *kernels.Ctx
	arena *gpusim.DeviceArena
	model *core.Model
	pcie  *gpusim.PCIe

	// slot is the replica's warm producer slot: its arena and structure
	// pool recycle everything preparation builds, so a steady-state served
	// batch allocates a small constant.
	slot *pipeline.Slot

	// Retained FWP dispatch state (the GroupDev discipline).
	graphs []kernels.Graphs
	gptrs  []*kernels.Graphs
	input  core.Input
}

func newReplica(s *Server, id int) (*replica, error) {
	m, err := s.tr.SnapshotModel()
	if err != nil {
		return nil, err
	}
	dev := gpusim.NewDevice(s.tr.Opt.Device)
	r := &replica{
		srv:    s,
		id:     id,
		dev:    dev,
		ctx:    kernels.NewCtx(dev),
		arena:  dev.NewArena(),
		model:  m,
		pcie:   dev.PCIe(),
		slot:   pipeline.NewSlot(),
		graphs: make([]kernels.Graphs, len(m.Layers)),
		gptrs:  make([]*kernels.Graphs, len(m.Layers)),
	}
	for i := range r.graphs {
		r.gptrs[i] = &r.graphs[i]
	}
	return r, nil
}

// drain serves micro-batches until the admission loop closes the queue.
func (r *replica) drain() {
	defer r.srv.wg.Done()
	for mb := range r.srv.batches {
		r.serveBatch(mb)
	}
}

// serveBatch runs one coalesced batch end to end: host-only cache-aware
// preparation through the replica's warm slot, the miss-only modeled
// scatter on the replica's own PCIe engine, FWP, and the per-ticket logit
// scatter.
func (r *replica) serveBatch(mb *microBatch) {
	s := r.srv
	b, err := s.sched.PrepareSlot(mb.dsts, nil, r.slot)
	if err != nil {
		s.complete(mb, time.Now(), err)
		return
	}
	err = r.infer(b, mb)
	b.Release()
	r.slot.Recycle(b)
	s.complete(mb, time.Now(), err)
}

// infer pays the batch's transfer, runs FWP on the replica's snapshot and
// scatters each ticket's logit rows into its caller-owned buffer.
func (r *replica) infer(b *prep.Batch, mb *microBatch) error {
	// The batch staged host-only; this replica pays the host→device scatter
	// for it — cache-resident embedding rows cross the link for free, the
	// PaGraph discipline (§VII [38]).
	var link prep.LinkThrottle
	link.Pay(r.pcie.TransferBytes(prep.MissBytes(b)+prep.GraphBytes(b.Layers), r.srv.tr.Pinned()))

	x, err := kernels.WrapDeviceMatrix(r.dev, b.Embed.Data, "serve-x")
	if err != nil {
		return err
	}
	for i, l := range b.Layers {
		r.graphs[i] = kernels.Graphs{COO: l.COO, CSR: l.CSR, CSC: l.CSC}
	}
	r.input = core.Input{Graphs: r.gptrs[:len(b.Layers)], X: x, Labels: b.Labels}
	logits, err := r.model.Infer(r.ctx, &r.input)
	r.input = core.Input{}
	link.Flush()
	if err != nil {
		x.Free()
		r.endBatch()
		return err
	}

	od := r.srv.outDim
	for _, tk := range mb.tickets {
		for i, d := range tk.dsts {
			copy(tk.out[i*od:(i+1)*od], logits.M.Row(int(mb.index[d])))
		}
	}
	logits.Free()
	x.Free()
	r.endBatch()
	return nil
}

// endBatch closes the replica's device batch scope: per-graph memos drop
// and the device arena releases, so MemInUse returns to zero between
// served batches.
func (r *replica) endBatch() {
	r.ctx.EndBatch()
	r.arena.Release()
}
