package serve

import (
	"time"

	"graphtensor/internal/core"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/kernels"
	"graphtensor/internal/pipeline"
	"graphtensor/internal/prep"
)

// replica is one serving replica: the multigpu per-device machinery — a
// persistent simulated device, its kernel context, a batch-scoped device
// arena and a weight snapshot — bound to a warm prefetch slot and the
// retained FWP dispatch state. Replicas drain the admission shards'
// micro-batch queues concurrently (own shard first, stealing whole batches
// from the others when idle); the kernels they launch and the prep subtasks
// they trigger all ride the shared sched worker pool, so a replica adds no
// per-batch goroutines of its own.
type replica struct {
	srv   *Server
	id    int
	home  *shard // the shard this replica drains first; the rest are steals
	dev   *gpusim.Device
	ctx   *kernels.Ctx
	arena *gpusim.DeviceArena
	model *core.Model
	pcie  *gpusim.PCIe

	// slot is the replica's warm producer slot: its arena and structure
	// pool recycle everything preparation builds, so a steady-state served
	// batch allocates a small constant.
	slot *pipeline.Slot

	// infer is the retained FWP dispatch state (the GroupDev discipline):
	// layer-graph views and the input header rebuilt in place per batch.
	infer frameworks.InferDispatch

	// attempt counts batches this replica has started — the step index the
	// fault plan's death/stall events are consulted at. dead flips when
	// this replica's device is lost *and* it was the last one alive:
	// instead of exiting it keeps draining, completing everything with
	// ErrReplicasLost, so admission shutdown still flows and no ticket is
	// ever stranded.
	attempt int
	dead    bool
	// revive carries the respawn signal to a parked replica (buffered 1;
	// set by checkRespawns when the plan's ReplicaRejoins event fires).
	revive chan struct{}
}

func newReplica(s *Server, id int) (*replica, error) {
	m, err := s.tr.SnapshotModel()
	if err != nil {
		return nil, err
	}
	dev := gpusim.NewDevice(s.tr.Opt.Device)
	return &replica{
		srv:    s,
		id:     id,
		dev:    dev,
		ctx:    kernels.NewCtx(dev),
		arena:  dev.NewArena(),
		model:  m,
		pcie:   dev.PCIe(),
		slot:   pipeline.NewSlot(),
		revive: make(chan struct{}, 1),
	}, nil
}

// drain serves micro-batches until admission has shut down and every queue
// is empty — or until this replica's device dies with survivors left to
// take over (serveBatch returning false). Under a fault plan a dead
// replica parks instead of exiting: a later rejoin event revives it and it
// re-enters this loop against the same queues.
func (r *replica) drain() {
	s := r.srv
	defer s.wg.Done()
	for {
		mb := r.next()
		if mb == nil {
			return
		}
		// serving brackets the batch: a failover requeue happens before
		// the decrement, so a drained replica that reads serving==0 after
		// admission shutdown knows its final queue sweep is conclusive.
		s.serving.Add(1)
		cont := r.serveBatch(mb)
		s.serving.Add(-1)
		select {
		case <-s.admDone:
			// Post-shutdown, a completion may be the event an idle
			// replica is waiting on to decide between more work (a
			// failover handoff) and exit; re-arm the wake token.
			s.notifyWork()
		default:
		}
		if !cont {
			// Park strictly outside the serving bracket: a replica
			// blocked here must not hold serving>0, or the survivors'
			// conclusive-exit check (and Close) would wedge on it.
			if s.cfg.FaultPlan != nil && r.park() {
				continue
			}
			return
		}
	}
}

// park registers this replica as awaiting a rejoin event and blocks until
// checkRespawns signals it (respawn, return true — the drain loop resumes)
// or the server closes (return false — the drain loop exits).
func (r *replica) park() bool {
	s := r.srv
	s.parkMu.Lock()
	s.parked = append(s.parked, r)
	s.parkedN.Add(1)
	s.parkMu.Unlock()
	select {
	case <-r.revive:
		r.respawn()
		return true
	case <-s.stop:
		return false
	}
}

// respawn re-admits this replica after a rejoin event: the simulated
// device is revived under its old identity, a fresh weight snapshot is
// installed (bitwise identical to every survivor's — the trainer never
// trains while serving — with the same policy-pinned placements), and the
// replica re-enters the drain loop against its original home and steal
// queues. Runs strictly at a served-batch boundary, before the replica
// touches any new batch.
func (r *replica) respawn() {
	s := r.srv
	r.dev.Revive()
	if m, err := s.tr.SnapshotModel(); err == nil {
		r.model = m
	}
	r.dead = false
	s.alive.Add(1)
	s.rejoined.Add(1)
	s.noteRecovery()
}

// next returns the next micro-batch to serve: the replica's home shard
// first, then whole batches stolen from the other shards' queues. Stealing
// happens strictly at batch granularity — composition was fixed at
// admission, so a steal moves work between replicas without changing what
// any query computes (logits stay bitwise identical at any shard and
// replica count). When no work is ready the replica blocks on its home
// queue and the shared wake token; nil means the server has fully drained.
func (r *replica) next() *microBatch {
	s := r.srv
	for {
		if mb := r.poll(); mb != nil {
			return mb
		}
		select {
		case mb := <-r.home.batches:
			r.rebaton()
			return mb
		case <-s.workReady:
			// A shard flushed somewhere: re-poll everything.
		case <-s.admDone:
			// Admission drained and exited; sweep the queues one last
			// time. But "queues empty" only means "fully drained" once no
			// replica is mid-batch: an in-flight serve can still fail over
			// and requeue its whole batch. A requeue strictly precedes the
			// dying replica's serving decrement, so a zero read here makes
			// the re-poll conclusive; otherwise block for the completion
			// (or handoff) wake and re-evaluate.
			if mb := r.poll(); mb != nil {
				return mb
			}
			if s.serving.Load() == 0 {
				if mb := r.poll(); mb != nil {
					return mb
				}
				// Chain the wake so the other idle replicas re-evaluate
				// and exit too.
				s.notifyWork()
				return nil
			}
			select {
			case mb := <-r.home.batches:
				r.rebaton()
				return mb
			case <-s.workReady:
			}
		}
	}
}

// poll sweeps every shard's batch queue non-blocking, home first, and takes
// the first ready batch; a steal (a batch from a foreign shard) is counted
// on the shard it was stolen from.
func (r *replica) poll() *microBatch {
	s := r.srv
	// Failover handoffs first: a re-enqueued batch is the oldest work in
	// the server (its queries have already waited one full serve). The
	// counter check keeps this lock-free when no failover ever happened.
	if mb := s.popOverflow(); mb != nil {
		r.rebaton()
		return mb
	}
	n := len(s.shards)
	start := r.home.id
	for i := 0; i < n; i++ {
		sh := s.shards[(start+i)%n]
		select {
		case mb := <-sh.batches:
			if sh != r.home {
				sh.stolen.Add(1)
			}
			r.rebaton()
			return mb
		default:
		}
	}
	return nil
}

// rebaton re-arms the wake token if batches remain queued anywhere, so the
// single token keeps waking idle replicas until the queues are dry.
func (r *replica) rebaton() {
	if r.srv.overflowN.Load() > 0 {
		r.srv.notifyWork()
		return
	}
	for _, sh := range r.srv.shards {
		if len(sh.batches) > 0 {
			r.srv.notifyWork()
			return
		}
	}
}

// serveBatch runs one coalesced batch end to end: host-only cache-aware
// preparation through the replica's warm slot, the miss-only modeled
// scatter on the replica's own PCIe engine, FWP, and the per-ticket logit
// scatter. It returns false when this replica's device died and survivors
// took the batch over — the drain loop then exits.
func (r *replica) serveBatch(mb *microBatch) bool {
	s := r.srv
	// Elastic membership, consulted strictly between batches: the
	// server-wide boundary sequence is the step index replica-rejoin
	// events fire at. A parked survivor respawns via checkRespawns; the
	// dead-completer (last replica standing) revives itself here, before
	// deciding this batch's fate.
	if p := s.cfg.FaultPlan; p != nil {
		seq := int(s.boundarySeq.Add(1)) - 1
		if r.dead && p.ReplicaRejoins(r.id, seq) {
			r.respawn()
		}
		s.checkRespawns(p, seq)
	}
	mb.sh.backlog.Store(int64(time.Since(mb.firstEnq)))
	if r.dead {
		// Last replica standing, device lost: fail the work instead of
		// stranding it (see failover).
		s.complete(mb, time.Now(), ErrReplicasLost)
		return true
	}
	if h := testHookServeBatch; h != nil {
		h()
	}
	// Deterministic fault injection, consulted strictly at the batch
	// boundary: device = replica id, step = this replica's started-batch
	// count. A killed device fails the batch at its first allocation
	// below, on the ordinary error path.
	if p := s.cfg.FaultPlan; p != nil {
		step := r.attempt
		r.attempt++
		if d := p.StallFor(r.id, step); d > 0 {
			r.dev.InjectStall(d)
		}
		if p.DeviceDies(r.id, step) {
			r.dev.Kill()
		}
	}
	b, err := s.sched.PrepareSlot(mb.dsts, nil, r.slot)
	if err != nil {
		s.complete(mb, time.Now(), err)
		return true
	}
	err = r.inferBatch(b, mb)
	b.Release()
	r.slot.Recycle(b)
	if err != nil && gpusim.IsDeviceLost(err) {
		return r.failover(mb)
	}
	s.complete(mb, time.Now(), err)
	return true
}

// failover handles this replica's device dying mid-batch. With survivors
// left, the *whole* micro-batch is re-enqueued for one of them to steal —
// batch granularity only, so composition (fixed at admission) and hence
// every logit bit is preserved — and this replica leaves the drain (it
// parks awaiting a rejoin event under a fault plan, exits otherwise),
// degrading the server to the surviving replica set with backpressure
// intact. If this was the last replica, it stays in its drain loop
// completing everything with ErrReplicasLost — a dead fleet still never
// strands a ticket — until a rejoin event revives it.
func (r *replica) failover(mb *microBatch) bool {
	s := r.srv
	s.failovers.Add(1)
	s.noteDeath()
	if s.alive.Add(-1) == 0 {
		r.dead = true
		s.complete(mb, time.Now(), ErrReplicasLost)
		return true
	}
	s.requeue(mb)
	return false
}

// inferBatch pays the batch's transfer, runs FWP on the replica's snapshot
// and scatters each ticket's logit rows into its caller-owned buffer.
func (r *replica) inferBatch(b *prep.Batch, mb *microBatch) error {
	// The batch staged host-only; this replica pays the host→device scatter
	// for it — cache-resident embedding rows cross the link for free, the
	// PaGraph discipline (§VII [38]).
	var link prep.LinkThrottle
	link.Pay(r.pcie.TransferBytes(prep.MissBytes(b)+prep.GraphBytes(b.Layers), r.srv.tr.Pinned()))

	x, err := kernels.WrapDeviceMatrix(r.dev, b.Embed.Data, "serve-x")
	if err != nil {
		// Typically a device loss at the batch's first allocation; close
		// the batch scope so the arena holds nothing when failover hands
		// the work to a survivor.
		r.endBatch()
		return err
	}
	logits, err := r.infer.Infer(r.ctx, r.model, b, x)
	link.Flush()
	if err != nil {
		x.Free()
		r.endBatch()
		return err
	}

	od := r.srv.outDim
	for _, tk := range mb.tickets {
		for i, d := range tk.dsts {
			copy(tk.out[i*od:(i+1)*od], logits.M.Row(int(mb.index[d])))
		}
	}
	logits.Free()
	x.Free()
	r.endBatch()
	return nil
}

// endBatch closes the replica's device batch scope: per-graph memos drop
// and the device arena releases, so MemInUse returns to zero between
// served batches.
func (r *replica) endBatch() {
	r.ctx.EndBatch()
	r.arena.Release()
}
