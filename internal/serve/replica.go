package serve

import (
	"time"

	"graphtensor/internal/core"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/kernels"
	"graphtensor/internal/pipeline"
	"graphtensor/internal/prep"
)

// replica is one serving replica: the multigpu per-device machinery — a
// persistent simulated device, its kernel context, a batch-scoped device
// arena and a weight snapshot — bound to a warm prefetch slot and the
// retained FWP dispatch state. Replicas drain the admission shards'
// micro-batch queues concurrently (own shard first, stealing whole batches
// from the others when idle); the kernels they launch and the prep subtasks
// they trigger all ride the shared sched worker pool, so a replica adds no
// per-batch goroutines of its own.
type replica struct {
	srv   *Server
	id    int
	home  *shard // the shard this replica drains first; the rest are steals
	dev   *gpusim.Device
	ctx   *kernels.Ctx
	arena *gpusim.DeviceArena
	model *core.Model
	pcie  *gpusim.PCIe

	// slot is the replica's warm producer slot: its arena and structure
	// pool recycle everything preparation builds, so a steady-state served
	// batch allocates a small constant.
	slot *pipeline.Slot

	// infer is the retained FWP dispatch state (the GroupDev discipline):
	// layer-graph views and the input header rebuilt in place per batch.
	infer frameworks.InferDispatch
}

func newReplica(s *Server, id int) (*replica, error) {
	m, err := s.tr.SnapshotModel()
	if err != nil {
		return nil, err
	}
	dev := gpusim.NewDevice(s.tr.Opt.Device)
	return &replica{
		srv:   s,
		id:    id,
		dev:   dev,
		ctx:   kernels.NewCtx(dev),
		arena: dev.NewArena(),
		model: m,
		pcie:  dev.PCIe(),
		slot:  pipeline.NewSlot(),
	}, nil
}

// drain serves micro-batches until admission has shut down and every queue
// is empty.
func (r *replica) drain() {
	defer r.srv.wg.Done()
	for {
		mb := r.next()
		if mb == nil {
			return
		}
		r.serveBatch(mb)
	}
}

// next returns the next micro-batch to serve: the replica's home shard
// first, then whole batches stolen from the other shards' queues. Stealing
// happens strictly at batch granularity — composition was fixed at
// admission, so a steal moves work between replicas without changing what
// any query computes (logits stay bitwise identical at any shard and
// replica count). When no work is ready the replica blocks on its home
// queue and the shared wake token; nil means the server has fully drained.
func (r *replica) next() *microBatch {
	s := r.srv
	for {
		if mb := r.poll(); mb != nil {
			return mb
		}
		select {
		case mb := <-r.home.batches:
			r.rebaton()
			return mb
		case <-s.workReady:
			// A shard flushed somewhere: re-poll everything.
		case <-s.admDone:
			// Admission drained and exited; one final sweep, then done.
			if mb := r.poll(); mb != nil {
				return mb
			}
			return nil
		}
	}
}

// poll sweeps every shard's batch queue non-blocking, home first, and takes
// the first ready batch; a steal (a batch from a foreign shard) is counted
// on the shard it was stolen from.
func (r *replica) poll() *microBatch {
	s := r.srv
	n := len(s.shards)
	start := r.home.id
	for i := 0; i < n; i++ {
		sh := s.shards[(start+i)%n]
		select {
		case mb := <-sh.batches:
			if sh != r.home {
				sh.stolen.Add(1)
			}
			r.rebaton()
			return mb
		default:
		}
	}
	return nil
}

// rebaton re-arms the wake token if batches remain queued anywhere, so the
// single token keeps waking idle replicas until the queues are dry.
func (r *replica) rebaton() {
	for _, sh := range r.srv.shards {
		if len(sh.batches) > 0 {
			r.srv.notifyWork()
			return
		}
	}
}

// serveBatch runs one coalesced batch end to end: host-only cache-aware
// preparation through the replica's warm slot, the miss-only modeled
// scatter on the replica's own PCIe engine, FWP, and the per-ticket logit
// scatter.
func (r *replica) serveBatch(mb *microBatch) {
	if h := testHookServeBatch; h != nil {
		h()
	}
	s := r.srv
	b, err := s.sched.PrepareSlot(mb.dsts, nil, r.slot)
	if err != nil {
		s.complete(mb, time.Now(), err)
		return
	}
	err = r.inferBatch(b, mb)
	b.Release()
	r.slot.Recycle(b)
	s.complete(mb, time.Now(), err)
}

// inferBatch pays the batch's transfer, runs FWP on the replica's snapshot
// and scatters each ticket's logit rows into its caller-owned buffer.
func (r *replica) inferBatch(b *prep.Batch, mb *microBatch) error {
	// The batch staged host-only; this replica pays the host→device scatter
	// for it — cache-resident embedding rows cross the link for free, the
	// PaGraph discipline (§VII [38]).
	var link prep.LinkThrottle
	link.Pay(r.pcie.TransferBytes(prep.MissBytes(b)+prep.GraphBytes(b.Layers), r.srv.tr.Pinned()))

	x, err := kernels.WrapDeviceMatrix(r.dev, b.Embed.Data, "serve-x")
	if err != nil {
		return err
	}
	logits, err := r.infer.Infer(r.ctx, r.model, b, x)
	link.Flush()
	if err != nil {
		x.Free()
		r.endBatch()
		return err
	}

	od := r.srv.outDim
	for _, tk := range mb.tickets {
		for i, d := range tk.dsts {
			copy(tk.out[i*od:(i+1)*od], logits.M.Row(int(mb.index[d])))
		}
	}
	logits.Free()
	x.Free()
	r.endBatch()
	return nil
}

// endBatch closes the replica's device batch scope: per-graph memos drop
// and the device arena releases, so MemInUse returns to zero between
// served batches.
func (r *replica) endBatch() {
	r.ctx.EndBatch()
	r.arena.Release()
}
