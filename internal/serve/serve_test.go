package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphtensor/internal/cache"
	"graphtensor/internal/datasets"
	"graphtensor/internal/dkp"
	"graphtensor/internal/fault"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/graph"
	"graphtensor/internal/multigpu"
)

func testDS(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.Generate("products", datasets.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testTrainer(t *testing.T, kind frameworks.Kind, ds *datasets.Dataset) *frameworks.Trainer {
	t.Helper()
	opt := frameworks.DefaultOptions()
	opt.BatchSize = 40
	tr, err := frameworks.New(kind, ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Move off the random init so the logits exercise trained weights.
	for i := 0; i < 2; i++ {
		if _, err := tr.TrainBatch(); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// queryLogits runs every query through a server built with cfg and returns
// one logit buffer per query. With many set the queries go through one
// bulk SubmitMany instead of per-query Submits.
func queryLogits(t *testing.T, tr *frameworks.Trainer, cfg Config, queries [][]graph.VID, many bool) [][]float32 {
	t.Helper()
	s, err := NewServer(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	outs := make([][]float32, len(queries))
	tks := make([]*Ticket, len(queries))
	for i, q := range queries {
		outs[i] = make([]float32, len(q)*s.OutDim())
	}
	if many {
		if err := s.SubmitMany(queries, outs, tks); err != nil {
			t.Fatal(err)
		}
	} else {
		for i, q := range queries {
			tks[i], err = s.Submit(q, outs[i])
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, tk := range tks {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	return outs
}

// TestCoalescedLogitsBitwise is the correctness core of the serving engine:
// for every kernel strategy, a query's logits must be bitwise identical
// whether it is served alone (per-query micro-batches), coalesced with
// every other query into one big batch, served by many replicas, routed
// over any number of admission shards (with work stealing live between
// them), submitted in bulk, or served at a different GOMAXPROCS.
// Coalescing, sharding and replication are pure perf.
func TestCoalescedLogitsBitwise(t *testing.T) {
	ds := testDS(t)
	const nQueries, qSize = 6, 20
	queries := make([][]graph.VID, nQueries)
	total := 0
	for q := range queries {
		queries[q] = ds.BatchDsts(qSize, uint64(900+q))
		total += len(queries[q])
	}
	// Strategy representatives: Graph-approach, DL-approach, Advisor, NAPA,
	// and NAPA with the placement policy live (Dynamic-GT).
	for _, kind := range []frameworks.Kind{frameworks.DGL, frameworks.PyG, frameworks.GNNAdvisor, frameworks.BaseGT, frameworks.DynamicGT} {
		t.Run(kind.String(), func(t *testing.T) {
			tr := testTrainer(t, kind, ds)

			// Serial reference: every query alone in its own micro-batch.
			serialCfg := DefaultConfig()
			serialCfg.MaxBatch = 1 // cut after every query
			serial := queryLogits(t, tr, serialCfg, queries, false)

			variants := []struct {
				name string
				cfg  Config
				proc int
				many bool
			}{
				{"coalesced", Config{MaxBatch: total, MaxDelay: 200 * time.Millisecond}, 0, false},
				{"coalesced-3-replicas", Config{MaxBatch: 2 * qSize, MaxDelay: 200 * time.Millisecond, Replicas: 3}, 0, false},
				{"coalesced-1-proc", Config{MaxBatch: total, MaxDelay: 200 * time.Millisecond}, 1, false},
				{"coalesced-cached", Config{MaxBatch: total, MaxDelay: 200 * time.Millisecond,
					Cache: cache.New(ds.NumVertices()/4, cache.Degree, ds.Graph)}, 0, false},
				// Shard-count sweep: more shards than replicas, fewer shards
				// than replicas, and bulk submission — sticky content-hash
				// routing plus batch-granularity stealing must leave every
				// logit untouched.
				{"sharded-4", Config{MaxBatch: 2 * qSize, MaxDelay: 200 * time.Millisecond, Shards: 4}, 0, false},
				{"sharded-4-3-replicas", Config{MaxBatch: qSize, MaxDelay: 200 * time.Millisecond, Replicas: 3, Shards: 4}, 0, false},
				{"sharded-2-3-replicas", Config{MaxBatch: 2 * qSize, MaxDelay: 200 * time.Millisecond, Replicas: 3, Shards: 2}, 0, false},
				{"sharded-4-1-proc", Config{MaxBatch: 2 * qSize, MaxDelay: 200 * time.Millisecond, Shards: 4}, 1, false},
				{"submit-many-sharded-3", Config{MaxBatch: 2 * qSize, MaxDelay: 200 * time.Millisecond, Replicas: 2, Shards: 3}, 0, true},
				// Kill-mid-batch runs: fault injection kills replicas'
				// devices partway through the workload and failover
				// re-enqueues their whole micro-batches for survivors to
				// steal. Composition was fixed at admission, so failover
				// cannot change a logit bit.
				{"failover-kill-r0", Config{MaxBatch: qSize, MaxDelay: 200 * time.Millisecond, Replicas: 3,
					FaultPlan: fault.Schedule().Kill(0, 0)}, 0, false},
				{"failover-kill-2-of-3", Config{MaxBatch: qSize, MaxDelay: 200 * time.Millisecond, Replicas: 3, Shards: 4,
					FaultPlan: fault.Schedule().Kill(0, 0).Kill(2, 1)}, 0, true},
			}
			for _, v := range variants {
				if v.proc > 0 {
					prev := runtime.GOMAXPROCS(v.proc)
					defer runtime.GOMAXPROCS(prev)
				}
				got := queryLogits(t, tr, v.cfg, queries, v.many)
				if v.proc > 0 {
					runtime.GOMAXPROCS(runtime.NumCPU())
				}
				for q := range queries {
					for i, want := range serial[q] {
						if got[q][i] != want {
							t.Fatalf("%s: query %d logit %d = %g, serial path %g — coalescing changed numerics",
								v.name, q, i, got[q][i], want)
						}
					}
				}
			}
		})
	}
}

// TestPolicyPlacementBitwise: serving placements are decided once at
// snapshot time from the trainer's fitted cost profile — a pure function
// of trainer state, never of serve.Config, batch composition or timing —
// so every snapshot, server and replica agrees on the same per-layer
// vector. The fitted profile must also actually exercise both placements
// at serving shapes: a heavy-feature workload (gowalla) flips at least one
// layer to combination-first while a light-feature one (products) keeps
// aggregation-first, and the mixed-placement logits stay bitwise identical
// across coalescing, replicas and shard counts.
func TestPolicyPlacementBitwise(t *testing.T) {
	heavy, err := datasets.Generate("gowalla", datasets.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrainer(t, frameworks.DynamicGT, heavy)

	want := tr.ServingPlacements()
	if again := tr.ServingPlacements(); !placementsEqual(want, again) {
		t.Fatalf("two ServingPlacements calls disagree: %v vs %v", want, again)
	}
	var nComb int
	for _, p := range want {
		if p == dkp.CombFirst {
			nComb++
		}
	}
	if nComb == 0 {
		t.Fatalf("heavy-feature serving shapes never chose combination-first: %v", want)
	}
	if nComb == len(want) {
		t.Fatalf("expected a mixed placement vector, got all combination-first: %v", want)
	}

	// Every server built from the trainer pins the same vector, regardless
	// of its serving configuration.
	for _, cfg := range []Config{DefaultConfig(), {MaxBatch: 7, MaxDelay: time.Millisecond, Replicas: 3, Shards: 2}} {
		s, err := NewServer(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !placementsEqual(s.placements, want) {
			s.Close()
			t.Fatalf("server pinned %v, trainer decided %v", s.placements, want)
		}
		for _, r := range s.replicas {
			if !placementsEqual(r.model.LayerPlacements(), want) {
				s.Close()
				t.Fatalf("replica %d pinned %v, want %v", r.id, r.model.LayerPlacements(), want)
			}
		}
		s.Close()
	}

	// Mixed placements stay bitwise: serial vs coalesced vs replicated.
	queries := make([][]graph.VID, 4)
	for q := range queries {
		queries[q] = heavy.BatchDsts(15, uint64(300+q))
	}
	serialCfg := DefaultConfig()
	serialCfg.MaxBatch = 1
	serial := queryLogits(t, tr, serialCfg, queries, false)
	for _, cfg := range []Config{
		{MaxBatch: 256, MaxDelay: 200 * time.Millisecond},
		{MaxBatch: 16, MaxDelay: 200 * time.Millisecond, Replicas: 3, Shards: 2},
	} {
		got := queryLogits(t, tr, cfg, queries, false)
		for q := range queries {
			for i, w := range serial[q] {
				if got[q][i] != w {
					t.Fatalf("query %d logit %d = %g, serial %g — placement policy broke coalescing bitwiseness",
						q, i, got[q][i], w)
				}
			}
		}
	}

	// Light features keep the conventional order everywhere.
	light := testDS(t)
	ltr := testTrainer(t, frameworks.DynamicGT, light)
	for li, p := range ltr.ServingPlacements() {
		if p != dkp.AggrFirst {
			t.Errorf("light-feature layer %d chose %s, want aggregation-first", li, p)
		}
	}
}

func placementsEqual(a, b []dkp.Placement) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServeStatsPlacements: the per-shard placement counters merge into
// Stats as (batches served) x (the snapshot-fixed placement vector).
func TestServeStatsPlacements(t *testing.T) {
	heavy, err := datasets.Generate("gowalla", datasets.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrainer(t, frameworks.DynamicGT, heavy)
	s, err := NewServer(tr, Config{MaxBatch: 10, MaxDelay: 50 * time.Millisecond, Replicas: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]graph.VID, 6)
	outs := make([][]float32, len(queries))
	tks := make([]*Ticket, len(queries))
	for q := range queries {
		queries[q] = heavy.BatchDsts(10, uint64(500+q))
		outs[q] = make([]float32, len(queries[q])*s.OutDim())
	}
	if err := s.SubmitMany(queries, outs, tks); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tks {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	st := s.Stats()
	if len(st.Placements) != len(s.placements) {
		t.Fatalf("Stats reported %d placement rows, model has %d layers", len(st.Placements), len(s.placements))
	}
	for li, pc := range st.Placements {
		wantAggr, wantComb := 0, 0
		if s.placements[li] == dkp.CombFirst {
			wantComb = st.Batches
		} else {
			wantAggr = st.Batches
		}
		if pc.AggrFirst != wantAggr || pc.CombFirst != wantComb {
			t.Errorf("layer %d placement counts {aggr:%d comb:%d}, want {aggr:%d comb:%d} over %d batches",
				li, pc.AggrFirst, pc.CombFirst, wantAggr, wantComb, st.Batches)
		}
	}
}

// TestSnapshotMatchesTrainerWeights: replicas bind bitwise copies of the
// trained model.
func TestSnapshotMatchesTrainerWeights(t *testing.T) {
	tr := testTrainer(t, frameworks.BaseGT, testDS(t))
	m, err := tr.SnapshotModel()
	if err != nil {
		t.Fatal(err)
	}
	if !multigpu.SameWeights(m, tr.Model) {
		t.Fatal("snapshot weights differ from the trained model")
	}
}

// TestTrainerServeMatchesServer ties the trainer's single-engine Serve fast
// path to the replica path: the logit rows the server scatters for a query
// equal the rows Trainer.Serve computes for the same dsts.
func TestTrainerServeMatchesServer(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	dsts := ds.BatchDsts(30, 77)

	logits, b, err := tr.Serve(dsts, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float32(nil), logits.M.Data...)
	logits.Free()
	b.Release()

	got := queryLogits(t, tr, DefaultConfig(), [][]graph.VID{dsts}, false)[0]
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("logit %d: server %g != Trainer.Serve %g", i, got[i], w)
		}
	}
}

// TestConcurrentAdmissionAndDrain is the race guard (run under -race in
// CI): many client goroutines submit while several replicas drain, with an
// LFU cache admitting concurrently underneath; every query must complete,
// with exact aggregate accounting, and the per-replica device memory must
// return to zero.
func TestConcurrentAdmissionAndDrain(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	cfg := Config{
		MaxBatch: 64,
		MaxDelay: 500 * time.Microsecond,
		Replicas: 3,
		Shards:   5, // more shards than replicas: stealing is always live
		Cache:    cache.New(ds.NumVertices()/4, cache.LFU, nil),
	}
	s, err := NewServer(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 6, 8
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out := make([]float32, 10*s.OutDim())
			for q := 0; q < perClient; q++ {
				dsts := ds.BatchDsts(10, uint64(1_000+c*perClient+q))
				if err := s.Query(dsts, out); err != nil {
					errs <- fmt.Errorf("client %d query %d: %w", c, q, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Queries != clients*perClient {
		t.Fatalf("served %d queries, want %d", st.Queries, clients*perClient)
	}
	if st.Batches == 0 || st.Throughput <= 0 {
		t.Fatalf("empty stats after serving: %+v", st)
	}
	// The per-shard breakdown is exact: shard counters sum to the totals.
	if len(st.PerShard) != cfg.Shards {
		t.Fatalf("PerShard has %d entries, want %d", len(st.PerShard), cfg.Shards)
	}
	sumQ, sumB := 0, 0
	for _, ss := range st.PerShard {
		sumQ += ss.Queries
		sumB += ss.Batches
	}
	if sumQ != st.Queries || sumB != st.Batches {
		t.Fatalf("per-shard sums (%d queries, %d batches) != totals (%d, %d)",
			sumQ, sumB, st.Queries, st.Batches)
	}
	s.Close()
	for i, r := range s.replicas {
		if used := r.dev.MemInUse(); used != 0 {
			t.Fatalf("replica %d still holds %d device bytes after Close", i, used)
		}
	}
}

// TestCloseDrainsQueuedQueries: Close is a graceful drain — everything
// admitted before Close completes with valid logits; Submits after Close
// fail with ErrClosed.
func TestCloseDrainsQueuedQueries(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	s, err := NewServer(tr, Config{MaxBatch: 512, MaxDelay: time.Hour}) // deadline never fires
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	tks := make([]*Ticket, n)
	outs := make([][]float32, n)
	for i := range tks {
		dsts := ds.BatchDsts(8, uint64(3_000+i))
		outs[i] = make([]float32, 8*s.OutDim())
		tks[i], err = s.Submit(dsts, outs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		for _, tk := range tks {
			if err := tk.Wait(); err != nil {
				t.Errorf("queued query failed on Close: %v", err)
			}
		}
		close(done)
	}()
	s.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("queued queries never completed after Close")
	}
	if _, err := s.Submit(ds.BatchDsts(4, 1), make([]float32, 4*s.OutDim())); err != ErrClosed {
		t.Fatalf("Submit after Close returned %v, want ErrClosed", err)
	}
	manyOuts := [][]float32{make([]float32, 4*s.OutDim())}
	if err := s.SubmitMany([][]graph.VID{ds.BatchDsts(4, 2)}, manyOuts, make([]*Ticket, 1)); err != ErrClosed {
		t.Fatalf("SubmitMany after Close returned %v, want ErrClosed", err)
	}
}

// stallServing installs the test hook that blocks every replica at the head
// of serveBatch until the returned release func runs. Must be called before
// NewServer; the returned cleanup resets the hook (call it after Close).
func stallServing() (release, cleanup func()) {
	gate := make(chan struct{})
	testHookServeBatch = func() { <-gate }
	var once sync.Once
	release = func() { once.Do(func() { close(gate) }) }
	cleanup = func() { release(); testHookServeBatch = nil }
	return release, cleanup
}

// TestSubmitBackpressureBlocks: when the admission queue fills (QueueCap),
// Submit blocks — the engine applies backpressure, it never drops a query
// and never returns a spurious error. Once the drain resumes, everything
// submitted is served.
func TestSubmitBackpressureBlocks(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	release, cleanup := stallServing()
	defer cleanup()
	// One shard, one replica, one query per batch, deadline never fires:
	// with the replica stalled, in-flight capacity is exactly QueueCap plus
	// the few tickets the coalesce/batch stages hold — far below total.
	s, err := NewServer(tr, Config{MaxBatch: 1, MaxDelay: time.Hour, Replicas: 1, Shards: 1, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	const total = 16
	var submitted atomic.Int64
	tks := make([]*Ticket, total)
	outs := make([][]float32, total)
	go func() {
		for i := 0; i < total; i++ {
			dsts := ds.BatchDsts(4, uint64(5_000+i))
			outs[i] = make([]float32, 4*s.OutDim())
			tk, err := s.Submit(dsts, outs[i])
			if err != nil {
				t.Errorf("Submit %d returned %v with a full queue, want block", i, err)
				return
			}
			tks[i] = tk
			submitted.Add(1)
		}
	}()
	// The submitter must stall well short of total while the drain is
	// blocked: wait for progress to stop, then hold the observation.
	deadline := time.Now().Add(5 * time.Second)
	var stalled int64
	for {
		n := submitted.Load()
		time.Sleep(50 * time.Millisecond)
		if submitted.Load() == n {
			stalled = n
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submitter never stalled")
		}
	}
	if stalled == total {
		t.Fatalf("all %d queries admitted past QueueCap 2 — no backpressure", total)
	}
	time.Sleep(200 * time.Millisecond)
	if n := submitted.Load(); n != stalled {
		t.Fatalf("submitter advanced %d→%d while the queue was full", stalled, n)
	}
	// Resume the drain: the blocked Submit unblocks, every query serves.
	release()
	deadline = time.Now().Add(10 * time.Second)
	for submitted.Load() != total {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d queries admitted after resume", submitted.Load(), total)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, tk := range tks {
		if err := tk.Wait(); err != nil {
			t.Fatalf("query %d failed after backpressure resume: %v", i, err)
		}
	}
	s.Close()
	if st := s.Stats(); st.Queries != total {
		t.Fatalf("served %d queries, want %d", st.Queries, total)
	}
}

// TestBlockedSubmitRacingClose: a Submit blocked on a full queue while
// Close runs must either admit its query (and serve it — Close drains) or
// return ErrClosed; a ticket is never stranded with neither outcome.
func TestBlockedSubmitRacingClose(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	release, cleanup := stallServing()
	defer cleanup()
	s, err := NewServer(tr, Config{MaxBatch: 1, MaxDelay: time.Hour, Replicas: 1, Shards: 1, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	const total = 16
	type result struct {
		tk  *Ticket
		err error
	}
	results := make([]result, total)
	var submitted atomic.Int64
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		for i := 0; i < total; i++ {
			dsts := ds.BatchDsts(4, uint64(7_000+i))
			out := make([]float32, 4*s.OutDim())
			tk, err := s.Submit(dsts, out)
			results[i] = result{tk, err}
			submitted.Add(1)
		}
	}()
	// Wait until the submitter is wedged against the full queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := submitted.Load()
		time.Sleep(50 * time.Millisecond)
		if submitted.Load() == n && n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submitter never stalled")
		}
	}
	// Race Close against the blocked Submit, then resume the drain so both
	// can make progress.
	closeDone := make(chan struct{})
	go func() { s.Close(); close(closeDone) }()
	time.Sleep(50 * time.Millisecond)
	release()
	select {
	case <-closeDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned")
	}
	select {
	case <-subDone:
	case <-time.After(10 * time.Second):
		t.Fatal("blocked Submit never resolved after Close")
	}
	served := 0
	for i, r := range results {
		switch {
		case r.err == ErrClosed:
			// Rejected cleanly; nothing to wait on.
		case r.err != nil:
			t.Fatalf("Submit %d: unexpected error %v", i, r.err)
		default:
			// Admitted: Close must have drained it — Wait resolves, no hang.
			done := make(chan error, 1)
			go func(tk *Ticket) { done <- tk.Wait() }(r.tk)
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("admitted query %d failed: %v", i, err)
				}
				served++
			case <-time.After(10 * time.Second):
				t.Fatalf("admitted query %d stranded: Wait never resolved", i)
			}
		}
	}
	if served == 0 {
		t.Fatal("no query was admitted before Close — race not exercised")
	}
}
