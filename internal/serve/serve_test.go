package serve

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"graphtensor/internal/cache"
	"graphtensor/internal/datasets"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/graph"
	"graphtensor/internal/multigpu"
)

func testDS(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.Generate("products", datasets.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testTrainer(t *testing.T, kind frameworks.Kind, ds *datasets.Dataset) *frameworks.Trainer {
	t.Helper()
	opt := frameworks.DefaultOptions()
	opt.BatchSize = 40
	tr, err := frameworks.New(kind, ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Move off the random init so the logits exercise trained weights.
	for i := 0; i < 2; i++ {
		if _, err := tr.TrainBatch(); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// queryLogits runs every query through a server built with cfg and returns
// one logit buffer per query.
func queryLogits(t *testing.T, tr *frameworks.Trainer, cfg Config, queries [][]graph.VID) [][]float32 {
	t.Helper()
	s, err := NewServer(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	outs := make([][]float32, len(queries))
	tks := make([]*Ticket, len(queries))
	for i, q := range queries {
		outs[i] = make([]float32, len(q)*s.OutDim())
		tks[i], err = s.Submit(q, outs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, tk := range tks {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	return outs
}

// TestCoalescedLogitsBitwise is the correctness core of the serving engine:
// for every kernel strategy, a query's logits must be bitwise identical
// whether it is served alone (per-query micro-batches), coalesced with
// every other query into one big batch, served by many replicas, or served
// at a different GOMAXPROCS. Coalescing and replication are pure perf.
func TestCoalescedLogitsBitwise(t *testing.T) {
	ds := testDS(t)
	const nQueries, qSize = 6, 20
	queries := make([][]graph.VID, nQueries)
	total := 0
	for q := range queries {
		queries[q] = ds.BatchDsts(qSize, uint64(900+q))
		total += len(queries[q])
	}
	// Strategy representatives: Graph-approach, DL-approach, Advisor, NAPA.
	for _, kind := range []frameworks.Kind{frameworks.DGL, frameworks.PyG, frameworks.GNNAdvisor, frameworks.BaseGT} {
		t.Run(kind.String(), func(t *testing.T) {
			tr := testTrainer(t, kind, ds)

			// Serial reference: every query alone in its own micro-batch.
			serialCfg := DefaultConfig()
			serialCfg.MaxBatch = 1 // cut after every query
			serial := queryLogits(t, tr, serialCfg, queries)

			variants := []struct {
				name string
				cfg  Config
				proc int
			}{
				{"coalesced", Config{MaxBatch: total, MaxDelay: 200 * time.Millisecond}, 0},
				{"coalesced-3-replicas", Config{MaxBatch: 2 * qSize, MaxDelay: 200 * time.Millisecond, Replicas: 3}, 0},
				{"coalesced-1-proc", Config{MaxBatch: total, MaxDelay: 200 * time.Millisecond}, 1},
				{"coalesced-cached", Config{MaxBatch: total, MaxDelay: 200 * time.Millisecond,
					Cache: cache.New(ds.NumVertices()/4, cache.Degree, ds.Graph)}, 0},
			}
			for _, v := range variants {
				if v.proc > 0 {
					prev := runtime.GOMAXPROCS(v.proc)
					defer runtime.GOMAXPROCS(prev)
				}
				got := queryLogits(t, tr, v.cfg, queries)
				if v.proc > 0 {
					runtime.GOMAXPROCS(runtime.NumCPU())
				}
				for q := range queries {
					for i, want := range serial[q] {
						if got[q][i] != want {
							t.Fatalf("%s: query %d logit %d = %g, serial path %g — coalescing changed numerics",
								v.name, q, i, got[q][i], want)
						}
					}
				}
			}
		})
	}
}

// TestSnapshotMatchesTrainerWeights: replicas bind bitwise copies of the
// trained model.
func TestSnapshotMatchesTrainerWeights(t *testing.T) {
	tr := testTrainer(t, frameworks.BaseGT, testDS(t))
	m, err := tr.SnapshotModel()
	if err != nil {
		t.Fatal(err)
	}
	if !multigpu.SameWeights(m, tr.Model) {
		t.Fatal("snapshot weights differ from the trained model")
	}
}

// TestTrainerServeMatchesServer ties the trainer's single-engine Serve fast
// path to the replica path: the logit rows the server scatters for a query
// equal the rows Trainer.Serve computes for the same dsts.
func TestTrainerServeMatchesServer(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	dsts := ds.BatchDsts(30, 77)

	logits, b, err := tr.Serve(dsts, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float32(nil), logits.M.Data...)
	logits.Free()
	b.Release()

	got := queryLogits(t, tr, DefaultConfig(), [][]graph.VID{dsts})[0]
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("logit %d: server %g != Trainer.Serve %g", i, got[i], w)
		}
	}
}

// TestConcurrentAdmissionAndDrain is the race guard (run under -race in
// CI): many client goroutines submit while several replicas drain, with an
// LFU cache admitting concurrently underneath; every query must complete,
// with exact aggregate accounting, and the per-replica device memory must
// return to zero.
func TestConcurrentAdmissionAndDrain(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	cfg := Config{
		MaxBatch: 64,
		MaxDelay: 500 * time.Microsecond,
		Replicas: 3,
		Cache:    cache.New(ds.NumVertices()/4, cache.LFU, nil),
	}
	s, err := NewServer(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 6, 8
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out := make([]float32, 10*s.OutDim())
			for q := 0; q < perClient; q++ {
				dsts := ds.BatchDsts(10, uint64(1_000+c*perClient+q))
				if err := s.Query(dsts, out); err != nil {
					errs <- fmt.Errorf("client %d query %d: %w", c, q, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Queries != clients*perClient {
		t.Fatalf("served %d queries, want %d", st.Queries, clients*perClient)
	}
	if st.Batches == 0 || st.Throughput <= 0 {
		t.Fatalf("empty stats after serving: %+v", st)
	}
	s.Close()
	for i, r := range s.replicas {
		if used := r.dev.MemInUse(); used != 0 {
			t.Fatalf("replica %d still holds %d device bytes after Close", i, used)
		}
	}
}

// TestCloseDrainsQueuedQueries: Close is a graceful drain — everything
// admitted before Close completes with valid logits; Submits after Close
// fail with ErrClosed.
func TestCloseDrainsQueuedQueries(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	s, err := NewServer(tr, Config{MaxBatch: 512, MaxDelay: time.Hour}) // deadline never fires
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	tks := make([]*Ticket, n)
	outs := make([][]float32, n)
	for i := range tks {
		dsts := ds.BatchDsts(8, uint64(3_000+i))
		outs[i] = make([]float32, 8*s.OutDim())
		tks[i], err = s.Submit(dsts, outs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		for _, tk := range tks {
			if err := tk.Wait(); err != nil {
				t.Errorf("queued query failed on Close: %v", err)
			}
		}
		close(done)
	}()
	s.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("queued queries never completed after Close")
	}
	if _, err := s.Submit(ds.BatchDsts(4, 1), make([]float32, 4*s.OutDim())); err != ErrClosed {
		t.Fatalf("Submit after Close returned %v, want ErrClosed", err)
	}
}
