package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"graphtensor/internal/fault"
	"graphtensor/internal/frameworks"
	"graphtensor/internal/graph"
)

// TestSubmitExpiredDeadlineFastPath: a Submit whose deadline already lapsed
// fails immediately with ErrDeadlineExceeded without touching a shard
// queue. The server is wedged with a full one-slot queue, so any path that
// did touch the queue would block — immediate return is the proof.
func TestSubmitExpiredDeadlineFastPath(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	release, cleanup := stallServing()
	defer cleanup()
	s, err := NewServer(tr, Config{MaxBatch: 1, MaxDelay: time.Hour, Replicas: 1, Shards: 1, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer release()

	// Fill the single queue slot (and the coalesce stage behind it).
	out := make([]float32, 4*s.OutDim())
	fills := make([]*Ticket, 0, 3)
	for i := 0; i < 3; i++ {
		tk, err := s.Submit(ds.BatchDsts(4, uint64(9_000+i)), out)
		if err != nil {
			t.Fatal(err)
		}
		fills = append(fills, tk)
	}

	expired := make(chan error, 1)
	go func() {
		_, err := s.SubmitDeadline(ds.BatchDsts(4, 9_100), make([]float32, 4*s.OutDim()), time.Now().Add(-time.Second))
		expired <- err
	}()
	select {
	case err := <-expired:
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("expired SubmitDeadline returned %v, want ErrDeadlineExceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("expired SubmitDeadline blocked on the full shard queue — fast path touched the queue")
	}

	// A pre-canceled context short-circuits the same way, with the
	// context's own error, and is not counted as a deadline expiry.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SubmitCtx(ctx, ds.BatchDsts(4, 9_101), make([]float32, 4*s.OutDim())); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled SubmitCtx returned %v, want context.Canceled", err)
	}

	release()
	for _, tk := range fills {
		if err := tk.Wait(); err != nil {
			t.Fatalf("filler query failed: %v", err)
		}
	}
	st := s.Stats()
	if st.Expired != 1 {
		t.Fatalf("Stats.Expired = %d, want 1 (the fast-path refusal)", st.Expired)
	}
	if st.Queries != len(fills) {
		t.Fatalf("Stats.Queries = %d, want %d — the refused query leaked into served counts", st.Queries, len(fills))
	}
}

// TestDeadlineExpiresInFlight: queries whose deadline lapses while the
// drain is stalled complete with ErrDeadlineExceeded — never silently
// dropped — while an unbounded query submitted alongside them still serves.
// Expiries are counted in the per-shard atomic stats.
func TestDeadlineExpiresInFlight(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	release, cleanup := stallServing()
	defer cleanup()
	s, err := NewServer(tr, Config{MaxBatch: 4, MaxDelay: time.Millisecond, Replicas: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const nExp = 3
	expTks := make([]*Ticket, nExp)
	for i := range expTks {
		expTks[i], err = s.SubmitDeadline(ds.BatchDsts(4, uint64(9_200+i)),
			make([]float32, 4*s.OutDim()), time.Now().Add(30*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
	}
	freeTk, err := s.Submit(ds.BatchDsts(4, 9_250), make([]float32, 4*s.OutDim()))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // let every deadline lapse while stalled
	release()

	for i, tk := range expTks {
		if err := tk.Wait(); !errors.Is(err, ErrDeadlineExceeded) {
			t.Fatalf("deadlined query %d completed with %v, want ErrDeadlineExceeded", i, err)
		}
	}
	if err := freeTk.Wait(); err != nil {
		t.Fatalf("unbounded query failed alongside expiring ones: %v", err)
	}
	st := s.Stats()
	if st.Expired != nExp {
		t.Fatalf("Stats.Expired = %d, want %d", st.Expired, nExp)
	}
	perShard := 0
	for _, ss := range st.PerShard {
		perShard += ss.Expired
	}
	if perShard != st.Expired {
		t.Fatalf("per-shard expired sum %d != total %d", perShard, st.Expired)
	}
}

// TestSubmitCtxCancelInFlight: cancelling a query's context while it is
// queued completes its ticket with context.Canceled (not a deadline
// expiry, not a silent drop).
func TestSubmitCtxCancelInFlight(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	release, cleanup := stallServing()
	defer cleanup()
	s, err := NewServer(tr, Config{MaxBatch: 4, MaxDelay: time.Millisecond, Replicas: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	tk, err := s.SubmitCtx(ctx, ds.BatchDsts(4, 9_300), make([]float32, 4*s.OutDim()))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	release()
	if err := tk.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query completed with %v, want context.Canceled", err)
	}
	if st := s.Stats(); st.Expired != 0 {
		t.Fatalf("cancellation was miscounted as a deadline expiry: Expired = %d", st.Expired)
	}
}

// TestFailoverKillMidBatch: fault injection kills a replica's device on its
// first batch; the whole micro-batch is re-enqueued and the survivor serves
// the entire workload with logits bitwise identical to a fault-free run.
// The stats record the failover and the shrunken replica set.
func TestFailoverKillMidBatch(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	const n, qSize = 24, 8
	queries := make([][]graph.VID, n)
	for q := range queries {
		queries[q] = ds.BatchDsts(qSize, uint64(9_400+q))
	}
	cfg := Config{MaxBatch: qSize, MaxDelay: 50 * time.Millisecond, Replicas: 2, Shards: 2}
	want := queryLogits(t, tr, cfg, queries, false)

	cfg.FaultPlan = fault.Schedule().Kill(0, 0)
	s, err := NewServer(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]float32, n)
	tks := make([]*Ticket, n)
	for q := range queries {
		outs[q] = make([]float32, qSize*s.OutDim())
		if tks[q], err = s.Submit(queries[q], outs[q]); err != nil {
			t.Fatal(err)
		}
	}
	for q, tk := range tks {
		if err := tk.Wait(); err != nil {
			t.Fatalf("query %d failed under failover: %v", q, err)
		}
	}
	st := s.Stats()
	s.Close()
	for q := range queries {
		for i, w := range want[q] {
			if outs[q][i] != w {
				t.Fatalf("query %d logit %d = %g, fault-free run %g — failover changed numerics", q, i, outs[q][i], w)
			}
		}
	}
	if st.DeadReplicas != 1 {
		t.Fatalf("Stats.DeadReplicas = %d, want 1", st.DeadReplicas)
	}
	if st.FailedOver < 1 {
		t.Fatalf("Stats.FailedOver = %d, want >= 1", st.FailedOver)
	}
	if st.Queries != n {
		t.Fatalf("Stats.Queries = %d, want %d", st.Queries, n)
	}
}

// TestFailoverAllReplicasDead: when fault injection kills the only
// replica, queued queries complete with ErrReplicasLost — the server fails
// its work rather than strand a single caller — and Close still drains
// cleanly.
func TestFailoverAllReplicasDead(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	cfg := Config{MaxBatch: 1, MaxDelay: time.Millisecond, Replicas: 1, Shards: 1,
		FaultPlan: fault.Schedule().Kill(0, 0)}
	s, err := NewServer(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	tks := make([]*Ticket, n)
	for i := range tks {
		if tks[i], err = s.Submit(ds.BatchDsts(4, uint64(9_500+i)), make([]float32, 4*s.OutDim())); err != nil {
			t.Fatal(err)
		}
	}
	for i, tk := range tks {
		err := tk.Wait()
		if err == nil {
			t.Fatalf("query %d served by a dead fleet", i)
		}
		if !errors.Is(err, ErrReplicasLost) {
			t.Fatalf("query %d completed with %v, want ErrReplicasLost", i, err)
		}
	}
	st := s.Stats()
	if st.DeadReplicas != 1 {
		t.Fatalf("Stats.DeadReplicas = %d, want 1", st.DeadReplicas)
	}
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung with every replica dead")
	}
}

// TestFailoverRacingClose is the Close-idempotency race guard alongside
// TestBlockedSubmitRacingClose: two concurrent Closes race an in-flight
// failover re-enqueue (a replica dies during the close drain). Neither
// Close may panic, both must return, every admitted ticket must resolve,
// and a third Close afterwards is a no-op.
func TestFailoverRacingClose(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	release, cleanup := stallServing()
	defer cleanup()
	cfg := Config{MaxBatch: 4, MaxDelay: time.Millisecond, Replicas: 2, Shards: 2,
		FaultPlan: fault.Schedule().Kill(0, 0)}
	s, err := NewServer(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	tks := make([]*Ticket, n)
	for i := range tks {
		if tks[i], err = s.Submit(ds.BatchDsts(4, uint64(9_600+i)), make([]float32, 4*s.OutDim())); err != nil {
			t.Fatal(err)
		}
	}
	// Two Closes race each other and the stalled drain; the release lets
	// the drain (and with it replica 0's death + re-enqueue) happen while
	// the Closes are waiting.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	time.Sleep(20 * time.Millisecond)
	release()
	closed := make(chan struct{})
	go func() { wg.Wait(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(15 * time.Second):
		t.Fatal("concurrent Closes never returned")
	}
	for i, tk := range tks {
		done := make(chan error, 1)
		go func(tk *Ticket) { done <- tk.Wait() }(tk)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("admitted query %d failed across Close+failover: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("query %d stranded by Close racing failover", i)
		}
	}
	s.Close() // third Close: still a no-op
	if st := s.Stats(); st.Queries != n {
		t.Fatalf("served %d queries, want %d", st.Queries, n)
	}
}

// TestReplicaRejoinServes: a replica whose device dies parks instead of
// exiting, and a rejoin event respawns it — device revived, fresh weight
// snapshot, original home/steal queues — after which the full fleet serves
// again. Logits stay bitwise identical to a fault-free run throughout, and
// the degraded window is visible in Stats.
func TestReplicaRejoinServes(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	const n, qSize = 24, 8
	queries := make([][]graph.VID, n)
	for q := range queries {
		queries[q] = ds.BatchDsts(qSize, uint64(9_700+q))
	}
	cfg := Config{MaxBatch: qSize, MaxDelay: 50 * time.Millisecond, Replicas: 2, Shards: 2}
	want := queryLogits(t, tr, cfg, queries, false)

	// Replica 0 dies on its first batch; RejoinProb 1 makes the next
	// boundary after it parks revive it.
	cfg.FaultPlan = fault.NewPlan(1, fault.Config{RejoinProb: 1}).Kill(0, 0)
	s, err := NewServer(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	outs := make([][]float32, n)
	tks := make([]*Ticket, n)
	for q := range queries {
		outs[q] = make([]float32, qSize*s.OutDim())
		if tks[q], err = s.Submit(queries[q], outs[q]); err != nil {
			t.Fatal(err)
		}
	}
	for q, tk := range tks {
		if err := tk.Wait(); err != nil {
			t.Fatalf("query %d failed across death+rejoin: %v", q, err)
		}
	}
	for q := range queries {
		for i, w := range want[q] {
			if outs[q][i] != w {
				t.Fatalf("query %d logit %d = %g, fault-free run %g — rejoin changed numerics", q, i, outs[q][i], w)
			}
		}
	}

	// The rejoin fires at the first served-batch boundary after the dead
	// replica parks; keep forcing boundaries until it lands.
	deadline := time.Now().Add(10 * time.Second)
	extra := make([]float32, qSize*s.OutDim())
	for s.Stats().Rejoined == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replica never rejoined despite RejoinProb 1")
		}
		if err := s.Query(ds.BatchDsts(qSize, 9_790), extra); err != nil {
			t.Fatalf("boundary-forcing query failed: %v", err)
		}
	}
	st := s.Stats()
	if st.Rejoined != 1 {
		t.Fatalf("Stats.Rejoined = %d, want 1", st.Rejoined)
	}
	if st.DeadReplicas != 0 {
		t.Fatalf("Stats.DeadReplicas = %d after rejoin, want 0", st.DeadReplicas)
	}
	if st.FailedOver < 1 {
		t.Fatalf("Stats.FailedOver = %d, want >= 1", st.FailedOver)
	}
	if st.TimeDegraded <= 0 {
		t.Fatal("Stats.TimeDegraded is zero across a death+rejoin window")
	}
	for i, ss := range st.PerShard {
		if ss.Batches > 0 && ss.BacklogAge <= 0 {
			t.Errorf("shard %d served %d batches but reports no backlog age", i, ss.Batches)
		}
	}
}

// TestLastReplicaRejoins: the dead-completer — the last replica standing
// after its device is lost — revives itself at the rejoin boundary. The
// query caught while the fleet was dead fails with ErrReplicasLost; the
// next one is served correctly by the respawned replica.
func TestLastReplicaRejoins(t *testing.T) {
	ds := testDS(t)
	tr := testTrainer(t, frameworks.BaseGT, ds)
	const qSize = 6
	q1, q2 := ds.BatchDsts(qSize, 9_800), ds.BatchDsts(qSize, 9_801)
	cfg := Config{MaxBatch: qSize, MaxDelay: time.Millisecond, Replicas: 1, Shards: 1}
	want := queryLogits(t, tr, cfg, [][]graph.VID{q2}, false)

	// Boundary 0 kills the only replica mid-batch; boundary 1 revives it.
	cfg.FaultPlan = fault.Schedule().Kill(0, 0).RejoinReplica(0, 1)
	s, err := NewServer(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	out := make([]float32, qSize*s.OutDim())
	if err := s.Query(q1, out); !errors.Is(err, ErrReplicasLost) {
		t.Fatalf("query during dead fleet returned %v, want ErrReplicasLost", err)
	}
	if err := s.Query(q2, out); err != nil {
		t.Fatalf("query after rejoin failed: %v", err)
	}
	for i, w := range want[0] {
		if out[i] != w {
			t.Fatalf("post-rejoin logit %d = %g, fault-free run %g", i, out[i], w)
		}
	}
	st := s.Stats()
	if st.Rejoined != 1 || st.DeadReplicas != 0 {
		t.Fatalf("Rejoined=%d DeadReplicas=%d, want 1/0", st.Rejoined, st.DeadReplicas)
	}
	if st.FailedOver != 1 {
		t.Fatalf("Stats.FailedOver = %d, want 1", st.FailedOver)
	}
	if st.TimeDegraded <= 0 {
		t.Fatal("Stats.TimeDegraded is zero across the dead-fleet window")
	}
}
