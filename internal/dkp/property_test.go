package dkp

import (
	"testing"
	"testing/quick"
)

// TestQuickDecideConsistentWithBenefits: Decide always returns the
// placement with the larger total benefit.
func TestQuickDecideConsistentWithBenefits(t *testing.T) {
	c := PaperCoeffs()
	f := func(nSrcR, nDstR, nEdgeR, nFeatR, nHidR uint16) bool {
		d := Dims{
			NSrc:  1 + int(nSrcR)%5000,
			NDst:  1 + int(nDstR)%5000,
			NEdge: 1 + int(nEdgeR)%20000,
			NFeat: 1 + int(nFeatR)%4096,
			NHid:  1 + int(nHidR)%512,
		}
		if d.NDst > d.NSrc {
			d.NDst = d.NSrc
		}
		af, ab := c.AggrFirstBenefit(d, false)
		cf, cb := c.CombFirstBenefit(d, 0)
		got := c.Decide(d, false, 0)
		if cf+cb > af+ab {
			return got == CombFirst
		}
		return got == AggrFirst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickReductionRatesPositive: reduction rates are always >= 1 (a kernel
// never inflates its input).
func TestQuickReductionRatesPositive(t *testing.T) {
	f := func(nSrcR, nDstR, nFeatR, nHidR uint16) bool {
		nSrc := 1 + int(nSrcR)%5000
		nDst := 1 + int(nDstR)%nSrc
		nHid := 1 + int(nHidR)%512
		nFeat := nHid + int(nFeatR)%4096 // nFeat >= nHid
		d := Dims{NSrc: nSrc, NDst: nDst, NFeat: nFeat, NHid: nHid, NEdge: nSrc * 3}
		af, cf := ReductionRate(d)
		return af >= 0.99 && cf >= 0.99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickEdgeWeightNeverIncreasesBenefit: adding an edge-weight branch
// never makes comb-first more attractive than the unweighted case.
func TestQuickEdgeWeightNeverIncreasesBenefit(t *testing.T) {
	c := PaperCoeffs()
	f := func(nSrcR, nDstR, nFeatR, nHidR uint16) bool {
		nSrc := 1 + int(nSrcR)%5000
		nDst := 1 + int(nDstR)%nSrc
		nHid := 1 + int(nHidR)%256
		nFeat := nHid + int(nFeatR)%2048
		d := Dims{NSrc: nSrc, NDst: nDst, NFeat: nFeat, NHid: nHid, NEdge: nSrc * 4}
		plain, _ := c.CombFirstBenefit(d, 0)
		weighted, _ := c.CombFirstBenefit(d, nFeat)
		return weighted <= plain+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
