package dkp

import (
	"sync"
	"testing"
	"time"

	"graphtensor/internal/gpusim"
)

func TestReductionRateDirection(t *testing.T) {
	// Wide features: comb-first reduces more (width 4096 -> 64).
	wide := Dims{NSrc: 600, NDst: 500, NEdge: 4000, NFeat: 4096, NHid: 64}
	af, cf := ReductionRate(wide)
	if cf <= af {
		t.Errorf("wide: comb-first rate %g should exceed aggr-first %g", cf, af)
	}
	// Big neighborhood, tiny features: aggr-first reduces more.
	tall := Dims{NSrc: 5000, NDst: 50, NEdge: 9000, NFeat: 8, NHid: 64}
	af, cf = ReductionRate(tall)
	if af <= cf {
		t.Errorf("tall: aggr-first rate %g should exceed comb-first %g", af, cf)
	}
}

func TestDecideWideChoosesCombFirst(t *testing.T) {
	c := PaperCoeffs()
	wide := Dims{NSrc: 550, NDst: 500, NEdge: 4000, NFeat: 4096, NHid: 64}
	if c.Decide(wide, false, 0) != CombFirst {
		t.Error("wide features should pick combination-first")
	}
}

func TestDecideFirstLayerBWPBonus(t *testing.T) {
	// The first layer's aggr-first BWP uses reduction factor nSrc (not
	// nSrc-nDst), which should make aggr-first more attractive there.
	c := PaperCoeffs()
	d := Dims{NSrc: 2000, NDst: 1900, NEdge: 6000, NFeat: 200, NHid: 64}
	_, bwpFirst := c.AggrFirstBenefit(d, true)
	_, bwpMid := c.AggrFirstBenefit(d, false)
	if bwpFirst <= bwpMid {
		t.Errorf("first-layer BWP benefit %g should exceed mid-layer %g", bwpFirst, bwpMid)
	}
}

func TestEdgeWeightReducesCombFirstBenefit(t *testing.T) {
	c := PaperCoeffs()
	d := Dims{NSrc: 600, NDst: 500, NEdge: 4000, NFeat: 256, NHid: 64}
	plain, _ := c.CombFirstBenefit(d, 0)
	weighted, _ := c.CombFirstBenefit(d, d.NFeat)
	if weighted >= plain {
		t.Errorf("edge-weighted comb-first benefit %g should be below unweighted %g", weighted, plain)
	}
}

// TestCalibrateFitsProfile runs the full offline calibration against the
// default simulated device class and checks the fit is accepted, the
// coefficients are sane (non-negative, finite error) and the fitted
// decisions agree with the measured per-shape optimum across the
// calibration sweep — the property the dkpfit experiment enforces.
func TestCalibrateFitsProfile(t *testing.T) {
	cfg := gpusim.DefaultConfig()
	prof, err := Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Fitted {
		t.Fatalf("calibration rejected its own fit (error %.1f%%)", 100*prof.FitErr)
	}
	if prof.FitErr < 0 || prof.FitErr > 1 {
		t.Fatalf("fit error out of range: %g", prof.FitErr)
	}
	t.Logf("class %s coeffs %+v fitErr %.2f%%", prof.Class, prof.Coeffs, 100*prof.FitErr)
	costs, err := MeasurePlacements(cfg, DefaultSweep())
	if err != nil {
		t.Fatal(err)
	}
	beatsAggr := false
	for _, sc := range costs {
		choice := prof.Coeffs.Decide(sc.Dims, false, 0)
		tPol := sc.AggrFirst
		if choice == CombFirst {
			tPol = sc.CombFirst
		}
		best := sc.AggrFirst
		if sc.CombFirst < best {
			best = sc.CombFirst
		}
		t.Logf("shape %+v aggr %v comb %v -> %s", sc.Dims, sc.AggrFirst, sc.CombFirst, choice)
		if tPol > best {
			t.Errorf("shape %+v: policy placement %s (%v) loses to best pinned (%v)", sc.Dims, choice, tPol, best)
		}
		if tPol < sc.AggrFirst {
			beatsAggr = true
		}
	}
	if !beatsAggr {
		t.Error("fitted decisions never beat pinned aggregation-first over the sweep")
	}
}

// TestCalibrateDecisionsVaryWithShape guards against a degenerate fit that
// collapses every decision to one placement: the fitted profile must pick
// CombFirst on at least one swept shape and AggrFirst on at least one.
func TestCalibrateDecisionsVaryWithShape(t *testing.T) {
	prof := ProfileFor(gpusim.DefaultConfig())
	var nAggr, nComb int
	for _, d := range DefaultSweep() {
		if prof.Coeffs.Decide(d, false, 0) == CombFirst {
			nComb++
		} else {
			nAggr++
		}
	}
	if nAggr == 0 || nComb == 0 {
		t.Fatalf("degenerate fitted policy: %d aggr-first vs %d comb-first over the sweep", nAggr, nComb)
	}
}

// TestFitSingularFallsBackToPaperCoeffs is the regression test for the
// ErrSingular path: a design whose two columns are perfectly collinear must
// still produce usable (non-zero) coefficients — the per-pair fallback fits
// the dominant single coefficient and never hands back a zeroed profile.
func TestFitSingularFallsBackToPaperCoeffs(t *testing.T) {
	var r calibRecorder
	// Perfectly collinear columns: a1 = a0/2 in every sample, for every
	// coefficient pair.
	for i := 1; i <= 6; i++ {
		v := float64(i * 1000)
		r.combFWP.add(v, v/2, 3e-4*v)
		r.combBWP.add(v, v/2, 3e-4*v)
		r.aggrFWP.add(v, v/2, 7e-5*v)
		r.aggrBWP.add(v, v/2, 7e-5*v)
	}
	def := PaperCoeffs()
	c, _, err := r.fit(def)
	if err != nil {
		t.Fatal(err)
	}
	if c == (Coeffs{}) {
		t.Fatal("singular fit produced a zero profile")
	}
	if c.AlphaFWP <= 0 || c.GammaFWP <= 0 {
		t.Errorf("singular fallback should keep the dominant coefficients positive: %+v", c)
	}
}

// TestCalibrateErrorKeepsDefaults: ProfileFor must never return a zeroed
// profile even for a hostile device config — the fallback is PaperCoeffs.
func TestCalibrateErrorKeepsDefaults(t *testing.T) {
	cfg := gpusim.DefaultConfig()
	cfg.MemoryBytes = 1 // every allocation OOMs -> Calibrate errors
	if _, err := Calibrate(cfg); err == nil {
		t.Fatal("Calibrate on a 1-byte device should error")
	}
	// Give the hostile config its own device class so ProfileFor's memo
	// can't serve the default class's fitted profile.
	cfg.CacheLineBytes = 64
	prof := ProfileFor(cfg)
	if prof.Fitted {
		t.Error("1-byte device should not produce a fitted profile")
	}
	if prof.Coeffs != PaperCoeffs() {
		t.Errorf("failed calibration must fall back to PaperCoeffs, got %+v", prof.Coeffs)
	}
}

func TestRecommendDefaults(t *testing.T) {
	rec := ProfileFor(gpusim.DefaultConfig()).Recommend()
	if rec.MaxBatch != 512 {
		t.Errorf("default class MaxBatch = %d, want 512", rec.MaxBatch)
	}
	if rec.MaxDelay != 2*time.Millisecond {
		t.Errorf("default class MaxDelay = %v, want 2ms", rec.MaxDelay)
	}
	if rec.GradShards != 8 {
		t.Errorf("default class GradShards = %d, want 8", rec.GradShards)
	}
}

// TestPolicyMemoConsistency checks the lock-free memo never changes an
// answer: memoized decisions equal direct computation for every probed
// shape, under concurrent access.
func TestPolicyMemoConsistency(t *testing.T) {
	pol := NewPolicy(nil)
	shapes := make([]Dims, 0, 64)
	for i := 1; i <= 64; i++ {
		shapes = append(shapes, Dims{
			NSrc: 100 * i, NDst: 50 * i, NEdge: 400 * i,
			NFeat: 16 * i, NHid: 8 + i,
		})
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 3; pass++ {
				for _, d := range shapes {
					got := pol.Decide(d, false, 0)
					want := pol.Profile().Coeffs.Decide(d, false, 0)
					if got != want {
						t.Errorf("memoized decision %s != direct %s for %+v", got, want, d)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	// firstLayer and weightCols are part of the key, not folded away.
	d := Dims{NSrc: 2000, NDst: 1900, NEdge: 6000, NFeat: 200, NHid: 64}
	if pol.Decide(d, true, 0) != pol.Profile().Coeffs.Decide(d, true, 0) {
		t.Error("first-layer decision diverged from direct computation")
	}
	if pol.Decide(d, false, d.NFeat) != pol.Profile().Coeffs.Decide(d, false, d.NFeat) {
		t.Error("weighted decision diverged from direct computation")
	}
}
