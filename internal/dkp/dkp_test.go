package dkp

import (
	"testing"
	"time"
)

func TestReductionRateDirection(t *testing.T) {
	// Wide features: comb-first reduces more (width 4096 -> 64).
	wide := Dims{NSrc: 600, NDst: 500, NEdge: 4000, NFeat: 4096, NHid: 64}
	af, cf := ReductionRate(wide)
	if cf <= af {
		t.Errorf("wide: comb-first rate %g should exceed aggr-first %g", cf, af)
	}
	// Big neighborhood, tiny features: aggr-first reduces more.
	tall := Dims{NSrc: 5000, NDst: 50, NEdge: 9000, NFeat: 8, NHid: 64}
	af, cf = ReductionRate(tall)
	if af <= cf {
		t.Errorf("tall: aggr-first rate %g should exceed comb-first %g", af, cf)
	}
}

func TestDecideWideChoosesCombFirst(t *testing.T) {
	c := PaperCoeffs()
	wide := Dims{NSrc: 550, NDst: 500, NEdge: 4000, NFeat: 4096, NHid: 64}
	if c.Decide(wide, false, 0) != CombFirst {
		t.Error("wide features should pick combination-first")
	}
}

func TestDecideFirstLayerBWPBonus(t *testing.T) {
	// The first layer's aggr-first BWP uses reduction factor nSrc (not
	// nSrc-nDst), which should make aggr-first more attractive there.
	c := PaperCoeffs()
	d := Dims{NSrc: 2000, NDst: 1900, NEdge: 6000, NFeat: 200, NHid: 64}
	_, bwpFirst := c.AggrFirstBenefit(d, true)
	_, bwpMid := c.AggrFirstBenefit(d, false)
	if bwpFirst <= bwpMid {
		t.Errorf("first-layer BWP benefit %g should exceed mid-layer %g", bwpFirst, bwpMid)
	}
}

func TestEdgeWeightReducesCombFirstBenefit(t *testing.T) {
	c := PaperCoeffs()
	d := Dims{NSrc: 600, NDst: 500, NEdge: 4000, NFeat: 256, NHid: 64}
	plain, _ := c.CombFirstBenefit(d, 0)
	weighted, _ := c.CombFirstBenefit(d, d.NFeat)
	if weighted >= plain {
		t.Errorf("edge-weighted comb-first benefit %g should be below unweighted %g", weighted, plain)
	}
}

func TestOrchestratorFitImprovesOverDefault(t *testing.T) {
	o := NewOrchestrator()
	o.MinSamples = 2
	// Synthesize measurements from a known linear cost with varied shapes.
	for i := 1; i <= 6; i++ {
		rows := 100 * i
		nFeat := 50 * i
		nHid := 8 * i
		combUs := time.Duration(float64(rows)*float64(nHid)*float64(nFeat)*3e-6+float64(rows)*float64(nHid)*2e-6) * time.Microsecond
		o.ObserveCombination(rows, nFeat, nHid, false, combUs)
		o.ObserveCombination(rows/2, nFeat, nHid, true, combUs/2)
		aggrUs := time.Duration(float64(rows*5)*1e-3+float64(rows)*2e-3) * time.Microsecond
		o.ObserveAggregation(rows*5, rows, nFeat, false, aggrUs)
		o.ObserveAggregation(rows*5, rows, nFeat, true, aggrUs)
	}
	if _, err := o.Fit(); err != nil {
		t.Fatal(err)
	}
	if !o.Fitted() {
		t.Error("orchestrator did not mark itself fitted")
	}
}

func TestFitInsufficientSamples(t *testing.T) {
	o := NewOrchestrator()
	o.ObserveCombination(10, 10, 10, false, time.Microsecond)
	if _, err := o.Fit(); err == nil {
		t.Error("expected insufficient-samples error")
	}
}

func TestNonRearrangeableStaysAggrFirst(t *testing.T) {
	o := NewOrchestrator()
	d := Dims{NSrc: 600, NDst: 500, NEdge: 4000, NFeat: 4096, NHid: 64}
	if o.Decide(d, false, false, 0) != AggrFirst {
		t.Error("non-rearrangeable layer must stay aggregation-first")
	}
}
