// Package dkp implements GraphTensor's dynamic kernel placement (§V-A):
// the policy that decides, per GNN layer, whether the aggregation (Pull)
// or the combination's MatMul executes first, using the cost model of
// Table I. Coefficients are fitted offline by Calibrate, which sweeps
// layer shapes through the kernel strategies on the GPU simulator and
// least-squares fits the *modeled* kernel times — pure functions of shape
// and device class, never wall time — so every replica that loads the same
// Profile makes bit-identical placement decisions by construction. Policy
// memoizes Decide in a lock-free shape-keyed table for the hot path, and
// Recommend derives the serving batch/delay and gradient-shard knobs from
// the same fitted cost model.
package dkp

// Placement is a kernel execution order for one layer.
type Placement int

const (
	// AggrFirst is the conventional static order: aggregate, then combine.
	AggrFirst Placement = iota
	// CombFirst runs the combination's MatMul before the aggregation,
	// shrinking the feature dimension the aggregation must move.
	CombFirst
)

// String names the placement.
func (p Placement) String() string {
	if p == CombFirst {
		return "combination-first"
	}
	return "aggregation-first"
}

// Dims are the system hyperparameters the cost model consumes (Fig 11a):
// the sampled-subgraph shape and the layer's feature/hidden widths.
type Dims struct {
	NSrc, NDst, NEdge int
	NFeat, NHid       int
}

// Coeffs are the cost-model coefficient parameters of Table I.
type Coeffs struct {
	// FWP aggregation-first kernel-execution factors.
	AlphaFWP, BetaFWP float64
	// BWP aggregation-first factors.
	AlphaBWP, BetaBWP float64
	// FWP combination-first factors.
	GammaFWP, DeltaFWP float64
	// BWP combination-first factors.
	GammaBWP, DeltaBWP float64
}

// PaperCoeffs returns the fitted coefficients the paper reports in Table I
// (in microsecond-scale units on their RTX 3090 testbed). They serve as
// the unfitted fallback whenever calibration is unavailable or rejected.
func PaperCoeffs() Coeffs {
	return Coeffs{
		AlphaFWP: 6e-5, BetaFWP: 1e-5,
		AlphaBWP: 1e-7, BetaBWP: 4e-6,
		GammaFWP: 1e-3, DeltaFWP: 1e-12,
		GammaBWP: 1e-6, DeltaBWP: 1e-8,
	}
}

// AggrFirstBenefit estimates the latency saved by running the aggregation
// first (Table I): the aggregation shrinks the combination's input height
// from nSrc to nDst, so the saved combination work is
// (nSrc − nDst)·(α·nHid·nFeat + β·nHid) in FWP. For the first GNN layer's
// BWP — the last executed — the reduction factor is nSrc: aggregation-first
// skips the aggregation BWP entirely because no gradient flows past the
// input embeddings (only MLP parameters need gradients).
func (c Coeffs) AggrFirstBenefit(d Dims, firstLayer bool) (fwp, bwp float64) {
	red := float64(d.NSrc - d.NDst)
	fwp = red * (c.AlphaFWP*float64(d.NHid)*float64(d.NFeat) + c.BetaFWP*float64(d.NHid))
	bwpRed := red
	if firstLayer {
		bwpRed = float64(d.NSrc)
	}
	bwp = bwpRed * (c.AlphaBWP*float64(d.NHid)*float64(d.NFeat) + c.BetaBWP*float64(d.NFeat))
	return fwp, bwp
}

// CombFirstBenefit estimates the latency saved by running the combination
// first: it shrinks the aggregation's feature width from nFeat to nHid, so
// the saved aggregation work is (nFeat − nHid)·(γ·nEdge + δ·nDst) in FWP
// and (nFeat − nHid)·(γ·nEdge + δ·nSrc) in BWP (Table I).
//
// weightCols is the width of the layer's edge-weight vectors (0 for
// unweighted modes, 1 for scalar weights, nFeat for NGCF-style vector
// weights). Edge-weighted layers keep a weight branch that must still
// aggregate in the original width plus one extra MatMul over the dsts, so
// the benefit shrinks accordingly — this is why "edge weighting is hard to
// get benefit from kernel scheduling" (§VI-A).
func (c Coeffs) CombFirstBenefit(d Dims, weightCols int) (fwp, bwp float64) {
	red := float64(d.NFeat - d.NHid)
	fwp = red * (c.GammaFWP*float64(d.NEdge) + c.DeltaFWP*float64(d.NDst))
	bwp = red * (c.GammaBWP*float64(d.NEdge) + c.DeltaBWP*float64(d.NSrc))
	if weightCols > 0 {
		// Weight-branch aggregation (width weightCols) stays untransformed.
		fwp -= float64(weightCols) * (c.GammaFWP*float64(d.NEdge) + c.DeltaFWP*float64(d.NDst))
		bwp -= float64(weightCols) * (c.GammaBWP*float64(d.NEdge) + c.DeltaBWP*float64(d.NSrc))
		if weightCols > 1 {
			// Vector weights add one MatMul over the aggregated weights.
			fwp -= float64(d.NDst) * (c.AlphaFWP*float64(d.NHid)*float64(d.NFeat) + c.BetaFWP*float64(d.NHid))
			bwp -= float64(d.NDst) * (c.AlphaBWP*float64(d.NHid)*float64(d.NFeat) + c.BetaBWP*float64(d.NFeat))
		}
	}
	return fwp, bwp
}

// Decide returns the placement with the larger estimated benefit for a
// layer of the given dimensions and edge-weight width.
func (c Coeffs) Decide(d Dims, firstLayer bool, weightCols int) Placement {
	af, ab := c.AggrFirstBenefit(d, firstLayer)
	cf, cb := c.CombFirstBenefit(d, weightCols)
	if cf+cb > af+ab {
		return CombFirst
	}
	return AggrFirst
}

// ReductionRate returns the input-tensor size reduction each placement
// achieves for the layer (Fig 11b): elements entering the second kernel
// under aggregation-first versus combination-first.
func ReductionRate(d Dims) (aggrFirst, combFirst float64) {
	in := float64(d.NSrc) * float64(d.NFeat)
	if in == 0 {
		return 0, 0
	}
	aggrFirst = in / (float64(d.NDst) * float64(d.NFeat)) // height shrinks
	combFirst = in / (float64(d.NSrc) * float64(d.NHid))  // width shrinks
	return aggrFirst, combFirst
}
