// Package dkp implements GraphTensor's dynamic kernel placement (§V-A):
// the kernel orchestrator that decides, per GNN layer and at runtime,
// whether the aggregation (Pull) or the combination's MatMul should execute
// first, using the cost model of Table I with coefficients fitted by least
// squares from measured kernel execution times during the first training
// epoch.
package dkp

import (
	"fmt"
	"sync"
	"time"

	"graphtensor/internal/lsq"
)

// Placement is a kernel execution order for one layer.
type Placement int

const (
	// AggrFirst is the conventional static order: aggregate, then combine.
	AggrFirst Placement = iota
	// CombFirst runs the combination's MatMul before the aggregation,
	// shrinking the feature dimension the aggregation must move.
	CombFirst
)

// String names the placement.
func (p Placement) String() string {
	if p == CombFirst {
		return "combination-first"
	}
	return "aggregation-first"
}

// Dims are the system hyperparameters the cost model consumes (Fig 11a):
// the sampled-subgraph shape and the layer's feature/hidden widths.
type Dims struct {
	NSrc, NDst, NEdge int
	NFeat, NHid       int
}

// Coeffs are the cost-model coefficient parameters of Table I.
type Coeffs struct {
	// FWP aggregation-first kernel-execution factors.
	AlphaFWP, BetaFWP float64
	// BWP aggregation-first factors.
	AlphaBWP, BetaBWP float64
	// FWP combination-first factors.
	GammaFWP, DeltaFWP float64
	// BWP combination-first factors.
	GammaBWP, DeltaBWP float64
}

// PaperCoeffs returns the fitted coefficients the paper reports in Table I
// (in microsecond-scale units on their RTX 3090 testbed). They serve as
// the pre-fit defaults here.
func PaperCoeffs() Coeffs {
	return Coeffs{
		AlphaFWP: 6e-5, BetaFWP: 1e-5,
		AlphaBWP: 1e-7, BetaBWP: 4e-6,
		GammaFWP: 1e-3, DeltaFWP: 1e-12,
		GammaBWP: 1e-6, DeltaBWP: 1e-8,
	}
}

// AggrFirstBenefit estimates the latency saved by running the aggregation
// first (Table I): the aggregation shrinks the combination's input height
// from nSrc to nDst, so the saved combination work is
// (nSrc − nDst)·(α·nHid·nFeat + β·nHid) in FWP. For the first GNN layer's
// BWP — the last executed — the reduction factor is nSrc: aggregation-first
// skips the aggregation BWP entirely because no gradient flows past the
// input embeddings (only MLP parameters need gradients).
func (c Coeffs) AggrFirstBenefit(d Dims, firstLayer bool) (fwp, bwp float64) {
	red := float64(d.NSrc - d.NDst)
	fwp = red * (c.AlphaFWP*float64(d.NHid)*float64(d.NFeat) + c.BetaFWP*float64(d.NHid))
	bwpRed := red
	if firstLayer {
		bwpRed = float64(d.NSrc)
	}
	bwp = bwpRed * (c.AlphaBWP*float64(d.NHid)*float64(d.NFeat) + c.BetaBWP*float64(d.NFeat))
	return fwp, bwp
}

// CombFirstBenefit estimates the latency saved by running the combination
// first: it shrinks the aggregation's feature width from nFeat to nHid, so
// the saved aggregation work is (nFeat − nHid)·(γ·nEdge + δ·nDst) in FWP
// and (nFeat − nHid)·(γ·nEdge + δ·nSrc) in BWP (Table I).
//
// weightCols is the width of the layer's edge-weight vectors (0 for
// unweighted modes, 1 for scalar weights, nFeat for NGCF-style vector
// weights). Edge-weighted layers keep a weight branch that must still
// aggregate in the original width plus one extra MatMul over the dsts, so
// the benefit shrinks accordingly — this is why "edge weighting is hard to
// get benefit from kernel scheduling" (§VI-A).
func (c Coeffs) CombFirstBenefit(d Dims, weightCols int) (fwp, bwp float64) {
	red := float64(d.NFeat - d.NHid)
	fwp = red * (c.GammaFWP*float64(d.NEdge) + c.DeltaFWP*float64(d.NDst))
	bwp = red * (c.GammaBWP*float64(d.NEdge) + c.DeltaBWP*float64(d.NSrc))
	if weightCols > 0 {
		// Weight-branch aggregation (width weightCols) stays untransformed.
		fwp -= float64(weightCols) * (c.GammaFWP*float64(d.NEdge) + c.DeltaFWP*float64(d.NDst))
		bwp -= float64(weightCols) * (c.GammaBWP*float64(d.NEdge) + c.DeltaBWP*float64(d.NSrc))
		if weightCols > 1 {
			// Vector weights add one MatMul over the aggregated weights.
			fwp -= float64(d.NDst) * (c.AlphaFWP*float64(d.NHid)*float64(d.NFeat) + c.BetaFWP*float64(d.NHid))
			bwp -= float64(d.NDst) * (c.AlphaBWP*float64(d.NHid)*float64(d.NFeat) + c.BetaBWP*float64(d.NFeat))
		}
	}
	return fwp, bwp
}

// Decide returns the placement with the larger estimated benefit for a
// layer of the given dimensions and edge-weight width.
func (c Coeffs) Decide(d Dims, firstLayer bool, weightCols int) Placement {
	af, ab := c.AggrFirstBenefit(d, firstLayer)
	cf, cb := c.CombFirstBenefit(d, weightCols)
	if cf+cb > af+ab {
		return CombFirst
	}
	return AggrFirst
}

// ReductionRate returns the input-tensor size reduction each placement
// achieves for the layer (Fig 11b): elements entering the second kernel
// under aggregation-first versus combination-first.
func ReductionRate(d Dims) (aggrFirst, combFirst float64) {
	in := float64(d.NSrc) * float64(d.NFeat)
	if in == 0 {
		return 0, 0
	}
	aggrFirst = in / (float64(d.NDst) * float64(d.NFeat)) // height shrinks
	combFirst = in / (float64(d.NSrc) * float64(d.NHid))  // width shrinks
	return aggrFirst, combFirst
}

// Orchestrator is the runtime component: it observes kernel execution
// times during the first epoch, fits the cost model coefficients with
// least-squares estimation, and answers placement queries. Before enough
// samples accumulate it answers from the Table I defaults. Safe for
// concurrent use.
type Orchestrator struct {
	mu     sync.Mutex
	coeffs Coeffs
	fitted bool
	fitErr float64

	// Observation design matrices: one row per measured kernel launch.
	combFWP, combBWP samples // combination (Linear) kernels
	aggrFWP, aggrBWP samples // aggregation (Pull/SpMM) kernels

	// MinSamples gates fitting; the paper fits at the end of the first
	// epoch's batches.
	MinSamples int
}

type samples struct {
	a [][]float64
	b []float64
}

// NewOrchestrator returns an orchestrator primed with the paper's Table I
// coefficients.
func NewOrchestrator() *Orchestrator {
	return &Orchestrator{coeffs: PaperCoeffs(), MinSamples: 4}
}

// Coeffs returns the current (default or fitted) coefficients.
func (o *Orchestrator) Coeffs() Coeffs {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.coeffs
}

// Fitted reports whether least-squares fitting has replaced the defaults.
func (o *Orchestrator) Fitted() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fitted
}

// FitError returns the mean relative error of the last fit (the paper
// reports 12.5% for its testbed).
func (o *Orchestrator) FitError() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.fitErr
}

// ObserveCombination records a measured combination (MatMul) kernel time
// for rows×nFeat×nHid work in the given direction.
func (o *Orchestrator) ObserveCombination(rows, nFeat, nHid int, bwp bool, d time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := &o.combFWP
	if bwp {
		s = &o.combBWP
	}
	s.a = append(s.a, []float64{
		float64(rows) * float64(nHid) * float64(nFeat),
		float64(rows) * float64(nHid),
	})
	s.b = append(s.b, float64(d.Microseconds()))
}

// ObserveAggregation records a measured aggregation kernel time for a
// layer of nEdge edges, nDst dsts (nSrc for BWP) and feature width dim.
func (o *Orchestrator) ObserveAggregation(nEdge, nVertexSide, dim int, bwp bool, d time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := &o.aggrFWP
	if bwp {
		s = &o.aggrBWP
	}
	s.a = append(s.a, []float64{
		float64(nEdge) * float64(dim),
		float64(nVertexSide) * float64(dim),
	})
	s.b = append(s.b, float64(d.Microseconds()))
}

// Fit runs least-squares estimation over the collected samples and
// installs the fitted coefficients. It returns the mean relative error.
func (o *Orchestrator) Fit() (float64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.combFWP.b) < o.MinSamples || len(o.aggrFWP.b) < o.MinSamples {
		return 0, fmt.Errorf("dkp: not enough samples (comb %d, aggr %d, need %d)",
			len(o.combFWP.b), len(o.aggrFWP.b), o.MinSamples)
	}
	c := o.coeffs
	var errs []float64
	fit2 := func(s samples, p1, p2 *float64) error {
		if len(s.b) < 2 {
			return nil
		}
		x, err := lsq.Solve(s.a, s.b)
		if err == lsq.ErrSingular {
			// Sampled graphs with uniform fanout make the two design
			// columns exactly collinear (nEdge = k·nDst); fall back to the
			// dominant single-coefficient model.
			var num, den float64
			for r := range s.a {
				num += s.a[r][0] * s.b[r]
				den += s.a[r][0] * s.a[r][0]
			}
			if den == 0 {
				return lsq.ErrSingular
			}
			x = []float64{num / den, 0}
			err = nil
		}
		if err != nil {
			return err
		}
		*p1, *p2 = x[0], x[1]
		errs = append(errs, lsq.MeanAbsErr(s.a, s.b, x))
		return nil
	}
	if err := fit2(o.combFWP, &c.AlphaFWP, &c.BetaFWP); err != nil {
		return 0, err
	}
	if err := fit2(o.combBWP, &c.AlphaBWP, &c.BetaBWP); err != nil {
		return 0, err
	}
	if err := fit2(o.aggrFWP, &c.GammaFWP, &c.DeltaFWP); err != nil {
		return 0, err
	}
	if err := fit2(o.aggrBWP, &c.GammaBWP, &c.DeltaBWP); err != nil {
		return 0, err
	}
	var sum float64
	for _, e := range errs {
		sum += e
	}
	if len(errs) > 0 {
		o.fitErr = sum / float64(len(errs))
	}
	// Sanity-gate the fit: a least-squares solve over few shapes can push
	// a secondary coefficient slightly negative — clamp those to zero. A
	// grossly poor fit (>100% mean error) keeps the defaults instead.
	for _, p := range []*float64{&c.AlphaFWP, &c.BetaFWP, &c.AlphaBWP, &c.BetaBWP, &c.GammaFWP, &c.DeltaFWP, &c.GammaBWP, &c.DeltaBWP} {
		if *p < 0 {
			*p = 0
		}
	}
	if o.fitErr > 1.0 {
		return o.fitErr, nil
	}
	o.coeffs = c
	o.fitted = true
	return o.fitErr, nil
}

// Decide returns the placement for a layer, combining the cost model with
// the exactness gate: layers whose modes admit no exact rewrite always run
// aggregation-first regardless of the estimate. weightCols is the layer's
// edge-weight width (see CombFirstBenefit).
func (o *Orchestrator) Decide(d Dims, firstLayer, rearrangeable bool, weightCols int) Placement {
	if !rearrangeable {
		return AggrFirst
	}
	return o.Coeffs().Decide(d, firstLayer, weightCols)
}
