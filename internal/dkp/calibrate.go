package dkp

import (
	"fmt"
	"sync"
	"time"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/kernels"
	"graphtensor/internal/lsq"
	"graphtensor/internal/pipeline"
	"graphtensor/internal/tensor"
)

// Profile is the fitted cost model for one device class. It is immutable
// after calibration: every engine that loads the same profile evaluates the
// same pure function of layer shape, so replicas agree on placements by
// construction.
type Profile struct {
	Class  string
	Coeffs Coeffs
	// Fitted reports whether Coeffs came from calibration; false means the
	// paper's Table I defaults are standing in.
	Fitted bool
	// FitErr is the mean relative error of the least-squares fit (the
	// paper reports 12.5% on its testbed).
	FitErr float64
}

// PaperProfile returns the unfitted fallback profile carrying the Table I
// coefficients the paper reports for its RTX 3090 testbed.
func PaperProfile() *Profile {
	return &Profile{Class: "paper-rtx3090", Coeffs: PaperCoeffs()}
}

// DeviceClass derives the profile key from the device-class parameters the
// modeled kernel times depend on: SM count and cache geometry (the
// KernelTimeModel rates are fixed per build).
func DeviceClass(cfg gpusim.Config) string {
	return fmt.Sprintf("sm%d-cache%d-line%d", cfg.NumSMs, cfg.CacheBytesPerSM, cfg.CacheLineBytes)
}

var (
	profMu    sync.Mutex
	profCache = map[string]*Profile{}
)

// ProfileFor returns the calibrated profile for cfg's device class,
// running Calibrate on first use and memoizing per class. A failed or
// rejected calibration falls back to PaperCoeffs — never a zero profile.
func ProfileFor(cfg gpusim.Config) *Profile {
	class := DeviceClass(cfg)
	profMu.Lock()
	defer profMu.Unlock()
	if p, ok := profCache[class]; ok {
		return p
	}
	p, err := Calibrate(cfg)
	if err != nil {
		p = &Profile{Class: class, Coeffs: PaperCoeffs()}
	}
	profCache[class] = p
	return p
}

// ShapeCost is the measured modeled FWP+BWP kernel time of one layer shape
// under each forced placement.
type ShapeCost struct {
	Dims
	AggrFirst time.Duration
	CombFirst time.Duration
}

// DefaultSweep returns the calibration shape sweep. Fanout (NEdge/NDst),
// the src/dst ratio and the feature/hidden widths all vary across shapes
// so the two columns of each least-squares design matrix decorrelate, and
// the sweep spans both AggrFirst-favoring shapes (tall: many srcs fold
// into few dsts) and CombFirst-favoring ones (wide: features shrink hard,
// almost no row reduction).
func DefaultSweep() []Dims {
	return []Dims{
		{NSrc: 640, NDst: 256, NEdge: 1024, NFeat: 32, NHid: 32},
		{NSrc: 1500, NDst: 300, NEdge: 2400, NFeat: 64, NHid: 16},
		{NSrc: 2048, NDst: 256, NEdge: 4096, NFeat: 16, NHid: 64},
		{NSrc: 900, NDst: 750, NEdge: 6000, NFeat: 128, NHid: 16},
		{NSrc: 1200, NDst: 1000, NEdge: 4000, NFeat: 256, NHid: 32},
		{NSrc: 520, NDst: 480, NEdge: 5760, NFeat: 512, NHid: 64},
		{NSrc: 3000, NDst: 375, NEdge: 3000, NFeat: 48, NHid: 96},
		{NSrc: 800, NDst: 640, NEdge: 7680, NFeat: 384, NHid: 24},
	}
}

// calibRecorder accumulates per-kernel least-squares samples during a sweep.
type calibRecorder struct {
	combFWP, combBWP samples // combination (Linear) kernels
	aggrFWP, aggrBWP samples // aggregation (Pull/SpMM) kernels
}

type samples struct {
	a [][]float64
	b []float64
}

func (s *samples) add(a0, a1, b float64) {
	s.a = append(s.a, []float64{a0, a1})
	s.b = append(s.b, b)
}

// Calibrate fits the Table I coefficients for cfg's device class: it sweeps
// DefaultSweep through the kernel strategies on a fresh simulated device,
// records each kernel's *modeled* execution time (a pure function of shape
// and device class — deliberately not wall time, which would differ across
// replicas and runs), and least-squares fits the cost model. The returned
// profile falls back to PaperCoeffs when the fit is rejected.
func Calibrate(cfg gpusim.Config) (*Profile, error) {
	rec := &calibRecorder{}
	if _, err := sweep(cfg, DefaultSweep(), rec); err != nil {
		return nil, err
	}
	p := &Profile{Class: DeviceClass(cfg), Coeffs: PaperCoeffs()}
	c, fitErr, err := rec.fit(p.Coeffs)
	if err != nil {
		return nil, err
	}
	p.FitErr = fitErr
	// Sanity gate: a grossly poor fit (>100% mean error) keeps the paper
	// defaults instead of installing garbage coefficients.
	if fitErr <= 1.0 {
		p.Coeffs = c
		p.Fitted = true
	}
	return p, nil
}

// MeasurePlacements builds a synthetic bipartite layer for each shape and
// returns its modeled FWP+BWP kernel time under forced aggregation-first
// and combination-first execution. It is the measurement half of Calibrate,
// exported for `gtbench -exp dkpfit` and the placement tests.
func MeasurePlacements(cfg gpusim.Config, shapes []Dims) ([]ShapeCost, error) {
	return sweep(cfg, shapes, nil)
}

func sweep(cfg gpusim.Config, shapes []Dims, rec *calibRecorder) ([]ShapeCost, error) {
	dev := gpusim.NewDevice(cfg)
	ctx := kernels.NewCtx(dev)
	ktm := gpusim.DefaultKernelTimeModel()
	costs := make([]ShapeCost, 0, len(shapes))
	for i, d := range shapes {
		sc, err := runShape(dev, ctx, ktm, d, uint64(i+1), rec)
		if err != nil {
			return nil, err
		}
		costs = append(costs, sc)
		ctx.EndBatch()
	}
	return costs, nil
}

// calibGraph builds a deterministic synthetic bipartite layer: d.NEdge
// edges spread round-robin over the dsts, src indices striding through
// [0, NSrc) so both CSR and CSC sides have realistic fan-in/fan-out.
func calibGraph(d Dims) *kernels.Graphs {
	ptr := make([]int32, d.NDst+1)
	srcs := make([]graph.VID, 0, d.NEdge)
	base, extra := d.NEdge/d.NDst, d.NEdge%d.NDst
	e := 0
	for v := 0; v < d.NDst; v++ {
		deg := base
		if v < extra {
			deg++
		}
		for j := 0; j < deg; j++ {
			srcs = append(srcs, graph.VID((e*2654435761+j)%d.NSrc))
			e++
		}
		ptr[v+1] = int32(len(srcs))
	}
	csr := &graph.BCSR{NumDst: d.NDst, NumSrc: d.NSrc, Ptr: ptr, Srcs: srcs}
	csc := &graph.BCSC{}
	graph.BCSRToBCSCInto(csr, csc)
	return &kernels.Graphs{CSR: csr, CSC: csc}
}

// runShape executes both placements of one GCN-mode layer (mid-layer
// semantics: the BWP aggregation runs in both orders) and records the
// per-kernel modeled times into rec when calibrating.
func runShape(dev *gpusim.Device, ctx *kernels.Ctx, ktm gpusim.KernelTimeModel, d Dims, seed uint64, rec *calibRecorder) (ShapeCost, error) {
	sc := ShapeCost{Dims: d}
	g := calibGraph(d)
	modes := kernels.GCNModes()
	rng := tensor.NewRNG(seed)

	x, err := kernels.WrapDeviceMatrix(dev, tensor.Random(d.NSrc, d.NFeat, 1, rng), "calib-x")
	if err != nil {
		return sc, err
	}
	defer x.Free()
	w := tensor.Random(d.NFeat, d.NHid, 1, rng)
	dw := tensor.New(d.NFeat, d.NHid)
	dOut, err := kernels.WrapDeviceMatrix(dev, tensor.Random(d.NDst, d.NHid, 1, rng), "calib-dout")
	if err != nil {
		return sc, err
	}
	defer dOut.Free()

	// modeled runs fn and returns its modeled device time in microseconds.
	modeled := func(fn func() error) (float64, error) {
		before := dev.Snapshot()
		if err := fn(); err != nil {
			return 0, err
		}
		t := dev.Estimate(ktm, dev.Snapshot().Sub(before))
		return float64(t.Nanoseconds()) / 1e3, nil
	}
	strat := kernels.NAPA{}

	// Aggregation-first: aggregate in width NFeat, then combine over NDst
	// rows; BWP mirrors (combination backward, then aggregation backward).
	var agg, out, dAgg, dx *kernels.DeviceMatrix
	aggT, err := modeled(func() error { agg, err = strat.Forward(ctx, g, x, modes); return err })
	if err != nil {
		return sc, err
	}
	combT, err := modeled(func() error { out, err = kernels.Linear(ctx, agg, w, "calib-af-out"); return err })
	if err != nil {
		return sc, err
	}
	out.Free()
	combBT, err := modeled(func() error {
		dAgg, err = kernels.LinearBackward(ctx, agg, dOut, w, dw, "calib-af-dagg")
		return err
	})
	if err != nil {
		return sc, err
	}
	aggBT, err := modeled(func() error { dx, err = strat.Backward(ctx, g, x, dAgg, modes); return err })
	if err != nil {
		return sc, err
	}
	agg.Free()
	dAgg.Free()
	dx.Free()
	sc.AggrFirst = time.Duration((aggT + combT + combBT + aggBT) * 1e3)
	if rec != nil {
		rec.aggrFWP.add(float64(d.NEdge)*float64(d.NFeat), float64(d.NDst)*float64(d.NFeat), aggT)
		rec.combFWP.add(float64(d.NDst)*float64(d.NHid)*float64(d.NFeat), float64(d.NDst)*float64(d.NHid), combT)
		rec.combBWP.add(float64(d.NDst)*float64(d.NHid)*float64(d.NFeat), float64(d.NDst)*float64(d.NHid), combBT)
		rec.aggrBWP.add(float64(d.NEdge)*float64(d.NFeat), float64(d.NSrc)*float64(d.NFeat), aggBT)
	}

	// Combination-first: transform all NSrc rows down to width NHid, then
	// aggregate in the hidden width; BWP mirrors.
	var t0, cAgg, dT, dx2 *kernels.DeviceMatrix
	combT2, err := modeled(func() error { t0, err = kernels.Linear(ctx, x, w, "calib-cf-t"); return err })
	if err != nil {
		return sc, err
	}
	aggT2, err := modeled(func() error { cAgg, err = strat.Forward(ctx, g, t0, modes); return err })
	if err != nil {
		return sc, err
	}
	cAgg.Free()
	aggBT2, err := modeled(func() error { dT, err = strat.Backward(ctx, g, t0, dOut, modes); return err })
	if err != nil {
		return sc, err
	}
	combBT2, err := modeled(func() error {
		dx2, err = kernels.LinearBackward(ctx, x, dT, w, dw, "calib-cf-dx")
		return err
	})
	if err != nil {
		return sc, err
	}
	t0.Free()
	dT.Free()
	dx2.Free()
	sc.CombFirst = time.Duration((combT2 + aggT2 + aggBT2 + combBT2) * 1e3)
	if rec != nil {
		rec.combFWP.add(float64(d.NSrc)*float64(d.NHid)*float64(d.NFeat), float64(d.NSrc)*float64(d.NHid), combT2)
		rec.aggrFWP.add(float64(d.NEdge)*float64(d.NHid), float64(d.NDst)*float64(d.NHid), aggT2)
		rec.aggrBWP.add(float64(d.NEdge)*float64(d.NHid), float64(d.NSrc)*float64(d.NHid), aggBT2)
		rec.combBWP.add(float64(d.NSrc)*float64(d.NHid)*float64(d.NFeat), float64(d.NSrc)*float64(d.NHid), combBT2)
	}
	return sc, nil
}

// fit least-squares solves the four sample sets against the Table I bases,
// starting from the given defaults. It returns the fitted coefficients and
// the mean relative error across the solved systems.
func (r *calibRecorder) fit(def Coeffs) (Coeffs, float64, error) {
	c := def
	var errs []float64
	fit2 := func(s samples, p1, p2 *float64) error {
		if len(s.b) < 2 {
			return nil
		}
		x, err := lsq.Solve(s.a, s.b)
		if err == lsq.ErrSingular {
			// Uniform-fanout sweeps make the two design columns exactly
			// collinear (nEdge = k·nDst); fall back to the dominant
			// single-coefficient model.
			var num, den float64
			for row := range s.a {
				num += s.a[row][0] * s.b[row]
				den += s.a[row][0] * s.a[row][0]
			}
			if den == 0 {
				return lsq.ErrSingular
			}
			x = []float64{num / den, 0}
			err = nil
		}
		if err != nil {
			return err
		}
		*p1, *p2 = x[0], x[1]
		errs = append(errs, lsq.MeanAbsErr(s.a, s.b, x))
		return nil
	}
	if err := fit2(r.combFWP, &c.AlphaFWP, &c.BetaFWP); err != nil {
		return def, 0, err
	}
	if err := fit2(r.combBWP, &c.AlphaBWP, &c.BetaBWP); err != nil {
		return def, 0, err
	}
	if err := fit2(r.aggrFWP, &c.GammaFWP, &c.DeltaFWP); err != nil {
		return def, 0, err
	}
	if err := fit2(r.aggrBWP, &c.GammaBWP, &c.DeltaBWP); err != nil {
		return def, 0, err
	}
	// A solve over few shapes can push a secondary coefficient slightly
	// negative — clamp those to zero.
	for _, p := range []*float64{&c.AlphaFWP, &c.BetaFWP, &c.AlphaBWP, &c.BetaBWP, &c.GammaFWP, &c.DeltaFWP, &c.GammaBWP, &c.DeltaBWP} {
		if *p < 0 {
			*p = 0
		}
	}
	var sum float64
	for _, e := range errs {
		sum += e
	}
	fitErr := 0.0
	if len(errs) > 0 {
		fitErr = sum / float64(len(errs))
	}
	return c, fitErr, nil
}

// Recommendation bundles the engine knobs Recommend derives from the
// fitted cost model: the serving admission cut and coalescing window, and
// the data-parallel gradient-shard count.
type Recommendation struct {
	MaxBatch   int
	MaxDelay   time.Duration
	GradShards int
}

// Reference workload for Recommend: the paper's ogbn-products serving
// configuration (2-layer GCN, fanout 4, 100-dim features, 64 hidden).
const (
	recFanout = 4
	recFeat   = 100
	recHid    = 64
	recLayers = 2
	// recTrainBatch is the reference training batch the shard-count
	// derivation amortizes over.
	recTrainBatch = 1024
)

// Recommend derives MaxBatch, MaxDelay and GradShards from the profile.
// All three were previously hand-tuned constants; deriving them from the
// same fitted cost model that places kernels turns three magic numbers
// into one measured policy. Each value is clamped to a sane range, and
// explicit Config values always override the recommendation.
func (p *Profile) Recommend() Recommendation {
	c := p.Coeffs
	// Marginal modeled FWP+BWP compute of one additional dst per batch, µs:
	// its aggregation work (fanout edges plus the dst row itself, in the
	// feature width) plus its combination work, summed over the layers.
	perDst := float64(recLayers) * (float64(recFanout*recFeat)*(c.GammaFWP+c.GammaBWP) +
		float64(recFeat)*(c.DeltaFWP+c.DeltaBWP) +
		float64(recHid*recFeat)*(c.AlphaFWP+c.AlphaBWP) +
		float64(recHid)*(c.BetaFWP+c.BetaBWP))
	// Fixed per-batch cost: one aggregation, one MatMul and one bias kernel
	// launch per layer, regardless of batch size.
	launchUs := gpusim.DefaultKernelTimeModel().LaunchOverheadNs / 1e3
	fixed := float64(recLayers*3) * launchUs

	// MaxBatch: the smallest power of two amortizing the fixed launch cost
	// below 2% of the batch's compute — batching past that point buys
	// latency without throughput.
	maxBatch := 64
	for maxBatch < 512 && fixed > 0.02*float64(maxBatch)*perDst {
		maxBatch *= 2
	}

	// MaxDelay: the coalescing window should cover the modeled service
	// time of a full batch — compute plus preprocessing (the pipeline cost
	// model's serial estimate) — so a queued query can still join the
	// in-flight batch it would have widened.
	edges := maxBatch * (recFanout + recFanout*recFanout) // 2-hop sampled edges
	verts := maxBatch * (1 + recFanout + recFanout*recFanout)
	prep := pipeline.DefaultPrepCostModel().Serial(
		pipeline.DefaultPrepCostModel().EstimateTasks(edges, verts, recFeat, false))
	delay := 2 * (time.Duration((fixed+float64(maxBatch)*perDst)*1e3) + prep)
	if delay < 500*time.Microsecond {
		delay = 500 * time.Microsecond
	}
	if delay > 2*time.Millisecond {
		delay = 2 * time.Millisecond
	}

	// GradShards: the widest power of two keeping each shard's marginal
	// compute above one kernel launch, so work stealing has batches worth
	// stealing; clamped to [2, DefaultShards].
	shards := 8
	for shards > 2 && float64(recTrainBatch)*perDst/float64(shards) < launchUs {
		shards /= 2
	}
	return Recommendation{MaxBatch: maxBatch, MaxDelay: delay, GradShards: shards}
}
