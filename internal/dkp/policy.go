package dkp

import "sync/atomic"

// Policy answers placement queries for one profile. Decide is a pure
// function of the profile and the layer shape, memoized in a lock-free
// shape-keyed table (epoch-snapshot style, like internal/cache's read
// path): the hot path pays one hash, zero locks and zero allocations.
// Because the function is pure, the memo is only an accelerator — a lost
// insert race or an evicted entry recomputes the identical answer — so
// replicas sharing a profile agree on every placement whether or not they
// share a Policy instance. Safe for concurrent use.
type Policy struct {
	prof  *Profile
	table [policySlots]atomic.Pointer[policyEntry]
}

const (
	policySlots = 1024 // power of two
	policyProbe = 8    // linear-probe window before computing unmemoized
)

type policyEntry struct {
	d          Dims
	firstLayer bool
	weightCols int
	p          Placement
}

// NewPolicy builds a policy over the profile. A nil profile falls back to
// PaperProfile.
func NewPolicy(prof *Profile) *Policy {
	if prof == nil {
		prof = PaperProfile()
	}
	return &Policy{prof: prof}
}

// Profile returns the profile the policy decides from.
func (p *Policy) Profile() *Profile { return p.prof }

// Decide returns the placement for a layer of the given shape. The
// rearrangeability gate (modes that admit no exact rewrite) stays with the
// caller — core.Model — because it depends on layer modes, not shape.
func (p *Policy) Decide(d Dims, firstLayer bool, weightCols int) Placement {
	h := hashKey(d, firstLayer, weightCols)
	for i := 0; i < policyProbe; i++ {
		slot := &p.table[(h+uint64(i))&(policySlots-1)]
		e := slot.Load()
		if e == nil {
			ne := &policyEntry{d: d, firstLayer: firstLayer, weightCols: weightCols}
			ne.p = p.prof.Coeffs.Decide(d, firstLayer, weightCols)
			// A lost race just means another goroutine published this or a
			// colliding key; fall through to the full-key check either way.
			if slot.CompareAndSwap(nil, ne) {
				return ne.p
			}
			e = slot.Load()
		}
		if e.d == d && e.firstLayer == firstLayer && e.weightCols == weightCols {
			return e.p
		}
	}
	// Probe window exhausted by colliding shapes: compute unmemoized.
	return p.prof.Coeffs.Decide(d, firstLayer, weightCols)
}

// hashKey is FNV-1a over the decision key's fields.
func hashKey(d Dims, firstLayer bool, weightCols int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(uint64(d.NSrc))
	mix(uint64(d.NDst))
	mix(uint64(d.NEdge))
	mix(uint64(d.NFeat))
	mix(uint64(d.NHid))
	if firstLayer {
		mix(1)
	} else {
		mix(2)
	}
	mix(uint64(weightCols))
	return h
}
