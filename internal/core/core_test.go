package core

import (
	"math"
	"testing"

	"graphtensor/internal/dkp"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/kernels"
	"graphtensor/internal/tensor"
)

func testDevice() *gpusim.Device {
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 8
	return gpusim.NewDevice(cfg)
}

// buildInput makes a 2-layer sampled-batch-shaped input: layer 0 aggregates
// nSrc→nMid, layer 1 aggregates nMid→nBatch.
func buildInput(t *testing.T, dev *gpusim.Device, nBatch, nMid, nSrc, dim int, seed uint64) *Input {
	t.Helper()
	rng := tensor.NewRNG(seed)
	mk := func(nDst, nSrc, fanout int) *kernels.Graphs {
		coo := &graph.BCOO{NumDst: nDst, NumSrc: nSrc}
		for d := 0; d < nDst; d++ {
			// Self edge plus random neighbors, like the sampler emits.
			coo.Src = append(coo.Src, graph.VID(d))
			coo.Dst = append(coo.Dst, graph.VID(d))
			for i := 0; i < fanout; i++ {
				coo.Src = append(coo.Src, graph.VID(rng.Intn(nSrc)))
				coo.Dst = append(coo.Dst, graph.VID(d))
			}
		}
		csr, _ := graph.BCOOToBCSR(coo)
		return &kernels.Graphs{CSR: csr, CSC: graph.BCSRToBCSC(csr)}
	}
	x := tensor.Random(nSrc, dim, 1, rng)
	xd, err := kernels.WrapDeviceMatrix(dev, x, "x")
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int32, nBatch)
	for i := range labels {
		labels[i] = int32(rng.Intn(3))
	}
	return &Input{
		Graphs: []*kernels.Graphs{mk(nMid, nSrc, 3), mk(nBatch, nMid, 3)},
		X:      xd,
		Labels: labels,
	}
}

func modelSpecs(m kernels.Modes, dim, hidden, classes int) []LayerSpec {
	return []LayerSpec{
		{Modes: m, InDim: dim, OutDim: hidden, Activation: true},
		{Modes: m, InDim: hidden, OutDim: classes, Activation: false},
	}
}

// TestPlacementEquivalence is the DKP exactness property: for every
// rearrangeable mode set, forcing combination-first must produce the same
// logits and the same parameter gradients as aggregation-first.
func TestPlacementEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		modes kernels.Modes
	}{
		{"gcn", kernels.GCNModes()},
		{"ngcf", kernels.NGCFModes()},
		{"attention", kernels.AttentionModes()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(p dkp.Placement) (*tensor.Matrix, *tensor.Matrix, []float32) {
				dev := testDevice()
				ctx := kernels.NewCtx(dev)
				in := buildInput(t, dev, 6, 14, 25, 10, 42)
				model, err := NewModel(Config{
					Strategy:       kernels.NAPA{},
					Specs:          modelSpecs(tc.modes, 10, 8, 3),
					Seed:           7,
					ForcePlacement: &p,
				})
				if err != nil {
					t.Fatal(err)
				}
				fr, err := model.Forward(ctx, in)
				if err != nil {
					t.Fatal(err)
				}
				_, dLogits := SoftmaxCrossEntropy(fr.Logits.M, in.Labels)
				if err := model.Backward(ctx, in, fr, dLogits); err != nil {
					t.Fatal(err)
				}
				return fr.Logits.M.Clone(), model.Layers[0].DW.Clone(), append([]float32(nil), model.Layers[0].DB...)
			}
			af, afDW, afDB := run(dkp.AggrFirst)
			cf, cfDW, cfDB := run(dkp.CombFirst)
			if diff := af.MaxAbsDiff(cf); diff > 5e-4 {
				t.Errorf("logits differ between placements: %g", diff)
			}
			if diff := afDW.MaxAbsDiff(cfDW); diff > 5e-4 {
				t.Errorf("layer-0 dW differs between placements: %g", diff)
			}
			for i := range afDB {
				if d := float64(afDB[i] - cfDB[i]); math.Abs(d) > 5e-4 {
					t.Errorf("layer-0 dB[%d] differs: %g", i, d)
				}
			}
		})
	}
}

// TestStrategiesAgreeOnModel: all four strategies produce the same logits
// for the same model parameters and batch.
func TestStrategiesAgreeOnModel(t *testing.T) {
	strategies := []kernels.Strategy{kernels.NAPA{}, kernels.GraphApproach{}, kernels.DLApproach{}, kernels.Advisor{}}
	var ref *tensor.Matrix
	for _, s := range strategies {
		dev := testDevice()
		ctx := kernels.NewCtx(dev)
		in := buildInput(t, dev, 5, 12, 20, 8, 99)
		model, err := NewModel(Config{Strategy: s, Specs: modelSpecs(kernels.NGCFModes(), 8, 6, 3), Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		fr, err := model.Forward(ctx, in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if ref == nil {
			ref = fr.Logits.M.Clone()
			continue
		}
		if diff := fr.Logits.M.MaxAbsDiff(ref); diff > 5e-4 {
			t.Errorf("%s logits diverge from NAPA by %g", s.Name(), diff)
		}
	}
}

// TestTrainingReducesLoss: repeated steps on a fixed batch must descend.
func TestTrainingReducesLoss(t *testing.T) {
	dev := testDevice()
	ctx := kernels.NewCtx(dev)
	in := buildInput(t, dev, 8, 16, 30, 12, 5)
	model, err := NewModel(Config{Strategy: kernels.NAPA{}, Specs: modelSpecs(kernels.GCNModes(), 12, 10, 3), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	first, err := model.TrainStep(ctx, in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 30; i++ {
		last, err = model.TrainStep(ctx, in, 0.5)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !(last < first) {
		t.Errorf("loss did not decrease: first %g last %g", first, last)
	}
}

// TestDKPDecisionRespondsToDims: with a huge feature dim and tiny hidden
// dim the orchestrator should pick combination-first; with the reverse it
// should stay aggregation-first.
func TestDKPDecisionRespondsToDims(t *testing.T) {
	c := dkp.PaperCoeffs()
	// Wide features with little row reduction (nSrc ≈ nDst): transforming
	// first shrinks the aggregation's feature width 64×, while aggregating
	// first saves almost nothing.
	wide := dkp.Dims{NSrc: 550, NDst: 500, NEdge: 4000, NFeat: 4096, NHid: 64}
	if got := c.Decide(wide, false, 0); got != dkp.CombFirst {
		t.Errorf("wide features: got %v want combination-first", got)
	}
	narrow := dkp.Dims{NSrc: 2000, NDst: 50, NEdge: 4000, NFeat: 8, NHid: 64}
	if got := c.Decide(narrow, false, 0); got != dkp.AggrFirst {
		t.Errorf("narrow features: got %v want aggregation-first", got)
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	// Finite-difference check of the loss gradient.
	rng := tensor.NewRNG(17)
	logits := tensor.Random(4, 3, 1, rng)
	labels := []int32{0, 2, 1, 1}
	loss0, grad := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-3
	for i := 0; i < logits.Rows; i++ {
		for j := 0; j < logits.Cols; j++ {
			orig := logits.At(i, j)
			logits.Set(i, j, orig+eps)
			lossP, _ := SoftmaxCrossEntropy(logits, labels)
			logits.Set(i, j, orig)
			numeric := (lossP - loss0) / eps
			if math.Abs(numeric-float64(grad.At(i, j))) > 1e-2 {
				t.Errorf("grad[%d][%d]: numeric %g analytic %g", i, j, numeric, grad.At(i, j))
			}
			_ = loss0
		}
	}
}

func TestDFGRewriteInModel(t *testing.T) {
	model, err := NewModel(Config{
		Strategy:  kernels.NAPA{},
		Specs:     modelSpecs(kernels.GCNModes(), 8, 4, 2),
		EnableDKP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range model.Layers {
		if l.DFG.Find(0) == nil { // OpInput
			t.Fatalf("layer %d: missing input node", i)
		}
		found := false
		for _, n := range l.DFG.Topo() {
			if n.Kind.String() == "Cost-DKP" {
				found = true
			}
			if n.Kind.String() == "MatMul" || n.Kind.String() == "Pull" {
				t.Errorf("layer %d: %s survived the DKP rewrite", i, n.Kind)
			}
		}
		if !found {
			t.Errorf("layer %d: Cost-DKP node not installed", i)
		}
	}
}
