package core

import (
	"graphtensor/internal/kernels"
	"testing"
)

func TestSAGEPoolModelTrains(t *testing.T) {
	dev := testDevice()
	ctx := kernels.NewCtx(dev)
	in := buildInput(t, dev, 8, 16, 30, 12, 5)
	specs := modelSpecs(kernels.Modes{F: kernels.AggrMax, G: kernels.WeightNone, H: kernels.CombineIdentity}, 12, 10, 3)
	model, err := NewModel(Config{Strategy: kernels.NAPA{}, Specs: specs, Seed: 1, EnableDKP: true})
	if err != nil {
		t.Fatal(err)
	}
	first, err := model.TrainStep(ctx, in, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 40; i++ {
		last, err = model.TrainStep(ctx, in, 0.3)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Errorf("max-pool model did not descend: first %g last %g", first, last)
	}
	// DKP must never pick comb-first for max pooling.
	fr, _ := model.Forward(ctx, in)
	for _, p := range fr.Placements() {
		if p.String() != "aggregation-first" {
			t.Errorf("max-pool layer got placement %v, want aggregation-first", p)
		}
	}
}
