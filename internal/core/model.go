package core

import (
	"errors"
	"fmt"

	"graphtensor/internal/dfg"
	"graphtensor/internal/dkp"
	"graphtensor/internal/kernels"
	"graphtensor/internal/tensor"
)

// LayerSpec describes one GNN layer: its mode functions (f, g, h), the
// combination's dimensions and whether the non-linearity applies (the
// final logit layer omits it).
type LayerSpec struct {
	Modes      kernels.Modes
	InDim      int
	OutDim     int
	Activation bool
}

// Layer is one instantiated GNN layer with its MLP parameters, gradients
// and host-side dataflow graph.
type Layer struct {
	Spec LayerSpec
	W    *tensor.Matrix
	B    []float32
	DW   *tensor.Matrix
	DB   []float32
	// DFG is the layer's dataflow graph; when DKP is enabled the Pull and
	// MatMul nodes have been replaced by a Cost-DKP node (Fig 11c).
	DFG *dfg.Graph
}

// Config assembles a model.
type Config struct {
	// Strategy selects the kernel scheduling discipline (NAPA for
	// GraphTensor, or a baseline strategy).
	Strategy kernels.Strategy
	Specs    []LayerSpec
	Seed     uint64
	// EnableDKP installs the Cost-DKP rewrite and lets the policy choose
	// placements per layer shape (Dynamic-GT). Without it every layer
	// runs aggregation-first (Base-GT and the baselines' default).
	EnableDKP bool
	// Policy decides placements when EnableDKP is set. Nil falls back to a
	// policy over the paper's Table I coefficients.
	Policy *dkp.Policy
	// ForcePlacement overrides the placement decision for every layer
	// (used for the manual combination-first baseline variants whose
	// spread Fig 15 shows as error bars). Nil means no override.
	ForcePlacement *dkp.Placement
}

// Model is a multi-layer GNN bound to a kernel strategy.
type Model struct {
	Strategy kernels.Strategy
	Layers   []*Layer
	policy   *dkp.Policy
	force    *dkp.Placement
	// layerForce pins one placement per layer (serving snapshots fix their
	// placements at construction so a query's logits cannot depend on how
	// the query was batched). Nil means decide per batch shape.
	layerForce []dkp.Placement
	dkpOn      bool
}

// NewModel initializes layer parameters (Glorot uniform) and builds the
// per-layer DFGs, applying the Cost-DKP rewrite when DKP is enabled.
func NewModel(cfg Config) (*Model, error) {
	if cfg.Strategy == nil {
		cfg.Strategy = kernels.NAPA{}
	}
	if len(cfg.Specs) == 0 {
		return nil, errors.New("core: model needs at least one layer")
	}
	rng := tensor.NewRNG(cfg.Seed + 1)
	pol := cfg.Policy
	if pol == nil {
		pol = dkp.NewPolicy(nil)
	}
	m := &Model{Strategy: cfg.Strategy, policy: pol, force: cfg.ForcePlacement, dkpOn: cfg.EnableDKP}
	for i, spec := range cfg.Specs {
		if err := spec.Modes.Validate(); err != nil {
			return nil, fmt.Errorf("core: layer %d: %w", i, err)
		}
		if i > 0 && cfg.Specs[i-1].OutDim != spec.InDim {
			return nil, fmt.Errorf("core: layer %d input dim %d != previous output %d", i, spec.InDim, cfg.Specs[i-1].OutDim)
		}
		l := &Layer{
			Spec: spec,
			W:    tensor.GlorotUniform(spec.InDim, spec.OutDim, rng),
			B:    make([]float32, spec.OutDim),
			DW:   tensor.New(spec.InDim, spec.OutDim),
			DB:   make([]float32, spec.OutDim),
			DFG:  dfg.BuildLayer(spec.Modes.HasEdgeWeight()),
		}
		if cfg.EnableDKP {
			l.DFG.RewriteDKP()
		}
		m.Layers = append(m.Layers, l)
	}
	return m, nil
}

// Input is one prepared batch on device, ready for a training step.
type Input struct {
	// Graphs[i] is the subgraph layer i (0-based, first executed) runs on.
	Graphs []*kernels.Graphs
	// X is the batch embedding table (row = new VID).
	X *kernels.DeviceMatrix
	// Labels are the classes of the batch dst vertices (new VIDs 0..n-1).
	Labels []int32
}

// rearrangeable reports whether layer l admits an exact combination-first
// placement under the model's strategy: unweighted layers rearrange under
// any strategy; weighted layers only under NAPA, which implements the
// exact split rewrites of §V-A.
func (m *Model) rearrangeable(l *Layer) bool {
	// Max-pooling is non-linear; the W·X = (WX) commutation that justifies
	// combination-first does not hold, so it always runs aggregation-first.
	if l.Spec.Modes.F == kernels.AggrMax {
		return false
	}
	if !kernels.CombFirstSupported(l.Spec.Modes) {
		return false
	}
	if l.Spec.Modes.G == kernels.WeightNone {
		return true
	}
	_, isNAPA := m.Strategy.(kernels.NAPA)
	return isNAPA
}

// SetForcePlacement overrides (or, with nil, releases) the placement
// decision for subsequent batches, for the manual pinned-placement
// baselines and the placement-equivalence tests.
func (m *Model) SetForcePlacement(p *dkp.Placement) { m.force = p }

// SetLayerPlacements pins one placement per layer. Serving snapshots use
// this to fix placements at construction time — a pure function of the
// trainer's profile and layer specs — so the logits a query receives are
// independent of which replica serves it and how it was coalesced. The
// rearrangeability gate still applies per layer. Nil releases the pins.
func (m *Model) SetLayerPlacements(ps []dkp.Placement) {
	if ps != nil && len(ps) != len(m.Layers) {
		panic(fmt.Sprintf("core: %d layer placements for %d layers", len(ps), len(m.Layers)))
	}
	m.layerForce = ps
}

// LayerPlacements returns the per-layer pinned placements (nil when the
// model decides per batch shape), with the rearrangeability gate applied.
func (m *Model) LayerPlacements() []dkp.Placement {
	if m.layerForce == nil {
		return nil
	}
	out := make([]dkp.Placement, len(m.layerForce))
	for i, p := range m.layerForce {
		if p == dkp.CombFirst && !m.rearrangeable(m.Layers[i]) {
			p = dkp.AggrFirst
		}
		out[i] = p
	}
	return out
}

// Policy returns the placement policy the model decides from.
func (m *Model) Policy() *dkp.Policy { return m.policy }

// Placement returns the execution order layer index li will use for the
// given layer graph dimensions. The decision is a pure function of the
// policy's fitted profile and the layer shape — never of measured wall
// time — so every replica evaluating the same shard shape agrees.
func (m *Model) Placement(li int, g *kernels.Graphs) dkp.Placement {
	l := m.Layers[li]
	if m.force != nil {
		if *m.force == dkp.CombFirst && !m.rearrangeable(l) {
			return dkp.AggrFirst
		}
		return *m.force
	}
	if m.layerForce != nil {
		if p := m.layerForce[li]; p != dkp.CombFirst || m.rearrangeable(l) {
			return p
		}
		return dkp.AggrFirst
	}
	if !m.dkpOn || !m.rearrangeable(l) {
		return dkp.AggrFirst
	}
	nDst, nSrc, nEdge := g.Shape()
	d := dkp.Dims{NSrc: nSrc, NDst: nDst, NEdge: nEdge, NFeat: l.Spec.InDim, NHid: l.Spec.OutDim}
	return m.policy.Decide(d, li == 0, l.Spec.Modes.WeightCols(l.Spec.InDim))
}

// layerCache carries forward products a layer's backward pass needs.
type layerCache struct {
	placement dkp.Placement
	x         *kernels.DeviceMatrix // layer input
	agg       *kernels.DeviceMatrix // aggregation-first: aggregated embeddings
	out       *kernels.DeviceMatrix // post-linear (activated in place)
	pre       *tensor.Matrix        // pre-activation values
	cf        *kernels.CombFirstResult
	argmax    []int32 // max-pool aggregation: per-(dst,feature) arg-max src
}

// ForwardResult is a model forward pass: logits plus per-layer caches.
type ForwardResult struct {
	Logits *kernels.DeviceMatrix
	caches []layerCache
}

// Placement returns the placement layer li used (allocation-free; the
// group's per-shard placement counters read it on the hot path).
func (fr *ForwardResult) Placement(li int) dkp.Placement { return fr.caches[li].placement }

// Placements lists the placement each layer used.
func (fr *ForwardResult) Placements() []dkp.Placement {
	out := make([]dkp.Placement, len(fr.caches))
	for i, c := range fr.caches {
		out[i] = c.placement
	}
	return out
}

// Forward runs FWP through all layers.
func (m *Model) Forward(ctx *kernels.Ctx, in *Input) (*ForwardResult, error) {
	if len(in.Graphs) != len(m.Layers) {
		return nil, fmt.Errorf("core: %d layer graphs for %d layers", len(in.Graphs), len(m.Layers))
	}
	fr := &ForwardResult{caches: make([]layerCache, len(m.Layers))}
	x := in.X
	for li, l := range m.Layers {
		g := in.Graphs[li]
		cache := &fr.caches[li]
		cache.x = x
		cache.placement = m.Placement(li, g)
		switch cache.placement {
		case dkp.CombFirst:
			if l.Spec.Modes.G == kernels.WeightNone {
				// Generic comb-first: MatMul on the untransformed input,
				// then the strategy's aggregation in the hidden width.
				t, err := kernels.Linear(ctx, x, l.W, "combfirst-t")
				if err != nil {
					return nil, err
				}
				out, err := m.Strategy.Forward(ctx, g, t, l.Spec.Modes)
				if err != nil {
					return nil, err
				}
				cache.cf = &kernels.CombFirstResult{Out: out, T: t}
			} else {
				res, err := kernels.CombFirstForward(ctx, g, x, l.W, l.Spec.Modes)
				if err != nil {
					return nil, err
				}
				cache.cf = res
			}
			cache.out = cache.cf.Out
		default: // aggregation-first
			var agg *kernels.DeviceMatrix
			if l.Spec.Modes.F == kernels.AggrMax {
				// Max-pooling (GraphSAGE extension): a non-linear reduction
				// the strategies' linear accumulation cannot express, so it
				// uses the dedicated pool kernel and records the arg-max.
				var err error
				agg, cache.argmax, err = kernels.SAGEPoolForward(ctx, g, x)
				if err != nil {
					return nil, err
				}
			} else {
				var err error
				agg, err = m.Strategy.Forward(ctx, g, x, l.Spec.Modes)
				if err != nil {
					return nil, err
				}
			}
			cache.agg = agg
			out, err := kernels.Linear(ctx, agg, l.W, "layer-out")
			if err != nil {
				return nil, err
			}
			cache.out = out
		}
		pre, err := kernels.BiasReLU(ctx, cache.out, l.B)
		if err != nil {
			return nil, err
		}
		cache.pre = pre
		if !l.Spec.Activation {
			copy(cache.out.M.Data, pre.Data)
		}
		x = cache.out
	}
	fr.Logits = x
	return fr, nil
}

// Backward runs BWP from the logit gradient, accumulating parameter
// gradients. Layer 0 (first executed, last in BWP order) skips the
// aggregation backward under aggregation-first placement — no gradient is
// needed past the input embeddings (§V-A).
func (m *Model) Backward(ctx *kernels.Ctx, in *Input, fr *ForwardResult, dLogits *tensor.Matrix) error {
	dOut, err := kernels.WrapDeviceMatrix(ctx.Dev, dLogits, "dlogits")
	if err != nil {
		return err
	}
	for li := len(m.Layers) - 1; li >= 0; li-- {
		l := m.Layers[li]
		cache := &fr.caches[li]
		g := in.Graphs[li]

		if l.Spec.Activation {
			if err := kernels.BiasReLUBackward(ctx, dOut, cache.pre, l.DB); err != nil {
				return err
			}
		} else {
			// Bias gradient without the ReLU mask.
			for i := 0; i < dOut.M.Rows; i++ {
				row := dOut.M.Row(i)
				for j, v := range row {
					l.DB[j] += v
				}
			}
		}
		// The pre-activation workspace is consumed; return it to the pool.
		tensor.Put(cache.pre)
		cache.pre = nil

		var dx *kernels.DeviceMatrix
		switch cache.placement {
		case dkp.CombFirst:
			if l.Spec.Modes.G == kernels.WeightNone {
				dT, err := m.Strategy.Backward(ctx, g, cache.cf.T, dOut, l.Spec.Modes)
				if err != nil {
					return err
				}
				dx, err = kernels.LinearBackward(ctx, cache.x, dT, l.W, l.DW, "combfirst-dx")
				if err != nil {
					return err
				}
				dT.Free()
			} else {
				var err error
				dx, err = kernels.CombFirstBackward(ctx, g, cache.x, cache.cf, dOut, l.W, l.DW, l.Spec.Modes)
				if err != nil {
					return err
				}
			}
		default:
			dAgg, err := kernels.LinearBackward(ctx, cache.agg, dOut, l.W, l.DW, "layer-dagg")
			if err != nil {
				return err
			}
			if li > 0 {
				if l.Spec.Modes.F == kernels.AggrMax {
					dx, err = kernels.SAGEPoolBackward(ctx, g, cache.x, dAgg, cache.argmax)
				} else {
					dx, err = m.Strategy.Backward(ctx, g, cache.x, dAgg, l.Spec.Modes)
				}
				if err != nil {
					return err
				}
			}
			dAgg.Free()
		}
		// Release forward intermediates now that they are consumed.
		if cache.agg != nil {
			cache.agg.Free()
		}
		if cache.cf != nil && cache.cf.T != nil {
			cache.cf.T.Free()
		}
		if cache.cf != nil && cache.cf.WAgg != nil {
			cache.cf.WAgg.Free()
		}
		if li > 0 {
			dOut.Free()
			dOut = dx
		} else if dx != nil {
			dx.Free()
		}
	}
	dOut.Free()
	return nil
}

// Step applies one SGD update with the given learning rate and clears the
// gradients.
func (m *Model) Step(lr float32) {
	for _, l := range m.Layers {
		for i, g := range l.DW.Data {
			l.W.Data[i] -= lr * g
			l.DW.Data[i] = 0
		}
		for i, g := range l.DB {
			l.B[i] -= lr * g
			l.DB[i] = 0
		}
	}
}

// TrainStep runs one full FWP + loss + BWP + SGD update and returns the
// batch loss.
func (m *Model) TrainStep(ctx *kernels.Ctx, in *Input, lr float32) (float64, error) {
	fr, err := m.Forward(ctx, in)
	if err != nil {
		return 0, err
	}
	loss, dLogits := SoftmaxCrossEntropy(fr.Logits.M, in.Labels)
	if err := m.Backward(ctx, in, fr, dLogits); err != nil {
		return 0, err
	}
	tensor.Put(dLogits)
	m.Step(lr)
	fr.Logits.Free()
	return loss, nil
}

// Infer runs forward propagation only (no gradients, no parameter update)
// and returns the logits — the inference path of a trained model. Forward
// intermediates are released before returning.
func (m *Model) Infer(ctx *kernels.Ctx, in *Input) (*kernels.DeviceMatrix, error) {
	fr, err := m.Forward(ctx, in)
	if err != nil {
		return nil, err
	}
	for i := range fr.caches {
		c := &fr.caches[i]
		if c.agg != nil {
			c.agg.Free()
		}
		if c.cf != nil {
			if c.cf.T != nil {
				c.cf.T.Free()
			}
			if c.cf.WAgg != nil {
				c.cf.WAgg.Free()
			}
		}
		tensor.Put(c.pre)
		c.pre = nil
	}
	return fr.Logits, nil
}

// Evaluate runs inference and returns the classification accuracy against
// the batch labels.
func (m *Model) Evaluate(ctx *kernels.Ctx, in *Input) (float64, error) {
	logits, err := m.Infer(ctx, in)
	if err != nil {
		return 0, err
	}
	acc := Accuracy(logits.M, in.Labels)
	logits.Free()
	return acc, nil
}
