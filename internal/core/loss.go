package core

import (
	"math"

	"graphtensor/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean negative log-likelihood of labels
// under softmax(logits) and the gradient with respect to the logits
// ((softmax − onehot)/n). Rows beyond len(labels) — vertices sampled only
// as neighbors — contribute neither loss nor gradient. The gradient matrix
// is drawn from the tensor pool; callers that track lifetimes return it
// with tensor.Put.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int32) (float64, *tensor.Matrix) {
	n := len(labels)
	if n > logits.Rows {
		n = logits.Rows
	}
	loss, grad := SoftmaxCrossEntropySum(logits, labels, n)
	if n > 0 {
		loss /= float64(n)
	}
	return loss, grad
}

// SoftmaxCrossEntropySum is the data-parallel form of SoftmaxCrossEntropy:
// it returns the UNnormalized loss sum over the labeled rows and the
// gradient scaled by 1/norm, where norm is the global batch size. A shard
// holding a subset of the batch's dst rows computes its partial with
// norm = the full batch size; partials folded in a fixed order then divided
// by norm reproduce a full-batch step. The gradient is pool-drawn.
func SoftmaxCrossEntropySum(logits *tensor.Matrix, labels []int32, norm int) (float64, *tensor.Matrix) {
	n := len(labels)
	if n > logits.Rows {
		n = logits.Rows
	}
	if norm <= 0 {
		norm = 1
	}
	grad := tensor.Get(logits.Rows, logits.Cols)
	var loss float64
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		// Stable softmax.
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxV))
		}
		logSum := math.Log(sum)
		y := int(labels[i])
		if y < 0 || y >= logits.Cols {
			y = 0
		}
		loss += logSum - float64(row[y]-maxV)
		grow := grad.Row(i)
		for j, v := range row {
			p := math.Exp(float64(v-maxV)) / sum
			grow[j] = float32(p) / float32(norm)
		}
		grow[y] -= 1 / float32(norm)
	}
	return loss, grad
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Matrix, labels []int32) float64 {
	n := len(labels)
	if n > logits.Rows {
		n = logits.Rows
	}
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if int32(best) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
