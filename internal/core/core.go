// Package core is GraphTensor's frontend and execution engine: the NAPA
// (NeighborApply–Pull-and-Apply) programming model of §IV-B, the per-layer
// dataflow graphs, and the training engine that integrates the dynamic
// kernel placement orchestrator of §V-A.
//
// The three NAPA primitives mirror the paper's Fig 10 API:
//
//	edge := engine.NeighborApply(csr, embed, modes) // g per edge
//	aggr := engine.Pull(csr, embed, edge, modes)    // h then f per dst
//	out  := engine.Apply(aggr, W, b, relu)          // MLP combination
//
// Models composed from LayerSpecs run through Model.TrainStep, which
// executes FWP and BWP under the configured kernel strategy and placement.
package core

import (
	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/kernels"
	"graphtensor/internal/metrics"
	"graphtensor/internal/tensor"
)

// Engine owns a simulated device and the kernel context models execute in.
type Engine struct {
	Dev *gpusim.Device
	Ctx *kernels.Ctx
}

// NewEngine creates an engine on a fresh simulated device.
func NewEngine(cfg gpusim.Config) *Engine {
	dev := gpusim.NewDevice(cfg)
	return &Engine{Dev: dev, Ctx: kernels.NewCtx(dev)}
}

// ResetPhases clears the accumulated kernel-phase breakdown (Fig 16 data).
func (e *Engine) ResetPhases() { e.Ctx.Phases = metrics.NewBreakdown() }

// Phases returns the kernel-time breakdown accumulated so far.
func (e *Engine) Phases() *metrics.Breakdown { return e.Ctx.Phases }

// Upload registers a host matrix as device-resident and returns the device
// handle kernels operate on.
func (e *Engine) Upload(m *tensor.Matrix, label string) (*kernels.DeviceMatrix, error) {
	return kernels.WrapDeviceMatrix(e.Dev, m, label)
}

// NeighborApply is the NAPA edge-weighting primitive: it computes the
// per-edge weight matrix g(x_src, x_dst) over the layer's CSR subgraph in
// a destination-centric, feature-wise manner. It returns nil for modes
// without edge weighting.
func (e *Engine) NeighborApply(csr *graph.BCSR, embed *kernels.DeviceMatrix, m kernels.Modes) (*kernels.DeviceMatrix, error) {
	return kernels.NeighborApplyKernel(e.Ctx, csr, embed, m)
}

// Pull is the NAPA aggregation primitive: it accumulates h(x_src, w_e)
// into every dst with the aggregation function f, reusing SM-resident
// rows. edge may be nil for unweighted modes.
func (e *Engine) Pull(csr *graph.BCSR, embed, edge *kernels.DeviceMatrix, m kernels.Modes) (*kernels.DeviceMatrix, error) {
	return kernels.PullKernel(e.Ctx, csr, embed, edge, m)
}

// Apply is the NAPA combination primitive: the dense MLP transformation
// y = σ(x·W + b), leveraging conventional dense kernels. Set relu to false
// for the final (logit) layer.
func (e *Engine) Apply(x *kernels.DeviceMatrix, w *tensor.Matrix, b []float32, relu bool) (*kernels.DeviceMatrix, error) {
	out, err := kernels.Linear(e.Ctx, x, w, "apply-out")
	if err != nil {
		return nil, err
	}
	if b != nil {
		pre, err := kernels.BiasReLU(e.Ctx, out, b)
		if err != nil {
			return nil, err
		}
		if !relu {
			// Undo the clamping: keep the pre-activation values.
			copy(out.M.Data, pre.Data)
		}
	}
	return out, nil
}
