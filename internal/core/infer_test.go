package core

import (
	"testing"

	"graphtensor/internal/kernels"
)

func TestInferMatchesForwardLogits(t *testing.T) {
	dev := testDevice()
	ctx := kernels.NewCtx(dev)
	in := buildInput(t, dev, 6, 14, 25, 10, 1)
	model, err := NewModel(Config{Strategy: kernels.NAPA{}, Specs: modelSpecs(kernels.GCNModes(), 10, 8, 3), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := model.Forward(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	want := fr.Logits.M.Clone()
	fr.Logits.Free()

	logits, err := model.Infer(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if diff := logits.M.MaxAbsDiff(want); diff > 1e-6 {
		t.Errorf("inference logits differ from forward by %g", diff)
	}
	logits.Free()
}

func TestEvaluateReturnsFraction(t *testing.T) {
	dev := testDevice()
	ctx := kernels.NewCtx(dev)
	in := buildInput(t, dev, 8, 16, 30, 12, 3)
	model, _ := NewModel(Config{Strategy: kernels.NAPA{}, Specs: modelSpecs(kernels.GCNModes(), 12, 10, 3), Seed: 5})
	acc, err := model.Evaluate(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy %g out of [0,1]", acc)
	}
}

func TestTrainingImprovesAccuracyOnFixedBatch(t *testing.T) {
	dev := testDevice()
	ctx := kernels.NewCtx(dev)
	in := buildInput(t, dev, 12, 20, 40, 12, 7)
	model, _ := NewModel(Config{Strategy: kernels.NAPA{}, Specs: modelSpecs(kernels.GCNModes(), 12, 16, 3), Seed: 9})
	before, _ := model.Evaluate(ctx, in)
	for i := 0; i < 60; i++ {
		if _, err := model.TrainStep(ctx, in, 0.3); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := model.Evaluate(ctx, in)
	if after < before {
		t.Errorf("accuracy regressed: before %g after %g", before, after)
	}
}

func TestInferAcrossStrategies(t *testing.T) {
	for _, s := range []kernels.Strategy{kernels.NAPA{}, kernels.GraphApproach{}, kernels.DLApproach{}, kernels.Advisor{}} {
		dev := testDevice()
		ctx := kernels.NewCtx(dev)
		in := buildInput(t, dev, 5, 12, 20, 8, 11)
		model, _ := NewModel(Config{Strategy: s, Specs: modelSpecs(kernels.NGCFModes(), 8, 6, 3), Seed: 4})
		logits, err := model.Infer(ctx, in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if logits.M.Rows != 5 {
			t.Errorf("%s: %d logit rows want 5", s.Name(), logits.M.Rows)
		}
		logits.Free()
	}
}
