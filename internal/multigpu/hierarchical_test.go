package multigpu

import (
	"testing"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/prep"
)

// trainRunAt is trainRun with an explicit device config and shard count —
// the hierarchical guards sweep fabrics and 64-shard groups, which the
// default-config helper cannot express.
func (h *groupHarness) trainRunAt(t *testing.T, cfg gpusim.Config, nDev, shards, batches, size int) ([]float64, []float32) {
	t.Helper()
	g, err := NewGroup(nDev, shards, cfg, true, h.factory())
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	for i := 0; i < batches; i++ {
		b := h.batch(t, i, size)
		loss, err := g.TrainBatch(b, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
		b.Release()
		for gi, d := range g.Devices() {
			if m := d.Dev.MemInUse(); m != 0 {
				t.Fatalf("%s nDev=%d batch %d: device %d MemInUse %d, want 0 between batches",
					cfg.Interconnect.Name(), nDev, i, gi, m)
			}
		}
	}
	ref := g.Replica(0)
	for i := 1; i < nDev; i++ {
		if !SameWeights(ref, g.Replica(i)) {
			t.Fatalf("%s nDev=%d: replica %d diverged from replica 0", cfg.Interconnect.Name(), nDev, i)
		}
	}
	var w []float32
	for _, l := range ref.Layers {
		w = append(w, l.W.Data...)
		w = append(w, l.B...)
	}
	return losses, w
}

// TestGroupTrajectoryBitwiseHierarchical extends the core exactness guard
// to the multi-node fabrics: at a fixed 64-shard partition the loss and
// weight trajectory must be bitwise identical at 1–64 devices across the
// flat PCIe ring, the NVLink switch and hierarchical fabrics at 4 and 8
// devices per node — the dst→shard partition and the ascending-shard fold
// order are fixed by the batch shape and the shard count alone, and node
// assignment steers modeled scheduling and communication only.
func TestGroupTrajectoryBitwiseHierarchical(t *testing.T) {
	const shards = 64
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	flat := gpusim.DefaultConfig()
	refLoss, refW := h.trainRunAt(t, flat, 1, shards, 3, 60)

	nvlink := gpusim.DefaultConfig()
	nvlink.Interconnect = gpusim.NVLinkInterconnect()
	hier4 := gpusim.DefaultConfig()
	hier4.Interconnect = gpusim.HierarchicalInterconnect(4)
	hier8 := gpusim.DefaultConfig()
	hier8.Interconnect = gpusim.HierarchicalInterconnect(8)

	runs := []struct {
		cfg  gpusim.Config
		nDev int
	}{
		{flat, 64},
		{nvlink, 16},
		{hier4, 16},
		{hier4, 64},
		{hier8, 32},
		{hier8, 64},
		{hier4, 6}, // node count not dividing the device count
	}
	for _, r := range runs {
		name := r.cfg.Interconnect.Name()
		losses, w := h.trainRunAt(t, r.cfg, r.nDev, shards, 3, 60)
		for i := range refLoss {
			if losses[i] != refLoss[i] {
				t.Errorf("%s nDev=%d batch %d: loss %v != 1-device flat %v",
					name, r.nDev, i, losses[i], refLoss[i])
			}
		}
		for i := range refW {
			if w[i] != refW[i] {
				t.Fatalf("%s nDev=%d: weight[%d] %v != 1-device flat %v",
					name, r.nDev, i, w[i], refW[i])
			}
		}
	}
}

// TestGroupHierarchicalCommAccounting pins the per-tier bookkeeping of a
// hierarchical step against the flat ring at the same scale: the tier split
// must partition CommTime exactly, the cross-node payload must be the
// plan's deduplicated remote-node bytes, and the two-tier collective must
// beat the flat PCIe ring's 2(n−1) latency-bound steps.
func TestGroupHierarchicalCommAccounting(t *testing.T) {
	const nDev, shards = 16, 16
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	run := func(cfg gpusim.Config) []GroupStats {
		g, err := NewGroup(nDev, shards, cfg, true, h.factory())
		if err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() != g.ic.NumNodes(nDev) {
			t.Fatalf("group nodes %d != interconnect nodes %d", g.NumNodes(), g.ic.NumNodes(nDev))
		}
		var stats []GroupStats
		for i := 0; i < 2; i++ {
			b := h.batch(t, i, 60)
			if _, err := g.TrainBatch(b, 0.05); err != nil {
				t.Fatal(err)
			}
			stats = append(stats, g.LastStats())
			b.Release()
		}
		return stats
	}

	hierCfg := gpusim.DefaultConfig()
	hierCfg.Interconnect = gpusim.HierarchicalInterconnect(4)
	hier := run(hierCfg)
	flat := run(gpusim.DefaultConfig())

	for i, st := range hier {
		if st.Nodes != 4 {
			t.Fatalf("batch %d: hierarchical step reports %d nodes, want 4", i, st.Nodes)
		}
		if st.NodeImbalance < 1 {
			t.Errorf("batch %d: node imbalance %f below 1.0", i, st.NodeImbalance)
		}
		if st.CrossNodeBytes <= 0 {
			t.Errorf("batch %d: hierarchical step moved no cross-node bytes", i)
		}
		if st.IntraNodeTime <= 0 || st.InterNodeTime <= 0 {
			t.Errorf("batch %d: tier times (%v, %v) must both be positive", i, st.IntraNodeTime, st.InterNodeTime)
		}
		if st.IntraNodeTime+st.InterNodeTime != st.CommTime {
			t.Errorf("batch %d: tier split %v + %v != CommTime %v",
				i, st.IntraNodeTime, st.InterNodeTime, st.CommTime)
		}
	}
	for i, st := range flat {
		if st.Nodes != 1 {
			t.Fatalf("batch %d: flat step reports %d nodes, want 1", i, st.Nodes)
		}
		if st.InterNodeTime != 0 || st.CrossNodeBytes != 0 {
			t.Errorf("batch %d: flat fabric paid the network tier: time=%v bytes=%d",
				i, st.InterNodeTime, st.CrossNodeBytes)
		}
		if st.IntraNodeTime != st.CommTime {
			t.Errorf("batch %d: flat IntraNodeTime %v != CommTime %v", i, st.IntraNodeTime, st.CommTime)
		}
	}
	// The whole point of the hierarchy: the collective leaves the
	// latency-bound flat ring behind at 16 devices, serialized and
	// overlapped alike.
	if hier[0].AllReduceTime >= flat[0].AllReduceTime {
		t.Errorf("hierarchical all-reduce %v should beat the flat PCIe ring's %v at %d devices",
			hier[0].AllReduceTime, flat[0].AllReduceTime, nDev)
	}
	if hier[1].StepTime >= flat[1].StepTime {
		t.Errorf("hierarchical steady-state step %v should beat the flat ring's %v at %d devices",
			hier[1].StepTime, flat[1].StepTime, nDev)
	}
}

// TestPartitionNodesImbalanceLPT: the shard→node assignment inherits the
// greedy LPT guarantee — a node's final-layer edge load never exceeds the
// mean load plus one whole shard — so NodeImbalance is bounded on any edge
// distribution the partitioner can produce, including heavily skewed ones.
func TestPartitionNodesImbalanceLPT(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	for _, size := range []int{17, 80} { // 17 dsts under 16 shards skews hard
		b := h.batch(t, 0, size)
		for _, nodes := range []int{1, 2, 3, 4, 8} {
			plan, err := PartitionBatchNodes(b, 16, nodes)
			if err != nil {
				t.Fatal(err)
			}
			if nodes == 1 {
				// Flat single-node plans keep the node layer inert: no
				// per-shard node map, no payload vector, imbalance
				// pinned to 1 — the flat path stays allocation-free.
				if plan.Nodes != 1 || len(plan.NodeOf) != 0 || len(plan.NodeBytes) != 0 || plan.NodeImbalance != 1 {
					t.Fatalf("size=%d nodes=1: flat plan not inert: Nodes=%d |NodeOf|=%d |NodeBytes|=%d imbalance=%f",
						size, plan.Nodes, len(plan.NodeOf), len(plan.NodeBytes), plan.NodeImbalance)
				}
				continue
			}
			if plan.Nodes != nodes || len(plan.NodeOf) != len(plan.Subs) || len(plan.NodeBytes) != nodes {
				t.Fatalf("size=%d nodes=%d: plan shape Nodes=%d |NodeOf|=%d |NodeBytes|=%d",
					size, nodes, plan.Nodes, len(plan.NodeOf), len(plan.NodeBytes))
			}
			loads := make([]int, nodes)
			total, maxShard := 0, 0
			for s, sub := range plan.Subs {
				j := plan.NodeOf[s]
				if j < 0 || j >= nodes {
					t.Fatalf("shard %d assigned to node %d of %d", s, j, nodes)
				}
				loads[j] += sub.Edges
				total += sub.Edges
				if sub.Edges > maxShard {
					maxShard = sub.Edges
				}
			}
			maxLoad := 0
			for _, l := range loads {
				if l > maxLoad {
					maxLoad = l
				}
			}
			// Greedy bound: the heaviest node took its last shard while at
			// or below the mean, so max ≤ total/nodes + maxShard.
			if bound := float64(total)/float64(nodes) + float64(maxShard); float64(maxLoad) > bound {
				t.Errorf("size=%d nodes=%d: node load %d exceeds LPT bound %.1f", size, nodes, maxLoad, bound)
			}
			if want := float64(maxLoad) / (float64(total) / float64(nodes)); plan.NodeImbalance != want {
				t.Errorf("size=%d nodes=%d: NodeImbalance %f != recomputed %f", size, nodes, plan.NodeImbalance, want)
			}

			// NodeBytes is the deduplicated payload: per node, graph+label
			// bytes of its shards plus one copy of each embedding row any
			// of them touches. Recompute it independently.
			rowBytes := int64(b.Embed.Dim) * 4
			for j := 0; j < nodes; j++ {
				var want int64
				rows := map[int32]bool{}
				for s, sub := range plan.Subs {
					if plan.NodeOf[s] != j {
						continue
					}
					want += sub.HostBytes - int64(len(sub.XRows))*rowBytes
					for _, v := range sub.XRows {
						rows[v] = true
					}
				}
				want += int64(len(rows)) * rowBytes
				if plan.NodeBytes[j] != want {
					t.Errorf("size=%d nodes=%d: NodeBytes[%d] = %d, want deduplicated %d",
						size, nodes, j, plan.NodeBytes[j], want)
				}
			}
		}
		b.Release()
	}
}

// TestPartitionBatchNodesReuseBitwise extends the plan-reuse guard to the
// node layer: rebuilding a recycled plan in place — over a different batch
// AND a different node count — must reproduce exactly what a fresh
// partition computes, node assignment included, with no stale state
// leaking through the retained scratch.
func TestPartitionBatchNodesReuseBitwise(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	bA := h.batch(t, 0, 70)
	bB := h.batch(t, 1, 55)
	defer bA.Release()
	defer bB.Release()

	recycled, err := PartitionBatchNodes(bA, DefaultShards, 4)
	if err != nil {
		t.Fatal(err)
	}
	recycled.Recycle()
	reused, err := PartitionBatchNodesReuse(bB, DefaultShards, 2, recycled)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := PartitionBatchNodes(bB, DefaultShards, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reused != recycled {
		t.Fatal("PartitionBatchNodesReuse must rebuild the recycled plan in place")
	}
	if reused.Shards != fresh.Shards || reused.Imbalance != fresh.Imbalance {
		t.Fatalf("plan scalars differ: %d/%f vs %d/%f",
			reused.Shards, reused.Imbalance, fresh.Shards, fresh.Imbalance)
	}
	if reused.Nodes != fresh.Nodes || reused.NodeImbalance != fresh.NodeImbalance {
		t.Fatalf("node scalars differ: %d/%f vs %d/%f",
			reused.Nodes, reused.NodeImbalance, fresh.Nodes, fresh.NodeImbalance)
	}
	if len(reused.NodeOf) != len(fresh.NodeOf) || len(reused.NodeBytes) != len(fresh.NodeBytes) {
		t.Fatalf("node slice lengths differ: %d/%d vs %d/%d",
			len(reused.NodeOf), len(reused.NodeBytes), len(fresh.NodeOf), len(fresh.NodeBytes))
	}
	for s := range fresh.NodeOf {
		if reused.NodeOf[s] != fresh.NodeOf[s] {
			t.Errorf("NodeOf[%d] %d != fresh %d", s, reused.NodeOf[s], fresh.NodeOf[s])
		}
	}
	for j := range fresh.NodeBytes {
		if reused.NodeBytes[j] != fresh.NodeBytes[j] {
			t.Errorf("NodeBytes[%d] %d != fresh %d", j, reused.NodeBytes[j], fresh.NodeBytes[j])
		}
	}
	for s := range fresh.Subs {
		subBatchEqual(t, "nodes", &reused.Subs[s], &fresh.Subs[s])
	}
}
