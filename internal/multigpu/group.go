package multigpu

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"graphtensor/internal/core"
	"graphtensor/internal/dkp"
	"graphtensor/internal/fault"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/kernels"
	"graphtensor/internal/prep"
	"graphtensor/internal/sched"
	"graphtensor/internal/tensor"
)

// DefaultShards is the default gradient-shard count of a DeviceGroup. The
// shard partition — not the device count — is what fixes the numerical
// shape of a training step, so it must stay constant while device counts
// vary for the trajectory to be reproducible across them; 8 divides evenly
// across the 1/2/4/8-device sweeps the experiments run.
const DefaultShards = 8

// SubBatch is one gradient shard of a prepared batch, fully localized: the
// induced per-layer subgraph chain below the shard's share of the batch dst
// vertices, renumbered into compact local VID spaces so every device pays
// only for the rows it computes (halo rows replicate across shards, the
// standard data-parallel GNN discipline).
type SubBatch struct {
	Shard int
	// Dsts are the global batch dst VIDs this shard owns (ascending); local
	// final-layer dst i corresponds to global dst Dsts[i].
	Dsts []graph.VID
	// Layers[li] is the localized graph layer li+1 processes, in the same
	// storage format(s) as the parent batch.
	Layers []prep.LayerData
	// XRows[j] is the batch-embedding row backing local layer-1 src j.
	XRows []graph.VID
	// Labels[i] is the class of local dst i.
	Labels []int32
	// Edges counts final-layer edges (the balance unit).
	Edges int
	// HostBytes is the shard's host→device payload (graphs + embeddings +
	// labels), the input to the PCIe scatter model.
	HostBytes int64

	// Retained structure storage for slot reuse (PartitionBatchReuse):
	// locals[li] is layer li's localized CSR (aliased by Layers[li].CSR when
	// the parent format ships CSR); srcs[li] is its local→global src map
	// (srcs[0] doubles as XRows). Every retained buffer is fully rewritten
	// per batch, so reuse is shape-derived only.
	locals []*graph.BCSR
	cscs   []*graph.BCSC
	coos   []*graph.BCOO
	srcs   [][]graph.VID
}

// BatchPlan is the shape-fixed decomposition of one prepared batch into
// gradient shards. It depends only on the batch and the shard count — never
// on the device count — and is attached to prep.Batch by the prefetch-ring
// producer so partitioning overlaps the previous batch's compute. A plan
// recycled through a ring slot (prep.Recycler) is rebuilt in place by
// PartitionBatchReuse, retaining all of its structure storage.
type BatchPlan struct {
	Shards    int
	Subs      []SubBatch
	Imbalance float64

	// Node-aware layer (hierarchical fabrics): Nodes is the configured node
	// count the shard→node assignment was built for (1 on a flat fabric),
	// NodeOf[s] is shard s's node, NodeBytes[j] is node j's scatter payload
	// with embedding rows shared by the node's shards deduplicated (the
	// halo overlap a node-aware assignment concentrates inside the node),
	// and NodeImbalance is the final-layer edge imbalance across nodes.
	// Like the shard partition, this layer is a pure function of the batch
	// shape and the (Shards, Nodes) config: it steers modeled scheduling
	// and communication only, never which dst lands in which shard or the
	// fold order — so the trajectory stays bitwise identical across
	// fabrics and node counts.
	Nodes         int
	NodeOf        []int
	NodeBytes     []int64
	NodeImbalance float64

	// Retained assignment scratch (LPT order, per-shard loads), the
	// host-side CSR index of COO-format parents, and the per-layer
	// partitioning-CSR view.
	order  planOrder
	vo     vidOrder
	loads  []int
	csrIdx []*graph.BCSR
	csrs   []*graph.BCSR

	// Retained node-assignment scratch: LPT order over shards, per-node
	// edge loads, and the embedding-row stamp array behind the NodeBytes
	// dedup (stamp[v] == nodeGen marks row v already counted for the node
	// being scanned).
	nodeOrder planOrder
	nodeLoads []int
	nodeStamp []int32
	nodeGen   int32
}

// Recycle implements prep.Recycler: a released batch's plan drops nothing —
// its storage is plan-owned (no references into the batch survive) and is
// fully rewritten by the slot's next PartitionBatchReuse.
func (p *BatchPlan) Recycle() {}

// planOrder sorts (dst, degree) pairs by (degree desc, id asc) through
// sort.Sort on a retained receiver — sort.Slice would allocate its swapper
// and less-closure on every batch.
type planOrder struct {
	d   []graph.VID
	deg []int
}

func (o *planOrder) Len() int { return len(o.d) }
func (o *planOrder) Less(i, j int) bool {
	if o.deg[i] != o.deg[j] {
		return o.deg[i] > o.deg[j]
	}
	return o.d[i] < o.d[j]
}
func (o *planOrder) Swap(i, j int) {
	o.d[i], o.d[j] = o.d[j], o.d[i]
	o.deg[i], o.deg[j] = o.deg[j], o.deg[i]
}

// vidOrder sorts a []graph.VID ascending via sort.Sort on a retained
// receiver (allocation-free).
type vidOrder struct{ s []graph.VID }

func (o *vidOrder) Len() int           { return len(o.s) }
func (o *vidOrder) Less(i, j int) bool { return o.s[i] < o.s[j] }
func (o *vidOrder) Swap(i, j int)      { o.s[i], o.s[j] = o.s[j], o.s[i] }

// PartitionBatch carves a prepared batch into `shards` localized sub-batches
// by balancing final-layer edges (AssignByEdges) and back-chaining each
// shard's induced subgraph through every GNN layer.
func PartitionBatch(b *prep.Batch, shards int) (*BatchPlan, error) {
	return PartitionBatchNodesReuse(b, shards, 1, nil)
}

// PartitionBatchReuse is PartitionBatch rebuilding a recycled plan in place
// (nil allocates a fresh one): the per-shard dst lists, localized layer
// chains, src maps and label buffers all reuse the retained capacity of the
// slot's previous batch. The partition — like the fresh one — is a pure
// function of (batch shape, shards): reuse cannot change a single assigned
// dst, edge or byte (guarded by TestPartitionBatchReuseBitwise).
func PartitionBatchReuse(b *prep.Batch, shards int, plan *BatchPlan) (*BatchPlan, error) {
	return PartitionBatchNodesReuse(b, shards, 1, plan)
}

// PartitionBatchNodes is PartitionBatch for a hierarchical group: the shard
// partition is identical to the flat one (it depends on shards alone, so
// the trajectory is unaffected), and the shards are then assigned to
// `nodes` nodes by LPT over final-layer edges.
func PartitionBatchNodes(b *prep.Batch, shards, nodes int) (*BatchPlan, error) {
	return PartitionBatchNodesReuse(b, shards, nodes, nil)
}

// PartitionBatchNodesReuse is the full partitioning entry point: shard
// partition plus node assignment, rebuilding a recycled plan fully in place
// (nil allocates a fresh one).
func PartitionBatchNodesReuse(b *prep.Batch, shards, nodes int, plan *BatchPlan) (*BatchPlan, error) {
	L := len(b.Layers)
	if L == 0 {
		return nil, errors.New("multigpu: batch has no layer graphs")
	}
	if len(b.Labels) == 0 {
		return nil, errors.New("multigpu: batch has no labels (training plan needs them)")
	}
	if shards < 1 {
		shards = 1
	}
	if plan == nil {
		plan = &BatchPlan{}
	}
	if len(plan.Subs) != shards {
		plan.Subs = make([]SubBatch, shards)
	}
	plan.Shards = shards
	for len(plan.csrIdx) < L {
		plan.csrIdx = append(plan.csrIdx, nil)
	}
	if cap(plan.csrs) < L {
		plan.csrs = make([]*graph.BCSR, L)
	}
	csrs := plan.csrs[:L]
	for li := 0; li < L; li++ {
		switch {
		case b.Layers[li].CSR != nil:
			csrs[li] = b.Layers[li].CSR
		case b.Layers[li].COO != nil:
			// COO-format batches (Graph-approach) get a host-side CSR index
			// for partitioning only; the shard still ships COO and the
			// device pays its usual kernel-time translation. The index is
			// plan-retained and rebuilt in place.
			if plan.csrIdx[li] == nil {
				plan.csrIdx[li] = &graph.BCSR{}
			}
			graph.BCOOToBCSRInto(b.Layers[li].COO, plan.csrIdx[li])
			csrs[li] = plan.csrIdx[li]
		default:
			return nil, fmt.Errorf("multigpu: layer %d has no COO/CSR storage", li)
		}
	}
	plan.assignByEdges(csrs[L-1], shards)
	for s := range plan.Subs {
		sub := &plan.Subs[s]
		sub.Shard = s
		if cap(sub.Layers) < L {
			sub.Layers = make([]prep.LayerData, L)
		}
		sub.Layers = sub.Layers[:L]
		for len(sub.locals) < L {
			sub.locals = append(sub.locals, &graph.BCSR{})
			sub.srcs = append(sub.srcs, nil)
		}
		need := sub.Dsts
		for li := L - 1; li >= 0; li-- {
			local := sub.locals[li]
			sub.srcs[li] = localizeInto(csrs[li], need, local, sub.srcs[li][:0])
			if li == L-1 {
				sub.Edges = local.NumEdges()
			}
			sub.Layers[li] = sub.formatLike(b.Layers[li], li)
			need = sub.srcs[li]
		}
		sub.XRows = need
		sub.Labels = graph.GrowVIDs(sub.Labels, len(sub.Dsts))
		for i, d := range sub.Dsts {
			sub.Labels[i] = b.Labels[d]
		}
		sub.HostBytes = prep.GraphBytes(sub.Layers) +
			int64(len(sub.XRows))*int64(b.Embed.Dim)*4 + int64(len(sub.Labels))*4
	}
	plan.assignNodes(b, nodes)
	return plan, nil
}

// assignNodes maps shards to nodes with LPT over final-layer edges
// (heaviest shard to the lightest node, ties by lowest id) and computes the
// per-node scatter payloads: each node pays its shards' graph and label
// bytes plus one copy of every embedding row any of its shards touches —
// the dedup that makes concentrating halo overlap inside a node shrink
// cross-node scatter traffic. Pure function of (shard partition, nodes);
// nodes <= 1 collapses to the single flat node, where the node layer is
// inert — NodeOf/NodeBytes stay empty so the flat path never pays the
// node-scratch allocations (the allocs/op ratchet holds it there).
func (p *BatchPlan) assignNodes(b *prep.Batch, nodes int) {
	p.assignNodesMask(b, nodes, nil)
}

// assignNodesMask is assignNodes restricted to an alive-node set (nil =
// all alive): after a whole-node loss the group re-runs the assignment
// over the survivors, so dead nodes draw no shards and no scatter payload.
// Still a pure function — now of (shard partition, nodes, mask) — so a
// degraded run's schedule replays bitwise; and like the unmasked form it
// steers modeled scheduling and communication only, never the fold order.
func (p *BatchPlan) assignNodesMask(b *prep.Batch, nodes int, alive []bool) {
	if nodes <= 1 {
		p.Nodes = 1
		p.NodeImbalance = 1
		p.NodeOf = p.NodeOf[:0]
		p.NodeBytes = p.NodeBytes[:0]
		return
	}
	p.Nodes = nodes
	ns := len(p.Subs)
	if cap(p.NodeOf) < ns {
		p.NodeOf = make([]int, ns)
	}
	p.NodeOf = p.NodeOf[:ns]
	if cap(p.NodeBytes) < nodes {
		p.NodeBytes = make([]int64, nodes)
	}
	p.NodeBytes = p.NodeBytes[:nodes]

	// LPT over shard edge counts (ties by lowest shard id, matching the
	// shard-level discipline), via the retained sorter.
	p.nodeOrder.d = graph.GrowVIDs(p.nodeOrder.d, ns)
	if cap(p.nodeOrder.deg) < ns {
		p.nodeOrder.deg = make([]int, ns)
	}
	p.nodeOrder.deg = p.nodeOrder.deg[:ns]
	for s := range p.Subs {
		p.nodeOrder.d[s] = graph.VID(s)
		p.nodeOrder.deg[s] = p.Subs[s].Edges
	}
	sort.Sort(&p.nodeOrder)
	if cap(p.nodeLoads) < nodes {
		p.nodeLoads = make([]int, nodes)
	}
	p.nodeLoads = p.nodeLoads[:nodes]
	for j := range p.nodeLoads {
		p.nodeLoads[j] = 0
	}
	for i := 0; i < ns; i++ {
		min := -1
		for j := 0; j < nodes; j++ {
			if alive != nil && !alive[j] {
				continue
			}
			if min < 0 || p.nodeLoads[j] < p.nodeLoads[min] {
				min = j
			}
		}
		if min < 0 {
			min = 0 // no alive node: degenerate, callers guarantee survivors
		}
		p.NodeOf[p.nodeOrder.d[i]] = min
		p.nodeLoads[min] += p.nodeOrder.deg[i]
	}
	maxEdges, total, aliveN := 0, 0, 0
	for j := 0; j < nodes; j++ {
		if alive != nil && !alive[j] {
			continue
		}
		aliveN++
		total += p.nodeLoads[j]
		if p.nodeLoads[j] > maxEdges {
			maxEdges = p.nodeLoads[j]
		}
	}
	p.NodeImbalance = 0
	if total > 0 && aliveN > 0 {
		p.NodeImbalance = float64(maxEdges) / (float64(total) / float64(aliveN))
	}

	// Per-node scatter payload with embedding-row dedup inside the node.
	nv := b.Embed.NumVertices()
	if cap(p.nodeStamp) < nv {
		p.nodeStamp = make([]int32, nv)
		p.nodeGen = 0
	}
	p.nodeStamp = p.nodeStamp[:nv]
	rowBytes := int64(b.Embed.Dim) * 4
	for j := 0; j < nodes; j++ {
		p.nodeGen++
		gen := p.nodeGen
		var bytes int64
		for s := range p.Subs {
			if p.NodeOf[s] != j {
				continue
			}
			sub := &p.Subs[s]
			bytes += prep.GraphBytes(sub.Layers) + int64(len(sub.Labels))*4
			for _, v := range sub.XRows {
				if p.nodeStamp[v] != gen {
					p.nodeStamp[v] = gen
					bytes += rowBytes
				}
			}
		}
		p.NodeBytes[j] = bytes
	}
}

// assignByEdges is the one LPT implementation (the exported AssignByEdges
// wraps it): dsts balanced over final-layer degrees into the plan's
// retained Subs[].Dsts, ties by lowest id, each group's dst list ascending.
func (p *BatchPlan) assignByEdges(csr *graph.BCSR, n int) {
	nd := csr.NumDst
	p.order.d = graph.GrowVIDs(p.order.d, nd)
	if cap(p.order.deg) < nd {
		p.order.deg = make([]int, nd)
	}
	p.order.deg = p.order.deg[:nd]
	for d := 0; d < nd; d++ {
		p.order.d[d] = graph.VID(d)
		p.order.deg[d] = csr.Degree(graph.VID(d))
	}
	sort.Sort(&p.order)
	if cap(p.loads) < n {
		p.loads = make([]int, n)
	}
	p.loads = p.loads[:n]
	for i := range p.loads {
		p.loads[i] = 0
	}
	for s := range p.Subs {
		p.Subs[s].Dsts = p.Subs[s].Dsts[:0]
	}
	for i := 0; i < nd; i++ {
		min := 0
		for g := 1; g < n; g++ {
			if p.loads[g] < p.loads[min] {
				min = g
			}
		}
		p.Subs[min].Dsts = append(p.Subs[min].Dsts, p.order.d[i])
		p.loads[min] += p.order.deg[i]
	}
	maxEdges, total := 0, 0
	for g := 0; g < n; g++ {
		p.vo.s = p.Subs[g].Dsts
		sort.Sort(&p.vo)
		total += p.loads[g]
		if p.loads[g] > maxEdges {
			maxEdges = p.loads[g]
		}
	}
	p.vo.s = nil
	p.Imbalance = 0
	if total > 0 {
		p.Imbalance = float64(maxEdges) / (float64(total) / float64(n))
	}
}

// localizeInto builds the induced subgraph of csr on the given dsts with
// compact local numbering into the retained local CSR: local dst i is
// dsts[i]; local srcs are numbered in first-touch order (a pure function of
// the graph shape, so shard contents never depend on device count or
// scheduling). It appends the global ids backing each local src onto srcs
// (passed with length 0) and returns it — which becomes the next-lower
// layer's dst list, chaining the layers together.
func localizeInto(csr *graph.BCSR, dsts []graph.VID, local *graph.BCSR, srcs []graph.VID) []graph.VID {
	m := 0
	for _, d := range dsts {
		m += csr.Degree(d)
	}
	local.NumDst = len(dsts)
	local.Ptr = graph.GrowVIDs(local.Ptr, len(dsts)+1)
	local.Ptr[0] = 0
	local.Srcs = graph.GrowVIDs(local.Srcs, m)
	mapp := graph.GetVIDs(csr.NumSrc)
	remap := *mapp
	for i := range remap {
		remap[i] = -1
	}
	e := 0
	for i, d := range dsts {
		for _, sv := range csr.Neighbors(d) {
			lid := remap[sv]
			if lid < 0 {
				lid = graph.VID(len(srcs))
				remap[sv] = lid
				srcs = append(srcs, sv)
			}
			local.Srcs[e] = lid
			e++
		}
		local.Ptr[i+1] = int32(e)
	}
	local.NumSrc = len(srcs)
	graph.PutVIDs(mapp)
	return srcs
}

// formatLike emits layer li's localized graph in the parent batch's storage
// format(s), so every framework's kernels see exactly the format discipline
// they see single-device (the Graph-approach keeps translating on device).
// Derived CSC/COO structures are retained on the sub-batch and rebuilt in
// place.
func (sub *SubBatch) formatLike(parent prep.LayerData, li int) prep.LayerData {
	local := sub.locals[li]
	var out prep.LayerData
	if parent.CSR != nil {
		out.CSR = local
	}
	if parent.CSC != nil {
		for len(sub.cscs) <= li {
			sub.cscs = append(sub.cscs, nil)
		}
		if sub.cscs[li] == nil {
			sub.cscs[li] = &graph.BCSC{}
		}
		graph.BCSRToBCSCInto(local, sub.cscs[li])
		out.CSC = sub.cscs[li]
	}
	if parent.COO != nil {
		for len(sub.coos) <= li {
			sub.coos = append(sub.coos, nil)
		}
		if sub.coos[li] == nil {
			sub.coos[li] = &graph.BCOO{}
		}
		graph.BCSRToBCOOInto(local, sub.coos[li])
		out.COO = sub.coos[li]
	}
	return out
}

// shardGrad is one shard's parameter-gradient contribution for one layer.
type shardGrad struct {
	dw *tensor.Matrix
	db []float32
}

// GroupDev is one persistent simulated device of a DeviceGroup.
type GroupDev struct {
	Dev *gpusim.Device
	// Ctx is the device's persistent kernel context (scratch + memos).
	Ctx *kernels.Ctx
	// Arena is the batch-scoped device allocator: released after every
	// batch, so MemInUse returns to zero between batches.
	Arena *gpusim.DeviceArena
	// Model is the device's weight replica. Replicas start identical and
	// stay identical: every device applies the same folded gradients.
	Model *core.Model

	pcie *gpusim.PCIe

	// id is the device's original group index — the coordinate the fault
	// plan is consulted at. It survives group shrink (devs slide left when
	// a dead device is dropped, ids do not renumber), so a plan targets
	// the same physical device across failovers.
	id int

	// Per-batch state, touched only by this device's worker.
	shards []int
	err    error
	cnt    gpusim.Counters
	graphs []kernels.Graphs
	gptrs  []*kernels.Graphs
	input  core.Input
	// plc counts this batch's per-layer placement decisions across the
	// device's shards (merged into GroupStats after the barrier, per the
	// per-shard-accumulate / merge-in-Stats rule).
	plc []PlacementCount
}

// PlacementCount tallies one layer's shard executions by kernel placement.
type PlacementCount struct {
	AggrFirst, CombFirst int
}

// GroupStats reports one data-parallel training step.
type GroupStats struct {
	Devices int
	Shards  int
	// Imbalance is the plan's final-layer edge imbalance across shards.
	Imbalance float64
	// Counters sums device work over all devices.
	Counters gpusim.Counters
	// PeakDeviceFLOPs is the busiest device's FLOP count (the scaling
	// figure: it should fall ~linearly with device count).
	PeakDeviceFLOPs int64
	// MaxDeviceCompute is the busiest device's modeled kernel time.
	MaxDeviceCompute time.Duration
	// CommBytes is the step's total modeled fabric traffic: the per-device
	// sub-batch scatter plus the gradient all-reduce; CommTime is the
	// serialized communication latency, ScatterTime + AllReduceTime.
	CommBytes int64
	CommTime  time.Duration
	// ScatterTime is the slowest device's modeled host→device sub-batch
	// transfer; AllReduceTime is the modeled gradient collective over the
	// group's interconnect topology.
	ScatterTime   time.Duration
	AllReduceTime time.Duration
	// Per-tier communication split of a hierarchical fabric. Nodes is the
	// configured node count (1 = flat); IntraNodeTime is this step's
	// intra-node communication (device scatter plus the collective's
	// reduce-scatter/broadcast phases), InterNodeTime its network-tier
	// communication (cross-node scatter plus the per-node ring), so
	// IntraNodeTime + InterNodeTime == CommTime. CrossNodeBytes is the
	// deduplicated payload that crossed the network this step and
	// NodeImbalance the plan's edge imbalance across nodes. On a flat
	// fabric the inter fields are zero and IntraNodeTime == CommTime.
	Nodes          int
	IntraNodeTime  time.Duration
	InterNodeTime  time.Duration
	CrossNodeBytes int64
	NodeImbalance  float64
	// StepTime is the modeled steady-state step latency under the
	// overlapped schedule: the next batch's shard scatter starts while the
	// previous step's all-reduce drains, so only the exposed remainder of
	// the scatter serializes before compute. StepTimeSerial is the same
	// step with no comm overlap (scatter + compute + all-reduce end to
	// end), the schedule of PR 3.
	StepTime       time.Duration
	StepTimeSerial time.Duration
	// OverlapEfficiency is the fraction of this step's scatter hidden under
	// the previous step's all-reduce drain: 0 on the first batch (nothing
	// to hide behind) or on a fully contended fabric, 1 when the scatter is
	// entirely off the critical path.
	OverlapEfficiency float64
	// DeadDevices counts devices lost to fault injection over the group's
	// lifetime; Retries counts this step's dispatch re-runs after a device
	// loss (the whole batch replays on the survivors — per-shard partials
	// are fully overwritten, so a retry is numerically invisible).
	// StallTime is the largest modeled stall injected into any device this
	// step; it rides MaxDeviceCompute onto the step-time figures.
	DeadDevices int
	Retries     int
	StallTime   time.Duration
	// Rejoined counts devices re-admitted at this step's boundary;
	// RejoinBcastTime is the modeled weight-reinstall broadcast they cost
	// (one full-snapshot transfer per rejoiner, split across the tier
	// accumulators so IntraNodeTime + InterNodeTime == CommTime still
	// holds). Both are zero on every fault-free step.
	Rejoined        int
	RejoinBcastTime time.Duration
	// Placements[li] counts layer li's shard executions this step by the
	// placement the policy chose. The backing array is group-owned and
	// overwritten by the next TrainBatch.
	Placements []PlacementCount
}

// String renders the step's headline figures, including the per-tier
// communication split (the inter columns stay zero on a flat fabric).
func (st GroupStats) String() string {
	return fmt.Sprintf(
		"devs=%d shards=%d nodes=%d imb=%.2f nodeimb=%.2f step=%v serial=%v compute=%v scatter=%v allreduce=%v intra=%v inter=%v xnode=%.2fMB overlap=%.0f%%",
		st.Devices, st.Shards, st.Nodes, st.Imbalance, st.NodeImbalance,
		st.StepTime, st.StepTimeSerial, st.MaxDeviceCompute, st.ScatterTime, st.AllReduceTime,
		st.IntraNodeTime, st.InterNodeTime, float64(st.CrossNodeBytes)/(1<<20),
		st.OverlapEfficiency*100)
}

// DeviceGroup is the data-parallel training engine: a persistent set of
// simulated devices, each owning its kernel context, its batch-scoped
// device arena and a model replica. Every batch is carved into a fixed
// number of gradient shards (see PartitionBatch); devices process their
// shards' forward+backward locally, weight gradients are all-reduced over
// the PCIe model by folding per-shard partials in ascending shard order,
// and every replica applies the same deterministic SGD step.
//
// Because the shard partition and the fold order are fixed by the batch
// shape alone, the loss/weight trajectory is bitwise identical at any
// device count (1..Shards) and any GOMAXPROCS.
type DeviceGroup struct {
	devs   []*GroupDev
	shards int
	pinned bool

	// ic models the gradient collective's fabric. The pending drains are
	// the previous step's per-tier all-reduce times, which the next batch's
	// scatter overlaps on the matching tier (§ comm/compute overlap — the
	// modeled analogue of issuing the scatter while the collective drains):
	// the device scatter hides under the intra-node drain at the fabric's
	// contention, the cross-node scatter under the network drain at the
	// network's. On a flat fabric the inter drain is always zero.
	ic                *gpusim.Interconnect
	pendingIntraDrain time.Duration
	pendingInterDrain time.Duration

	// Hierarchical topology: devsPerNode is the configured node size (0 =
	// flat), nodes the node count the group was built at (fixed for the
	// group's lifetime — device ids survive fault shrink, so a device's
	// node id/devsPerNode never moves), nodeDevs the retained per-node
	// device-index scratch assignShards rebuilds each batch.
	devsPerNode int
	nodes       int
	nodeDevs    [][]int

	// Cross-shard reduction state. grads[s] is written by exactly one
	// device (shard s's owner); the fold reads them after the barrier.
	lossParts []float64
	grads     [][]shardGrad
	foldDW    []*tensor.Matrix
	foldDB    [][]float32

	// Per-batch run state (one TrainBatch at a time). The scratch slices
	// (and the sorter behind the LPT assignment) are sized once in
	// NewGroup, so the dispatch bookkeeping of a steady-state TrainBatch
	// adds no per-batch slice or closure churn.
	plan       *BatchPlan
	batch      *prep.Batch
	norm       int
	commBytes0 []int64
	commNs0    []time.Duration
	stall0     []time.Duration
	shardOrder shardSorter
	devLoads   []int
	// plStats is the preallocated per-layer placement tally GroupStats
	// exposes (overwritten each step; no per-batch allocation).
	plStats []PlacementCount

	// Fault state: fplan is the deterministic injection schedule (nil in
	// production — one predicted branch per batch), step the 0-based
	// TrainBatch counter it is consulted at, deadDevs the lifetime death
	// count. deadPool holds dropped devices intact — replica, context,
	// arena — so an elastic rejoin re-admits the original identity;
	// rejoinedSum is the lifetime rejoin count. nodeAlive is the retained
	// alive-node mask renodeSurvivors rebuilds after a whole-node loss, and
	// renodeHops the cross-node scatter hop count while that mask is in
	// force (-1 = default, plan.Nodes-1).
	fplan       *fault.Plan
	step        int
	deadDevs    int
	retriesSum  int
	deadPool    []*GroupDev
	rejoinedSum int
	nodeAlive   []bool
	renodeHops  int

	stats GroupStats
}

// shardLoad pairs a shard id with its balance weight for LPT assignment.
type shardLoad struct{ s, edges int }

// shardSorter orders shards by (edges desc, id asc) through sort.Sort on a
// preallocated receiver — sort.Slice would allocate its swapper and
// less-closure on every batch.
type shardSorter struct{ s []shardLoad }

func (x *shardSorter) Len() int { return len(x.s) }
func (x *shardSorter) Less(i, j int) bool {
	if x.s[i].edges != x.s[j].edges {
		return x.s[i].edges > x.s[j].edges
	}
	return x.s[i].s < x.s[j].s
}
func (x *shardSorter) Swap(i, j int) { x.s[i], x.s[j] = x.s[j], x.s[i] }

// NewGroup builds a data-parallel group of `devices` simulated devices
// (cfg each), with the batch partition fixed at `shards` gradient shards
// (0 derives the count from the device class via dkp.Recommend; devices
// must not exceed shards). newModel builds one weight replica; it must be
// deterministic — every replica must start bitwise identical, which
// NewGroup verifies. Dynamic kernel placement stays live on every replica:
// placements are pure functions of the fitted profile and each shard's
// shape, so replicas evaluating the same shard agree by construction.
func NewGroup(devices, shards int, cfg gpusim.Config, pinned bool,
	newModel func() (*core.Model, error)) (*DeviceGroup, error) {
	if devices < 1 {
		devices = 1
	}
	if shards <= 0 {
		shards = dkp.ProfileFor(cfg).Recommend().GradShards
	}
	if devices > shards {
		return nil, fmt.Errorf("multigpu: %d devices exceed %d gradient shards", devices, shards)
	}
	g := &DeviceGroup{shards: shards, pinned: pinned, lossParts: make([]float64, shards),
		ic: gpusim.NewInterconnect(cfg)}
	g.devsPerNode = cfg.Interconnect.DevicesPerNode
	g.nodes = g.ic.NumNodes(devices)
	g.nodeDevs = make([][]int, g.nodes)
	for j := range g.nodeDevs {
		g.nodeDevs[j] = make([]int, 0, devices)
	}
	for i := 0; i < devices; i++ {
		m, err := newModel()
		if err != nil {
			return nil, err
		}
		dev := gpusim.NewDevice(cfg)
		gd := &GroupDev{
			Dev:    dev,
			Ctx:    kernels.NewCtx(dev),
			Arena:  dev.NewArena(),
			Model:  m,
			pcie:   dev.PCIe(),
			id:     i,
			graphs: make([]kernels.Graphs, len(m.Layers)),
			gptrs:  make([]*kernels.Graphs, len(m.Layers)),
		}
		for li := range gd.graphs {
			gd.gptrs[li] = &gd.graphs[li]
		}
		gd.plc = make([]PlacementCount, len(m.Layers))
		g.devs = append(g.devs, gd)
	}
	ref := g.devs[0].Model
	for i, d := range g.devs {
		if i > 0 && !SameWeights(ref, d.Model) {
			return nil, errors.New("multigpu: model factory is not deterministic; replicas differ at init")
		}
	}
	g.commBytes0 = make([]int64, devices)
	g.commNs0 = make([]time.Duration, devices)
	g.stall0 = make([]time.Duration, devices)
	g.shardOrder.s = make([]shardLoad, shards)
	g.devLoads = make([]int, devices)
	g.grads = make([][]shardGrad, shards)
	g.foldDW = make([]*tensor.Matrix, len(ref.Layers))
	g.foldDB = make([][]float32, len(ref.Layers))
	for li, l := range ref.Layers {
		g.foldDW[li] = tensor.New(l.DW.Rows, l.DW.Cols)
		g.foldDB[li] = make([]float32, len(l.DB))
	}
	for s := range g.grads {
		g.grads[s] = make([]shardGrad, len(ref.Layers))
		for li, l := range ref.Layers {
			g.grads[s][li] = shardGrad{dw: tensor.New(l.DW.Rows, l.DW.Cols), db: make([]float32, len(l.DB))}
		}
	}
	g.plStats = make([]PlacementCount, len(ref.Layers))
	return g, nil
}

// SameWeights reports whether two models carry bitwise-identical
// parameters — the replica-consistency check NewGroup runs at init and the
// serving engine's tests reuse for its weight snapshots.
func SameWeights(a, b *core.Model) bool {
	if len(a.Layers) != len(b.Layers) {
		return false
	}
	for li := range a.Layers {
		la, lb := a.Layers[li], b.Layers[li]
		if la.W.MaxAbsDiff(lb.W) != 0 {
			return false
		}
		for j := range la.B {
			if la.B[j] != lb.B[j] {
				return false
			}
		}
	}
	return true
}

// NumDevices returns the group size.
func (g *DeviceGroup) NumDevices() int { return len(g.devs) }

// NumShards returns the fixed gradient-shard count.
func (g *DeviceGroup) NumShards() int { return g.shards }

// NumNodes returns the node count the group was built at (1 on a flat
// fabric). Like the shard count it is fixed for the group's lifetime: plans
// are keyed on it, and fault shrink never renumbers device ids out of
// their node.
func (g *DeviceGroup) NumNodes() int { return g.nodes }

// Devices exposes the group's devices (tests assert per-device invariants
// like MemInUse()==0 between batches).
func (g *DeviceGroup) Devices() []*GroupDev { return g.devs }

// Replica returns device i's model replica (replica 0 doubles as the
// canonical trained model for evaluation/inference).
func (g *DeviceGroup) Replica(i int) *core.Model { return g.devs[i].Model }

// LastStats returns the statistics of the most recent TrainBatch.
func (g *DeviceGroup) LastStats() GroupStats { return g.stats }

// SetFaultPlan installs (or, with nil, removes) the group's deterministic
// fault-injection schedule. The plan is consulted once per TrainBatch —
// the batch boundary is the only place the engine's determinism
// disciplines allow behaviour to change — with device = the device's
// original group index and step = the 0-based TrainBatch count.
func (g *DeviceGroup) SetFaultPlan(p *fault.Plan) { g.fplan = p }

// DeadDevices reports how many devices fault injection has killed over
// the group's lifetime.
func (g *DeviceGroup) DeadDevices() int { return g.deadDevs }

// Retries reports how many whole-batch replays device deaths have forced
// over the group's lifetime (LastStats().Retries is the same count for the
// most recent batch only).
func (g *DeviceGroup) Retries() int { return g.retriesSum }

// Rejoined reports how many dead devices have re-entered the group over
// its lifetime (LastStats().Rejoined is the per-step count).
func (g *DeviceGroup) Rejoined() int { return g.rejoinedSum }

// dropDead removes killed devices from the group, shrinking it to the
// surviving set: their replicas go stale (replicas are identical before
// every Step, so nothing is lost — a later rejoin reinstalls the
// survivors' weights) and the per-device scratch re-slices to the new
// size. Dropped devices park in deadPool keeping their identity, so an
// elastic rejoin re-admits the same id into the same node. Returns false
// when no device survives.
func (g *DeviceGroup) dropDead() bool {
	keep := g.devs[:0]
	for _, d := range g.devs {
		if d.Dev.Alive() {
			keep = append(keep, d)
		} else {
			g.deadDevs++
			g.deadPool = append(g.deadPool, d)
		}
	}
	if len(keep) == len(g.devs) {
		return false // device-lost error without a dead device: not ours to retry
	}
	g.devs = keep
	g.devLoads = g.devLoads[:len(keep)]
	g.commBytes0 = g.commBytes0[:len(keep)]
	g.commNs0 = g.commNs0[:len(keep)]
	g.stall0 = g.stall0[:len(keep)]
	return len(keep) > 0
}

// clearGrads zeroes the replica's gradient accumulators — retry hygiene: a
// dispatch aborted by a device loss may have left a survivor's shard
// partially backpropagated, and the replay must start from zero.
func (d *GroupDev) clearGrads() {
	for _, l := range d.Model.Layers {
		for i := range l.DW.Data {
			l.DW.Data[i] = 0
		}
		for i := range l.DB {
			l.DB[i] = 0
		}
	}
}

// assignShards maps shards to devices with LPT over final-layer edges
// (heaviest shard to the lightest device, ties by lowest id), then orders
// each device's shard list ascending. On a hierarchical group the plan's
// node assignment constrains the choice: a shard goes to the lightest
// device *of its node*, which keeps the node-level dedup honest (a node
// only scatters what its own shards need). A node whose devices all died
// falls back to the global lightest device — scheduling only, so failover
// stays numerically invisible. The mapping balances wall-clock work; it
// cannot affect results — every shard's computation and the fold order are
// independent of which device runs it.
func (g *DeviceGroup) assignShards(plan *BatchPlan) {
	order := g.shardOrder.s
	for s := range plan.Subs {
		order[s] = shardLoad{s, plan.Subs[s].Edges}
	}
	sort.Sort(&g.shardOrder)
	loads := g.devLoads
	for i := range loads {
		loads[i] = 0
	}
	for _, d := range g.devs {
		d.shards = d.shards[:0]
	}
	nodeAware := g.devsPerNode > 0 && g.nodes > 1 && plan.Nodes == g.nodes
	if nodeAware {
		for j := range g.nodeDevs {
			g.nodeDevs[j] = g.nodeDevs[j][:0]
		}
		for i, d := range g.devs {
			if j := d.id / g.devsPerNode; j < len(g.nodeDevs) {
				g.nodeDevs[j] = append(g.nodeDevs[j], i)
			}
		}
	}
	for _, o := range order {
		min := -1
		if nodeAware {
			if cand := g.nodeDevs[plan.NodeOf[o.s]]; len(cand) > 0 {
				min = cand[0]
				for _, i := range cand[1:] {
					if loads[i] < loads[min] {
						min = i
					}
				}
			}
		}
		if min < 0 {
			min = 0
			for i := 1; i < len(loads); i++ {
				if loads[i] < loads[min] {
					min = i
				}
			}
		}
		g.devs[min].shards = append(g.devs[min].shards, o.s)
		loads[min] += o.edges
	}
	for _, d := range g.devs {
		// Ascending shard order per device; the lists are tiny (≤ shards),
		// so an allocation-free insertion sort beats sort.Ints here.
		for i := 1; i < len(d.shards); i++ {
			v := d.shards[i]
			j := i - 1
			for j >= 0 && d.shards[j] > v {
				d.shards[j+1] = d.shards[j]
				j--
			}
			d.shards[j+1] = v
		}
	}
}

// renodeSurvivors re-runs the plan's node assignment over the alive node
// set when a whole node has died: dead nodes draw no shards and no scatter
// payload, and the cross-node scatter pays one hop per surviving remote
// node (renodeHops). The masked assignment is still a pure function of
// (batch shape, nodes, mask) — it steers modeled scheduling and
// communication only, so the degraded run's trajectory stays bitwise
// identical to the fault-free reference. Called only while the dead pool
// is non-empty; the fault-free path never reaches it.
func (g *DeviceGroup) renodeSurvivors(plan *BatchPlan, b *prep.Batch) {
	if cap(g.nodeAlive) < g.nodes {
		g.nodeAlive = make([]bool, g.nodes)
	}
	g.nodeAlive = g.nodeAlive[:g.nodes]
	for j := range g.nodeAlive {
		g.nodeAlive[j] = false
	}
	for _, d := range g.devs {
		if j := d.id / g.devsPerNode; j < g.nodes {
			g.nodeAlive[j] = true
		}
	}
	allAlive, remote := true, 0
	for j, a := range g.nodeAlive {
		if !a {
			allAlive = false
		} else if j > 0 {
			remote++
		}
	}
	if allAlive {
		return // dead devices, but every node still has survivors
	}
	plan.assignNodesMask(b, g.nodes, g.nodeAlive)
	g.renodeHops = remote
}

// groupDeviceTask is the worker-pool entry: each claimed device index runs
// its full per-batch work (all assigned shards, forward+backward).
func groupDeviceTask(ctx any, lo, hi int) {
	g := ctx.(*DeviceGroup)
	for i := lo; i < hi; i++ {
		g.runDevice(g.devs[i])
	}
}

// zeroShard clears an empty shard's reduction slots: the fold still reads
// every shard, and stale partials from a previous batch must contribute
// exact zeros.
func (g *DeviceGroup) zeroShard(s int) {
	g.lossParts[s] = 0
	for li := range g.grads[s] {
		sg := &g.grads[s][li]
		for i := range sg.dw.Data {
			sg.dw.Data[i] = 0
		}
		for i := range sg.db {
			sg.db[i] = 0
		}
	}
}

// runDevice trains every shard assigned to d for the current batch, then
// closes the device's batch scope: per-graph memos dropped, device arena
// released so MemInUse returns to zero.
func (g *DeviceGroup) runDevice(d *GroupDev) {
	before := d.Dev.Snapshot()
	for li := range d.plc {
		d.plc[li] = PlacementCount{}
	}
	for _, s := range d.shards {
		sub := &g.plan.Subs[s]
		if len(sub.Dsts) == 0 {
			g.zeroShard(s)
			continue
		}
		if err := g.runShard(d, s, sub); err != nil {
			d.err = err
			break
		}
	}
	d.cnt = d.Dev.Snapshot().Sub(before)
	d.Ctx.EndBatch()
	d.Arena.Release()
}

// runShard runs one shard's forward + backward on device d and harvests its
// per-shard gradient partials.
func (g *DeviceGroup) runShard(d *GroupDev, s int, sub *SubBatch) error {
	dim := g.batch.Embed.Dim
	x := tensor.Get(len(sub.XRows), dim)
	for i, v := range sub.XRows {
		copy(x.Row(i), g.batch.Embed.Row(v))
	}
	// The shard's payload crosses the link once per batch (pinned staging
	// under the GraphTensor disciplines, pageable otherwise).
	d.pcie.TransferBytes(sub.HostBytes, g.pinned)

	xd, err := kernels.WrapDeviceMatrix(d.Dev, x, "shard-x")
	if err != nil {
		tensor.Put(x)
		return err
	}
	for li := range sub.Layers {
		d.graphs[li] = kernels.Graphs{COO: sub.Layers[li].COO, CSR: sub.Layers[li].CSR, CSC: sub.Layers[li].CSC}
	}
	d.input.Graphs = d.gptrs
	d.input.X = xd
	d.input.Labels = sub.Labels

	fr, err := d.Model.Forward(d.Ctx, &d.input)
	if err != nil {
		return err
	}
	for li := range d.plc {
		if fr.Placement(li) == dkp.CombFirst {
			d.plc[li].CombFirst++
		} else {
			d.plc[li].AggrFirst++
		}
	}
	lossSum, dLogits := core.SoftmaxCrossEntropySum(fr.Logits.M, sub.Labels, g.norm)
	g.lossParts[s] = lossSum
	err = d.Model.Backward(d.Ctx, &d.input, fr, dLogits)
	tensor.Put(dLogits)
	fr.Logits.Free()
	xd.Free()
	tensor.Put(x)
	if err != nil {
		return err
	}
	// Harvest the shard's partials and clear the replica's accumulators so
	// the next shard starts from zero.
	for li, l := range d.Model.Layers {
		sg := &g.grads[s][li]
		copy(sg.dw.Data, l.DW.Data)
		copy(sg.db, l.DB)
		for i := range l.DW.Data {
			l.DW.Data[i] = 0
		}
		for i := range l.DB {
			l.DB[i] = 0
		}
	}
	return nil
}

// TrainBatch runs one data-parallel training step over a prepared batch:
// shard dispatch on the shared worker pool, per-shard forward+backward,
// PCIe-modeled gradient all-reduce, one deterministic SGD step on every
// replica. It returns the batch loss (identical at any device count).
func (g *DeviceGroup) TrainBatch(b *prep.Batch, lr float32) (float64, error) {
	plan, _ := b.SubBatches.(*BatchPlan)
	if plan == nil || plan.Shards != g.shards || plan.Nodes != g.nodes {
		var err error
		plan, err = PartitionBatchNodes(b, g.shards, g.nodes)
		if err != nil {
			return 0, err
		}
		b.SubBatches = plan
	}
	g.plan, g.batch, g.norm = plan, b, len(b.Labels)
	step := g.step
	g.step++

	// Fabric-traffic baseline for this step's CommBytes: taken before any
	// rejoin broadcast so the weight reinstall shows up in the accounting.
	icBytes0 := g.ic.BytesMoved()

	// Elastic membership, consulted once per batch boundary (nil plan =
	// one predicted branch): dead devices the plan rejoins re-enter the
	// group *before* any shard is assigned — revived, handed the
	// survivors' weight snapshot (paid as a modeled broadcast on the tier
	// the device sits across), gradients cleared — so the rejoined replica
	// is bitwise identical to the survivors and the trajectory never sees
	// the membership change. The network tier's degradation state is
	// refreshed from the plan at the same boundary.
	var rejoined int
	var bcastIntra, bcastInter time.Duration
	if g.fplan != nil {
		if len(g.deadPool) > 0 && len(g.devs) > 0 {
			pool := g.deadPool[:0]
			for _, d := range g.deadPool {
				if !g.fplan.DeviceRejoins(d.id, step) {
					pool = append(pool, d)
					continue
				}
				d.Dev.Revive()
				ref := g.devs[0]
				var wb int64
				for li, l := range ref.Model.Layers {
					dst := d.Model.Layers[li]
					copy(dst.W.Data, l.W.Data)
					copy(dst.B, l.B)
					wb += int64(len(l.W.Data)+len(l.B)) * 4
				}
				d.clearGrads()
				crossNode := g.devsPerNode > 0 && g.nodes > 1 &&
					d.id/g.devsPerNode != ref.id/g.devsPerNode
				dur := g.ic.Broadcast(wb, crossNode, g.pinned)
				if crossNode {
					bcastInter += dur
				} else {
					bcastIntra += dur
				}
				// Re-insert in ascending id order: ids never renumber, so
				// the rejoined device lands back in its original slot and
				// node.
				pos := len(g.devs)
				for i, gd := range g.devs {
					if gd.id > d.id {
						pos = i
						break
					}
				}
				g.devs = append(g.devs, nil)
				copy(g.devs[pos+1:], g.devs[pos:])
				g.devs[pos] = d
				rejoined++
			}
			g.deadPool = pool
			if rejoined > 0 {
				n := len(g.devs)
				g.devLoads = g.devLoads[:n]
				g.commBytes0 = g.commBytes0[:n]
				g.commNs0 = g.commNs0[:n]
				g.stall0 = g.stall0[:n]
				g.rejoinedSum += rejoined
			}
		}
		f, extra := g.fplan.LinkDegraded(step)
		g.ic.SetLinkDegradation(f, extra)
	}

	// Dispatch with deterministic fault injection and batch-granularity
	// failover: a device the plan kills fails its next shard at its first
	// allocation, the dead device is dropped, and the *whole* batch
	// replays on the survivors. The shard partition and fold order are
	// fixed by the batch shape — not the device count — and no replica
	// has applied a Step yet, so a retry is numerically invisible: the
	// loss/weight trajectory is bitwise identical to a fault-free run.
	retries := 0
	for {
		g.renodeHops = -1
		if g.devsPerNode > 0 && g.nodes > 1 && plan.Nodes == g.nodes && len(g.deadPool) > 0 {
			g.renodeSurvivors(plan, b)
		}
		g.assignShards(plan)
		for i, d := range g.devs {
			d.err = nil
			g.commBytes0[i] = d.pcie.BytesMoved()
			g.commNs0[i] = d.pcie.ModeledTime()
			g.stall0[i] = d.Dev.StallTime()
		}
		if g.fplan != nil {
			for _, d := range g.devs {
				if s := g.fplan.StallFor(d.id, step); s > 0 {
					d.Dev.InjectStall(s)
				}
				if g.fplan.DeviceDies(d.id, step) {
					d.Dev.Kill()
				}
				if g.devsPerNode > 0 && g.fplan.NodeDies(d.id/g.devsPerNode, step) {
					d.Dev.Kill()
				}
			}
		}

		sched.RunChunk(len(g.devs), 1, sched.Workers(len(g.devs)), g, groupDeviceTask)

		var devErr error
		for _, d := range g.devs {
			if d.err != nil {
				devErr = d.err
				break
			}
		}
		if devErr == nil {
			break
		}
		if !gpusim.IsDeviceLost(devErr) || !g.dropDead() {
			g.plan, g.batch = nil, nil
			return 0, devErr
		}
		for _, d := range g.devs {
			d.clearGrads()
		}
		retries++
		g.retriesSum++
	}

	// All-reduce: fold per-shard partials in ascending shard order — the
	// order is fixed by the plan, not by devices — and hand every replica
	// the identical result. The collective's modeled cost (a ring of
	// 2·(N−1) steps of size/N per device) is paid on the group's
	// interconnect, whose topology decides both its latency and how much of
	// the next batch's scatter can hide under it.
	ref := g.devs[0].Model
	var gradBytes int64
	for li := range ref.Layers {
		fd, fb := g.foldDW[li], g.foldDB[li]
		copy(fd.Data, g.grads[0][li].dw.Data)
		copy(fb, g.grads[0][li].db)
		for s := 1; s < g.shards; s++ {
			sw := g.grads[s][li].dw.Data
			for i := range fd.Data {
				fd.Data[i] += sw[i]
			}
			sb := g.grads[s][li].db
			for i := range fb {
				fb[i] += sb[i]
			}
		}
		gradBytes += int64(len(fd.Data)+len(fb)) * 4
	}
	arIntra, arInter := g.ic.AllReduceTiers(gradBytes, len(g.devs), g.pinned)
	arTime := arIntra + arInter
	var lossSum float64
	for s := 0; s < g.shards; s++ {
		lossSum += g.lossParts[s]
	}
	loss := lossSum / float64(g.norm)

	for _, d := range g.devs {
		for li, l := range d.Model.Layers {
			copy(l.DW.Data, g.foldDW[li].Data)
			copy(l.DB, g.foldDB[li])
		}
		d.Model.Step(lr)
	}

	// Step statistics: compute scales with the busiest device; the scatter
	// is the slowest device's modeled host→device time; the all-reduce
	// rides the interconnect.
	st := GroupStats{Devices: len(g.devs), Shards: g.shards, Imbalance: plan.Imbalance,
		Nodes: plan.Nodes, NodeImbalance: plan.NodeImbalance,
		DeadDevices: g.deadDevs, Retries: retries, Placements: g.plStats,
		Rejoined: rejoined, RejoinBcastTime: bcastIntra + bcastInter}
	tm := gpusim.DefaultKernelTimeModel()
	for li := range g.plStats {
		g.plStats[li] = PlacementCount{}
	}
	for i, d := range g.devs {
		for li := range d.plc {
			g.plStats[li].AggrFirst += d.plc[li].AggrFirst
			g.plStats[li].CombFirst += d.plc[li].CombFirst
		}
		st.Counters = st.Counters.Add(d.cnt)
		if d.cnt.FLOPs > st.PeakDeviceFLOPs {
			st.PeakDeviceFLOPs = d.cnt.FLOPs
		}
		stall := d.Dev.StallTime() - g.stall0[i]
		if stall > st.StallTime {
			st.StallTime = stall
		}
		if est := d.Dev.Estimate(tm, d.cnt) + stall; est > st.MaxDeviceCompute {
			st.MaxDeviceCompute = est
		}
		st.CommBytes += d.pcie.BytesMoved() - g.commBytes0[i]
		if ct := d.pcie.ModeledTime() - g.commNs0[i]; ct > st.ScatterTime {
			st.ScatterTime = ct
		}
	}
	// Cross-node scatter: every node past the producer's receives its
	// deduplicated payload over the network before its devices' PCIe
	// copies, serialized on the producer node's uplink (one hop per remote
	// node).
	devScatter := st.ScatterTime
	var netScatter time.Duration
	if plan.Nodes > 1 {
		for j := 1; j < len(plan.NodeBytes); j++ {
			st.CrossNodeBytes += plan.NodeBytes[j]
		}
		hops := plan.Nodes - 1
		if g.renodeHops >= 0 {
			// A whole-node loss re-noded the plan over the survivors: only
			// the alive remote nodes draw scatter hops.
			hops = g.renodeHops
		}
		netScatter = g.ic.InterScatter(st.CrossNodeBytes, hops)
	}
	st.ScatterTime = netScatter + devScatter
	st.AllReduceTime = arTime
	st.IntraNodeTime = devScatter + arIntra + bcastIntra
	st.InterNodeTime = netScatter + arInter + bcastInter
	// Fabric traffic beyond the per-device PCIe scatters: whatever the
	// interconnect accrued this step (collective steps on both tiers, the
	// cross-node scatter payload, and any rejoin weight broadcast).
	st.CommBytes += g.ic.BytesMoved() - icBytes0
	st.CommTime = st.ScatterTime + st.AllReduceTime + st.RejoinBcastTime
	st.StepTimeSerial = st.MaxDeviceCompute + st.CommTime

	// Overlapped schedule: this batch's scatter was issued while the
	// previous step's all-reduce drained, tier by tier. During the drain
	// window a tier's scatter progresses at (1 − contention) of its full
	// rate, so up to drain·(1−c) of scatter work leaves the critical path
	// on each tier; the exposed remainder serializes before compute as
	// usual. On a flat fabric the inter terms are zero and this is exactly
	// the single-tier schedule.
	hiddenIntra := time.Duration(float64(g.pendingIntraDrain) * (1 - g.ic.OverlapContention()))
	if hiddenIntra > devScatter {
		hiddenIntra = devScatter
	}
	hiddenInter := time.Duration(float64(g.pendingInterDrain) * (1 - g.ic.NetworkContention()))
	if hiddenInter > netScatter {
		hiddenInter = netScatter
	}
	hidden := hiddenIntra + hiddenInter
	if st.ScatterTime > 0 {
		st.OverlapEfficiency = float64(hidden) / float64(st.ScatterTime)
	}
	// The rejoin broadcast happens at the boundary, before the scatter can
	// start, so it is fully exposed on the step's critical path.
	st.StepTime = st.RejoinBcastTime + (st.ScatterTime - hidden) + st.MaxDeviceCompute + st.AllReduceTime
	g.pendingIntraDrain, g.pendingInterDrain = arIntra, arInter

	g.stats = st
	g.plan, g.batch = nil, nil
	return loss, nil
}
