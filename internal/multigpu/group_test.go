package multigpu

import (
	"runtime"
	"testing"

	"graphtensor/internal/core"
	"graphtensor/internal/datasets"
	"graphtensor/internal/dkp"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/kernels"
	"graphtensor/internal/models"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
)

// groupHarness bundles a dataset, a deterministic batch source and a model
// factory so every device-count run sees identical inputs.
type groupHarness struct {
	ds      *datasets.Dataset
	staging *gpusim.Device // plays the host staging side of prep
	params  models.Params
	model   string
	format  prep.Format
}

func newGroupHarness(t *testing.T, model string, format prep.Format) *groupHarness {
	t.Helper()
	ds, err := datasets.Generate("products", datasets.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	return &groupHarness{
		ds:      ds,
		staging: gpusim.NewDevice(gpusim.DefaultConfig()),
		model:   model,
		format:  format,
		params: models.Params{
			InDim:  ds.FeatureDim,
			Hidden: 8,
			OutDim: 8,
			Layers: 2,
			Seed:   1,
			Strategy: func() kernels.Strategy {
				if format == prep.FormatCOO {
					return kernels.GraphApproach{}
				}
				return kernels.NAPA{}
			}(),
		},
	}
}

func (h *groupHarness) factory() func() (*core.Model, error) {
	return func() (*core.Model, error) { return models.ByName(h.model, h.params) }
}

// batch prepares batch i of a deterministic schedule.
func (h *groupHarness) batch(t *testing.T, i int, size int) *prep.Batch {
	t.Helper()
	cfg := sampling.DefaultConfig()
	cfg.Seed = uint64(100 + i)
	sampler := sampling.New(h.ds.Graph, cfg)
	b, err := prep.Serial(sampler, h.ds.Features, h.ds.Labels, h.staging,
		h.ds.BatchDsts(size, uint64(i+1)), prep.Config{Format: h.format, Pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// trainRun trains `batches` batches on an nDev-device group and returns the
// losses and replica-0 weights.
func (h *groupHarness) trainRun(t *testing.T, nDev, batches, size int) ([]float64, []float32) {
	t.Helper()
	g, err := NewGroup(nDev, DefaultShards, gpusim.DefaultConfig(), true, h.factory())
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	for i := 0; i < batches; i++ {
		b := h.batch(t, i, size)
		loss, err := g.TrainBatch(b, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
		b.Release()
		for gi, d := range g.Devices() {
			if m := d.Dev.MemInUse(); m != 0 {
				t.Fatalf("nDev=%d batch %d: device %d MemInUse %d, want 0 between batches", nDev, i, gi, m)
			}
		}
	}
	// Every replica must hold identical weights after training.
	ref := g.Replica(0)
	for i := 1; i < nDev; i++ {
		if !SameWeights(ref, g.Replica(i)) {
			t.Fatalf("nDev=%d: replica %d diverged from replica 0", nDev, i)
		}
	}
	var w []float32
	for _, l := range ref.Layers {
		w = append(w, l.W.Data...)
		w = append(w, l.B...)
	}
	return losses, w
}

// TestGroupTrajectoryBitwiseAcrossDeviceCounts is the core guarantee of the
// data-parallel engine: the loss and weight trajectory is bitwise identical
// at any device count, because the gradient-shard partition and the
// all-reduce fold order are fixed by the batch shape alone.
func TestGroupTrajectoryBitwiseAcrossDeviceCounts(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	refLoss, refW := h.trainRun(t, 1, 4, 60)
	for _, nDev := range []int{2, 4, 8} {
		losses, w := h.trainRun(t, nDev, 4, 60)
		for i := range refLoss {
			if losses[i] != refLoss[i] {
				t.Errorf("nDev=%d batch %d: loss %v != 1-device %v", nDev, i, losses[i], refLoss[i])
			}
		}
		for i := range refW {
			if w[i] != refW[i] {
				t.Fatalf("nDev=%d: weight[%d] %v != 1-device %v", nDev, i, w[i], refW[i])
			}
		}
	}
}

// TestGroupTrajectoryBitwiseAcrossWorkers pins the trajectory against the
// worker pool: GOMAXPROCS must not change a single bit.
func TestGroupTrajectoryBitwiseAcrossWorkers(t *testing.T) {
	h := newGroupHarness(t, "ngcf", prep.FormatCSRCSC)
	prev := runtime.GOMAXPROCS(1)
	serialLoss, serialW := h.trainRun(t, 4, 3, 60)
	runtime.GOMAXPROCS(8)
	parLoss, parW := h.trainRun(t, 4, 3, 60)
	runtime.GOMAXPROCS(prev)
	for i := range serialLoss {
		if serialLoss[i] != parLoss[i] {
			t.Errorf("batch %d: loss %v (1 worker) != %v (8 workers)", i, serialLoss[i], parLoss[i])
		}
	}
	for i := range serialW {
		if serialW[i] != parW[i] {
			t.Fatalf("weight[%d] differs across GOMAXPROCS", i)
		}
	}
}

// newPolicyHarness builds a harness with the placement policy live: a
// heavy-feature dataset (gowalla at test scale keeps ~68-wide embeddings)
// and a narrow hidden width, so the fitted profile flips at least one
// layer of at least one shard shape to combination-first.
func newPolicyHarness(t *testing.T) *groupHarness {
	t.Helper()
	ds, err := datasets.Generate("gowalla", datasets.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	return &groupHarness{
		ds:      ds,
		staging: gpusim.NewDevice(gpusim.DefaultConfig()),
		model:   "gcn",
		format:  prep.FormatCSRCSC,
		params: models.Params{
			InDim:     ds.FeatureDim,
			Hidden:    4,
			OutDim:    4,
			Layers:    2,
			Seed:      1,
			Strategy:  kernels.NAPA{},
			EnableDKP: true,
			Policy:    dkp.NewPolicy(dkp.ProfileFor(gpusim.DefaultConfig())),
		},
	}
}

// trainRunPlacements is trainRun plus the last batch's per-layer placement
// counts (copied out of the group-owned backing array).
func (h *groupHarness) trainRunPlacements(t *testing.T, nDev, batches, size int) ([]float64, []float32, []PlacementCount) {
	t.Helper()
	g, err := NewGroup(nDev, DefaultShards, gpusim.DefaultConfig(), true, h.factory())
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	for i := 0; i < batches; i++ {
		b := h.batch(t, i, size)
		loss, err := g.TrainBatch(b, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
		b.Release()
	}
	ref := g.Replica(0)
	for i := 1; i < nDev; i++ {
		if !SameWeights(ref, g.Replica(i)) {
			t.Fatalf("nDev=%d: replica %d diverged from replica 0", nDev, i)
		}
	}
	var w []float32
	for _, l := range ref.Layers {
		w = append(w, l.W.Data...)
		w = append(w, l.B...)
	}
	pl := append([]PlacementCount(nil), g.LastStats().Placements...)
	return losses, w, pl
}

// TestGroupPolicyPlacementTrajectory unpins the data-parallel engine: with
// the fitted placement policy live (Dynamic-GT in a group), the loss and
// weight trajectory must stay bitwise identical at 1/2/4/8 devices and
// across GOMAXPROCS — the gradient-shard partition is a pure function of
// the batch shape, so every shard shape (and hence every policy decision)
// is device-count-independent. The per-layer placement counts must agree
// across device counts too, and the run must actually exercise both
// placements: a policy that never chooses combination-first here would be
// a silently dead policy.
func TestGroupPolicyPlacementTrajectory(t *testing.T) {
	h := newPolicyHarness(t)
	refLoss, refW, refPl := h.trainRunPlacements(t, 1, 3, 60)
	var nAggr, nComb int
	for _, pc := range refPl {
		nAggr += pc.AggrFirst
		nComb += pc.CombFirst
	}
	if nComb == 0 {
		t.Fatalf("policy never chose combination-first over the shard shapes: %+v", refPl)
	}
	if nAggr == 0 {
		t.Fatalf("policy never chose aggregation-first over the shard shapes: %+v", refPl)
	}
	for _, nDev := range []int{2, 4, 8} {
		losses, w, pl := h.trainRunPlacements(t, nDev, 3, 60)
		for i := range refLoss {
			if losses[i] != refLoss[i] {
				t.Errorf("nDev=%d batch %d: loss %v != 1-device %v", nDev, i, losses[i], refLoss[i])
			}
		}
		for i := range refW {
			if w[i] != refW[i] {
				t.Fatalf("nDev=%d: weight[%d] %v != 1-device %v (policy broke device-count invariance)", nDev, i, w[i], refW[i])
			}
		}
		for li := range refPl {
			if pl[li] != refPl[li] {
				t.Errorf("nDev=%d layer %d: placement counts %+v != 1-device %+v", nDev, li, pl[li], refPl[li])
			}
		}
	}
	// GOMAXPROCS must not perturb a policy-live trajectory either.
	prev := runtime.GOMAXPROCS(1)
	oneLoss, oneW, _ := h.trainRunPlacements(t, 4, 3, 60)
	runtime.GOMAXPROCS(8)
	parLoss, parW, _ := h.trainRunPlacements(t, 4, 3, 60)
	runtime.GOMAXPROCS(prev)
	for i := range oneLoss {
		if oneLoss[i] != parLoss[i] {
			t.Errorf("batch %d: policy-live loss %v (1 worker) != %v (8 workers)", i, oneLoss[i], parLoss[i])
		}
	}
	for i := range oneW {
		if oneW[i] != parW[i] {
			t.Fatalf("policy-live weight[%d] differs across GOMAXPROCS", i)
		}
	}
}

// TestGroupCOOFormat trains the Graph-approach (COO shards, on-device
// translation) through the group: the engine is format-agnostic.
func TestGroupCOOFormat(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCOO)
	refLoss, refW := h.trainRun(t, 1, 2, 50)
	losses, w := h.trainRun(t, 4, 2, 50)
	for i := range refLoss {
		if losses[i] != refLoss[i] {
			t.Errorf("batch %d: COO loss %v != 1-device %v", i, losses[i], refLoss[i])
		}
	}
	for i := range refW {
		if w[i] != refW[i] {
			t.Fatalf("COO weight[%d] differs across device counts", i)
		}
	}
}

// TestGroupBatchSmallerThanShards exercises empty gradient shards (batch of
// 5 dsts under 8 shards): they must contribute exact zeros, not stale
// partials.
func TestGroupBatchSmallerThanShards(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	refLoss, _ := h.trainRun(t, 1, 3, 5)
	losses, _ := h.trainRun(t, 4, 3, 5)
	for i := range refLoss {
		if losses[i] != refLoss[i] {
			t.Errorf("tiny batch %d: loss %v != 1-device %v", i, losses[i], refLoss[i])
		}
	}
}

// TestPartitionBatchCoversBatch checks the decomposition invariants: shard
// dsts partition the batch's dst set, per-layer local edges sum to the
// parent layer's edges, and local graphs chain (layer li src space ==
// layer li-1 dst count).
func TestPartitionBatchCoversBatch(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	b := h.batch(t, 0, 80)
	defer b.Release()
	plan, err := PartitionBatch(b, DefaultShards)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Imbalance < 1.0 {
		t.Errorf("imbalance %f below 1.0", plan.Imbalance)
	}
	seen := map[int]int{}
	edges := make([]int, len(b.Layers))
	for _, sub := range plan.Subs {
		for _, d := range sub.Dsts {
			seen[int(d)]++
		}
		for li, l := range sub.Layers {
			edges[li] += l.CSR.NumEdges()
			if l.CSC == nil {
				t.Fatal("CSR+CSC parent must produce CSC shards")
			}
			if li > 0 && l.CSR.NumSrc != sub.Layers[li-1].CSR.NumDst {
				t.Fatalf("shard %d: layer %d src space %d != layer %d dsts %d",
					sub.Shard, li, l.CSR.NumSrc, li-1, sub.Layers[li-1].CSR.NumDst)
			}
		}
		if len(sub.XRows) != sub.Layers[0].CSR.NumSrc {
			t.Fatalf("shard %d: %d X rows for %d layer-1 srcs", sub.Shard, len(sub.XRows), sub.Layers[0].CSR.NumSrc)
		}
	}
	for d := 0; d < len(b.Labels); d++ {
		if seen[d] != 1 {
			t.Errorf("batch dst %d owned by %d shards, want exactly 1", d, seen[d])
		}
	}
	// The final layer's edges partition exactly; lower layers replicate
	// halo rows across shards, so their shard sum can only grow.
	last := len(b.Layers) - 1
	if edges[last] != b.Layers[last].CSR.NumEdges() {
		t.Errorf("final layer: shard edges sum %d != parent %d", edges[last], b.Layers[last].CSR.NumEdges())
	}
	for li := 0; li < last; li++ {
		if edges[li] < b.Layers[li].CSR.NumEdges() {
			t.Errorf("layer %d: shard edges sum %d below parent %d", li, edges[li], b.Layers[li].CSR.NumEdges())
		}
	}
}

// TestGroupCommAccounting: multi-device steps must report all-reduce
// traffic; a single device pays none.
func TestGroupCommAccounting(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	run := func(nDev int) GroupStats {
		g, err := NewGroup(nDev, DefaultShards, gpusim.DefaultConfig(), true, h.factory())
		if err != nil {
			t.Fatal(err)
		}
		b := h.batch(t, 0, 60)
		defer b.Release()
		if _, err := g.TrainBatch(b, 0.05); err != nil {
			t.Fatal(err)
		}
		return g.LastStats()
	}
	one, four := run(1), run(4)
	if one.PeakDeviceFLOPs <= four.PeakDeviceFLOPs {
		t.Errorf("peak device FLOPs should fall with devices: 1-dev %d vs 4-dev %d",
			one.PeakDeviceFLOPs, four.PeakDeviceFLOPs)
	}
	if one.MaxDeviceCompute <= four.MaxDeviceCompute {
		t.Errorf("busiest-device compute should fall with devices: 1-dev %v vs 4-dev %v",
			one.MaxDeviceCompute, four.MaxDeviceCompute)
	}
	// Total link traffic grows with devices: the all-reduce plus the halo
	// rows replicated into several devices' sub-batches.
	if four.CommBytes <= one.CommBytes {
		t.Errorf("4-device comm bytes %d should exceed 1-device %d", four.CommBytes, one.CommBytes)
	}
	if four.CommTime <= 0 || one.CommTime <= 0 {
		t.Error("comm time must be accounted (input scatter + all-reduce)")
	}
	if got := four.MaxDeviceCompute + four.CommTime; four.StepTime != got {
		t.Errorf("StepTime %v != compute+comm %v", four.StepTime, got)
	}
}

// TestGroupRejectsMoreDevicesThanShards: idle devices would be silent
// waste; the constructor refuses them.
func TestGroupRejectsMoreDevicesThanShards(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	if _, err := NewGroup(9, 8, gpusim.DefaultConfig(), true, h.factory()); err == nil {
		t.Fatal("expected error for 9 devices over 8 shards")
	}
}
