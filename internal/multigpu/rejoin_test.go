package multigpu

import (
	"testing"
	"time"

	"graphtensor/internal/fault"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/prep"
)

// trainRunFaultAt is trainRunFault with an explicit device config — the
// fault-domain guards need hierarchical fabrics — and per-batch stats.
func (h *groupHarness) trainRunFaultAt(t *testing.T, cfg gpusim.Config, nDev, batches, size int,
	p *fault.Plan) ([]float64, []float32, *DeviceGroup, []GroupStats) {
	t.Helper()
	g, err := NewGroup(nDev, DefaultShards, cfg, true, h.factory())
	if err != nil {
		t.Fatal(err)
	}
	g.SetFaultPlan(p)
	var losses []float64
	var stats []GroupStats
	for i := 0; i < batches; i++ {
		b := h.batch(t, i, size)
		loss, err := g.TrainBatch(b, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
		stats = append(stats, g.LastStats())
		b.Release()
		for gi, d := range g.Devices() {
			if m := d.Dev.MemInUse(); m != 0 {
				t.Fatalf("batch %d: device %d MemInUse %d, want 0 between batches", i, gi, m)
			}
		}
	}
	ref := g.Replica(0)
	for i := 1; i < g.NumDevices(); i++ {
		if !SameWeights(ref, g.Replica(i)) {
			t.Fatalf("replica %d diverged from replica 0 after faults", i)
		}
	}
	var w []float32
	for _, l := range ref.Layers {
		w = append(w, l.W.Data...)
		w = append(w, l.B...)
	}
	return losses, w, g, stats
}

// TestGroupNodeKillRejoinBitwise is the fault-domain + elastic-membership
// guarantee in one run: a whole node dies at one batch boundary (both its
// devices, correlated), the group re-nodes onto the survivors and replays
// the batch, both devices later rejoin — weight snapshot reinstalled, paid
// as a modeled cross-node broadcast — and a link-degradation window rides
// the middle of the run. The loss/weight trajectory must stay bitwise
// identical to a fault-free single-device run throughout, and the
// membership events must be visible in the per-tier accounting.
func TestGroupNodeKillRejoinBitwise(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	refLoss, refW := h.trainRun(t, 1, 6, 60)

	cfg := gpusim.DefaultConfig()
	cfg.Interconnect = gpusim.HierarchicalInterconnect(2)
	plan := fault.Schedule().
		KillNode(1, 1).            // devices 2 and 3 die at batch 1's boundary
		Rejoin(2, 3).Rejoin(3, 3). // both re-enter at batch 3
		DegradeLink(2, 2, 0.5, time.Millisecond)
	losses, w, g, stats := h.trainRunFaultAt(t, cfg, 4, 6, 60, plan)

	for i := range refLoss {
		if losses[i] != refLoss[i] {
			t.Errorf("batch %d: loss %v under node kill/rejoin != fault-free %v", i, losses[i], refLoss[i])
		}
	}
	for i := range refW {
		if w[i] != refW[i] {
			t.Fatalf("weight[%d] %v != fault-free %v — fault domains changed numerics", i, w[i], refW[i])
		}
	}

	if g.NumDevices() != 4 {
		t.Fatalf("group has %d devices after rejoin, want the full 4", g.NumDevices())
	}
	if g.DeadDevices() != 2 || g.Rejoined() != 2 {
		t.Fatalf("lifetime DeadDevices=%d Rejoined=%d, want 2/2", g.DeadDevices(), g.Rejoined())
	}
	for i, d := range g.Devices() {
		if d.id != i {
			t.Fatalf("device slot %d holds id %d after rejoin; ids must stay ascending", i, d.id)
		}
	}

	// Batch 1: the node kill forces one whole-batch replay on node 0.
	if stats[1].Retries != 1 || stats[1].DeadDevices != 2 {
		t.Errorf("kill batch recorded Retries=%d DeadDevices=%d, want 1/2", stats[1].Retries, stats[1].DeadDevices)
	}
	if stats[1].Devices != 2 {
		t.Errorf("kill batch reports %d devices, want the surviving 2", stats[1].Devices)
	}
	// Batch 2: the survivors all sit on node 0, so nothing crosses the
	// network — the re-noded plan assigns no shard (and no payload) to the
	// dead node.
	if stats[2].CrossNodeBytes != 0 || stats[2].InterNodeTime != 0 {
		t.Errorf("re-noded batch still paid the network: bytes=%d time=%v",
			stats[2].CrossNodeBytes, stats[2].InterNodeTime)
	}
	// Batch 3: both rejoins land, each paying a cross-node weight
	// broadcast on the network tier.
	if stats[3].Rejoined != 2 {
		t.Errorf("rejoin batch recorded Rejoined=%d, want 2", stats[3].Rejoined)
	}
	if stats[3].RejoinBcastTime <= 0 {
		t.Errorf("rejoin batch shows no weight-broadcast time")
	}
	if stats[3].Devices != 4 {
		t.Errorf("rejoin batch reports %d devices, want 4", stats[3].Devices)
	}
	for i, st := range stats {
		if st.IntraNodeTime+st.InterNodeTime != st.CommTime {
			t.Errorf("batch %d: tier split %v + %v != CommTime %v — rejoin broadcast broke the invariant",
				i, st.IntraNodeTime, st.InterNodeTime, st.CommTime)
		}
		if i != 3 && (st.Rejoined != 0 || st.RejoinBcastTime != 0) {
			t.Errorf("batch %d: spurious rejoin accounting Rejoined=%d bcast=%v", i, st.Rejoined, st.RejoinBcastTime)
		}
	}
	// Batch 4 runs the full fabric again: shards cross nodes once more.
	if stats[4].CrossNodeBytes <= 0 {
		t.Errorf("post-rejoin batch moved no cross-node bytes; node 1 never came back")
	}
}

// TestGroupRejoinBroadcastTierAccounting pins the rejoin broadcast's tier:
// a device rejoining a *flat* group pays its weight reinstall on the intra
// tier (there is no network), and the modeled bytes land in CommBytes.
func TestGroupRejoinBroadcastTierAccounting(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	plan := fault.Schedule().Kill(1, 0).Rejoin(1, 2)
	_, _, g, stats := h.trainRunFaultAt(t, gpusim.DefaultConfig(), 2, 3, 60, plan)

	if g.Rejoined() != 1 || g.NumDevices() != 2 {
		t.Fatalf("Rejoined=%d devices=%d, want 1/2", g.Rejoined(), g.NumDevices())
	}
	st := stats[2]
	if st.Rejoined != 1 || st.RejoinBcastTime <= 0 {
		t.Fatalf("rejoin batch stats Rejoined=%d bcast=%v", st.Rejoined, st.RejoinBcastTime)
	}
	if st.InterNodeTime != 0 {
		t.Fatalf("flat-group rejoin paid the network tier: %v", st.InterNodeTime)
	}
	if st.IntraNodeTime != st.CommTime {
		t.Fatalf("flat tier split: intra %v != CommTime %v", st.IntraNodeTime, st.CommTime)
	}
	// The broadcast is exposed at the boundary: CommBytes must include the
	// full weight snapshot beyond what the fault-free batch moves.
	var wb int64
	for _, l := range g.Replica(0).Layers {
		wb += int64(len(l.W.Data)+len(l.B)) * 4
	}
	if st.CommBytes <= stats[1].CommBytes || st.CommBytes-stats[1].CommBytes < wb {
		t.Errorf("rejoin batch CommBytes %d vs prior %d does not cover the %d-byte snapshot",
			st.CommBytes, stats[1].CommBytes, wb)
	}
}

// TestGroupLinkDegradeModeledOnly: a degradation window slows the modeled
// network tier for exactly its steps — and nothing else. Trajectory,
// shard partition and fold order never see it.
func TestGroupLinkDegradeModeledOnly(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	cfg := gpusim.DefaultConfig()
	cfg.Interconnect = gpusim.HierarchicalInterconnect(2)

	_, refW, _, refStats := h.trainRunFaultAt(t, cfg, 4, 3, 60, fault.Schedule())
	plan := fault.Schedule().DegradeLink(1, 1, 0.25, time.Millisecond)
	_, w, _, stats := h.trainRunFaultAt(t, cfg, 4, 3, 60, plan)

	for i := range refW {
		if w[i] != refW[i] {
			t.Fatalf("weight[%d] changed under link degradation — modeled time leaked into numerics", i)
		}
	}
	if stats[1].InterNodeTime <= refStats[1].InterNodeTime {
		t.Errorf("degraded batch inter tier %v should exceed healthy %v",
			stats[1].InterNodeTime, refStats[1].InterNodeTime)
	}
	if stats[1].IntraNodeTime != refStats[1].IntraNodeTime {
		t.Errorf("degradation leaked onto the intra tier: %v vs %v",
			stats[1].IntraNodeTime, refStats[1].IntraNodeTime)
	}
	for _, i := range []int{0, 2} {
		if stats[i].InterNodeTime != refStats[i].InterNodeTime {
			t.Errorf("batch %d outside the window: inter tier %v != healthy %v",
				i, stats[i].InterNodeTime, refStats[i].InterNodeTime)
		}
	}
}

// TestAssignShardsNodeGlobalFallback drives assignShards' global-fallback
// path directly: a *stale* plan still routing shards to a node whose
// devices all died must fall back to the globally lightest survivor for
// those shards — scheduling only, every shard still runs somewhere. (The
// TrainBatch path re-nodes the plan before assigning, so only a direct
// call reaches the fallback.)
func TestAssignShardsNodeGlobalFallback(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	cfg := gpusim.DefaultConfig()
	cfg.Interconnect = gpusim.HierarchicalInterconnect(2)
	g, err := NewGroup(4, DefaultShards, cfg, true, h.factory())
	if err != nil {
		t.Fatal(err)
	}
	b := h.batch(t, 0, 60)
	defer b.Release()
	plan, err := PartitionBatchNodes(b, DefaultShards, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	node1Shards := 0
	for _, j := range plan.NodeOf {
		if j == 1 {
			node1Shards++
		}
	}
	if node1Shards == 0 {
		t.Fatal("plan assigned no shards to node 1; fallback untestable")
	}

	// Kill every device on node 1 and shrink, keeping the plan stale.
	g.Devices()[2].Dev.Kill()
	g.Devices()[3].Dev.Kill()
	if !g.dropDead() {
		t.Fatal("dropDead found no dead devices")
	}
	g.assignShards(plan)

	assigned := 0
	for _, d := range g.Devices() {
		if d.id/2 != 0 {
			t.Fatalf("surviving device %d is not on node 0", d.id)
		}
		assigned += len(d.shards)
		for i := 1; i < len(d.shards); i++ {
			if d.shards[i] <= d.shards[i-1] {
				t.Fatalf("device %d shard list not ascending: %v", d.id, d.shards)
			}
		}
	}
	if assigned != DefaultShards {
		t.Fatalf("%d of %d shards assigned; dead node's shards were dropped", assigned, DefaultShards)
	}
}
