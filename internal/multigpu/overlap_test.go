package multigpu

import (
	"testing"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/prep"
)

// TestGroupOverlapAccounting pins the overlapped schedule's bookkeeping:
// the first batch has no preceding all-reduce to hide behind; from the
// second batch on, part of the scatter leaves the critical path and the
// overlapped step time beats the serialized one. Numerics must not notice:
// the losses are identical whether or not overlap is modeled.
func TestGroupOverlapAccounting(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	g, err := NewGroup(4, DefaultShards, gpusim.DefaultConfig(), true, h.factory())
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	var stats []GroupStats
	for i := 0; i < 3; i++ {
		b := h.batch(t, i, 60)
		loss, err := g.TrainBatch(b, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
		stats = append(stats, g.LastStats())
		b.Release()
	}

	first, second := stats[0], stats[1]
	if first.OverlapEfficiency != 0 {
		t.Errorf("first batch overlap efficiency %v, want 0 (no preceding drain)", first.OverlapEfficiency)
	}
	if first.StepTime != first.StepTimeSerial {
		t.Errorf("first batch StepTime %v != serial %v", first.StepTime, first.StepTimeSerial)
	}
	if second.OverlapEfficiency <= 0 {
		t.Errorf("steady-state overlap efficiency %v, want > 0", second.OverlapEfficiency)
	}
	if second.StepTime >= second.StepTimeSerial {
		t.Errorf("overlapped step %v should beat serial %v", second.StepTime, second.StepTimeSerial)
	}
	for _, st := range stats {
		if st.CommTime != st.ScatterTime+st.AllReduceTime {
			t.Errorf("CommTime %v != scatter %v + all-reduce %v", st.CommTime, st.ScatterTime, st.AllReduceTime)
		}
		if st.StepTimeSerial != st.MaxDeviceCompute+st.CommTime {
			t.Errorf("StepTimeSerial %v != compute+comm %v", st.StepTimeSerial, st.MaxDeviceCompute+st.CommTime)
		}
		if st.AllReduceTime <= 0 {
			t.Error("multi-device step must account all-reduce time")
		}
	}

	// Exactness: the trajectory must not depend on the interconnect model.
	nv := gpusim.DefaultConfig()
	nv.Interconnect = gpusim.NVLinkInterconnect()
	gn, err := NewGroup(4, DefaultShards, nv, true, h.factory())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b := h.batch(t, i, 60)
		loss, err := gn.TrainBatch(b, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if loss != losses[i] {
			t.Errorf("batch %d: NVLink loss %v != PCIe-ring loss %v", i, loss, losses[i])
		}
		b.Release()
	}
	nvSt := gn.LastStats()
	if nvSt.AllReduceTime >= stats[2].AllReduceTime {
		t.Errorf("NVLink all-reduce %v should beat the PCIe ring's %v", nvSt.AllReduceTime, stats[2].AllReduceTime)
	}
	if nvSt.OverlapEfficiency < stats[2].OverlapEfficiency-1e-9 && nvSt.ScatterTime > 0 && nvSt.AllReduceTime > nvSt.ScatterTime {
		t.Errorf("uncontended NVLink overlap %v should not trail the PCIe ring's %v",
			nvSt.OverlapEfficiency, stats[2].OverlapEfficiency)
	}
}

// subBatchEqual deep-compares the observable fields of two sub-batches.
func subBatchEqual(t *testing.T, tag string, a, b *SubBatch) {
	t.Helper()
	if a.Shard != b.Shard || a.Edges != b.Edges || a.HostBytes != b.HostBytes {
		t.Fatalf("%s: shard scalar mismatch (%d/%d, %d/%d, %d/%d)",
			tag, a.Shard, b.Shard, a.Edges, b.Edges, a.HostBytes, b.HostBytes)
	}
	vids := func(name string, x, y []int32) {
		if len(x) != len(y) {
			t.Fatalf("%s: %s length %d != %d", tag, name, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s: %s[%d] %d != %d", tag, name, i, x[i], y[i])
			}
		}
	}
	vids("dsts", a.Dsts, b.Dsts)
	vids("xrows", a.XRows, b.XRows)
	vids("labels", a.Labels, b.Labels)
	if len(a.Layers) != len(b.Layers) {
		t.Fatalf("%s: layer count %d != %d", tag, len(a.Layers), len(b.Layers))
	}
	for li := range a.Layers {
		la, lb := a.Layers[li], b.Layers[li]
		if (la.CSR == nil) != (lb.CSR == nil) || (la.CSC == nil) != (lb.CSC == nil) || (la.COO == nil) != (lb.COO == nil) {
			t.Fatalf("%s: layer %d format mismatch", tag, li)
		}
		if la.CSR != nil {
			vids("csr.ptr", la.CSR.Ptr, lb.CSR.Ptr)
			vids("csr.srcs", la.CSR.Srcs, lb.CSR.Srcs)
		}
		if la.CSC != nil {
			vids("csc.ptr", la.CSC.Ptr, lb.CSC.Ptr)
			vids("csc.dsts", la.CSC.Dsts, lb.CSC.Dsts)
		}
		if la.COO != nil {
			vids("coo.src", la.COO.Src, lb.COO.Src)
			vids("coo.dst", la.COO.Dst, lb.COO.Dst)
		}
	}
}

// TestPartitionBatchReuseBitwise: rebuilding a recycled plan in place over
// a different batch must produce exactly the partition a fresh
// PartitionBatch computes — shape-derived reuse, not shape-dependent drift.
func TestPartitionBatchReuseBitwise(t *testing.T) {
	for _, format := range []prep.Format{prep.FormatCSRCSC, prep.FormatCOO} {
		h := newGroupHarness(t, "gcn", format)
		bA := h.batch(t, 0, 70)
		bB := h.batch(t, 1, 55) // different shape than A
		defer bA.Release()
		defer bB.Release()

		recycled, err := PartitionBatch(bA, DefaultShards)
		if err != nil {
			t.Fatal(err)
		}
		recycled.Recycle()
		reused, err := PartitionBatchReuse(bB, DefaultShards, recycled)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := PartitionBatch(bB, DefaultShards)
		if err != nil {
			t.Fatal(err)
		}
		if reused != recycled {
			t.Fatal("PartitionBatchReuse must rebuild the recycled plan in place")
		}
		if reused.Shards != fresh.Shards || reused.Imbalance != fresh.Imbalance {
			t.Fatalf("plan scalars differ: %d/%f vs %d/%f",
				reused.Shards, reused.Imbalance, fresh.Shards, fresh.Imbalance)
		}
		for s := range fresh.Subs {
			subBatchEqual(t, format.String(), &reused.Subs[s], &fresh.Subs[s])
		}
	}
}
