package multigpu

import (
	"testing"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/kernels"
	"graphtensor/internal/tensor"
)

func randomBCSR(seed int64, nDst, nSrc, maxDeg int) *graph.BCSR {
	r := uint64(seed)*2862933555777941757 + 7
	next := func(mod int) int {
		r = r*6364136223846793005 + 1442695040888963407
		return int((r >> 33) % uint64(mod))
	}
	coo := &graph.BCOO{NumDst: nDst, NumSrc: nSrc}
	for d := 0; d < nDst; d++ {
		deg := 1 + next(maxDeg)
		for i := 0; i < deg; i++ {
			coo.Src = append(coo.Src, graph.VID(next(nSrc)))
			coo.Dst = append(coo.Dst, graph.VID(d))
		}
	}
	csr, _ := graph.BCOOToBCSR(coo)
	return csr
}

func testCfg() gpusim.Config {
	c := gpusim.DefaultConfig()
	c.NumSMs = 8
	return c
}

func TestBalanceDistributesEdges(t *testing.T) {
	csr := randomBCSR(1, 100, 150, 8)
	plan := BalanceByEdges(csr, 4, testCfg())
	if len(plan.Partitions) != 4 {
		t.Fatalf("%d partitions, want 4", len(plan.Partitions))
	}
	total := 0
	for _, p := range plan.Partitions {
		total += p.Edges
	}
	if total != csr.NumEdges() {
		t.Errorf("partitioned edges %d != total %d", total, csr.NumEdges())
	}
	// Greedy LPT should keep imbalance modest.
	if plan.Imbalance > 1.5 {
		t.Errorf("imbalance %.2f too high", plan.Imbalance)
	}
}

func TestEveryDstAssignedOnce(t *testing.T) {
	csr := randomBCSR(2, 60, 90, 6)
	plan := BalanceByEdges(csr, 3, testCfg())
	seen := map[graph.VID]int{}
	for _, p := range plan.Partitions {
		for _, d := range p.DstIDs {
			seen[d]++
		}
	}
	for d := graph.VID(0); d < 60; d++ {
		if seen[d] != 1 {
			t.Errorf("dst %d assigned %d times", d, seen[d])
		}
	}
}

func TestMultiGPUForwardMatchesSingle(t *testing.T) {
	csr := randomBCSR(3, 50, 80, 6)
	x := tensor.Random(80, 8, 1, tensor.NewRNG(3))
	m := kernels.NGCFModes()

	// Single-device reference.
	dev := gpusim.NewDevice(testCfg())
	ctx := kernels.NewCtx(dev)
	xd, _ := kernels.WrapDeviceMatrix(dev, x.Clone(), "x")
	ref, err := kernels.NAPA{}.Forward(ctx, &kernels.Graphs{CSR: csr}, xd, m)
	if err != nil {
		t.Fatal(err)
	}

	for _, nGPU := range []int{1, 2, 4} {
		plan := BalanceByEdges(csr, nGPU, testCfg())
		res, err := plan.Forward(x, m)
		if err != nil {
			t.Fatal(err)
		}
		if diff := res.Out.MaxAbsDiff(ref.M); diff > 2e-5 {
			t.Errorf("nGPU=%d: partitioned output differs by %g", nGPU, diff)
		}
	}
}

func TestMoreGPUsLowerPerDeviceWork(t *testing.T) {
	csr := randomBCSR(4, 200, 300, 10)
	x := tensor.Random(300, 16, 1, tensor.NewRNG(4))
	m := kernels.GCNModes()

	maxFLOPs := func(nGPU int) int64 {
		plan := BalanceByEdges(csr, nGPU, testCfg())
		res, err := plan.Forward(x, m)
		if err != nil {
			t.Fatal(err)
		}
		var mx int64
		for _, f := range res.PerDeviceFLOPs {
			if f > mx {
				mx = f
			}
		}
		return mx
	}
	one := maxFLOPs(1)
	four := maxFLOPs(4)
	if four >= one {
		t.Errorf("4-GPU peak device FLOPs %d should be below 1-GPU %d", four, one)
	}
}
