// Package multigpu is the data-parallel execution layer over simulated
// devices. It grew out of the ROC multi-GPU load-balancing design point
// (§VII [19]) — a sampled subgraph's destination vertices partitioned
// across N simulated GPUs so each device holds a roughly equal share of
// the *edges* (not vertices), balancing the SpMM workload — and now
// provides two layers on top of that partitioner:
//
//   - Plan / Plan.Forward: the original forward-only demo. A balanced
//     partition of one subgraph, each partition running the NAPA forward on
//     its own device, results reassembled into the global dst ordering.
//   - DeviceGroup (group.go): the full data-parallel training engine. A
//     persistent set of devices, each owning its kernels.Ctx and a
//     batch-scoped device arena, training whole batches with forward +
//     backward per device and a PCIe-modeled gradient all-reduce.
//
// ROC uses CSR only for this cross-GPU balancing, not for thread
// scheduling, so it still pays format translation on each device — a point
// the harness can measure by comparing the partitioned edge-wise
// (Graph-approach) path against the partitioned NAPA path.
package multigpu

import (
	"sync"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/kernels"
	"graphtensor/internal/sched"
	"graphtensor/internal/tensor"
)

// AssignByEdges partitions csr's dst vertices into n groups holding
// near-equal edge counts, using longest-processing-time-first greedy bin
// packing (dsts sorted by degree, each assigned to the currently lightest
// group, ties broken by lowest id so the partition is a pure function of
// the graph shape). It returns the per-group dst lists (each ascending) and
// the edge imbalance maxEdges/meanEdges (1.0 = perfect).
//
// This is ROC's balanced-SpMM heuristic; the DeviceGroup also uses it with
// a fixed, device-count-independent n to carve gradient shards, which is
// what keeps the training trajectory bitwise identical at any device count.
func AssignByEdges(csr *graph.BCSR, n int) ([][]graph.VID, float64) {
	if n < 1 {
		n = 1
	}
	// One LPT implementation serves both entry points: the slot-recycled
	// plan path (BatchPlan.assignByEdges, group.go) is the single source of
	// truth, and this allocating wrapper reads the assignment back out.
	p := &BatchPlan{Subs: make([]SubBatch, n)}
	p.assignByEdges(csr, n)
	assign := make([][]graph.VID, n)
	for g := range assign {
		assign[g] = p.Subs[g].Dsts
	}
	return assign, p.Imbalance
}

// Partition is one GPU's share of the dst vertices and its local subgraph.
type Partition struct {
	Device *gpusim.Device
	// Ctx is the partition's persistent kernel context (workspace + memos),
	// reused across Forward calls instead of rebuilt per launch.
	Ctx *kernels.Ctx
	// DstIDs are the original (pre-partition) dst VIDs assigned here.
	DstIDs []graph.VID
	// Local is the induced bipartite subgraph on those dsts (src space is
	// shared — every device can read any src embedding).
	Local *graph.BCSR
	Edges int
}

// Plan is a balanced assignment of a subgraph across N devices.
type Plan struct {
	Partitions []Partition
	// Imbalance is maxEdges/meanEdges across partitions (1.0 = perfect).
	Imbalance float64
}

// BalanceByEdges partitions csr's dst vertices across nGPU devices so each
// device holds a near-equal edge count (see AssignByEdges).
func BalanceByEdges(csr *graph.BCSR, nGPU int, cfg gpusim.Config) *Plan {
	assign, imbalance := AssignByEdges(csr, nGPU)
	plan := &Plan{Partitions: make([]Partition, len(assign)), Imbalance: imbalance}
	for g := range assign {
		local := inducedSubgraph(csr, assign[g])
		dev := gpusim.NewDevice(cfg)
		plan.Partitions[g] = Partition{
			Device: dev,
			Ctx:    kernels.NewCtx(dev),
			DstIDs: assign[g],
			Local:  local,
			Edges:  local.NumEdges(),
		}
	}
	return plan
}

// inducedSubgraph builds the bipartite CSR holding only the assigned dsts'
// edges. Dst and src IDs keep their GLOBAL numbering (dsts and srcs share
// the batch embedding table, so renumbering would break embedding lookup);
// unassigned dsts simply have empty rows. The local NAPA forward therefore
// computes correct rows for the assigned dsts and zero rows elsewhere. The
// COO staging is pool-drawn and returned after the translation.
func inducedSubgraph(csr *graph.BCSR, dsts []graph.VID) *graph.BCSR {
	m := 0
	for _, d := range dsts {
		m += csr.Degree(d)
	}
	srcp, dstp := graph.GetVIDs(m), graph.GetVIDs(m)
	coo := &graph.BCOO{NumDst: csr.NumDst, NumSrc: csr.NumSrc, Src: *srcp, Dst: *dstp}
	e := 0
	for _, origD := range dsts {
		for _, s := range csr.Neighbors(origD) {
			coo.Src[e] = s
			coo.Dst[e] = origD
			e++
		}
	}
	out, _ := graph.BCOOToBCSR(coo)
	graph.PutVIDs(srcp)
	graph.PutVIDs(dstp)
	return out
}

// ForwardResult holds per-device NAPA outputs reassembled into the global
// dst ordering.
type ForwardResult struct {
	// Out[d] is the aggregation for original dst d. The storage is
	// pool-drawn; call Release when done with it.
	Out *tensor.Matrix
	// PerDeviceFLOPs[g] is device g's FLOP count.
	PerDeviceFLOPs []int64
}

// Release returns the reassembled output to the tensor pool.
func (r *ForwardResult) Release() {
	tensor.Put(r.Out)
	r.Out = nil
}

// planRun carries one Plan.Forward dispatch onto the shared worker pool;
// instances are pooled so steady-state calls allocate no dispatch state.
type planRun struct {
	p    *Plan
	x    *tensor.Matrix
	m    kernels.Modes
	out  *tensor.Matrix
	fl   []int64
	errs []error
}

var planRunPool = sync.Pool{New: func() any { return new(planRun) }}

// planForwardTask runs partitions [lo,hi): each claimed partition is
// processed start to finish by exactly one participant, writing only its
// own dst rows, FLOP slot and error slot.
func planForwardTask(ctx any, lo, hi int) {
	r := ctx.(*planRun)
	for g := lo; g < hi; g++ {
		part := &r.p.Partitions[g]
		xc := tensor.Get(r.x.Rows, r.x.Cols)
		copy(xc.Data, r.x.Data)
		xd, err := kernels.WrapDeviceMatrix(part.Device, xc, "x")
		if err != nil {
			tensor.Put(xc)
			r.errs[g] = err
			continue
		}
		before := part.Device.Snapshot()
		out, err := kernels.NAPA{}.Forward(part.Ctx, &kernels.Graphs{CSR: part.Local}, xd, r.m)
		if err != nil {
			xd.Free()
			tensor.Put(xc)
			r.errs[g] = err
			continue
		}
		r.fl[g] = part.Device.Snapshot().Sub(before).FLOPs
		// Local dst IDs are global; copy only the assigned rows.
		for _, origD := range part.DstIDs {
			copy(r.out.Row(int(origD)), out.M.Row(int(origD)))
		}
		out.Free()
		xd.Free()
		tensor.Put(xc)
	}
}

// Forward runs NAPA.Forward on every partition — dispatched as one region
// on the shared worker pool, not per-call goroutines — and reassembles the
// results into a single pool-drawn matrix indexed by the original dst VID.
// Forward calls on the same Plan must not overlap: each partition's
// persistent Ctx (workspace + memos) is reused across calls.
func (p *Plan) Forward(x *tensor.Matrix, m kernels.Modes) (*ForwardResult, error) {
	nGPU := len(p.Partitions)
	res := &ForwardResult{Out: tensor.Get(totalDsts(p), x.Cols), PerDeviceFLOPs: make([]int64, nGPU)}
	r := planRunPool.Get().(*planRun)
	r.p, r.x, r.m, r.out, r.fl = p, x, m, res.Out, res.PerDeviceFLOPs
	if cap(r.errs) < nGPU {
		r.errs = make([]error, nGPU)
	}
	r.errs = r.errs[:nGPU]
	for i := range r.errs {
		r.errs[i] = nil
	}
	sched.RunChunk(nGPU, 1, sched.Workers(nGPU), r, planForwardTask)
	var err error
	for _, e := range r.errs {
		if e != nil {
			err = e
			break
		}
	}
	*r = planRun{errs: r.errs[:0]}
	planRunPool.Put(r)
	if err != nil {
		res.Release()
		return nil, err
	}
	return res, nil
}

func totalDsts(p *Plan) int {
	n := 0
	for _, part := range p.Partitions {
		for _, d := range part.DstIDs {
			if int(d)+1 > n {
				n = int(d) + 1
			}
		}
	}
	return n
}
