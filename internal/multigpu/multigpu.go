// Package multigpu reproduces the multi-GPU load-balancing design point of
// ROC (§VII [19]): a sampled subgraph's destination vertices are
// partitioned across N simulated GPUs so each device holds a roughly equal
// share of the *edges* (not vertices), balancing the SpMM workload. Each
// device runs the NAPA forward on its partition independently; the package
// reports the load-balance quality and the per-device work.
//
// ROC uses CSR only for this cross-GPU balancing, not for thread
// scheduling, so it still pays format translation on each device — a point
// the harness can measure by comparing the partitioned edge-wise
// (Graph-approach) path against the partitioned NAPA path.
package multigpu

import (
	"sort"
	"sync"

	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/kernels"
	"graphtensor/internal/tensor"
)

// Partition is one GPU's share of the dst vertices and its local subgraph.
type Partition struct {
	Device *gpusim.Device
	// DstIDs are the original (pre-partition) dst VIDs assigned here.
	DstIDs []graph.VID
	// Local is the induced bipartite subgraph on those dsts (src space is
	// shared — every device can read any src embedding).
	Local *graph.BCSR
	Edges int
}

// Plan is a balanced assignment of a subgraph across N devices.
type Plan struct {
	Partitions []Partition
	// Imbalance is maxEdges/meanEdges across partitions (1.0 = perfect).
	Imbalance float64
}

// BalanceByEdges partitions csr's dst vertices across nGPU devices so each
// device holds a near-equal edge count, using longest-processing-time-first
// greedy bin packing (dsts sorted by degree, each assigned to the currently
// lightest device). This is ROC's balanced-SpMM heuristic.
func BalanceByEdges(csr *graph.BCSR, nGPU int, cfg gpusim.Config) *Plan {
	if nGPU < 1 {
		nGPU = 1
	}
	type dstDeg struct {
		d   graph.VID
		deg int
	}
	order := make([]dstDeg, csr.NumDst)
	for d := 0; d < csr.NumDst; d++ {
		order[d] = dstDeg{graph.VID(d), csr.Degree(graph.VID(d))}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].deg > order[j].deg })

	loads := make([]int, nGPU)
	assign := make([][]graph.VID, nGPU)
	for _, dd := range order {
		// Pick the lightest device.
		min := 0
		for g := 1; g < nGPU; g++ {
			if loads[g] < loads[min] {
				min = g
			}
		}
		assign[min] = append(assign[min], dd.d)
		loads[min] += dd.deg
	}

	plan := &Plan{Partitions: make([]Partition, nGPU)}
	totalEdges := 0
	maxEdges := 0
	for g := 0; g < nGPU; g++ {
		sort.Slice(assign[g], func(i, j int) bool { return assign[g][i] < assign[g][j] })
		local := inducedSubgraph(csr, assign[g])
		plan.Partitions[g] = Partition{
			Device: gpusim.NewDevice(cfg),
			DstIDs: assign[g],
			Local:  local,
			Edges:  local.NumEdges(),
		}
		totalEdges += local.NumEdges()
		if local.NumEdges() > maxEdges {
			maxEdges = local.NumEdges()
		}
	}
	if totalEdges > 0 {
		plan.Imbalance = float64(maxEdges) / (float64(totalEdges) / float64(nGPU))
	}
	return plan
}

// inducedSubgraph builds the bipartite CSR holding only the assigned dsts'
// edges. Dst and src IDs keep their GLOBAL numbering (dsts and srcs share
// the batch embedding table, so renumbering would break embedding lookup);
// unassigned dsts simply have empty rows. The local NAPA forward therefore
// computes correct rows for the assigned dsts and zero rows elsewhere.
func inducedSubgraph(csr *graph.BCSR, dsts []graph.VID) *graph.BCSR {
	coo := &graph.BCOO{NumDst: csr.NumDst, NumSrc: csr.NumSrc}
	for _, origD := range dsts {
		for _, s := range csr.Neighbors(origD) {
			coo.Src = append(coo.Src, s)
			coo.Dst = append(coo.Dst, origD)
		}
	}
	out, _ := graph.BCOOToBCSR(coo)
	return out
}

// ForwardResult holds per-device NAPA outputs reassembled into the global
// dst ordering.
type ForwardResult struct {
	// Out[d] is the aggregation for original dst d.
	Out *tensor.Matrix
	// PerDeviceFLOPs[g] is device g's FLOP count.
	PerDeviceFLOPs []int64
}

// Forward runs NAPA.Forward on every partition concurrently and reassembles
// the results into a single matrix indexed by the original dst VID.
func (p *Plan) Forward(x *tensor.Matrix, m kernels.Modes) (*ForwardResult, error) {
	nGPU := len(p.Partitions)
	res := &ForwardResult{Out: tensor.New(totalDsts(p), x.Cols), PerDeviceFLOPs: make([]int64, nGPU)}
	var wg sync.WaitGroup
	errs := make([]error, nGPU)
	for g := 0; g < nGPU; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			part := p.Partitions[g]
			ctx := kernels.NewCtx(part.Device)
			xd, err := kernels.WrapDeviceMatrix(part.Device, x.Clone(), "x")
			if err != nil {
				errs[g] = err
				return
			}
			before := part.Device.Snapshot()
			out, err := kernels.NAPA{}.Forward(ctx, &kernels.Graphs{CSR: part.Local}, xd, m)
			if err != nil {
				errs[g] = err
				return
			}
			res.PerDeviceFLOPs[g] = part.Device.Snapshot().Sub(before).FLOPs
			// Local dst IDs are global; copy only the assigned rows.
			for _, origD := range part.DstIDs {
				copy(res.Out.Row(int(origD)), out.M.Row(int(origD)))
			}
		}(g)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return res, nil
}

func totalDsts(p *Plan) int {
	n := 0
	for _, part := range p.Partitions {
		for _, d := range part.DstIDs {
			if int(d)+1 > n {
				n = int(d) + 1
			}
		}
	}
	return n
}
