package multigpu

import (
	"testing"
	"time"

	"graphtensor/internal/fault"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/prep"
)

// trainRunFault mirrors groupHarness.trainRun with a fault plan installed,
// returning the group so tests can assert on the surviving set.
func (h *groupHarness) trainRunFault(t *testing.T, nDev, batches, size int, p *fault.Plan) ([]float64, []float32, *DeviceGroup) {
	t.Helper()
	g, err := NewGroup(nDev, DefaultShards, gpusim.DefaultConfig(), true, h.factory())
	if err != nil {
		t.Fatal(err)
	}
	g.SetFaultPlan(p)
	var losses []float64
	for i := 0; i < batches; i++ {
		b := h.batch(t, i, size)
		loss, err := g.TrainBatch(b, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
		b.Release()
		for gi, d := range g.Devices() {
			if m := d.Dev.MemInUse(); m != 0 {
				t.Fatalf("batch %d: device %d MemInUse %d, want 0 between batches", i, gi, m)
			}
		}
	}
	ref := g.Replica(0)
	for i := 1; i < g.NumDevices(); i++ {
		if !SameWeights(ref, g.Replica(i)) {
			t.Fatalf("replica %d diverged from replica 0 after faults", i)
		}
	}
	var w []float32
	for _, l := range ref.Layers {
		w = append(w, l.W.Data...)
		w = append(w, l.B...)
	}
	return losses, w, g
}

// TestGroupFaultShrinkBitwise is the training-side failover guarantee:
// devices killed mid-run shrink the group to the surviving set, the
// interrupted batch replays on the survivors, and the loss/weight
// trajectory stays bitwise identical to a fault-free run — the shard
// partition and ascending-shard fold order are shape-derived, so losing
// devices (like adding them) cannot move a bit.
func TestGroupFaultShrinkBitwise(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	refLoss, refW := h.trainRun(t, 1, 4, 60)

	// Kill device 1 on batch 1 and device 3 on batch 2; stall device 0 on
	// batch 0 for good measure (stalls are modeled time only).
	plan := fault.Schedule().Kill(1, 1).Kill(3, 2).StallAt(0, 0, 5*time.Millisecond)
	losses, w, g := h.trainRunFault(t, 4, 4, 60, plan)

	for i := range refLoss {
		if losses[i] != refLoss[i] {
			t.Errorf("batch %d: loss %v under faults != fault-free %v", i, losses[i], refLoss[i])
		}
	}
	for i := range refW {
		if w[i] != refW[i] {
			t.Fatalf("weight[%d] %v under faults != fault-free %v — device death changed numerics", i, w[i], refW[i])
		}
	}
	if got := g.NumDevices(); got != 2 {
		t.Fatalf("group has %d devices after two kills, want 2", got)
	}
	if got := g.DeadDevices(); got != 2 {
		t.Fatalf("DeadDevices = %d, want 2", got)
	}
	// Survivors are the original devices 0 and 2 — ids never renumber.
	for i, want := range []int{0, 2} {
		if g.Devices()[i].id != want {
			t.Fatalf("survivor %d has id %d, want %d", i, g.Devices()[i].id, want)
		}
	}
}

// TestGroupFaultStatsAccounting: the step stats record the retry, the
// cumulative death count and the injected stall (which rides the modeled
// step time but never the trajectory).
func TestGroupFaultStatsAccounting(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	g, err := NewGroup(2, DefaultShards, gpusim.DefaultConfig(), true, h.factory())
	if err != nil {
		t.Fatal(err)
	}
	g.SetFaultPlan(fault.Schedule().Kill(1, 1).StallAt(0, 0, 7*time.Millisecond))

	b := h.batch(t, 0, 60)
	if _, err := g.TrainBatch(b, 0.05); err != nil {
		t.Fatal(err)
	}
	b.Release()
	st := g.LastStats()
	if st.StallTime != 7*time.Millisecond {
		t.Fatalf("batch 0 StallTime = %v, want 7ms", st.StallTime)
	}
	if st.Retries != 0 || st.DeadDevices != 0 {
		t.Fatalf("batch 0 recorded Retries=%d DeadDevices=%d, want 0/0", st.Retries, st.DeadDevices)
	}

	b = h.batch(t, 1, 60)
	if _, err := g.TrainBatch(b, 0.05); err != nil {
		t.Fatal(err)
	}
	b.Release()
	st = g.LastStats()
	if st.Retries != 1 {
		t.Fatalf("kill batch recorded %d retries, want 1", st.Retries)
	}
	if st.DeadDevices != 1 || g.DeadDevices() != 1 {
		t.Fatalf("kill batch recorded DeadDevices=%d (group %d), want 1", st.DeadDevices, g.DeadDevices())
	}
	if st.Devices != 1 {
		t.Fatalf("kill batch reports %d devices, want the surviving 1", st.Devices)
	}
}

// TestGroupFaultLastDeviceDies: with no survivor to shrink onto, TrainBatch
// surfaces the device loss instead of spinning.
func TestGroupFaultLastDeviceDies(t *testing.T) {
	h := newGroupHarness(t, "gcn", prep.FormatCSRCSC)
	g, err := NewGroup(1, DefaultShards, gpusim.DefaultConfig(), true, h.factory())
	if err != nil {
		t.Fatal(err)
	}
	g.SetFaultPlan(fault.Schedule().Kill(0, 0))
	b := h.batch(t, 0, 60)
	defer b.Release()
	_, err = g.TrainBatch(b, 0.05)
	if err == nil {
		t.Fatal("TrainBatch succeeded with its only device dead")
	}
	if !gpusim.IsDeviceLost(err) {
		t.Fatalf("TrainBatch returned %v, want a device-lost error", err)
	}
}
