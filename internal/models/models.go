// Package models provides ready-made GNN model configurations for the
// architectures the paper evaluates (§VI): GCN and NGCF, plus the
// GraphSAGE- and GAT-flavoured variants the NAPA mode system expresses
// (the paper notes [32], [33] are GCN variations and [3], [34] are NGCF
// variations; our mode combinations cover the same design-space axes).
package models

import (
	"fmt"

	"graphtensor/internal/core"
	"graphtensor/internal/dkp"
	"graphtensor/internal/kernels"
)

// Params shapes a model build.
type Params struct {
	InDim  int // input feature dimension
	Hidden int // hidden width (the paper uses 64 for GCN and NGCF)
	OutDim int // classifier output classes
	Layers int // GNN depth (≥ 2; the last layer emits logits)
	Seed   uint64
	// Strategy defaults to NAPA.
	Strategy kernels.Strategy
	// EnableDKP turns on dynamic kernel placement (Dynamic-GT); Policy
	// supplies the fitted cost model it decides from (nil falls back to
	// the paper's Table I coefficients). ForcePlacement pins a static
	// order instead.
	EnableDKP      bool
	Policy         *dkp.Policy
	ForcePlacement *dkp.Placement
}

func (p Params) specs(m kernels.Modes) ([]core.LayerSpec, error) {
	if p.Layers < 1 {
		return nil, fmt.Errorf("models: need at least 1 layer, got %d", p.Layers)
	}
	if p.InDim <= 0 || p.Hidden <= 0 || p.OutDim <= 0 {
		return nil, fmt.Errorf("models: invalid dims in=%d hidden=%d out=%d", p.InDim, p.Hidden, p.OutDim)
	}
	var specs []core.LayerSpec
	in := p.InDim
	for i := 0; i < p.Layers; i++ {
		out := p.Hidden
		act := true
		if i == p.Layers-1 {
			out = p.OutDim
			act = false
		}
		specs = append(specs, core.LayerSpec{Modes: m, InDim: in, OutDim: out, Activation: act})
		in = out
	}
	return specs, nil
}

func (p Params) build(m kernels.Modes) (*core.Model, error) {
	specs, err := p.specs(m)
	if err != nil {
		return nil, err
	}
	return core.NewModel(core.Config{
		Strategy:       p.Strategy,
		Specs:          specs,
		Seed:           p.Seed,
		EnableDKP:      p.EnableDKP,
		Policy:         p.Policy,
		ForcePlacement: p.ForcePlacement,
	})
}

// GCN builds a graph convolutional network (Kipf & Welling): mean
// aggregation, no edge weighting.
func GCN(p Params) (*core.Model, error) { return p.build(kernels.GCNModes()) }

// NGCF builds a neural graph collaborative filtering model (Wang et al.):
// mean aggregation with element-wise-product similarity weights
// accumulated by sum — the paper's recommendation-system workload.
func NGCF(p Params) (*core.Model, error) { return p.build(kernels.NGCFModes()) }

// GraphSAGE builds a sum-aggregation variant (Hamilton et al. style),
// exercising the AggrSum mode.
func GraphSAGE(p Params) (*core.Model, error) {
	return p.build(kernels.Modes{F: kernels.AggrSum, G: kernels.WeightNone, H: kernels.CombineIdentity})
}

// GAT builds a dot-similarity attention variant (Veličković et al.
// flavour): scalar edge weights scale the src embeddings.
func GAT(p Params) (*core.Model, error) { return p.build(kernels.AttentionModes()) }

// SAGEPoolModes returns the GraphSAGE max-pooling mode set (an extension
// beyond the paper's evaluated models): elementwise max aggregation, no
// edge weighting, identity message.
func SAGEPoolModes() kernels.Modes {
	return kernels.Modes{F: kernels.AggrMax, G: kernels.WeightNone, H: kernels.CombineIdentity}
}

// SAGEPool builds a GraphSAGE max-pooling model (extension): the engine
// routes its non-linear aggregation through the dedicated pool kernel.
func SAGEPool(p Params) (*core.Model, error) { return p.build(SAGEPoolModes()) }

// ByName builds a model from its lowercase name ("gcn", "ngcf",
// "graphsage", "gat").
func ByName(name string, p Params) (*core.Model, error) {
	switch name {
	case "gcn":
		return GCN(p)
	case "ngcf":
		return NGCF(p)
	case "graphsage":
		return GraphSAGE(p)
	case "gat":
		return GAT(p)
	case "sagepool":
		return SAGEPool(p)
	}
	return nil, fmt.Errorf("models: unknown model %q (want gcn|ngcf|graphsage|gat|sagepool)", name)
}

// Names lists the available model names.
func Names() []string { return []string{"gcn", "ngcf", "graphsage", "gat", "sagepool"} }
