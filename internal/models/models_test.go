package models

import (
	"testing"

	"graphtensor/internal/kernels"
)

func TestAllModelsBuild(t *testing.T) {
	p := Params{InDim: 16, Hidden: 8, OutDim: 3, Layers: 2, Seed: 1}
	for _, name := range Names() {
		m, err := ByName(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(m.Layers) != 2 {
			t.Errorf("%s: %d layers, want 2", name, len(m.Layers))
		}
		// Last layer emits logits (no activation), width OutDim.
		last := m.Layers[len(m.Layers)-1]
		if last.Spec.Activation {
			t.Errorf("%s: final layer should not activate", name)
		}
		if last.Spec.OutDim != 3 {
			t.Errorf("%s: final out dim %d want 3", name, last.Spec.OutDim)
		}
	}
}

func TestModelDimChaining(t *testing.T) {
	p := Params{InDim: 20, Hidden: 12, OutDim: 4, Layers: 3, Seed: 2}
	m, err := GCN(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(m.Layers); i++ {
		if m.Layers[i].Spec.InDim != m.Layers[i-1].Spec.OutDim {
			t.Errorf("layer %d input %d != prev output %d", i, m.Layers[i].Spec.InDim, m.Layers[i-1].Spec.OutDim)
		}
	}
}

func TestModelModes(t *testing.T) {
	p := Params{InDim: 8, Hidden: 8, OutDim: 2, Layers: 2, Seed: 3}
	gcn, _ := GCN(p)
	if gcn.Layers[0].Spec.Modes.HasEdgeWeight() {
		t.Error("GCN should not weight edges")
	}
	ngcf, _ := NGCF(p)
	if !ngcf.Layers[0].Spec.Modes.HasEdgeWeight() {
		t.Error("NGCF should weight edges")
	}
	if ngcf.Layers[0].Spec.Modes.G != kernels.WeightElemProduct {
		t.Error("NGCF g should be element-wise product")
	}
}

func TestUnknownModel(t *testing.T) {
	if _, err := ByName("nope", Params{InDim: 8, Hidden: 8, OutDim: 2, Layers: 2}); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestInvalidDims(t *testing.T) {
	if _, err := GCN(Params{InDim: 0, Hidden: 8, OutDim: 2, Layers: 2}); err == nil {
		t.Error("expected error for zero input dim")
	}
}
