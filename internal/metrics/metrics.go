// Package metrics provides the measurement plumbing the experiment harness
// shares: phase breakdowns (Fig 12a, Fig 16), progress timelines (Fig 20,
// Fig 12b) and normalized series formatting for the figure reproductions.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Breakdown accumulates named durations, e.g. per preprocessing task or per
// GPU kernel class.
type Breakdown struct {
	mu    sync.Mutex
	parts map[string]time.Duration
	order []string
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{parts: map[string]time.Duration{}}
}

// Add accrues d under name.
func (b *Breakdown) Add(name string, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.parts[name]; !ok {
		b.order = append(b.order, name)
	}
	b.parts[name] += d
}

// Get returns the accumulated duration for name.
func (b *Breakdown) Get(name string) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.parts[name]
}

// Total returns the sum over all parts.
func (b *Breakdown) Total() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t time.Duration
	for _, d := range b.parts {
		t += d
	}
	return t
}

// Names returns the part names in first-added order.
func (b *Breakdown) Names() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.order...)
}

// Fractions returns each part as a fraction of the total, in first-added
// order.
func (b *Breakdown) Fractions() map[string]float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t time.Duration
	for _, d := range b.parts {
		t += d
	}
	out := make(map[string]float64, len(b.parts))
	for n, d := range b.parts {
		if t > 0 {
			out[n] = float64(d) / float64(t)
		}
	}
	return out
}

// String renders the breakdown as "name: dur (pct%)" lines.
func (b *Breakdown) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t time.Duration
	for _, d := range b.parts {
		t += d
	}
	var sb strings.Builder
	for _, n := range b.order {
		d := b.parts[n]
		pct := 0.0
		if t > 0 {
			pct = 100 * float64(d) / float64(t)
		}
		fmt.Fprintf(&sb, "%-12s %12v (%5.1f%%)\n", n, d.Round(time.Microsecond), pct)
	}
	return sb.String()
}

// Timeline records progress events of named tasks against a shared clock —
// the data behind the preprocessing timeline of Fig 20 ("% of handled
// vertices vs time").
type Timeline struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
}

// Event is one progress sample: at Elapsed since the timeline start, Task
// had handled Done of Total units.
type Event struct {
	Task    string
	Elapsed time.Duration
	Done    int
	Total   int
}

// NewTimeline starts a timeline clock.
func NewTimeline() *Timeline { return &Timeline{start: time.Now()} }

// Record adds a progress sample for task.
func (t *Timeline) Record(task string, done, total int) {
	now := time.Since(t.start)
	t.mu.Lock()
	t.events = append(t.events, Event{Task: task, Elapsed: now, Done: done, Total: total})
	t.mu.Unlock()
}

// Events returns all samples sorted by elapsed time.
func (t *Timeline) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]Event(nil), t.events...)
	sort.Slice(out, func(i, j int) bool { return out[i].Elapsed < out[j].Elapsed })
	return out
}

// Completion returns, per task, the elapsed time of its last sample (the
// task completion time Fig 20 compares).
func (t *Timeline) Completion() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, e := range t.Events() {
		if e.Elapsed > out[e.Task] {
			out[e.Task] = e.Elapsed
		}
	}
	return out
}

// Series is a labeled numeric series normalized for figure output.
type Series struct {
	Label  string
	Points []Point
}

// Point is one (x-label, value) pair of a figure series.
type Point struct {
	X     string
	Value float64
}

// FormatTable renders series side by side as an ASCII table, one row per X
// label, matching the row/series layout of the paper figures.
func FormatTable(title string, series []Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	if len(series) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-14s", "")
	for _, s := range series {
		fmt.Fprintf(&sb, "%14s", s.Label)
	}
	sb.WriteByte('\n')
	for i, p := range series[0].Points {
		fmt.Fprintf(&sb, "%-14s", p.X)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(&sb, "%14.3f", s.Points[i].Value)
			} else {
				fmt.Fprintf(&sb, "%14s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LatencySummary condenses a latency sample into the tail figures a
// serving report quotes.
type LatencySummary struct {
	P50, P90, P99, Max time.Duration
}

// String renders the summary in report form, rounded to the microsecond.
func (s LatencySummary) String() string {
	return fmt.Sprintf("p50=%v p90=%v p99=%v max=%v",
		s.P50.Round(time.Microsecond), s.P90.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// SummarizeLatencies computes nearest-rank quantiles over a copy of the
// sample (the input is not reordered). An empty sample yields zeros.
func SummarizeLatencies(ds []time.Duration) LatencySummary {
	if len(ds) == 0 {
		return LatencySummary{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)))
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return LatencySummary{P50: rank(0.50), P90: rank(0.90), P99: rank(0.99), Max: sorted[len(sorted)-1]}
}

// LatencyRing is a fixed-capacity, lock-free ring of the most recent
// latency samples. Writers call Record concurrently — the slot is claimed
// with one atomic add and written with one atomic store, so the serving
// engine's hot completion path never takes a lock — and readers merge the
// retained window with Snapshot/AppendTo. Reads race writes by design: a
// snapshot is a statistical sample of the most recent window, not a
// linearizable log, which is exactly what quantile reporting needs.
type LatencyRing struct {
	slots  []atomic.Int64
	cursor atomic.Uint64
}

// NewLatencyRing builds a ring retaining the capacity most recent samples
// (minimum 1).
func NewLatencyRing(capacity int) *LatencyRing {
	if capacity < 1 {
		capacity = 1
	}
	return &LatencyRing{slots: make([]atomic.Int64, capacity)}
}

// Record adds one sample, overwriting the oldest once the ring is full.
func (r *LatencyRing) Record(d time.Duration) {
	i := r.cursor.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(int64(d))
}

// Len returns the number of retained samples (≤ capacity).
func (r *LatencyRing) Len() int {
	n := r.cursor.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Cap returns the ring capacity.
func (r *LatencyRing) Cap() int { return len(r.slots) }

// AppendTo appends the retained window to dst and returns it (merging the
// per-shard rings of a sharded server into one sample costs one append per
// ring, no intermediate copies).
func (r *LatencyRing) AppendTo(dst []time.Duration) []time.Duration {
	for i, n := 0, r.Len(); i < n; i++ {
		dst = append(dst, time.Duration(r.slots[i].Load()))
	}
	return dst
}

// Snapshot returns a copy of the retained window.
func (r *LatencyRing) Snapshot() []time.Duration {
	return r.AppendTo(make([]time.Duration, 0, r.Len()))
}

// GeoMean returns the geometric mean of vs (the paper's "on average" for
// ratios). Zero or negative values are skipped.
func GeoMean(vs []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vs {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean of vs (0 for an empty slice).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
