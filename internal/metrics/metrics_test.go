package metrics

import (
	"math"
	"testing"
	"time"
)

func TestBreakdownFractions(t *testing.T) {
	b := NewBreakdown()
	b.Add("a", 30*time.Millisecond)
	b.Add("b", 10*time.Millisecond)
	b.Add("a", 10*time.Millisecond) // a now 40
	fr := b.Fractions()
	if math.Abs(fr["a"]-0.8) > 1e-9 {
		t.Errorf("a fraction %g want 0.8", fr["a"])
	}
	if b.Total() != 50*time.Millisecond {
		t.Errorf("total %v", b.Total())
	}
}

func TestBreakdownOrder(t *testing.T) {
	b := NewBreakdown()
	b.Add("z", time.Second)
	b.Add("a", time.Second)
	names := b.Names()
	if names[0] != "z" || names[1] != "a" {
		t.Errorf("order not first-added: %v", names)
	}
}

func TestTimelineCompletion(t *testing.T) {
	tl := NewTimeline()
	tl.Record("task", 1, 10)
	time.Sleep(time.Millisecond)
	tl.Record("task", 10, 10)
	comp := tl.Completion()
	if comp["task"] == 0 {
		t.Error("completion time not recorded")
	}
	events := tl.Events()
	if len(events) != 2 {
		t.Fatalf("expected 2 events, got %d", len(events))
	}
	if events[0].Elapsed > events[1].Elapsed {
		t.Error("events not sorted by elapsed time")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("geomean(1,4)=%g want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("geomean of empty should be 0")
	}
	// Zeros are skipped.
	if math.Abs(GeoMean([]float64{0, 2, 8})-4) > 1e-9 {
		t.Errorf("geomean skipping zero wrong: %g", GeoMean([]float64{0, 2, 8}))
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
}

func TestFormatTable(t *testing.T) {
	s := []Series{
		{Label: "A", Points: []Point{{X: "x", Value: 1}, {X: "y", Value: 2}}},
		{Label: "B", Points: []Point{{X: "x", Value: 3}, {X: "y", Value: 4}}},
	}
	out := FormatTable("test", s)
	if len(out) == 0 {
		t.Error("empty table output")
	}
}
