package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBreakdownFractions(t *testing.T) {
	b := NewBreakdown()
	b.Add("a", 30*time.Millisecond)
	b.Add("b", 10*time.Millisecond)
	b.Add("a", 10*time.Millisecond) // a now 40
	fr := b.Fractions()
	if math.Abs(fr["a"]-0.8) > 1e-9 {
		t.Errorf("a fraction %g want 0.8", fr["a"])
	}
	if b.Total() != 50*time.Millisecond {
		t.Errorf("total %v", b.Total())
	}
}

func TestBreakdownOrder(t *testing.T) {
	b := NewBreakdown()
	b.Add("z", time.Second)
	b.Add("a", time.Second)
	names := b.Names()
	if names[0] != "z" || names[1] != "a" {
		t.Errorf("order not first-added: %v", names)
	}
}

func TestTimelineCompletion(t *testing.T) {
	tl := NewTimeline()
	tl.Record("task", 1, 10)
	time.Sleep(time.Millisecond)
	tl.Record("task", 10, 10)
	comp := tl.Completion()
	if comp["task"] == 0 {
		t.Error("completion time not recorded")
	}
	events := tl.Events()
	if len(events) != 2 {
		t.Fatalf("expected 2 events, got %d", len(events))
	}
	if events[0].Elapsed > events[1].Elapsed {
		t.Error("events not sorted by elapsed time")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("geomean(1,4)=%g want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("geomean of empty should be 0")
	}
	// Zeros are skipped.
	if math.Abs(GeoMean([]float64{0, 2, 8})-4) > 1e-9 {
		t.Errorf("geomean skipping zero wrong: %g", GeoMean([]float64{0, 2, 8}))
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
}

// TestSummarizeLatenciesNonMutating: quantiles are computed over a copy —
// the caller's slice (a live latency ring a server keeps appending to) must
// come back in its original order.
func TestSummarizeLatenciesNonMutating(t *testing.T) {
	ds := []time.Duration{9, 1, 7, 3, 5, 2, 8, 4, 6}
	orig := append([]time.Duration(nil), ds...)
	sum := SummarizeLatencies(ds)
	for i, d := range ds {
		if d != orig[i] {
			t.Fatalf("SummarizeLatencies reordered the caller's slice at %d: %v != %v", i, d, orig[i])
		}
	}
	if sum.P50 != 5 || sum.Max != 9 {
		t.Fatalf("quantiles wrong: %+v", sum)
	}
}

// TestLatencyRingWrap: once the ring wraps, the retained window is exactly
// the most recent Cap() samples — older samples must be gone, so quantiles
// computed from a snapshot really cover the recent window, not history.
func TestLatencyRingWrap(t *testing.T) {
	const capacity = 8
	r := NewLatencyRing(capacity)
	if r.Len() != 0 {
		t.Fatalf("fresh ring Len = %d", r.Len())
	}
	// Partial fill: window is everything recorded so far.
	for i := 1; i <= 3; i++ {
		r.Record(time.Duration(i))
	}
	if got := r.Snapshot(); len(got) != 3 {
		t.Fatalf("pre-wrap window %v, want 3 samples", got)
	}
	// Overfill by 2.5×: only the most recent `capacity` samples survive.
	total := capacity*2 + capacity/2
	r2 := NewLatencyRing(capacity)
	for i := 1; i <= total; i++ {
		r2.Record(time.Duration(i))
	}
	got := r2.Snapshot()
	if len(got) != capacity {
		t.Fatalf("post-wrap window has %d samples, want %d", len(got), capacity)
	}
	seen := map[time.Duration]bool{}
	for _, d := range got {
		if int(d) <= total-capacity || int(d) > total {
			t.Fatalf("window holds stale sample %d (recent window is (%d, %d])", d, total-capacity, total)
		}
		if seen[d] {
			t.Fatalf("window holds sample %d twice", d)
		}
		seen[d] = true
	}
	// The quantile summary over the snapshot reflects the recent window.
	sum := SummarizeLatencies(got)
	if sum.Max != time.Duration(total) {
		t.Fatalf("max %d, want most recent sample %d", sum.Max, total)
	}
	if sum.P50 <= time.Duration(total-capacity) {
		t.Fatalf("p50 %d fell outside the recent window", sum.P50)
	}
}

// TestLatencyRingConcurrentRecord: concurrent writers never lose the window
// invariant (run under -race in CI).
func TestLatencyRingConcurrentRecord(t *testing.T) {
	const capacity, writers, perWriter = 64, 8, 500
	r := NewLatencyRing(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(time.Duration(w*perWriter + i + 1))
			}
		}(w)
	}
	wg.Wait()
	got := r.Snapshot()
	if len(got) != capacity {
		t.Fatalf("window has %d samples, want %d", len(got), capacity)
	}
	for _, d := range got {
		if d < 1 || d > writers*perWriter {
			t.Fatalf("window holds impossible sample %d", d)
		}
	}
}

func TestFormatTable(t *testing.T) {
	s := []Series{
		{Label: "A", Points: []Point{{X: "x", Value: 1}, {X: "y", Value: 2}}},
		{Label: "B", Points: []Point{{X: "x", Value: 3}, {X: "y", Value: 4}}},
	}
	out := FormatTable("test", s)
	if len(out) == 0 {
		t.Error("empty table output")
	}
}
