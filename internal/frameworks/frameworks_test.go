package frameworks

import (
	"testing"

	"graphtensor/internal/datasets"
	"graphtensor/internal/gpusim"
)

func quickOpts() Options {
	o := DefaultOptions()
	o.BatchSize = 60
	o.Device = gpusim.DefaultConfig()
	return o
}

func testDS(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.Generate("products", datasets.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAllFrameworksTrainABatch(t *testing.T) {
	ds := testDS(t)
	for _, k := range Kinds() {
		for _, model := range []string{"gcn", "ngcf"} {
			opt := quickOpts()
			opt.Model = model
			tr, err := New(k, ds, opt)
			if err != nil {
				t.Fatalf("%s/%s new: %v", k, model, err)
			}
			st, err := tr.TrainBatch()
			if err != nil {
				t.Fatalf("%s/%s train: %v", k, model, err)
			}
			if st.Loss <= 0 {
				t.Errorf("%s/%s loss %g not positive", k, model, st.Loss)
			}
			if st.Counters.FLOPs == 0 {
				t.Errorf("%s/%s did no FLOPs", k, model)
			}
		}
	}
}

func TestFrameworkFormats(t *testing.T) {
	ds := testDS(t)
	cases := map[Kind]string{
		DGL:      "COO",
		PyG:      "CSR",
		BaseGT:   "CSR+CSC",
		PreproGT: "CSR+CSC",
	}
	for k, want := range cases {
		tr, err := New(k, ds, quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		if tr.format.String() != want {
			t.Errorf("%s format %s want %s", k, tr.format, want)
		}
	}
}

func TestPinnedFrameworks(t *testing.T) {
	ds := testDS(t)
	for _, k := range []Kind{SALIENT, BaseGT, DynamicGT, PreproGT} {
		tr, _ := New(k, ds, quickOpts())
		if !tr.pinned {
			t.Errorf("%s should use pinned memory", k)
		}
	}
	for _, k := range []Kind{PyG, PyGMT, GNNAdvisor} {
		tr, _ := New(k, ds, quickOpts())
		if tr.pinned {
			t.Errorf("%s should not use pinned memory", k)
		}
	}
}

func TestModeledPrepPipelinedFaster(t *testing.T) {
	ds, _ := datasets.Generate("wiki-talk", datasets.TestScale())
	serial, _ := New(DynamicGT, ds, quickOpts())
	pipe, _ := New(PreproGT, ds, quickOpts())
	b1, err := serial.Prepare(ds.BatchDsts(60, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Release()
	b2, err := pipe.Prepare(ds.BatchDsts(60, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Release()
	serialPrep := serial.ModeledPrep(b1)
	pipePrep := pipe.ModeledPrep(b2)
	if pipePrep >= serialPrep {
		t.Errorf("pipelined prep %v should be faster than serial %v", pipePrep, serialPrep)
	}
}

func TestWarmupFitsDKP(t *testing.T) {
	ds := testDS(t)
	tr, _ := New(DynamicGT, ds, quickOpts())
	if err := tr.Warmup(3); err != nil {
		t.Fatal(err)
	}
	// Warmup either fits or keeps defaults; both are valid, but it must
	// not error and the model must still train.
	if _, err := tr.TrainBatch(); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedEpochMonotone(t *testing.T) {
	ds := testDS(t)
	tr, _ := New(BaseGT, ds, quickOpts())
	d1, err := tr.SimulatedEpoch(1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := tr.SimulatedEpoch(2)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Errorf("2 batches (%v) should take longer than 1 (%v)", d2, d1)
	}
}
