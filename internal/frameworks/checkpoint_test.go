package frameworks

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"graphtensor/internal/fault"
	"graphtensor/internal/multigpu"
)

func ckptTrainer(t *testing.T, nDev int) *Trainer {
	t.Helper()
	opt := quickOpts()
	opt.NumDevices = nDev
	tr, err := New(BaseGT, testDS(t), opt)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustTrain(t *testing.T, tr *Trainer, n int) {
	t.Helper()
	if _, _, err := tr.TrainEpoch(n); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRestoreRoundtripBitwise: train 3 batches, checkpoint, restore
// into a fresh trainer, train 3 more — the final weights are bitwise
// identical to 6 uninterrupted batches, because the snapshot carries both
// the weights and the schedule cursor (batch 4 after restore is exactly the
// batch 4 the uninterrupted run drew).
func TestCheckpointRestoreRoundtripBitwise(t *testing.T) {
	ref := ckptTrainer(t, 0)
	mustTrain(t, ref, 6)
	refW := collectWeights(ref)

	a := ckptTrainer(t, 0)
	mustTrain(t, a, 3)
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := a.Checkpoint(path, a.batchSeq); err != nil {
		t.Fatal(err)
	}
	midW := collectWeights(a)

	b := ckptTrainer(t, 0)
	step, err := b.Restore(path)
	if err != nil {
		t.Fatal(err)
	}
	if step != 3 {
		t.Fatalf("restored step %d, want 3", step)
	}
	for i, w := range collectWeights(b) {
		if w != midW[i] {
			t.Fatalf("restored weight[%d] = %v, checkpointed %v", i, w, midW[i])
		}
	}
	mustTrain(t, b, 3)
	for i, w := range collectWeights(b) {
		if w != refW[i] {
			t.Fatalf("resumed weight[%d] = %v, uninterrupted run %v — restore broke the trajectory", i, w, refW[i])
		}
	}
}

// TestRestoreOntoFewerDevicesBitwise is the ISSUE's crash-resume guarantee:
// a snapshot taken mid-run on a two-device group resumes on a single-device
// group — fewer devices than the interrupted run — and the remaining
// trajectory still matches an uninterrupted run bitwise, because the shard
// partition and fold order are device-count-invariant. Restoring into a
// multi-device group also installs the weights on every replica.
func TestRestoreOntoFewerDevicesBitwise(t *testing.T) {
	ref := ckptTrainer(t, 1)
	mustTrain(t, ref, 6)
	refW := collectWeights(ref)

	a := ckptTrainer(t, 2)
	mustTrain(t, a, 3)
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := a.Checkpoint(path, a.batchSeq); err != nil {
		t.Fatal(err)
	}

	b := ckptTrainer(t, 1)
	if _, err := b.Restore(path); err != nil {
		t.Fatal(err)
	}
	mustTrain(t, b, 3)
	for i, w := range collectWeights(b) {
		if w != refW[i] {
			t.Fatalf("resumed-on-1-device weight[%d] = %v, uninterrupted %v", i, w, refW[i])
		}
	}

	c := ckptTrainer(t, 2)
	if _, err := c.Restore(path); err != nil {
		t.Fatal(err)
	}
	if !multigpu.SameWeights(c.Group().Replica(0), c.Group().Replica(1)) {
		t.Fatal("restore left device-group replicas diverged")
	}
}

// TestRestoreAfterNodeLoss extends the crash-resume guarantee to fault
// domains on the hierarchical fabric: a run that loses a *whole node* —
// both its devices at one batch boundary, correlated — checkpoints from the
// survivors, and the snapshot restores onto a fresh full-fabric group (and
// onto a single flat device) with the remaining trajectory bitwise
// identical to an uninterrupted run. Node loss is scheduling only; the
// snapshot neither knows nor cares which nodes were alive when it was cut.
func TestRestoreAfterNodeLoss(t *testing.T) {
	ref := ckptTrainer(t, 1)
	mustTrain(t, ref, 6)
	refW := collectWeights(ref)

	hierOpts := func() Options {
		opt := quickOpts()
		opt.NumDevices = 4
		opt.DevicesPerNode = 2
		return opt
	}
	opt := hierOpts()
	opt.FaultPlan = fault.Schedule().KillNode(1, 1)
	a, err := New(BaseGT, testDS(t), opt)
	if err != nil {
		t.Fatal(err)
	}
	mustTrain(t, a, 3)
	if g := a.Group(); g.NumDevices() != 2 || g.DeadDevices() != 2 {
		t.Fatalf("node kill left %d devices alive / %d dead, want 2/2",
			g.NumDevices(), g.DeadDevices())
	}
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := a.Checkpoint(path, a.batchSeq); err != nil {
		t.Fatal(err)
	}

	// Onto a fresh, fault-free hierarchical group: the restore installs the
	// weights on all four replicas and the resumed trajectory matches the
	// uninterrupted single-device run bitwise.
	b, err := New(BaseGT, testDS(t), hierOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Restore(path); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < b.Group().NumDevices(); i++ {
		if !multigpu.SameWeights(b.Group().Replica(0), b.Group().Replica(i)) {
			t.Fatalf("restore left hierarchical replica %d diverged", i)
		}
	}
	mustTrain(t, b, 3)
	for i, w := range collectWeights(b) {
		if w != refW[i] {
			t.Fatalf("resumed-after-node-loss weight[%d] = %v, uninterrupted %v", i, w, refW[i])
		}
	}

	// Onto a single flat device — fewer than the crashed run even had alive.
	c := ckptTrainer(t, 1)
	if _, err := c.Restore(path); err != nil {
		t.Fatal(err)
	}
	mustTrain(t, c, 3)
	for i, w := range collectWeights(c) {
		if w != refW[i] {
			t.Fatalf("resumed-on-1-device weight[%d] = %v, uninterrupted %v", i, w, refW[i])
		}
	}
}

// TestRestoreCorruptCheckpoint: damage in any form — truncation, a flipped
// bit, a clobbered magic — fails with ErrCheckpointCorrupt and leaves the
// live weights untouched, so the caller can fall back to an older snapshot.
// A structurally valid snapshot from a different run (seed mismatch) fails
// with a plain error instead: the file is fine, loading it would not be.
func TestRestoreCorruptCheckpoint(t *testing.T) {
	a := ckptTrainer(t, 0)
	mustTrain(t, a, 2)
	dir := t.TempDir()
	good := filepath.Join(dir, "good")
	if err := a.Checkpoint(good, a.batchSeq); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := map[string][]byte{
		"truncated": raw[:len(raw)/2],
		"bitflip":   append([]byte{}, raw...),
		"badmagic":  append([]byte{}, raw...),
	}
	corrupt["bitflip"][len(raw)/2] ^= 0x40
	copy(corrupt["badmagic"], "NOTCKPT\n")

	tr := ckptTrainer(t, 0)
	mustTrain(t, tr, 1)
	before := collectWeights(tr)
	for name, data := range corrupt {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Restore(p); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("%s checkpoint: Restore returned %v, want ErrCheckpointCorrupt", name, err)
		}
		for i, w := range collectWeights(tr) {
			if w != before[i] {
				t.Fatalf("%s checkpoint: failed Restore mutated weight[%d]", name, i)
			}
		}
	}

	// Seed mismatch: valid file, wrong run — a plain refusal, not corruption.
	opt := quickOpts()
	opt.Seed = 99
	other, err := New(BaseGT, testDS(t), opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Restore(good); err == nil || errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("seed-mismatched Restore returned %v, want a plain mismatch error", err)
	}
}
