// Package frameworks assembles the end-to-end trainers the paper's
// evaluation compares (§VI): the baselines — DGL, PyG (single- and
// multi-threaded), GNNAdvisor, SALIENT — and the three GraphTensor builds
// — Base-GT (NAPA only), Dynamic-GT (NAPA + DKP) and Prepro-GT (NAPA +
// DKP + service-wide tensor scheduler). Each trainer binds a kernel
// scheduling strategy, an initial graph format, a sampling discipline and
// a preprocessing pipeline, per Table III:
//
//	framework    strategy        format   prep              pinned  DKP
//	DGL          Graph-approach  COO      serial, MT        no      no
//	PyG          DL-approach     CSR      serial, 1 thread  no      no
//	PyG-MT       DL-approach     CSR      serial, MT        no      no
//	GNNAdvisor   Advisor         CSR      serial, MT        no      no
//	SALIENT      DL-approach     CSR      serial, MT        yes     no
//	Base-GT      NAPA            CSR+CSC  serial, MT        yes     no
//	Dynamic-GT   NAPA            CSR+CSC  serial, MT        yes     yes
//	Prepro-GT    NAPA            CSR+CSC  pipelined         yes     yes
package frameworks

import (
	"fmt"
	"time"

	"graphtensor/internal/cache"
	"graphtensor/internal/core"
	"graphtensor/internal/datasets"
	"graphtensor/internal/dkp"
	"graphtensor/internal/fault"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/kernels"
	"graphtensor/internal/metrics"
	"graphtensor/internal/models"
	"graphtensor/internal/multigpu"
	"graphtensor/internal/pipeline"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
)

// Kind identifies a framework build.
type Kind int

const (
	// DGL is the Graph-approach representative.
	DGL Kind = iota
	// PyG is the DL-approach representative with single-threaded sampling.
	PyG
	// PyGMT is PyG modified for multi-threaded preprocessing (§VI-B).
	PyGMT
	// GNNAdvisor is the adaptive runtime baseline (kernel comparison only;
	// the original has no sampling-based preprocessing).
	GNNAdvisor
	// SALIENT is the fast-sampling/pipelining preprocessing baseline.
	SALIENT
	// BaseGT is GraphTensor with NAPA but no DKP.
	BaseGT
	// DynamicGT adds dynamic kernel placement.
	DynamicGT
	// PreproGT adds the service-wide tensor scheduler.
	PreproGT
)

// String names the framework as the figures label it.
func (k Kind) String() string {
	switch k {
	case DGL:
		return "DGL"
	case PyG:
		return "PyG"
	case PyGMT:
		return "PyG-MT"
	case GNNAdvisor:
		return "GNNAdvisor"
	case SALIENT:
		return "SALIENT"
	case BaseGT:
		return "Base-GT"
	case DynamicGT:
		return "Dynamic-GT"
	case PreproGT:
		return "Prepro-GT"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists all framework builds in figure order.
func Kinds() []Kind {
	return []Kind{DGL, PyG, PyGMT, GNNAdvisor, SALIENT, BaseGT, DynamicGT, PreproGT}
}

// Options configures a trainer.
type Options struct {
	Model     string // "gcn", "ngcf", "graphsage", "gat"
	Hidden    int    // hidden dimension (paper: 64)
	Layers    int    // GNN depth (paper models: 2)
	BatchSize int    // dst vertices per batch (paper: 300)
	Fanout    int    // sampled neighbors per dst
	Seed      uint64
	Device    gpusim.Config
	// LearningRate for TrainBatch's SGD step.
	LearningRate float32
	// PrefetchDepth is how many batches ahead the prefetch ring prepares
	// for overlap-capable frameworks (<=0 defaults to 2). Ignored by the
	// serial baselines. Device footprint: up to depth+2 batches hold
	// device buffers at once (prepared-ahead + in-compute), plus one more
	// during a concurrent validation Prepare — size gpusim memory (or
	// lower the depth) accordingly.
	PrefetchDepth int
	// NumDevices selects the data-parallel engine: 0 (default) trains on
	// the classic single-device engine; >=1 trains through a
	// multigpu.DeviceGroup of that many devices. Every batch is carved into
	// GradShards shape-fixed gradient shards, so the loss/weight trajectory
	// is bitwise identical at any NumDevices in [1, GradShards] and any
	// GOMAXPROCS. DKP stays live under data parallelism: placements are a
	// pure function of the fitted profile and each shard's shape, so every
	// replica evaluating the same shard makes the same choice.
	NumDevices int
	// GradShards is the fixed gradient-shard count of the data-parallel
	// engine (0 derives it from the device class via dkp.Recommend).
	// Trajectories are comparable across device counts only for an
	// identical shard count.
	GradShards int
	// DevicesPerNode splits the device group into nodes of this size over
	// a hierarchical fabric (gpusim.HierarchicalInterconnect): NVLink-class
	// links inside a node, the modeled network between nodes, hierarchical
	// all-reduce and node-aware shard assignment. 0 (default) keeps the
	// flat single-node fabric from Options.Device. Node assignment steers
	// modeled scheduling and communication only — the trajectory stays
	// bitwise identical to the flat fabrics at the same GradShards.
	DevicesPerNode int
	// FaultPlan injects a deterministic fault schedule into the
	// data-parallel device group (nil = fault-free; ignored without
	// NumDevices). Faults are a pure function of (seed, step, device), so
	// chaos runs replay bitwise.
	FaultPlan *fault.Plan
}

// DefaultOptions mirrors the paper's experimental setup, scaled alongside
// the datasets.
func DefaultOptions() Options {
	return Options{
		Model:         "gcn",
		Hidden:        8, // paper's 64 divided by the feature scale (8)
		Layers:        2,
		BatchSize:     300,
		Fanout:        4,
		Seed:          1,
		Device:        gpusim.DefaultConfig(),
		LearningRate:  0.05,
		PrefetchDepth: 2,
	}
}

// Trainer is one framework build bound to a dataset.
type Trainer struct {
	Kind    Kind
	Opt     Options
	Dataset *datasets.Dataset
	Engine  *core.Engine
	Model   *core.Model

	strategy   kernels.Strategy
	format     prep.Format
	pinned     bool
	overlap    bool
	samplerCfg sampling.Config
	sampler    *sampling.Sampler
	sched      *pipeline.Scheduler
	group      *multigpu.DeviceGroup
	cache      *cache.Cache
	batchSeq   uint64
	// policy is the shared shape-keyed placement policy of DKP frameworks
	// (nil otherwise), fitted offline for the trainer's device class.
	policy *dkp.Policy

	// infer is the retained FWP-only dispatch state of InferBatch: the
	// layer-graph views and the input header are rebuilt in place per
	// served batch instead of reallocated.
	infer InferDispatch

	// slots is the trainer's persistent prefetch-slot rotation: every ring
	// the trainer builds draws from this free-list, so slot storage (arenas
	// + producer structure pools) survives across rings and epochs.
	slots chan *pipeline.Slot
}

// Group returns the data-parallel device group, or nil when the trainer
// runs the classic single-device engine (Options.NumDevices == 0).
func (t *Trainer) Group() *multigpu.DeviceGroup { return t.group }

// SamplerConfig returns the framework's sampling discipline — the serving
// engine builds its own host-only preprocessing scheduler from it.
func (t *Trainer) SamplerConfig() sampling.Config { return t.samplerCfg }

// Format returns the framework's on-device graph format.
func (t *Trainer) Format() prep.Format { return t.format }

// Pinned reports whether the framework stages transfers in page-locked
// buffers.
func (t *Trainer) Pinned() bool { return t.pinned }

// SetCache installs (or, with nil, removes) a PaGraph-style embedding cache
// on the trainer's preprocessing: resident vertices skip the modeled
// host→device transfer in the K/T tasks and the prepared batches record
// their hit/miss counts. Residency never changes batch contents. Must not
// race an in-flight Prepare.
func (t *Trainer) SetCache(c *cache.Cache) {
	t.cache = c
	if t.sched != nil {
		t.sched.SetCache(c)
	}
}

// Cache returns the installed embedding cache (nil without one).
func (t *Trainer) Cache() *cache.Cache { return t.cache }

// New assembles a trainer for the framework kind over the dataset.
func New(kind Kind, ds *datasets.Dataset, opt Options) (*Trainer, error) {
	t := &Trainer{Kind: kind, Opt: opt, Dataset: ds}
	t.Engine = core.NewEngine(opt.Device)

	switch kind {
	case DGL:
		t.strategy, t.format = kernels.GraphApproach{}, prep.FormatCOO
	case PyG, PyGMT, SALIENT:
		t.strategy, t.format = kernels.DLApproach{}, prep.FormatCSR
	case GNNAdvisor:
		t.strategy, t.format = kernels.Advisor{}, prep.FormatCSR
	default:
		t.strategy, t.format = kernels.NAPA{}, prep.FormatCSRCSC
	}
	t.pinned = kind == SALIENT || kind == BaseGT || kind == DynamicGT || kind == PreproGT
	t.overlap = kind == DGL || kind == SALIENT || kind == BaseGT || kind == DynamicGT || kind == PreproGT

	t.samplerCfg = sampling.Config{
		Fanout:      opt.Fanout,
		Layers:      opt.Layers,
		IncludeSelf: true,
		Seed:        opt.Seed,
		Mode:        sampling.ModeSplit,
	}
	if kind == PyG {
		t.samplerCfg.Workers = 1
	}

	if kind == DynamicGT || kind == PreproGT {
		// The placement policy is fitted offline per device class from
		// modeled kernel times; one instance is shared by every replica
		// (decisions are pure functions of the profile, so sharing is an
		// optimization, not a correctness requirement).
		t.policy = dkp.NewPolicy(dkp.ProfileFor(opt.Device))
	}
	mp := t.modelParams()
	if opt.NumDevices >= 1 {
		// Data-parallel engine: one weight replica per device. DKP stays
		// live — placements are pure functions of the fitted profile and
		// the shard shape, identical on every replica by construction.
		devCfg := opt.Device
		if opt.DevicesPerNode > 0 {
			// Hierarchical fabric: the node size turns the group's flat
			// interconnect into the two-tier NVLink-intra / network-inter
			// model, and the group becomes node-aware end to end (plan
			// node assignment, tiered collectives, split-drain overlap).
			devCfg.Interconnect = gpusim.HierarchicalInterconnect(opt.DevicesPerNode)
		}
		var err error
		t.group, err = multigpu.NewGroup(opt.NumDevices, opt.GradShards, devCfg, t.pinned,
			func() (*core.Model, error) { return models.ByName(opt.Model, mp) })
		if err != nil {
			return nil, err
		}
		if opt.FaultPlan != nil {
			t.group.SetFaultPlan(opt.FaultPlan)
		}
		// Replica 0 is the canonical trained model: validation and
		// inference read the weights the folded updates produce.
		t.Model = t.group.Replica(0)
	} else {
		model, err := models.ByName(opt.Model, mp)
		if err != nil {
			return nil, err
		}
		t.Model = model
	}

	if kind == PreproGT {
		cfg := pipeline.DefaultConfig()
		cfg.Sampler = t.samplerCfg
		cfg.Format = t.format
		// Under the device group, batches stage in host memory only: each
		// device pays the PCIe scatter for its own shards instead.
		cfg.HostOnly = t.group != nil
		t.sched = pipeline.NewScheduler(ds.Graph, ds.Features, ds.Labels, t.Engine.Dev, cfg)
	} else {
		// Serial-prep frameworks own a persistent sampler (its hop scratch
		// pool is the reuse surface); the pipelined scheduler owns its own.
		t.sampler = sampling.New(ds.Graph, t.samplerCfg)
	}
	return t, nil
}

// modelParams assembles the model factory parameters of the trainer's
// architecture (shared by New and SnapshotModel).
func (t *Trainer) modelParams() models.Params {
	return models.Params{
		InDim:     t.Dataset.FeatureDim,
		Hidden:    t.Opt.Hidden,
		OutDim:    maxInt(int(maxLabel(t.Dataset.Labels))+1, 2),
		Layers:    t.Opt.Layers,
		Seed:      t.Opt.Seed,
		Strategy:  t.strategy,
		EnableDKP: t.Kind == DynamicGT || t.Kind == PreproGT,
		Policy:    t.policy,
	}
}

// OutDim returns the model's logit width (the per-dst row a served query
// scatters back).
func (t *Trainer) OutDim() int {
	return t.Model.Layers[len(t.Model.Layers)-1].Spec.OutDim
}

// SnapshotModel builds a fresh replica of the trainer's architecture and
// copies the current trained weights into it — the weight snapshot a
// serving replica binds. The snapshot fixes one placement per layer at
// construction, computed from the fitted profile and the trainer's
// canonical batch shape (ServingPlacements): a pure function of trainer
// state, never of the serving configuration or of how a query was
// coalesced, so a query's logits are bitwise identical on any replica at
// any batch composition. Per-batch shape-keyed decisions stay a training
// optimization.
func (t *Trainer) SnapshotModel() (*core.Model, error) {
	mp := t.modelParams()
	mp.EnableDKP = false
	m, err := models.ByName(t.Opt.Model, mp)
	if err != nil {
		return nil, err
	}
	for li, l := range t.Model.Layers {
		copy(m.Layers[li].W.Data, l.W.Data)
		copy(m.Layers[li].B, l.B)
	}
	m.SetLayerPlacements(t.ServingPlacements())
	return m, nil
}

// ServingPlacements returns the fixed per-layer placements a serving
// snapshot pins: the policy evaluated on the trainer's canonical layer
// shapes (servingDims). Non-DKP frameworks pin aggregation-first
// throughout. The result depends only on trainer-level state (profile,
// model architecture, sampling configuration, dataset size), which is what
// makes coalesced and serial serving bitwise identical with the policy
// live.
func (t *Trainer) ServingPlacements() []dkp.Placement {
	ps := make([]dkp.Placement, len(t.Model.Layers))
	if t.policy == nil {
		return ps // zero value: aggregation-first
	}
	for li, l := range t.Model.Layers {
		ps[li] = t.policy.Decide(t.servingDims(li), li == 0, l.Spec.Modes.WeightCols(l.Spec.InDim))
	}
	return ps
}

// servingDims models the expected shape of layer li's sampled subgraph for
// a canonical batch of Opt.BatchSize dsts: each hop below the batch
// multiplies the frontier by the sampling branch factor (Fanout plus the
// self edge), capped by the dataset's vertex count. Layer 0 executes first
// on the largest frontier.
func (t *Trainer) servingDims(li int) dkp.Dims {
	branch := t.Opt.Fanout + 1 // sampled neighbors + self edge
	nv := t.Dataset.NumVertices()
	capped := func(n int) int {
		if n > nv {
			return nv
		}
		return n
	}
	nDst := t.Opt.BatchSize
	for hop := 0; hop < t.Opt.Layers-1-li; hop++ {
		nDst = capped(nDst * branch)
	}
	nSrc := capped(nDst * branch)
	l := t.Model.Layers[li]
	return dkp.Dims{
		NSrc:  nSrc,
		NDst:  nDst,
		NEdge: nDst * branch,
		NFeat: l.Spec.InDim,
		NHid:  l.Spec.OutDim,
	}
}

// BatchStats reports one end-to-end training batch.
type BatchStats struct {
	Prep      time.Duration
	Compute   time.Duration
	Total     time.Duration
	Loss      float64
	PrepParts *metrics.Breakdown
	// Counters is the device work performed during compute.
	Counters gpusim.Counters
}

// Prepare runs the framework's preprocessing for one batch of dst
// vertices.
func (t *Trainer) Prepare(dsts []graph.VID, tl *metrics.Timeline) (*prep.Batch, error) {
	return t.PrepareInto(dsts, tl, nil)
}

// PrepareInto is Prepare with the batch's storage drawn from a prefetch
// ring slot — dense host buffers from its arena, producer structures
// (sampler result, layer graphs, labels) from its structure pool. A nil
// slot falls back to plain allocation (validation and probe batches).
func (t *Trainer) PrepareInto(dsts []graph.VID, tl *metrics.Timeline, slot *pipeline.Slot) (*prep.Batch, error) {
	var b *prep.Batch
	var err error
	if t.sched != nil {
		b, err = t.sched.PrepareSlot(dsts, tl, slot)
	} else {
		b, err = prep.Serial(t.sampler, t.Dataset.Features, t.Dataset.Labels,
			t.Engine.Dev, dsts,
			prep.Config{Format: t.format, Pinned: t.pinned, Arena: slot.TensorArena(),
				Structs: slot.StructPool(), HostOnly: t.group != nil, Cache: t.cache})
	}
	return b, err
}

// PrepareTrainInto is PrepareInto for training batches: with a device group
// it also attaches the data-parallel sub-batch plan — rebuilt in place from
// the slot's recycled plan — so the prefetch ring's producer carves shards
// while the consumer computes. Validation and probe batches go through
// PrepareInto and skip the partitioning work (the group recomputes lazily
// if a training batch ever arrives without a plan).
func (t *Trainer) PrepareTrainInto(dsts []graph.VID, slot *pipeline.Slot) (*prep.Batch, error) {
	b, err := t.PrepareInto(dsts, nil, slot)
	if err == nil && t.group != nil && b.Labels != nil {
		old, _ := slot.StructPool().TakePlan().(*multigpu.BatchPlan)
		b.SubBatches, err = multigpu.PartitionBatchNodesReuse(b, t.group.NumShards(), t.group.NumNodes(), old)
		if err != nil {
			b.Release()
			return nil, err
		}
	}
	return b, err
}

// NewRing builds this framework's prefetch ring over the dst lists:
// overlap-capable frameworks prepare PrefetchDepth batches ahead on a
// background producer; the serial baselines get a synchronous depth-0 ring
// so every framework trains through the same interface.
func (t *Trainer) NewRing(lists [][]graph.VID) *pipeline.Ring {
	return t.NewRingN(len(lists), func(i int) []graph.VID { return lists[i] })
}

// NewRingN is NewRing with the n dst lists drawn lazily from next, so long
// schedules (the training driver feeds whole runs through one ring) never
// materialize every batch's dst list up front. next runs on the ring's
// producer goroutine; it must not be shared with concurrent dst drawing.
func (t *Trainer) NewRingN(n int, next func(i int) []graph.VID) *pipeline.Ring {
	depth := 0
	if t.overlap {
		depth = t.Opt.PrefetchDepth
		if depth <= 0 {
			depth = 2
		}
	}
	if t.slots == nil {
		t.slots = pipeline.NewSlotRing(depth + 2)
	}
	return pipeline.NewRingShared(depth, n, t.slots, next, func(d []graph.VID, s *pipeline.Slot) (*prep.Batch, error) {
		return t.PrepareTrainInto(d, s)
	})
}

// input converts a prepared batch to a model input.
func (t *Trainer) input(b *prep.Batch) (*core.Input, error) {
	graphs := make([]*kernels.Graphs, len(b.Layers))
	for i, l := range b.Layers {
		graphs[i] = &kernels.Graphs{COO: l.COO, CSR: l.CSR, CSC: l.CSC}
	}
	x, err := t.Engine.Upload(b.Embed.Data, "batch-x")
	if err != nil {
		return nil, err
	}
	return &core.Input{Graphs: graphs, X: x, Labels: b.Labels}, nil
}

// Compute runs FWP + BWP + update on a prepared batch and returns the
// loss; the caller owns releasing the batch. With NumDevices set the step
// dispatches to the data-parallel device group instead of the single
// engine device.
func (t *Trainer) Compute(b *prep.Batch) (float64, error) {
	if t.group != nil {
		return t.group.TrainBatch(b, t.Opt.LearningRate)
	}
	in, err := t.input(b)
	if err != nil {
		return 0, err
	}
	loss, err := t.Model.TrainStep(t.Engine.Ctx, in, t.Opt.LearningRate)
	in.X.Free()
	// The batch's graphs are released by the caller; drop the per-graph
	// memos so they do not pin the graph storage.
	t.Engine.Ctx.EndBatch()
	return loss, err
}

// InferDispatch is retained FWP-only dispatch state: the layer graph
// views, their pointer directory and the input header are rebuilt in place
// for every served batch instead of reallocated (the GroupDev discipline,
// applied to inference). The trainer's fast path and every serving replica
// own one; a dispatch serves one inference at a time (replicas never share
// theirs).
type InferDispatch struct {
	graphs []kernels.Graphs
	gptrs  []*kernels.Graphs
	input  core.Input
}

// Infer runs forward propagation only — no gradients, no update — for the
// prepared batch on the given kernel context and model, with x the batch's
// device-held feature matrix (the caller uploads/wraps it and frees it
// afterwards, alongside the returned logits). The dispatch state is rebuilt
// in place, so a warm inference adds no per-batch allocations of its own.
func (d *InferDispatch) Infer(ctx *kernels.Ctx, m *core.Model, b *prep.Batch, x *kernels.DeviceMatrix) (*kernels.DeviceMatrix, error) {
	if cap(d.graphs) < len(b.Layers) {
		d.graphs = make([]kernels.Graphs, len(b.Layers))
		d.gptrs = make([]*kernels.Graphs, len(b.Layers))
		for i := range d.graphs {
			d.gptrs[i] = &d.graphs[i]
		}
	}
	d.graphs = d.graphs[:cap(d.graphs)]
	for i, l := range b.Layers {
		d.graphs[i] = kernels.Graphs{COO: l.COO, CSR: l.CSR, CSC: l.CSC}
	}
	d.input = core.Input{Graphs: d.gptrs[:len(b.Layers)], X: x, Labels: b.Labels}
	logits, err := m.Infer(ctx, &d.input)
	d.input = core.Input{}
	return logits, err
}

// InferBatch runs forward propagation only — no gradients, no update — on a
// prepared batch through the trainer's retained inference dispatch and
// returns the logits (device-held; the caller frees them). Under a device
// group the canonical replica-0 weights are used. This is the serving fast
// path: no gradient shards, no label buffers, no backward workspaces ever
// exist, and with a warm slot feeding PrepareInto a served batch allocates
// a small constant (BenchmarkServeQuery guards it).
func (t *Trainer) InferBatch(b *prep.Batch) (*kernels.DeviceMatrix, error) {
	x, err := t.Engine.Upload(b.Embed.Data, "serve-x")
	if err != nil {
		return nil, err
	}
	logits, err := t.infer.Infer(t.Engine.Ctx, t.Model, b, x)
	x.Free()
	t.Engine.Ctx.EndBatch()
	return logits, err
}

// Serve prepares one coalesced query batch through the slot and runs the
// FWP-only fast path, returning the logits and the prepared batch. The
// caller frees the logits, releases the batch and recycles the slot —
// the warm loop BenchmarkServeQuery gates.
func (t *Trainer) Serve(dsts []graph.VID, slot *pipeline.Slot) (*kernels.DeviceMatrix, *prep.Batch, error) {
	b, err := t.PrepareInto(dsts, nil, slot)
	if err != nil {
		return nil, nil, err
	}
	logits, err := t.InferBatch(b)
	if err != nil {
		b.Release()
		return nil, nil, err
	}
	return logits, b, nil
}

// Evaluate runs inference on a prepared batch and returns classification
// accuracy (no gradient update). The caller owns releasing the batch.
func (t *Trainer) Evaluate(b *prep.Batch) (float64, error) {
	in, err := t.input(b)
	if err != nil {
		return 0, err
	}
	acc, err := t.Model.Evaluate(t.Engine.Ctx, in)
	in.X.Free()
	t.Engine.Ctx.EndBatch()
	return acc, err
}

// TrainBatch runs one full batch (prep + compute) without cross-batch
// overlap and reports its stats.
func (t *Trainer) TrainBatch() (*BatchStats, error) {
	dsts := t.nextDsts()
	st := &BatchStats{}
	t0 := time.Now()
	b, err := t.Prepare(dsts, nil)
	if err != nil {
		return nil, err
	}
	st.Prep = time.Since(t0)
	st.PrepParts = b.Breakdown

	var before gpusim.Counters
	if t.group == nil {
		before = t.Engine.Dev.Snapshot()
	}
	t1 := time.Now()
	st.Loss, err = t.Compute(b)
	if err != nil {
		b.Release()
		return nil, err
	}
	st.Compute = time.Since(t1)
	if t.group != nil {
		st.Counters = t.group.LastStats().Counters
	} else {
		st.Counters = t.Engine.Dev.Snapshot().Sub(before)
	}
	st.Total = time.Since(t0)
	b.Release()
	return st, nil
}

// TrainEpoch runs n batches under the framework's overlap discipline
// (prefetching ahead through the ring where the framework supports it) and
// returns the end-to-end wall time plus the mean loss.
func (t *Trainer) TrainEpoch(n int) (time.Duration, float64, error) {
	if n <= 0 {
		return 0, 0, nil
	}
	dstLists := make([][]graph.VID, n)
	for i := range dstLists {
		dstLists[i] = t.nextDsts()
	}
	ring := t.NewRing(dstLists)
	defer ring.Stop()
	return t.TrainStream(ring, n)
}

// TrainStream consumes n prepared batches from the ring, running compute +
// update on each, and returns the wall time plus the mean loss. The ring
// may span multiple epochs (the training driver feeds one ring with the
// whole schedule so preprocessing of epoch e+1 overlaps the tail of epoch
// e); the caller owns stopping it.
func (t *Trainer) TrainStream(ring *pipeline.Ring, n int) (time.Duration, float64, error) {
	if n <= 0 {
		return 0, 0, nil
	}
	start := time.Now()
	mean, err := t.TrainStreamHook(ring, n, nil)
	return time.Since(start), mean, err
}

// ModeledPrep returns the modeled preprocessing latency of one batch under
// this framework's scheduling discipline. Like ModeledCompute, it is
// independent of the simulator's host: it evaluates the pipeline cost model
// on the batch's sampled-subgraph shape (see internal/pipeline.PrepCostModel).
func (t *Trainer) ModeledPrep(b *prep.Batch) time.Duration {
	cm := pipeline.DefaultPrepCostModel()
	tt := cm.ModelBatch(b, t.Dataset.FeatureDim, t.pinned)
	switch t.Kind {
	case PreproGT:
		return cm.Pipelined(tt)
	case SALIENT:
		return cm.SALIENT(tt)
	default:
		return cm.Serial(tt)
	}
}

// ModeledTaskTimes returns the per-task modeled preprocessing times for a
// prepared batch (the Fig 12a / Fig 20 breakdown data), with the batch's
// embedding-cache residency discounted from the K/T tasks.
func (t *Trainer) ModeledTaskTimes(b *prep.Batch) pipeline.TaskTimes {
	return pipeline.DefaultPrepCostModel().ModelBatch(b, t.Dataset.FeatureDim, t.pinned)
}

// ModeledCompute estimates the GPU time of one training batch's kernels
// under the device kernel-time model: the simulator executes kernels on
// the host CPU, so wall-clock compute is orders of magnitude above what
// the modeled RTX 3090 would take; end-to-end comparisons use this
// estimate (see gpusim.KernelTimeModel).
func (t *Trainer) ModeledCompute(st *BatchStats) time.Duration {
	return t.Engine.Dev.Estimate(gpusim.DefaultKernelTimeModel(), st.Counters)
}

// SimulatedEpoch runs n batches and returns the simulated end-to-end
// latency: modeled preprocessing time (under this framework's scheduling
// discipline) combined with modeled GPU compute time. Frameworks that
// overlap preprocessing with GPU compute pay the larger of the two per
// batch; the others pay their sum. Both components are modeled rather than
// wall-clock measured, because the simulator runs kernels on the host CPU
// and the host core count would otherwise distort the comparison.
func (t *Trainer) SimulatedEpoch(n int) (time.Duration, error) {
	if n <= 0 {
		return 0, nil
	}
	st, err := t.TrainBatch()
	if err != nil {
		return 0, err
	}
	compute := t.ModeledCompute(st)
	var total time.Duration
	for i := 0; i < n; i++ {
		b, err := t.Prepare(t.nextDsts(), nil)
		if err != nil {
			return 0, err
		}
		prep := t.ModeledPrep(b)
		b.Release()
		if t.overlap {
			// Preprocessing and GPU compute overlap across batches; the
			// batch latency is the larger of the two.
			if prep > compute {
				total += prep
			} else {
				total += compute
			}
		} else {
			total += prep + compute
		}
	}
	return total, nil
}

// Warmup runs n training batches before measurement. The DKP cost model
// is fitted offline by dkp.Calibrate at engine construction, so no
// first-epoch observation pass remains — warmup only brings caches and
// pools to steady state.
func (t *Trainer) Warmup(n int) error {
	for i := 0; i < n; i++ {
		if _, err := t.TrainBatch(); err != nil {
			return err
		}
	}
	return nil
}

// NextDsts draws the next deterministic batch of dst vertices — the
// sequence the epoch drivers feed into the prefetch ring.
func (t *Trainer) NextDsts() []graph.VID { return t.nextDsts() }

// nextDsts draws the next deterministic batch of dst vertices.
func (t *Trainer) nextDsts() []graph.VID {
	t.batchSeq++
	return t.Dataset.BatchDsts(t.Opt.BatchSize, t.Opt.Seed*1_000_003+t.batchSeq)
}

func maxLabel(labels []int32) int32 {
	var m int32
	for _, l := range labels {
		if l > m {
			m = l
		}
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
