package frameworks

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"graphtensor/internal/pipeline"
)

// ErrCheckpointCorrupt marks a snapshot that fails structural or checksum
// validation — truncated file, bad magic, flipped bits. Restore callers
// (the training driver) treat it as "fall back to the previous good
// snapshot", never as "start from zero weights".
var ErrCheckpointCorrupt = errors.New("frameworks: checkpoint corrupt")

// checkpointMagic is the versioned file signature; bumping the trailing
// digit invalidates every older snapshot rather than misreading it.
const checkpointMagic = "GTCKPT1\n"

// Checkpoint writes a restartable snapshot of the trainer to path: the
// canonical weights (replica 0 under a device group), the schedule cursor
// `step` (consumed-batch count — the only RNG state SGD training has beyond
// the seed, since the optimizer itself is stateless) and the seed +
// architecture dims that guard a mismatched restore. The snapshot is
// CRC32-sealed and lands via write-to-temp + fsync + rename, so a crash
// mid-checkpoint leaves the previous file intact and a torn write is
// detected, not silently loaded.
func (t *Trainer) Checkpoint(path string, step uint64) error {
	var buf bytes.Buffer
	buf.WriteString(checkpointMagic)
	w64 := func(v uint64) { binary.Write(&buf, binary.LittleEndian, v) }
	w64(t.Opt.Seed)
	w64(step)
	w64(uint64(len(t.Model.Layers)))
	for _, l := range t.Model.Layers {
		w64(uint64(l.W.Rows))
		w64(uint64(l.W.Cols))
		w64(uint64(len(l.B)))
		writeF32(&buf, l.W.Data)
		writeF32(&buf, l.B)
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())
	binary.Write(&buf, binary.LittleEndian, sum)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Restore loads a Checkpoint snapshot, installs its weights into the model
// (and every data-parallel replica) and rewinds the schedule cursor, so the
// next consumed batch is exactly the one the interrupted run would have
// drawn next — on any device count. It returns the restored step. A damaged
// file fails with ErrCheckpointCorrupt (wrapped); a structurally valid
// snapshot of a different seed or architecture fails with a plain error,
// because loading it would be silent nonsense, not damage.
func (t *Trainer) Restore(path string) (uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(raw) < len(checkpointMagic)+4 || string(raw[:len(checkpointMagic)]) != checkpointMagic {
		return 0, fmt.Errorf("%w: %s: bad magic or truncated header", ErrCheckpointCorrupt, path)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return 0, fmt.Errorf("%w: %s: checksum mismatch", ErrCheckpointCorrupt, path)
	}
	r := bytes.NewReader(body[len(checkpointMagic):])
	r64 := func() uint64 {
		var v uint64
		if err == nil {
			err = binary.Read(r, binary.LittleEndian, &v)
		}
		return v
	}
	seed, step, nLayers := r64(), r64(), r64()
	if err != nil {
		return 0, fmt.Errorf("%w: %s: truncated header", ErrCheckpointCorrupt, path)
	}
	if seed != t.Opt.Seed {
		return 0, fmt.Errorf("frameworks: checkpoint %s: seed %d does not match trainer seed %d", path, seed, t.Opt.Seed)
	}
	if int(nLayers) != len(t.Model.Layers) {
		return 0, fmt.Errorf("frameworks: checkpoint %s: %d layers, trainer model has %d", path, nLayers, len(t.Model.Layers))
	}
	weights := make([][]float32, 0, 2*nLayers)
	for li, l := range t.Model.Layers {
		rows, cols, blen := r64(), r64(), r64()
		if err != nil {
			return 0, fmt.Errorf("%w: %s: truncated layer %d header", ErrCheckpointCorrupt, path, li)
		}
		if int(rows) != l.W.Rows || int(cols) != l.W.Cols || int(blen) != len(l.B) {
			return 0, fmt.Errorf("frameworks: checkpoint %s: layer %d is %dx%d/%d, trainer model wants %dx%d/%d",
				path, li, rows, cols, blen, l.W.Rows, l.W.Cols, len(l.B))
		}
		w := make([]float32, rows*cols)
		b := make([]float32, blen)
		if err := readF32(r, w); err != nil {
			return 0, fmt.Errorf("%w: %s: truncated layer %d weights", ErrCheckpointCorrupt, path, li)
		}
		if err := readF32(r, b); err != nil {
			return 0, fmt.Errorf("%w: %s: truncated layer %d bias", ErrCheckpointCorrupt, path, li)
		}
		weights = append(weights, w, b)
	}
	if r.Len() != 0 {
		return 0, fmt.Errorf("%w: %s: %d trailing bytes", ErrCheckpointCorrupt, path, r.Len())
	}

	// Validation complete — only now touch live state. Every replica gets
	// the same restored weights; the cursor makes nextDsts resume at the
	// interrupted run's next draw.
	for li := range t.Model.Layers {
		copy(t.Model.Layers[li].W.Data, weights[2*li])
		copy(t.Model.Layers[li].B, weights[2*li+1])
	}
	if t.group != nil {
		for i := 1; i < t.group.NumDevices(); i++ {
			rep := t.group.Replica(i)
			for li := range rep.Layers {
				copy(rep.Layers[li].W.Data, weights[2*li])
				copy(rep.Layers[li].B, weights[2*li+1])
			}
		}
	}
	t.batchSeq = step
	return step, nil
}

// TrainStreamHook is TrainStream with a callback after every consumed
// batch — the training driver's checkpoint cadence rides it. A non-nil
// error from after stops the stream and is returned as-is.
func (t *Trainer) TrainStreamHook(ring *pipeline.Ring, n int, after func(i int, loss float64) error) (float64, error) {
	var lossSum float64
	for i := 0; i < n; i++ {
		b, err := ring.Next()
		if err != nil {
			return 0, err
		}
		loss, err := t.Compute(b)
		if err != nil {
			b.Release()
			return 0, err
		}
		b.Release()
		lossSum += loss
		if after != nil {
			if err := after(i, loss); err != nil {
				return 0, err
			}
		}
	}
	if n <= 0 {
		return 0, nil
	}
	return lossSum / float64(n), nil
}

func writeF32(buf *bytes.Buffer, v []float32) {
	var scratch [4]byte
	for _, f := range v {
		binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(f))
		buf.Write(scratch[:])
	}
}

func readF32(r *bytes.Reader, dst []float32) error {
	var scratch [4]byte
	for i := range dst {
		if _, err := io.ReadFull(r, scratch[:]); err != nil {
			return err
		}
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(scratch[:]))
	}
	return nil
}
