package frameworks

import (
	"testing"

	"graphtensor/internal/pipeline"
)

// TestServeWarmSlotAllocFlat guards the serving fast path's allocation
// floor: with a warm slot, the marginal allocations of one more served
// batch (prepare through the pipelined scheduler + FWP-only inference) are
// a small constant, independent of how many queries ran before — the
// property BenchmarkServeQuery ratchets in the bench suite.
func TestServeWarmSlotAllocFlat(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	ds := testDS(t)
	tr, err := New(PreproGT, ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	slot := pipeline.NewSlot()
	dsts := ds.BatchDsts(40, 11)

	serve := func(n int) {
		for i := 0; i < n; i++ {
			logits, b, err := tr.Serve(dsts, slot)
			if err != nil {
				t.Fatal(err)
			}
			logits.Free()
			b.Release()
			slot.Recycle(b)
		}
	}
	serve(4) // warm the slot and every pooled buffer

	a4 := testing.AllocsPerRun(10, func() { serve(4) })
	a12 := testing.AllocsPerRun(10, func() { serve(12) })
	marginal := (a12 - a4) / 8
	if marginal > 150 {
		t.Errorf("warm served batch allocates %.1f allocs (4 queries: %.0f, 12 queries: %.0f); want a small constant",
			marginal, a4, a12)
	}
}

// TestInferBatchMatchesClassicPath: the pooled FWP-only fast path must
// compute bitwise the logits the classic allocating input path computes.
func TestInferBatchMatchesClassicPath(t *testing.T) {
	ds := testDS(t)
	tr, err := New(BaseGT, ds, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.TrainBatch(); err != nil {
		t.Fatal(err)
	}
	dsts := ds.BatchDsts(30, 5)

	b1, err := tr.Prepare(dsts, nil)
	if err != nil {
		t.Fatal(err)
	}
	logits, err := tr.InferBatch(b1)
	if err != nil {
		t.Fatal(err)
	}
	fast := append([]float32(nil), logits.M.Data...)
	logits.Free()
	b1.Release()

	b2, err := tr.Prepare(dsts, nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := tr.input(b2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tr.Model.Infer(tr.Engine.Ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range ref.M.Data {
		if fast[i] != want {
			t.Fatalf("logit %d: fast path %g != classic path %g", i, fast[i], want)
		}
	}
	ref.Free()
	in.X.Free()
	tr.Engine.Ctx.EndBatch()
	b2.Release()
}
