package frameworks

import (
	"testing"

	"graphtensor/internal/fault"
)

// TestTrainerFaultPlanShrinksGroup: Options.FaultPlan reaches the device
// group — a device killed mid-epoch shrinks the group, and the trainer's
// trajectory through the full production path (prefetch ring, sub-batch
// plans) stays bitwise identical to a fault-free run.
func TestTrainerFaultPlanShrinksGroup(t *testing.T) {
	ref := ckptTrainer(t, 1)
	mustTrain(t, ref, 4)
	refW := collectWeights(ref)

	opt := quickOpts()
	opt.NumDevices = 2
	opt.FaultPlan = fault.Schedule().Kill(1, 1)
	tr, err := New(BaseGT, testDS(t), opt)
	if err != nil {
		t.Fatal(err)
	}
	mustTrain(t, tr, 4)
	if got := tr.Group().DeadDevices(); got != 1 {
		t.Fatalf("DeadDevices = %d, want 1", got)
	}
	if got := tr.Group().NumDevices(); got != 1 {
		t.Fatalf("NumDevices = %d after the kill, want 1", got)
	}
	for i, w := range collectWeights(tr) {
		if w != refW[i] {
			t.Fatalf("weight[%d] = %v under device death, fault-free %v", i, w, refW[i])
		}
	}
}
