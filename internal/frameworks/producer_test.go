package frameworks

import (
	"runtime"
	"testing"

	"graphtensor/internal/multigpu"
	"graphtensor/internal/pipeline"
)

// TestPooledProducerTrajectoryBitwise extends the determinism guard to the
// pooled producer: training through the prefetch ring — slot-recycled
// sampler results, layer structures and sub-batch plans, at GOMAXPROCS 8 —
// must reproduce bit for bit the trajectory of a run that allocates every
// batch fresh (nil slot) at GOMAXPROCS 1. Covered for both the classic
// single-device engine and the data-parallel group.
func TestPooledProducerTrajectoryBitwise(t *testing.T) {
	ds := testDS(t)
	const epochs, batches = 3, 4
	for _, nd := range []int{0, 2} {
		opt := quickOpts()
		opt.NumDevices = nd

		pooled, err := New(PreproGT, ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		prev := runtime.GOMAXPROCS(8)
		var pooledLoss []float64
		for e := 0; e < epochs; e++ {
			_, loss, err := pooled.TrainEpoch(batches)
			if err != nil {
				runtime.GOMAXPROCS(prev)
				t.Fatal(err)
			}
			pooledLoss = append(pooledLoss, loss)
		}
		runtime.GOMAXPROCS(1)

		fresh, err := New(PreproGT, ds, opt)
		if err != nil {
			runtime.GOMAXPROCS(prev)
			t.Fatal(err)
		}
		var freshLoss []float64
		for e := 0; e < epochs; e++ {
			var sum float64
			for i := 0; i < batches; i++ {
				b, err := fresh.Prepare(fresh.NextDsts(), nil)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					t.Fatal(err)
				}
				loss, err := fresh.Compute(b)
				b.Release()
				if err != nil {
					runtime.GOMAXPROCS(prev)
					t.Fatal(err)
				}
				sum += loss
			}
			freshLoss = append(freshLoss, sum/batches)
		}
		runtime.GOMAXPROCS(prev)

		for e := range pooledLoss {
			if pooledLoss[e] != freshLoss[e] {
				t.Errorf("devices=%d epoch %d: pooled-producer loss %v != fresh-allocation loss %v",
					nd, e, pooledLoss[e], freshLoss[e])
			}
		}
		w1, w2 := collectWeights(pooled), collectWeights(fresh)
		for i := range w1 {
			if w1[i] != w2[i] {
				t.Fatalf("devices=%d: weight[%d] differs between pooled and fresh producer", nd, i)
			}
		}
	}
}

// TestPlanSlotAliasing: a shard plan recycled into slot N's next batch must
// be a different plan object (with disjoint shard storage) from the plan an
// in-flight batch in slot M still holds.
func TestPlanSlotAliasing(t *testing.T) {
	ds := testDS(t)
	opt := quickOpts()
	opt.NumDevices = 2
	tr, err := New(BaseGT, ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	slotN, slotM := pipeline.NewSlot(), pipeline.NewSlot()
	dsts := tr.NextDsts()

	b1, err := tr.PrepareTrainInto(dsts, slotN)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := tr.PrepareTrainInto(tr.NextDsts(), slotM)
	if err != nil {
		t.Fatal(err)
	}
	plan1 := b1.SubBatches.(*multigpu.BatchPlan)
	plan2 := b2.SubBatches.(*multigpu.BatchPlan)
	if plan1 == plan2 {
		t.Fatal("distinct slots handed out the same plan")
	}
	b1.Release()
	slotN.Recycle(b1)

	b3, err := tr.PrepareTrainInto(dsts, slotN)
	if err != nil {
		t.Fatal(err)
	}
	plan3 := b3.SubBatches.(*multigpu.BatchPlan)
	if plan3 != plan1 {
		t.Error("slot N's recycled plan was not rebuilt in place for its next batch")
	}
	if plan3 == plan2 {
		t.Fatal("slot N's batch holds the plan of in-flight slot M")
	}
	for s := range plan3.Subs {
		a, b := &plan3.Subs[s], &plan2.Subs[s]
		if len(a.Dsts) > 0 && len(b.Dsts) > 0 && &a.Dsts[0] == &b.Dsts[0] {
			t.Fatalf("shard %d: slot N's plan aliases in-flight slot M's dst storage", s)
		}
		for li := range a.Layers {
			if a.Layers[li].CSR != nil && a.Layers[li].CSR == b.Layers[li].CSR {
				t.Fatalf("shard %d layer %d: localized CSR shared across slots", s, li)
			}
		}
	}
	b2.Release()
	b3.Release()
}
