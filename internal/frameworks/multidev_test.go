package frameworks

import (
	"testing"

	"graphtensor/internal/graph"
)

// collectWeights flattens the canonical replica's parameters.
func collectWeights(t *Trainer) []float32 {
	var w []float32
	for _, l := range t.Model.Layers {
		w = append(w, l.W.Data...)
		w = append(w, l.B...)
	}
	return w
}

// trainEpochs trains the given device count through the prefetch ring (the
// production path: Compute dispatching to the device group, sub-batch plans
// attached by the ring producer) and returns per-epoch mean losses plus the
// final weights.
func trainEpochs(t *testing.T, kind Kind, numDevices, epochs, batches int) ([]float64, []float32, *Trainer) {
	t.Helper()
	ds := testDS(t)
	opt := quickOpts()
	opt.NumDevices = numDevices
	tr, err := New(kind, ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	for e := 0; e < epochs; e++ {
		_, loss, err := tr.TrainEpoch(batches)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
	}
	return losses, collectWeights(tr), tr
}

// TestFourDeviceTrajectoryMatchesSingle is the acceptance guard of the
// data-parallel engine: 4-device training through the full production path
// (prefetch ring, worker-pool dispatch, PCIe-modeled all-reduce) reproduces
// the 1-device loss and weight trajectory bitwise, and every device's
// memory returns to zero between batches.
func TestFourDeviceTrajectoryMatchesSingle(t *testing.T) {
	for _, kind := range []Kind{BaseGT, PreproGT} {
		oneLoss, oneW, oneTr := trainEpochs(t, kind, 1, 2, 4)
		fourLoss, fourW, fourTr := trainEpochs(t, kind, 4, 2, 4)
		for e := range oneLoss {
			if oneLoss[e] != fourLoss[e] {
				t.Errorf("%s epoch %d: 4-device loss %v != 1-device %v", kind, e, fourLoss[e], oneLoss[e])
			}
		}
		if len(oneW) != len(fourW) {
			t.Fatalf("%s: weight count mismatch", kind)
		}
		for i := range oneW {
			if oneW[i] != fourW[i] {
				t.Fatalf("%s: weight[%d] %v (4 dev) != %v (1 dev)", kind, i, fourW[i], oneW[i])
			}
		}
		for _, tr := range []*Trainer{oneTr, fourTr} {
			for gi, d := range tr.Group().Devices() {
				if m := d.Dev.MemInUse(); m != 0 {
					t.Errorf("%s: device %d holds %d bytes after training, want 0", kind, gi, m)
				}
			}
		}
	}
}

// TestHierarchicalTrajectoryMatchesSingle extends the acceptance guard to
// the multi-node fabric through the full production path: a 4-device group
// split 2 devices per node (hierarchical all-reduce, node-aware shard
// assignment, cross-node scatter) must reproduce the 1-device flat loss and
// weight trajectory bitwise — node assignment steers modeled scheduling and
// communication only, never the partition or the fold order.
func TestHierarchicalTrajectoryMatchesSingle(t *testing.T) {
	ds := testDS(t)
	run := func(numDevices, devsPerNode int) ([]float64, []float32, *Trainer) {
		opt := quickOpts()
		opt.NumDevices = numDevices
		opt.DevicesPerNode = devsPerNode
		tr, err := New(PreproGT, ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		var losses []float64
		for e := 0; e < 2; e++ {
			_, loss, err := tr.TrainEpoch(4)
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, loss)
		}
		return losses, collectWeights(tr), tr
	}
	oneLoss, oneW, _ := run(1, 0)
	hierLoss, hierW, hierTr := run(4, 2)
	if n := hierTr.Group().NumNodes(); n != 2 {
		t.Fatalf("hierarchical group reports %d nodes, want 2", n)
	}
	for e := range oneLoss {
		if oneLoss[e] != hierLoss[e] {
			t.Errorf("epoch %d: hierarchical loss %v != 1-device flat %v", e, hierLoss[e], oneLoss[e])
		}
	}
	if len(oneW) != len(hierW) {
		t.Fatalf("weight count mismatch")
	}
	for i := range oneW {
		if oneW[i] != hierW[i] {
			t.Fatalf("weight[%d] %v (hierarchical) != %v (1 device flat)", i, hierW[i], oneW[i])
		}
	}
	st := hierTr.Group().LastStats()
	if st.Nodes != 2 || st.CrossNodeBytes <= 0 || st.InterNodeTime <= 0 {
		t.Errorf("hierarchical step stats missing the network tier: %+v", st)
	}
	for gi, d := range hierTr.Group().Devices() {
		if m := d.Dev.MemInUse(); m != 0 {
			t.Errorf("device %d holds %d bytes after training, want 0", gi, m)
		}
	}
}

// TestMultiDeviceRingStopReleasesEverything: abandoning a multi-device run
// mid-stream (Ring.Stop with batches prepared ahead) must leave zero live
// device buffers — on the staging engine device (batch buffers) and on
// every group device (arena-scoped compute buffers).
func TestMultiDeviceRingStopReleasesEverything(t *testing.T) {
	ds := testDS(t)
	opt := quickOpts()
	opt.NumDevices = 2
	tr, err := New(PreproGT, ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	ring := tr.NewRingN(12, func(int) []graph.VID { return tr.NextDsts() })
	if _, _, err := tr.TrainStream(ring, 3); err != nil {
		t.Fatal(err)
	}
	ring.Stop() // abandons the prepared-ahead tail
	for _, label := range []string{"batch-embeddings", "batch-graphs"} {
		if n := tr.Engine.Dev.BuffersInUse(label); n != 0 {
			t.Errorf("%d %q buffers live after Stop", n, label)
		}
	}
	for gi, d := range tr.Group().Devices() {
		if m := d.Dev.MemInUse(); m != 0 {
			t.Errorf("group device %d holds %d bytes after Stop, want 0", gi, m)
		}
	}
}

// TestMultiDeviceEvaluate: validation reads the canonical replica's trained
// weights on the staging engine — it must work and stay in [0,1].
func TestMultiDeviceEvaluate(t *testing.T) {
	ds := testDS(t)
	opt := quickOpts()
	opt.NumDevices = 4
	tr, err := New(BaseGT, ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.TrainEpoch(3); err != nil {
		t.Fatal(err)
	}
	b, err := tr.Prepare(ds.BatchDsts(60, 999), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	acc, err := tr.Evaluate(b)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy %g out of range", acc)
	}
}
