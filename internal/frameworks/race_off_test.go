//go:build !race

package frameworks

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count assertions are meaningless under it: the instrumentation
// itself allocates per tracked operation.
const raceEnabled = false
