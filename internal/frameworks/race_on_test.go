//go:build race

package frameworks

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
