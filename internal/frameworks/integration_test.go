package frameworks

import (
	"testing"

	"graphtensor/internal/datasets"
)

// TestTrainingDeterministic: identical seeds produce identical loss
// trajectories, end to end (sampling, preprocessing, kernels, SGD).
func TestTrainingDeterministic(t *testing.T) {
	losses := func() []float64 {
		ds, _ := datasets.Generate("products", datasets.TestScale())
		opt := quickOpts()
		opt.Seed = 123
		tr, _ := New(BaseGT, ds, opt)
		var out []float64
		for i := 0; i < 5; i++ {
			st, err := tr.TrainBatch()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, st.Loss)
		}
		return out
	}
	a, b := losses(), losses()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("batch %d loss diverged: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestOOMOnTinyDevice: a tiny device must OOM for heavy-feature NGCF on the
// DL-approach (the livejournal-NGCF failure of Fig 19), and NAPA must not.
func TestDLApproachOOMsWhereNAPADoesNot(t *testing.T) {
	ds, _ := datasets.Generate("wiki-talk", datasets.TestScale())
	opt := quickOpts()
	opt.Model = "ngcf"
	// Shrink device memory so the DL-approach's sparse2dense blows up.
	opt.Device.MemoryBytes = 6 << 20

	pyg, _ := New(PyG, ds, opt)
	_, errPyG := pyg.TrainBatch()

	napa, _ := New(BaseGT, ds, opt)
	_, errNAPA := napa.TrainBatch()

	// NAPA should comfortably fit where the DL-approach may not; at minimum
	// NAPA must not OOM when the DL-approach does.
	if errNAPA != nil && errPyG == nil {
		t.Errorf("NAPA OOMed (%v) where DL-approach did not", errNAPA)
	}
}

// TestFrameworkLossTrendsDown over many batches on a fixed small graph: even
// with fresh batches, a learnable dataset should trend downward on average.
func TestEndToEndEpochRuns(t *testing.T) {
	ds, _ := datasets.Generate("citation2", datasets.TestScale())
	for _, k := range Kinds() {
		opt := quickOpts()
		tr, _ := New(k, ds, opt)
		if k == DynamicGT || k == PreproGT {
			if err := tr.Warmup(1); err != nil {
				t.Fatalf("%s warmup: %v", k, err)
			}
		}
		d, loss, err := tr.TrainEpoch(3)
		if err != nil {
			t.Fatalf("%s epoch: %v", k, err)
		}
		if d <= 0 {
			t.Errorf("%s reported zero epoch time", k)
		}
		if loss <= 0 {
			t.Errorf("%s reported non-positive loss", k)
		}
	}
}
