package cache

import (
	"testing"

	"graphtensor/internal/graph"
)

func star(hubs, leaves int) *graph.CSR {
	// hubs each receive edges from many leaves -> high in-degree hubs.
	coo := &graph.COO{NumVertices: hubs + leaves}
	for l := 0; l < leaves; l++ {
		for h := 0; h < hubs; h++ {
			coo.Src = append(coo.Src, graph.VID(hubs+l))
			coo.Dst = append(coo.Dst, graph.VID(h))
		}
	}
	csr, _ := graph.COOToCSR(coo)
	return csr
}

func TestDegreePolicyPreloadsHubs(t *testing.T) {
	full := star(3, 50) // vertices 0,1,2 are hubs
	c := New(3, Degree, full)
	for h := graph.VID(0); h < 3; h++ {
		if !c.Resident(h) {
			t.Errorf("hub %d should be cached", h)
		}
	}
	if c.Resident(10) {
		t.Error("leaf should not be cached")
	}
}

func TestPartitionCountsHitsAndMisses(t *testing.T) {
	full := star(2, 20)
	c := New(2, Degree, full)
	hits, misses := c.Partition([]graph.VID{0, 1, 5, 6, 7})
	if len(hits) != 2 {
		t.Errorf("got %d hits, want 2", len(hits))
	}
	if len(misses) != 3 {
		t.Errorf("got %d misses, want 3", len(misses))
	}
	if hr := c.HitRate(); hr != 0.4 {
		t.Errorf("hit rate %g want 0.4", hr)
	}
}

func TestLFULearnsHotVertices(t *testing.T) {
	c := New(2, LFU, nil)
	// Request vertex 5 repeatedly; it should become resident.
	for i := 0; i < 10; i++ {
		c.Partition([]graph.VID{5, 5, 7})
	}
	if !c.Resident(5) {
		t.Error("frequently requested vertex 5 not cached")
	}
	c.Reset()
	if hr := c.HitRate(); hr != 0 {
		t.Errorf("hit rate %g after reset", hr)
	}
}

func TestHitRateImprovesWithLocality(t *testing.T) {
	full := star(5, 100)
	c := New(5, Degree, full)
	// A workload that always samples the hubs should hit often.
	for i := 0; i < 20; i++ {
		c.Partition([]graph.VID{0, 1, 2, 3, 4, graph.VID(5 + i)})
	}
	if c.HitRate() < 0.8 {
		t.Errorf("hit rate %g too low for hub-heavy workload", c.HitRate())
	}
}
