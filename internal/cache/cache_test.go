package cache

import (
	"sync"
	"testing"

	"graphtensor/internal/graph"
)

func star(hubs, leaves int) *graph.CSR {
	// hubs each receive edges from many leaves -> high in-degree hubs.
	coo := &graph.COO{NumVertices: hubs + leaves}
	for l := 0; l < leaves; l++ {
		for h := 0; h < hubs; h++ {
			coo.Src = append(coo.Src, graph.VID(hubs+l))
			coo.Dst = append(coo.Dst, graph.VID(h))
		}
	}
	csr, _ := graph.COOToCSR(coo)
	return csr
}

func TestDegreePolicyPreloadsHubs(t *testing.T) {
	full := star(3, 50) // vertices 0,1,2 are hubs
	c := New(3, Degree, full)
	for h := graph.VID(0); h < 3; h++ {
		if !c.Resident(h) {
			t.Errorf("hub %d should be cached", h)
		}
	}
	if c.Resident(10) {
		t.Error("leaf should not be cached")
	}
}

func TestPartitionCountsHitsAndMisses(t *testing.T) {
	full := star(2, 20)
	c := New(2, Degree, full)
	hits, misses := c.Partition([]graph.VID{0, 1, 5, 6, 7})
	if len(hits) != 2 {
		t.Errorf("got %d hits, want 2", len(hits))
	}
	if len(misses) != 3 {
		t.Errorf("got %d misses, want 3", len(misses))
	}
	if hr := c.HitRate(); hr != 0.4 {
		t.Errorf("hit rate %g want 0.4", hr)
	}
}

func TestLFULearnsHotVertices(t *testing.T) {
	c := New(2, LFU, nil)
	// Request vertex 5 repeatedly; it should become resident.
	for i := 0; i < 10; i++ {
		c.Partition([]graph.VID{5, 5, 7})
	}
	if !c.Resident(5) {
		t.Error("frequently requested vertex 5 not cached")
	}
	c.Reset()
	if hr := c.HitRate(); hr != 0 {
		t.Errorf("hit rate %g after reset", hr)
	}
}

func TestCountResidentMatchesPartition(t *testing.T) {
	full := star(4, 40)
	a := New(4, Degree, full)
	b := New(4, Degree, full)
	req := []graph.VID{0, 1, 2, 3, 9, 11, 0, 30}
	hitsL, missesL := a.Partition(req)
	hits, misses := b.CountResident(req)
	if hits != len(hitsL) || misses != len(missesL) {
		t.Errorf("CountResident (%d,%d) != Partition (%d,%d)", hits, misses, len(hitsL), len(missesL))
	}
	ah, am := a.Stats()
	bh, bm := b.Stats()
	if ah != bh || am != bm {
		t.Errorf("stats diverge: partition (%d,%d) vs count (%d,%d)", ah, am, bh, bm)
	}
}

// TestConcurrentCountResident hammers the lock-free request path from many
// goroutines (run under -race in CI): concurrent LFU touch recording and
// epoch folding must stay data-race free, keep exact aggregate hit/miss
// counters and never publish a snapshot over capacity.
func TestConcurrentCountResident(t *testing.T) {
	const capacity, goroutines, rounds = 64, 8, 200
	for _, policy := range []Policy{Degree, LFU} {
		c := New(capacity, policy, star(capacity, 400))
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				req := make([]graph.VID, 32)
				for r := 0; r < rounds; r++ {
					for i := range req {
						req[i] = graph.VID((g*31 + r*17 + i*i) % (capacity + 400))
					}
					c.CountResident(req)
				}
			}(g)
		}
		wg.Wait()
		h, m := c.Stats()
		if total := int64(goroutines * rounds * 32); h+m != total {
			t.Errorf("policy %d: %d hits + %d misses != %d requests", policy, h, m, total)
		}
		// Fold any buffered touches, then audit the published epoch and the
		// writer-side shard state.
		c.fold()
		if got := len(c.snap.Load().set); got > capacity {
			t.Errorf("policy %d: snapshot holds %d residents over capacity %d", policy, got, capacity)
		}
		if policy == LFU {
			residents := 0
			for i := range c.shards {
				sh := &c.shards[i]
				if len(sh.resident) > sh.capacity {
					t.Errorf("shard %d holds %d residents over capacity %d", i, len(sh.resident), sh.capacity)
				}
				residents += len(sh.resident)
			}
			if residents > capacity {
				t.Errorf("%d residents exceed capacity %d", residents, capacity)
			}
		}
	}
}

// TestEpochSnapshotSemantics pins the RCU discipline: residency reads come
// from the published epoch, so a touched-hot vertex becomes visible only
// after the writer side folds — and the snapshot a reader holds is
// immutable (old epochs keep answering until dropped).
func TestEpochSnapshotSemantics(t *testing.T) {
	c := New(4, LFU, nil)
	before := c.snap.Load()
	// Buffer touches without crossing the fold threshold: no new epoch yet.
	for i := 0; i < 8; i++ {
		c.CountResident([]graph.VID{9, 9, 9})
	}
	if c.snap.Load() != before {
		t.Fatal("epoch republished before the fold threshold")
	}
	if c.Resident(9) {
		t.Fatal("buffered touches leaked into the current epoch")
	}
	c.fold()
	if !c.Resident(9) {
		t.Fatal("fold did not admit the touched vertex")
	}
	if _, ok := before.set[9]; ok {
		t.Fatal("old epoch snapshot was mutated in place")
	}
}

func TestHitRateImprovesWithLocality(t *testing.T) {
	full := star(5, 100)
	c := New(5, Degree, full)
	// A workload that always samples the hubs should hit often.
	for i := 0; i < 20; i++ {
		c.Partition([]graph.VID{0, 1, 2, 3, 4, graph.VID(5 + i)})
	}
	if c.HitRate() < 0.8 {
		t.Errorf("hit rate %g too low for hub-heavy workload", c.HitRate())
	}
}

// BenchmarkCountResident measures the request fast path the preprocessing
// K/T subtasks call per chunk: one snapshot-pointer load plus immutable map
// probes, zero locks and zero allocations per op (the occasional LFU epoch
// fold runs on the writer side and amortizes below one allocation per op
// once membership converges; the original implementation took a shard lock
// per vertex on every lookup).
func BenchmarkCountResident(b *testing.B) {
	full := star(256, 4096)
	req := make([]graph.VID, 512)
	for i := range req {
		req[i] = graph.VID((i * 37) % (256 + 4096))
	}
	for _, tc := range []struct {
		name     string
		policy   Policy
		capacity int
	}{
		{"degree", Degree, 256},
		// The LFU working set fits capacity, so after the first folds the
		// resident membership converges and the steady state republishes
		// nothing — the benchmark then measures the pure read path.
		{"lfu", LFU, 512},
	} {
		b.Run(tc.name, func(b *testing.B) {
			c := New(tc.capacity, tc.policy, full)
			// Warm the LFU admission to its converged membership.
			for i := 0; i < 8; i++ {
				c.CountResident(req)
			}
			c.fold()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.CountResident(req)
			}
		})
	}
}
