// Package cache implements a PaGraph-style GPU-resident embedding cache
// (paper's related work, §VII [38]): frequently-sampled vertices keep their
// embeddings pinned in device memory, so the embedding-lookup (K) and
// transfer (T) preprocessing tasks only touch the cache-miss vertices.
//
// Effectiveness depends on sampling locality, which the paper notes "varies
// on the input datasets and user behaviours" — so this package also reports
// the hit rate, letting the benchmark harness show where caching helps and
// where it does not.
package cache

import (
	"sort"
	"sync"

	"graphtensor/internal/graph"
)

// Policy selects which vertices the cache admits.
type Policy int

const (
	// Degree admits the highest-degree vertices (the PaGraph heuristic:
	// hubs are sampled most often).
	Degree Policy = iota
	// LFU admits the most-frequently-requested vertices, learned online.
	LFU
)

// Cache holds a fixed set of vertices' embeddings device-resident.
type Cache struct {
	mu       sync.Mutex
	capacity int
	policy   Policy
	resident map[graph.VID]struct{}
	freq     map[graph.VID]int

	hits, misses int64
}

// New builds a cache of the given capacity and admission policy over the
// full graph; for the Degree policy it preloads the top-capacity vertices
// by in-degree.
func New(capacity int, policy Policy, full *graph.CSR) *Cache {
	c := &Cache{
		capacity: capacity,
		policy:   policy,
		resident: make(map[graph.VID]struct{}, capacity),
		freq:     map[graph.VID]int{},
	}
	if policy == Degree && full != nil {
		c.preloadByDegree(full)
	}
	return c
}

func (c *Cache) preloadByDegree(full *graph.CSR) {
	type vd struct {
		v graph.VID
		d int
	}
	vs := make([]vd, full.NumVertices)
	for v := 0; v < full.NumVertices; v++ {
		vs[v] = vd{graph.VID(v), full.Degree(graph.VID(v))}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].d > vs[j].d })
	n := c.capacity
	if n > len(vs) {
		n = len(vs)
	}
	for i := 0; i < n; i++ {
		c.resident[vs[i].v] = struct{}{}
	}
}

// Resident reports whether vertex v is cache-resident.
func (c *Cache) Resident(v graph.VID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.resident[v]
	return ok
}

// Partition splits a vertex request list into the cache hits (already
// device-resident, no transfer needed) and misses (must be gathered and
// transferred). It records hit/miss statistics and, for the LFU policy,
// updates admission.
func (c *Cache) Partition(vids []graph.VID) (hits, misses []graph.VID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range vids {
		c.freq[v]++
		if _, ok := c.resident[v]; ok {
			hits = append(hits, v)
			c.hits++
		} else {
			misses = append(misses, v)
			c.misses++
		}
	}
	if c.policy == LFU {
		c.rebalanceLFU()
	}
	return hits, misses
}

// rebalanceLFU keeps the capacity most-frequent vertices resident.
func (c *Cache) rebalanceLFU() {
	if len(c.freq) <= c.capacity {
		for v := range c.freq {
			c.resident[v] = struct{}{}
		}
		return
	}
	type vf struct {
		v graph.VID
		f int
	}
	all := make([]vf, 0, len(c.freq))
	for v, f := range c.freq {
		all = append(all, vf{v, f})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].f > all[j].f })
	c.resident = make(map[graph.VID]struct{}, c.capacity)
	for i := 0; i < c.capacity && i < len(all); i++ {
		c.resident[all[i].v] = struct{}{}
	}
}

// HitRate returns the fraction of requests served from the cache so far.
func (c *Cache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset clears the statistics (not the resident set).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses = 0, 0
}
