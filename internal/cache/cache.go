// Package cache implements a PaGraph-style GPU-resident embedding cache
// (paper's related work, §VII [38]): frequently-sampled vertices keep their
// embeddings pinned in device memory, so the embedding-lookup (K) and
// transfer (T) preprocessing tasks only touch the cache-miss vertices.
//
// Effectiveness depends on sampling locality, which the paper notes "varies
// on the input datasets and user behaviours" — so this package also reports
// the hit rate, letting the benchmark harness show where caching helps and
// where it does not.
//
// Concurrency: the resident set is sharded by a multiplicative VID hash, so
// concurrent preprocessing pipelines (the serving engine's replicas) never
// contend on one global lock. The Degree policy's resident set is immutable
// after construction and is read lock-free; LFU admission takes only the
// touched vertex's shard lock and is O(1) amortized — a candidate displaces
// the least-frequent resident only once its own frequency exceeds the
// shard's cached frequency floor, so the per-lookup full-sort rebalance of
// the original implementation is gone. The cache only ever changes modeled
// preprocessing cost, never batch contents.
package cache

import (
	"sort"
	"sync"
	"sync/atomic"

	"graphtensor/internal/graph"
)

// Policy selects which vertices the cache admits.
type Policy int

const (
	// Degree admits the highest-degree vertices (the PaGraph heuristic:
	// hubs are sampled most often).
	Degree Policy = iota
	// LFU admits the most-frequently-requested vertices, learned online.
	LFU
)

// maxShards bounds the resident-set sharding. Shard count is chosen so each
// shard holds a meaningful slice of the capacity (small caches degrade to
// one shard, the exact semantics of the unsharded implementation).
const maxShards = 32

// shard is one lock domain of the resident set.
type shard struct {
	mu       sync.Mutex
	capacity int
	resident map[graph.VID]struct{}
	// LFU state: request frequencies plus a lower bound on the smallest
	// resident frequency. A candidate at or below the floor cannot displace
	// anything, so the common no-admission path never scans.
	freq  map[graph.VID]int
	floor int
}

// Cache holds a fixed set of vertices' embeddings device-resident.
type Cache struct {
	capacity int
	policy   Policy
	mask     uint64
	shards   []shard

	hits, misses atomic.Int64
}

// New builds a cache of the given capacity and admission policy over the
// full graph; for the Degree policy it preloads the top-capacity vertices
// by in-degree.
func New(capacity int, policy Policy, full *graph.CSR) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	n := 1
	for n < maxShards && capacity/(n*2) >= 8 {
		n *= 2
	}
	c := &Cache{capacity: capacity, policy: policy, mask: uint64(n - 1), shards: make([]shard, n)}
	base, rem := capacity/n, capacity%n
	for i := range c.shards {
		sh := &c.shards[i]
		sh.capacity = base
		if i < rem {
			sh.capacity++
		}
		sh.resident = make(map[graph.VID]struct{}, sh.capacity)
		if policy == LFU {
			sh.freq = map[graph.VID]int{}
		}
	}
	if policy == Degree && full != nil {
		c.preloadByDegree(full)
	}
	return c
}

// shardOf maps a vertex to its lock domain.
func (c *Cache) shardOf(v graph.VID) *shard {
	return &c.shards[(uint64(v)*0x9e3779b97f4a7c15>>33)&c.mask]
}

func (c *Cache) preloadByDegree(full *graph.CSR) {
	type vd struct {
		v graph.VID
		d int
	}
	vs := make([]vd, full.NumVertices)
	for v := 0; v < full.NumVertices; v++ {
		vs[v] = vd{graph.VID(v), full.Degree(graph.VID(v))}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].d > vs[j].d })
	n := c.capacity
	if n > len(vs) {
		n = len(vs)
	}
	// The Degree resident set is the global top-capacity by in-degree —
	// sharding only spreads it across lock domains, it never changes
	// membership (and the set is immutable afterwards, so reads skip the
	// shard locks entirely).
	for i := 0; i < n; i++ {
		c.shardOf(vs[i].v).resident[vs[i].v] = struct{}{}
	}
}

// Capacity returns the configured resident-set capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Resident reports whether vertex v is cache-resident.
func (c *Cache) Resident(v graph.VID) bool {
	sh := c.shardOf(v)
	if c.policy == Degree {
		_, ok := sh.resident[v]
		return ok
	}
	sh.mu.Lock()
	_, ok := sh.resident[v]
	sh.mu.Unlock()
	return ok
}

// CountResident records one request for every vertex in vids and returns
// how many were cache-resident (hits skip the embedding gather and the
// modeled host→device transfer) and how many were not. It is the
// allocation-free request path of the preprocessing K/T subtasks and is
// safe for concurrent use; for the LFU policy it also performs incremental
// admission. A nil cache counts everything as a miss.
func (c *Cache) CountResident(vids []graph.VID) (hits, misses int) {
	if c == nil {
		return 0, len(vids)
	}
	if c.policy == Degree {
		for _, v := range vids {
			if _, ok := c.shardOf(v).resident[v]; ok {
				hits++
			}
		}
	} else {
		for _, v := range vids {
			sh := c.shardOf(v)
			sh.mu.Lock()
			if sh.touch(v) {
				hits++
			}
			sh.mu.Unlock()
		}
	}
	misses = len(vids) - hits
	c.hits.Add(int64(hits))
	c.misses.Add(int64(misses))
	return hits, misses
}

// touch records one LFU request for v and reports whether v was resident
// when the request arrived. Admission is incremental: v joins while the
// shard has spare capacity, and afterwards displaces the least-frequent
// resident only once its own frequency exceeds that resident's. The floor
// field caches the last exactly-computed minimum as a lower bound, so the
// overwhelmingly common "no displacement possible" case is a single
// comparison; the O(capacity) scan runs only when a candidate might win.
// The caller holds the shard lock.
func (sh *shard) touch(v graph.VID) bool {
	f := sh.freq[v] + 1
	sh.freq[v] = f
	if _, ok := sh.resident[v]; ok {
		return true
	}
	if sh.capacity == 0 {
		return false
	}
	if len(sh.resident) < sh.capacity {
		sh.resident[v] = struct{}{}
		return false
	}
	if f <= sh.floor {
		return false
	}
	first := true
	var minV graph.VID
	minF := 0
	for rv := range sh.resident {
		rf := sh.freq[rv]
		if first || rf < minF || (rf == minF && rv < minV) {
			minV, minF, first = rv, rf, false
		}
	}
	sh.floor = minF // exact now; resident frequencies only grow from here
	if f > minF {
		delete(sh.resident, minV)
		sh.resident[v] = struct{}{}
	}
	return false
}

// Partition splits a vertex request list into the cache hits (already
// device-resident, no transfer needed) and misses (must be gathered and
// transferred). It records hit/miss statistics and, for the LFU policy,
// updates admission. Hot paths that only need counts should use the
// allocation-free CountResident instead.
func (c *Cache) Partition(vids []graph.VID) (hits, misses []graph.VID) {
	for _, v := range vids {
		sh := c.shardOf(v)
		var ok bool
		if c.policy == Degree {
			_, ok = sh.resident[v]
		} else {
			sh.mu.Lock()
			ok = sh.touch(v)
			sh.mu.Unlock()
		}
		if ok {
			hits = append(hits, v)
			c.hits.Add(1)
		} else {
			misses = append(misses, v)
			c.misses.Add(1)
		}
	}
	return hits, misses
}

// HitRate returns the fraction of requests served from the cache so far.
func (c *Cache) HitRate() float64 {
	if c == nil {
		return 0
	}
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Reset clears the statistics (not the resident set).
func (c *Cache) Reset() {
	c.hits.Store(0)
	c.misses.Store(0)
}
