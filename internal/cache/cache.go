// Package cache implements a PaGraph-style GPU-resident embedding cache
// (paper's related work, §VII [38]): frequently-sampled vertices keep their
// embeddings pinned in device memory, so the embedding-lookup (K) and
// transfer (T) preprocessing tasks only touch the cache-miss vertices.
//
// Effectiveness depends on sampling locality, which the paper notes "varies
// on the input datasets and user behaviours" — so this package also reports
// the hit rate, letting the benchmark harness show where caching helps and
// where it does not.
//
// Concurrency: residency is read from an immutable epoch snapshot published
// RCU-style through an atomic pointer, so the request path (CountResident,
// the K/T subtasks of every serving replica) takes zero locks and performs
// zero allocations — readers load one pointer and probe a map that is never
// written again. LFU requests are recorded into per-shard lock-free touch
// tables (open-addressed slots claimed by CAS, counted by atomic adds,
// lossy under extreme pressure — admission is a heuristic, the hit/miss
// accounting stays exact); the writer side folds the buffered touches into
// its private frequency/residency state every foldEvery requests and, only
// when membership actually changed, publishes a fresh snapshot. Retired
// snapshots are reclaimed by the garbage collector, which is the RCU grace
// period. The cache only ever changes modeled preprocessing cost, never
// batch contents.
package cache

import (
	"sort"
	"sync"
	"sync/atomic"

	"graphtensor/internal/graph"
)

// Policy selects which vertices the cache admits.
type Policy int

const (
	// Degree admits the highest-degree vertices (the PaGraph heuristic:
	// hubs are sampled most often). The resident set is fixed at
	// construction, so its snapshot is published once and never replaced.
	Degree Policy = iota
	// LFU admits the most-frequently-requested vertices, learned online
	// from the buffered touch stream.
	LFU
)

// maxShards bounds the writer-side sharding of the LFU state. Shard count
// is chosen so each shard holds a meaningful slice of the capacity (small
// caches degrade to one shard, the exact semantics of the unsharded
// implementation).
const maxShards = 32

// touchProbes is the linear-probe window of the lossy touch tables: a
// request that cannot claim or find its vertex within touchProbes slots is
// dropped (the admission heuristic tolerates sampling; exact counters do
// not ride the tables).
const touchProbes = 8

// residency is one immutable epoch snapshot of the resident set. The map is
// fully built before the snapshot pointer is published and never mutated
// afterwards, so readers probe it without synchronization.
type residency struct {
	set map[graph.VID]struct{}
}

// shard is one writer-side lock domain of the LFU state plus its lock-free
// touch table. The resident/freq maps and floor are only touched under the
// cache's fold mutex; the touch table is written by readers and drained by
// the folder.
type shard struct {
	capacity int
	resident map[graph.VID]struct{}
	// freq holds request frequencies; floor caches a lower bound on the
	// smallest resident frequency, so the overwhelmingly common "candidate
	// cannot win" case is a single comparison during the fold.
	freq  map[graph.VID]int
	floor int

	// Lossy touch table: tvid slots hold vid+1 (0 = free) claimed by CAS,
	// tcnt the pending request count folded into freq on the next epoch.
	tvid  []atomic.Uint64
	tcnt  []atomic.Int64
	tmask uint64
}

// Cache holds a fixed set of vertices' embeddings device-resident.
type Cache struct {
	capacity int
	policy   Policy
	mask     uint64
	shards   []shard

	// snap is the published residency epoch readers probe lock-free.
	snap atomic.Pointer[residency]
	// pending counts requests recorded since the last fold; crossing
	// foldEvery triggers the next epoch (TryLock: one folder at a time,
	// readers never wait on it).
	pending   atomic.Int64
	foldEvery int64
	foldMu    sync.Mutex

	hits, misses atomic.Int64
}

// New builds a cache of the given capacity and admission policy over the
// full graph; for the Degree policy it preloads the top-capacity vertices
// by in-degree.
func New(capacity int, policy Policy, full *graph.CSR) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	n := 1
	for n < maxShards && capacity/(n*2) >= 8 {
		n *= 2
	}
	c := &Cache{capacity: capacity, policy: policy, mask: uint64(n - 1), shards: make([]shard, n)}
	base, rem := capacity/n, capacity%n
	for i := range c.shards {
		sh := &c.shards[i]
		sh.capacity = base
		if i < rem {
			sh.capacity++
		}
		if policy == LFU {
			sh.resident = make(map[graph.VID]struct{}, sh.capacity)
			sh.freq = map[graph.VID]int{}
			// Touch tables sized ~4× the shard capacity (min 64 slots) so
			// the hot working set stays claimed between folds.
			ts := 64
			for ts < 4*sh.capacity && ts < 8192 {
				ts *= 2
			}
			sh.tvid = make([]atomic.Uint64, ts)
			sh.tcnt = make([]atomic.Int64, ts)
			sh.tmask = uint64(ts - 1)
		}
	}
	// An epoch folds at least every ~4 capacities' worth of requests (min
	// 1024): frequent enough that admission tracks the workload, rare
	// enough that the fold's work amortizes to ~zero per request.
	c.foldEvery = int64(4 * capacity)
	if c.foldEvery < 1024 {
		c.foldEvery = 1024
	}
	set := make(map[graph.VID]struct{}, capacity)
	if policy == Degree && full != nil {
		preloadByDegree(set, capacity, full)
	}
	c.snap.Store(&residency{set: set})
	return c
}

// shardOf maps a vertex to its writer-side lock domain.
func (c *Cache) shardOf(v graph.VID) *shard {
	return &c.shards[(uint64(v)*0x9e3779b97f4a7c15>>33)&c.mask]
}

// preloadByDegree fills set with the global top-capacity vertices by
// in-degree. The Degree resident set is immutable afterwards, so its one
// published snapshot serves every read for the cache's lifetime.
func preloadByDegree(set map[graph.VID]struct{}, capacity int, full *graph.CSR) {
	type vd struct {
		v graph.VID
		d int
	}
	vs := make([]vd, full.NumVertices)
	for v := 0; v < full.NumVertices; v++ {
		vs[v] = vd{graph.VID(v), full.Degree(graph.VID(v))}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].d > vs[j].d })
	n := capacity
	if n > len(vs) {
		n = len(vs)
	}
	for i := 0; i < n; i++ {
		set[vs[i].v] = struct{}{}
	}
}

// Capacity returns the configured resident-set capacity.
func (c *Cache) Capacity() int { return c.capacity }

// Resident reports whether vertex v is resident in the current epoch.
func (c *Cache) Resident(v graph.VID) bool {
	_, ok := c.snap.Load().set[v]
	return ok
}

// CountResident records one request for every vertex in vids and returns
// how many were resident in the current epoch (hits skip the embedding
// gather and the modeled host→device transfer) and how many were not. It is
// the allocation-free, lock-free request path of the preprocessing K/T
// subtasks: residency is probed on one immutable snapshot, LFU touches go
// to the lock-free per-shard tables, and at most one caller per epoch folds
// them (TryLock — concurrent readers never wait). A nil cache counts
// everything as a miss.
func (c *Cache) CountResident(vids []graph.VID) (hits, misses int) {
	if c == nil {
		return 0, len(vids)
	}
	set := c.snap.Load().set
	for _, v := range vids {
		if _, ok := set[v]; ok {
			hits++
		}
	}
	misses = len(vids) - hits
	c.hits.Add(int64(hits))
	c.misses.Add(int64(misses))
	if c.policy == LFU && c.capacity > 0 {
		for _, v := range vids {
			c.shardOf(v).record(v)
		}
		if c.pending.Add(int64(len(vids))) >= c.foldEvery && c.foldMu.TryLock() {
			c.pending.Store(0)
			c.foldLocked()
			c.foldMu.Unlock()
		}
	}
	return hits, misses
}

// record buffers one touch of v into the shard's lossy table: find or claim
// an open-addressed slot within the probe window and bump its counter. A
// full neighborhood drops the touch — frequencies are an admission
// heuristic, and the folder reclaims cold slots every epoch.
func (sh *shard) record(v graph.VID) {
	tagged := uint64(uint32(v)) + 1
	h := (uint64(uint32(v)) * 0x9e3779b97f4a7c15) >> 32
	for i := uint64(0); i < touchProbes; i++ {
		slot := (h + i) & sh.tmask
		got := sh.tvid[slot].Load()
		if got == 0 && sh.tvid[slot].CompareAndSwap(0, tagged) {
			got = tagged
		} else if got == 0 {
			got = sh.tvid[slot].Load()
		}
		if got == tagged {
			sh.tcnt[slot].Add(1)
			return
		}
	}
}

// foldLocked drains every shard's touch table into the writer-side LFU
// state and, if residency membership changed, publishes the next epoch
// snapshot. Called with foldMu held. Cold slots (no touches this epoch) are
// reclaimed so the tables track the current working set.
func (c *Cache) foldLocked() {
	changed := false
	for i := range c.shards {
		sh := &c.shards[i]
		for s := range sh.tvid {
			tv := sh.tvid[s].Load()
			if tv == 0 {
				continue
			}
			n := sh.tcnt[s].Swap(0)
			if n == 0 {
				sh.tvid[s].Store(0)
				continue
			}
			if sh.apply(graph.VID(uint32(tv-1)), int(n)) {
				changed = true
			}
		}
	}
	if changed {
		c.publishLocked()
	}
}

// apply folds n buffered requests for v into the shard's LFU state and
// reports whether residency membership changed. Admission is incremental: v
// joins while the shard has spare capacity, and afterwards displaces the
// least-frequent resident only once its own frequency exceeds that
// resident's. The floor caches the last exactly-computed minimum as a lower
// bound, so the common "no displacement possible" case is one comparison;
// the O(capacity) scan runs only when a candidate might win.
func (sh *shard) apply(v graph.VID, n int) bool {
	f := sh.freq[v] + n
	sh.freq[v] = f
	if _, ok := sh.resident[v]; ok {
		return false
	}
	if sh.capacity == 0 {
		return false
	}
	if len(sh.resident) < sh.capacity {
		sh.resident[v] = struct{}{}
		return true
	}
	if f <= sh.floor {
		return false
	}
	first := true
	var minV graph.VID
	minF := 0
	for rv := range sh.resident {
		rf := sh.freq[rv]
		if first || rf < minF || (rf == minF && rv < minV) {
			minV, minF, first = rv, rf, false
		}
	}
	sh.floor = minF // exact now; resident frequencies only grow from here
	if f > minF {
		delete(sh.resident, minV)
		sh.resident[v] = struct{}{}
		return true
	}
	return false
}

// publishLocked builds the next immutable residency snapshot from the
// shards' writer-side state and publishes it. The previous snapshot is
// dropped for the GC to reclaim once the last in-flight reader moves on —
// the RCU grace period. Called with foldMu held.
func (c *Cache) publishLocked() {
	set := make(map[graph.VID]struct{}, c.capacity)
	for i := range c.shards {
		for v := range c.shards[i].resident {
			set[v] = struct{}{}
		}
	}
	c.snap.Store(&residency{set: set})
}

// fold synchronously folds buffered touches and publishes any membership
// change — the non-hot-path entry Partition uses so single-threaded callers
// observe admission immediately.
func (c *Cache) fold() {
	if c.policy != LFU || c.capacity == 0 {
		return
	}
	c.foldMu.Lock()
	c.pending.Store(0)
	c.foldLocked()
	c.foldMu.Unlock()
}

// Partition splits a vertex request list into the cache hits (resident in
// the current epoch, no transfer needed) and misses (must be gathered and
// transferred). It records hit/miss statistics and, for the LFU policy,
// folds admission synchronously before returning. Hot paths that only need
// counts should use the allocation-free CountResident instead.
func (c *Cache) Partition(vids []graph.VID) (hits, misses []graph.VID) {
	set := c.snap.Load().set
	for _, v := range vids {
		if _, ok := set[v]; ok {
			hits = append(hits, v)
			c.hits.Add(1)
		} else {
			misses = append(misses, v)
			c.misses.Add(1)
		}
		if c.policy == LFU && c.capacity > 0 {
			c.shardOf(v).record(v)
		}
	}
	c.fold()
	return hits, misses
}

// HitRate returns the fraction of requests served from the cache so far.
func (c *Cache) HitRate() float64 {
	if c == nil {
		return 0
	}
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Reset clears the statistics (not the resident set).
func (c *Cache) Reset() {
	c.hits.Store(0)
	c.misses.Store(0)
}
