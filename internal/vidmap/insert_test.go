package vidmap

import (
	"testing"

	"graphtensor/internal/graph"
)

// TestInsertBatchMatchesAssignBatch checks the allocation-free insertion
// path produces exactly the same table state as AssignBatch.
func TestInsertBatchMatchesAssignBatch(t *testing.T) {
	in := []graph.VID{5, 9, 5, 2, 9, 9, 40, 2, 7}
	a, b := New(4), New(4)
	a.AssignBatch(in)
	b.InsertBatch(in)
	ao, bo := a.OrigVIDs(), b.OrigVIDs()
	if len(ao) != len(bo) {
		t.Fatalf("lens differ: %d vs %d", len(ao), len(bo))
	}
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatalf("order[%d]: %d vs %d", i, ao[i], bo[i])
		}
	}
	for _, o := range in {
		av, _ := a.Lookup(o)
		bv, _ := b.Lookup(o)
		if av != bv {
			t.Fatalf("lookup(%d): %d vs %d", o, av, bv)
		}
	}
}

// TestOrigSliceView checks the zero-copy view matches the copying API and
// stays valid as the table grows.
func TestOrigSliceView(t *testing.T) {
	tb := New(2)
	tb.InsertBatch([]graph.VID{10, 20, 30})
	view := tb.OrigSlice(1, 3)
	if len(view) != 2 || view[0] != 20 || view[1] != 30 {
		t.Fatalf("view = %v, want [20 30]", view)
	}
	// Growing the table must not disturb an existing view.
	tb.InsertBatch([]graph.VID{40, 50, 60, 70, 80, 90})
	if view[0] != 20 || view[1] != 30 {
		t.Fatalf("view changed after growth: %v", view)
	}
	full := tb.OrigSlice(0, tb.Len())
	want := tb.OrigVIDs()
	for i := range want {
		if full[i] != want[i] {
			t.Fatalf("OrigSlice[%d] = %d, want %d", i, full[i], want[i])
		}
	}
}
