package vidmap

import (
	"sync"
	"testing"

	"graphtensor/internal/graph"
)

func TestAssignsDenseVIDsInOrder(t *testing.T) {
	tb := New(4)
	origs := []graph.VID{10, 20, 10, 30, 20}
	nv := tb.AssignBatch(origs)
	want := []graph.VID{0, 1, 0, 2, 1}
	for i := range want {
		if nv[i] != want[i] {
			t.Fatalf("nv[%d]=%d want %d", i, nv[i], want[i])
		}
	}
	if tb.Len() != 3 {
		t.Errorf("len %d want 3", tb.Len())
	}
}

func TestGetOrAssignFresh(t *testing.T) {
	tb := New(2)
	if _, fresh := tb.GetOrAssign(5); !fresh {
		t.Error("first insert should be fresh")
	}
	if _, fresh := tb.GetOrAssign(5); fresh {
		t.Error("second insert should not be fresh")
	}
}

func TestOrigVIDsInverse(t *testing.T) {
	tb := New(4)
	tb.AssignBatch([]graph.VID{7, 3, 9})
	origs := tb.OrigVIDs()
	for nv, orig := range origs {
		got, ok := tb.Lookup(orig)
		if !ok || int(got) != nv {
			t.Errorf("OrigVIDs[%d]=%d but Lookup returns %d (%v)", nv, orig, got, ok)
		}
	}
}

func TestLookupBatchUnknownIsNegative(t *testing.T) {
	tb := New(2)
	tb.AssignBatch([]graph.VID{1, 2})
	out := make([]graph.VID, 3)
	tb.LookupBatch([]graph.VID{2, 99, 1}, out)
	if out[0] != 1 || out[1] != -1 || out[2] != 0 {
		t.Errorf("lookup batch = %v", out)
	}
}

// TestConcurrentGetOrAssignLinearizable: concurrent inserts produce a
// consistent dense mapping with no duplicate new VIDs.
func TestConcurrentGetOrAssignLinearizable(t *testing.T) {
	tb := New(1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tb.GetOrAssign(graph.VID((base*500 + i) % 600))
			}
		}(w)
	}
	wg.Wait()
	// Every original VID in [0,600) must map to a unique new VID in range.
	seen := map[graph.VID]bool{}
	origs := tb.OrigVIDs()
	for _, o := range origs {
		nv, _ := tb.Lookup(o)
		if seen[nv] {
			t.Fatalf("new VID %d assigned twice", nv)
		}
		seen[nv] = true
	}
	if tb.Len() != 600 {
		t.Errorf("len %d want 600 distinct vertices", tb.Len())
	}
	if tb.LockOps() == 0 {
		t.Error("no lock operations recorded")
	}
}

func TestLockWaitRecorded(t *testing.T) {
	tb := New(10)
	tb.GetOrAssign(1)
	if tb.LockWait() < 0 {
		t.Error("negative lock wait")
	}
	if tb.LockOps() == 0 {
		t.Error("lock ops not counted")
	}
}
