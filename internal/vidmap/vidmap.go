// Package vidmap implements the hash table that neighbor sampling and graph
// reindexing share (§II-B, Fig 4): it maps original VIDs in the full graph
// to densely packed "new" VIDs in the sampled subgraph, allocating new VIDs
// from zero in first-seen order.
//
// The table is the contended shared resource of §V-B Fig 14: S and R
// subtasks race on it, and the paper measures 47.4% + 39.0% of
// preprocessing time lost to its lock. The implementation therefore
// instruments lock wait time, and exposes the two access disciplines the
// paper compares:
//
//   - GetOrAssign: the naive fully-shared path (every thread locks).
//   - AssignBatch: the relaxed path, where parallel "algorithm" (A)
//     subtasks produce candidate lists and a single serialized "hash
//     update" (H) subtask performs all insertions without contention.
package vidmap

import (
	"sync"
	"sync/atomic"
	"time"

	"graphtensor/internal/graph"
)

// Table maps original VIDs to new VIDs. The zero value is not ready; use New.
type Table struct {
	mu    sync.Mutex
	m     map[graph.VID]graph.VID
	order []graph.VID // new VID -> original VID, in allocation order

	lockWaitNs atomic.Int64
	lockOps    atomic.Int64
}

// New returns an empty table with capacity hint n.
func New(n int) *Table {
	return &Table{m: make(map[graph.VID]graph.VID, n), order: make([]graph.VID, 0, n)}
}

// GetOrAssign returns the new VID for orig, allocating the next VID if orig
// is unseen. fresh reports whether an allocation happened. Safe for
// concurrent use; lock wait time is recorded.
func (t *Table) GetOrAssign(orig graph.VID) (nv graph.VID, fresh bool) {
	start := time.Now()
	t.mu.Lock()
	t.lockWaitNs.Add(int64(time.Since(start)))
	t.lockOps.Add(1)
	defer t.mu.Unlock()
	if nv, ok := t.m[orig]; ok {
		return nv, false
	}
	nv = graph.VID(len(t.order))
	t.m[orig] = nv
	t.order = append(t.order, orig)
	return nv, true
}

// Lookup returns the new VID for orig without allocating.
func (t *Table) Lookup(orig graph.VID) (graph.VID, bool) {
	start := time.Now()
	t.mu.Lock()
	t.lockWaitNs.Add(int64(time.Since(start)))
	t.lockOps.Add(1)
	defer t.mu.Unlock()
	nv, ok := t.m[orig]
	return nv, ok
}

// LookupBatch maps origs to new VIDs into out (len(out) == len(origs)) under
// a single lock acquisition — the reindexing fast path once the table is
// frozen. Unknown VIDs map to -1.
func (t *Table) LookupBatch(origs []graph.VID, out []graph.VID) {
	start := time.Now()
	t.mu.Lock()
	t.lockWaitNs.Add(int64(time.Since(start)))
	t.lockOps.Add(1)
	defer t.mu.Unlock()
	for i, o := range origs {
		if nv, ok := t.m[o]; ok {
			out[i] = nv
		} else {
			out[i] = -1
		}
	}
}

// AssignBatch inserts every orig VID (duplicates allowed) under one lock
// acquisition, in order, and returns the new VIDs. This is the serialized
// H subtask of the contention-relaxed scheduler (§V-B Fig 14c): callers
// arrange that only one AssignBatch runs at a time, so the lock is
// uncontended by construction.
func (t *Table) AssignBatch(origs []graph.VID) []graph.VID {
	start := time.Now()
	t.mu.Lock()
	t.lockWaitNs.Add(int64(time.Since(start)))
	t.lockOps.Add(1)
	defer t.mu.Unlock()
	out := make([]graph.VID, len(origs))
	for i, o := range origs {
		if nv, ok := t.m[o]; ok {
			out[i] = nv
			continue
		}
		nv := graph.VID(len(t.order))
		t.m[o] = nv
		t.order = append(t.order, o)
		out[i] = nv
	}
	return out
}

// InsertBatch is AssignBatch for callers that do not need the per-orig new
// VIDs: it performs the same serialized H-subtask insertion under one lock
// acquisition but materializes no result slice, so the steady-state
// sampling path allocates nothing here.
func (t *Table) InsertBatch(origs []graph.VID) {
	start := time.Now()
	t.mu.Lock()
	t.lockWaitNs.Add(int64(time.Since(start)))
	t.lockOps.Add(1)
	defer t.mu.Unlock()
	for _, o := range origs {
		if _, ok := t.m[o]; ok {
			continue
		}
		t.m[o] = graph.VID(len(t.order))
		t.order = append(t.order, o)
	}
}

// Reset empties the table while keeping its storage (the map's buckets and
// the order array's capacity), so a slot-recycled sampling result re-enters
// the next batch without reallocating its hash table. Contention counters
// keep accumulating across resets. The caller must guarantee no concurrent
// access — a table is only reset between batches, when its batch has been
// released.
func (t *Table) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	clear(t.m)
	t.order = t.order[:0]
}

// OrigSlice returns the original VIDs of new VIDs [lo, hi) as a read-only
// view of the table's allocation order — no copy is made. The view stays
// valid as entries are only ever appended; callers must not mutate it.
func (t *Table) OrigSlice(lo, hi int) []graph.VID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.order[lo:hi:hi]
}

// Len returns the number of allocated new VIDs.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// OrigVIDs returns a copy of the new-VID → original-VID mapping in
// allocation order; row i of the gathered embedding table corresponds to
// OrigVIDs()[i].
func (t *Table) OrigVIDs() []graph.VID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]graph.VID, len(t.order))
	copy(out, t.order)
	return out
}

// LockWait returns the cumulative time goroutines spent waiting to acquire
// the table lock — the contention figure of Fig 14a.
func (t *Table) LockWait() time.Duration { return time.Duration(t.lockWaitNs.Load()) }

// LockOps returns the number of lock acquisitions performed.
func (t *Table) LockOps() int64 { return t.lockOps.Load() }
