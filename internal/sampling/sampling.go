// Package sampling implements GNN neighbor sampling (§II-B, Fig 4a): for a
// batch of destination vertices it samples a bounded number of in-neighbors
// per vertex, hop by hop, allocating dense new VIDs through the shared
// vidmap hash table.
//
// Frontiers are cumulative (DGL-block style): F₀ is the batch and
// F_t = F_{t-1} ∪ sampled-neighbors(F_{t-1}); the hop-t subgraph has dsts
// F_{t-1} and srcs within F_t, so the embedding matrix after executing a
// GNN layer always covers exactly the next hop's src space. Because new
// VIDs are allocated in first-seen order, F_t always occupies the
// contiguous new-VID range [0, |F_t|).
//
// Neighbor choice is a deterministic function of (seed, dst original VID):
// re-sampling a vertex in a later hop yields the same neighbors, so hop t's
// edge list extends hop t-1's and each dst's neighbors are sampled exactly
// once regardless of how many hops include it.
package sampling

import (
	"fmt"
	"runtime"
	"sync"

	"graphtensor/internal/graph"
	"graphtensor/internal/sched"
	"graphtensor/internal/tensor"
	"graphtensor/internal/vidmap"
)

// Mode selects how sampler threads update the shared hash table.
type Mode int

const (
	// ModeShared is the naive discipline: every worker calls GetOrAssign
	// directly, contending on the table lock (Fig 14a).
	ModeShared Mode = iota
	// ModeSplit is the contention-relaxed discipline of Fig 14c: workers
	// run only the algorithm part (A) producing candidate lists, and a
	// single serialized hash-update part (H) performs all insertions.
	ModeSplit
)

// Config parameterizes the sampler.
type Config struct {
	Fanout      int  // neighbors sampled per dst vertex (paper's n)
	Layers      int  // GNN depth L (one hop per layer)
	IncludeSelf bool // add a self edge per dst (GCN-style aggregation)
	Workers     int  // sampling threads; 0 means GOMAXPROCS
	Mode        Mode
	Seed        uint64
}

// DefaultConfig matches the paper's setup: batchwise 2-layer sampling with
// a small fanout and self edges.
func DefaultConfig() Config {
	return Config{Fanout: 4, Layers: 2, IncludeSelf: true, Mode: ModeSplit}
}

// Hop is one sampled hop in original-VID space, before reindexing.
type Hop struct {
	// SrcOrig/DstOrig are parallel edge arrays (COO in original VIDs).
	SrcOrig, DstOrig []graph.VID
	NumDst           int // |F_{t-1}|: dst new VIDs occupy [0, NumDst)
	NumSrc           int // |F_t|: src new VIDs occupy [0, NumSrc)
}

// Result is the sampler output: per-hop edge lists plus the hash table that
// reindexing (R) and embedding lookup (K) consume. A Result recycled
// through Sampler.BeginReuse/SampleReuse keeps its hash table and backing
// edge arrays across batches — the producer-arena discipline of the
// prefetch ring's slot rotation.
type Result struct {
	Table *vidmap.Table
	Batch []graph.VID // original VIDs of the batch dsts (new VIDs 0..len-1)
	Hops  []Hop       // Hops[t-1] is hop t; GNN layer ℓ uses Hops[Layers-ℓ]
	// FrontierSizes[t] = |F_t| (FrontierSizes[0] = len(Batch)).
	FrontierSizes []int

	// src/dst back the cumulative per-hop edge views in Hops; run is the
	// stepwise sampling state. Both are retained across BeginReuse so a
	// slot-recycled result re-enters sampling without reallocating.
	src, dst []graph.VID
	run      Run
}

// NumVertices returns the total number of sampled vertices |F_L|.
func (r *Result) NumVertices() int { return r.FrontierSizes[len(r.FrontierSizes)-1] }

// ForLayer returns the hop that GNN layer ℓ (1-based, first-executed = 1)
// processes: layer 1 gets the outermost hop.
func (r *Result) ForLayer(layer int) *Hop {
	if layer < 1 || layer > len(r.Hops) {
		panic(fmt.Sprintf("sampling: layer %d out of range [1,%d]", layer, len(r.Hops)))
	}
	return &r.Hops[len(r.Hops)-layer]
}

// Sampler samples subgraphs from a full graph. The sampler owns a scratch
// pool so the per-hop worker buffers (candidate edge lists and the
// duplicate-tracking window of Floyd's algorithm) are reused across Sample
// calls instead of reallocated; a Sampler is safe for concurrent Sample
// calls, each drawing its own scratch.
type Sampler struct {
	cfg     Config
	full    *graph.CSR
	scratch sync.Pool // *hopScratch
}

// hopScratch is the reusable workspace (and worker-pool dispatch context)
// of one in-flight sampleHop call.
type hopScratch struct {
	s      *Sampler
	dsts   []graph.VID
	per    int // fixed chunk width, derived from cfg.Workers — not the pool
	chunks []hopChunk
}

// hopChunk is one worker's output buffer: parallel src/dst edge arrays
// plus the chosen-index window Floyd's algorithm deduplicates against.
type hopChunk struct {
	src, dst []graph.VID
	chosen   []int
}

// New creates a sampler over the full graph (CSR of in-neighbors).
func New(full *graph.CSR, cfg Config) *Sampler {
	if cfg.Fanout <= 0 {
		cfg.Fanout = 4
	}
	if cfg.Layers <= 0 {
		cfg.Layers = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Sampler{cfg: cfg, full: full}
}

// Sample runs the full multi-hop sampling for one batch.
func (s *Sampler) Sample(batch []graph.VID) *Result {
	return s.SampleReuse(batch, nil)
}

// SampleReuse is Sample drawing the result's storage (hash table, hop edge
// arrays) from a recycled Result — the one the prefetch-ring slot retained
// from its previous, released batch. recycled may be nil (plain Sample).
// Reuse is shape-derived only: every recycled buffer is fully rewritten, so
// the output is bitwise identical to a fresh Sample.
func (s *Sampler) SampleReuse(batch []graph.VID, recycled *Result) *Result {
	run := s.BeginReuse(batch, recycled)
	for !run.Done() {
		run.Step()
	}
	return run.Result()
}

// Run is an in-progress sampling whose hops are driven one Step at a time —
// the granularity the service-wide tensor scheduler needs to overlap the
// data preparation of completed hops with the sampling of later ones
// (§V-B, Fig 13: S2 and S1 run back-to-back while R2/K2 already execute).
type Run struct {
	s        *Sampler
	res      *Result
	frontier []graph.VID // dsts the next hop samples neighbors for
	t        int
}

// Begin seeds a stepwise sampling run with the batch dst vertices.
func (s *Sampler) Begin(batch []graph.VID) *Run {
	return s.BeginReuse(batch, nil)
}

// BeginReuse is Begin over a recycled Result (nil for a fresh one); see
// SampleReuse. The returned Run is owned by the result, so a steady-state
// ring slot performs no allocation here at all.
func (s *Sampler) BeginReuse(batch []graph.VID, res *Result) *Run {
	if res == nil {
		res = &Result{Table: vidmap.New(len(batch) * (s.cfg.Fanout + 1) * s.cfg.Layers)}
	} else {
		res.Table.Reset()
		res.Batch = res.Batch[:0]
		res.Hops = res.Hops[:0]
		res.FrontierSizes = res.FrontierSizes[:0]
		res.src, res.dst = res.src[:0], res.dst[:0]
	}
	res.Batch = append(res.Batch, batch...)
	// The batch occupies new VIDs [0, len(batch)) in batch order.
	res.Table.InsertBatch(batch)
	res.FrontierSizes = append(res.FrontierSizes, res.Table.Len())
	res.run = Run{s: s, res: res, frontier: res.Batch, t: 1}
	return &res.run
}

// Done reports whether all hops have been sampled.
func (r *Run) Done() bool { return r.t > r.s.cfg.Layers }

// Step samples the next hop and returns it. The hop's A (algorithm) part
// runs across the sampler's workers; the H (hash update) part runs within
// this call, serialized by construction in ModeSplit.
func (r *Run) Step() *Hop {
	if r.Done() {
		return nil
	}
	res := r.res
	numDst := res.Table.Len()
	srcStart := len(res.src)
	res.src, res.dst = r.s.sampleHop(r.frontier, res.src, res.dst)
	src := res.src[srcStart:]
	// Allocate new VIDs for freshly seen srcs; the next hop samples
	// neighbors only for those.
	r.frontier = r.s.admit(res.Table, src)
	res.FrontierSizes = append(res.FrontierSizes, res.Table.Len())
	res.Hops = append(res.Hops, Hop{
		SrcOrig: res.src[:len(res.src):len(res.src)],
		DstOrig: res.dst[:len(res.dst):len(res.dst)],
		NumDst:  numDst,
		NumSrc:  res.Table.Len(),
	})
	r.t++
	return &res.Hops[len(res.Hops)-1]
}

// Result returns the sampling result; valid once Done.
func (r *Run) Result() *Result { return r.res }

// hopTask is the worker-pool entry of sampleHop: each claimed chunk fills
// its own buffer with the neighbors of its dst range. Chunk boundaries are
// derived from cfg.Workers (the sampler's configured thread count), never
// from the pool, and buffers concatenate in chunk order — so the edge
// stream is bitwise identical at any GOMAXPROCS, including the degraded
// single-call path.
func hopTask(ctx any, lo, hi int) {
	sc := ctx.(*hopScratch)
	c := &sc.chunks[lo/sc.per]
	for _, d := range sc.dsts[lo:hi] {
		sc.s.appendNeighbors(d, c)
	}
}

// sampleHop samples neighbors for each dst in parallel on the shared worker
// pool, appending the hop's new edges in deterministic (dst-major) order
// onto src/dst and returning the grown slices. Worker buffers come from the
// sampler's scratch pool and are reused across calls.
func (s *Sampler) sampleHop(dsts []graph.VID, src, dst []graph.VID) ([]graph.VID, []graph.VID) {
	workers := s.cfg.Workers
	if workers > len(dsts) {
		workers = len(dsts)
	}
	if workers < 1 {
		workers = 1
	}
	sc, _ := s.scratch.Get().(*hopScratch)
	if sc == nil {
		sc = &hopScratch{}
	}
	if cap(sc.chunks) < workers {
		sc.chunks = make([]hopChunk, workers)
	}
	sc.chunks = sc.chunks[:workers]
	for w := range sc.chunks {
		sc.chunks[w].src = sc.chunks[w].src[:0]
		sc.chunks[w].dst = sc.chunks[w].dst[:0]
	}
	per := (len(dsts) + workers - 1) / workers
	if per < 1 {
		per = 1
	}
	sc.s, sc.dsts, sc.per = s, dsts, per
	sched.RunChunk(len(dsts), per, workers, sc, hopTask)
	for i := range sc.chunks {
		src = append(src, sc.chunks[i].src...)
		dst = append(dst, sc.chunks[i].dst...)
	}
	sc.s, sc.dsts = nil, nil
	s.scratch.Put(sc)
	return src, dst
}

// appendNeighbors picks up to Fanout unique random in-neighbors of d (plus
// the self edge), deterministically in d and the sampler seed, appending
// the (src, dst) pairs onto the worker chunk.
func (s *Sampler) appendNeighbors(d graph.VID, c *hopChunk) {
	adj := s.full.Neighbors(d)
	if s.cfg.IncludeSelf {
		c.src = append(c.src, d)
		c.dst = append(c.dst, d)
	}
	if len(adj) <= s.cfg.Fanout {
		for _, n := range adj {
			if n != d || !s.cfg.IncludeSelf {
				c.src = append(c.src, n)
				c.dst = append(c.dst, d)
			}
		}
		return
	}
	// Floyd's algorithm: Fanout distinct indices from [0, len(adj)). The
	// chosen window holds at most Fanout entries, so a linear scan beats a
	// map (and allocates nothing).
	rng := tensor.NewRNG(s.cfg.Seed ^ (uint64(d)+1)*0x9e3779b97f4a7c15)
	c.chosen = c.chosen[:0]
	for j := len(adj) - s.cfg.Fanout; j < len(adj); j++ {
		t := rng.Intn(j + 1)
		for _, prev := range c.chosen {
			if prev == t {
				t = j
				break
			}
		}
		c.chosen = append(c.chosen, t)
		n := adj[t]
		if n == d && s.cfg.IncludeSelf {
			continue
		}
		c.src = append(c.src, n)
		c.dst = append(c.dst, d)
	}
}

// admit allocates new VIDs for freshly seen srcs and returns the list of
// fresh original VIDs (the next hop's dsts), in deterministic order for
// ModeSplit. In ModeShared the admission runs through per-src GetOrAssign
// calls from multiple workers, reproducing the contended discipline.
func (s *Sampler) admit(table *vidmap.Table, srcs []graph.VID) []graph.VID {
	switch s.cfg.Mode {
	case ModeShared:
		return s.admitShared(table, srcs)
	default:
		return s.admitSplit(table, srcs)
	}
}

func (s *Sampler) admitSplit(table *vidmap.Table, srcs []graph.VID) []graph.VID {
	before := table.Len()
	table.InsertBatch(srcs)
	// Read-only view of the freshly assigned range; no copy.
	return table.OrigSlice(before, table.Len())
}

func (s *Sampler) admitShared(table *vidmap.Table, srcs []graph.VID) []graph.VID {
	workers := s.cfg.Workers
	if workers > len(srcs) {
		workers = len(srcs)
	}
	if workers < 1 {
		workers = 1
	}
	fresh := make([][]graph.VID, workers)
	var wg sync.WaitGroup
	per := (len(srcs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(srcs) {
			hi = len(srcs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for _, src := range srcs[lo:hi] {
				if _, isFresh := table.GetOrAssign(src); isFresh {
					fresh[w] = append(fresh[w], src)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var out []graph.VID
	for _, f := range fresh {
		out = append(out, f...)
	}
	return out
}
