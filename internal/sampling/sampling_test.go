package sampling

import (
	"testing"
	"testing/quick"

	"graphtensor/internal/graph"
)

// ring builds an n-vertex directed ring where each vertex has in-neighbors
// at a few small offsets, so every vertex has neighbors to sample.
func ring(n, deg int) *graph.CSR {
	coo := &graph.COO{NumVertices: n}
	for d := 0; d < n; d++ {
		for k := 1; k <= deg; k++ {
			coo.Src = append(coo.Src, graph.VID((d+k)%n))
			coo.Dst = append(coo.Dst, graph.VID(d))
		}
	}
	csr, _ := graph.COOToCSR(coo)
	return csr
}

func TestSampleProducesValidSubgraph(t *testing.T) {
	full := ring(200, 6)
	cfg := DefaultConfig()
	cfg.Fanout = 3
	cfg.Layers = 2
	res := New(full, cfg).Sample([]graph.VID{5, 10, 15})
	if len(res.Hops) != 2 {
		t.Fatalf("expected 2 hops, got %d", len(res.Hops))
	}
	// Frontiers must be non-decreasing.
	for i := 1; i < len(res.FrontierSizes); i++ {
		if res.FrontierSizes[i] < res.FrontierSizes[i-1] {
			t.Errorf("frontier shrank at %d: %v", i, res.FrontierSizes)
		}
	}
	// Reindexed edges must be within frontier bounds for each hop.
	for li := 1; li <= 2; li++ {
		hop := res.ForLayer(li)
		if hop.NumDst > hop.NumSrc {
			t.Errorf("layer %d: dst %d > src %d", li, hop.NumDst, hop.NumSrc)
		}
	}
}

func TestBatchOccupiesLowVIDs(t *testing.T) {
	full := ring(100, 4)
	res := New(full, DefaultConfig()).Sample([]graph.VID{1, 2, 3})
	origs := res.Table.OrigVIDs()
	for i, b := range res.Batch {
		if origs[i] != b {
			t.Errorf("batch vertex %d not at new VID %d", b, i)
		}
	}
}

func TestSplitAndSharedProduceSameVertexSet(t *testing.T) {
	full := ring(300, 5)
	batch := []graph.VID{7, 77, 177}
	split := DefaultConfig()
	split.Mode = ModeSplit
	shared := DefaultConfig()
	shared.Mode = ModeShared
	rs := New(full, split).Sample(batch)
	rh := New(full, shared).Sample(batch)
	// Same set of sampled original VIDs (order may differ in shared mode).
	set := func(vs []graph.VID) map[graph.VID]bool {
		m := map[graph.VID]bool{}
		for _, v := range vs {
			m[v] = true
		}
		return m
	}
	a, b := set(rs.Table.OrigVIDs()), set(rh.Table.OrigVIDs())
	if len(a) != len(b) {
		t.Fatalf("split sampled %d vertices, shared %d", len(a), len(b))
	}
	for v := range a {
		if !b[v] {
			t.Fatalf("vertex %d missing from shared-mode sample", v)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	full := ring(150, 4)
	cfg := DefaultConfig()
	cfg.Seed = 99
	a := New(full, cfg).Sample([]graph.VID{3, 6, 9})
	b := New(full, cfg).Sample([]graph.VID{3, 6, 9})
	if a.NumVertices() != b.NumVertices() {
		t.Fatal("nondeterministic vertex count")
	}
	ao, bo := a.Table.OrigVIDs(), b.Table.OrigVIDs()
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatalf("sample diverged at %d", i)
		}
	}
}

func TestFanoutBounded(t *testing.T) {
	full := ring(200, 20) // high degree
	cfg := DefaultConfig()
	cfg.Fanout = 3
	cfg.IncludeSelf = true
	cfg.Layers = 1
	res := New(full, cfg).Sample([]graph.VID{10, 20})
	// Build per-dst degree and check <= fanout+1 (self edge).
	hop := res.ForLayer(1)
	deg := map[graph.VID]int{}
	for _, d := range hop.DstOrig {
		deg[d]++
	}
	for d, c := range deg {
		if c > cfg.Fanout+1 {
			t.Errorf("dst %d has %d sampled neighbors > fanout+1", d, c)
		}
	}
}

func TestStepwiseEqualsSample(t *testing.T) {
	full := ring(120, 5)
	cfg := DefaultConfig()
	batch := []graph.VID{4, 8, 12}
	whole := New(full, cfg).Sample(batch)
	run := New(full, cfg).Begin(batch)
	steps := 0
	for !run.Done() {
		run.Step()
		steps++
	}
	if steps != cfg.Layers {
		t.Errorf("stepped %d times, want %d", steps, cfg.Layers)
	}
	if run.Result().NumVertices() != whole.NumVertices() {
		t.Errorf("stepwise %d vertices != whole %d", run.Result().NumVertices(), whole.NumVertices())
	}
}

// Property: the sampled subgraph's src space always contains the dst space.
func TestQuickFrontierNesting(t *testing.T) {
	f := func(seed uint64, fanoutRaw, batchRaw uint8) bool {
		full := ring(200, 8)
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Fanout = 1 + int(fanoutRaw)%5
		cfg.Layers = 2
		bs := 1 + int(batchRaw)%10
		batch := make([]graph.VID, bs)
		for i := range batch {
			batch[i] = graph.VID(int(seed%200+uint64(i)*13) % 200)
		}
		res := New(full, cfg).Sample(batch)
		for _, h := range res.Hops {
			if h.NumDst > h.NumSrc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
