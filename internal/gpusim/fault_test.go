package gpusim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestKillFailsAlloc: a killed device fails every subsequent allocation
// with a typed, errors.Is-able device-lost error; prior buffers remain
// freeable so arenas can still clean up.
func TestFaultKillFailsAlloc(t *testing.T) {
	d := NewDevice(DefaultConfig())
	b, err := d.Alloc(1024, "pre-kill")
	if err != nil {
		t.Fatalf("Alloc before Kill: %v", err)
	}
	if !d.Alive() {
		t.Fatal("fresh device reports not alive")
	}
	d.Kill()
	d.Kill() // idempotent
	if d.Alive() {
		t.Fatal("killed device reports alive")
	}
	_, err = d.Alloc(64, "post-kill")
	if err == nil {
		t.Fatal("Alloc on killed device succeeded")
	}
	if !IsDeviceLost(err) || !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("Alloc on killed device returned %T (%v), want DeviceLostError", err, err)
	}
	var dle *DeviceLostError
	if !errors.As(err, &dle) || dle.Label != "post-kill" {
		t.Fatalf("device-lost error lost its label: %v", err)
	}
	if wrapped := fmt.Errorf("ctx: %w", err); !IsDeviceLost(wrapped) {
		t.Fatal("IsDeviceLost does not see through wrapping")
	}
	b.Free() // cleanup on a dead device must not panic
	if got := d.MemInUse(); got != 0 {
		t.Fatalf("MemInUse after free on dead device = %d", got)
	}
}

// TestInjectStallAccumulates: injected stalls are modeled time only —
// they accumulate on the device and never touch the work counters.
func TestFaultInjectStallAccumulates(t *testing.T) {
	d := NewDevice(DefaultConfig())
	if d.StallTime() != 0 {
		t.Fatal("fresh device has nonzero stall time")
	}
	before := d.Snapshot()
	d.InjectStall(3 * time.Millisecond)
	d.InjectStall(0) // no-op
	d.InjectStall(2 * time.Millisecond)
	if got, want := d.StallTime(), 5*time.Millisecond; got != want {
		t.Fatalf("StallTime = %v, want %v", got, want)
	}
	if d.Snapshot() != before {
		t.Fatal("InjectStall disturbed the work counters")
	}
}
