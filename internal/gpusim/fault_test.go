package gpusim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestKillFailsAlloc: a killed device fails every subsequent allocation
// with a typed, errors.Is-able device-lost error; prior buffers remain
// freeable so arenas can still clean up.
func TestFaultKillFailsAlloc(t *testing.T) {
	d := NewDevice(DefaultConfig())
	b, err := d.Alloc(1024, "pre-kill")
	if err != nil {
		t.Fatalf("Alloc before Kill: %v", err)
	}
	if !d.Alive() {
		t.Fatal("fresh device reports not alive")
	}
	d.Kill()
	d.Kill() // idempotent
	if d.Alive() {
		t.Fatal("killed device reports alive")
	}
	_, err = d.Alloc(64, "post-kill")
	if err == nil {
		t.Fatal("Alloc on killed device succeeded")
	}
	if !IsDeviceLost(err) || !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("Alloc on killed device returned %T (%v), want DeviceLostError", err, err)
	}
	var dle *DeviceLostError
	if !errors.As(err, &dle) || dle.Label != "post-kill" {
		t.Fatalf("device-lost error lost its label: %v", err)
	}
	if wrapped := fmt.Errorf("ctx: %w", err); !IsDeviceLost(wrapped) {
		t.Fatal("IsDeviceLost does not see through wrapping")
	}
	b.Free() // cleanup on a dead device must not panic
	if got := d.MemInUse(); got != 0 {
		t.Fatalf("MemInUse after free on dead device = %d", got)
	}
}

// TestFaultReviveReopensDevice: Revive clears the dead flag — allocation
// works again under the old identity — and is a no-op on alive devices.
func TestFaultReviveReopensDevice(t *testing.T) {
	d := NewDevice(DefaultConfig())
	d.Revive() // no-op on an alive device
	if !d.Alive() {
		t.Fatal("Revive killed an alive device")
	}
	d.Kill()
	if _, err := d.Alloc(64, "dead"); !IsDeviceLost(err) {
		t.Fatalf("Alloc on killed device: %v, want device-lost", err)
	}
	d.Revive()
	if !d.Alive() {
		t.Fatal("revived device reports dead")
	}
	b, err := d.Alloc(64, "revived")
	if err != nil {
		t.Fatalf("Alloc after Revive: %v", err)
	}
	b.Free()
}

// TestFaultLinkDegradeScalesNetworkTier: installed degradation scales the
// network-tier bandwidth and adds hop latency — inter-node collectives and
// cross-node scatter slow down, the intra tier is untouched — and clears
// back to the healthy closed form.
func TestFaultLinkDegradeScalesNetworkTier(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interconnect = HierarchicalInterconnect(4)
	const bytes, n = int64(8 << 20), 16

	healthy := NewInterconnect(cfg)
	hIntra, hInter := healthy.AllReduceTiers(bytes, n, true)
	hScatter := healthy.InterScatter(bytes, 3)

	deg := NewInterconnect(cfg)
	deg.SetLinkDegradation(0.5, time.Millisecond)
	if f, e := deg.LinkDegradation(); f != 0.5 || e != time.Millisecond {
		t.Fatalf("LinkDegradation = (%v, %v), want (0.5, 1ms)", f, e)
	}
	dIntra, dInter := deg.AllReduceTiers(bytes, n, true)
	if dIntra != hIntra {
		t.Errorf("degradation leaked onto the intra tier: %v vs healthy %v", dIntra, hIntra)
	}
	if dInter <= hInter {
		t.Errorf("degraded inter tier %v should exceed healthy %v", dInter, hInter)
	}
	nodes := healthy.NumNodes(n)
	net := DefaultNetworkLink()
	wantInter := time.Duration(float64(2*(nodes-1)) *
		(net.HopLatencyNs + float64(time.Millisecond.Nanoseconds()) +
			float64(bytes)/float64(nodes)/(net.BytesPerSec*0.5)*1e9))
	if dInter != wantInter {
		t.Errorf("degraded inter tier %v, want closed form %v", dInter, wantInter)
	}
	if dScatter := deg.InterScatter(bytes, 3); dScatter <= hScatter {
		t.Errorf("degraded scatter %v should exceed healthy %v", dScatter, hScatter)
	}

	// Clearing restores the healthy closed form exactly.
	deg.SetLinkDegradation(1, 0)
	if f, e := deg.LinkDegradation(); f != 1 || e != 0 {
		t.Fatalf("cleared degradation reads (%v, %v), want (1, 0)", f, e)
	}
	if _, rInter := deg.AllReduceTiers(bytes, n, true); rInter != hInter {
		t.Errorf("post-clear inter tier %v, want healthy %v", rInter, hInter)
	}
}

// TestFaultBroadcastTiers: the rejoin weight reinstall is one transfer on
// the chosen tier — intra pays the link closed form (with the pageable
// factor on a PCIe fabric), inter pays one network hop and respects link
// degradation. Zero bytes cost nothing.
func TestFaultBroadcastTiers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interconnect = HierarchicalInterconnect(4)
	ic := NewInterconnect(cfg)
	const bytes = int64(4 << 20)

	if d := ic.Broadcast(0, true, true); d != 0 || ic.BytesMoved() != 0 {
		t.Fatalf("0-byte broadcast cost %v, moved %d", d, ic.BytesMoved())
	}

	icc := cfg.Interconnect
	wantIntra := time.Duration(icc.LinkLatencyNs + float64(bytes)/icc.LinkBytesPerSec*1e9)
	if got := ic.Broadcast(bytes, false, true); got != wantIntra {
		t.Errorf("intra-tier broadcast %v, want %v", got, wantIntra)
	}
	if ic.IntraNodeBytes() != bytes || ic.InterNodeBytes() != 0 {
		t.Errorf("intra broadcast landed on tiers (%d, %d), want (%d, 0)",
			ic.IntraNodeBytes(), ic.InterNodeBytes(), bytes)
	}

	net := DefaultNetworkLink()
	wantInter := time.Duration(net.HopLatencyNs + float64(bytes)/net.BytesPerSec*1e9)
	if got := ic.Broadcast(bytes, true, true); got != wantInter {
		t.Errorf("inter-tier broadcast %v, want %v", got, wantInter)
	}
	if ic.InterNodeBytes() != bytes {
		t.Errorf("inter-tier traffic %d, want %d", ic.InterNodeBytes(), bytes)
	}
	ic.SetLinkDegradation(0.25, 0)
	if deg := ic.Broadcast(bytes, true, true); deg <= wantInter {
		t.Errorf("degraded inter broadcast %v should exceed healthy %v", deg, wantInter)
	}

	// A flat PCIe fabric pays the pageable staging factor when unpinned.
	flat := NewInterconnect(DefaultConfig())
	pinned := flat.Broadcast(bytes, false, true)
	pageable := flat.Broadcast(bytes, false, false)
	if pageable <= pinned {
		t.Errorf("pageable broadcast %v should exceed pinned %v", pageable, pinned)
	}
}

// TestInjectStallAccumulates: injected stalls are modeled time only —
// they accumulate on the device and never touch the work counters.
func TestFaultInjectStallAccumulates(t *testing.T) {
	d := NewDevice(DefaultConfig())
	if d.StallTime() != 0 {
		t.Fatal("fresh device has nonzero stall time")
	}
	before := d.Snapshot()
	d.InjectStall(3 * time.Millisecond)
	d.InjectStall(0) // no-op
	d.InjectStall(2 * time.Millisecond)
	if got, want := d.StallTime(), 5*time.Millisecond; got != want {
		t.Fatalf("StallTime = %v, want %v", got, want)
	}
	if d.Snapshot() != before {
		t.Fatal("InjectStall disturbed the work counters")
	}
}
