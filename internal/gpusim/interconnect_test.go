package gpusim

import (
	"testing"
	"time"
)

// TestInterconnectAllReduceRing checks the PCIe-ring collective model
// against the closed form: 2·(n−1) steps of bytes/n, each paying the
// per-transfer latency (and the pageable factor when unpinned).
func TestInterconnectAllReduceRing(t *testing.T) {
	cfg := DefaultConfig()
	ic := NewInterconnect(cfg)
	if d := ic.AllReduce(1<<20, 1, true); d != 0 {
		t.Fatalf("1-device all-reduce costs %v, want 0", d)
	}
	const bytes, n = int64(1 << 20), 4
	got := ic.AllReduce(bytes, n, true)
	per := cfg.TransferLatencyNs + float64(bytes)/float64(n)/cfg.PCIeBytesPerSec*1e9
	want := time.Duration(float64(2*(n-1)) * per)
	if got != want {
		t.Errorf("pinned ring all-reduce %v, want %v", got, want)
	}
	unpinned := ic.AllReduce(bytes, n, false)
	if unpinned <= got {
		t.Errorf("pageable all-reduce %v should exceed pinned %v", unpinned, got)
	}
	if moved := ic.BytesMoved(); moved != 2*2*(n-1)*bytes {
		t.Errorf("fabric traffic %d, want %d (two collectives of 2(n-1)·bytes)", moved, 2*2*(n-1)*bytes)
	}
}

// TestInterconnectAllReduceEdgeCases: n<=1 and bytes<=0 collectives return
// zero without touching the modeled-time/bytes accumulators, on the flat
// and the hierarchical path alike.
func TestInterconnectAllReduceEdgeCases(t *testing.T) {
	cfg := DefaultConfig()
	flat := NewInterconnect(cfg)
	hierCfg := cfg
	hierCfg.Interconnect = HierarchicalInterconnect(4)
	hier := NewInterconnect(hierCfg)
	for _, ic := range []*Interconnect{flat, hier} {
		name := ic.Config().Name()
		if d := ic.AllReduce(1<<20, 1, true); d != 0 {
			t.Errorf("%s: 1-device all-reduce costs %v, want 0", name, d)
		}
		if d := ic.AllReduce(0, 8, true); d != 0 {
			t.Errorf("%s: 0-byte all-reduce costs %v, want 0", name, d)
		}
		if intra, inter := ic.AllReduceTiers(-1, 8, false); intra != 0 || inter != 0 {
			t.Errorf("%s: negative-byte all-reduce costs (%v, %v), want zero", name, intra, inter)
		}
		if d := ic.InterScatter(0, 0); d != 0 {
			t.Errorf("%s: empty inter-node scatter costs %v, want 0", name, d)
		}
		if mt, mb := ic.ModeledTime(), ic.BytesMoved(); mt != 0 || mb != 0 {
			t.Errorf("%s: degenerate collectives accrued time=%v bytes=%d, want zero", name, mt, mb)
		}
		if it, ib := ic.InterNodeTime(), ic.InterNodeBytes(); it != 0 || ib != 0 {
			t.Errorf("%s: degenerate collectives accrued inter tier time=%v bytes=%d, want zero", name, it, ib)
		}
	}
}

// TestInterconnectHierarchical checks the two-tier collective against its
// closed form: the intra tier costs one NVLink ring over the node's p
// devices, the inter tier a ring of one representative per node on the
// network, and the per-tier accumulators split accordingly.
func TestInterconnectHierarchical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interconnect = HierarchicalInterconnect(4)
	ic := NewInterconnect(cfg)

	const bytes = int64(8 << 20)
	const n, p = 16, 4
	nodes := n / p
	intra, inter := ic.AllReduceTiers(bytes, n, true)

	icc := cfg.Interconnect
	wantIntra := time.Duration(2*icc.LinkLatencyNs +
		float64(2*(p-1))*float64(bytes)/float64(p)/icc.LinkBytesPerSec*1e9)
	net := DefaultNetworkLink()
	wantInter := time.Duration(float64(2*(nodes-1)) *
		(net.HopLatencyNs + float64(bytes)/float64(nodes)/net.BytesPerSec*1e9))
	if intra != wantIntra {
		t.Errorf("intra tier %v, want %v", intra, wantIntra)
	}
	if inter != wantInter {
		t.Errorf("inter tier %v, want %v", inter, wantInter)
	}
	if got, want := ic.IntraNodeBytes(), int64(nodes)*int64(2*(p-1))*bytes; got != want {
		t.Errorf("intra-tier traffic %d, want %d", got, want)
	}
	if got, want := ic.InterNodeBytes(), int64(2*(nodes-1))*bytes; got != want {
		t.Errorf("inter-tier traffic %d, want %d", got, want)
	}
	if got, want := ic.ModeledTime(), intra+inter; got != want {
		t.Errorf("total modeled time %v, want %v", got, want)
	}
	if nn := ic.NumNodes(n); nn != nodes {
		t.Errorf("NumNodes(%d) = %d, want %d", n, nn, nodes)
	}

	// The hierarchy must beat a flat PCIe ring at the same scale: that gap
	// is the whole point of the two-tier fabric.
	flat := NewInterconnect(DefaultConfig())
	if ft := flat.AllReduce(bytes, n, true); intra+inter >= ft {
		t.Errorf("hierarchical all-reduce %v should beat flat PCIe %v at n=%d", intra+inter, ft, n)
	}

	// Degenerate hierarchy: a group that fits in one node rides the intra
	// tier alone with the flat NVLink closed form.
	one := NewInterconnect(cfg)
	sIntra, sInter := one.AllReduceTiers(bytes, p, true)
	if sInter != 0 || one.InterNodeBytes() != 0 {
		t.Errorf("single-node group paid the network tier: time=%v bytes=%d", sInter, one.InterNodeBytes())
	}
	nvCfg := DefaultConfig()
	nvCfg.Interconnect = NVLinkInterconnect()
	nv := NewInterconnect(nvCfg)
	if want := nv.AllReduce(bytes, p, true); sIntra != want {
		t.Errorf("single-node hierarchical ring %v, want flat NVLink %v", sIntra, want)
	}
}

// TestInterconnectInterScatter checks the cross-node scatter model: hops
// pay the network hop latency, bytes ride the network bandwidth, and the
// traffic lands on the inter tier.
func TestInterconnectInterScatter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interconnect = HierarchicalInterconnect(4)
	ic := NewInterconnect(cfg)
	net := DefaultNetworkLink()
	const bytes, hops = int64(2 << 20), 3
	got := ic.InterScatter(bytes, hops)
	want := time.Duration(float64(hops)*net.HopLatencyNs + float64(bytes)/net.BytesPerSec*1e9)
	if got != want {
		t.Errorf("inter-node scatter %v, want %v", got, want)
	}
	if ic.InterNodeBytes() != bytes {
		t.Errorf("inter-tier traffic %d, want %d", ic.InterNodeBytes(), bytes)
	}
	if ic.IntraNodeBytes() != 0 {
		t.Errorf("scatter leaked %d bytes onto the intra tier", ic.IntraNodeBytes())
	}
}

// TestInterconnectNVLink: the switched fabric is strictly faster than the
// PCIe ring (higher links, pipelined step latencies), ignores the pageable
// penalty (peer DMA), and reports zero scatter contention.
func TestInterconnectNVLink(t *testing.T) {
	cfg := DefaultConfig()
	ring := NewInterconnect(cfg)
	nvCfg := cfg
	nvCfg.Interconnect = NVLinkInterconnect()
	nv := NewInterconnect(nvCfg)

	const bytes, n = int64(4 << 20), 8
	if rt, nt := ring.AllReduce(bytes, n, true), nv.AllReduce(bytes, n, true); nt >= rt {
		t.Errorf("NVLink all-reduce %v should beat the PCIe ring's %v", nt, rt)
	}
	if p, u := nv.AllReduce(bytes, n, true), nv.AllReduce(bytes, n, false); p != u {
		t.Errorf("peer DMA must not pay the pageable factor (pinned %v vs pageable %v)", p, u)
	}
	if c := nv.OverlapContention(); c != 0 {
		t.Errorf("NVLink scatter contention %v, want 0", c)
	}
	if c := ring.OverlapContention(); c <= 0 || c >= 1 {
		t.Errorf("PCIe-ring scatter contention %v, want within (0,1)", c)
	}
}
