package gpusim

import (
	"testing"
	"time"
)

// TestInterconnectAllReduceRing checks the PCIe-ring collective model
// against the closed form: 2·(n−1) steps of bytes/n, each paying the
// per-transfer latency (and the pageable factor when unpinned).
func TestInterconnectAllReduceRing(t *testing.T) {
	cfg := DefaultConfig()
	ic := NewInterconnect(cfg)
	if d := ic.AllReduce(1<<20, 1, true); d != 0 {
		t.Fatalf("1-device all-reduce costs %v, want 0", d)
	}
	const bytes, n = int64(1 << 20), 4
	got := ic.AllReduce(bytes, n, true)
	per := cfg.TransferLatencyNs + float64(bytes)/float64(n)/cfg.PCIeBytesPerSec*1e9
	want := time.Duration(float64(2*(n-1)) * per)
	if got != want {
		t.Errorf("pinned ring all-reduce %v, want %v", got, want)
	}
	unpinned := ic.AllReduce(bytes, n, false)
	if unpinned <= got {
		t.Errorf("pageable all-reduce %v should exceed pinned %v", unpinned, got)
	}
	if moved := ic.BytesMoved(); moved != 2*2*(n-1)*bytes {
		t.Errorf("fabric traffic %d, want %d (two collectives of 2(n-1)·bytes)", moved, 2*2*(n-1)*bytes)
	}
}

// TestInterconnectNVLink: the switched fabric is strictly faster than the
// PCIe ring (higher links, pipelined step latencies), ignores the pageable
// penalty (peer DMA), and reports zero scatter contention.
func TestInterconnectNVLink(t *testing.T) {
	cfg := DefaultConfig()
	ring := NewInterconnect(cfg)
	nvCfg := cfg
	nvCfg.Interconnect = NVLinkInterconnect()
	nv := NewInterconnect(nvCfg)

	const bytes, n = int64(4 << 20), 8
	if rt, nt := ring.AllReduce(bytes, n, true), nv.AllReduce(bytes, n, true); nt >= rt {
		t.Errorf("NVLink all-reduce %v should beat the PCIe ring's %v", nt, rt)
	}
	if p, u := nv.AllReduce(bytes, n, true), nv.AllReduce(bytes, n, false); p != u {
		t.Errorf("peer DMA must not pay the pageable factor (pinned %v vs pageable %v)", p, u)
	}
	if c := nv.OverlapContention(); c != 0 {
		t.Errorf("NVLink scatter contention %v, want 0", c)
	}
	if c := ring.OverlapContention(); c <= 0 || c >= 1 {
		t.Errorf("PCIe-ring scatter contention %v, want within (0,1)", c)
	}
}
