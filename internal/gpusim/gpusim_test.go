package gpusim

import (
	"testing"
	"testing/quick"
)

func TestAllocAndFree(t *testing.T) {
	d := NewDevice(DefaultConfig())
	b, err := d.Alloc(1024, "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.MemInUse() != 1024 {
		t.Errorf("in use %d want 1024", d.MemInUse())
	}
	b.Free()
	if d.MemInUse() != 0 {
		t.Errorf("in use %d after free", d.MemInUse())
	}
	b.Free() // double free is a no-op
}

func TestOOM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemoryBytes = 100
	d := NewDevice(cfg)
	_, err := d.Alloc(200, "big")
	oom, ok := err.(*OOMError)
	if !ok {
		t.Fatalf("expected *OOMError, got %T", err)
	}
	if oom.Requested != 200 {
		t.Errorf("OOM reports %d requested", oom.Requested)
	}
}

func TestPeakTracking(t *testing.T) {
	d := NewDevice(DefaultConfig())
	a := d.MustAlloc(1000, "a")
	b := d.MustAlloc(2000, "b")
	if d.MemPeak() != 3000 {
		t.Errorf("peak %d want 3000", d.MemPeak())
	}
	a.Free()
	b.Free()
	if d.MemPeak() != 3000 {
		t.Errorf("peak should persist at 3000, got %d", d.MemPeak())
	}
	d.ResetPeak()
	if d.MemPeak() != 0 {
		t.Errorf("peak after reset %d", d.MemPeak())
	}
}

func TestBuffersDoNotShareCacheLines(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDevice(cfg)
	a := d.MustAlloc(1, "a")
	b := d.MustAlloc(1, "b")
	if a.base/cfg.CacheLineBytes == b.base/cfg.CacheLineBytes {
		t.Error("distinct buffers share a cache line")
	}
}

func TestCacheHitOnReread(t *testing.T) {
	d := NewDevice(DefaultConfig())
	k := d.StartKernel("test")
	sm := k.SM(0)
	buf := d.MustAlloc(4096, "data")
	sm.Read(buf.Addr(0), 256) // cold: all misses
	before := sm.loads
	sm.Read(buf.Addr(0), 256) // warm: all hits
	if sm.loads != before {
		t.Errorf("reread caused %d extra loads", sm.loads-before)
	}
	if sm.hits == 0 {
		t.Error("no cache hits on reread")
	}
	k.Finish()
}

func TestCacheEviction(t *testing.T) {
	cfg := Config{NumSMs: 1, CacheBytesPerSM: 128, CacheLineBytes: 32, MemoryBytes: 1 << 20}
	d := NewDevice(cfg)
	k := d.StartKernel("evict")
	sm := k.SM(0)
	buf := d.MustAlloc(1<<16, "data")
	// Cache holds 4 lines. Touch 8 distinct lines, then the first again.
	for i := 0; i < 8; i++ {
		sm.Read(buf.Addr(int64(i)*32), 1)
	}
	before := sm.loads
	sm.Read(buf.Addr(0), 1) // line 0 was evicted -> miss
	if sm.loads != before+1 {
		t.Error("expected a miss after eviction")
	}
	k.Finish()
}

func TestKernelAggregatesCounters(t *testing.T) {
	d := NewDevice(DefaultConfig())
	before := d.Snapshot()
	k := d.StartKernel("k")
	k.SM(0).AddFLOPs(100)
	k.SM(1).AddFLOPs(50)
	st := k.Finish()
	if st.FLOPs != 150 {
		t.Errorf("kernel FLOPs %d want 150", st.FLOPs)
	}
	if d.Snapshot().Sub(before).FLOPs != 150 {
		t.Error("device counter not updated")
	}
}

func TestPCIePinnedFaster(t *testing.T) {
	d := NewDevice(DefaultConfig())
	p := d.PCIe()
	data := make([]float32, 10000)
	dst := make([]float32, 10000)
	pinned := p.account(40000, true)
	pageable := p.account(40000, false)
	if pageable <= pinned {
		t.Errorf("pageable %v should exceed pinned %v", pageable, pinned)
	}
	_ = data
	_ = dst
}

func TestEstimateMonotoneInFLOPs(t *testing.T) {
	d := NewDevice(DefaultConfig())
	m := DefaultKernelTimeModel()
	low := d.Estimate(m, Counters{FLOPs: 1e6, Launches: 1})
	high := d.Estimate(m, Counters{FLOPs: 1e9, Launches: 1})
	if high <= low {
		t.Error("estimate not increasing in FLOPs")
	}
}

// Property: a single buffer reread within cache capacity never adds loads.
func TestQuickCacheReuse(t *testing.T) {
	f := func(sizeRaw uint16) bool {
		size := 1 + int64(sizeRaw)%4096
		cfg := DefaultConfig()
		d := NewDevice(cfg)
		k := d.StartKernel("q")
		sm := k.SM(0)
		buf := d.MustAlloc(size, "b")
		if size > cfg.CacheBytesPerSM {
			return true // skip: exceeds cache
		}
		sm.Read(buf.Addr(0), size)
		loads := sm.loads
		sm.Read(buf.Addr(0), size)
		k.Finish()
		return sm.loads == loads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
