package gpusim

import (
	"sync/atomic"
	"time"
)

// PCIe models host→device data transfer (the T subtask of preprocessing).
// Transfers both perform a real memory copy — so wall-clock pipelines see
// genuine work — and accrue modeled transfer time under the configured link
// bandwidth, with pageable buffers paying the driver staging overhead that
// pinned (page-locked) buffers avoid (§V-B, SALIENT comparison in §VI-B).
type PCIe struct {
	dev           *Device
	modeledNs     atomic.Int64
	bytesMoved    atomic.Int64
	transferCount atomic.Int64
}

// PCIe returns the device's transfer engine.
func (d *Device) PCIe() *PCIe { return &PCIe{dev: d} }

// Transfer copies src into dst (a "device-resident" host slice backing a
// Buffer) and accounts the modeled transfer time. pinned selects the
// page-locked fast path. It returns the modeled duration.
func (p *PCIe) Transfer(dst, src []float32, pinned bool) time.Duration {
	copy(dst, src)
	if !pinned {
		// Pageable transfers stage through a driver bounce buffer: model it
		// with a second copy so the host-side cost is physically real.
		staging := make([]float32, len(src))
		copy(staging, src)
		_ = staging
	}
	return p.account(int64(len(src))*4, pinned)
}

// TransferBytes accounts a transfer of n bytes without moving real data;
// used for index arrays whose payloads live inside graph structures.
func (p *PCIe) TransferBytes(n int64, pinned bool) time.Duration {
	return p.account(n, pinned)
}

// TransferStaged accounts a transfer whose destination copy the caller has
// already performed, paying the link for n bytes of src only (the
// cache-aware T task: resident rows are device-held and cross for free).
// Pageable transfers still bounce the paid payload through a driver
// staging buffer, keeping that host-side cost physically real exactly as
// Transfer models it.
func (p *PCIe) TransferStaged(src []float32, n int64, pinned bool) time.Duration {
	if !pinned {
		rows := int(n / 4)
		if rows > len(src) {
			rows = len(src)
		}
		staging := make([]float32, rows)
		copy(staging, src[:rows])
		_ = staging
	}
	return p.account(n, pinned)
}

func (p *PCIe) account(n int64, pinned bool) time.Duration {
	cfg := p.dev.cfg
	ns := cfg.TransferLatencyNs
	if cfg.PCIeBytesPerSec > 0 {
		ns += float64(n) / cfg.PCIeBytesPerSec * 1e9
	}
	if !pinned {
		ns *= cfg.PageableOverhead
	}
	d := time.Duration(ns)
	p.modeledNs.Add(int64(d))
	p.bytesMoved.Add(n)
	p.transferCount.Add(1)
	return d
}

// ModeledTime returns the total modeled transfer time accrued.
func (p *PCIe) ModeledTime() time.Duration { return time.Duration(p.modeledNs.Load()) }

// BytesMoved returns the total bytes transferred.
func (p *PCIe) BytesMoved() int64 { return p.bytesMoved.Load() }

// Transfers returns the number of transfer operations issued.
func (p *PCIe) Transfers() int64 { return p.transferCount.Load() }
