package gpusim

import (
	"sync/atomic"
	"time"
)

// Topology selects the device-to-device interconnect model a multi-device
// group's gradient all-reduce runs over.
type Topology int

const (
	// TopologyPCIeRing is the default: a flat ring over each device's PCIe
	// link (peer traffic crosses the host root complex). Collective steps
	// serialize hop by hop and contend with concurrent host→device traffic
	// on the same fabric.
	TopologyPCIeRing Topology = iota
	// TopologyNVLink is an NVLink-style switched fabric: much higher
	// per-link bandwidth, the ring's per-step latencies pipeline through
	// the switch, peer DMA skips the pageable staging penalty, and —
	// decisive for overlap — the collective leaves the PCIe links free, so
	// a concurrent input scatter proceeds at full rate.
	TopologyNVLink
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case TopologyPCIeRing:
		return "pcie-ring"
	case TopologyNVLink:
		return "nvlink"
	}
	return "topology?"
}

// InterconnectConfig describes the interconnect of a device group.
type InterconnectConfig struct {
	Topology Topology
	// LinkBytesPerSec is the per-direction device-to-device bandwidth; 0
	// falls back to the device's PCIe bandwidth (the flat-ring default).
	LinkBytesPerSec float64
	// LinkLatencyNs is the fixed setup cost of one collective step; 0 falls
	// back to the device's TransferLatencyNs.
	LinkLatencyNs float64
	// OverlapContention is the fraction of host→device scatter rate lost
	// while a collective drains on a shared fabric: 0 means the scatter
	// proceeds at full speed during the previous step's all-reduce
	// (separate fabrics, NVLink), 1 means no overlap at all (fully shared
	// link). The DeviceGroup uses it to model the overlapped schedule.
	OverlapContention float64
}

// DefaultInterconnect returns the flat PCIe-ring interconnect: link
// parameters inherited from the device's PCIe model, and half of the
// scatter rate lost while an all-reduce shares the fabric.
func DefaultInterconnect() InterconnectConfig {
	return InterconnectConfig{Topology: TopologyPCIeRing, OverlapContention: 0.5}
}

// NVLinkInterconnect returns an NVLink-style option (RTX 3090 NVLink
// bridge class, ~4x the modeled PCIe bandwidth): the collective runs on
// its own fabric, so a concurrent scatter pays no contention.
func NVLinkInterconnect() InterconnectConfig {
	return InterconnectConfig{
		Topology:          TopologyNVLink,
		LinkBytesPerSec:   48e9,
		LinkLatencyNs:     1300,
		OverlapContention: 0,
	}
}

// Interconnect is the accounting engine of a device group's collective
// fabric — the peer-to-peer analogue of the per-device PCIe engine. It
// models ring all-reduce time under the configured topology and accrues
// the modeled traffic.
type Interconnect struct {
	cfg       InterconnectConfig
	dev       Config
	modeledNs atomic.Int64
	bytes     atomic.Int64
}

// NewInterconnect builds the engine from a device config (whose
// Interconnect field selects the topology and whose PCIe numbers are the
// fallback link parameters).
func NewInterconnect(dev Config) *Interconnect {
	return &Interconnect{cfg: dev.Interconnect, dev: dev}
}

// Config returns the interconnect configuration.
func (ic *Interconnect) Config() InterconnectConfig { return ic.cfg }

// linkParams resolves the effective per-step bandwidth and latency.
func (ic *Interconnect) linkParams() (bw, latNs float64) {
	bw = ic.cfg.LinkBytesPerSec
	if bw <= 0 {
		bw = ic.dev.PCIeBytesPerSec
	}
	latNs = ic.cfg.LinkLatencyNs
	if latNs <= 0 {
		latNs = ic.dev.TransferLatencyNs
	}
	return bw, latNs
}

// AllReduce accounts a ring all-reduce of `bytes` gradient bytes across n
// devices and returns the modeled per-device time. Every device moves
// 2·(n−1) chunks of bytes/n (reduce-scatter + all-gather). On the PCIe
// ring each step pays the full per-transfer latency (and the pageable
// staging penalty when pinned is false) exactly as the per-device engine
// would; on NVLink the steps pipeline through the switch, so only the two
// phase latencies are exposed and peer DMA never pays the pageable factor.
func (ic *Interconnect) AllReduce(bytes int64, n int, pinned bool) time.Duration {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	bw, latNs := ic.linkParams()
	steps := 2 * (n - 1)
	chunk := float64(bytes) / float64(n)
	var ns float64
	switch ic.cfg.Topology {
	case TopologyNVLink:
		ns = 2*latNs + float64(steps)*chunk/bw*1e9
	default:
		per := latNs + chunk/bw*1e9
		if !pinned {
			per *= ic.dev.PageableOverhead
		}
		ns = float64(steps) * per
	}
	d := time.Duration(ns)
	ic.modeledNs.Add(int64(d))
	ic.bytes.Add(int64(steps) * bytes) // total fabric traffic: n · 2(n−1) · bytes/n
	return d
}

// OverlapContention returns the configured scatter-rate loss factor.
func (ic *Interconnect) OverlapContention() float64 {
	c := ic.cfg.OverlapContention
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	return c
}

// ModeledTime returns the cumulative modeled collective time.
func (ic *Interconnect) ModeledTime() time.Duration { return time.Duration(ic.modeledNs.Load()) }

// BytesMoved returns the cumulative fabric traffic.
func (ic *Interconnect) BytesMoved() int64 { return ic.bytes.Load() }
