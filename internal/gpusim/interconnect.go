package gpusim

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Topology selects the device-to-device interconnect model a multi-device
// group's gradient all-reduce runs over.
type Topology int

const (
	// TopologyPCIeRing is the default: a flat ring over each device's PCIe
	// link (peer traffic crosses the host root complex). Collective steps
	// serialize hop by hop and contend with concurrent host→device traffic
	// on the same fabric.
	TopologyPCIeRing Topology = iota
	// TopologyNVLink is an NVLink-style switched fabric: much higher
	// per-link bandwidth, the ring's per-step latencies pipeline through
	// the switch, peer DMA skips the pageable staging penalty, and —
	// decisive for overlap — the collective leaves the PCIe links free, so
	// a concurrent input scatter proceeds at full rate.
	TopologyNVLink
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case TopologyPCIeRing:
		return "pcie-ring"
	case TopologyNVLink:
		return "nvlink"
	}
	return "topology?"
}

// NetworkLink models the inter-node tier of a hierarchical fabric: an
// Ethernet/InfiniBand-class network connecting the nodes of a multi-node
// group. It has no pinned/pageable distinction (RDMA transports bypass the
// host staging copy) and its per-hop latency is paid on every collective
// step — node-to-node hops cannot pipeline through a switch the way
// intra-node NVLink steps do.
type NetworkLink struct {
	// BytesPerSec is the per-direction node-to-node bandwidth.
	BytesPerSec float64
	// HopLatencyNs is the fixed setup cost of one inter-node hop
	// (collective step or scatter transfer).
	HopLatencyNs float64
	// Contention is the fraction of cross-node scatter rate lost while an
	// inter-node collective drains on the same network (the network-tier
	// analogue of InterconnectConfig.OverlapContention).
	Contention float64
}

// DefaultNetworkLink returns the inter-node network the hierarchical fabric
// models by default: an HDR InfiniBand-class link (~200 Gb/s per direction),
// microsecond-scale hop setup, and a quarter of the scatter rate lost under
// a draining inter-node collective (the NIC is shared, but scatter and
// collective steps interleave).
func DefaultNetworkLink() NetworkLink {
	return NetworkLink{
		BytesPerSec:  25e9,
		HopLatencyNs: 5000,
		Contention:   0.25,
	}
}

// InterconnectConfig describes the interconnect of a device group.
type InterconnectConfig struct {
	Topology Topology
	// LinkBytesPerSec is the per-direction device-to-device bandwidth; 0
	// falls back to the device's PCIe bandwidth (the flat-ring default).
	LinkBytesPerSec float64
	// LinkLatencyNs is the fixed setup cost of one collective step; 0 falls
	// back to the device's TransferLatencyNs.
	LinkLatencyNs float64
	// OverlapContention is the fraction of host→device scatter rate lost
	// while a collective drains on a shared fabric: 0 means the scatter
	// proceeds at full speed during the previous step's all-reduce
	// (separate fabrics, NVLink), 1 means no overlap at all (fully shared
	// link). The DeviceGroup uses it to model the overlapped schedule.
	OverlapContention float64

	// DevicesPerNode splits the group into nodes of this size, turning the
	// flat fabric into a two-tier hierarchy: the link parameters above
	// become the intra-node tier and Network becomes the inter-node tier.
	// 0 (the default) keeps the whole group on one flat single-node
	// fabric.
	DevicesPerNode int
	// Network is the inter-node tier of a hierarchical fabric (ignored
	// while DevicesPerNode is 0). Zero-valued fields fall back to
	// DefaultNetworkLink.
	Network NetworkLink
}

// Name labels the configured fabric for reports: the topology name, with
// the node size appended for hierarchical fabrics ("hier-4/node").
func (c InterconnectConfig) Name() string {
	if c.DevicesPerNode > 0 {
		return fmt.Sprintf("hier-%d/node", c.DevicesPerNode)
	}
	return c.Topology.String()
}

// DefaultInterconnect returns the flat PCIe-ring interconnect: link
// parameters inherited from the device's PCIe model, and half of the
// scatter rate lost while an all-reduce shares the fabric.
func DefaultInterconnect() InterconnectConfig {
	return InterconnectConfig{Topology: TopologyPCIeRing, OverlapContention: 0.5}
}

// NVLinkInterconnect returns an NVLink-style option (RTX 3090 NVLink
// bridge class, ~4x the modeled PCIe bandwidth): the collective runs on
// its own fabric, so a concurrent scatter pays no contention.
func NVLinkInterconnect() InterconnectConfig {
	return InterconnectConfig{
		Topology:          TopologyNVLink,
		LinkBytesPerSec:   48e9,
		LinkLatencyNs:     1300,
		OverlapContention: 0,
	}
}

// HierarchicalInterconnect returns the two-tier fabric of a multi-node
// group: NVLink-class links inside each node of devsPerNode devices, and
// the default Ethernet/IB-class network between nodes. The hierarchical
// all-reduce runs its reduce-scatter and broadcast on the fast intra-node
// tier and only the per-node ring on the network, which is what lets the
// modeled step keep scaling past a single box.
func HierarchicalInterconnect(devsPerNode int) InterconnectConfig {
	ic := NVLinkInterconnect()
	ic.DevicesPerNode = devsPerNode
	ic.Network = DefaultNetworkLink()
	return ic
}

// Interconnect is the accounting engine of a device group's collective
// fabric — the peer-to-peer analogue of the per-device PCIe engine. It
// models ring all-reduce time under the configured topology (hierarchically
// when the config declares nodes) and accrues the modeled traffic per tier.
type Interconnect struct {
	cfg InterconnectConfig
	dev Config

	// Per-tier accumulators: intra counts device-to-device traffic inside a
	// node (the whole collective on a flat single-node fabric), inter
	// counts node-to-node network traffic (collective steps plus cross-node
	// scatter). ModeledTime/BytesMoved report their sums.
	intraNs    atomic.Int64
	interNs    atomic.Int64
	intraBytes atomic.Int64
	interBytes atomic.Int64

	// Link degradation (fault injection): the network tier runs at
	// degradeFactor × bandwidth with degradeExtraNs added to every hop
	// while a chaos plan declares a degradation window. Stored as atomics
	// so the batch-boundary writer never races concurrent device workers
	// reading Network(). Zero degradeFactor bits mean healthy (factor 1).
	degradeFactor  atomic.Uint64
	degradeExtraNs atomic.Int64
}

// NewInterconnect builds the engine from a device config (whose
// Interconnect field selects the topology and whose PCIe numbers are the
// fallback link parameters).
func NewInterconnect(dev Config) *Interconnect {
	return &Interconnect{cfg: dev.Interconnect, dev: dev}
}

// Config returns the interconnect configuration.
func (ic *Interconnect) Config() InterconnectConfig { return ic.cfg }

// linkParams resolves the effective per-step bandwidth and latency of the
// intra-node tier.
func (ic *Interconnect) linkParams() (bw, latNs float64) {
	bw = ic.cfg.LinkBytesPerSec
	if bw <= 0 {
		bw = ic.dev.PCIeBytesPerSec
	}
	latNs = ic.cfg.LinkLatencyNs
	if latNs <= 0 {
		latNs = ic.dev.TransferLatencyNs
	}
	return bw, latNs
}

// Network resolves the effective inter-node tier parameters (zero-valued
// config fields fall back to DefaultNetworkLink), with any active link
// degradation applied: bandwidth scaled down by the degradation factor and
// the extra per-hop latency added. Degradation shapes modeled time only —
// collective results and fold order never see it.
func (ic *Interconnect) Network() NetworkLink {
	net := ic.cfg.Network
	def := DefaultNetworkLink()
	if net.BytesPerSec <= 0 {
		net.BytesPerSec = def.BytesPerSec
	}
	if net.HopLatencyNs <= 0 {
		net.HopLatencyNs = def.HopLatencyNs
	}
	if bits := ic.degradeFactor.Load(); bits != 0 {
		if f := math.Float64frombits(bits); f > 0 && f < 1 {
			net.BytesPerSec *= f
		}
	}
	if extra := ic.degradeExtraNs.Load(); extra > 0 {
		net.HopLatencyNs += float64(extra)
	}
	return net
}

// SetLinkDegradation installs (or, with factor >= 1 and extra 0, clears)
// the network tier's degradation state: bandwidth scaled by factor, extra
// added to every hop. Engines call it at batch boundaries from the chaos
// plan's LinkDegraded verdict; flat single-node fabrics have no network
// tier, so degradation is inert there by construction.
func (ic *Interconnect) SetLinkDegradation(factor float64, extra time.Duration) {
	if factor >= 1 {
		ic.degradeFactor.Store(0)
	} else {
		if factor <= 0 {
			factor = 0.25
		}
		ic.degradeFactor.Store(math.Float64bits(factor))
	}
	ic.degradeExtraNs.Store(int64(extra))
}

// LinkDegradation reports the installed degradation (factor 1, extra 0
// when healthy).
func (ic *Interconnect) LinkDegradation() (factor float64, extra time.Duration) {
	factor = 1
	if bits := ic.degradeFactor.Load(); bits != 0 {
		factor = math.Float64frombits(bits)
	}
	return factor, time.Duration(ic.degradeExtraNs.Load())
}

// NumNodes returns how many nodes a collective over n devices spans under
// the configured node size (1 on a flat fabric).
func (ic *Interconnect) NumNodes(n int) int {
	p := ic.cfg.DevicesPerNode
	if p <= 0 || n <= 0 {
		return 1
	}
	return (n + p - 1) / p
}

// ringNs is the closed-form flat ring all-reduce over m devices on the
// intra-node tier: 2·(m−1) steps of bytes/m. On the PCIe ring each step
// pays the full per-transfer latency (and the pageable staging penalty when
// pinned is false) exactly as the per-device engine would; on NVLink the
// steps pipeline through the switch, so only the two phase latencies are
// exposed and peer DMA never pays the pageable factor.
func (ic *Interconnect) ringNs(bytes int64, m int, pinned bool) float64 {
	bw, latNs := ic.linkParams()
	steps := 2 * (m - 1)
	chunk := float64(bytes) / float64(m)
	switch ic.cfg.Topology {
	case TopologyNVLink:
		return 2*latNs + float64(steps)*chunk/bw*1e9
	default:
		per := latNs + chunk/bw*1e9
		if !pinned {
			per *= ic.dev.PageableOverhead
		}
		return float64(steps) * per
	}
}

// AllReduce accounts an all-reduce of `bytes` gradient bytes across n
// devices and returns the modeled per-device time (the sum of both tiers on
// a hierarchical fabric; see AllReduceTiers for the split).
func (ic *Interconnect) AllReduce(bytes int64, n int, pinned bool) time.Duration {
	intra, inter := ic.AllReduceTiers(bytes, n, pinned)
	return intra + inter
}

// AllReduceTiers accounts the collective and returns its per-tier modeled
// time. On a flat fabric the whole ring runs on the intra tier. On a
// hierarchical fabric (DevicesPerNode > 0 spanning more than one node) the
// collective is hierarchical:
//
//  1. intra-node reduce-scatter — m−1 steps of bytes/m on the fast tier,
//  2. inter-node ring all-reduce over one representative per node —
//     2·(nodes−1) steps of bytes/nodes on the network, each paying the
//     per-hop latency (inter-node steps never pipeline and never pay the
//     pageable factor: RDMA),
//  3. intra-node broadcast of the folded result — m−1 steps of bytes/m.
//
// Phases 1+3 together cost exactly one flat ring over the node's m devices;
// only the (much shorter) per-node ring touches the slow tier, which is why
// the hierarchy keeps scaling past a single box. n <= 1 or bytes <= 0
// return (0, 0) without touching the modeled-time/bytes accumulators on
// either path.
func (ic *Interconnect) AllReduceTiers(bytes int64, n int, pinned bool) (intra, inter time.Duration) {
	if n <= 1 || bytes <= 0 {
		return 0, 0
	}
	p := ic.cfg.DevicesPerNode
	if p <= 0 || p >= n {
		// Flat fabric (or a hierarchy degenerated to one node): the whole
		// collective rides the intra tier.
		d := time.Duration(ic.ringNs(bytes, n, pinned))
		ic.intraNs.Add(int64(d))
		ic.intraBytes.Add(int64(2*(n-1)) * bytes) // n devices × 2(n−1) chunks of bytes/n
		return d, 0
	}
	nodes := (n + p - 1) / p
	intra = time.Duration(ic.ringNs(bytes, p, pinned))
	net := ic.Network()
	chunk := float64(bytes) / float64(nodes)
	inter = time.Duration(float64(2*(nodes-1)) * (net.HopLatencyNs + chunk/net.BytesPerSec*1e9))
	ic.intraNs.Add(int64(intra))
	ic.interNs.Add(int64(inter))
	// Fabric traffic: a ring of p inside each of the nodes, a ring of
	// `nodes` representatives on the network.
	ic.intraBytes.Add(int64(nodes) * int64(2*(p-1)) * bytes)
	ic.interBytes.Add(int64(2*(nodes-1)) * bytes)
	return intra, inter
}

// InterScatter accounts a cross-node host→node transfer on the network
// tier: `hops` per-transfer setups plus bytes at the link rate, serialized
// on the producer node's uplink. bytes <= 0 and hops <= 0 return 0 without
// touching the accumulators.
func (ic *Interconnect) InterScatter(bytes int64, hops int) time.Duration {
	if bytes <= 0 && hops <= 0 {
		return 0
	}
	if bytes < 0 {
		bytes = 0
	}
	if hops < 0 {
		hops = 0
	}
	net := ic.Network()
	d := time.Duration(float64(hops)*net.HopLatencyNs + float64(bytes)/net.BytesPerSec*1e9)
	ic.interNs.Add(int64(d))
	ic.interBytes.Add(bytes)
	return d
}

// Broadcast accounts a one-source weight reinstall — the modeled cost of
// an elastic rejoin, where one survivor streams the full weight snapshot to
// the returning device. crossNode selects the tier: false is one
// device-to-device transfer on the intra tier (paying the pageable staging
// factor on a PCIe fabric when pinned is false), true is one network hop on
// the inter tier (RDMA — no pageable factor, but any active link
// degradation applies). bytes <= 0 returns 0 without touching the
// accumulators.
func (ic *Interconnect) Broadcast(bytes int64, crossNode, pinned bool) time.Duration {
	if bytes <= 0 {
		return 0
	}
	if crossNode {
		net := ic.Network()
		d := time.Duration(net.HopLatencyNs + float64(bytes)/net.BytesPerSec*1e9)
		ic.interNs.Add(int64(d))
		ic.interBytes.Add(bytes)
		return d
	}
	bw, latNs := ic.linkParams()
	ns := latNs + float64(bytes)/bw*1e9
	if ic.cfg.Topology != TopologyNVLink && !pinned {
		ns *= ic.dev.PageableOverhead
	}
	d := time.Duration(ns)
	ic.intraNs.Add(int64(d))
	ic.intraBytes.Add(bytes)
	return d
}

// OverlapContention returns the configured intra-tier scatter-rate loss
// factor.
func (ic *Interconnect) OverlapContention() float64 {
	return clamp01(ic.cfg.OverlapContention)
}

// NetworkContention returns the inter-node tier's scatter-rate loss factor.
func (ic *Interconnect) NetworkContention() float64 {
	return clamp01(ic.cfg.Network.Contention)
}

func clamp01(c float64) float64 {
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// ModeledTime returns the cumulative modeled collective time (both tiers).
func (ic *Interconnect) ModeledTime() time.Duration {
	return time.Duration(ic.intraNs.Load() + ic.interNs.Load())
}

// BytesMoved returns the cumulative fabric traffic (both tiers).
func (ic *Interconnect) BytesMoved() int64 { return ic.intraBytes.Load() + ic.interBytes.Load() }

// IntraNodeTime returns the cumulative modeled time on the intra-node tier.
func (ic *Interconnect) IntraNodeTime() time.Duration { return time.Duration(ic.intraNs.Load()) }

// InterNodeTime returns the cumulative modeled time on the network tier.
func (ic *Interconnect) InterNodeTime() time.Duration { return time.Duration(ic.interNs.Load()) }

// IntraNodeBytes returns the cumulative intra-node fabric traffic.
func (ic *Interconnect) IntraNodeBytes() int64 { return ic.intraBytes.Load() }

// InterNodeBytes returns the cumulative network-tier traffic (collective
// steps plus cross-node scatter).
func (ic *Interconnect) InterNodeBytes() int64 { return ic.interBytes.Load() }
