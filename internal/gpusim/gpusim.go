// Package gpusim models the GPU execution behaviour the paper's evaluation
// measures, replacing the NVIDIA RTX 3090 testbed that a pure-Go build
// cannot drive. It is not a cycle simulator: it replays the *memory access
// pattern* each kernel scheduling strategy generates and counts the
// quantities the paper reports —
//
//   - device memory footprint (Fig 6a memory bloat, Fig 17a),
//   - bytes loaded into per-SM caches (Fig 6b cache bloat, Fig 17b),
//   - global memory accesses (Fig 18b),
//   - floating point operations (Fig 18a),
//   - host→device transfer time under pinned vs pageable buffers (Fig 19/20).
//
// The modeled device defaults to the paper's RTX 3090 shape: 82 SMs, each
// with an L1 data cache, 128-byte cache lines, and a fixed-capacity global
// memory. Kernels obtain one SMContext per streaming multiprocessor; a
// context is confined to a single goroutine, so access recording is
// lock-free and deterministic given a deterministic schedule.
package gpusim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes the simulated device.
type Config struct {
	NumSMs          int   // streaming multiprocessors (RTX 3090: 82)
	CacheBytesPerSM int64 // L1 data cache per SM (RTX 3090: 128 KiB)
	CacheLineBytes  int64 // cache line / sector granularity
	MemoryBytes     int64 // global memory capacity (for OOM behaviour)

	// PCIeBytesPerSec is the host→device copy bandwidth used by the
	// transfer-time model; PageableOverhead multiplies the cost of
	// transfers from unpinned buffers (driver staging copy).
	PCIeBytesPerSec   float64
	PageableOverhead  float64
	TransferLatencyNs float64 // fixed per-transfer setup cost

	// Interconnect selects the device-to-device fabric a multi-device group
	// runs its gradient all-reduce over (see interconnect.go). The zero
	// value is a flat PCIe ring whose concurrent scatter pays no
	// contention; DefaultConfig installs DefaultInterconnect (PCIe ring,
	// half the scatter rate lost under a draining all-reduce).
	Interconnect InterconnectConfig
}

// DefaultConfig returns the RTX 3090-like device the paper evaluates on.
// Cache line size and per-SM cache capacity are scaled down by the same
// factor as the dataset feature dimensions (internal/datasets divides dims
// by 8), so that one embedding row spans the same number of cache lines as
// at paper scale; global memory is scaled so the paper's out-of-memory
// cases still OOM.
func DefaultConfig() Config {
	return Config{
		NumSMs:            82,
		CacheBytesPerSM:   16 << 10, // 128 KiB / feature-scale 8
		CacheLineBytes:    32,       // 128 B sectors / feature-scale
		MemoryBytes:       384 << 20,
		PCIeBytesPerSec:   12e9, // ~PCIe 4.0 x16 effective
		PageableOverhead:  2.2,  // staging copy + driver sync
		TransferLatencyNs: 8000,
		Interconnect:      DefaultInterconnect(),
	}
}

// Device is a simulated GPU. All methods are safe for concurrent use except
// where noted.
type Device struct {
	cfg Config

	mu      sync.Mutex
	nextMem int64
	inUse   int64
	peak    int64
	buffers map[int64]*Buffer
	arena   *DeviceArena

	// smMu guards smFree, the pool of recycled SMContexts. Kernel launches
	// are frequent (one per GNN stage per batch) and each needs NumSMs
	// contexts with their cache maps and LRU nodes; recycling them across
	// launches removes the dominant allocation cost of the simulator while
	// preserving the cold-cache-per-kernel semantics (contexts are reset on
	// return).
	smMu   sync.Mutex
	smFree []*SMContext

	// dead flips once when Kill is called (fault injection): every
	// subsequent Alloc fails with *DeviceLostError. Kernels allocate
	// their outputs before running, so a killed device fails its next
	// batch at the first device operation — a clean, catchable error on
	// the existing Alloc error path, never a panic mid-kernel.
	dead atomic.Bool
	// stallNs accumulates injected modeled stall time (InjectStall):
	// transient kernel stalls and slow-replica events charge the device
	// modeled delay without touching correctness or wall-clock sleeps.
	stallNs atomic.Int64

	// Global counters aggregated across all finished kernels.
	flops        atomic.Int64
	globalLoads  atomic.Int64 // cache-line loads from global memory
	globalStores atomic.Int64
	cacheHits    atomic.Int64
	cacheBytes   atomic.Int64 // bytes brought into SM caches
	launches     atomic.Int64 // kernel launches
}

// NewDevice creates a simulated device.
func NewDevice(cfg Config) *Device {
	if cfg.NumSMs <= 0 || cfg.CacheLineBytes <= 0 {
		panic("gpusim: invalid config")
	}
	return &Device{cfg: cfg, buffers: map[int64]*Buffer{}}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Buffer is a device memory allocation. Addresses are virtual: the
// simulator only needs them to be stable and non-overlapping so the cache
// model can distinguish data structures.
type Buffer struct {
	dev   *Device
	base  int64
	size  int64
	label string
	freed bool
}

// ErrDeviceLost is the sentinel every DeviceLostError unwraps to; use
// IsDeviceLost (or errors.Is) to classify failures that failover should
// absorb rather than report.
var ErrDeviceLost = errors.New("gpusim: device lost")

// DeviceLostError is returned by Alloc on a killed device, mirroring
// CUDA's sticky cudaErrorDevicesUnavailable: once a device dies, every
// subsequent operation on it fails until the process (here: the engine's
// failover) gives up on the device.
type DeviceLostError struct {
	Label string // the allocation that observed the death
}

func (e *DeviceLostError) Error() string {
	return fmt.Sprintf("gpusim: device lost (allocating %q)", e.Label)
}

// Unwrap makes errors.Is(err, ErrDeviceLost) work through wrapping.
func (e *DeviceLostError) Unwrap() error { return ErrDeviceLost }

// IsDeviceLost reports whether err (anywhere in its chain) is a device
// loss — the class of failure failover absorbs.
func IsDeviceLost(err error) bool { return errors.Is(err, ErrDeviceLost) }

// ErrOutOfMemory is returned by Alloc when the allocation would exceed the
// device capacity, mirroring CUDA's cudaErrorMemoryAllocation.
type OOMError struct {
	Label     string
	Requested int64
	InUse     int64
	Capacity  int64
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("gpusim: out of memory allocating %q (%d bytes; %d in use of %d)",
		e.Label, e.Requested, e.InUse, e.Capacity)
}

// Alloc reserves size bytes of device memory. It fails with *OOMError when
// capacity would be exceeded.
func (d *Device) Alloc(size int64, label string) (*Buffer, error) {
	if size < 0 {
		panic("gpusim: negative allocation")
	}
	if d.dead.Load() {
		return nil, &DeviceLostError{Label: label}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.MemoryBytes > 0 && d.inUse+size > d.cfg.MemoryBytes {
		return nil, &OOMError{Label: label, Requested: size, InUse: d.inUse, Capacity: d.cfg.MemoryBytes}
	}
	b := &Buffer{dev: d, base: d.nextMem, size: size, label: label}
	// Align the next base to a cache line so buffers never share lines.
	d.nextMem += (size + d.cfg.CacheLineBytes - 1) / d.cfg.CacheLineBytes * d.cfg.CacheLineBytes
	d.inUse += size
	if d.inUse > d.peak {
		d.peak = d.inUse
	}
	d.buffers[b.base] = b
	if d.arena != nil {
		d.arena.bufs = append(d.arena.bufs, b)
	}
	return b, nil
}

// DeviceArena is the batch-scoped device allocator — the device analogue of
// tensor.Arena. While installed on a device (SetArena), every Alloc is
// recorded; Release frees whatever the batch did not free itself (kernel
// intermediates, deliberately-retained translation buffers), so MemInUse
// returns to zero between batches. Freeing a buffer twice is a no-op, so
// code that already frees its allocations needs no changes.
//
// An arena is confined to the (single) goroutine that drives its device's
// batches: Release must not race Alloc on the same device.
type DeviceArena struct {
	dev  *Device
	bufs []*Buffer
}

// SetArena installs (or, with nil, removes) the device's batch arena and
// returns it. Subsequent allocations are recorded until it is removed.
func (d *Device) SetArena(a *DeviceArena) *DeviceArena {
	d.mu.Lock()
	defer d.mu.Unlock()
	if a != nil {
		a.dev = d
	}
	d.arena = a
	return a
}

// NewArena installs a fresh batch arena on the device.
func (d *Device) NewArena() *DeviceArena { return d.SetArena(&DeviceArena{}) }

// Release frees every still-live buffer allocated since the arena was
// installed (or last released) and resets the recording, keeping capacity
// for the next batch.
func (a *DeviceArena) Release() {
	for i, b := range a.bufs {
		b.Free()
		a.bufs[i] = nil
	}
	a.bufs = a.bufs[:0]
}

// Outstanding reports how many recorded buffers are still allocated (for
// tests and leak diagnostics).
func (a *DeviceArena) Outstanding() int {
	n := 0
	a.dev.mu.Lock()
	defer a.dev.mu.Unlock()
	for _, b := range a.bufs {
		if !b.freed {
			n++
		}
	}
	return n
}

// MustAlloc is Alloc but panics on OOM; used where the paper's workloads
// cannot OOM by construction.
func (d *Device) MustAlloc(size int64, label string) *Buffer {
	b, err := d.Alloc(size, label)
	if err != nil {
		panic(err)
	}
	return b
}

// Free releases the buffer. Freeing twice is a no-op.
func (b *Buffer) Free() {
	if b == nil || b.freed {
		return
	}
	b.dev.mu.Lock()
	defer b.dev.mu.Unlock()
	b.freed = true
	b.dev.inUse -= b.size
	delete(b.dev.buffers, b.base)
}

// Addr returns the device address of byte offset within the buffer.
func (b *Buffer) Addr(offset int64) int64 {
	if offset < 0 || offset > b.size {
		panic(fmt.Sprintf("gpusim: offset %d outside buffer %q of %d bytes", offset, b.label, b.size))
	}
	return b.base + offset
}

// Size returns the buffer length in bytes.
func (b *Buffer) Size() int64 { return b.size }

// Label returns the allocation label.
func (b *Buffer) Label() string { return b.label }

// MemInUse returns the bytes currently allocated.
func (d *Device) MemInUse() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inUse
}

// BuffersInUse returns how many live allocations carry the label. Tests use
// it to assert a subsystem released everything it allocated (e.g. that the
// prefetch ring's drain freed every batch buffer).
func (d *Device) BuffersInUse(label string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, b := range d.buffers {
		if b.label == label {
			n++
		}
	}
	return n
}

// MemPeak returns the high-water mark since the last ResetPeak.
func (d *Device) MemPeak() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peak
}

// ResetPeak sets the high-water mark to the current usage.
func (d *Device) ResetPeak() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.peak = d.inUse
}

// Counters is a snapshot of the device-wide work counters.
type Counters struct {
	FLOPs        int64
	GlobalLoads  int64 // cache-line fills from global memory
	GlobalStores int64
	CacheHits    int64
	CacheBytes   int64 // bytes loaded into SM caches (loads × line size)
	Launches     int64 // kernel launches
}

// Snapshot returns the current device-wide counters.
func (d *Device) Snapshot() Counters {
	return Counters{
		FLOPs:        d.flops.Load(),
		GlobalLoads:  d.globalLoads.Load(),
		GlobalStores: d.globalStores.Load(),
		CacheHits:    d.cacheHits.Load(),
		CacheBytes:   d.cacheBytes.Load(),
		Launches:     d.launches.Load(),
	}
}

// Sub returns c − o, the work performed between two snapshots.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		FLOPs:        c.FLOPs - o.FLOPs,
		GlobalLoads:  c.GlobalLoads - o.GlobalLoads,
		GlobalStores: c.GlobalStores - o.GlobalStores,
		CacheHits:    c.CacheHits - o.CacheHits,
		CacheBytes:   c.CacheBytes - o.CacheBytes,
		Launches:     c.Launches - o.Launches,
	}
}

// Add returns c + o.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		FLOPs:        c.FLOPs + o.FLOPs,
		GlobalLoads:  c.GlobalLoads + o.GlobalLoads,
		GlobalStores: c.GlobalStores + o.GlobalStores,
		CacheHits:    c.CacheHits + o.CacheHits,
		CacheBytes:   c.CacheBytes + o.CacheBytes,
		Launches:     c.Launches + o.Launches,
	}
}

// ResetCounters zeroes the device-wide counters.
func (d *Device) ResetCounters() {
	d.flops.Store(0)
	d.globalLoads.Store(0)
	d.globalStores.Store(0)
	d.cacheHits.Store(0)
	d.cacheBytes.Store(0)
	d.launches.Store(0)
}

// Kill marks the device dead: every subsequent Alloc fails with
// *DeviceLostError. Killing twice is a no-op; engines drop the device and
// degrade to the surviving set until Revive re-admits it.
func (d *Device) Kill() { d.dead.Store(true) }

// Revive clears the dead flag: the elastic-membership half of the fault
// model, a replacement device coming up under the old identity. The
// simulated hardware carries no batch state across death (EndBatch and
// arena release already cleaned it), so reviving is just re-opening the
// allocator; the *engine* owns re-installing weights before the device
// serves a shard. Reviving an alive device is a no-op.
func (d *Device) Revive() { d.dead.Store(false) }

// Alive reports whether the device has not been killed.
func (d *Device) Alive() bool { return !d.dead.Load() }

// InjectStall charges the device a modeled stall (a straggling kernel or
// a slow-replica episode). Purely modeled: it adjusts reported time, not
// wall time, so fault runs stay bitwise reproducible.
func (d *Device) InjectStall(delay time.Duration) {
	if delay > 0 {
		d.stallNs.Add(int64(delay))
	}
}

// StallTime returns the cumulative injected stall.
func (d *Device) StallTime() time.Duration {
	return time.Duration(d.stallNs.Load())
}

// KernelTimeModel estimates what the counted work would cost on the real
// GPU the simulator stands in for. Our kernels execute on the host CPU, so
// their wall-clock time is orders of magnitude above GPU time; end-to-end
// experiments (Fig 12a, Fig 19) combine real preprocessing wall time with
// this modeled compute time to keep the paper's prep/compute balance.
type KernelTimeModel struct {
	// FLOPSPerSec is the achieved arithmetic throughput. Small sampled-
	// batch GNN kernels reach only a few percent of the RTX 3090's 35.6
	// TFLOPS peak.
	FLOPSPerSec float64
	// BytesPerSec is the achieved global memory bandwidth.
	BytesPerSec float64
	// LaunchOverheadNs is the fixed cost per kernel launch.
	LaunchOverheadNs float64
}

// DefaultKernelTimeModel returns RTX 3090-like achieved figures. The
// achieved rates are deliberately well below the 35.6 TFLOPS / 936 GB/s
// peak: sampled-batch GNN kernels are tiny and latency-bound, so they
// realize only a few percent of peak. Calibrated so GPU compute is ~15% of
// the end-to-end latency on the paper's workloads (Fig 12a).
func DefaultKernelTimeModel() KernelTimeModel {
	return KernelTimeModel{FLOPSPerSec: 4e11, BytesPerSec: 120e9, LaunchOverheadNs: 6000}
}

// Estimate converts a counter delta into modeled GPU time: kernels are
// bounded by the slower of arithmetic and memory, plus launch overhead.
func (d *Device) Estimate(m KernelTimeModel, c Counters) time.Duration {
	arith := float64(c.FLOPs) / m.FLOPSPerSec * 1e9
	bytes := float64(c.CacheBytes+c.GlobalStores*d.cfg.CacheLineBytes) / m.BytesPerSec * 1e9
	ns := arith
	if bytes > ns {
		ns = bytes
	}
	ns += float64(c.Launches) * m.LaunchOverheadNs
	return time.Duration(ns)
}
