package gpusim

import "testing"

// TestKernelRecycleColdCache verifies that SMContext recycling across
// kernel launches preserves the cold-cache-per-kernel semantics: a second
// kernel replaying the same access pattern must report identical stats
// (same misses — nothing leaks from the previous launch's cache), and the
// recycled launch must not allocate fresh contexts.
func TestKernelRecycleColdCache(t *testing.T) {
	d := NewDevice(DefaultConfig())
	buf := d.MustAlloc(1<<20, "data")

	replay := func() KernelStats {
		k := d.StartKernel("replay")
		for smID := 0; smID < k.NumSMs(); smID += 7 {
			sm := k.SM(smID)
			for off := int64(0); off < 8<<10; off += 96 {
				sm.Read(buf.Addr(off), 64)
			}
			// Re-read a prefix: hits the second time within one kernel.
			for off := int64(0); off < 4<<10; off += 96 {
				sm.Read(buf.Addr(off), 64)
			}
			sm.Write(buf.Addr(0), 4096)
			sm.AddFLOPs(1000)
		}
		return k.Finish()
	}

	first := replay()
	for i := 0; i < 3; i++ {
		again := replay()
		if again != first {
			t.Fatalf("recycled kernel stats differ: run %d %+v != first %+v", i+2, again, first)
		}
	}
	if first.CacheHits == 0 || first.GlobalLoads == 0 {
		t.Fatalf("replay exercised no cache traffic: %+v", first)
	}
}

// TestLRUCacheEviction pins the index-based LRU behaviour: capacity is
// respected, the least recently used line is evicted first, and reset
// empties the cache without losing capacity.
func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	if c.touch(10) {
		t.Fatal("first touch of 10 hit")
	}
	if c.touch(20) {
		t.Fatal("first touch of 20 hit")
	}
	if !c.touch(10) {
		t.Fatal("second touch of 10 missed")
	}
	// Insert a third line: 20 is now LRU and must be evicted.
	if c.touch(30) {
		t.Fatal("first touch of 30 hit")
	}
	if c.touch(20) {
		t.Fatal("touch of evicted 20 hit")
	}
	// 10 was evicted by 20's reinsertion (capacity 2: {30, 20}).
	if !c.touch(30) {
		t.Fatal("30 should still be resident")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	c.reset()
	if c.len() != 0 {
		t.Fatalf("len after reset = %d, want 0", c.len())
	}
	if c.touch(30) {
		t.Fatal("post-reset touch of 30 hit: cache not cold")
	}
}
