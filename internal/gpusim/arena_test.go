package gpusim

import "testing"

// The device arena is the batch-scoped allocator of the multi-device
// training engine: everything a batch allocates and forgets to free is
// reclaimed at batch end, so MemInUse returns to zero between batches.

func TestDeviceArenaReleasesLeaks(t *testing.T) {
	dev := NewDevice(DefaultConfig())
	a := dev.NewArena()

	b1 := dev.MustAlloc(1024, "kept")
	_ = dev.MustAlloc(2048, "leaked")
	b1.Free() // batch code freeing its own buffers is fine

	if got := a.Outstanding(); got != 1 {
		t.Fatalf("outstanding %d, want 1 (the leaked buffer)", got)
	}
	a.Release()
	if got := dev.MemInUse(); got != 0 {
		t.Fatalf("MemInUse %d after arena release, want 0", got)
	}

	// The arena stays installed: the next batch is recorded too.
	_ = dev.MustAlloc(512, "next-batch")
	a.Release()
	if got := dev.MemInUse(); got != 0 {
		t.Fatalf("MemInUse %d after second release, want 0", got)
	}
}

func TestDeviceArenaRemoval(t *testing.T) {
	dev := NewDevice(DefaultConfig())
	a := dev.NewArena()
	dev.SetArena(nil)
	b := dev.MustAlloc(256, "unrecorded")
	a.Release()
	if dev.MemInUse() != 256 {
		t.Fatalf("buffer allocated after removal must survive Release")
	}
	b.Free()
}
