package gpusim

import "sync"

// Kernel is one simulated GPU kernel launch. Obtain per-SM contexts with
// SM(i), record accesses from (at most) one goroutine per context, then call
// Finish to flush per-SM tallies into the device counters and retrieve the
// kernel's own stats.
type Kernel struct {
	dev  *Device
	name string
	sms  []*SMContext
	once sync.Once
	st   KernelStats
}

// KernelStats summarizes one kernel launch.
type KernelStats struct {
	Name         string
	FLOPs        int64
	GlobalLoads  int64
	GlobalStores int64
	CacheHits    int64
	CacheBytes   int64
}

// StartKernel begins a kernel launch. Each SM starts with a cold cache,
// which matches the paper's per-kernel Nsight measurements. Contexts are
// drawn from the device's recycle pool; Finish returns them, so SM(i)
// results must not be retained past Finish.
func (d *Device) StartKernel(name string) *Kernel {
	d.launches.Add(1)
	k := &Kernel{dev: d, name: name, sms: make([]*SMContext, d.cfg.NumSMs)}
	d.smMu.Lock()
	n := copy(k.sms, d.smFree[max(0, len(d.smFree)-len(k.sms)):])
	d.smFree = d.smFree[:len(d.smFree)-n]
	d.smMu.Unlock()
	// Pooled contexts land at the front (reset at checkout so counters of a
	// finished kernel stay readable); fill the rest with fresh ones.
	for i := 0; i < n; i++ {
		k.sms[i].reset()
	}
	for i := n; i < len(k.sms); i++ {
		k.sms[i] = newSMContext(d.cfg)
	}
	return k
}

// NumSMs returns the number of per-kernel SM contexts.
func (k *Kernel) NumSMs() int { return len(k.sms) }

// SM returns the context of streaming multiprocessor i.
func (k *Kernel) SM(i int) *SMContext { return k.sms[i] }

// Finish aggregates all SM contexts into the device counters and returns
// the contexts to the device recycle pool; it is idempotent and returns
// the kernel's stats. SMContexts obtained via SM must not be used after
// Finish (SM panics once the contexts are recycled).
func (k *Kernel) Finish() KernelStats {
	k.once.Do(func() {
		st := KernelStats{Name: k.name}
		for _, sm := range k.sms {
			st.FLOPs += sm.flops
			st.GlobalLoads += sm.loads
			st.GlobalStores += sm.stores
			st.CacheHits += sm.hits
		}
		st.CacheBytes = st.GlobalLoads * k.dev.cfg.CacheLineBytes
		k.dev.flops.Add(st.FLOPs)
		k.dev.globalLoads.Add(st.GlobalLoads)
		k.dev.globalStores.Add(st.GlobalStores)
		k.dev.cacheHits.Add(st.CacheHits)
		k.dev.cacheBytes.Add(st.CacheBytes)
		k.st = st
		k.dev.smMu.Lock()
		k.dev.smFree = append(k.dev.smFree, k.sms...)
		k.dev.smMu.Unlock()
		k.sms = nil
	})
	return k.st
}

// SMContext records the memory traffic of one streaming multiprocessor
// during one kernel. Not safe for concurrent use: confine each context to a
// single goroutine (the simulator's analogue of "one thread block at a time
// per SM slot").
type SMContext struct {
	cache    *lruCache
	lineMask int64
	lineSize int64
	flops    int64
	loads    int64
	stores   int64
	hits     int64
}

func newSMContext(cfg Config) *SMContext {
	lines := int(cfg.CacheBytesPerSM / cfg.CacheLineBytes)
	if lines < 1 {
		lines = 1
	}
	return &SMContext{
		cache:    newLRUCache(lines),
		lineSize: cfg.CacheLineBytes,
		lineMask: ^(cfg.CacheLineBytes - 1),
	}
}

// reset clears the context for recycling into the next kernel launch: the
// counters drop to zero and the cache is emptied (cold per kernel), with
// its nodes and map buckets retained for reuse.
func (sm *SMContext) reset() {
	sm.flops, sm.loads, sm.stores, sm.hits = 0, 0, 0, 0
	sm.cache.reset()
}

// Read simulates a load of size bytes at addr: each touched cache line is
// either served from the SM cache (hit) or filled from global memory (one
// global load, lineSize bytes of cache traffic).
func (sm *SMContext) Read(addr, size int64) {
	if size <= 0 {
		return
	}
	first := addr & sm.lineMask
	last := (addr + size - 1) & sm.lineMask
	for line := first; line <= last; line += sm.lineSize {
		if sm.cache.touch(line) {
			sm.hits++
		} else {
			sm.loads++
		}
	}
}

// Write simulates a store of size bytes at addr. The model is write-through
// without write-allocate: each touched line counts one global store and
// does not displace cache contents, matching how GPU L1s treat global
// stores by default.
func (sm *SMContext) Write(addr, size int64) {
	if size <= 0 {
		return
	}
	first := addr & sm.lineMask
	last := (addr + size - 1) & sm.lineMask
	sm.stores += (last-first)/sm.lineSize + 1
}

// AddFLOPs credits n floating point operations to this SM.
func (sm *SMContext) AddFLOPs(n int64) { sm.flops += n }

// lruCache is a line-granular fully-associative LRU cache. Cache touches
// are the single hottest operation of the whole simulator (every modeled
// load funnels through here), so the implementation is index-based and
// pointer-free: slots live in one flat slice linked by int32 indices, and
// lookup goes through an open hash table of bucket heads chained through
// the slots. Nothing here allocates after construction, reset is a bucket
// memclr, and the garbage collector never traverses the structure.
type lruCache struct {
	capacity int
	slots    []lruSlot // slot arena, len == capacity
	buckets  []int32   // hash-chain heads, -1 = empty; len is a power of two
	mask     uint32
	used     int32 // slots in use; slots [0,used) are resident lines
	head     int32 // most recently used, -1 when empty
	tail     int32 // least recently used, -1 when empty
}

// lruSlot is one resident cache line: doubly linked in LRU order via
// prev/next and singly linked in its hash bucket via hnext.
type lruSlot struct {
	key        int64
	prev, next int32
	hnext      int32
}

func newLRUCache(capacity int) *lruCache {
	nb := 1
	for nb < 2*capacity {
		nb <<= 1
	}
	c := &lruCache{
		capacity: capacity,
		slots:    make([]lruSlot, capacity),
		buckets:  make([]int32, nb),
		mask:     uint32(nb - 1),
		head:     -1,
		tail:     -1,
	}
	for i := range c.buckets {
		c.buckets[i] = -1
	}
	return c
}

// bucket hashes a line address (always line-size aligned, so the low bits
// carry no entropy) onto a bucket index via a Fibonacci multiply.
func (c *lruCache) bucket(line int64) uint32 {
	return uint32((uint64(line)*0x9e3779b97f4a7c15)>>33) & c.mask
}

// touch marks line as most recently used, inserting (and evicting the LRU
// line if full) when absent. It returns true on hit.
func (c *lruCache) touch(line int64) bool {
	b := c.bucket(line)
	for i := c.buckets[b]; i >= 0; i = c.slots[i].hnext {
		if c.slots[i].key == line {
			c.moveToFront(i)
			return true
		}
	}
	var idx int32
	if c.used >= int32(c.capacity) {
		// Reuse the evicted LRU slot for the incoming line.
		idx = c.tail
		c.listRemove(idx)
		c.hashRemove(idx)
	} else {
		idx = c.used
		c.used++
	}
	s := &c.slots[idx]
	s.key = line
	s.hnext = c.buckets[b]
	c.buckets[b] = idx
	c.pushFront(idx)
	return false
}

// reset empties the cache in O(buckets) with no allocation or pointer
// traffic, ready for the next (cold-cache) kernel launch.
func (c *lruCache) reset() {
	for i := range c.buckets {
		c.buckets[i] = -1
	}
	c.used, c.head, c.tail = 0, -1, -1
}

func (c *lruCache) pushFront(idx int32) {
	s := &c.slots[idx]
	s.prev = -1
	s.next = c.head
	if c.head >= 0 {
		c.slots[c.head].prev = idx
	}
	c.head = idx
	if c.tail < 0 {
		c.tail = idx
	}
}

func (c *lruCache) listRemove(idx int32) {
	s := &c.slots[idx]
	if s.prev >= 0 {
		c.slots[s.prev].next = s.next
	} else {
		c.head = s.next
	}
	if s.next >= 0 {
		c.slots[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
	s.prev, s.next = -1, -1
}

func (c *lruCache) hashRemove(idx int32) {
	b := c.bucket(c.slots[idx].key)
	if c.buckets[b] == idx {
		c.buckets[b] = c.slots[idx].hnext
		return
	}
	for i := c.buckets[b]; i >= 0; i = c.slots[i].hnext {
		if c.slots[i].hnext == idx {
			c.slots[i].hnext = c.slots[idx].hnext
			return
		}
	}
}

func (c *lruCache) moveToFront(idx int32) {
	if c.head == idx {
		return
	}
	c.listRemove(idx)
	c.pushFront(idx)
}

// len reports the number of resident lines (for tests).
func (c *lruCache) len() int { return int(c.used) }
