package gpusim

import "sync"

// Kernel is one simulated GPU kernel launch. Obtain per-SM contexts with
// SM(i), record accesses from (at most) one goroutine per context, then call
// Finish to flush per-SM tallies into the device counters and retrieve the
// kernel's own stats.
type Kernel struct {
	dev  *Device
	name string
	sms  []*SMContext
	once sync.Once
	st   KernelStats
}

// KernelStats summarizes one kernel launch.
type KernelStats struct {
	Name         string
	FLOPs        int64
	GlobalLoads  int64
	GlobalStores int64
	CacheHits    int64
	CacheBytes   int64
}

// StartKernel begins a kernel launch. Each SM starts with a cold cache,
// which matches the paper's per-kernel Nsight measurements.
func (d *Device) StartKernel(name string) *Kernel {
	d.launches.Add(1)
	k := &Kernel{dev: d, name: name, sms: make([]*SMContext, d.cfg.NumSMs)}
	for i := range k.sms {
		k.sms[i] = newSMContext(d.cfg)
	}
	return k
}

// NumSMs returns the number of per-kernel SM contexts.
func (k *Kernel) NumSMs() int { return len(k.sms) }

// SM returns the context of streaming multiprocessor i.
func (k *Kernel) SM(i int) *SMContext { return k.sms[i] }

// Finish aggregates all SM contexts into the device counters; it is
// idempotent and returns the kernel's stats.
func (k *Kernel) Finish() KernelStats {
	k.once.Do(func() {
		st := KernelStats{Name: k.name}
		for _, sm := range k.sms {
			st.FLOPs += sm.flops
			st.GlobalLoads += sm.loads
			st.GlobalStores += sm.stores
			st.CacheHits += sm.hits
		}
		st.CacheBytes = st.GlobalLoads * k.dev.cfg.CacheLineBytes
		k.dev.flops.Add(st.FLOPs)
		k.dev.globalLoads.Add(st.GlobalLoads)
		k.dev.globalStores.Add(st.GlobalStores)
		k.dev.cacheHits.Add(st.CacheHits)
		k.dev.cacheBytes.Add(st.CacheBytes)
		k.st = st
	})
	return k.st
}

// SMContext records the memory traffic of one streaming multiprocessor
// during one kernel. Not safe for concurrent use: confine each context to a
// single goroutine (the simulator's analogue of "one thread block at a time
// per SM slot").
type SMContext struct {
	cache    *lruCache
	lineMask int64
	lineSize int64
	flops    int64
	loads    int64
	stores   int64
	hits     int64
}

func newSMContext(cfg Config) *SMContext {
	lines := int(cfg.CacheBytesPerSM / cfg.CacheLineBytes)
	if lines < 1 {
		lines = 1
	}
	return &SMContext{
		cache:    newLRUCache(lines),
		lineSize: cfg.CacheLineBytes,
		lineMask: ^(cfg.CacheLineBytes - 1),
	}
}

// Read simulates a load of size bytes at addr: each touched cache line is
// either served from the SM cache (hit) or filled from global memory (one
// global load, lineSize bytes of cache traffic).
func (sm *SMContext) Read(addr, size int64) {
	if size <= 0 {
		return
	}
	first := addr & sm.lineMask
	last := (addr + size - 1) & sm.lineMask
	for line := first; line <= last; line += sm.lineSize {
		if sm.cache.touch(line) {
			sm.hits++
		} else {
			sm.loads++
		}
	}
}

// Write simulates a store of size bytes at addr. The model is write-through
// without write-allocate: each touched line counts one global store and
// does not displace cache contents, matching how GPU L1s treat global
// stores by default.
func (sm *SMContext) Write(addr, size int64) {
	if size <= 0 {
		return
	}
	first := addr & sm.lineMask
	last := (addr + size - 1) & sm.lineMask
	sm.stores += (last-first)/sm.lineSize + 1
}

// AddFLOPs credits n floating point operations to this SM.
func (sm *SMContext) AddFLOPs(n int64) { sm.flops += n }

// lruCache is a line-granular fully-associative LRU cache, implemented as a
// map plus intrusive doubly-linked list.
type lruCache struct {
	capacity int
	items    map[int64]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
}

type lruNode struct {
	key        int64
	prev, next *lruNode
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{capacity: capacity, items: make(map[int64]*lruNode, capacity)}
}

// touch marks line as most recently used, inserting (and evicting the LRU
// line if full) when absent. It returns true on hit.
func (c *lruCache) touch(line int64) bool {
	if n, ok := c.items[line]; ok {
		c.moveToFront(n)
		return true
	}
	n := &lruNode{key: line}
	if len(c.items) >= c.capacity {
		evict := c.tail
		c.remove(evict)
		delete(c.items, evict.key)
	}
	c.items[line] = n
	c.pushFront(n)
	return false
}

func (c *lruCache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache) remove(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.remove(n)
	c.pushFront(n)
}

// len reports the number of resident lines (for tests).
func (c *lruCache) len() int { return len(c.items) }
