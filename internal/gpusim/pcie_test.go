package gpusim

import "testing"

func TestPCIeTransferCopiesData(t *testing.T) {
	d := NewDevice(DefaultConfig())
	p := d.PCIe()
	src := []float32{1, 2, 3, 4}
	dst := make([]float32, 4)
	p.Transfer(dst, src, true)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("transfer did not copy element %d", i)
		}
	}
}

func TestPCIeAccounting(t *testing.T) {
	d := NewDevice(DefaultConfig())
	p := d.PCIe()
	p.TransferBytes(1<<20, true)
	if p.BytesMoved() != 1<<20 {
		t.Errorf("bytes moved %d", p.BytesMoved())
	}
	if p.Transfers() != 1 {
		t.Errorf("transfer count %d", p.Transfers())
	}
	if p.ModeledTime() <= 0 {
		t.Error("modeled time not accrued")
	}
}

func TestPCIeBandwidthScaling(t *testing.T) {
	d := NewDevice(DefaultConfig())
	p := d.PCIe()
	small := p.TransferBytes(1<<10, true)
	large := p.TransferBytes(1<<24, true)
	if large <= small {
		t.Error("larger transfer should take longer")
	}
}

func TestPCIePageablePenaltyExact(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDevice(cfg)
	p := d.PCIe()
	pinned := p.account(1<<20, true)
	pageable := p.account(1<<20, false)
	ratio := float64(pageable) / float64(pinned)
	// The penalty should be close to the configured overhead factor.
	if ratio < cfg.PageableOverhead*0.9 || ratio > cfg.PageableOverhead*1.1 {
		t.Errorf("pageable/pinned ratio %.2f not near %.2f", ratio, cfg.PageableOverhead)
	}
}

func TestKernelTimeModelMemoryBound(t *testing.T) {
	d := NewDevice(DefaultConfig())
	m := DefaultKernelTimeModel()
	// A kernel with huge cache traffic but few FLOPs is memory-bound.
	memBound := d.Estimate(m, Counters{FLOPs: 1, CacheBytes: 1 << 30, Launches: 1})
	compBound := d.Estimate(m, Counters{FLOPs: 1 << 30, CacheBytes: 1, Launches: 1})
	if memBound <= 0 || compBound <= 0 {
		t.Error("estimates should be positive")
	}
}
