// Package graph provides the three array-based sparse graph storage formats
// the paper builds on (§II-A, Fig 1): coordinate list (COO), compressed
// sparse row (CSR) and compressed sparse column (CSC), plus the format
// translations whose cost the Graph-approach pays (Fig 5c), degree
// statistics (Fig 8) and the embedding table (Fig 1c).
//
// Conventions: an edge (src → dst) contributes src's embedding to dst's
// aggregation. CSR is indexed by dst VID and lists src VIDs per dst (this is
// the layout forward propagation wants); CSC is indexed by src VID and lists
// dst VIDs per src (the layout backward propagation wants).
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// VID is a vertex identifier, either in the full graph (original VID) or in
// a sampled subgraph (new VID, allocated from zero by the sampling hash
// table).
type VID = int32

// COO is the edge-centric coordinate-list format: parallel src/dst arrays
// indexed by edge ID.
type COO struct {
	NumVertices int
	Src, Dst    []VID
}

// CSR is the vertex-centric compressed-sparse-row format used by forward
// propagation: for each dst vertex d, Srcs[Ptr[d]:Ptr[d+1]] are its in-edge
// neighbors (the src VIDs whose embeddings aggregate into d).
type CSR struct {
	NumVertices int
	Ptr         []int32 // len NumVertices+1, indexed by dst VID
	Srcs        []VID
}

// CSC is the vertex-centric compressed-sparse-column format used by
// backward propagation: for each src vertex s, Dsts[Ptr[s]:Ptr[s+1]] are
// the dst VIDs that s's embedding flowed into.
type CSC struct {
	NumVertices int
	Ptr         []int32 // len NumVertices+1, indexed by src VID
	Dsts        []VID
}

// NumEdges returns the edge count of the COO graph.
func (g *COO) NumEdges() int { return len(g.Src) }

// NumEdges returns the edge count of the CSR graph.
func (g *CSR) NumEdges() int { return len(g.Srcs) }

// NumEdges returns the edge count of the CSC graph.
func (g *CSC) NumEdges() int { return len(g.Dsts) }

// Neighbors returns the src VIDs of dst vertex d.
func (g *CSR) Neighbors(d VID) []VID { return g.Srcs[g.Ptr[d]:g.Ptr[d+1]] }

// Neighbors returns the dst VIDs of src vertex s.
func (g *CSC) Neighbors(s VID) []VID { return g.Dsts[g.Ptr[s]:g.Ptr[s+1]] }

// Degree returns the in-degree of dst vertex d.
func (g *CSR) Degree(d VID) int { return int(g.Ptr[d+1] - g.Ptr[d]) }

// Validate checks structural invariants and returns a descriptive error for
// the first violation found.
func (g *COO) Validate() error {
	if len(g.Src) != len(g.Dst) {
		return fmt.Errorf("graph: COO src/dst length mismatch %d vs %d", len(g.Src), len(g.Dst))
	}
	for i := range g.Src {
		if g.Src[i] < 0 || int(g.Src[i]) >= g.NumVertices {
			return fmt.Errorf("graph: COO edge %d src %d out of range [0,%d)", i, g.Src[i], g.NumVertices)
		}
		if g.Dst[i] < 0 || int(g.Dst[i]) >= g.NumVertices {
			return fmt.Errorf("graph: COO edge %d dst %d out of range [0,%d)", i, g.Dst[i], g.NumVertices)
		}
	}
	return nil
}

// Validate checks structural invariants of the CSR graph.
func (g *CSR) Validate() error {
	if len(g.Ptr) != g.NumVertices+1 {
		return fmt.Errorf("graph: CSR ptr length %d != vertices+1 %d", len(g.Ptr), g.NumVertices+1)
	}
	if g.Ptr[0] != 0 || int(g.Ptr[g.NumVertices]) != len(g.Srcs) {
		return errors.New("graph: CSR ptr endpoints invalid")
	}
	for i := 0; i < g.NumVertices; i++ {
		if g.Ptr[i] > g.Ptr[i+1] {
			return fmt.Errorf("graph: CSR ptr not monotone at %d", i)
		}
	}
	for i, s := range g.Srcs {
		if s < 0 || int(s) >= g.NumVertices {
			return fmt.Errorf("graph: CSR src %d at %d out of range", s, i)
		}
	}
	return nil
}

// Validate checks structural invariants of the CSC graph.
func (g *CSC) Validate() error {
	if len(g.Ptr) != g.NumVertices+1 {
		return fmt.Errorf("graph: CSC ptr length %d != vertices+1 %d", len(g.Ptr), g.NumVertices+1)
	}
	if g.Ptr[0] != 0 || int(g.Ptr[g.NumVertices]) != len(g.Dsts) {
		return errors.New("graph: CSC ptr endpoints invalid")
	}
	for i := 0; i < g.NumVertices; i++ {
		if g.Ptr[i] > g.Ptr[i+1] {
			return fmt.Errorf("graph: CSC ptr not monotone at %d", i)
		}
	}
	for i, d := range g.Dsts {
		if d < 0 || int(d) >= g.NumVertices {
			return fmt.Errorf("graph: CSC dst %d at %d out of range", d, i)
		}
	}
	return nil
}

// TranslationStats records the work a COO→CSR/CSC translation performed, so
// the Graph-approach baselines can charge its true cost (Fig 5c: sorting the
// edge arrays plus building the pointer array, with extra GPU buffers).
type TranslationStats struct {
	EdgesSorted     int
	BufferBytes     int64 // scratch allocated for the sort + pointer build
	PointerBuilt    int
	ComparisonsUsed int64 // upper-bound estimate n·log2(n) charged by sort
}

// COOToCSR translates an edge-centric COO graph into dst-indexed CSR by
// sorting edges by dst VID and converting the dst array into a pointer
// array. It reproduces the translation the Graph-approach performs before
// every SpMM (paper Fig 5c, top) and reports the work done.
func COOToCSR(g *COO) (*CSR, TranslationStats) {
	n := g.NumVertices
	m := len(g.Src)
	stats := TranslationStats{
		EdgesSorted:  m,
		PointerBuilt: n + 1,
		// Two int32 scratch arrays for the sorted copy (src and dst).
		BufferBytes:     int64(m) * 8,
		ComparisonsUsed: sortCost(m),
	}
	csr := &CSR{NumVertices: n, Ptr: make([]int32, n+1), Srcs: make([]VID, m)}
	// Counting sort by dst: stable, O(V+E), matches the GPU radix path.
	// Large graphs sort chunk-parallel on the worker pool (parsort.go).
	countingSortByKey(g.Dst, g.Src, csr.Srcs, n, csr.Ptr)
	stats.BufferBytes += int64(n) * 4 // cursor array
	return csr, stats
}

// COOToCSC translates COO into src-indexed CSC (the BWP layout) by the same
// counting-sort construction keyed on src.
func COOToCSC(g *COO) (*CSC, TranslationStats) {
	n := g.NumVertices
	m := len(g.Src)
	stats := TranslationStats{
		EdgesSorted:     m,
		PointerBuilt:    n + 1,
		BufferBytes:     int64(m)*8 + int64(n)*4,
		ComparisonsUsed: sortCost(m),
	}
	csc := &CSC{NumVertices: n, Ptr: make([]int32, n+1), Dsts: make([]VID, m)}
	countingSortByKey(g.Src, g.Dst, csc.Dsts, n, csc.Ptr)
	return csc, stats
}

// CSRToCOO expands a CSR graph back to edge list form (dst-major edge
// order). ROC-style frameworks pay this before SDDMM.
func CSRToCOO(g *CSR) *COO {
	coo := &COO{NumVertices: g.NumVertices, Src: make([]VID, g.NumEdges()), Dst: make([]VID, g.NumEdges())}
	e := 0
	for d := 0; d < g.NumVertices; d++ {
		for _, s := range g.Neighbors(VID(d)) {
			coo.Src[e] = s
			coo.Dst[e] = VID(d)
			e++
		}
	}
	return coo
}

// CSRToCSC converts the FWP layout directly to the BWP layout (GraphTensor
// prepares both during preprocessing so training never translates on the
// critical path).
func CSRToCSC(g *CSR) *CSC {
	n := g.NumVertices
	csc := &CSC{NumVertices: n, Ptr: make([]int32, n+1), Dsts: make([]VID, g.NumEdges())}
	for _, s := range g.Srcs {
		csc.Ptr[s+1]++
	}
	for i := 0; i < n; i++ {
		csc.Ptr[i+1] += csc.Ptr[i]
	}
	cursor := make([]int32, n)
	copy(cursor, csc.Ptr[:n])
	for d := 0; d < n; d++ {
		for _, s := range g.Neighbors(VID(d)) {
			csc.Dsts[cursor[s]] = VID(d)
			cursor[s]++
		}
	}
	return csc
}

// CSCToCSR is the inverse of CSRToCSC.
func CSCToCSR(g *CSC) *CSR {
	n := g.NumVertices
	csr := &CSR{NumVertices: n, Ptr: make([]int32, n+1), Srcs: make([]VID, g.NumEdges())}
	for _, d := range g.Dsts {
		csr.Ptr[d+1]++
	}
	for i := 0; i < n; i++ {
		csr.Ptr[i+1] += csr.Ptr[i]
	}
	cursor := make([]int32, n)
	copy(cursor, csr.Ptr[:n])
	for s := 0; s < n; s++ {
		for _, d := range g.Neighbors(VID(s)) {
			csr.Srcs[cursor[d]] = VID(s)
			cursor[d]++
		}
	}
	return csr
}

// sortCost returns the n·log2(n) comparison bound charged to a sort of n
// edges, the figure the translation stats report.
func sortCost(n int) int64 {
	if n <= 1 {
		return 0
	}
	return int64(float64(n) * math.Log2(float64(n)))
}

// DegreeStats summarizes the in-degree distribution of a graph (Fig 8).
type DegreeStats struct {
	Mean   float64
	StdDev float64
	Max    int
	// CDF maps degree -> fraction of vertices with degree <= that value,
	// sampled at the degrees present in the graph (sorted ascending).
	CDFDegrees []int
	CDFValues  []float64
}

// Degrees returns the in-degree of every vertex of the CSR graph.
func (g *CSR) Degrees() []int {
	out := make([]int, g.NumVertices)
	for d := 0; d < g.NumVertices; d++ {
		out[d] = g.Degree(VID(d))
	}
	return out
}

// ComputeDegreeStats computes mean, standard deviation, max and the CDF of
// the given per-vertex degree slice.
func ComputeDegreeStats(degrees []int) DegreeStats {
	if len(degrees) == 0 {
		return DegreeStats{}
	}
	var sum, sumSq float64
	maxDeg := 0
	for _, d := range degrees {
		sum += float64(d)
		sumSq += float64(d) * float64(d)
		if d > maxDeg {
			maxDeg = d
		}
	}
	n := float64(len(degrees))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	sorted := make([]int, len(degrees))
	copy(sorted, degrees)
	sort.Ints(sorted)
	var cdfD []int
	var cdfV []float64
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		cdfD = append(cdfD, sorted[i])
		cdfV = append(cdfV, float64(j)/n)
		i = j
	}
	return DegreeStats{Mean: mean, StdDev: math.Sqrt(variance), Max: maxDeg, CDFDegrees: cdfD, CDFValues: cdfV}
}
