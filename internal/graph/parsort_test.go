package graph

import (
	"runtime"
	"testing"
)

// bigBCOO builds a deterministic pseudo-random bipartite edge list big
// enough to cross the parallel-sort threshold.
func bigBCOO(m, nDst, nSrc int) *BCOO {
	g := &BCOO{NumDst: nDst, NumSrc: nSrc, Src: make([]VID, m), Dst: make([]VID, m)}
	state := uint64(0x9e3779b97f4a7c15)
	next := func(n int) VID {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return VID(state % uint64(n))
	}
	for i := 0; i < m; i++ {
		g.Src[i] = next(nSrc)
		g.Dst[i] = next(nDst)
	}
	return g
}

// TestParallelTranslationMatchesSerial: the chunk-parallel counting sort
// must produce byte-identical CSR/CSC structures to the serial path (the
// stability of the sort is what the identity rides on).
func TestParallelTranslationMatchesSerial(t *testing.T) {
	g := bigBCOO(3*parSortMinEdges, 700, 1100)

	prev := runtime.GOMAXPROCS(1)
	serialCSR, _ := BCOOToBCSR(g)
	serialCSC, _ := BCOOToBCSC(g)
	serialDirect := BCSRToBCSC(serialCSR)
	runtime.GOMAXPROCS(8)
	parCSR, _ := BCOOToBCSR(g)
	parCSC, _ := BCOOToBCSC(g)
	parDirect := BCSRToBCSC(parCSR)
	runtime.GOMAXPROCS(prev)

	requireSameI32(t, "CSR.Ptr", serialCSR.Ptr, parCSR.Ptr)
	requireSameI32(t, "CSR.Srcs", serialCSR.Srcs, parCSR.Srcs)
	requireSameI32(t, "CSC.Ptr", serialCSC.Ptr, parCSC.Ptr)
	requireSameI32(t, "CSC.Dsts", serialCSC.Dsts, parCSC.Dsts)
	requireSameI32(t, "BCSRToBCSC.Ptr", serialDirect.Ptr, parDirect.Ptr)
	requireSameI32(t, "BCSRToBCSC.Dsts", serialDirect.Dsts, parDirect.Dsts)
	if err := parCSR.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := parCSC.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelUnipartiteTranslationMatchesSerial covers the unipartite
// COO→CSR/CSC pair with the same bitwise requirement.
func TestParallelUnipartiteTranslationMatchesSerial(t *testing.T) {
	b := bigBCOO(2*parSortMinEdges, 900, 900)
	g := &COO{NumVertices: 900, Src: b.Src, Dst: b.Dst}

	prev := runtime.GOMAXPROCS(1)
	serialCSR, _ := COOToCSR(g)
	serialCSC, _ := COOToCSC(g)
	runtime.GOMAXPROCS(8)
	parCSR, _ := COOToCSR(g)
	parCSC, _ := COOToCSC(g)
	runtime.GOMAXPROCS(prev)

	requireSameI32(t, "CSR.Ptr", serialCSR.Ptr, parCSR.Ptr)
	requireSameI32(t, "CSR.Srcs", serialCSR.Srcs, parCSR.Srcs)
	requireSameI32(t, "CSC.Ptr", serialCSC.Ptr, parCSC.Ptr)
	requireSameI32(t, "CSC.Dsts", serialCSC.Dsts, parCSC.Dsts)
}

func requireSameI32(t *testing.T, name string, a, b []int32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: element %d = %d, want %d", name, i, b[i], a[i])
		}
	}
}
