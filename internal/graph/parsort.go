package graph

import (
	"sync"

	"graphtensor/internal/sched"
)

// Parallel, pooled counting sort for the COO→CSR/CSC format translations.
//
// Every translation in this package is a stable counting sort of the edge
// payload by a key array (dst VIDs for CSR, src VIDs for CSC). Above
// parSortMinEdges the sort runs in three phases on the shared worker pool:
// per-chunk key histograms, a serial cursor build (each chunk's private
// write cursor per key = the global prefix plus the counts of earlier
// chunks), and a parallel per-chunk scatter. Because every edge's output
// position is fully determined by (keys, chunk boundaries) — both fixed
// before any worker runs — the result is bitwise identical to the serial
// sort at any worker count. The histogram/cursor scratch is pooled, so
// steady-state translations allocate only their output arrays.

// parSortMinEdges is the edge count below which the serial counting sort
// wins (dispatch + histogram merge overhead dominates under it).
const parSortMinEdges = 1 << 14

// parSortMaxChunks bounds the scratch to parSortMaxChunks×numKeys int32s.
const parSortMaxChunks = 8

var i32Pool sync.Pool

// geti32 returns a zeroed pooled []int32 of length n.
func geti32(n int) *[]int32 {
	v := geti32Dirty(n)
	clear(*v)
	return v
}

// geti32Dirty is geti32 without the zeroing pass, for scratch the caller
// fully overwrites (cursor copies, per-edge key expansion).
func geti32Dirty(n int) *[]int32 {
	v, _ := i32Pool.Get().(*[]int32)
	if v == nil {
		s := make([]int32, n)
		return &s
	}
	s := *v
	if cap(s) < n {
		s = make([]int32, n)
	} else {
		s = s[:n]
	}
	*v = s
	return v
}

func puti32(v *[]int32) { i32Pool.Put(v) }

// GetVIDs returns a pooled []VID of length n with undefined contents (the
// caller fully overwrites it) — the staging discipline for transient edge
// arrays like induced-subgraph COO construction. Return it with PutVIDs.
func GetVIDs(n int) *[]VID { return geti32Dirty(n) }

// PutVIDs returns a slice obtained from GetVIDs to the pool. The caller
// must not use it (or any alias) afterwards.
func PutVIDs(v *[]VID) { puti32(v) }

// parSort is the dispatch context of one parallel counting sort.
type parSort struct {
	keys, vals, out []VID
	counts          []int32
	nk, chunk       int
}

var parSortPool = sync.Pool{New: func() any { return new(parSort) }}

func parSortHist(ctx any, lo, hi int) {
	s := ctx.(*parSort)
	base := lo / s.chunk * s.nk
	counts := s.counts[base : base+s.nk]
	for _, k := range s.keys[lo:hi] {
		counts[k]++
	}
}

func parSortScatter(ctx any, lo, hi int) {
	s := ctx.(*parSort)
	base := lo / s.chunk * s.nk
	cur := s.counts[base : base+s.nk]
	for e := lo; e < hi; e++ {
		k := s.keys[e]
		s.out[cur[k]] = s.vals[e]
		cur[k]++
	}
}

// countingSortByKey stable-sorts vals by keys (values in [0, nk)) into out
// (len(keys)) and fills ptr (len nk+1, prefix-summed key histogram). It
// parallelizes over edge chunks when the sort is large enough and the
// process has spare parallelism, falling back to the serial construction
// otherwise; both paths produce identical bytes.
func countingSortByKey(keys, vals, out []VID, nk int, ptr []int32) {
	m := len(keys)
	workers := sched.Workers(m)
	if m < parSortMinEdges || workers <= 1 {
		for _, k := range keys {
			ptr[k+1]++
		}
		for i := 0; i < nk; i++ {
			ptr[i+1] += ptr[i]
		}
		curp := geti32Dirty(nk)
		cursor := *curp
		copy(cursor, ptr[:nk])
		for e, k := range keys {
			out[cursor[k]] = vals[e]
			cursor[k]++
		}
		puti32(curp)
		return
	}

	nChunks := workers
	if nChunks > parSortMaxChunks {
		nChunks = parSortMaxChunks
	}
	chunk := (m + nChunks - 1) / nChunks
	nChunks = (m + chunk - 1) / chunk

	countp := geti32(nChunks * nk)
	s := parSortPool.Get().(*parSort)
	s.keys, s.vals, s.out, s.counts, s.nk, s.chunk = keys, vals, out, *countp, nk, chunk

	sched.RunChunk(m, chunk, workers, s, parSortHist)

	// Global prefix + per-chunk cursors, in one pass per key: chunk c's
	// first write position for key d is ptr[d] plus everything chunks
	// before it counted for d.
	counts := s.counts
	for d := 0; d < nk; d++ {
		total := int32(0)
		for c := 0; c < nChunks; c++ {
			total += counts[c*nk+d]
		}
		ptr[d+1] = ptr[d] + total
		running := ptr[d]
		for c := 0; c < nChunks; c++ {
			t := counts[c*nk+d]
			counts[c*nk+d] = running
			running += t
		}
	}

	sched.RunChunk(m, chunk, workers, s, parSortScatter)

	*s = parSort{}
	parSortPool.Put(s)
	puti32(countp)
}
