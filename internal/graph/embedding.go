package graph

import (
	"fmt"

	"graphtensor/internal/tensor"
)

// EmbeddingTable holds per-vertex dense feature vectors in contiguous
// memory (paper Fig 1c). Row v is the embedding of vertex v. The same type
// represents both the global host-side table (indexed by original VID) and
// the small per-batch table the preprocessing stage assembles (indexed by
// the new VIDs the sampling hash table allocated).
type EmbeddingTable struct {
	Dim  int
	Data *tensor.Matrix // NumVertices × Dim
}

// NewEmbeddingTable allocates a zeroed table for n vertices of the given
// feature dimension.
func NewEmbeddingTable(n, dim int) *EmbeddingTable {
	return &EmbeddingTable{Dim: dim, Data: tensor.New(n, dim)}
}

// NewEmbeddingTableArena allocates the table storage from a batch-scoped
// arena, so per-batch embedding tables are recycled instead of reallocated
// (the prefetch-ring discipline). A nil arena falls back to a plain
// allocation.
func NewEmbeddingTableArena(a *tensor.Arena, n, dim int) *EmbeddingTable {
	if a == nil {
		return NewEmbeddingTable(n, dim)
	}
	return &EmbeddingTable{Dim: dim, Data: a.Get(n, dim)}
}

// RandomEmbeddingTableForTest fills a table with a simple deterministic
// pattern (row v, column c = v + c/100) so tests can construct embeddings
// without importing the tensor RNG. It is exported for use by sibling
// package tests.
func RandomEmbeddingTableForTest(n, dim int) *EmbeddingTable {
	t := NewEmbeddingTable(n, dim)
	for v := 0; v < n; v++ {
		row := t.Data.Row(v)
		for c := range row {
			row[c] = float32(v) + float32(c)/100
		}
	}
	return t
}

// RandomEmbeddingTable fills a table with deterministic uniform features,
// mirroring the paper's synthetic embeddings for datasets that ship none
// ("we create the embeddings whose dimensionality is the same as what the
// industry uses", §VI).
func RandomEmbeddingTable(n, dim int, rng *tensor.RNG) *EmbeddingTable {
	t := NewEmbeddingTable(n, dim)
	for i := range t.Data.Data {
		t.Data.Data[i] = rng.Float32()*2 - 1
	}
	return t
}

// NumVertices returns the number of rows in the table.
func (t *EmbeddingTable) NumVertices() int { return t.Data.Rows }

// Row returns the embedding of vertex v, aliasing table storage.
func (t *EmbeddingTable) Row(v VID) []float32 {
	if v < 0 || int(v) >= t.Data.Rows {
		panic(fmt.Sprintf("graph: embedding row %d out of range [0,%d)", v, t.Data.Rows))
	}
	return t.Data.Row(int(v))
}

// Bytes reports the payload size of the table.
func (t *EmbeddingTable) Bytes() int64 { return t.Data.Bytes() }

// Gather builds a new table whose row i is the embedding of vids[i]. This
// is the embedding-lookup (K) primitive of GNN preprocessing (§II-B).
func (t *EmbeddingTable) Gather(vids []VID) *EmbeddingTable {
	out := NewEmbeddingTable(len(vids), t.Dim)
	for i, v := range vids {
		copy(out.Data.Row(i), t.Row(v))
	}
	return out
}

// GatherInto copies rows vids[lo:hi] into dst starting at row lo. It lets
// the pipelined scheduler fill one pinned buffer from several goroutines
// without overlap.
func (t *EmbeddingTable) GatherInto(dst *EmbeddingTable, vids []VID, lo, hi int) {
	for i := lo; i < hi; i++ {
		copy(dst.Data.Row(i), t.Row(vids[i]))
	}
}
