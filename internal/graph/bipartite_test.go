package graph

import (
	"sort"
	"testing"
	"testing/quick"
)

func randomBCOO(seed int64, nDst, nSrc, maxDeg int) *BCOO {
	r := uint64(seed)*2862933555777941757 + 101
	next := func(mod int) int {
		r = r*6364136223846793005 + 1442695040888963407
		return int((r >> 33) % uint64(mod))
	}
	coo := &BCOO{NumDst: nDst, NumSrc: nSrc}
	for d := 0; d < nDst; d++ {
		deg := 1 + next(maxDeg)
		for i := 0; i < deg; i++ {
			coo.Src = append(coo.Src, VID(next(nSrc)))
			coo.Dst = append(coo.Dst, VID(d))
		}
	}
	return coo
}

func TestBCOOToBCSRValid(t *testing.T) {
	coo := randomBCOO(1, 20, 35, 5)
	csr, stats := BCOOToBCSR(coo)
	if err := csr.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.EdgesSorted != coo.NumEdges() {
		t.Errorf("stats edges %d != %d", stats.EdgesSorted, coo.NumEdges())
	}
	if csr.NumEdges() != coo.NumEdges() {
		t.Errorf("edge count changed")
	}
}

func TestBCSRToBCSCRoundTrip(t *testing.T) {
	coo := randomBCOO(2, 15, 25, 4)
	csr, _ := BCOOToBCSR(coo)
	csc := BCSRToBCSC(csr)
	if err := csc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Total edges preserved and endpoint multisets consistent.
	if csc.NumEdges() != csr.NumEdges() {
		t.Fatalf("csc edges %d != %d", csc.NumEdges(), csr.NumEdges())
	}
	// Reconstruct src->dst from CSC and compare against CSR's dst->src.
	fromCSR := map[[2]VID]int{}
	for d := 0; d < csr.NumDst; d++ {
		for _, s := range csr.Neighbors(VID(d)) {
			fromCSR[[2]VID{s, VID(d)}]++
		}
	}
	for s := 0; s < csc.NumSrc; s++ {
		for _, d := range csc.Neighbors(VID(s)) {
			fromCSR[[2]VID{VID(s), d}]--
		}
	}
	for k, v := range fromCSR {
		if v != 0 {
			t.Fatalf("edge %v imbalance %d", k, v)
		}
	}
}

func TestBCOOToBCSCMatchesBCOOToBCSRThenTranspose(t *testing.T) {
	coo := randomBCOO(3, 12, 20, 4)
	csc1, _ := BCOOToBCSC(coo)
	csr, _ := BCOOToBCSR(coo)
	csc2 := BCSRToBCSC(csr)
	neigh := func(c *BCSC, s int) []VID { return sortVID(c.Neighbors(VID(s))) }
	for s := 0; s < coo.NumSrc; s++ {
		a, b := neigh(csc1, s), neigh(csc2, s)
		if len(a) != len(b) {
			t.Fatalf("src %d: %d vs %d out-neighbors", s, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("src %d neighbor %d mismatch", s, i)
			}
		}
	}
}

func sortVID(v []VID) []VID {
	out := append([]VID(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestBCSRToBCOORoundTrip(t *testing.T) {
	coo := randomBCOO(4, 10, 18, 3)
	csr, _ := BCOOToBCSR(coo)
	back, _ := BCOOToBCSR(BCSRToBCOO(csr))
	for d := 0; d < csr.NumDst; d++ {
		if csr.Degree(VID(d)) != back.Degree(VID(d)) {
			t.Fatalf("dst %d degree changed on round trip", d)
		}
	}
}

func TestBipartiteValidateRejectsBadSrc(t *testing.T) {
	bad := &BCSR{NumDst: 1, NumSrc: 2, Ptr: []int32{0, 1}, Srcs: []VID{5}}
	if err := bad.Validate(); err == nil {
		t.Error("expected out-of-range src error")
	}
}

// Property: round-tripping BCOO -> BCSR -> BCOO preserves the edge multiset.
func TestQuickBipartiteRoundTrip(t *testing.T) {
	f := func(seed int64, nDstRaw, nSrcRaw, degRaw uint8) bool {
		nDst := 1 + int(nDstRaw)%25
		nSrc := 1 + int(nSrcRaw)%25
		deg := 1 + int(degRaw)%5
		coo := randomBCOO(seed, nDst, nSrc, deg)
		csr, _ := BCOOToBCSR(coo)
		if csr.Validate() != nil {
			return false
		}
		return csr.NumEdges() == coo.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
