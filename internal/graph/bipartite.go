package graph

import "fmt"

// The sampled per-layer subgraphs of a GNN are bipartite: a small set of
// dst vertices aggregates from a (super)set of src vertices (§II-B). The
// B-prefixed types below are the bipartite analogues of COO/CSR/CSC that
// every GNN kernel in this repo consumes. Src and dst VIDs are "new" VIDs
// allocated by the sampling hash table, so they index the per-batch
// embedding table directly.

// BCOO is a bipartite edge list (the Graph-approach's initial format).
type BCOO struct {
	NumDst, NumSrc int
	Src, Dst       []VID
}

// BCSR lists, per dst vertex, the src vertices whose embeddings aggregate
// into it. This is GraphTensor's one true format for FWP (§IV-B).
type BCSR struct {
	NumDst, NumSrc int
	Ptr            []int32 // len NumDst+1
	Srcs           []VID   // values in [0, NumSrc)
}

// BCSC lists, per src vertex, the dst vertices it contributed to — the
// layout backward propagation traverses (§II-A, Fig 3b).
type BCSC struct {
	NumDst, NumSrc int
	Ptr            []int32 // len NumSrc+1
	Dsts           []VID   // values in [0, NumDst)
}

// NumEdges returns the edge count.
func (g *BCOO) NumEdges() int { return len(g.Src) }

// NumEdges returns the edge count.
func (g *BCSR) NumEdges() int { return len(g.Srcs) }

// NumEdges returns the edge count.
func (g *BCSC) NumEdges() int { return len(g.Dsts) }

// Neighbors returns the src VIDs aggregating into dst d.
func (g *BCSR) Neighbors(d VID) []VID { return g.Srcs[g.Ptr[d]:g.Ptr[d+1]] }

// Neighbors returns the dst VIDs src s contributes to.
func (g *BCSC) Neighbors(s VID) []VID { return g.Dsts[g.Ptr[s]:g.Ptr[s+1]] }

// Degree returns the in-degree of dst d.
func (g *BCSR) Degree(d VID) int { return int(g.Ptr[d+1] - g.Ptr[d]) }

// Validate checks structural invariants.
func (g *BCOO) Validate() error {
	if len(g.Src) != len(g.Dst) {
		return fmt.Errorf("graph: BCOO src/dst length mismatch %d vs %d", len(g.Src), len(g.Dst))
	}
	for i := range g.Src {
		if g.Src[i] < 0 || int(g.Src[i]) >= g.NumSrc {
			return fmt.Errorf("graph: BCOO edge %d src %d out of range [0,%d)", i, g.Src[i], g.NumSrc)
		}
		if g.Dst[i] < 0 || int(g.Dst[i]) >= g.NumDst {
			return fmt.Errorf("graph: BCOO edge %d dst %d out of range [0,%d)", i, g.Dst[i], g.NumDst)
		}
	}
	return nil
}

// Validate checks structural invariants.
func (g *BCSR) Validate() error {
	if len(g.Ptr) != g.NumDst+1 {
		return fmt.Errorf("graph: BCSR ptr length %d != dsts+1 %d", len(g.Ptr), g.NumDst+1)
	}
	if g.Ptr[0] != 0 || int(g.Ptr[g.NumDst]) != len(g.Srcs) {
		return fmt.Errorf("graph: BCSR ptr endpoints invalid")
	}
	for i := 0; i < g.NumDst; i++ {
		if g.Ptr[i] > g.Ptr[i+1] {
			return fmt.Errorf("graph: BCSR ptr not monotone at %d", i)
		}
	}
	for i, s := range g.Srcs {
		if s < 0 || int(s) >= g.NumSrc {
			return fmt.Errorf("graph: BCSR src %d at %d out of range [0,%d)", s, i, g.NumSrc)
		}
	}
	return nil
}

// Validate checks structural invariants.
func (g *BCSC) Validate() error {
	if len(g.Ptr) != g.NumSrc+1 {
		return fmt.Errorf("graph: BCSC ptr length %d != srcs+1 %d", len(g.Ptr), g.NumSrc+1)
	}
	if g.Ptr[0] != 0 || int(g.Ptr[g.NumSrc]) != len(g.Dsts) {
		return fmt.Errorf("graph: BCSC ptr endpoints invalid")
	}
	for i := 0; i < g.NumSrc; i++ {
		if g.Ptr[i] > g.Ptr[i+1] {
			return fmt.Errorf("graph: BCSC ptr not monotone at %d", i)
		}
	}
	for i, d := range g.Dsts {
		if d < 0 || int(d) >= g.NumDst {
			return fmt.Errorf("graph: BCSC dst %d at %d out of range [0,%d)", d, i, g.NumDst)
		}
	}
	return nil
}

// GrowVIDs returns s resized to length n, reusing its capacity when it
// suffices. The contents beyond what the caller writes are undefined — this
// is the capacity-reuse primitive of the producer structure pool, where
// every slice is fully (re)written before being read. VID is an alias of
// int32, so the same function serves pointer/label arrays ([]int32).
func GrowVIDs(s []VID, n int) []VID {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]VID, n)
}

// BCOOToBCSR translates the edge list into the dst-indexed format via a
// stable counting sort, reporting the translation work (Fig 5c top). Large
// translations run chunk-parallel on the shared worker pool with pooled
// scratch; the output is bitwise identical either way.
func BCOOToBCSR(g *BCOO) (*BCSR, TranslationStats) {
	out := &BCSR{}
	stats := BCOOToBCSRInto(g, out)
	return out, stats
}

// BCOOToBCSRInto is BCOOToBCSR writing into out, reusing out's Ptr/Srcs
// capacity — the destination-passing form the slot structure pool recycles
// across batches. The result is bitwise identical to BCOOToBCSR.
func BCOOToBCSRInto(g *BCOO, out *BCSR) TranslationStats {
	m := g.NumEdges()
	stats := TranslationStats{
		EdgesSorted:     m,
		PointerBuilt:    g.NumDst + 1,
		BufferBytes:     int64(m)*8 + int64(g.NumDst)*4,
		ComparisonsUsed: sortCost(m),
	}
	out.NumDst, out.NumSrc = g.NumDst, g.NumSrc
	out.Ptr = GrowVIDs(out.Ptr, g.NumDst+1)
	clear(out.Ptr) // countingSortByKey accumulates into a zeroed histogram
	out.Srcs = GrowVIDs(out.Srcs, m)
	countingSortByKey(g.Dst, g.Src, out.Srcs, g.NumDst, out.Ptr)
	return stats
}

// BCOOToBCSC translates the edge list into the src-indexed BWP layout.
func BCOOToBCSC(g *BCOO) (*BCSC, TranslationStats) {
	m := g.NumEdges()
	stats := TranslationStats{
		EdgesSorted:     m,
		PointerBuilt:    g.NumSrc + 1,
		BufferBytes:     int64(m)*8 + int64(g.NumSrc)*4,
		ComparisonsUsed: sortCost(m),
	}
	out := &BCSC{NumDst: g.NumDst, NumSrc: g.NumSrc, Ptr: make([]int32, g.NumSrc+1), Dsts: make([]VID, m)}
	countingSortByKey(g.Src, g.Dst, out.Dsts, g.NumSrc, out.Ptr)
	return out, stats
}

// BCSRToBCOO expands back to an edge list in dst-major order.
func BCSRToBCOO(g *BCSR) *BCOO {
	out := &BCOO{}
	BCSRToBCOOInto(g, out)
	return out
}

// BCSRToBCOOInto is BCSRToBCOO writing into out, reusing its capacity.
func BCSRToBCOOInto(g *BCSR, out *BCOO) {
	m := g.NumEdges()
	out.NumDst, out.NumSrc = g.NumDst, g.NumSrc
	out.Src = GrowVIDs(out.Src, m)
	out.Dst = GrowVIDs(out.Dst, m)
	e := 0
	for d := 0; d < g.NumDst; d++ {
		for _, s := range g.Neighbors(VID(d)) {
			out.Src[e] = s
			out.Dst[e] = VID(d)
			e++
		}
	}
}

// BCSRToBCSC converts the FWP layout to the BWP layout directly, without
// passing through COO (GraphTensor does this during preprocessing, off the
// training critical path). The per-edge dst keys are expanded into pooled
// scratch so the conversion reuses the same (possibly parallel) stable
// counting sort as the COO translations.
func BCSRToBCSC(g *BCSR) *BCSC {
	out := &BCSC{}
	BCSRToBCSCInto(g, out)
	return out
}

// BCSRToBCSCInto is BCSRToBCSC writing into out, reusing its capacity; the
// result is bitwise identical to BCSRToBCSC.
func BCSRToBCSCInto(g *BCSR, out *BCSC) {
	m := g.NumEdges()
	out.NumDst, out.NumSrc = g.NumDst, g.NumSrc
	out.Ptr = GrowVIDs(out.Ptr, g.NumSrc+1)
	clear(out.Ptr)
	out.Dsts = GrowVIDs(out.Dsts, m)
	valp := geti32Dirty(m) // every entry is written below
	vals := *valp
	for d := 0; d < g.NumDst; d++ {
		seg := vals[g.Ptr[d]:g.Ptr[d+1]]
		for i := range seg {
			seg[i] = VID(d)
		}
	}
	countingSortByKey(g.Srcs, vals, out.Dsts, g.NumSrc, out.Ptr)
	puti32(valp)
}

// Bytes returns the device memory the structure occupies (index arrays).
func (g *BCOO) Bytes() int64 { return int64(len(g.Src)+len(g.Dst)) * 4 }

// Bytes returns the device memory the structure occupies (index arrays).
func (g *BCSR) Bytes() int64 { return int64(len(g.Ptr)+len(g.Srcs)) * 4 }

// Bytes returns the device memory the structure occupies (index arrays).
func (g *BCSC) Bytes() int64 { return int64(len(g.Ptr)+len(g.Dsts)) * 4 }
