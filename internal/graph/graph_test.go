package graph

import (
	"sort"
	"testing"
	"testing/quick"
)

// randomCOO builds a random simple-ish directed graph.
func randomCOO(seed int64, n, e int) *COO {
	r := uint64(seed)*2862933555777941757 + 3037000493
	next := func(mod int) int {
		r = r*6364136223846793005 + 1442695040888963407
		return int((r >> 33) % uint64(mod))
	}
	coo := &COO{NumVertices: n, Src: make([]VID, e), Dst: make([]VID, e)}
	for i := 0; i < e; i++ {
		coo.Src[i] = VID(next(n))
		coo.Dst[i] = VID(next(n))
	}
	return coo
}

func sortedNeighbors(vs []VID) []VID {
	out := append([]VID(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestCOOToCSRPreservesEdges(t *testing.T) {
	coo := randomCOO(1, 20, 60)
	csr, stats := COOToCSR(coo)
	if err := csr.Validate(); err != nil {
		t.Fatal(err)
	}
	if csr.NumEdges() != coo.NumEdges() {
		t.Fatalf("edge count %d != %d", csr.NumEdges(), coo.NumEdges())
	}
	if stats.EdgesSorted != coo.NumEdges() {
		t.Errorf("stats edges sorted %d", stats.EdgesSorted)
	}
	// Each dst's neighbor multiset must match.
	want := map[VID][]VID{}
	for i := range coo.Src {
		want[coo.Dst[i]] = append(want[coo.Dst[i]], coo.Src[i])
	}
	for d := 0; d < csr.NumVertices; d++ {
		got := sortedNeighbors(csr.Neighbors(VID(d)))
		w := sortedNeighbors(want[VID(d)])
		if len(got) != len(w) {
			t.Fatalf("dst %d degree %d != %d", d, len(got), len(w))
		}
		for i := range got {
			if got[i] != w[i] {
				t.Fatalf("dst %d neighbor mismatch", d)
			}
		}
	}
}

func TestCSRCSCRoundTrip(t *testing.T) {
	coo := randomCOO(2, 15, 40)
	csr, _ := COOToCSR(coo)
	back := CSCToCSR(CSRToCSC(csr))
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < csr.NumVertices; d++ {
		a := sortedNeighbors(csr.Neighbors(VID(d)))
		b := sortedNeighbors(back.Neighbors(VID(d)))
		if len(a) != len(b) {
			t.Fatalf("dst %d: %d vs %d", d, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("dst %d neighbor mismatch after CSR->CSC->CSR", d)
			}
		}
	}
}

func TestCOOToCSCMatchesTranspose(t *testing.T) {
	coo := randomCOO(3, 12, 30)
	csc, _ := COOToCSC(coo)
	if err := csc.Validate(); err != nil {
		t.Fatal(err)
	}
	want := map[VID][]VID{}
	for i := range coo.Src {
		want[coo.Src[i]] = append(want[coo.Src[i]], coo.Dst[i])
	}
	for s := 0; s < csc.NumVertices; s++ {
		got := sortedNeighbors(csc.Neighbors(VID(s)))
		w := sortedNeighbors(want[VID(s)])
		if len(got) != len(w) {
			t.Fatalf("src %d out-degree %d != %d", s, len(got), len(w))
		}
	}
}

func TestCSRToCOORoundTrip(t *testing.T) {
	coo := randomCOO(4, 10, 25)
	csr, _ := COOToCSR(coo)
	back, _ := COOToCSR(CSRToCOO(csr))
	for d := 0; d < csr.NumVertices; d++ {
		if csr.Degree(VID(d)) != back.Degree(VID(d)) {
			t.Fatalf("dst %d degree changed", d)
		}
	}
}

func TestDegreeStats(t *testing.T) {
	// A graph where vertex 0 has degree 3, others 0.
	coo := &COO{NumVertices: 4, Src: []VID{1, 2, 3}, Dst: []VID{0, 0, 0}}
	csr, _ := COOToCSR(coo)
	stats := ComputeDegreeStats(csr.Degrees())
	if stats.Max != 3 {
		t.Errorf("max degree %d want 3", stats.Max)
	}
	if stats.Mean != 0.75 {
		t.Errorf("mean %g want 0.75", stats.Mean)
	}
	if stats.CDFValues[len(stats.CDFValues)-1] != 1.0 {
		t.Error("CDF must end at 1.0")
	}
}

func TestValidateCatchesBadPtr(t *testing.T) {
	bad := &CSR{NumVertices: 2, Ptr: []int32{0, 5, 3}, Srcs: []VID{0, 1, 0}}
	if err := bad.Validate(); err == nil {
		t.Error("expected non-monotone ptr error")
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	bad := &COO{NumVertices: 2, Src: []VID{0, 5}, Dst: []VID{1, 0}}
	if err := bad.Validate(); err == nil {
		t.Error("expected out-of-range src error")
	}
}

// Property: COO->CSR preserves total edge count and per-dst degree sums for
// arbitrary random graphs.
func TestQuickCOOToCSR(t *testing.T) {
	f := func(seed int64, nRaw, eRaw uint8) bool {
		n := 1 + int(nRaw)%40
		e := int(eRaw) % 120
		coo := randomCOO(seed, n, e)
		csr, _ := COOToCSR(coo)
		if csr.Validate() != nil {
			return false
		}
		total := 0
		for d := 0; d < n; d++ {
			total += csr.Degree(VID(d))
		}
		return total == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEmbeddingGather(t *testing.T) {
	tbl := NewEmbeddingTable(5, 2)
	for v := 0; v < 5; v++ {
		tbl.Row(VID(v))[0] = float32(v)
		tbl.Row(VID(v))[1] = float32(v * 10)
	}
	sub := tbl.Gather([]VID{3, 1, 4})
	if sub.Row(0)[0] != 3 || sub.Row(1)[0] != 1 || sub.Row(2)[0] != 4 {
		t.Error("gather did not select the right rows")
	}
	if sub.Row(0)[1] != 30 {
		t.Error("gather lost second feature")
	}
}
