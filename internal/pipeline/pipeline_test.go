package pipeline

import (
	"sort"
	"testing"

	"graphtensor/internal/datasets"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/graph"
	"graphtensor/internal/metrics"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
)

func testDataset(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.Generate("products", datasets.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testDevice() *gpusim.Device {
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 8
	return gpusim.NewDevice(cfg)
}

// TestPipelinedEqualsSerial: the service-wide tensor scheduler must produce
// a batch semantically identical to the serial chain — same sampled
// vertex set, same per-layer graphs, same embeddings.
func TestPipelinedEqualsSerial(t *testing.T) {
	ds := testDataset(t)
	dsts := ds.BatchDsts(40, 7)
	samplerCfg := sampling.DefaultConfig()
	samplerCfg.Seed = 3

	serialBatch, err := Serial(ds.Graph, ds.Features, ds.Labels, testDevice(), dsts, samplerCfg, prep.FormatCSRCSC, true)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Sampler = samplerCfg
	cfg.ChunkVertices = 64
	sched := NewScheduler(ds.Graph, ds.Features, ds.Labels, testDevice(), cfg)
	pipeBatch, err := sched.Prepare(dsts, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Same sampled vertex set (ModeSplit is deterministic, so identical).
	so := serialBatch.Sample.Table.OrigVIDs()
	po := pipeBatch.Sample.Table.OrigVIDs()
	if len(so) != len(po) {
		t.Fatalf("sampled %d vs %d vertices", len(so), len(po))
	}
	for i := range so {
		if so[i] != po[i] {
			t.Fatalf("vertex order diverges at %d: %d vs %d", i, so[i], po[i])
		}
	}
	// Same per-layer graphs.
	if len(serialBatch.Layers) != len(pipeBatch.Layers) {
		t.Fatalf("layer count %d vs %d", len(serialBatch.Layers), len(pipeBatch.Layers))
	}
	for i := range serialBatch.Layers {
		a, b := serialBatch.Layers[i].CSR, pipeBatch.Layers[i].CSR
		if a.NumDst != b.NumDst || a.NumSrc != b.NumSrc || a.NumEdges() != b.NumEdges() {
			t.Fatalf("layer %d shape differs: (%d,%d,%d) vs (%d,%d,%d)",
				i, a.NumDst, a.NumSrc, a.NumEdges(), b.NumDst, b.NumSrc, b.NumEdges())
		}
		for d := 0; d < a.NumDst; d++ {
			an := append([]graph.VID(nil), a.Neighbors(graph.VID(d))...)
			bn := append([]graph.VID(nil), b.Neighbors(graph.VID(d))...)
			sortVIDs(an)
			sortVIDs(bn)
			for j := range an {
				if an[j] != bn[j] {
					t.Fatalf("layer %d dst %d neighbor %d: %d vs %d", i, d, j, an[j], bn[j])
				}
			}
		}
	}
	// Same embeddings.
	if diff := serialBatch.Embed.Data.MaxAbsDiff(pipeBatch.Embed.Data); diff != 0 {
		t.Errorf("embedding tables differ by %g", diff)
	}
	// Same labels.
	for i := range serialBatch.Labels {
		if serialBatch.Labels[i] != pipeBatch.Labels[i] {
			t.Fatalf("label %d differs", i)
		}
	}
}

func sortVIDs(v []graph.VID) { sort.Slice(v, func(i, j int) bool { return v[i] < v[j] }) }

func TestPipelineTimelineRecordsAllTasks(t *testing.T) {
	ds := testDataset(t)
	cfg := DefaultConfig()
	cfg.ChunkVertices = 32
	sched := NewScheduler(ds.Graph, ds.Features, ds.Labels, testDevice(), cfg)
	tl := metrics.NewTimeline()
	b, err := sched.Prepare(ds.BatchDsts(30, 1), tl)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	comp := tl.Completion()
	for _, task := range []string{"sample", "reindex", "lookup", "transfer"} {
		if _, ok := comp[task]; !ok {
			t.Errorf("timeline missing task %q", task)
		}
	}
}

func TestSchedulerOOMPropagates(t *testing.T) {
	ds := testDataset(t)
	cfg := gpusim.DefaultConfig()
	cfg.MemoryBytes = 64 // absurdly small: embedding alloc must fail
	dev := gpusim.NewDevice(cfg)
	sched := NewScheduler(ds.Graph, ds.Features, ds.Labels, dev, DefaultConfig())
	_, err := sched.Prepare(ds.BatchDsts(30, 1), nil)
	if err == nil {
		t.Fatal("expected OOM error")
	}
	if _, ok := err.(*gpusim.OOMError); !ok {
		t.Fatalf("expected *gpusim.OOMError, got %T: %v", err, err)
	}
}
