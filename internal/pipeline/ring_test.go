package pipeline

import (
	"errors"
	"fmt"
	"testing"

	"graphtensor/internal/graph"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
)

// ringFixture returns a prepare function over the test dataset plus the dst
// lists for n batches. The prepare draws from the slot's arena AND its
// structure pool, so ring tests exercise the full producer-recycling path.
func ringFixture(t *testing.T, n, batch int) (func([]graph.VID, *Slot) (*prep.Batch, error), [][]graph.VID) {
	t.Helper()
	ds := testDataset(t)
	dev := testDevice()
	samplerCfg := sampling.DefaultConfig()
	prepare := func(d []graph.VID, s *Slot) (*prep.Batch, error) {
		return SerialCfg(ds.Graph, ds.Features, ds.Labels, dev, d, samplerCfg,
			prep.Config{Format: prep.FormatCSR, Arena: s.TensorArena(), Structs: s.StructPool()})
	}
	lists := make([][]graph.VID, n)
	for i := range lists {
		lists[i] = ds.BatchDsts(batch, uint64(i+1))
	}
	return prepare, lists
}

// TestRingDeliversInOrder: batches come out of the ring in submission
// order, for both the background-producer and the synchronous depth-0 mode.
func TestRingDeliversInOrder(t *testing.T) {
	for _, depth := range []int{0, 1, 3} {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			prepare, lists := ringFixture(t, 6, 12)
			ring := NewRing(depth, lists, prepare)
			defer ring.Stop()
			for i := range lists {
				b, err := ring.Next()
				if err != nil {
					t.Fatal(err)
				}
				for j, d := range b.Sample.Batch {
					if d != lists[i][j] {
						t.Fatalf("batch %d delivered out of order (dst %d: %d != %d)", i, j, d, lists[i][j])
					}
				}
				b.Release()
			}
			if _, err := ring.Next(); !errors.Is(err, ErrRingDrained) {
				t.Fatalf("exhausted ring returned %v, want ErrRingDrained", err)
			}
		})
	}
}

// TestRingNoAliasingAcrossInFlightBatches: while multiple prepared batches
// are alive, their arena-backed embedding tables must occupy disjoint
// storage, and releasing one must not disturb another.
func TestRingNoAliasingAcrossInFlightBatches(t *testing.T) {
	prepare, lists := ringFixture(t, 4, 15)
	ring := NewRing(2, lists, prepare)
	defer ring.Stop()

	b1, err := ring.Next()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ring.Next()
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := b1.Embed.Data.Data, b2.Embed.Data.Data
	if len(d1) == 0 || len(d2) == 0 {
		t.Fatal("empty embedding storage")
	}
	if &d1[0] == &d2[0] {
		t.Fatal("in-flight batches alias the same embedding storage")
	}
	// Releasing b1 recycles its arena; b2's contents must be unaffected.
	sum := func(s []float32) float64 {
		var acc float64
		for _, v := range s {
			acc += float64(v)
		}
		return acc
	}
	before := sum(d2)
	b1.Release()
	b3, err := ring.Next()
	if err != nil {
		t.Fatal(err)
	}
	if after := sum(d2); after != before {
		t.Fatalf("releasing batch 1 disturbed batch 2's embeddings (%v != %v)", after, before)
	}
	b2.Release()
	b3.Release()
}

// TestRingStopMidStreamDrains: stopping with batches prepared but
// undelivered must release them and leave the ring drained; a batch already
// handed out stays usable.
func TestRingStopMidStreamDrains(t *testing.T) {
	prepare, lists := ringFixture(t, 6, 10)
	ring := NewRing(3, lists, prepare)
	b, err := ring.Next()
	if err != nil {
		t.Fatal(err)
	}
	ring.Stop()
	// The held batch survives Stop; its embedding storage must be readable.
	_ = b.Embed.Data.Data[0]
	b.Release()
	if _, err := ring.Next(); !errors.Is(err, ErrRingDrained) {
		t.Fatalf("stopped ring returned %v, want ErrRingDrained", err)
	}
	ring.Stop() // idempotent
}

// TestRingPropagatesPrepareError: a failing prepare surfaces through Next.
func TestRingPropagatesPrepareError(t *testing.T) {
	boom := errors.New("boom")
	fail := func(d []graph.VID, s *Slot) (*prep.Batch, error) { return nil, boom }
	for _, depth := range []int{0, 2} {
		ring := NewRing(depth, [][]graph.VID{{1}, {2}}, fail)
		if _, err := ring.Next(); !errors.Is(err, boom) {
			t.Fatalf("depth %d: got %v, want prepare error", depth, err)
		}
		ring.Stop()
	}
}
