package pipeline

import (
	"time"

	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
)

// The service-wide tensor scheduler's benefit is a property of how the
// preprocessing subtasks are *scheduled*, not of the host this simulator
// runs on. On a single-core VM real goroutine overlap cannot shorten
// wall-clock time, so — as with GPU compute (gpusim.KernelTimeModel) — we
// model the per-task costs and evaluate each scheduling discipline's
// critical path analytically. The model reproduces the paper's structure:
// S and R contend on the shared hash table; K and T dominate heavy-feature
// graphs; the pipeline overlaps K with T and relaxes the S/R lock.

// PrepCostModel assigns modeled time to each preprocessing subtask from the
// work it performs. Coefficients are in nanoseconds per unit of work.
type PrepCostModel struct {
	SamplePerEdge   float64 // ns per sampled edge (random graph walk)
	ReindexPerEdge  float64 // ns per edge reindexed (hash lookups)
	LookupPerByte   float64 // ns per embedding byte gathered (random reads)
	TransferPerByte float64 // ns per byte over PCIe
	PinnedFactor    float64 // <1: pinned transfers are faster (no staging)
	HashContention  float64 // fraction of S+R time lost to lock contention
}

// DefaultPrepCostModel returns coefficients that reproduce the paper's
// task balance: sampling dominates light-feature graphs, data preparation
// (K+T) dominates heavy-feature graphs.
func DefaultPrepCostModel() PrepCostModel {
	return PrepCostModel{
		SamplePerEdge:   120,
		ReindexPerEdge:  40,
		LookupPerByte:   0.9,
		TransferPerByte: 0.25,
		PinnedFactor:    0.45,
		HashContention:  0.45,
	}
}

// TaskTimes holds the modeled duration of each preprocessing subtask.
type TaskTimes struct {
	Sample, Reindex, Lookup, Transfer time.Duration
}

// Model computes the per-task modeled times for a sampled batch with the
// given feature dimension and transfer-buffer discipline.
func (m PrepCostModel) Model(res *sampling.Result, featureDim int, pinned bool) TaskTimes {
	edges := 0
	for _, h := range res.Hops {
		edges += len(h.SrcOrig)
	}
	return m.EstimateTasks(edges, res.NumVertices(), featureDim, pinned)
}

// EstimateTasks is the closed form of Model over raw sampled-edge and
// vertex counts, for callers sizing batches before any sampling exists
// (dkp.Recommend derives the serving coalescing window from it).
func (m PrepCostModel) EstimateTasks(edges, vertices, featureDim int, pinned bool) TaskTimes {
	embedBytes := float64(vertices) * float64(featureDim) * 4
	tf := m.TransferPerByte
	if pinned {
		tf *= m.PinnedFactor
	}
	return TaskTimes{
		Sample:   time.Duration(m.SamplePerEdge * float64(edges)),
		Reindex:  time.Duration(m.ReindexPerEdge * float64(edges)),
		Lookup:   time.Duration(m.LookupPerByte * embedBytes),
		Transfer: time.Duration(tf * embedBytes),
	}
}

// ModelBatch is Model evaluated on a prepared batch, surfacing the batch's
// embedding-cache residency in the modeled task times: cache-resident
// vertices (b.CacheHits of them) skip both the K gather and the T transfer
// — their embeddings are already device-held — so those tasks' modeled
// durations scale with the miss fraction. Without a cache it is exactly
// Model.
func (m PrepCostModel) ModelBatch(b *prep.Batch, featureDim int, pinned bool) TaskTimes {
	t := m.Model(b.Sample, featureDim, pinned)
	n := b.Sample.NumVertices()
	if b.CacheHits > 0 && n > 0 {
		missFrac := float64(n-b.CacheHits) / float64(n)
		t.Lookup = time.Duration(float64(t.Lookup) * missFrac)
		t.Transfer = time.Duration(float64(t.Transfer) * missFrac)
	}
	return t
}

// Serial returns the modeled latency of the serialized S→R→K→T chain (the
// existing frameworks' discipline): tasks run one after another, and the
// shared hash table forces S and R to contend.
func (m PrepCostModel) Serial(t TaskTimes) time.Duration {
	contention := time.Duration(float64(t.Sample+t.Reindex) * m.HashContention)
	return t.Sample + t.Reindex + t.Lookup + t.Transfer + contention
}

// Pipelined returns the modeled latency of the service-wide tensor
// scheduler: S and R still chain (R needs the sampled graph) but the A/H
// split removes their lock contention; K overlaps the tail of S; and T
// overlaps K (pipelined chunk transfers on pinned buffers). The critical
// path is therefore the S→R spine plus whichever of K and T extends past
// it, not their sum.
func (m PrepCostModel) Pipelined(t TaskTimes) time.Duration {
	spine := t.Sample + t.Reindex // contention relaxed: no extra term
	// K starts while the last sampling hop finishes; model it as
	// overlapping half of S. T streams behind K on pinned buffers.
	kStart := t.Sample / 2
	kEnd := kStart + t.Lookup
	tEnd := kStart + t.Transfer // T chunks follow K chunks closely
	if kEnd > tEnd {
		tEnd = kEnd
	}
	prep := spine
	if tEnd > prep {
		prep = tEnd
	}
	return prep
}

// SALIENT returns the modeled latency of a SALIENT-style preprocessor:
// serial S/R/K, but T overlaps compute and uses pinned memory, so the
// transfer's pinned speedup is realized and T hides behind the next
// batch's sampling. We credit the pinned speedup and overlap T with S.
func (m PrepCostModel) SALIENT(t TaskTimes) time.Duration {
	contention := time.Duration(float64(t.Sample+t.Reindex) * m.HashContention)
	core := t.Sample + t.Reindex + t.Lookup + contention
	if t.Transfer > core {
		return t.Transfer
	}
	return core
}
