package pipeline

import (
	"testing"

	"graphtensor/internal/datasets"
	"graphtensor/internal/gpusim"
	"graphtensor/internal/sampling"
)

// TestSchedulerRepeatableUnderConcurrency: the pipelined scheduler, which
// runs R/K subtasks on many goroutines, must produce identical embeddings
// across repeated runs of the same batch despite nondeterministic goroutine
// interleaving.
func TestSchedulerRepeatableUnderConcurrency(t *testing.T) {
	ds, _ := datasets.Generate("reddit2", datasets.TestScale())
	cfg := DefaultConfig()
	cfg.ChunkVertices = 16 // many chunks -> more concurrency
	dsts := ds.BatchDsts(50, 3)
	var first []float32
	for i := 0; i < 8; i++ {
		dev := gpusim.NewDevice(gpusim.DefaultConfig())
		b, err := NewScheduler(ds.Graph, ds.Features, ds.Labels, dev, cfg).Prepare(dsts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = append([]float32(nil), b.Embed.Data.Data...)
		} else {
			for j := range first {
				if b.Embed.Data.Data[j] != first[j] {
					t.Fatalf("run %d embedding diverged at %d", i, j)
				}
			}
		}
		b.Release()
	}
}

// TestCostModelMonotone: more edges -> more sample/reindex time; more bytes
// -> more lookup/transfer time.
func TestCostModelMonotone(t *testing.T) {
	cm := DefaultPrepCostModel()
	small := cm.Model(makeResult(t, "products", 20), 64, true)
	large := cm.Model(makeResult(t, "products", 200), 64, true)
	if large.Sample <= small.Sample {
		t.Error("sample time should grow with batch size")
	}
	if cm.Serial(large) <= cm.Serial(small) {
		t.Error("serial prep time should grow with batch size")
	}
}

// TestPipelinedNeverSlowerThanSerial: the modeled pipelined schedule must
// not exceed the serial one for any dataset.
func TestPipelinedNeverSlowerThanSerial(t *testing.T) {
	cm := DefaultPrepCostModel()
	for _, name := range datasets.Names() {
		tt := cm.Model(makeResult(t, name, 100), 64, true)
		if cm.Pipelined(tt) > cm.Serial(tt) {
			t.Errorf("%s: pipelined %v > serial %v", name, cm.Pipelined(tt), cm.Serial(tt))
		}
	}
}

func makeResult(t *testing.T, name string, batch int) *sampling.Result {
	t.Helper()
	ds, err := datasets.Generate(name, datasets.TestScale())
	if err != nil {
		t.Fatal(err)
	}
	return sampling.New(ds.Graph, sampling.DefaultConfig()).Sample(ds.BatchDsts(batch, 1))
}
