package pipeline

import (
	"errors"
	"sync"

	"graphtensor/internal/graph"
	"graphtensor/internal/prep"
)

// Ring is the depth-N generalization of the one-batch-ahead prefetcher
// (§V-B last paragraph): a producer goroutine runs the framework's
// preprocessing up to depth batches ahead of the consumer, delivering
// prepared batches strictly in submission order. Each in-flight batch owns
// a Slot — a tensor.Arena for its dense host buffers plus a prep.Structs
// for its producer structures — drawn from a rotation of depth+2 slots, so
// both the embedding buffers and the sampled/translated/localized graph
// structures of batch t are recycled into batch t+depth+2 instead of
// reallocated. A slot re-enters the rotation only after its batch's
// Release, so no two in-flight batches ever alias storage.
//
// Lifecycle: NewRing starts the producer over the given dst lists; Next
// returns batches in order; Stop cancels outstanding work, releases any
// prepared-but-undelivered batches and waits for the producer to exit.
// Stop is idempotent and safe mid-stream, which is how the training driver
// abandons prefetched work on early stopping. Depth 0 degrades to a fully
// synchronous prepare-on-Next (the discipline of the non-overlapping
// baseline frameworks) with no producer goroutine.
type Ring struct {
	prepare func([]graph.VID, *Slot) (*prep.Batch, error)
	next    func(i int) []graph.VID
	n       int
	depth   int

	out      chan ringItem
	slots    chan *Slot
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// pos is the next list index in depth-0 synchronous mode. It is only
	// touched by Next (single consumer); Stop communicates exclusively
	// through the stop channel, so it is safe from any goroutine.
	pos int
}

type ringItem struct {
	batch *prep.Batch
	err   error
}

// ErrRingDrained is returned by Next once every submitted dst list has been
// delivered, or after Stop.
var ErrRingDrained = errors.New("pipeline: prefetch ring drained")

// NewRing builds a prefetch ring over the dst lists and starts preparing up
// to depth batches ahead. depth 0 disables the background producer.
func NewRing(depth int, lists [][]graph.VID,
	prepare func([]graph.VID, *Slot) (*prep.Batch, error)) *Ring {
	return NewRingFunc(depth, len(lists),
		func(i int) []graph.VID { return lists[i] }, prepare)
}

// NewRingFunc is NewRing with the n dst lists drawn lazily, in order, from
// next — batch i's list is requested only when its preparation starts, so a
// long schedule (the training driver feeds whole runs through one ring)
// never materializes every list up front. next runs on the producer
// goroutine (or the caller's, at depth 0); it must tolerate not being
// called for the tail of the schedule when the ring is stopped early.
func NewRingFunc(depth, n int, next func(i int) []graph.VID,
	prepare func([]graph.VID, *Slot) (*prep.Batch, error)) *Ring {
	if depth < 0 {
		depth = 0
	}
	return NewRingShared(depth, n, NewSlotRing(depth+2), next, prepare)
}

// NewRingShared is NewRingFunc drawing its rotation from a caller-owned
// slot free-list (see NewSlotRing) instead of fresh slots. Successive rings
// built over the same channel reuse the same slot storage — a trainer's
// steady-state epochs allocate no new producer structures across rings. A
// slot still lent to an outstanding batch of a previous (stopped) ring
// simply re-enters the channel on that batch's Release; until then the new
// ring runs with the remaining slots.
func NewRingShared(depth, n int, slots chan *Slot, next func(i int) []graph.VID,
	prepare func([]graph.VID, *Slot) (*prep.Batch, error)) *Ring {
	if depth < 0 {
		depth = 0
	}
	r := &Ring{
		prepare: prepare,
		next:    next,
		n:       n,
		depth:   depth,
		slots:   slots,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if depth == 0 {
		close(r.done)
		return r
	}
	r.out = make(chan ringItem, depth)
	go r.produce()
	return r
}

// produce prepares every submitted batch in order, gated by slot
// availability (at most depth+2 batches can hold storage at once, which is
// the ring's backpressure) and by the out channel's depth.
func (r *Ring) produce() {
	defer close(r.done)
	defer close(r.out)
	for i := 0; i < r.n; i++ {
		var s *Slot
		select {
		case s = <-r.slots:
		case <-r.stop:
			return
		}
		// Both cases above can be ready at once and select picks randomly;
		// re-check stop so Stop never waits behind another full prepare.
		select {
		case <-r.stop:
			r.slots <- s
			return
		default:
		}
		b, err := r.prepareInto(r.next(i), s)
		if err != nil {
			select {
			case r.out <- ringItem{err: err}:
			case <-r.stop:
			}
			return
		}
		select {
		case r.out <- ringItem{batch: b}:
		case <-r.stop:
			b.Release()
			return
		}
	}
}

// prepareInto runs prepare with the slot and hooks the batch's release to
// recycle it back into the rotation. On error the slot re-enters the
// rotation immediately (arena released; whatever structures the failed
// prepare consumed are simply garbage collected).
func (r *Ring) prepareInto(dsts []graph.VID, s *Slot) (*prep.Batch, error) {
	b, err := r.prepare(dsts, s)
	if err != nil {
		s.Recycle(nil)
		r.slots <- s
		return nil, err
	}
	b.OnRelease = func() {
		s.Recycle(b)
		r.slots <- s
	}
	return b, nil
}

// Next returns the next prepared batch in submission order. The caller owns
// the batch and must Release it (which recycles its buffers into the ring).
func (r *Ring) Next() (*prep.Batch, error) {
	if r.depth == 0 {
		if r.pos >= r.n {
			return nil, ErrRingDrained
		}
		// Guard the slot receive with stop: a caller holding every
		// outstanding batch un-Released would otherwise park here forever
		// with no escape. The stop channel is the only stop state, so Stop
		// may be called from any goroutine (e.g. a watchdog) without racing
		// this path.
		var s *Slot
		select {
		case s = <-r.slots:
		case <-r.stop:
			return nil, ErrRingDrained
		}
		select {
		case <-r.stop:
			r.slots <- s
			return nil, ErrRingDrained
		default:
		}
		dsts := r.next(r.pos)
		r.pos++
		return r.prepareInto(dsts, s)
	}
	it, ok := <-r.out
	if !ok {
		return nil, ErrRingDrained
	}
	return it.batch, it.err
}

// Stop cancels outstanding preparation, releases every prepared-but-
// undelivered batch and waits for the producer to exit. Batches already
// handed out by Next stay valid and remain the caller's to Release. Stop is
// idempotent; Next returns ErrRingDrained afterwards.
func (r *Ring) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	if r.out != nil {
		for it := range r.out {
			if it.batch != nil {
				it.batch.Release()
			}
		}
	}
}
