package pipeline

import (
	"errors"
	"sync"

	"graphtensor/internal/graph"
	"graphtensor/internal/prep"
	"graphtensor/internal/tensor"
)

// Ring is the depth-N generalization of the one-batch-ahead prefetcher
// (§V-B last paragraph): a producer goroutine runs the framework's
// preprocessing up to depth batches ahead of the consumer, delivering
// prepared batches strictly in submission order. Each in-flight batch owns
// a tensor.Arena drawn from a fixed rotation of depth+2 arenas, so the
// host-side embedding buffers of batch t are recycled into batch t+depth+2
// instead of reallocated — an arena re-enters the rotation only after its
// batch's Release, so no two in-flight batches ever alias storage.
//
// Lifecycle: NewRing starts the producer over the given dst lists; Next
// returns batches in order; Stop cancels outstanding work, releases any
// prepared-but-undelivered batches and waits for the producer to exit.
// Stop is idempotent and safe mid-stream, which is how the training driver
// abandons prefetched work on early stopping. Depth 0 degrades to a fully
// synchronous prepare-on-Next (the discipline of the non-overlapping
// baseline frameworks) with no producer goroutine.
type Ring struct {
	prepare func([]graph.VID, *tensor.Arena) (*prep.Batch, error)
	next    func(i int) []graph.VID
	n       int
	depth   int

	out      chan ringItem
	arenas   chan *tensor.Arena
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// pos is the next list index in depth-0 synchronous mode. It is only
	// touched by Next (single consumer); Stop communicates exclusively
	// through the stop channel, so it is safe from any goroutine.
	pos int
}

type ringItem struct {
	batch *prep.Batch
	err   error
}

// ErrRingDrained is returned by Next once every submitted dst list has been
// delivered, or after Stop.
var ErrRingDrained = errors.New("pipeline: prefetch ring drained")

// NewRing builds a prefetch ring over the dst lists and starts preparing up
// to depth batches ahead. depth 0 disables the background producer.
func NewRing(depth int, lists [][]graph.VID,
	prepare func([]graph.VID, *tensor.Arena) (*prep.Batch, error)) *Ring {
	return NewRingFunc(depth, len(lists),
		func(i int) []graph.VID { return lists[i] }, prepare)
}

// NewRingFunc is NewRing with the n dst lists drawn lazily, in order, from
// next — batch i's list is requested only when its preparation starts, so a
// long schedule (the training driver feeds whole runs through one ring)
// never materializes every list up front. next runs on the producer
// goroutine (or the caller's, at depth 0); it must tolerate not being
// called for the tail of the schedule when the ring is stopped early.
func NewRingFunc(depth, n int, next func(i int) []graph.VID,
	prepare func([]graph.VID, *tensor.Arena) (*prep.Batch, error)) *Ring {
	if depth < 0 {
		depth = 0
	}
	r := &Ring{
		prepare: prepare,
		next:    next,
		n:       n,
		depth:   depth,
		arenas:  make(chan *tensor.Arena, depth+2),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i := 0; i < depth+2; i++ {
		r.arenas <- tensor.NewArena()
	}
	if depth == 0 {
		close(r.done)
		return r
	}
	r.out = make(chan ringItem, depth)
	go r.produce()
	return r
}

// produce prepares every submitted batch in order, gated by arena
// availability (at most depth+2 batches can hold storage at once, which is
// the ring's backpressure) and by the out channel's depth.
func (r *Ring) produce() {
	defer close(r.done)
	defer close(r.out)
	for i := 0; i < r.n; i++ {
		var a *tensor.Arena
		select {
		case a = <-r.arenas:
		case <-r.stop:
			return
		}
		// Both cases above can be ready at once and select picks randomly;
		// re-check stop so Stop never waits behind another full prepare.
		select {
		case <-r.stop:
			r.arenas <- a
			return
		default:
		}
		b, err := r.prepareInto(r.next(i), a)
		if err != nil {
			select {
			case r.out <- ringItem{err: err}:
			case <-r.stop:
			}
			return
		}
		select {
		case r.out <- ringItem{batch: b}:
		case <-r.stop:
			b.Release()
			return
		}
	}
}

// prepareInto runs prepare with the arena and hooks the batch's release to
// recycle it back into the rotation. On error the arena re-enters the
// rotation immediately.
func (r *Ring) prepareInto(dsts []graph.VID, a *tensor.Arena) (*prep.Batch, error) {
	b, err := r.prepare(dsts, a)
	if err != nil {
		a.Release()
		r.arenas <- a
		return nil, err
	}
	b.OnRelease = func() {
		a.Release()
		r.arenas <- a
	}
	return b, nil
}

// Next returns the next prepared batch in submission order. The caller owns
// the batch and must Release it (which recycles its buffers into the ring).
func (r *Ring) Next() (*prep.Batch, error) {
	if r.depth == 0 {
		if r.pos >= r.n {
			return nil, ErrRingDrained
		}
		// Guard the arena receive with stop: a caller holding every
		// outstanding batch un-Released would otherwise park here forever
		// with no escape. The stop channel is the only stop state, so Stop
		// may be called from any goroutine (e.g. a watchdog) without racing
		// this path.
		var a *tensor.Arena
		select {
		case a = <-r.arenas:
		case <-r.stop:
			return nil, ErrRingDrained
		}
		select {
		case <-r.stop:
			r.arenas <- a
			return nil, ErrRingDrained
		default:
		}
		dsts := r.next(r.pos)
		r.pos++
		return r.prepareInto(dsts, a)
	}
	it, ok := <-r.out
	if !ok {
		return nil, ErrRingDrained
	}
	return it.batch, it.err
}

// Stop cancels outstanding preparation, releases every prepared-but-
// undelivered batch and waits for the producer to exit. Batches already
// handed out by Next stay valid and remain the caller's to Release. Stop is
// idempotent; Next returns ErrRingDrained afterwards.
func (r *Ring) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	if r.out != nil {
		for it := range r.out {
			if it.batch != nil {
				it.batch.Release()
			}
		}
	}
}
