package pipeline

import (
	"sync"
	"time"

	"graphtensor/internal/graph"
	"graphtensor/internal/metrics"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
	"graphtensor/internal/tensor"
	"graphtensor/internal/vidmap"
)

// subtaskEngine is the scheduler's persistent subtask executor: a fixed set
// of worker goroutines (spawned lazily on the first Prepare, parked on the
// task channel for the scheduler's lifetime) plus pools for the per-subtask
// descriptors and the per-prepare run state.
//
// Before the engine existed every Prepare allocated its dispatch state
// fresh: one hop-done channel per layer, a semaphore channel, and one
// goroutine + closure per R and K subtask — a few dozen allocations per
// batch that survived all the producer-arena work. The engine replaces all
// of it: concurrency is bounded structurally by the worker count (the old
// semaphore's job), the T barrier needs no hop-done signals because the S
// chain now runs inline on the preparing goroutine (T cannot start before
// the final S anyway — device allocation needs the total vertex count), and
// subtasks are pooled descriptors executed by the parked workers, so a
// steady-state prepare performs no dispatch allocation at all.
//
// Multiple Prepare calls may run concurrently (the serving engine's
// replicas share one scheduler); they share the worker set, each drawing
// its own pooled run state.
type subtaskEngine struct {
	workers int
	tasks   chan *subtask
	spawn   sync.Once
	subs    sync.Pool // *subtask
	runs    sync.Pool // *prepRun
}

func newSubtaskEngine(workers int) *subtaskEngine {
	return &subtaskEngine{workers: workers, tasks: make(chan *subtask, 8*workers+32)}
}

// start spawns the persistent workers once. Workers never block on anything
// but the task channel, so a preparing goroutine blocked handing off a
// subtask (channel full) always makes progress.
func (e *subtaskEngine) start() {
	e.spawn.Do(func() {
		for i := 0; i < e.workers; i++ {
			go func() {
				for t := range e.tasks {
					r := t.r
					t.exec()
					e.recycle(t)
					r.wg.Done()
				}
			}()
		}
	})
}

// close retires the worker set. No Prepare may be in flight or follow; a
// scheduler that was never used shuts down trivially (the workers were
// never spawned, and closing the channel also keeps a later stray start
// from parking goroutines forever).
func (e *subtaskEngine) close() {
	close(e.tasks)
}

func (e *subtaskEngine) get() *subtask {
	t, _ := e.subs.Get().(*subtask)
	if t == nil {
		t = &subtask{}
	}
	return t
}

func (e *subtaskEngine) recycle(t *subtask) {
	*t = subtask{}
	e.subs.Put(t)
}

// getRun checks out a reset per-prepare run state.
func (e *subtaskEngine) getRun(s *Scheduler, bd *metrics.Breakdown, tl *metrics.Timeline,
	structs *prep.Structs) *prepRun {
	r, _ := e.runs.Get().(*prepRun)
	if r == nil {
		r = &prepRun{}
	}
	r.s, r.bd, r.tl, r.structs = s, bd, tl, structs
	r.chunks, r.drain = r.chunks[:0], r.drain[:0]
	r.err = nil
	return r
}

// putRun returns the run state to the pool. Only call once wg has drained —
// no subtask may still hold the run.
func (e *subtaskEngine) putRun(r *prepRun) {
	r.s, r.bd, r.tl, r.structs, r.table, r.layers = nil, nil, nil, nil, nil, nil
	for i := range r.chunks {
		r.chunks[i] = embedChunk{}
	}
	for i := range r.drain {
		r.drain[i] = embedChunk{}
	}
	e.runs.Put(r)
}

// prepRun is the shared state of one in-flight Prepare: the layer chain the
// R subtasks fill, the staged embedding chunks the K subtasks produce and
// the T loop drains, and the first error any subtask hit. chunks/drain
// double-buffer so the streaming swap retains both slices' capacity across
// batches.
type prepRun struct {
	s       *Scheduler
	bd      *metrics.Breakdown
	tl      *metrics.Timeline
	structs *prep.Structs
	table   *vidmap.Table
	layers  []prep.LayerData

	wg sync.WaitGroup

	mu     sync.Mutex
	chunks []embedChunk
	drain  []embedChunk

	errMu sync.Mutex
	err   error
}

// embedChunk is one gathered slice of the batch embedding table, staged by
// a K subtask and streamed by the T loop. hits counts the chunk's
// cache-resident vertices, whose rows cross the link for free.
type embedChunk struct {
	lo, hi, hits int
	data         *tensor.Matrix
}

func (r *prepRun) record(task string, done, total int) {
	if r.tl != nil {
		r.tl.Record(task, done, total)
	}
}

func (r *prepRun) setErr(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
}

func (r *prepRun) failed() bool {
	r.errMu.Lock()
	f := r.err != nil
	r.errMu.Unlock()
	return f
}

func (r *prepRun) takeErr() error {
	r.errMu.Lock()
	err := r.err
	r.errMu.Unlock()
	return err
}

// takePending swaps the staged-chunk buffers and returns everything the K
// subtasks produced since the last call.
func (r *prepRun) takePending() []embedChunk {
	r.mu.Lock()
	r.chunks, r.drain = r.drain[:0], r.chunks
	pending := r.drain
	r.mu.Unlock()
	return pending
}

// releaseStaged returns unstreamed staging chunks to the tensor pool on the
// failure paths. Call only after wg has drained (no K producers left).
func (r *prepRun) releaseStaged() {
	for _, ch := range r.takePending() {
		tensor.Put(ch.data)
	}
}

func (r *prepRun) spawnReindex(li int, hop *sampling.Hop) {
	t := r.s.engine.get()
	t.r, t.kind, t.li, t.hop = r, taskReindex, li, hop
	r.wg.Add(1)
	r.s.engine.tasks <- t
}

func (r *prepRun) spawnLookup(origs []graph.VID, lo, hi int) {
	t := r.s.engine.get()
	t.r, t.kind, t.origs, t.lo, t.hi = r, taskLookup, origs, lo, hi
	r.wg.Add(1)
	r.s.engine.tasks <- t
}

const (
	taskReindex = iota
	taskLookup
)

// subtask is one pooled R or K work descriptor.
type subtask struct {
	r      *prepRun
	kind   int8
	li     int
	hop    *sampling.Hop
	origs  []graph.VID
	lo, hi int
}

func (t *subtask) exec() {
	if t.kind == taskReindex {
		t.reindex()
	} else {
		t.lookup()
	}
}

// reindex is the R subtask: reindex + format build for the GNN layer this
// hop feeds, into the slot's retained buffer for that layer index
// (concurrent R subtasks touch disjoint buffers).
func (t *subtask) reindex() {
	r := t.r
	st := time.Now()
	ld, err := r.structs.LayerInto(t.li, t.hop, r.table, r.s.cfg.Format)
	if err != nil {
		r.setErr(err)
		return
	}
	r.layers[t.li] = ld
	r.bd.Add("reindex", time.Since(st))
	r.record("reindex", t.hop.NumSrc, -1)
}

// lookup is the K subtask: gather one chunk of embeddings into a pooled
// staging buffer and consult the embedding cache for the chunk's residency
// (hits skip the modeled transfer when the T loop streams the chunk).
// Staging buffers come from the global tensor pool (arena handles are
// single-goroutine; the pool is not) and return as soon as their chunk
// streams.
func (t *subtask) lookup() {
	r := t.r
	s := r.s
	st := time.Now()
	dim := s.features.Dim
	buf := tensor.Get(t.hi-t.lo, dim)
	for i := t.lo; i < t.hi; i++ {
		copy(buf.Row(i-t.lo), s.features.Row(t.origs[i]))
	}
	hits := 0
	if s.cfg.Cache != nil {
		hits, _ = s.cfg.Cache.CountResident(t.origs[t.lo:t.hi])
	}
	r.bd.Add("lookup", time.Since(st))
	r.record("lookup", t.hi-t.lo, -1)
	r.mu.Lock()
	r.chunks = append(r.chunks, embedChunk{lo: t.lo, hi: t.hi, hits: hits, data: buf})
	r.mu.Unlock()
}
