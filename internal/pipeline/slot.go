package pipeline

import (
	"graphtensor/internal/prep"
	"graphtensor/internal/tensor"
)

// Slot is one position of the prefetch ring's rotation: the pair of
// batch-scoped recyclers an in-flight batch draws from. Arena owns the
// dense host buffers (embedding tables); Structs owns the producer
// structures (sampler result, per-layer graphs, labels, sub-batch plan).
// A slot is lent to exactly one in-flight batch at a time and re-enters the
// rotation only when that batch is released, so recycled storage is never
// observable from another in-flight batch.
type Slot struct {
	Arena   *tensor.Arena
	Structs *prep.Structs
}

// NewSlot returns a slot with a fresh arena and structure pool.
func NewSlot() *Slot {
	return &Slot{Arena: tensor.NewArena(), Structs: prep.NewStructs()}
}

// TensorArena returns the slot's arena (nil on a nil slot), for callers
// preparing without a slot.
func (s *Slot) TensorArena() *tensor.Arena {
	if s == nil {
		return nil
	}
	return s.Arena
}

// StructPool returns the slot's structure pool (nil on a nil slot).
func (s *Slot) StructPool() *prep.Structs {
	if s == nil {
		return nil
	}
	return s.Structs
}

// Recycle closes the slot's batch scope: the arena releases every dense
// checkout and the structure pool reclaims the released batch's producer
// structures. b may be nil (error paths reclaim only the arena).
func (s *Slot) Recycle(b *prep.Batch) {
	s.Arena.Release()
	s.Structs.ReleaseBatch(b)
}

// NewSlotRing builds a buffered free-list of n fresh slots. The channel —
// not any single Ring — owns the rotation: a trainer creates it once and
// threads it through every ring it builds, so slot storage (and the batch
// shapes it has grown to) persists across epochs and rings. A slot is in
// the channel exactly when it is free.
func NewSlotRing(n int) chan *Slot {
	c := make(chan *Slot, n)
	for i := 0; i < n; i++ {
		c <- NewSlot()
	}
	return c
}
