package pipeline

import (
	"testing"

	"graphtensor/internal/graph"
	"graphtensor/internal/prep"
	"graphtensor/internal/sampling"
)

// producerFixture returns a slot-aware prepare over the test dataset
// (host-only, so no modeled transfer throttling slows the loop).
func producerFixture(t *testing.T) (func([]graph.VID, *Slot) (*prep.Batch, error), func(i int) []graph.VID) {
	t.Helper()
	ds := testDataset(t)
	dev := testDevice()
	samplerCfg := sampling.DefaultConfig()
	sampler := sampling.New(ds.Graph, samplerCfg)
	prepare := func(d []graph.VID, s *Slot) (*prep.Batch, error) {
		return prep.Serial(sampler, ds.Features, ds.Labels, dev, d,
			prep.Config{Format: prep.FormatCSRCSC, Arena: s.TensorArena(),
				Structs: s.StructPool(), HostOnly: true})
	}
	next := func(i int) []graph.VID { return ds.BatchDsts(20, uint64(i+1)) }
	return prepare, next
}

// backing returns the address of a slice's first element (nil-safe).
func backing(s []graph.VID) *graph.VID {
	if len(s) == 0 {
		return nil
	}
	return &s[0]
}

// TestSlotReuseNoAliasingAcrossSlots is the producer-pool aliasing guard:
// structures recycled into slot N's next batch must (a) actually reuse slot
// N's retained storage and (b) never be observable from an in-flight batch
// still holding slot M.
func TestSlotReuseNoAliasingAcrossSlots(t *testing.T) {
	prepare, next := producerFixture(t)
	slotN, slotM := NewSlot(), NewSlot()

	b1, err := prepare(next(0), slotN)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := prepare(next(1), slotM)
	if err != nil {
		t.Fatal(err)
	}
	b1CSR := b1.Layers[0].CSR
	b1Srcs := backing(b1CSR.Srcs)
	b1Sample := b1.Sample

	// Release batch 1 and recycle slot N; batch 2 stays in flight.
	b2SrcsBefore := append([]graph.VID(nil), b2.Layers[0].CSR.Srcs...)
	b1.Release()
	slotN.Recycle(b1)

	// Same dst list as batch 1, so every retained buffer's capacity fits
	// and reuse is observable as pointer equality.
	b3, err := prepare(next(0), slotN)
	if err != nil {
		t.Fatal(err)
	}
	if b3.Layers[0].CSR != b1CSR || backing(b3.Layers[0].CSR.Srcs) != b1Srcs {
		t.Error("slot N's recycled layer storage was not reused by its next batch")
	}
	if b3.Sample != b1Sample {
		t.Error("slot N's recycled sampler result was not reused by its next batch")
	}
	for li := range b3.Layers {
		if b3.Layers[li].CSR == b2.Layers[li].CSR {
			t.Fatalf("layer %d: slot N's batch shares a CSR with in-flight slot M", li)
		}
		if backing(b3.Layers[li].CSR.Srcs) == backing(b2.Layers[li].CSR.Srcs) {
			t.Fatalf("layer %d: slot N's batch aliases in-flight slot M's edge storage", li)
		}
	}
	if b3.Sample == b2.Sample || b3.Sample.Table == b2.Sample.Table {
		t.Fatal("slot N's batch shares sampler state with in-flight slot M")
	}
	// And batch 2's contents survived slot N's recycling byte for byte.
	for i, v := range b2.Layers[0].CSR.Srcs {
		if v != b2SrcsBefore[i] {
			t.Fatalf("in-flight batch 2 edge %d changed (%d != %d) when slot N recycled", i, v, b2SrcsBefore[i])
		}
	}
	b2.Release()
	b3.Release()
}

// TestRingProducerAllocFlat is the leak guard of the producer pool: with a
// warm shared slot rotation, the marginal allocations of one more
// steady-state batch through the (synchronous) ring are a small constant —
// epoch-length-independent, so ring-driven epoch allocs/op cannot grow with
// the schedule. It covers both producer disciplines: the serial chain and
// the pipelined scheduler, whose persistent subtask engine must leave no
// per-batch dispatch allocations (no hop-done channels, semaphores or
// subtask closures).
func TestRingProducerAllocFlat(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	ds := testDataset(t)
	serialPrep, _ := producerFixture(t)
	cfg := DefaultConfig()
	cfg.HostOnly = true // no modeled transfer throttling in the loop
	sched := NewScheduler(ds.Graph, ds.Features, ds.Labels, nil, cfg)

	fixtures := []struct {
		name    string
		prepare func([]graph.VID, *Slot) (*prep.Batch, error)
	}{
		{"serial", serialPrep},
		{"scheduler", func(d []graph.VID, s *Slot) (*prep.Batch, error) {
			return sched.PrepareSlot(d, nil, s)
		}},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			slots := NewSlotRing(2)
			// A fixed dst list: shapes repeat, so steady state is pure reuse.
			dsts := ds.BatchDsts(20, 7)

			epoch := func(batches int) {
				ring := NewRingShared(0, batches, slots,
					func(int) []graph.VID { return dsts }, fx.prepare)
				for i := 0; i < batches; i++ {
					b, err := ring.Next()
					if err != nil {
						t.Fatal(err)
					}
					b.Release()
				}
				ring.Stop()
			}
			epoch(4) // warm the slots and every pooled buffer

			a4 := testing.AllocsPerRun(10, func() { epoch(4) })
			a12 := testing.AllocsPerRun(10, func() { epoch(12) })
			marginal := (a12 - a4) / 8
			if marginal > 25 {
				t.Errorf("steady-state producer allocates %.1f allocs per extra batch (epoch 4: %.0f, epoch 12: %.0f); want a small constant",
					marginal, a4, a12)
			}
		})
	}
}
